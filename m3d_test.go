package m3d

import (
	"errors"
	"testing"
)

// TestPublicAPI exercises the re-exported surface end to end: a downstream
// user's first session with the library.
func TestPublicAPI(t *testing.T) {
	pdk := Default130()
	if pdk.NodeNM != 130 {
		t.Fatal("default PDK wrong")
	}

	am, err := BuildAreaModel(pdk, 64<<23)
	if err != nil {
		t.Fatal(err)
	}
	if am.N() != 8 {
		t.Fatalf("Eq. 2 N = %d, want 8", am.N())
	}

	a2d, a3d, n, err := CaseStudyPair(pdk)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Fatalf("n = %d", n)
	}
	sp, er, edp, err := a3d.Benefit(a2d, ResNet18())
	if err != nil {
		t.Fatal(err)
	}
	if sp < 4.8 || sp > 6.5 || edp < 4.6 || edp > 6.6 || er < 0.9 || er > 1.1 {
		t.Errorf("headline result off: %.2fx / %.3f / %.2fx", sp, er, edp)
	}

	// Analytical framework direct use.
	params := Params{
		PPeak: 256, B2D: 256, B3D: 8 * 256, N: 8,
		Alpha2D: 0.64e-12, Alpha3D: 0.64e-12, EC: 3e-12, ECIdle: 23e-12,
		EMIdle2D: 1e-12, EMIdle3D: 1e-12,
	}
	res, err := Evaluate(params, Load{F0: 256e6, D0: 1e6, NPart: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup < 7 || res.Speedup > 8.1 {
		t.Errorf("compute-bound speedup = %.2f, want ≈8", res.Speedup)
	}

	// Thermal.
	if MaxThermalTiers(pdk, 2.0) != 6 {
		t.Errorf("max tiers at 2W = %d, want 6", MaxThermalTiers(pdk, 2.0))
	}
	stack := NewThermalStack(pdk, []float64{2, 2})
	if !stack.Feasible(pdk.MaxTempRiseK) {
		t.Error("two 2W pairs should be feasible")
	}

	// Workload zoo.
	if len(Zoo()) != 6 {
		t.Errorf("zoo = %d models", len(Zoo()))
	}
	if ResNet152().Params() < 55_000_000 {
		t.Error("ResNet-152 params wrong")
	}

	// Table II presets.
	for i := 1; i <= 6; i++ {
		a, err := TableII(i)
		if err != nil || a.PPeak() != 1024 {
			t.Errorf("Arch%d broken: %v", i, err)
		}
	}

	// Adaptive design-space exploration.
	space := DSESpace{
		Deltas:    DSEAxis{Min: 1, Max: 2, Steps: 4},
		TierPairs: DSEIntAxis{Min: 1, Max: 2},
		BWScales:  DSEAxis{Min: 1, Max: 4, Steps: 4},
	}
	var rounds int
	dres, err := ExploreDesignSpace(pdk, space, DSEOptions{Seed: 1, MaxEvals: space.GridSize()},
		func(u DSEUpdate) { rounds++ }, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(dres.Frontier) == 0 || rounds != dres.Rounds {
		t.Errorf("DSE: frontier %d, %d callbacks for %d rounds",
			len(dres.Frontier), rounds, dres.Rounds)
	}
	bres, err := BruteForceDesignSpace(pdk, space)
	if err != nil {
		t.Fatal(err)
	}
	ar := &DSEArchive{}
	for _, p := range dres.Frontier {
		ar.Add(p)
	}
	if !ar.Covers(bres.Frontier) {
		t.Error("adaptive frontier must cover the brute-force frontier")
	}
	if top := DSETopK(dres.Frontier, 1); len(top) != 1 {
		t.Errorf("DSETopK: %d points", len(top))
	}

	// Inter-tier variation + Monte-Carlo timing yield.
	if _, err := NewVariationSampler(Variation{SiDriveSigma: 2}, 1); !errors.Is(err, ErrBadSpec) {
		t.Errorf("oversized σ must match ErrBadSpec, got %v", err)
	}
	smp, err := NewVariationSampler(DefaultVariation(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if c := smp.Corner(7); c != smp.Corner(7) || len(c.TierScale) != int(NumTiers) {
		t.Error("corner draws must be index-deterministic across tiers")
	}
	nomSmp, err := NewVariationSampler(Variation{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range nomSmp.Corner(3).TierScale {
		if s != 1.0 {
			t.Errorf("σ=0 corner scale = %v, want exactly 1", s)
		}
	}
	band, err := VariationEDPBand(params, am, []Load{{F0: 256e6, D0: 1e6, NPart: 64}},
		DesignPoint{Delta: 1, TierPairs: 1, BWScale: 1}, smp, 128)
	if err != nil {
		t.Fatal(err)
	}
	if !(band.P5 <= band.P50 && band.P50 <= band.P95) {
		t.Errorf("EDP band out of order: %+v", band)
	}
	fres, err := RunFlow(pdk, SoCSpec{Style: Style3D, NumCS: 1, ArrayRows: 2, ArrayCols: 2,
		RRAMCapBits: 1 << 23, Banks: 1, GlobalSRAMBits: 65536, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewYieldEngine(fres, DefaultVariation(), 1)
	if err != nil {
		t.Fatal(err)
	}
	yres, err := eng.Analyze(YieldOptions{Samples: 64}, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(yres.CritPathS) != 64 || len(yres.Curve) != len(DefaultYieldPeriods(yres.Nominal.CriticalPathS)) {
		t.Errorf("yield run shape off: %d samples, %d curve points", len(yres.CritPathS), len(yres.Curve))
	}
	for i := 1; i < len(yres.Curve); i++ {
		if yres.Curve[i].Yield < yres.Curve[i-1].Yield {
			t.Error("yield curve must be monotone in period")
		}
	}
	q := QuantilesOf(yres.CritPathS)
	if !(q.P5 <= q.P50 && q.P50 <= q.P95) {
		t.Errorf("critical-path quantiles out of order: %+v", q)
	}

	// Experiment entry points return data.
	rows, err := Table1(pdk)
	if err != nil || len(rows) != 22 {
		t.Errorf("Table1: %d rows, err %v", len(rows), err)
	}
	f9, err := Fig9(pdk, []int{32, 64})
	if err != nil || len(f9) != 2 {
		t.Errorf("Fig9: %v", err)
	}
	fw, err := FutureWorkUpperLogic(pdk)
	if err != nil || len(fw) != 2 {
		t.Errorf("FutureWork: %v", err)
	}
}

// TestPDKKnobs exercises the With* sweepable options from the top level.
func TestPDKKnobs(t *testing.T) {
	pdk := Default130()
	relaxed := pdk.WithCNFETWidthRelax(1.5)
	if relaxed.CNFETWidthRelax != 1.5 {
		t.Error("δ knob broken")
	}
	scaled := pdk.WithILVPitchScale(1.3)
	if scaled.ILVPitch <= pdk.ILVPitch {
		t.Error("β knob broken")
	}
	if pdk.CNFETWidthRelax != 1.0 {
		t.Error("knobs must not mutate the source PDK")
	}
}
