// Quickstart: evaluate the paper's headline result in a few lines — the
// iso-footprint, iso-on-chip-memory-capacity M3D accelerator vs its 2D
// baseline on ResNet-18, using the architectural cost model and the
// analytical framework.
package main

import (
	"fmt"
	"log"

	"m3d"
)

func main() {
	log.SetFlags(0)

	// 1. Technology: the parameterized 130 nm foundry M3D PDK model.
	pdk := m3d.Default130()

	// 2. Area model (Eq. 2): how many parallel computing sub-systems does
	// moving the RRAM access FETs to the BEOL CNFET tier free room for?
	am, err := m3d.BuildAreaModel(pdk, 64<<23) // 64 MB on-chip RRAM
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gamma_cells = %.2f  ->  N = %d parallel CSs (paper: 8)\n\n",
		am.GammaCells(), am.N())

	// 3. Architectural comparison on ResNet-18 (the paper's Table I).
	a2d, a3d, n, err := m3d.CaseStudyPair(pdk)
	if err != nil {
		log.Fatal(err)
	}
	speedup, energyRatio, edp, err := a3d.Benefit(a2d, m3d.ResNet18())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ResNet-18, %d-CS M3D vs 2D baseline:\n", n)
	fmt.Printf("  speedup      %.2fx   (paper: 5.64x)\n", speedup)
	fmt.Printf("  energy       %.2fx   (paper: 0.99x)\n", 1/energyRatio)
	fmt.Printf("  EDP benefit  %.2fx   (paper: 5.66x)\n\n", edp)

	// 4. The same result from the paper's analytical framework (Eqs. 1-8).
	for _, model := range m3d.Zoo() {
		sp, _, e, err := a3d.Benefit(a2d, model)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s speedup %.2fx  EDP %.2fx\n", model.Name, sp, e)
	}
}
