// Multi-tier stacking under the thermal budget (the paper's Fig. 10d and
// Obs. 9-10): sweep interleaved compute+memory tier pairs, watch the EDP
// benefit plateau against the workload's parallelizability, and find where
// the Eq. 17 temperature rise crosses the 60 K budget.
package main

import (
	"fmt"
	"log"

	"m3d"
)

func main() {
	log.SetFlags(0)
	pdk := m3d.Default130()

	for _, power := range []float64{1.0, 2.0, 4.0} {
		rows, err := m3d.Fig10d(pdk, []int{1, 2, 3, 4, 6, 8, 12}, power)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ResNet-18, %.1f W per tier pair (budget: %.0f K rise):\n",
			power, pdk.MaxTempRiseK)
		for _, r := range rows {
			mark := "ok"
			if !r.Thermal {
				mark = "OVER BUDGET"
			}
			fmt.Printf("  Y=%2d  N=%3d  EDP %5.2fx  rise %5.1f K  %s\n",
				r.Y, r.N, r.EDPBenefit, r.TempRiseK, mark)
		}
		fmt.Printf("  -> max feasible tiers at this power: %d\n\n",
			m3d.MaxThermalTiers(pdk, power))
	}

	// Obs. 9's aside: a highly parallelizable layer keeps scaling.
	stack := m3d.NewThermalStack(pdk, []float64{2, 2, 2})
	fmt.Printf("3-pair stack at 2 W each: rise %.1f K, feasible: %v\n",
		stack.TempRiseK(), stack.Feasible(pdk.MaxTempRiseK))
}
