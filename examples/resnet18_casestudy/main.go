// The Sec. II physical-design case study end-to-end: run the RTL-to-GDS
// flow for the 2D baseline and the iso-footprint M3D design (at a reduced
// scale so it finishes in tens of seconds), print the Fig. 2-style
// comparison and the Table I per-layer benefits, and write both layouts
// as GDSII.
package main

import (
	"fmt"
	"log"
	"os"

	"m3d"
)

func main() {
	log.SetFlags(0)
	pdk := m3d.Default130()

	// Table I (architectural model, full scale).
	rows, err := m3d.Table1(pdk)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Table I: ResNet-18 layer-by-layer M3D benefits")
	fmt.Printf("%-12s %8s %8s %8s\n", "Layer", "Speedup", "Energy", "EDP")
	for _, r := range rows {
		fmt.Printf("%-12s %7.2fx %7.2fx %7.2fx\n", r.Name, r.Speedup, 1/r.EnergyRatio, r.EDPBenefit)
	}
	fmt.Println()

	// Physical flow at reduced scale (2x2 PEs per CS, 2 CSs, 2 MB RRAM):
	// the identical flow, small enough for an example run.
	log.Println("running the reduced-scale physical-design flow (this takes ~1 min)...")
	cmp, err := m3d.RunCaseStudyFlow(pdk, 2, 2, 2<<20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPhysical case study (iso-footprint %0.3f mm2):\n",
		float64(cmp.TwoD.Die.Area())/1e12)
	fmt.Printf("  2D : %6d cells, fmax %5.1f MHz, power %6.2f mW, free Si %0.3f mm2\n",
		cmp.TwoD.Cells, cmp.TwoD.FmaxHz/1e6, cmp.TwoD.Power.TotalW*1e3,
		float64(cmp.TwoD.Area.FreeSiNM2)/1e12)
	fmt.Printf("  M3D: %6d cells, fmax %5.1f MHz, power %6.2f mW, free Si %0.3f mm2\n",
		cmp.M3D.Cells, cmp.M3D.FmaxHz/1e6, cmp.M3D.Power.TotalW*1e3,
		float64(cmp.M3D.Area.FreeSiNM2)/1e12)
	fmt.Printf("  freed Si: %.1f%% of the die;  upper-tier power: %.2f%%;  peak density ratio: %.3f\n",
		100*cmp.FreedSiFrac, 100*cmp.UpperTierPowerFrac, cmp.PeakDensityRatio)

	// Write the M3D layout as GDS.
	f, err := os.Create("m3d_casestudy.gds")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	spec := m3d.SoCSpec{
		Style: m3d.Style3D, NumCS: 2, Banks: 2,
		ArrayRows: 2, ArrayCols: 2,
		RRAMCapBits: 2 << 20, GlobalSRAMBits: 64 << 10,
		Die: cmp.TwoD.Die, WriteGDS: f, Seed: 1,
	}
	if _, err := m3d.RunFlow(pdk, spec); err != nil {
		log.Fatal(err)
	}
	st, err := f.Stat()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote m3d_casestudy.gds (%d bytes)\n", st.Size())
}
