// Architecture exploration (the paper's Fig. 7 / Table II): evaluate six
// accelerator architectures under both the mapping engine (our ZigZag
// stand-in) and the analytical framework, then sweep bandwidth vs CS count
// (Fig. 8) to see when extra compute or extra bandwidth pays off.
package main

import (
	"fmt"
	"log"

	"m3d"
)

func main() {
	log.SetFlags(0)
	pdk := m3d.Default130()

	rows, err := m3d.Fig7(pdk)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Fig. 7: Table II architectures on AlexNet convolutions")
	fmt.Printf("%-7s %12s %14s %8s\n", "Arch", "Mapper EDP", "Analytic EDP", "Diff")
	for _, r := range rows {
		fmt.Printf("%-7s %11.2fx %13.2fx %7.1f%%\n",
			r.Arch, r.Mapper.EDPBenefit, r.Analytic.EDPBenefit, 100*r.RelativeEDPDiff)
	}

	cb, mb, err := m3d.Fig8(pdk)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nFig. 8 (Obs. 5): where do extra CSs vs extra bandwidth pay off?")
	fmt.Println("compute-bound load (16 ops/bit):")
	printDiag(cb)
	fmt.Println("memory-bound load (16 bits/op):")
	printDiag(mb)
}

// printDiag prints the (n CS, n× BW) diagonal — the balanced-scaling line.
func printDiag(pts []m3d.SweepPoint) {
	for _, pt := range pts {
		if float64(pt.NumCS) == pt.BWScale {
			fmt.Printf("  %2d CS, %4.0fx BW -> EDP %6.2fx\n", pt.NumCS, pt.BWScale, pt.EDPBenefit)
		}
	}
}
