// Functional verification and fault injection on the generated hardware:
// build the case-study MAC processing element at gate level, prove it
// computes act×weight+psum exactly, then run a stuck-at fault-injection
// campaign to measure how much of the datapath a simple stimulus covers.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"m3d/internal/cell"
	"m3d/internal/sim"
	"m3d/internal/synth"
	"m3d/internal/tech"
)

func main() {
	log.SetFlags(0)
	pdk := tech.Default130()
	lib, err := cell.NewLibrary(pdk, tech.TierSiCMOS)
	if err != nil {
		log.Fatal(err)
	}

	// One weight-stationary PE, exactly as the flow implements it.
	b := synth.NewBuilder("pe", lib)
	act := b.InputBus("a", 8, 0.3)
	psum := b.InputBus("p", 24, 0.3)
	w := b.InputBus("w", 8, 0.3)
	res := b.MACWithWeights("pe", act, psum, w, 0.3)
	b.SinkBus("ao", res.ActOut)
	b.SinkBus("po", res.PSumOut)
	if err := b.NL.Check(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PE netlist: %d cells, %d nets\n", len(b.NL.Instances), len(b.NL.Nets))

	s, err := sim.New(b.NL)
	if err != nil {
		log.Fatal(err)
	}

	// Functional check over random vectors.
	rng := rand.New(rand.NewSource(42))
	ok := 0
	const vectors = 500
	for i := 0; i < vectors; i++ {
		a, wv, pv := uint64(rng.Intn(256)), uint64(rng.Intn(256)), uint64(rng.Intn(1<<16))
		s.Reset()
		s.ForceBus(act, a)
		s.ForceBus(w, wv)
		s.ForceBus(psum, pv)
		s.Step() // latch weight + activation
		s.Step() // latch the accumulated partial sum
		if s.ReadBus(res.PSumOut) == a*wv+pv {
			ok++
		}
	}
	fmt.Printf("functional: %d/%d random MAC vectors exact\n", ok, vectors)
	if ok != vectors {
		log.Fatal("datapath mismatch!")
	}

	// Stuck-at campaign.
	camp, err := sim.RunStuckAtCampaign(s, rng, 300,
		func(s *sim.Simulator) {
			s.ForceBus(act, 0xAD)
			s.ForceBus(w, 0x5B)
			s.ForceBus(psum, 0x1234)
			s.Step()
			s.Step()
		},
		func(s *sim.Simulator) uint64 { return s.ReadBus(res.PSumOut) })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault campaign: %d stuck-at faults injected, %d detected (%.0f%% coverage of this stimulus)\n",
		camp.Injected, camp.Detected, 100*camp.Coverage())
}
