package lef

import (
	"bytes"
	"strings"
	"testing"

	"m3d/internal/cell"
	"m3d/internal/macro"
	"m3d/internal/netlist"
	"m3d/internal/tech"
)

func TestWriteTech(t *testing.T) {
	p := tech.Default130()
	var buf bytes.Buffer
	if err := WriteTech(&buf, p); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"VERSION 5.8 ;",
		"DATABASE MICRONS 1000 ;",
		"SITE core",
		"SIZE 0.410 BY 3.690 ;",
		"LAYER M1",
		"DIRECTION HORIZONTAL ;",
		"LAYER M2",
		"DIRECTION VERTICAL ;",
		"LAYER ILV_RRAM",
		"TYPE CUT ;",
		"END LIBRARY",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
	// All six routing layers present.
	if n := strings.Count(out, "TYPE ROUTING ;"); n != 6 {
		t.Errorf("routing layers = %d, want 6", n)
	}
	bad := tech.Default130()
	bad.VDD = 0
	if err := WriteTech(&buf, bad); err == nil {
		t.Error("invalid PDK should fail")
	}
}

func TestWriteCells(t *testing.T) {
	p := tech.Default130()
	lib, err := cell.NewLibrary(p, tech.TierSiCMOS)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCells(&buf, p, lib); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if n := strings.Count(out, "MACRO "); n != lib.Size() {
		t.Errorf("macros = %d, want %d", n, lib.Size())
	}
	if !strings.Contains(out, "MACRO NAND2_X2") {
		t.Error("missing NAND2_X2")
	}
	// DFF has D/CK/Q pins.
	dffBlock := out[strings.Index(out, "MACRO DFF_X1"):]
	dffBlock = dffBlock[:strings.Index(dffBlock, "END DFF_X1")]
	for _, pin := range []string{"PIN D", "PIN CK", "PIN Q"} {
		if !strings.Contains(dffBlock, pin) {
			t.Errorf("DFF missing %q", pin)
		}
	}
	if err := WriteCells(&buf, p, nil); err == nil {
		t.Error("nil library should fail")
	}
}

func TestWriteMacros(t *testing.T) {
	p := tech.Default130()
	bank, err := macro.NewRRAMBank(p, macro.RRAMBankSpec{CapacityBits: 1 << 20, WordBits: 32, Style: macro.Style3D})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	// Duplicate kinds are emitted once.
	if err := WriteMacros(&buf, []*netlist.MacroRef{bank.Ref, bank.Ref, nil}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if n := strings.Count(out, "MACRO rram_bank_M3D"); n != 1 {
		t.Errorf("bank macro emitted %d times", n)
	}
	if !strings.Contains(out, "CLASS BLOCK ;") {
		t.Error("hard macros must be CLASS BLOCK")
	}
}
