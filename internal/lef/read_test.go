package lef

import (
	"bytes"
	"strings"
	"testing"

	"m3d/internal/cell"
	"m3d/internal/netlist"
	"m3d/internal/tech"
)

func TestReadTechRoundTrip(t *testing.T) {
	p := tech.Default130()
	var buf bytes.Buffer
	if err := WriteTech(&buf, p); err != nil {
		t.Fatal(err)
	}
	parsed, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Read(WriteTech): %v", err)
	}
	if parsed.DatabaseUnits != 1000 {
		t.Errorf("database units = %d, want 1000", parsed.DatabaseUnits)
	}
	var wantRouting, wantCut int
	for _, l := range p.Stack {
		switch l.Kind {
		case tech.LayerRouting:
			wantRouting++
		case tech.LayerVia:
			wantCut++
		}
	}
	var routing, cut int
	for _, l := range parsed.Layers {
		switch l.Type {
		case "ROUTING":
			routing++
			if l.PitchUM <= 0 {
				t.Errorf("layer %s: non-positive pitch %g", l.Name, l.PitchUM)
			}
			if l.Direction != "HORIZONTAL" && l.Direction != "VERTICAL" {
				t.Errorf("layer %s: bad direction %q", l.Name, l.Direction)
			}
		case "CUT":
			cut++
		}
	}
	if routing != wantRouting || cut != wantCut {
		t.Errorf("layers: %d routing, %d cut; want %d, %d", routing, cut, wantRouting, wantCut)
	}
	if len(parsed.Sites) != 1 || parsed.Sites[0].Name != "core" {
		t.Fatalf("sites: %+v", parsed.Sites)
	}
	if parsed.Sites[0].WidthUM <= 0 || parsed.Sites[0].HeightUM <= 0 {
		t.Errorf("site size: %+v", parsed.Sites[0])
	}
}

func TestReadCellsRoundTrip(t *testing.T) {
	p := tech.Default130()
	lib, err := cell.NewLibrary(p, tech.TierSiCMOS)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCells(&buf, p, lib); err != nil {
		t.Fatal(err)
	}
	parsed, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Read(WriteCells): %v", err)
	}
	if len(parsed.Macros) != len(lib.Cells()) {
		t.Fatalf("parsed %d macros, library has %d cells", len(parsed.Macros), len(lib.Cells()))
	}
	for _, m := range parsed.Macros {
		if m.Class != "CORE" {
			t.Errorf("cell %s: class %q", m.Name, m.Class)
		}
		if m.WidthUM <= 0 || m.HeightUM <= 0 {
			t.Errorf("cell %s: size %g×%g", m.Name, m.WidthUM, m.HeightUM)
		}
		var outs int
		for _, pin := range m.Pins {
			if pin.Direction == "OUTPUT" {
				outs++
			}
		}
		if outs != 1 {
			t.Errorf("cell %s: %d output pins", m.Name, outs)
		}
	}
}

func TestReadMacrosRoundTrip(t *testing.T) {
	refs := []*netlist.MacroRef{
		{Kind: "RRAM_BANK", Width: 42_000, Height: 36_500},
		{Kind: "SRAM_BUF", Width: 12_000, Height: 8_000},
		{Kind: "RRAM_BANK", Width: 42_000, Height: 36_500}, // duplicate kind: emitted once
		nil,
	}
	var buf bytes.Buffer
	if err := WriteMacros(&buf, refs); err != nil {
		t.Fatal(err)
	}
	parsed, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Read(WriteMacros): %v", err)
	}
	if len(parsed.Macros) != 2 {
		t.Fatalf("parsed %d macros, want 2: %+v", len(parsed.Macros), parsed.Macros)
	}
	got := map[string][2]float64{}
	for _, m := range parsed.Macros {
		if m.Class != "BLOCK" {
			t.Errorf("macro %s: class %q, want BLOCK", m.Name, m.Class)
		}
		got[m.Name] = [2]float64{m.WidthUM, m.HeightUM}
	}
	if got["RRAM_BANK"] != [2]float64{42.0, 36.5} {
		t.Errorf("RRAM_BANK size = %v", got["RRAM_BANK"])
	}
	if got["SRAM_BUF"] != [2]float64{12.0, 8.0} {
		t.Errorf("SRAM_BUF size = %v", got["SRAM_BUF"])
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"LAYER M1\nTYPE ROUTING ;\n",            // unterminated layer
		"MACRO X\n",                             // unterminated macro
		"MACRO X\n  PIN A\n",                    // unterminated pin
		"PIN A\nEND A\n",                        // pin outside macro
		"LAYER M1\n  PITCH zzz ;\nEND M1\n",     // bad number
		"MACRO X\n  SIZE 1.0 2.0 ;\nEND X\n",    // malformed SIZE
		"UNITS\n  DATABASE MICRONS nope ;\n",    // bad units
		"LAYER M1\nLAYER M2\nEND M2\nEND M1\n",  // nested layer
		"MACRO A\nMACRO B\nEND B\nEND A\n",      // nested macro
		"MACRO A\n PIN X\n PIN Y\nEND A\n",      // nested pin
		"LAYER M1\n  RESISTANCE RPERSQ x ;\n",   // bad resistance
		"MACRO A\n  SIZE 1 BY nope ;\nEND A\n",  // bad size operand
	}
	for _, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}
