package lef

import (
	"bytes"
	"strings"
	"testing"

	"m3d/internal/cell"
	"m3d/internal/tech"
)

// FuzzRead feeds arbitrary text through the LEF reader. The property
// under test: Read never panics — malformed input must come back as an
// error (or parse cleanly), never as a crash.
func FuzzRead(f *testing.F) {
	p := tech.Default130()
	var techBuf bytes.Buffer
	if err := WriteTech(&techBuf, p); err != nil {
		f.Fatal(err)
	}
	f.Add(techBuf.String())
	if lib, err := cell.NewLibrary(p, tech.TierSiCMOS); err == nil {
		var cellBuf bytes.Buffer
		if err := WriteCells(&cellBuf, p, lib); err == nil {
			f.Add(cellBuf.String())
		}
	}
	f.Add("LAYER M1\n  TYPE ROUTING ;\n  PITCH 0.4 ;\nEND M1\n")
	f.Add("MACRO X\n  SIZE 1 BY 2 ;\n  PIN A\n    DIRECTION INPUT ;\n  END A\nEND X\n")
	f.Add("SIZE BY ;\n")
	f.Add("END\n")

	f.Fuzz(func(t *testing.T, data string) {
		parsed, err := Read(strings.NewReader(data))
		if err == nil && parsed == nil {
			t.Fatal("nil parse with nil error")
		}
	})
}
