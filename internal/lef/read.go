package lef

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParsedLayer is one LAYER block from a technology LEF.
type ParsedLayer struct {
	Name      string
	Type      string // ROUTING | CUT
	Direction string // HORIZONTAL | VERTICAL ("" for cut layers)
	PitchUM   float64
	RPerSq    float64
}

// ParsedPin is one PIN block inside a MACRO.
type ParsedPin struct {
	Name      string
	Direction string // INPUT | OUTPUT | INOUT
}

// ParsedMacro is one MACRO block (standard cell or hard macro).
type ParsedMacro struct {
	Name     string
	Class    string // CORE | BLOCK
	WidthUM  float64
	HeightUM float64
	Pins     []ParsedPin
}

// ParsedSite is a SITE definition.
type ParsedSite struct {
	Name     string
	WidthUM  float64
	HeightUM float64
}

// Parsed is the reader's view of a LEF stream: the subset WriteTech,
// WriteCells, and WriteMacros produce.
type Parsed struct {
	DatabaseUnits int
	Sites         []ParsedSite
	Layers        []ParsedLayer
	Macros        []ParsedMacro
}

// Read parses the LEF subset this package writes (technology layers,
// sites, macro geometry and pin directions). It is tolerant of unknown
// statements — they are skipped — but returns errors (never panics) on
// structurally broken input such as unterminated blocks or malformed
// numbers in known statements.
func Read(r io.Reader) (*Parsed, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	out := &Parsed{}
	var layer *ParsedLayer
	var mac *ParsedMacro
	var pin *ParsedPin
	lineNo := 0
	for sc.Scan() {
		lineNo++
		f := strings.Fields(strings.TrimSpace(sc.Text()))
		if len(f) == 0 || strings.HasPrefix(f[0], "#") {
			continue
		}
		switch f[0] {
		case "UNITS":
			// DATABASE MICRONS <n> ; appears on a following line.
		case "DATABASE":
			if len(f) >= 3 && f[1] == "MICRONS" {
				n, err := strconv.Atoi(f[2])
				if err != nil || n <= 0 {
					return nil, fmt.Errorf("lef: line %d: bad DATABASE MICRONS %q", lineNo, f[2])
				}
				out.DatabaseUnits = n
			}
		case "SITE":
			if len(f) < 2 {
				return nil, fmt.Errorf("lef: line %d: SITE without a name", lineNo)
			}
			out.Sites = append(out.Sites, ParsedSite{Name: f[1]})
		case "LAYER":
			if mac != nil || pin != nil {
				// LAYER inside a PIN PORT — geometry reference, skip.
				continue
			}
			if layer != nil {
				return nil, fmt.Errorf("lef: line %d: LAYER %q opened inside LAYER %q", lineNo, sliceAt(f, 1), layer.Name)
			}
			if len(f) < 2 {
				return nil, fmt.Errorf("lef: line %d: LAYER without a name", lineNo)
			}
			layer = &ParsedLayer{Name: f[1]}
		case "TYPE":
			if layer != nil && len(f) >= 2 {
				layer.Type = strings.TrimSuffix(f[1], ";")
			}
		case "DIRECTION":
			if len(f) < 2 {
				continue
			}
			v := strings.TrimSuffix(f[1], ";")
			switch {
			case pin != nil:
				pin.Direction = v
			case layer != nil:
				layer.Direction = v
			}
		case "PITCH":
			if layer != nil {
				v, err := leafNumber(f, 1)
				if err != nil {
					return nil, fmt.Errorf("lef: line %d: %w", lineNo, err)
				}
				layer.PitchUM = v
			}
		case "RESISTANCE":
			if layer != nil && len(f) >= 3 && f[1] == "RPERSQ" {
				v, err := leafNumber(f, 2)
				if err != nil {
					return nil, fmt.Errorf("lef: line %d: %w", lineNo, err)
				}
				layer.RPerSq = v
			}
		case "MACRO":
			if mac != nil {
				return nil, fmt.Errorf("lef: line %d: MACRO %q opened inside MACRO %q", lineNo, sliceAt(f, 1), mac.Name)
			}
			if len(f) < 2 {
				return nil, fmt.Errorf("lef: line %d: MACRO without a name", lineNo)
			}
			mac = &ParsedMacro{Name: f[1]}
		case "CLASS":
			if mac != nil && pin == nil && len(f) >= 2 {
				mac.Class = strings.TrimSuffix(f[1], ";")
			}
		case "SIZE":
			// SIZE w BY h ;
			if len(f) < 4 || !strings.EqualFold(f[2], "BY") {
				return nil, fmt.Errorf("lef: line %d: malformed SIZE", lineNo)
			}
			w, err := leafNumber(f, 1)
			if err != nil {
				return nil, fmt.Errorf("lef: line %d: %w", lineNo, err)
			}
			h, err := leafNumber(f, 3)
			if err != nil {
				return nil, fmt.Errorf("lef: line %d: %w", lineNo, err)
			}
			switch {
			case mac != nil && pin == nil:
				mac.WidthUM, mac.HeightUM = w, h
			case mac == nil && len(out.Sites) > 0 && layer == nil:
				out.Sites[len(out.Sites)-1].WidthUM = w
				out.Sites[len(out.Sites)-1].HeightUM = h
			}
		case "PIN":
			if mac == nil {
				return nil, fmt.Errorf("lef: line %d: PIN outside MACRO", lineNo)
			}
			if pin != nil {
				return nil, fmt.Errorf("lef: line %d: PIN %q opened inside PIN %q", lineNo, sliceAt(f, 1), pin.Name)
			}
			if len(f) < 2 {
				return nil, fmt.Errorf("lef: line %d: PIN without a name", lineNo)
			}
			pin = &ParsedPin{Name: f[1]}
		case "END":
			switch {
			case pin != nil && len(f) >= 2 && f[1] == pin.Name:
				mac.Pins = append(mac.Pins, *pin)
				pin = nil
			case pin != nil && len(f) == 1:
				// END of an inner PORT block; stay inside the pin.
			case mac != nil && len(f) >= 2 && f[1] == mac.Name:
				out.Macros = append(out.Macros, *mac)
				mac = nil
			case layer != nil && len(f) >= 2 && f[1] == layer.Name:
				out.Layers = append(out.Layers, *layer)
				layer = nil
			default:
				// END UNITS, END LIBRARY, END <site>, bare END: skip.
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("lef: %w", err)
	}
	if layer != nil {
		return nil, fmt.Errorf("lef: unterminated LAYER %q", layer.Name)
	}
	if pin != nil {
		return nil, fmt.Errorf("lef: unterminated PIN %q", pin.Name)
	}
	if mac != nil {
		return nil, fmt.Errorf("lef: unterminated MACRO %q", mac.Name)
	}
	return out, nil
}

// leafNumber parses fields[i] as a float, tolerating a trailing ';'.
func leafNumber(fields []string, i int) (float64, error) {
	if i >= len(fields) {
		return 0, fmt.Errorf("missing numeric field")
	}
	s := strings.TrimSuffix(fields[i], ";")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", fields[i])
	}
	return v, nil
}

// sliceAt returns fields[i] or "" when out of range (for error messages).
func sliceAt(fields []string, i int) string {
	if i < len(fields) {
		return fields[i]
	}
	return ""
}
