// Package lef writes a subset of LEF (Library Exchange Format): the
// technology section (routing layers with direction and pitch, cut layers)
// and macro definitions for the standard-cell library and hard macros. It
// is the library-side counterpart of the def package, letting external
// tools consume the PDK and cell geometry.
package lef

import (
	"bufio"
	"fmt"
	"io"

	"m3d/internal/cell"
	"m3d/internal/netlist"
	"m3d/internal/tech"
)

// micron converts DBU (nm) to LEF microns.
func micron(dbu int64) float64 { return float64(dbu) / 1000.0 }

// WriteTech emits the technology LEF: units, site, and the layer stack.
func WriteTech(w io.Writer, p *tech.PDK) error {
	if err := p.Validate(); err != nil {
		return fmt.Errorf("lef: invalid PDK: %w", err)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "VERSION 5.8 ;\nBUSBITCHARS \"[]\" ;\nDIVIDERCHAR \"/\" ;\n")
	fmt.Fprintf(bw, "UNITS\n  DATABASE MICRONS 1000 ;\nEND UNITS\n\n")
	fmt.Fprintf(bw, "SITE core\n  CLASS CORE ;\n  SIZE %.3f BY %.3f ;\nEND core\n\n",
		micron(p.SiteWidth), micron(p.RowHeight))
	for _, l := range p.Stack {
		switch l.Kind {
		case tech.LayerRouting:
			dir := "HORIZONTAL"
			if l.Dir == tech.DirVertical {
				dir = "VERTICAL"
			}
			fmt.Fprintf(bw, "LAYER %s\n  TYPE ROUTING ;\n  DIRECTION %s ;\n  PITCH %.3f ;\n  RESISTANCE RPERSQ %.4f ;\nEND %s\n\n",
				l.Name, dir, micron(l.Pitch), l.ROhmPerUm, l.Name)
		case tech.LayerVia:
			fmt.Fprintf(bw, "LAYER %s\n  TYPE CUT ;\nEND %s\n\n", l.Name, l.Name)
		}
	}
	fmt.Fprintf(bw, "END LIBRARY\n")
	return bw.Flush()
}

// WriteCells emits macro definitions for every cell of the library.
func WriteCells(w io.Writer, p *tech.PDK, lib *cell.Library) error {
	if lib == nil {
		return fmt.Errorf("lef: nil library")
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "VERSION 5.8 ;\n\n")
	for _, c := range lib.Cells() {
		width := micron(int64(c.Sites) * p.SiteWidth)
		height := micron(p.RowHeight)
		fmt.Fprintf(bw, "MACRO %s\n  CLASS CORE ;\n  ORIGIN 0 0 ;\n  SIZE %.3f BY %.3f ;\n  SITE core ;\n",
			c.Name, width, height)
		// Pins: inputs A..D (by arity), output Y (Q + CK for sequential).
		names := []string{"A", "B", "C", "D"}
		for i := 0; i < c.NumInputs && i < len(names); i++ {
			writePin(bw, names[i], "INPUT", width, height, i+1)
		}
		if c.Sequential {
			writePin(bw, "D", "INPUT", width, height, 1)
			writePin(bw, "CK", "INPUT", width, height, 2)
			writePin(bw, "Q", "OUTPUT", width, height, 3)
		} else {
			writePin(bw, "Y", "OUTPUT", width, height, c.NumInputs+1)
		}
		fmt.Fprintf(bw, "END %s\n\n", c.Name)
	}
	fmt.Fprintf(bw, "END LIBRARY\n")
	return bw.Flush()
}

// WriteMacros emits LEF blocks for hard macros (RRAM banks, SRAM buffers).
func WriteMacros(w io.Writer, refs []*netlist.MacroRef) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "VERSION 5.8 ;\n\n")
	seen := map[string]bool{}
	for _, m := range refs {
		if m == nil || seen[m.Kind] {
			continue
		}
		seen[m.Kind] = true
		fmt.Fprintf(bw, "MACRO %s\n  CLASS BLOCK ;\n  ORIGIN 0 0 ;\n  SIZE %.3f BY %.3f ;\nEND %s\n\n",
			m.Kind, micron(m.Width), micron(m.Height), m.Kind)
	}
	fmt.Fprintf(bw, "END LIBRARY\n")
	return bw.Flush()
}

// writePin emits one pin with a small port rectangle on M1, staggered by
// index so pins do not overlap.
func writePin(bw *bufio.Writer, name, dir string, width, height float64, idx int) {
	x := width * float64(idx) / 6.0
	if x > width-0.05 {
		x = width - 0.05
	}
	fmt.Fprintf(bw, "  PIN %s\n    DIRECTION %s ;\n    PORT\n      LAYER M1 ;\n      RECT %.3f %.3f %.3f %.3f ;\n    END\n  END %s\n",
		name, dir, x, height/3, x+0.05, height/3+0.05, name)
}
