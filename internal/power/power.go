// Package power implements post-route power analysis (the flow's Tempus
// stage): activity-based dynamic power over routed net capacitances, cell
// internal and leakage power from the library characterization, clock-tree
// power, macro access power, a per-tier breakdown (the basis of the paper's
// Obs. 2: the CNFET+RRAM upper layers dissipate <1 % of chip power), and a
// power-density map for thermal analysis.
package power

import (
	"fmt"

	"m3d/internal/cell"
	"m3d/internal/geom"
	"m3d/internal/netlist"
	"m3d/internal/sta"
	"m3d/internal/tech"
)

// Options configures the analysis.
type Options struct {
	// ClockHz is the operating frequency.
	ClockHz float64
	// MacroAccessRate is the average accesses per cycle per macro port
	// (default 0.25).
	MacroAccessRate float64
}

// Fraction of an RRAM bank's access energy dissipated in the BEOL layers
// (the cell switching itself plus the CNFET access transistors); the rest
// burns in the Si peripherals (sense amplifiers, drivers, controllers) —
// the paper's Obs. 2 notes the power-hungry peripherals stay in Si CMOS,
// keeping upper-layer power under 1% of the chip total.
const beolAccessFrac = 0.05

// Breakdown is the power report.
type Breakdown struct {
	// SwitchingW is signal-net dynamic power (wire + pin caps + internal).
	SwitchingW float64
	// ClockW is clock-tree dynamic power.
	ClockW float64
	// LeakageW is total static power (cells + macros).
	LeakageW float64
	// MacroW is macro access (read/write event) power.
	MacroW float64
	// TotalW sums everything.
	TotalW float64
	// ByTier splits TotalW across device tiers.
	ByTier map[tech.Tier]float64
	// ByModule splits instance-attributed power by top-level module (the
	// instance-name prefix before the first underscore: cs0, bank2, ...).
	ByModule map[string]float64
	// PeakDensityWPerMM2 is the hottest grid cell's power density.
	PeakDensityWPerMM2 float64
	// Density is the power map used for thermal analysis.
	Density *geom.Grid
}

// UpperTierFraction returns the share of total power in the BEOL tiers
// (RRAM + CNFET) — the quantity the paper's Obs. 2 bounds at <1 %.
func (b *Breakdown) UpperTierFraction() float64 {
	if b.TotalW == 0 {
		return 0
	}
	return (b.ByTier[tech.TierRRAM] + b.ByTier[tech.TierCNFET]) / b.TotalW
}

// Analyze computes the power breakdown of a (placed, ideally routed)
// netlist. wm may be nil for a pre-route HPWL estimate; die bounds the
// density map.
func Analyze(p *tech.PDK, nl *netlist.Netlist, wm *sta.WireModel, die geom.Rect, opt Options) (*Breakdown, error) {
	if opt.ClockHz <= 0 {
		return nil, fmt.Errorf("power: clock frequency must be positive, got %g", opt.ClockHz)
	}
	if opt.MacroAccessRate == 0 {
		opt.MacroAccessRate = 0.25
	}
	if opt.MacroAccessRate < 0 || opt.MacroAccessRate > 1 {
		return nil, fmt.Errorf("power: macro access rate %g out of [0,1]", opt.MacroAccessRate)
	}
	if wm == nil {
		wm = sta.NewWireModel(p, nil)
	}
	if die.Empty() {
		die = geom.R(0, 0, 1_000_000, 1_000_000)
	}

	bd := &Breakdown{
		ByTier:   map[tech.Tier]float64{},
		ByModule: map[string]float64{},
		Density:  geom.NewGrid(die, maxI64(die.W()/32, p.RowHeight)),
	}
	v2 := p.VDD * p.VDD
	f := opt.ClockHz

	addInst := func(inst *netlist.Instance, w float64) {
		bd.ByTier[inst.Tier] += w
		bd.ByModule[moduleOf(inst.Name)] += w
		bd.Density.AddRect(inst.Bounds(p), w)
	}

	// Signal switching: per net, activity × f × C × V² charged to the
	// driver, plus the driver's internal switching energy.
	for _, n := range nl.Nets {
		if n.Driver == nil {
			continue
		}
		drv := n.Driver.Inst
		_, cw := wm.NetRC(n)
		cTotal := cw + n.SinkCapF()
		act := n.Activity
		if n.Clock {
			act = 2.0
		}
		wNet := 0.5 * act * f * cTotal * v2
		var wInt float64
		if !drv.IsMacro() {
			k := drv.Cell.Kind
			if k == cell.TieHi || k == cell.TieLo {
				continue // constants do not switch
			}
			wInt = act * f * drv.Cell.SwitchEnergyJ
		}
		if n.Clock {
			bd.ClockW += wNet + wInt
		} else {
			bd.SwitchingW += wNet + wInt
		}
		addInst(drv, wNet+wInt)
	}

	// Leakage and macro access power.
	for _, inst := range nl.Instances {
		if inst.IsMacro() {
			leak := inst.Macro.LeakageW
			bd.LeakageW += leak
			// Peripheral (Si) share vs BEOL share of access power.
			acc := opt.MacroAccessRate * f * inst.Macro.AccessEnergyJ
			bd.MacroW += acc
			si := leak + acc*(1-beolAccessFrac)
			beol := acc * beolAccessFrac
			bd.ByTier[tech.TierSiCMOS] += si
			bd.ByTier[inst.Tier] += beol
			bd.ByModule[moduleOf(inst.Name)] += si + beol
			bd.Density.AddRect(inst.Bounds(p), si+beol)
			continue
		}
		bd.LeakageW += inst.Cell.LeakageW
		addInst(inst, inst.Cell.LeakageW)
	}

	bd.TotalW = bd.SwitchingW + bd.ClockW + bd.LeakageW + bd.MacroW

	// Peak density: W per grid cell → W/mm².
	for iy := 0; iy < bd.Density.NY; iy++ {
		for ix := 0; ix < bd.Density.NX; ix++ {
			areaMM2 := float64(bd.Density.CellRect(ix, iy).Area()) / 1e12
			if areaMM2 <= 0 {
				continue
			}
			d := bd.Density.At(ix, iy) / areaMM2
			if d > bd.PeakDensityWPerMM2 {
				bd.PeakDensityWPerMM2 = d
			}
		}
	}
	return bd, nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// moduleOf maps an instance name to its top-level module: the prefix
// before the first underscore ("cs0_pe_r0c0_..." → "cs0").
func moduleOf(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '_' {
			return name[:i]
		}
	}
	return name
}
