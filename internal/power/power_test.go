package power

import (
	"testing"

	"m3d/internal/cell"
	"m3d/internal/geom"
	"m3d/internal/macro"
	"m3d/internal/netlist"
	"m3d/internal/synth"
	"m3d/internal/tech"
)

func buildDesign(t *testing.T, rows, cols int) (*tech.PDK, *netlist.Netlist) {
	t.Helper()
	p := tech.Default130()
	lib, err := cell.NewLibrary(p, tech.TierSiCMOS)
	if err != nil {
		t.Fatal(err)
	}
	b := synth.NewBuilder("dut", lib)
	b.Systolic("cs", synth.SystolicSpec{Rows: rows, Cols: cols, ActBits: 4, WeightBits: 4, AccBits: 12, Activity: 0.25})
	if err := b.NL.Check(); err != nil {
		t.Fatal(err)
	}
	return p, b.NL
}

func TestAnalyzeBasics(t *testing.T) {
	p, nl := buildDesign(t, 2, 2)
	bd, err := Analyze(p, nl, nil, geom.Rect{}, Options{ClockHz: 20e6})
	if err != nil {
		t.Fatal(err)
	}
	if bd.TotalW <= 0 {
		t.Fatal("total power must be positive")
	}
	if bd.SwitchingW <= 0 || bd.ClockW <= 0 || bd.LeakageW <= 0 {
		t.Errorf("components missing: sw=%g clk=%g leak=%g", bd.SwitchingW, bd.ClockW, bd.LeakageW)
	}
	sum := bd.SwitchingW + bd.ClockW + bd.LeakageW + bd.MacroW
	if diff := (sum - bd.TotalW) / bd.TotalW; diff > 1e-9 || diff < -1e-9 {
		t.Error("components do not sum to total")
	}
	// Pure-Si design: all power in the Si tier.
	if bd.UpperTierFraction() != 0 {
		t.Errorf("Si-only design has upper-tier power %g", bd.UpperTierFraction())
	}
}

func TestPowerScalesWithFrequency(t *testing.T) {
	p, nl := buildDesign(t, 1, 2)
	lo, err := Analyze(p, nl, nil, geom.Rect{}, Options{ClockHz: 10e6})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Analyze(p, nl, nil, geom.Rect{}, Options{ClockHz: 40e6})
	if err != nil {
		t.Fatal(err)
	}
	// Dynamic quadruples; leakage constant.
	if hi.SwitchingW < 3.9*lo.SwitchingW || hi.SwitchingW > 4.1*lo.SwitchingW {
		t.Errorf("dynamic power should scale 4x: %g -> %g", lo.SwitchingW, hi.SwitchingW)
	}
	if hi.LeakageW != lo.LeakageW {
		t.Error("leakage must not depend on frequency")
	}
}

func TestValidation(t *testing.T) {
	p, nl := buildDesign(t, 1, 1)
	if _, err := Analyze(p, nl, nil, geom.Rect{}, Options{}); err == nil {
		t.Error("zero clock should fail")
	}
	if _, err := Analyze(p, nl, nil, geom.Rect{}, Options{ClockHz: 1e6, MacroAccessRate: 2}); err == nil {
		t.Error("access rate > 1 should fail")
	}
}

func TestMacroPowerSplit(t *testing.T) {
	p := tech.Default130()
	bank, err := macro.NewRRAMBank(p, macro.RRAMBankSpec{CapacityBits: 16 << 20, WordBits: 256, Style: macro.Style3D})
	if err != nil {
		t.Fatal(err)
	}
	lib, err := cell.NewLibrary(p, tech.TierSiCMOS)
	if err != nil {
		t.Fatal(err)
	}
	b := synth.NewBuilder("soc", lib)
	b.BankPeriph("bp", 16)
	nl := b.NL
	bi := nl.AddMacro("bank", bank.Ref, tech.TierRRAM)
	bi.Pos = geom.Pt(0, 0)
	if err := nl.Check(); err != nil {
		t.Fatal(err)
	}
	die := geom.R(0, 0, 2*bank.Ref.Width, 2*bank.Ref.Height)
	bd, err := Analyze(p, nl, nil, die, Options{ClockHz: 20e6, MacroAccessRate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if bd.MacroW <= 0 {
		t.Fatal("macro access power missing")
	}
	frac := bd.UpperTierFraction()
	if frac <= 0 {
		t.Error("RRAM tier should carry some power")
	}
	// Peripherals dominate (Obs. 2): BEOL share of chip power stays small.
	if frac > 0.2 {
		t.Errorf("upper-tier fraction %g too large for a peripheral-dominated memory", frac)
	}
}

func TestDensityMapPositive(t *testing.T) {
	p, nl := buildDesign(t, 2, 2)
	// Spread instances over a die so the map has structure.
	die := geom.R(0, 0, 2_000_000, 2_000_000)
	x := int64(0)
	for _, inst := range nl.Instances {
		inst.Pos = geom.Pt(x%die.W(), (x/die.W())*p.RowHeight)
		x += 50_000
	}
	bd, err := Analyze(p, nl, nil, die, Options{ClockHz: 20e6})
	if err != nil {
		t.Fatal(err)
	}
	if bd.PeakDensityWPerMM2 <= 0 {
		t.Error("peak density must be positive")
	}
	// Total of density map ≈ power mapped onto instances (net + leak), which
	// is at most the chip total.
	if bd.Density.Sum() > bd.TotalW*1.0001 {
		t.Errorf("density map total %g exceeds chip power %g", bd.Density.Sum(), bd.TotalW)
	}
}

func TestTieCellsConsumeNothing(t *testing.T) {
	p := tech.Default130()
	lib, err := cell.NewLibrary(p, tech.TierSiCMOS)
	if err != nil {
		t.Fatal(err)
	}
	nl := netlist.New("tie")
	tie := nl.AddCell("t", lib.MustPick(cell.TieHi, 1))
	inv := nl.AddCell("i", lib.MustPick(cell.Inv, 1))
	n := nl.AddNet("n", 0.5)
	nl.MustPin(tie, "Y", true, 0, n)
	nl.MustPin(inv, "A", false, inv.Cell.InputCapF, n)
	bd, err := Analyze(p, nl, nil, geom.Rect{}, Options{ClockHz: 20e6})
	if err != nil {
		t.Fatal(err)
	}
	if bd.SwitchingW != 0 {
		t.Errorf("constant nets must not switch, got %g", bd.SwitchingW)
	}
	if bd.LeakageW <= 0 {
		t.Error("cells still leak")
	}
}

func TestByModuleBreakdown(t *testing.T) {
	p := tech.Default130()
	lib, err := cell.NewLibrary(p, tech.TierSiCMOS)
	if err != nil {
		t.Fatal(err)
	}
	b := synth.NewBuilder("soc", lib)
	b.Systolic("cs0", synth.SystolicSpec{Rows: 1, Cols: 1, ActBits: 4, WeightBits: 4, AccBits: 12, Activity: 0.25})
	b.Systolic("cs1", synth.SystolicSpec{Rows: 1, Cols: 1, ActBits: 4, WeightBits: 4, AccBits: 12, Activity: 0.25})
	if err := b.NL.Check(); err != nil {
		t.Fatal(err)
	}
	bd, err := Analyze(p, b.NL, nil, geom.Rect{}, Options{ClockHz: 20e6})
	if err != nil {
		t.Fatal(err)
	}
	if bd.ByModule["cs0"] <= 0 || bd.ByModule["cs1"] <= 0 {
		t.Fatalf("module power missing: %+v", bd.ByModule)
	}
	// Identical twin CSs draw near-identical power.
	ratio := bd.ByModule["cs0"] / bd.ByModule["cs1"]
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("twin CS power ratio = %.2f, want ≈1", ratio)
	}
	// Module totals stay within chip total.
	var sum float64
	for _, w := range bd.ByModule {
		sum += w
	}
	if sum > bd.TotalW*1.0001 {
		t.Errorf("module sum %g exceeds total %g", sum, bd.TotalW)
	}
}

func TestModuleOf(t *testing.T) {
	cases := map[string]string{
		"cs0_pe_r0c0_mul": "cs0",
		"bank2_p_a":       "bank2",
		"clkroot":         "clkroot",
		"":                "",
	}
	for in, want := range cases {
		if got := moduleOf(in); got != want {
			t.Errorf("moduleOf(%q) = %q, want %q", in, got, want)
		}
	}
}
