package cts

import (
	"math/rand"
	"testing"

	"m3d/internal/cell"
	"m3d/internal/geom"
	"m3d/internal/netlist"
	"m3d/internal/synth"
	"m3d/internal/tech"
)

// clockedDesign builds a netlist with n flip-flops scattered over a region.
func clockedDesign(t *testing.T, n int, span int64) (*tech.PDK, *cell.Library, *netlist.Netlist) {
	t.Helper()
	p := tech.Default130()
	lib, err := cell.NewLibrary(p, tech.TierSiCMOS)
	if err != nil {
		t.Fatal(err)
	}
	b := synth.NewBuilder("dut", lib)
	in := b.Input("d", 0.2)
	bus := make(synth.Bus, 0, n)
	for i := 0; i < n; i++ {
		bus = append(bus, in)
	}
	q := b.Register("r", bus, 0.2)
	b.SinkBus("o", q)
	if err := b.NL.Check(); err != nil {
		t.Fatal(err)
	}
	// Scatter instances.
	rng := rand.New(rand.NewSource(7))
	for _, inst := range b.NL.Instances {
		inst.Pos = geom.Pt(rng.Int63n(span), rng.Int63n(span))
	}
	return p, lib, b.NL
}

func TestSynthesizeBuildsBalancedTree(t *testing.T) {
	p, lib, nl := clockedDesign(t, 200, 2_000_000)
	before := len(nl.Instances)
	rep, err := Synthesize(p, nl, lib, Options{MaxLeafFanout: 8})
	if err != nil {
		t.Fatal(err)
	}
	// 200 register FFs + 200 capture FFs (b.SinkBus + Register each make a
	// FF with a CK pin)? Count from the report instead:
	if rep.Sinks < 200 {
		t.Fatalf("sinks = %d, want >= 200", rep.Sinks)
	}
	if rep.Buffers == 0 || len(nl.Instances) != before+rep.Buffers {
		t.Errorf("buffers = %d, instances %d -> %d", rep.Buffers, before, len(nl.Instances))
	}
	if rep.Levels < 3 {
		t.Errorf("levels = %d, want a multi-level tree for %d sinks at fanout 8", rep.Levels, rep.Sinks)
	}
	if err := nl.Check(); err != nil {
		t.Fatalf("netlist broken after CTS: %v", err)
	}
	// Every clock net obeys the fanout cap for leaf groups (buffer nets
	// have exactly 2 children by construction).
	for _, n := range nl.Nets {
		if !n.Clock {
			continue
		}
		ffSinks := 0
		for _, s := range n.Sinks {
			if s.Inst.Cell != nil && s.Inst.Cell.Sequential {
				ffSinks++
			}
		}
		if ffSinks > 8 {
			t.Fatalf("net %s drives %d FFs, cap is 8", n.Name, ffSinks)
		}
	}
}

func TestSkewBounded(t *testing.T) {
	p, lib, nl := clockedDesign(t, 128, 1_000_000)
	rep, err := Synthesize(p, nl, lib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxSkewS < 0 {
		t.Fatal("negative skew")
	}
	// A balanced tree over 1 mm at 130 nm should stay well under 2 ns.
	if rep.MaxSkewS > 2e-9 {
		t.Errorf("skew = %g s, want < 2 ns", rep.MaxSkewS)
	}
	if rep.WirelengthDBU <= 0 {
		t.Error("tree has no wire")
	}
}

func TestSmallDesignNoBuffers(t *testing.T) {
	p, lib, nl := clockedDesign(t, 4, 100_000)
	rep, err := Synthesize(p, nl, lib, Options{MaxLeafFanout: 16})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Buffers != 0 {
		t.Errorf("a %d-sink clock under the fanout cap needs no buffers, got %d", rep.Sinks, rep.Buffers)
	}
	if err := nl.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	p := tech.Default130()
	lib, err := cell.NewLibrary(p, tech.TierSiCMOS)
	if err != nil {
		t.Fatal(err)
	}
	// No clock net.
	nl := netlist.New("x")
	if _, err := Synthesize(p, nl, lib, Options{}); err == nil {
		t.Error("missing clock should fail")
	}
	// Clock without sinks.
	nl2 := netlist.New("y")
	drv := nl2.AddCell("cb", lib.MustPick(cell.ClkBuf, 1))
	clk := nl2.AddNet("clk", 2)
	clk.Clock = true
	nl2.MustPin(drv, "Y", true, 0, clk)
	if _, err := Synthesize(p, nl2, lib, Options{}); err == nil {
		t.Error("sinkless clock should fail")
	}
	// Invalid PDK.
	bad := tech.Default130()
	bad.VDD = 0
	_, _, nl3 := clockedDesign(t, 8, 1000)
	if _, err := Synthesize(bad, nl3, lib, Options{}); err == nil {
		t.Error("invalid PDK should fail")
	}
}

func TestBufferAreaAccounted(t *testing.T) {
	p, lib, nl := clockedDesign(t, 300, 3_000_000)
	rep, err := Synthesize(p, nl, lib, Options{MaxLeafFanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(rep.Buffers) * lib.MustPick(cell.ClkBuf, 4).AreaNM2
	if rep.BufferAreaNM2 != want {
		t.Errorf("buffer area = %d, want %d", rep.BufferAreaNM2, want)
	}
}

func TestDeeperTreeWithTighterFanout(t *testing.T) {
	mk := func(fanout int) *Report {
		p, lib, nl := clockedDesign(t, 256, 2_000_000)
		rep, err := Synthesize(p, nl, lib, Options{MaxLeafFanout: fanout})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	loose := mk(64)
	tight := mk(4)
	if tight.Levels <= loose.Levels {
		t.Errorf("fanout 4 (%d levels) should be deeper than fanout 64 (%d)", tight.Levels, loose.Levels)
	}
	if tight.Buffers <= loose.Buffers {
		t.Error("tighter fanout needs more buffers")
	}
}
