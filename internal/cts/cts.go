// Package cts implements clock tree synthesis: it replaces the synthesis
// netlist's single ideal clock net with a buffered H-tree — recursive
// geometric bisection of the clock sinks, one clock buffer per subtree,
// fanout-capped leaf nets — and reports the tree's depth, buffer count,
// estimated skew, and clock power contributors.
//
// The flow runs CTS after placement (sink locations are known) and before
// routing, exactly as a commercial flow orders it.
package cts

import (
	"fmt"
	"sort"

	"m3d/internal/cell"
	"m3d/internal/geom"
	"m3d/internal/netlist"
	"m3d/internal/sta"
	"m3d/internal/tech"
)

// Options tunes tree construction.
type Options struct {
	// MaxLeafFanout is the sink count a single leaf buffer may drive
	// (default 16).
	MaxLeafFanout int
	// BufferDrive is the library drive of inserted clock buffers
	// (default 4).
	BufferDrive int
}

func (o Options) withDefaults() Options {
	if o.MaxLeafFanout <= 0 {
		o.MaxLeafFanout = 16
	}
	if o.BufferDrive <= 0 {
		o.BufferDrive = 4
	}
	return o
}

// Report summarizes the synthesized tree.
type Report struct {
	// Sinks is the number of clocked pins served.
	Sinks int
	// Buffers is the number of inserted clock buffers.
	Buffers int
	// Levels is the tree depth (root to leaf).
	Levels int
	// WirelengthDBU is the total HPWL of the tree's nets.
	WirelengthDBU int64
	// MaxSkewS estimates skew as the spread of root-to-leaf Elmore delays.
	MaxSkewS float64
	// BufferAreaNM2 is the area added by clock buffers.
	BufferAreaNM2 int64
}

// Synthesize rebuilds the clock distribution of nl: every sink currently
// on the root clock net is re-parented under a balanced buffered tree.
// The inserted buffers are placed at their subtree centroids (legalization
// can follow). lib provides the clock buffer cells.
func Synthesize(p *tech.PDK, nl *netlist.Netlist, lib *cell.Library, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("cts: invalid PDK: %w", err)
	}
	root := findRootClock(nl)
	if root == nil {
		return nil, fmt.Errorf("cts: netlist has no clock net")
	}
	if root.Driver == nil {
		return nil, fmt.Errorf("cts: clock net %q has no driver", root.Name)
	}
	sinks := append([]*netlist.Pin(nil), root.Sinks...)
	if len(sinks) == 0 {
		return nil, fmt.Errorf("cts: clock net %q has no sinks", root.Name)
	}

	// Detach all sinks from the root; the tree will re-drive them.
	root.Sinks = nil

	rep := &Report{Sinks: len(sinks)}
	bufCell, ok := lib.Pick(cell.ClkBuf, opt.BufferDrive)
	if !ok {
		return nil, fmt.Errorf("cts: library has no CLKBUF_X%d", opt.BufferDrive)
	}

	// Recursive bisection. Each call wires `parent` (a clock net) to the
	// given sinks, inserting a buffer when the group exceeds the leaf
	// fanout.
	var build func(parent *netlist.Net, group []*netlist.Pin, level int) error
	maxLevel := 0
	build = func(parent *netlist.Net, group []*netlist.Pin, level int) error {
		if level > maxLevel {
			maxLevel = level
		}
		if len(group) <= opt.MaxLeafFanout {
			for _, s := range group {
				s.Net = parent
				parent.Sinks = append(parent.Sinks, s)
			}
			return nil
		}
		// Split along the longer bounding-box axis.
		lo, hi := bbox(group)
		byX := hi.X-lo.X >= hi.Y-lo.Y
		sort.SliceStable(group, func(i, j int) bool {
			a, b := group[i].Loc(), group[j].Loc()
			if byX {
				return a.X < b.X
			}
			return a.Y < b.Y
		})
		mid := len(group) / 2
		for _, half := range [][]*netlist.Pin{group[:mid], group[mid:]} {
			if len(half) == 0 {
				continue
			}
			// Buffer for this subtree at the half's centroid.
			buf := nl.AddCell(fmt.Sprintf("ctsbuf_L%d_%d", level, len(nl.Instances)), bufCell)
			buf.Pos = centroid(half)
			rep.Buffers++
			rep.BufferAreaNM2 += bufCell.AreaNM2
			nl.MustPin(buf, "A", false, bufCell.InputCapF, parent)
			sub := nl.AddNet(fmt.Sprintf("ctsnet_L%d_%d", level, len(nl.Nets)), 2.0)
			sub.Clock = true
			nl.MustPin(buf, "Y", true, 0, sub)
			if err := build(sub, half, level+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := build(root, sinks, 0); err != nil {
		return nil, err
	}
	rep.Levels = maxLevel + 1

	// Wirelength and skew over the finished tree.
	wm := sta.NewWireModel(p, nil)
	var minD, maxD float64
	first := true
	var walk func(n *netlist.Net, acc float64)
	walk = func(n *netlist.Net, acc float64) {
		rep.WirelengthDBU += n.HPWL()
		rw, cw := wm.NetRC(n)
		d := acc
		if n.Driver != nil && !n.Driver.Inst.IsMacro() {
			d += n.Driver.Inst.Cell.Delay(cw+n.SinkCapF()) + 0.69*rw*(cw/2+n.SinkCapF())
		}
		leaf := true
		for _, s := range n.Sinks {
			if s.Inst.Cell != nil && s.Inst.Cell.Kind == cell.ClkBuf && !s.IsOutput {
				// Descend through the buffer's output net.
				for _, op := range s.Inst.Pins() {
					if op.IsOutput && op.Net != nil {
						walk(op.Net, d)
						leaf = false
					}
				}
			}
		}
		if leaf {
			if first || d < minD {
				minD = d
			}
			if first || d > maxD {
				maxD = d
			}
			first = false
		}
	}
	walk(root, 0)
	if !first {
		rep.MaxSkewS = maxD - minD
	}
	return rep, nil
}

func findRootClock(nl *netlist.Netlist) *netlist.Net {
	for _, n := range nl.Nets {
		if n.Clock {
			return n
		}
	}
	return nil
}

func bbox(pins []*netlist.Pin) (lo, hi geom.Point) {
	lo = pins[0].Loc()
	hi = lo
	for _, p := range pins[1:] {
		l := p.Loc()
		if l.X < lo.X {
			lo.X = l.X
		}
		if l.Y < lo.Y {
			lo.Y = l.Y
		}
		if l.X > hi.X {
			hi.X = l.X
		}
		if l.Y > hi.Y {
			hi.Y = l.Y
		}
	}
	return lo, hi
}

func centroid(pins []*netlist.Pin) geom.Point {
	var sx, sy int64
	for _, p := range pins {
		l := p.Loc()
		sx += l.X
		sy += l.Y
	}
	n := int64(len(pins))
	return geom.Pt(sx/n, sy/n)
}
