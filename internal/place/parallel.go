package place

import (
	"sync"
	"sync/atomic"

	"m3d/internal/netlist"
)

// The attraction loop in Global is a Gauss-Seidel sweep: cell i's move
// reads the LIVE positions of its net neighbours, so cells earlier in
// the sweep are seen post-move and later cells pre-move. Naive tiling
// would change which neighbours are seen updated and move the goldens.
//
// The wavefront scheduler parallelizes the sweep EXACTLY instead:
// level[i] = 1 + max(level[j]) over attraction neighbours j < i (in
// sweep order), computed once per Global call from the topology alone.
// Running levels in ascending order with a barrier between them gives
// every cell the serial sweep's exact read set:
//
//   - a neighbour j < i has level[j] < level[i], so j's move committed
//     in an earlier level — seen updated, as in the serial sweep;
//   - a neighbour k > i has level[k] > level[i] (the rule above forces
//     it, since i is one of k's earlier neighbours), so k has not moved
//     yet — seen pre-move, as in the serial sweep;
//   - cells sharing a level are pairwise non-adjacent, so their moves
//     neither race (each writes only its own Pos) nor read each other.
//
// Order within a level is therefore irrelevant and the result is
// bit-identical to the serial sweep at any worker count — which is how
// flow/equiv_test.go's DEF/GDS goldens survive placement parallelism
// untouched.
//
// Only the attraction sweep parallelizes this way. spread() and Refine
// stay serial by design: both consume a sequential RNG stream whose
// draw count depends on earlier outcomes (spread draws per moved cell,
// the annealer's accept test draws conditionally), so any reordering
// changes the stream and the goldens with it. See DESIGN.md §16.

// minParallelCells gates the wavefront: below this the schedule build
// and per-level barriers cost more than the sweep.
const minParallelCells = 256

// wavefrontGrain is the chunk of same-level cells one dispatch claims.
const wavefrontGrain = 64

// wavefront is the level schedule of one Global call's attraction sweep.
type wavefront struct {
	levels  [][]*netlist.Instance
	workers int
}

// newWavefront builds the level schedule for cells (Global's movable set
// in sweep order). numInstances sizes the Instance.ID index. Returns nil
// when the serial sweep is the better plan.
func newWavefront(cells []*netlist.Instance, numInstances, workers int) *wavefront {
	if workers < 2 || len(cells) < minParallelCells {
		return nil
	}
	idxOf := make([]int32, numInstances)
	for i := range idxOf {
		idxOf[i] = -1
	}
	for i, c := range cells {
		idxOf[c.ID] = int32(i)
	}
	level := make([]int32, len(cells))
	var maxLvl int32
	for i, c := range cells {
		var lv int32
		consider := func(other *netlist.Pin) {
			// Neighbours outside the movable sweep set (fixed cells,
			// macros, other tiers) hold still all sweep — no edge.
			j := idxOf[other.Inst.ID]
			if j >= 0 && int(j) < i && level[j]+1 > lv {
				lv = level[j] + 1
			}
		}
		for _, pin := range c.Pins() {
			// Exactly the nets the attraction body reads positions
			// through; any other net cannot carry a dependency.
			net := pin.Net
			if net == nil || net.Clock || len(net.Sinks)+1 > maxFanoutForForces {
				continue
			}
			if net.Driver != nil {
				consider(net.Driver)
			}
			for _, other := range net.Sinks {
				consider(other)
			}
		}
		level[i] = lv
		if lv > maxLvl {
			maxLvl = lv
		}
	}
	w := &wavefront{levels: make([][]*netlist.Instance, maxLvl+1), workers: workers}
	for i, c := range cells {
		w.levels[level[i]] = append(w.levels[level[i]], c)
	}
	return w
}

// run applies f to every cell, level by level. Small levels run inline;
// large ones fan out over the workers with chunked atomic dispatch.
func (w *wavefront) run(f func(*netlist.Instance)) {
	for _, lvl := range w.levels {
		if len(lvl) < 2*wavefrontGrain {
			for _, c := range lvl {
				f(c)
			}
			continue
		}
		nw := w.workers
		if m := (len(lvl) + wavefrontGrain - 1) / wavefrontGrain; nw > m {
			nw = m
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < nw; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					lo := int(next.Add(wavefrontGrain)) - wavefrontGrain
					if lo >= len(lvl) {
						return
					}
					hi := lo + wavefrontGrain
					if hi > len(lvl) {
						hi = len(lvl)
					}
					for _, c := range lvl[lo:hi] {
						f(c)
					}
				}
			}()
		}
		wg.Wait()
	}
}
