package place

import (
	"math"
	"math/rand"

	"m3d/internal/floorplan"
	"m3d/internal/netlist"
	"m3d/internal/tech"
)

// RefineOptions tunes the detailed-placement refinement.
type RefineOptions struct {
	// Moves is the number of annealing moves to attempt (default
	// 50 × cells).
	Moves int
	// Seed makes refinement deterministic.
	Seed int64
	// StartTemp is the initial temperature in DBU of wirelength (default:
	// one row height).
	StartTemp float64
}

// RefineResult reports the refinement.
type RefineResult struct {
	// HPWLBefore/HPWLAfter bracket the pass.
	HPWLBefore, HPWLAfter int64
	// Accepted counts applied moves.
	Accepted int
}

// Refine runs simulated-annealing detailed placement on the tier's cells:
// same-row adjacent-pair swaps and same-width cross-row swaps, preserving
// legality by construction. It polishes the Tetris legalizer's output (the
// flow's equivalent of a detailed-placement ECO pass).
func Refine(f *floorplan.Floorplan, nl *netlist.Netlist, tier tech.Tier, opt RefineOptions) (RefineResult, error) {
	cells := movableOn(nl, tier)
	res := RefineResult{HPWLBefore: nl.TotalHPWL()}
	if len(cells) < 2 {
		res.HPWLAfter = res.HPWLBefore
		return res, nil
	}
	if opt.Moves <= 0 {
		opt.Moves = 50 * len(cells)
	}
	if opt.StartTemp <= 0 {
		opt.StartTemp = float64(f.PDK.RowHeight)
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	p := f.PDK

	// netCost: HPWL of all nets touching the given instances. The
	// dedup scratch is epoch-stamped and keyed by the dense Net.ID so the
	// two-calls-per-move hot loop never allocates.
	seen := make([]uint32, len(nl.Nets))
	var epoch uint32
	netCost := func(a, b *netlist.Instance) int64 {
		epoch++
		var c int64
		for _, inst := range [2]*netlist.Instance{a, b} {
			for _, pin := range inst.Pins() {
				n := pin.Net
				if n == nil || n.Clock || seen[n.ID] == epoch {
					continue
				}
				seen[n.ID] = epoch
				c += n.HPWL()
			}
		}
		return c
	}

	temp := opt.StartTemp
	cool := math.Pow(0.01, 1/float64(opt.Moves)) // end at 1% of start temp
	for m := 0; m < opt.Moves; m++ {
		a := cells[rng.Intn(len(cells))]
		b := cells[rng.Intn(len(cells))]
		if a == b {
			continue
		}
		// Legal swap: identical footprints swap anywhere; otherwise skip
		// (keeps the pass trivially legal).
		if a.Width(p) != b.Width(p) || a.Height(p) != b.Height(p) {
			continue
		}
		before := netCost(a, b)
		a.Pos, b.Pos = b.Pos, a.Pos
		delta := netCost(a, b) - before
		if delta <= 0 || rng.Float64() < math.Exp(-float64(delta)/temp) {
			res.Accepted++
		} else {
			a.Pos, b.Pos = b.Pos, a.Pos // revert
		}
		temp *= cool
	}
	res.HPWLAfter = nl.TotalHPWL()
	return res, nil
}
