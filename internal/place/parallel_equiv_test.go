package place

import (
	"testing"

	"m3d/internal/geom"
	"m3d/internal/netlist"
	"m3d/internal/tech"
)

// globalPositions runs Global on a fresh fixture at the given width and
// returns every movable cell's final position in netlist order (the two
// fixtures of one comparison are built identically, so order aligns).
func globalPositions(t testing.TB, rows, cols, workers int) (Result, []geom.Point) {
	t.Helper()
	fx := newFixture(t, rows, cols)
	res, err := Global(fx.fp, fx.nl, tech.TierSiCMOS, Options{Seed: 7, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckLegal(fx.fp, fx.nl, tech.TierSiCMOS); err != nil {
		t.Fatalf("workers %d: placement not legal: %v", workers, err)
	}
	cells := movableOn(fx.nl, tech.TierSiCMOS)
	pos := make([]geom.Point, len(cells))
	for i, c := range cells {
		pos[i] = c.Pos
	}
	return res, pos
}

// TestGlobalParallelMatchesSerial is the placement half of the perf
// pass's oracle suite: the wavefront-parallel attraction sweep must
// reproduce the serial placer cell-for-cell at widths 2 and 8. The 2×2
// fixture covers the all-inline schedule (every level under the fan-out
// grain); the 4×4 fixture has levels wide enough to actually fan out.
func TestGlobalParallelMatchesSerial(t *testing.T) {
	for _, sz := range []struct{ rows, cols int }{{2, 2}, {4, 4}} {
		ref, want := globalPositions(t, sz.rows, sz.cols, 1)
		for _, workers := range []int{2, 8} {
			res, got := globalPositions(t, sz.rows, sz.cols, workers)
			if res != ref {
				t.Fatalf("%dx%d workers %d: result %+v != serial %+v", sz.rows, sz.cols, workers, res, ref)
			}
			if len(got) != len(want) {
				t.Fatalf("%dx%d workers %d: %d cells != serial %d", sz.rows, sz.cols, workers, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%dx%d workers %d: cell %d at %v, serial placed it at %v",
						sz.rows, sz.cols, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestWavefrontScheduleInvariants checks the schedule the exactness
// argument rests on: every sweep cell appears exactly once, and no two
// cells of one level are attraction neighbours.
func TestWavefrontScheduleInvariants(t *testing.T) {
	fx := newFixture(t, 4, 4)
	cells := movableOn(fx.nl, tech.TierSiCMOS)
	wf := newWavefront(cells, len(fx.nl.Instances), 8)
	if wf == nil {
		t.Fatalf("wavefront unexpectedly nil for %d cells", len(cells))
	}
	scheduled := make(map[int]int) // Instance.ID -> level
	total := 0
	for lv, lvl := range wf.levels {
		total += len(lvl)
		for _, c := range lvl {
			if prev, dup := scheduled[c.ID]; dup {
				t.Fatalf("cell %s scheduled at levels %d and %d", c.Name, prev, lv)
			}
			scheduled[c.ID] = lv
		}
	}
	if total != len(cells) {
		t.Fatalf("schedule covers %d cells, sweep has %d", total, len(cells))
	}
	for _, c := range cells {
		for _, pin := range c.Pins() {
			net := pin.Net
			if net == nil || net.Clock || len(net.Sinks)+1 > maxFanoutForForces {
				continue
			}
			check := func(other *netlist.Pin) {
				if other.Inst == c {
					return
				}
				if lv, ok := scheduled[other.Inst.ID]; ok && lv == scheduled[c.ID] {
					t.Fatalf("neighbours %s and %s share level %d", c.Name, other.Inst.Name, lv)
				}
			}
			if net.Driver != nil {
				check(net.Driver)
			}
			for _, other := range net.Sinks {
				check(other)
			}
		}
	}
}

// BenchmarkPlaceGlobal is the serial global-placement baseline on the
// 8×8 systolic fixture (≈6.3k movable cells).
func BenchmarkPlaceGlobal(b *testing.B) {
	fx := newFixture(b, 8, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Global(fx.fp, fx.nl, tech.TierSiCMOS, Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlaceGlobalParallel is the benchdiff-tracked wavefront
// placement cost at width 8 on the same fixture. On a single-core host
// this measures the schedule + fan-out overhead band over the serial
// baseline (like BenchmarkRouteNetsParallel); on multi-core hosts the
// wide levels actually overlap.
func BenchmarkPlaceGlobalParallel(b *testing.B) {
	fx := newFixture(b, 8, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Global(fx.fp, fx.nl, tech.TierSiCMOS, Options{Seed: 1, Workers: 8}); err != nil {
			b.Fatal(err)
		}
	}
}
