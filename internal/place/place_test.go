package place

import (
	"testing"

	"m3d/internal/cell"
	"m3d/internal/floorplan"
	"m3d/internal/geom"
	"m3d/internal/netlist"
	"m3d/internal/synth"
	"m3d/internal/tech"
)

const mm = int64(1_000_000)

type fixture struct {
	p   *tech.PDK
	lib *cell.Library
	nl  *netlist.Netlist
	fp  *floorplan.Floorplan
}

// newFixture builds a small systolic design on a die sized for it.
func newFixture(t testing.TB, rows, cols int) *fixture {
	t.Helper()
	p := tech.Default130()
	lib, err := cell.NewLibrary(p, tech.TierSiCMOS)
	if err != nil {
		t.Fatal(err)
	}
	b := synth.NewBuilder("dut", lib)
	b.Systolic("cs", synth.SystolicSpec{
		Rows: rows, Cols: cols, ActBits: 4, WeightBits: 4, AccBits: 12, Activity: 0.2,
	})
	if err := b.NL.Check(); err != nil {
		t.Fatal(err)
	}
	die, err := floorplan.SizeDie(p, b.NL, 0.6, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := floorplan.New(p, die)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{p: p, lib: lib, nl: b.NL, fp: fp}
}

func TestGlobalPlacementLegal(t *testing.T) {
	fx := newFixture(t, 2, 2)
	res, err := Global(fx.fp, fx.nl, tech.TierSiCMOS, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells == 0 {
		t.Fatal("nothing placed")
	}
	if err := CheckLegal(fx.fp, fx.nl, tech.TierSiCMOS); err != nil {
		t.Fatalf("placement not legal: %v", err)
	}
	if res.HPWL <= 0 {
		t.Error("HPWL should be positive")
	}
}

func TestPlacementBeatsRandom(t *testing.T) {
	fx := newFixture(t, 2, 2)
	// Random-legal baseline: legalize from the initial jitter only.
	fx2 := newFixture(t, 2, 2)
	if _, err := Global(fx2.fp, fx2.nl, tech.TierSiCMOS, Options{Seed: 1, Iterations: 1}); err != nil {
		t.Fatal(err)
	}
	quick := fx2.nl.TotalHPWL()

	res, err := Global(fx.fp, fx.nl, tech.TierSiCMOS, Options{Seed: 1, Iterations: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.HPWL >= quick {
		t.Errorf("30-iteration placement (%d) should beat 1-iteration (%d)", res.HPWL, quick)
	}
}

func TestPlacementDeterministic(t *testing.T) {
	a := newFixture(t, 1, 2)
	b := newFixture(t, 1, 2)
	ra, err := Global(a.fp, a.nl, tech.TierSiCMOS, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Global(b.fp, b.nl, tech.TierSiCMOS, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if ra.HPWL != rb.HPWL {
		t.Errorf("same seed, different HPWL: %d vs %d", ra.HPWL, rb.HPWL)
	}
}

func TestPlacementAvoidsBlockages(t *testing.T) {
	fx := newFixture(t, 2, 2)
	// Block the left half of the die on Si.
	die := fx.fp.Die
	fx.fp.AddBlockage(tech.TierSiCMOS, geom.R(die.Lo.X, die.Lo.Y, die.Center().X, die.Hi.Y))
	if _, err := Global(fx.fp, fx.nl, tech.TierSiCMOS, Options{Seed: 3}); err != nil {
		// Half the die may genuinely be too small at 60% target util; grow it.
		bigger := geom.R(0, 0, die.W()*2, die.H())
		fp2, ferr := floorplan.New(fx.p, bigger)
		if ferr != nil {
			t.Fatal(ferr)
		}
		fp2.AddBlockage(tech.TierSiCMOS, geom.R(0, 0, die.W(), die.H()))
		if _, err := Global(fp2, fx.nl, tech.TierSiCMOS, Options{Seed: 3}); err != nil {
			t.Fatal(err)
		}
		fx.fp = fp2
	}
	if err := CheckLegal(fx.fp, fx.nl, tech.TierSiCMOS); err != nil {
		t.Fatalf("placement violates blockage: %v", err)
	}
}

func TestLegalizeOverflowFails(t *testing.T) {
	fx := newFixture(t, 2, 2)
	// A die far too small for the design.
	tiny, err := floorplan.New(fx.p, geom.R(0, 0, 20*fx.p.SiteWidth, 2*fx.p.RowHeight))
	if err != nil {
		t.Fatal(err)
	}
	if err := Legalize(tiny, fx.nl, tech.TierSiCMOS); err == nil {
		t.Error("legalizing into a tiny die should fail")
	}
}

func TestCheckLegalCatchesViolations(t *testing.T) {
	fx := newFixture(t, 1, 1)
	if _, err := Global(fx.fp, fx.nl, tech.TierSiCMOS, Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	cells := fx.nl.MovableCells()
	// Off-row.
	saved := cells[0].Pos
	cells[0].Pos.Y++
	if err := CheckLegal(fx.fp, fx.nl, tech.TierSiCMOS); err == nil {
		t.Error("off-row cell not caught")
	}
	cells[0].Pos = saved
	// Overlap.
	saved1 := cells[1].Pos
	cells[1].Pos = cells[0].Pos
	if err := CheckLegal(fx.fp, fx.nl, tech.TierSiCMOS); err == nil {
		t.Error("overlap not caught")
	}
	cells[1].Pos = saved1
}

func TestAssignTiersBalancesAndReducesCut(t *testing.T) {
	fx := newFixture(t, 2, 2)
	var total int64
	for _, c := range fx.nl.MovableCells() {
		total += c.AreaNM2(fx.p)
	}
	caps := map[tech.Tier]int64{
		tech.TierSiCMOS: total * 6 / 10,
		tech.TierCNFET:  total * 6 / 10,
	}
	res, err := AssignTiers(fx.nl, fx.p, PartitionOptions{CapNM2: caps, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Moved == 0 {
		t.Error("with 60/60 caps some cells must land on the upper tier")
	}
	if res.AreaNM2[tech.TierSiCMOS] > caps[tech.TierSiCMOS] ||
		res.AreaNM2[tech.TierCNFET] > caps[tech.TierCNFET] {
		t.Error("capacity violated")
	}
	if res.CutNets != CutNets(fx.nl) {
		t.Error("reported cut differs from recount")
	}
	// Local search should do much better than a random split: verify
	// against a fresh random assignment's cut.
	fx2 := newFixture(t, 2, 2)
	_, err = AssignTiers(fx2.nl, fx2.p, PartitionOptions{CapNM2: caps, Seed: 1, Passes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.CutNets > CutNets(fx2.nl) {
		t.Errorf("8-pass cut %d worse than 1-pass cut %d", res.CutNets, CutNets(fx2.nl))
	}
}

func TestAssignTiersCapacityErrors(t *testing.T) {
	fx := newFixture(t, 1, 1)
	if _, err := AssignTiers(fx.nl, fx.p, PartitionOptions{Seed: 1}); err == nil {
		t.Error("missing capacities should fail")
	}
	caps := map[tech.Tier]int64{tech.TierSiCMOS: 1, tech.TierCNFET: 1}
	if _, err := AssignTiers(fx.nl, fx.p, PartitionOptions{CapNM2: caps, Seed: 1}); err == nil {
		t.Error("too-small capacities should fail")
	}
}

func TestAllOnSiWhenCapacityAllows(t *testing.T) {
	fx := newFixture(t, 1, 1)
	var total int64
	for _, c := range fx.nl.MovableCells() {
		total += c.AreaNM2(fx.p)
	}
	caps := map[tech.Tier]int64{tech.TierSiCMOS: total * 2, tech.TierCNFET: total * 2}
	res, err := AssignTiers(fx.nl, fx.p, PartitionOptions{CapNM2: caps, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// With all cells fitting in Si and a connectivity-driven objective, the
	// cut should collapse to (near) zero: everything merges onto one tier.
	if res.CutNets > len(fx.nl.Nets)/20 {
		t.Errorf("cut %d of %d nets is too high for an unconstrained partition", res.CutNets, len(fx.nl.Nets))
	}
}

func TestTwoTierPlacementLegalBothTiers(t *testing.T) {
	fx := newFixture(t, 2, 2)
	var total int64
	for _, c := range fx.nl.MovableCells() {
		total += c.AreaNM2(fx.p)
	}
	caps := map[tech.Tier]int64{tech.TierSiCMOS: total * 6 / 10, tech.TierCNFET: total * 6 / 10}
	if _, err := AssignTiers(fx.nl, fx.p, PartitionOptions{CapNM2: caps, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	for _, tier := range []tech.Tier{tech.TierSiCMOS, tech.TierCNFET} {
		if _, err := Global(fx.fp, fx.nl, tier, Options{Seed: 2}); err != nil {
			t.Fatalf("tier %v: %v", tier, err)
		}
		if err := CheckLegal(fx.fp, fx.nl, tier); err != nil {
			t.Fatalf("tier %v not legal: %v", tier, err)
		}
	}
}
