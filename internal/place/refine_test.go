package place

import (
	"testing"

	"m3d/internal/tech"
)

func TestRefineImprovesHPWL(t *testing.T) {
	fx := newFixture(t, 2, 2)
	// A deliberately rough placement: few iterations.
	if _, err := Global(fx.fp, fx.nl, tech.TierSiCMOS, Options{Seed: 5, Iterations: 3}); err != nil {
		t.Fatal(err)
	}
	res, err := Refine(fx.fp, fx.nl, tech.TierSiCMOS, RefineOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted == 0 {
		t.Fatal("annealer accepted no moves")
	}
	if res.HPWLAfter >= res.HPWLBefore {
		t.Errorf("refinement did not improve: %d -> %d", res.HPWLBefore, res.HPWLAfter)
	}
	// Legality preserved.
	if err := CheckLegal(fx.fp, fx.nl, tech.TierSiCMOS); err != nil {
		t.Fatalf("refinement broke legality: %v", err)
	}
}

func TestRefineDeterministic(t *testing.T) {
	run := func() int64 {
		fx := newFixture(t, 1, 2)
		if _, err := Global(fx.fp, fx.nl, tech.TierSiCMOS, Options{Seed: 3, Iterations: 3}); err != nil {
			t.Fatal(err)
		}
		res, err := Refine(fx.fp, fx.nl, tech.TierSiCMOS, RefineOptions{Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return res.HPWLAfter
	}
	if run() != run() {
		t.Error("refinement not deterministic")
	}
}

func TestRefineTrivialCases(t *testing.T) {
	fx := newFixture(t, 1, 1)
	// No placement yet: cells all at origin — still runs and keeps counts
	// consistent.
	res, err := Refine(fx.fp, fx.nl, tech.TierCNFET, RefineOptions{Seed: 1}) // empty tier
	if err != nil {
		t.Fatal(err)
	}
	if res.HPWLBefore != res.HPWLAfter {
		t.Error("empty tier must be a no-op")
	}
}
