// Package place implements the placement stage of the flow: min-cut tier
// assignment for M3D designs (Fiduccia–Mattheyses style bi-partitioning),
// force-directed global placement with density spreading around macro
// blockages, and Tetris-style row legalization.
package place

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"m3d/internal/floorplan"
	"m3d/internal/geom"
	"m3d/internal/netlist"
	"m3d/internal/tech"
)

// Options tunes the global placer.
type Options struct {
	// Iterations is the number of attraction/spreading rounds (default 24).
	Iterations int
	// Seed makes placement deterministic.
	Seed int64
	// TargetDensity is the bin utilization ceiling (default 0.75).
	TargetDensity float64
	// Workers bounds the attraction sweep's wavefront parallelism
	// (default 1 = serial). Results are bit-identical at any width —
	// the level schedule reproduces the serial sweep's exact read set
	// (see parallel.go) — so this is purely a wall-clock knob.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Iterations <= 0 {
		o.Iterations = 24
	}
	if o.TargetDensity <= 0 {
		o.TargetDensity = 0.75
	}
	return o
}

// Result reports placement quality.
type Result struct {
	// HPWL is the post-placement half-perimeter wirelength (DBU).
	HPWL int64
	// Cells is the number of cells placed.
	Cells int
}

// maxFanoutForForces excludes huge nets (clock, resets) from attraction.
const maxFanoutForForces = 32

// Global places the movable cells of the given tier inside the floorplan
// using iterative net attraction plus density spreading, then legalizes
// them onto rows. Fixed instances and macros are respected as blockages.
func Global(f *floorplan.Floorplan, nl *netlist.Netlist, tier tech.Tier, opt Options) (Result, error) {
	opt = opt.withDefaults()
	cells := movableOn(nl, tier)
	if len(cells) == 0 {
		return Result{}, nil
	}
	p := f.PDK
	rng := rand.New(rand.NewSource(opt.Seed))

	// Initial spread: jitter around the die center.
	die := f.Die
	cx, cy := die.Center().X, die.Center().Y
	for _, c := range cells {
		c.Pos = geom.Pt(
			cx+int64(rng.NormFloat64()*float64(die.W())/8),
			cy+int64(rng.NormFloat64()*float64(die.H())/8),
		)
		clampInto(c, die, p)
	}

	binPitch := die.W() / 48
	if binPitch < 4*p.RowHeight {
		binPitch = 4 * p.RowHeight
	}
	blocked := f.DensityGrid(tier)

	// The wavefront schedule is a pure function of the topology, so one
	// build serves every iteration; nil means sweep serially.
	wf := newWavefront(cells, len(nl.Instances), opt.Workers)

	for it := 0; it < opt.Iterations; it++ {
		// Attraction: move every cell toward the centroid of its connected
		// pins, with a cooling factor.
		alpha := 0.8 * (1 - float64(it)/float64(opt.Iterations+1))
		attract := func(c *netlist.Instance) {
			sx, sy, n := int64(0), int64(0), 0
			accum := func(other *netlist.Pin) {
				if other.Inst == c {
					return
				}
				loc := other.Loc()
				sx += loc.X
				sy += loc.Y
				n++
			}
			for _, pin := range c.Pins() {
				net := pin.Net
				if net == nil || net.Clock || len(net.Sinks)+1 > maxFanoutForForces {
					continue
				}
				if net.Driver != nil {
					accum(net.Driver)
				}
				for _, other := range net.Sinks {
					accum(other)
				}
			}
			if n == 0 {
				return
			}
			tx := float64(sx)/float64(n) - float64(c.Pos.X)
			ty := float64(sy)/float64(n) - float64(c.Pos.Y)
			c.Pos = geom.Pt(c.Pos.X+int64(alpha*tx), c.Pos.Y+int64(alpha*ty))
			clampInto(c, die, p)
		}
		if wf != nil {
			wf.run(attract)
		} else {
			for _, c := range cells {
				attract(c)
			}
		}
		// Density spreading: push cells out of over-full / blocked bins.
		// Serial on purpose: its RNG draws are consumed in sorted-bin
		// order and gated on bin occupancy, a sequential stream that any
		// reordering would change (and the goldens with it).
		spread(cells, f, tier, binPitch, blocked, opt.TargetDensity, rng)
	}

	if err := Legalize(f, nl, tier); err != nil {
		return Result{}, err
	}
	return Result{HPWL: nl.TotalHPWL(), Cells: len(cells)}, nil
}

func movableOn(nl *netlist.Netlist, tier tech.Tier) []*netlist.Instance {
	var out []*netlist.Instance
	for _, inst := range nl.MovableCells() {
		if inst.Tier == tier {
			out = append(out, inst)
		}
	}
	return out
}

func clampInto(c *netlist.Instance, die geom.Rect, p *tech.PDK) {
	w, h := c.Width(p), c.Height(p)
	if c.Pos.X < die.Lo.X {
		c.Pos.X = die.Lo.X
	}
	if c.Pos.Y < die.Lo.Y {
		c.Pos.Y = die.Lo.Y
	}
	if c.Pos.X+w > die.Hi.X {
		c.Pos.X = die.Hi.X - w
	}
	if c.Pos.Y+h > die.Hi.Y {
		c.Pos.Y = die.Hi.Y - h
	}
}

// spread relieves over-dense bins by moving cells toward the least dense
// neighbouring bin.
func spread(cells []*netlist.Instance, f *floorplan.Floorplan, tier tech.Tier,
	binPitch int64, blocked *geom.Grid, target float64, rng *rand.Rand) {

	p := f.PDK
	g := geom.NewGrid(f.Die, binPitch)
	byBin := make(map[[2]int][]*netlist.Instance)
	for _, c := range cells {
		ix, iy := g.CellOf(c.Pos)
		g.Add(ix, iy, float64(c.AreaNM2(p)))
		byBin[[2]int{ix, iy}] = append(byBin[[2]int{ix, iy}], c)
	}
	keys := make([][2]int, 0, len(byBin))
	for key := range byBin {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][1] != keys[b][1] {
			return keys[a][1] < keys[b][1]
		}
		return keys[a][0] < keys[b][0]
	})
	for _, key := range keys {
		cs := byBin[key]
		ix, iy := key[0], key[1]
		cellRect := g.CellRect(ix, iy)
		capArea := float64(cellRect.Area())
		// Subtract blocked fraction (sampled from the floorplan grid).
		bx, by := blocked.CellOf(cellRect.Center())
		avail := capArea * (1 - blocked.At(bx, by)) * target
		used := g.At(ix, iy)
		if used <= avail || avail <= 0 && used == 0 {
			continue
		}
		// Move the overflow (random subset) toward the least-used neighbour.
		moveFrac := 1 - avail/used
		if avail <= 0 {
			moveFrac = 1
		}
		bestIx, bestIy, bestScore := ix, iy, math.Inf(1)
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				jx, jy := ix+dx, iy+dy
				if (dx == 0 && dy == 0) || !g.InBounds(jx, jy) {
					continue
				}
				nr := g.CellRect(jx, jy)
				nbx, nby := blocked.CellOf(nr.Center())
				navail := float64(nr.Area()) * (1 - blocked.At(nbx, nby)) * target
				if navail <= 0 {
					continue
				}
				score := g.At(jx, jy) / navail
				if score < bestScore {
					bestScore, bestIx, bestIy = score, jx, jy
				}
			}
		}
		if bestIx == ix && bestIy == iy {
			continue
		}
		dst := g.CellRect(bestIx, bestIy)
		for _, c := range cs {
			if rng.Float64() > moveFrac {
				continue
			}
			c.Pos = geom.Pt(
				dst.Lo.X+rng.Int63n(max64(dst.W(), 1)),
				dst.Lo.Y+rng.Int63n(max64(dst.H(), 1)),
			)
			clampInto(c, f.Die, p)
		}
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// segment is a free interval of one placement row.
type segment struct {
	x0, x1 int64
	cursor int64
}

// Legalize snaps the tier's movable cells onto rows and sites, avoiding
// blockages and overlaps, minimizing displacement greedily (Tetris style).
func Legalize(f *floorplan.Floorplan, nl *netlist.Netlist, tier tech.Tier) error {
	p := f.PDK
	cells := movableOn(nl, tier)
	if len(cells) == 0 {
		return nil
	}
	rows := f.Rows()
	if len(rows) == 0 {
		return fmt.Errorf("place: floorplan has no rows")
	}
	blocks := f.Blockages(tier)

	// Build free segments per row.
	segsPerRow := make([][]segment, len(rows))
	for i, r := range rows {
		rowRect := geom.R(r.X0, r.Y, r.X1, r.Y+p.RowHeight)
		var cuts []geom.Rect
		for _, b := range blocks {
			if b.Overlaps(rowRect) {
				cuts = append(cuts, b)
			}
		}
		sort.Slice(cuts, func(a, b int) bool { return cuts[a].Lo.X < cuts[b].Lo.X })
		x := r.X0
		var segs []segment
		for _, cRect := range cuts {
			if cRect.Lo.X > x {
				segs = append(segs, segment{x0: x, x1: cRect.Lo.X, cursor: x})
			}
			if cRect.Hi.X > x {
				x = cRect.Hi.X
			}
		}
		if x < r.X1 {
			segs = append(segs, segment{x0: x, x1: r.X1, cursor: x})
		}
		segsPerRow[i] = segs
	}

	// Place cells in x order.
	order := append([]*netlist.Instance(nil), cells...)
	sort.SliceStable(order, func(i, j int) bool { return order[i].Pos.X < order[j].Pos.X })

	rowOf := func(y int64) int {
		i := int((y - rows[0].Y) / p.RowHeight)
		if i < 0 {
			i = 0
		}
		if i >= len(rows) {
			i = len(rows) - 1
		}
		return i
	}

	for _, c := range order {
		w := c.Width(p)
		home := rowOf(c.Pos.Y)
		bestCost := int64(math.MaxInt64)
		bestRow, bestSeg := -1, -1
		// Expanding row search; break once the row distance alone exceeds
		// the best cost so far.
		for d := 0; d < len(rows); d++ {
			progressed := false
			for _, ri := range []int{home - d, home + d} {
				if ri < 0 || ri >= len(rows) || (d == 0 && ri != home) {
					continue
				}
				progressed = true
				rowDist := int64(d) * p.RowHeight
				if rowDist >= bestCost {
					continue
				}
				for si := range segsPerRow[ri] {
					s := &segsPerRow[ri][si]
					x := snapUp(s.cursor-f.Die.Lo.X, p.SiteWidth) + f.Die.Lo.X
					if s.x1-x < w {
						continue
					}
					cost := rowDist + abs64(x-c.Pos.X)
					if cost < bestCost {
						bestCost, bestRow, bestSeg = cost, ri, si
					}
				}
			}
			if !progressed || (bestRow >= 0 && int64(d)*p.RowHeight > bestCost) {
				break
			}
		}
		if bestRow < 0 {
			return fmt.Errorf("place: no legal slot for %s (width %d) on tier %v", c.Name, w, tier)
		}
		s := &segsPerRow[bestRow][bestSeg]
		x := snapUp(s.cursor-f.Die.Lo.X, p.SiteWidth) + f.Die.Lo.X
		c.Pos = geom.Pt(x, rows[bestRow].Y)
		s.cursor = x + w
	}
	return nil
}

// snapUp rounds x up to the next site boundary.
func snapUp(x, site int64) int64 {
	if r := x % site; r != 0 {
		if x >= 0 {
			return x + site - r
		}
		return x - r
	}
	return x
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// CheckLegal verifies the tier's placement: all cells on rows/sites inside
// the die, no overlaps, no blockage violations.
func CheckLegal(f *floorplan.Floorplan, nl *netlist.Netlist, tier tech.Tier) error {
	p := f.PDK
	cells := movableOn(nl, tier)
	type placed struct {
		inst *netlist.Instance
		r    geom.Rect
	}
	byRow := make(map[int64][]placed)
	for _, c := range cells {
		b := c.Bounds(p)
		if !f.Die.ContainsRect(b) {
			return fmt.Errorf("place: %s outside die", c.Name)
		}
		if (c.Pos.Y-f.Die.Lo.Y)%p.RowHeight != 0 {
			return fmt.Errorf("place: %s not on a row (y=%d)", c.Name, c.Pos.Y)
		}
		if (c.Pos.X-f.Die.Lo.X)%p.SiteWidth != 0 {
			return fmt.Errorf("place: %s not on a site (x=%d)", c.Name, c.Pos.X)
		}
		for _, blk := range f.Blockages(tier) {
			if blk.Overlaps(b) {
				return fmt.Errorf("place: %s overlaps a blockage at %v", c.Name, blk)
			}
		}
		byRow[c.Pos.Y] = append(byRow[c.Pos.Y], placed{c, b})
	}
	for _, row := range byRow {
		sort.Slice(row, func(i, j int) bool { return row[i].r.Lo.X < row[j].r.Lo.X })
		for i := 1; i < len(row); i++ {
			if row[i].r.Lo.X < row[i-1].r.Hi.X {
				return fmt.Errorf("place: %s overlaps %s", row[i].inst.Name, row[i-1].inst.Name)
			}
		}
	}
	return nil
}
