package place

import (
	"fmt"
	"math/rand"

	"m3d/internal/netlist"
	"m3d/internal/tech"
)

// PartitionOptions tunes M3D tier assignment.
type PartitionOptions struct {
	// CapNM2 is the available placement area per tier; cells are balanced
	// under these caps.
	CapNM2 map[tech.Tier]int64
	// Seed makes partitioning deterministic.
	Seed int64
	// Passes is the number of improvement sweeps (default 8).
	Passes int
}

// PartitionResult reports the tier assignment quality.
type PartitionResult struct {
	// CutNets is the number of signal nets spanning both tiers — each cut
	// consumes ILVs.
	CutNets int
	// AreaNM2 is the assigned cell area per tier.
	AreaNM2 map[tech.Tier]int64
	// Moved is the number of cells assigned to the upper tier.
	Moved int
}

// AssignTiers partitions the movable cells of nl between TierSiCMOS and
// TierCNFET with a Fiduccia–Mattheyses-style local search: it minimizes the
// number of tier-crossing nets subject to the per-tier area capacities.
//
// The paper's case-study M3D design keeps all logic in Si (the CNFET tier
// holds only RRAM access FETs inside the macros); this pass supports the
// "full CMOS on upper layers" extension the paper's conclusion points to,
// and the folding-style M3D baselines of refs [3-4].
func AssignTiers(nl *netlist.Netlist, p *tech.PDK, opt PartitionOptions) (PartitionResult, error) {
	if opt.Passes <= 0 {
		opt.Passes = 8
	}
	capSi, okSi := opt.CapNM2[tech.TierSiCMOS]
	capCn, okCn := opt.CapNM2[tech.TierCNFET]
	if !okSi || !okCn {
		return PartitionResult{}, fmt.Errorf("place: partition needs capacities for both tiers")
	}
	cells := nl.MovableCells()
	var total int64
	for _, c := range cells {
		total += c.AreaNM2(p)
	}
	if total > capSi+capCn {
		return PartitionResult{}, fmt.Errorf("place: design area %d exceeds tier capacities %d", total, capSi+capCn)
	}

	area := map[tech.Tier]int64{tech.TierSiCMOS: 0, tech.TierCNFET: 0}
	rng := rand.New(rand.NewSource(opt.Seed))

	// Initial assignment: fill Si to its share, overflow to CNFET, in a
	// shuffled order so connected clusters are not split systematically.
	order := rng.Perm(len(cells))
	for _, i := range order {
		c := cells[i]
		a := c.AreaNM2(p)
		if area[tech.TierSiCMOS]+a <= capSi {
			c.Tier = tech.TierSiCMOS
			area[tech.TierSiCMOS] += a
		} else if area[tech.TierCNFET]+a <= capCn {
			c.Tier = tech.TierCNFET
			area[tech.TierCNFET] += a
		} else {
			return PartitionResult{}, fmt.Errorf("place: cell %s does not fit either tier", c.Name)
		}
	}

	gain := func(c *netlist.Instance) int {
		// Cut-count change if c switches tiers: for each small net, count
		// pins on each side (excluding c).
		g := 0
		for _, pin := range c.Pins() {
			net := pin.Net
			if net == nil || net.Clock || len(net.Sinks)+1 > maxFanoutForForces {
				continue
			}
			same, other := 0, 0
			for _, q := range net.Pins() {
				if q.Inst == c {
					continue
				}
				qt := q.Inst.Tier
				if q.Inst.IsMacro() {
					qt = tech.TierSiCMOS // macro ports anchor at their Si periphery
				}
				if qt == c.Tier {
					same++
				} else {
					other++
				}
			}
			if same == 0 && other > 0 {
				g++ // net becomes uncut
			}
			if other == 0 && same > 0 {
				g-- // net becomes cut
			}
		}
		return g
	}

	for pass := 0; pass < opt.Passes; pass++ {
		improved := false
		for _, i := range rng.Perm(len(cells)) {
			c := cells[i]
			g := gain(c)
			if g <= 0 {
				continue
			}
			from, to := c.Tier, tech.TierCNFET
			if from == tech.TierCNFET {
				to = tech.TierSiCMOS
			}
			a := c.AreaNM2(p)
			capTo := capCn
			if to == tech.TierSiCMOS {
				capTo = capSi
			}
			if area[to]+a > capTo {
				continue
			}
			c.Tier = to
			area[from] -= a
			area[to] += a
			improved = true
		}
		if !improved {
			break
		}
	}

	res := PartitionResult{
		CutNets: CutNets(nl),
		AreaNM2: area,
	}
	for _, c := range cells {
		if c.Tier == tech.TierCNFET {
			res.Moved++
		}
	}
	return res, nil
}

// CutNets counts signal nets whose pins span both device tiers.
func CutNets(nl *netlist.Netlist) int {
	cut := 0
	for _, n := range nl.Nets {
		if n.Clock {
			continue
		}
		si, cn := false, false
		for _, pin := range n.Pins() {
			if pin.Inst.IsMacro() {
				si = true
				continue
			}
			switch pin.Inst.Tier {
			case tech.TierSiCMOS:
				si = true
			case tech.TierCNFET:
				cn = true
			}
		}
		if si && cn {
			cut++
		}
	}
	return cut
}
