// Package thermal implements the paper's Eq. 17 thermal model for stacked
// M3D chips: each interleaved compute+memory tier pair j adds a vertical
// thermal resistance R_j on top of the heat-sink resistance R_0, and the
// temperature rise is
//
//	Temp_rise = Σ_{i=1..Y} ( (Σ_{j=1..i} R_j) + R_0 ) × P_i
//
// Obs. 10: with a typical ~60 K allowed rise, this quickly bounds the
// number of tiers that can be stacked, which must be folded into EDP
// projections for multi-tier designs (Case 3).
package thermal

import (
	"fmt"

	"m3d/internal/geom"
	"m3d/internal/tech"
)

// TierLoad is one interleaved compute+memory tier pair: its added vertical
// thermal resistance and its dissipated power (compute + memory,
// P_i = P_C,i + P_M,i).
type TierLoad struct {
	RthetaKPerW float64
	PowerW      float64
}

// Stack is a vertical thermal stack: the heat-sink resistance plus the tier
// loads bottom-up (tier 1 is closest to the sink).
type Stack struct {
	R0KPerW float64
	Tiers   []TierLoad
}

// NewStack builds a stack from the PDK thermal parameters and per-tier
// powers (bottom-up).
func NewStack(p *tech.PDK, tierPowersW []float64) Stack {
	s := Stack{R0KPerW: p.RthetaSink}
	for _, pw := range tierPowersW {
		s.Tiers = append(s.Tiers, TierLoad{RthetaKPerW: p.RthetaPerTier, PowerW: pw})
	}
	return s
}

// TempRiseK evaluates Eq. 17.
func (s Stack) TempRiseK() float64 {
	var rise, rAccum float64
	for _, t := range s.Tiers {
		rAccum += t.RthetaKPerW
		rise += (rAccum + s.R0KPerW) * t.PowerW
	}
	return rise
}

// Feasible reports whether the stack stays within the allowed rise.
func (s Stack) Feasible(maxRiseK float64) bool {
	return s.TempRiseK() <= maxRiseK
}

// MaxTiers returns the largest number of identical tiers (each dissipating
// perTierPowerW) whose Eq. 17 rise stays within the PDK's MaxTempRiseK.
// Returns 0 if even one tier exceeds the budget.
func MaxTiers(p *tech.PDK, perTierPowerW float64) int {
	const cap = 1 << 20 // sanity bound for negligible powers
	if perTierPowerW <= 0 {
		return cap
	}
	// Incremental Eq. 17 for identical tiers:
	// rise(Y) = rise(Y-1) + (Y·R_tier + R0) · P.
	rise := 0.0
	for y := 1; y <= cap; y++ {
		rise += (float64(y)*p.RthetaPerTier + p.RthetaSink) * perTierPowerW
		if rise > p.MaxTempRiseK {
			return y - 1
		}
	}
	return cap
}

// HotspotRiseK estimates the peak local temperature rise from a power
// density map: the hottest cell's power is spread over a spreading area
// (sprdMM2, typically a few mm²) and driven through the full stack
// resistance. It is a coarse bound, matching the paper's use of Eq. 17
// rather than a field solver.
func HotspotRiseK(s Stack, density *geom.Grid, sprdMM2 float64) (float64, error) {
	if density == nil {
		return 0, fmt.Errorf("thermal: nil density grid")
	}
	if sprdMM2 <= 0 {
		return 0, fmt.Errorf("thermal: spreading area must be positive, got %g", sprdMM2)
	}
	var peak float64 // W/mm²
	for iy := 0; iy < density.NY; iy++ {
		for ix := 0; ix < density.NX; ix++ {
			areaMM2 := float64(density.CellRect(ix, iy).Area()) / 1e12
			if areaMM2 <= 0 {
				continue
			}
			if d := density.At(ix, iy) / areaMM2; d > peak {
				peak = d
			}
		}
	}
	var rTotal float64 = s.R0KPerW
	for _, t := range s.Tiers {
		rTotal += t.RthetaKPerW
	}
	return peak * sprdMM2 * rTotal, nil
}
