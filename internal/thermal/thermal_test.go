package thermal

import (
	"math"
	"testing"
	"testing/quick"

	"m3d/internal/geom"
	"m3d/internal/tech"
)

func TestEq17HandComputed(t *testing.T) {
	// Two tiers: R0=2, R1=0.5 P1=1W, R2=0.5 P2=2W.
	// rise = (0.5+2)*1 + (0.5+0.5+2)*2 = 2.5 + 6 = 8.5 K.
	s := Stack{R0KPerW: 2, Tiers: []TierLoad{
		{RthetaKPerW: 0.5, PowerW: 1},
		{RthetaKPerW: 0.5, PowerW: 2},
	}}
	if got := s.TempRiseK(); math.Abs(got-8.5) > 1e-12 {
		t.Errorf("TempRise = %g, want 8.5", got)
	}
}

func TestEmptyStackNoRise(t *testing.T) {
	s := Stack{R0KPerW: 2}
	if s.TempRiseK() != 0 {
		t.Error("no tiers, no rise")
	}
	if !s.Feasible(0) {
		t.Error("zero rise is feasible at zero budget")
	}
}

func TestNewStackFromPDK(t *testing.T) {
	p := tech.Default130()
	s := NewStack(p, []float64{0.2, 0.2, 0.2})
	if len(s.Tiers) != 3 || s.R0KPerW != p.RthetaSink {
		t.Fatalf("stack construction wrong: %+v", s)
	}
	for _, tier := range s.Tiers {
		if tier.RthetaKPerW != p.RthetaPerTier {
			t.Error("per-tier resistance not from PDK")
		}
	}
}

func TestRiseMonotoneInTiers(t *testing.T) {
	p := tech.Default130()
	f := func(nRaw uint8, pRaw uint8) bool {
		n := 1 + int(nRaw)%12
		pw := 0.05 + float64(pRaw)/255.0
		powers := make([]float64, n)
		for i := range powers {
			powers[i] = pw
		}
		r1 := NewStack(p, powers).TempRiseK()
		r2 := NewStack(p, append(powers, pw)).TempRiseK()
		return r2 > r1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUpperTiersCostMore(t *testing.T) {
	// Moving the same power higher in the stack increases the rise.
	p := tech.Default130()
	low := NewStack(p, []float64{1.0, 0.0, 0.0}).TempRiseK()
	high := NewStack(p, []float64{0.0, 0.0, 1.0}).TempRiseK()
	if high <= low {
		t.Errorf("power high in the stack (%g) should cost more than low (%g)", high, low)
	}
}

func TestMaxTiers(t *testing.T) {
	p := tech.Default130()
	// rise(Y) = sum_{i=1..Y} (i*Rt + R0) * P. With P=2W, R0=2, Rt=0.6:
	// Y=10: sum = P*(R0*Y + Rt*Y(Y+1)/2) = 2*(20+33) = 106 > 60.
	// Y=6: 2*(12+12.6) = 49.2 <= 60; Y=7: 2*(14+16.8)=61.6 > 60 → max 6.
	if got := MaxTiers(p, 2.0); got != 6 {
		t.Errorf("MaxTiers(2W) = %d, want 6", got)
	}
	// Tiny power: effectively unbounded but finite.
	if got := MaxTiers(p, 1e-12); got < 1000 {
		t.Errorf("negligible power should allow many tiers, got %d", got)
	}
	// Huge power: not even one tier.
	if got := MaxTiers(p, 1000); got != 0 {
		t.Errorf("1kW per tier should allow 0 tiers, got %d", got)
	}
}

func TestMaxTiersConsistentWithFeasible(t *testing.T) {
	p := tech.Default130()
	f := func(pRaw uint8) bool {
		pw := 0.5 + float64(pRaw)/32.0
		y := MaxTiers(p, pw)
		if y == 0 {
			powers := []float64{pw}
			return !NewStack(p, powers).Feasible(p.MaxTempRiseK)
		}
		at := make([]float64, y)
		over := make([]float64, y+1)
		for i := range at {
			at[i] = pw
		}
		for i := range over {
			over[i] = pw
		}
		return NewStack(p, at).Feasible(p.MaxTempRiseK) &&
			!NewStack(p, over).Feasible(p.MaxTempRiseK)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestHotspotRise(t *testing.T) {
	p := tech.Default130()
	g := geom.NewGrid(geom.R(0, 0, 4_000_000, 4_000_000), 1_000_000)
	g.Set(1, 1, 0.5) // 0.5 W in one 1mm² cell → 0.5 W/mm²
	s := NewStack(p, []float64{1.0})
	rise, err := HotspotRiseK(s, g, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	// 0.5 W/mm² × 2 mm² × (2.0+0.6) K/W = 2.6 K.
	if math.Abs(rise-2.6) > 1e-9 {
		t.Errorf("hotspot rise = %g, want 2.6", rise)
	}
	if _, err := HotspotRiseK(s, nil, 1); err == nil {
		t.Error("nil grid should fail")
	}
	if _, err := HotspotRiseK(s, g, 0); err == nil {
		t.Error("zero spreading area should fail")
	}
}
