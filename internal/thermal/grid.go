package thermal

import (
	"fmt"

	"m3d/internal/geom"
	"m3d/internal/tech"
)

// GridOptions tunes the 2D steady-state thermal solve.
type GridOptions struct {
	// LateralKPerW is the thermal resistance between adjacent grid nodes
	// (silicon lateral spreading; default 8 K/W).
	LateralKPerW float64
	// VerticalKPerW is each node's resistance to the heat sink (stack +
	// sink share; default: R0 + Y·R_tier scaled by node count).
	VerticalKPerW float64
	// MaxIterations / Tolerance bound the Gauss–Seidel solve.
	MaxIterations int
	Tolerance     float64
}

func (o GridOptions) withDefaults(p *tech.PDK, tiers int, nodes int) GridOptions {
	if o.LateralKPerW <= 0 {
		o.LateralKPerW = 8
	}
	if o.VerticalKPerW <= 0 {
		// The whole stack resistance serves the die in parallel across
		// nodes: per-node vertical resistance scales with node count.
		total := p.RthetaSink + float64(tiers)*p.RthetaPerTier
		o.VerticalKPerW = total * float64(nodes)
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 10000
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-7
	}
	return o
}

// GridReport is the solved temperature field.
type GridReport struct {
	// PeakRiseK / MeanRiseK summarize the field.
	PeakRiseK, MeanRiseK float64
	// PeakAt locates the hottest node.
	PeakAt geom.Point
	// Field holds per-node temperature rise (K).
	Field *geom.Grid
	// Iterations used.
	Iterations int
	// Feasible is PeakRiseK ≤ the PDK budget.
	Feasible bool
}

// SolveGrid runs a steady-state 2D thermal solve over a power-density map:
// each node dissipates its share of power, conducts laterally to its
// neighbours and vertically to the sink. Compared with Eq. 17's lumped
// stack, this resolves hot spots (the CS clusters of the M3D design).
// tiers is the interleaved pair count Y whose vertical resistance the heat
// crosses (1 for the case study).
func SolveGrid(p *tech.PDK, density *geom.Grid, tiers int, opt GridOptions) (*GridReport, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("thermal: invalid PDK: %w", err)
	}
	if density == nil {
		return nil, fmt.Errorf("thermal: nil density map")
	}
	if tiers < 1 {
		return nil, fmt.Errorf("thermal: tiers %d must be ≥ 1", tiers)
	}
	nx, ny := density.NX, density.NY
	if nx < 1 || ny < 1 {
		return nil, fmt.Errorf("thermal: degenerate density map")
	}
	opt = opt.withDefaults(p, tiers, nx*ny)

	gl := 1 / opt.LateralKPerW
	gv := 1 / opt.VerticalKPerW
	temp := make([]float64, nx*ny)

	iter := 0
	for ; iter < opt.MaxIterations; iter++ {
		var worst float64
		for iy := 0; iy < ny; iy++ {
			for ix := 0; ix < nx; ix++ {
				i := iy*nx + ix
				sumG := gv
				sumGT := 0.0 // ambient at rise 0 through gv
				if ix > 0 {
					sumG += gl
					sumGT += gl * temp[i-1]
				}
				if ix < nx-1 {
					sumG += gl
					sumGT += gl * temp[i+1]
				}
				if iy > 0 {
					sumG += gl
					sumGT += gl * temp[i-nx]
				}
				if iy < ny-1 {
					sumG += gl
					sumGT += gl * temp[i+nx]
				}
				nv := (sumGT + density.At(ix, iy)) / sumG
				if d := nv - temp[i]; d > worst || -d > worst {
					if d < 0 {
						d = -d
					}
					worst = d
				}
				temp[i] = nv
			}
		}
		if worst < opt.Tolerance {
			break
		}
	}

	rep := &GridReport{Field: geom.NewGrid(density.Region, density.Pitch), Iterations: iter}
	var sum float64
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			v := temp[iy*nx+ix]
			rep.Field.Set(ix, iy, v)
			sum += v
			if v > rep.PeakRiseK {
				rep.PeakRiseK = v
				rep.PeakAt = rep.Field.CellRect(ix, iy).Center()
			}
		}
	}
	rep.MeanRiseK = sum / float64(nx*ny)
	rep.Feasible = rep.PeakRiseK <= p.MaxTempRiseK
	return rep, nil
}
