package thermal

import (
	"testing"

	"m3d/internal/geom"
	"m3d/internal/tech"
)

const mm = int64(1_000_000)

func uniform(totalW float64) *geom.Grid {
	g := geom.NewGrid(geom.R(0, 0, 4*mm, 4*mm), mm/4)
	g.AddRect(g.Region, totalW)
	return g
}

func TestSolveGridUniform(t *testing.T) {
	p := tech.Default130()
	rep, err := SolveGrid(p, uniform(1.0), 1, GridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeakRiseK <= 0 || rep.MeanRiseK <= 0 {
		t.Fatal("no temperature rise from 1 W")
	}
	if rep.PeakRiseK < rep.MeanRiseK {
		t.Error("peak below mean")
	}
	// Uniform power on a uniform mesh: total rise ≈ P × stack resistance
	// when lateral conduction evens things out. Sanity band: the mean rise
	// should be within 3x of the lumped Eq. 17 value.
	lumped := NewStack(p, []float64{1.0}).TempRiseK()
	if rep.MeanRiseK < lumped/3 || rep.MeanRiseK > lumped*3 {
		t.Errorf("mean rise %g K far from lumped %g K", rep.MeanRiseK, lumped)
	}
	if !rep.Feasible {
		t.Error("1 W should be thermally fine")
	}
	if rep.Iterations >= 10000 {
		t.Error("solver hit the iteration cap")
	}
}

func TestSolveGridHotspot(t *testing.T) {
	p := tech.Default130()
	g := uniform(0.5)
	hot := geom.R(mm/2, mm/2, mm, mm)
	g.AddRect(hot, 1.0)
	rep, err := SolveGrid(p, g, 1, GridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeakAt.ManhattanDist(hot.Center()) > 2*mm {
		t.Errorf("peak at %v, expected near hotspot %v", rep.PeakAt, hot.Center())
	}
	if rep.PeakRiseK <= rep.MeanRiseK*1.05 {
		t.Error("a hotspot should clearly exceed the mean")
	}
}

func TestSolveGridScalesWithTiers(t *testing.T) {
	// More interleaved tiers = taller stack = hotter at equal power.
	p := tech.Default130()
	r1, err := SolveGrid(p, uniform(2.0), 1, GridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := SolveGrid(p, uniform(2.0), 4, GridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r4.PeakRiseK <= r1.PeakRiseK {
		t.Errorf("4 tiers (%g K) should run hotter than 1 (%g K)", r4.PeakRiseK, r1.PeakRiseK)
	}
}

func TestSolveGridLinearity(t *testing.T) {
	p := tech.Default130()
	r1, err := SolveGrid(p, uniform(0.5), 1, GridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := SolveGrid(p, uniform(1.0), 1, GridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ratio := r2.PeakRiseK / r1.PeakRiseK
	if ratio < 1.95 || ratio > 2.05 {
		t.Errorf("linear system: 2x power should give 2x rise, got %.3fx", ratio)
	}
}

func TestSolveGridValidation(t *testing.T) {
	p := tech.Default130()
	if _, err := SolveGrid(p, nil, 1, GridOptions{}); err == nil {
		t.Error("nil density should fail")
	}
	if _, err := SolveGrid(p, uniform(1), 0, GridOptions{}); err == nil {
		t.Error("0 tiers should fail")
	}
	bad := tech.Default130()
	bad.VDD = 0
	if _, err := SolveGrid(bad, uniform(1), 1, GridOptions{}); err == nil {
		t.Error("invalid PDK should fail")
	}
}
