// Package netlist provides the gate-level design database shared by the
// synthesis, floorplanning, placement, routing, timing, and power stages:
// standard-cell and hard-macro instances connected by nets.
//
// Positions are filled in by floorplanning (macros) and placement (cells);
// tiers are filled in by the M3D tier-assignment step. A freshly synthesized
// netlist has every movable instance at the origin on TierSiCMOS.
package netlist

import (
	"fmt"

	"m3d/internal/cell"
	"m3d/internal/geom"
	"m3d/internal/tech"
)

// Blockage is a keep-out rectangle contributed by a macro, expressed
// relative to the macro origin. Tier identifies which device tier's
// placement it blocks.
type Blockage struct {
	Tier tech.Tier
	Rect geom.Rect
}

// MacroRef describes a hard macro master (RRAM bank, SRAM buffer, ...).
// Geometry is fixed; Blockages list the per-tier keep-outs the macro imposes
// when placed (the paper's "partial blockage" of RRAM arrays vs "full
// blockage" of peripherals).
type MacroRef struct {
	Kind          string
	Width, Height int64
	// PinCapF is the input capacitance seen on each macro port.
	PinCapF float64
	// Blockages are placement keep-outs relative to the macro origin.
	Blockages []Blockage
	// LeakageW is the macro's static power.
	LeakageW float64
	// AccessEnergyJ is the per-access dynamic energy (one port event).
	AccessEnergyJ float64
	// AccessLatencyS is the clock-to-data latency of macro output ports
	// (e.g. the RRAM array read latency); used as the launch time of macro
	// outputs in timing analysis.
	AccessLatencyS float64
}

// Area returns the macro footprint in nm².
func (m *MacroRef) Area() int64 { return m.Width * m.Height }

// Instance is one placed object: either a standard cell (Cell != nil) or a
// hard macro (Macro != nil), never both.
type Instance struct {
	ID   int
	Name string

	Cell  *cell.Cell
	Macro *MacroRef

	// Fixed instances are pre-placed by floorplanning and cannot move.
	Fixed bool
	// Tier is the device tier the instance is assigned to.
	Tier tech.Tier
	// Pos is the lower-left corner of the instance.
	Pos geom.Point

	pins []*Pin
}

// IsMacro reports whether the instance is a hard macro.
func (inst *Instance) IsMacro() bool { return inst.Macro != nil }

// Width returns the instance width in DBU given the PDK site geometry.
func (inst *Instance) Width(p *tech.PDK) int64 {
	if inst.IsMacro() {
		return inst.Macro.Width
	}
	return int64(inst.Cell.Sites) * p.SiteWidth
}

// Height returns the instance height in DBU.
func (inst *Instance) Height(p *tech.PDK) int64 {
	if inst.IsMacro() {
		return inst.Macro.Height
	}
	return p.RowHeight
}

// Bounds returns the instance rectangle at its current position.
func (inst *Instance) Bounds(p *tech.PDK) geom.Rect {
	return geom.Rect{
		Lo: inst.Pos,
		Hi: geom.Pt(inst.Pos.X+inst.Width(p), inst.Pos.Y+inst.Height(p)),
	}
}

// AreaNM2 returns the instance footprint area.
func (inst *Instance) AreaNM2(p *tech.PDK) int64 {
	return inst.Width(p) * inst.Height(p)
}

// Pins returns the instance's pins in creation order.
func (inst *Instance) Pins() []*Pin { return inst.pins }

// Pin is one connection point of an instance.
type Pin struct {
	// ID is the pin's dense index in netlist creation order; slice-based
	// stages (STA arrival arrays, router scratch) key on it instead of
	// hashing pointers.
	ID       int
	Inst     *Instance
	Name     string
	IsOutput bool
	// CapF is the pin input capacitance (0 for outputs).
	CapF float64
	// Offset is the pin location relative to the instance origin.
	Offset geom.Point
	Net    *Net
}

// Loc returns the pin's absolute location.
func (p *Pin) Loc() geom.Point { return p.Inst.Pos.Add(p.Offset) }

// Net connects one driver pin to zero or more sink pins.
type Net struct {
	ID     int
	Name   string
	Driver *Pin
	Sinks  []*Pin
	// Clock marks clock-tree nets (excluded from signal routing metrics,
	// toggling every cycle in power analysis).
	Clock bool
	// Activity is the switching activity factor (transitions per cycle).
	Activity float64
}

// Pins returns driver plus sinks.
func (n *Net) Pins() []*Pin {
	out := make([]*Pin, 0, 1+len(n.Sinks))
	if n.Driver != nil {
		out = append(out, n.Driver)
	}
	return append(out, n.Sinks...)
}

// SinkCapF returns the total sink pin capacitance on the net.
func (n *Net) SinkCapF() float64 {
	var c float64
	for _, s := range n.Sinks {
		c += s.CapF
	}
	return c
}

// HPWL returns the half-perimeter wirelength of the net's pin locations.
// It is the placement hot loop's cost function, so the bounding box is
// accumulated directly over driver and sinks without building point
// slices (equivalent to geom.HPWL over Pins()).
func (n *Net) HPWL() int64 {
	var lo, hi geom.Point
	count := 0
	grow := func(p *Pin) {
		at := p.Loc()
		if count == 0 {
			lo, hi = at, at
		} else {
			if at.X < lo.X {
				lo.X = at.X
			}
			if at.X > hi.X {
				hi.X = at.X
			}
			if at.Y < lo.Y {
				lo.Y = at.Y
			}
			if at.Y > hi.Y {
				hi.Y = at.Y
			}
		}
		count++
	}
	if n.Driver != nil {
		grow(n.Driver)
	}
	for _, s := range n.Sinks {
		grow(s)
	}
	if count < 2 {
		return 0
	}
	return (hi.X - lo.X) + (hi.Y - lo.Y)
}

// Netlist is the design database.
type Netlist struct {
	Name      string
	Instances []*Instance
	Nets      []*Net

	// pins holds every pin in creation order, indexed by Pin.ID.
	pins []*Pin
}

// NumPins returns the total pin count; Pin.ID values are dense in
// [0, NumPins).
func (nl *Netlist) NumPins() int { return len(nl.pins) }

// PinByID returns the pin with the given dense ID.
func (nl *Netlist) PinByID(id int) *Pin { return nl.pins[id] }

// New creates an empty netlist.
func New(name string) *Netlist {
	return &Netlist{Name: name}
}

// AddCell appends a standard-cell instance.
func (nl *Netlist) AddCell(name string, c *cell.Cell) *Instance {
	inst := &Instance{
		ID:   len(nl.Instances),
		Name: name,
		Cell: c,
		Tier: c.Tier,
	}
	nl.Instances = append(nl.Instances, inst)
	return inst
}

// AddMacro appends a hard-macro instance on the given tier.
func (nl *Netlist) AddMacro(name string, m *MacroRef, tier tech.Tier) *Instance {
	inst := &Instance{
		ID:    len(nl.Instances),
		Name:  name,
		Macro: m,
		Tier:  tier,
		Fixed: true,
	}
	nl.Instances = append(nl.Instances, inst)
	return inst
}

// AddNet creates a named net with the given activity factor.
func (nl *Netlist) AddNet(name string, activity float64) *Net {
	n := &Net{ID: len(nl.Nets), Name: name, Activity: activity}
	nl.Nets = append(nl.Nets, n)
	return n
}

// AddPin attaches a new pin to inst and connects it to net. Output pins
// become the net driver (error if the net already has one).
func (nl *Netlist) AddPin(inst *Instance, name string, isOutput bool, capF float64, net *Net) (*Pin, error) {
	p := &Pin{
		ID:       len(nl.pins),
		Inst:     inst,
		Name:     name,
		IsOutput: isOutput,
		CapF:     capF,
		Net:      net,
	}
	nl.pins = append(nl.pins, p)
	inst.pins = append(inst.pins, p)
	if net == nil {
		return p, nil
	}
	if isOutput {
		if net.Driver != nil {
			return nil, fmt.Errorf("netlist: net %q already driven by %s/%s",
				net.Name, net.Driver.Inst.Name, net.Driver.Name)
		}
		net.Driver = p
	} else {
		net.Sinks = append(net.Sinks, p)
	}
	return p, nil
}

// MustPin is AddPin that panics on multiple drivers; for generator code
// whose structure guarantees single drivers.
func (nl *Netlist) MustPin(inst *Instance, name string, isOutput bool, capF float64, net *Net) *Pin {
	p, err := nl.AddPin(inst, name, isOutput, capF, net)
	if err != nil {
		panic(err)
	}
	return p
}

// Stats summarizes a netlist.
type Stats struct {
	Cells        int
	Macros       int
	Nets         int
	FloatingNets int // nets with no driver or no sink
	Sequential   int
	CellAreaNM2  map[tech.Tier]int64
	MacroAreaNM2 int64
	TotalPins    int
}

// ComputeStats gathers summary statistics.
func (nl *Netlist) ComputeStats(p *tech.PDK) Stats {
	s := Stats{CellAreaNM2: make(map[tech.Tier]int64)}
	for _, inst := range nl.Instances {
		if inst.IsMacro() {
			s.Macros++
			s.MacroAreaNM2 += inst.AreaNM2(p)
		} else {
			s.Cells++
			s.CellAreaNM2[inst.Tier] += inst.AreaNM2(p)
			if inst.Cell.Sequential {
				s.Sequential++
			}
		}
		s.TotalPins += len(inst.pins)
	}
	s.Nets = len(nl.Nets)
	for _, n := range nl.Nets {
		if n.Driver == nil || len(n.Sinks) == 0 {
			s.FloatingNets++
		}
	}
	return s
}

// Check verifies structural sanity: every net has exactly one driver and at
// least one sink, every pin belongs to its instance, and IDs are dense.
func (nl *Netlist) Check() error {
	for i, inst := range nl.Instances {
		if inst.ID != i {
			return fmt.Errorf("netlist: instance %q ID %d at position %d", inst.Name, inst.ID, i)
		}
		if (inst.Cell == nil) == (inst.Macro == nil) {
			return fmt.Errorf("netlist: instance %q must be exactly one of cell or macro", inst.Name)
		}
		for _, p := range inst.pins {
			if p.Inst != inst {
				return fmt.Errorf("netlist: pin %s/%s back-pointer broken", inst.Name, p.Name)
			}
			if p.ID < 0 || p.ID >= len(nl.pins) || nl.pins[p.ID] != p {
				return fmt.Errorf("netlist: pin %s/%s ID %d not dense", inst.Name, p.Name, p.ID)
			}
		}
	}
	for i, n := range nl.Nets {
		if n.ID != i {
			return fmt.Errorf("netlist: net %q ID %d at position %d", n.Name, n.ID, i)
		}
		if n.Driver == nil {
			return fmt.Errorf("netlist: net %q has no driver", n.Name)
		}
		if !n.Driver.IsOutput {
			return fmt.Errorf("netlist: net %q driver %s is not an output", n.Name, n.Driver.Name)
		}
		if len(n.Sinks) == 0 {
			return fmt.Errorf("netlist: net %q has no sinks", n.Name)
		}
		for _, s := range n.Sinks {
			if s.IsOutput {
				return fmt.Errorf("netlist: net %q sink %s/%s is an output", n.Name, s.Inst.Name, s.Name)
			}
			if s.Net != n {
				return fmt.Errorf("netlist: net %q sink back-pointer broken", n.Name)
			}
		}
	}
	return nil
}

// TotalHPWL sums the half-perimeter wirelength over all signal nets.
func (nl *Netlist) TotalHPWL() int64 {
	var wl int64
	for _, n := range nl.Nets {
		if !n.Clock {
			wl += n.HPWL()
		}
	}
	return wl
}

// CellsOn returns the standard-cell instances assigned to the given tier.
func (nl *Netlist) CellsOn(t tech.Tier) []*Instance {
	var out []*Instance
	for _, inst := range nl.Instances {
		if !inst.IsMacro() && inst.Tier == t {
			out = append(out, inst)
		}
	}
	return out
}

// MovableCells returns all non-fixed standard-cell instances.
func (nl *Netlist) MovableCells() []*Instance {
	var out []*Instance
	for _, inst := range nl.Instances {
		if !inst.IsMacro() && !inst.Fixed {
			out = append(out, inst)
		}
	}
	return out
}

// MacroInstances returns all hard-macro instances.
func (nl *Netlist) MacroInstances() []*Instance {
	var out []*Instance
	for _, inst := range nl.Instances {
		if inst.IsMacro() {
			out = append(out, inst)
		}
	}
	return out
}
