package netlist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"m3d/internal/cell"
	"m3d/internal/geom"
	"m3d/internal/tech"
)

func testLib(t *testing.T) (*tech.PDK, *cell.Library) {
	t.Helper()
	p := tech.Default130()
	lib, err := cell.NewLibrary(p, tech.TierSiCMOS)
	if err != nil {
		t.Fatal(err)
	}
	return p, lib
}

// buildChain makes a simple inverter chain of length n driven by a DFF.
func buildChain(t *testing.T, lib *cell.Library, n int) *Netlist {
	t.Helper()
	nl := New("chain")
	ff := nl.AddCell("ff0", lib.MustPick(cell.DFF, 1))
	prev := nl.AddNet("n0", 0.2)
	nl.MustPin(ff, "Q", true, 0, prev)
	for i := 0; i < n; i++ {
		inv := nl.AddCell("inv", lib.MustPick(cell.Inv, 1))
		nl.MustPin(inv, "A", false, inv.Cell.InputCapF, prev)
		next := nl.AddNet("n", 0.2)
		nl.MustPin(inv, "Y", true, 0, next)
		prev = next
	}
	// Terminate the final net so Check passes.
	sink := nl.AddCell("sinkff", lib.MustPick(cell.DFF, 1))
	nl.MustPin(sink, "D", false, sink.Cell.InputCapF, prev)
	return nl
}

func TestBuildAndCheck(t *testing.T) {
	_, lib := testLib(t)
	nl := buildChain(t, lib, 5)
	if err := nl.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if len(nl.Instances) != 7 {
		t.Errorf("instances = %d, want 7", len(nl.Instances))
	}
	if len(nl.Nets) != 6 {
		t.Errorf("nets = %d, want 6", len(nl.Nets))
	}
}

func TestMultipleDriversRejected(t *testing.T) {
	_, lib := testLib(t)
	nl := New("bad")
	a := nl.AddCell("a", lib.MustPick(cell.Inv, 1))
	b := nl.AddCell("b", lib.MustPick(cell.Inv, 1))
	n := nl.AddNet("n", 0.1)
	nl.MustPin(a, "Y", true, 0, n)
	if _, err := nl.AddPin(b, "Y", true, 0, n); err == nil {
		t.Fatal("second driver should be rejected")
	}
}

func TestCheckCatchesFloating(t *testing.T) {
	_, lib := testLib(t)

	nl := New("nodriver")
	i := nl.AddCell("i", lib.MustPick(cell.Inv, 1))
	n := nl.AddNet("n", 0.1)
	nl.MustPin(i, "A", false, 1e-15, n)
	if err := nl.Check(); err == nil {
		t.Error("undriven net not caught")
	}

	nl2 := New("nosink")
	i2 := nl2.AddCell("i", lib.MustPick(cell.Inv, 1))
	n2 := nl2.AddNet("n", 0.1)
	nl2.MustPin(i2, "Y", true, 0, n2)
	if err := nl2.Check(); err == nil {
		t.Error("sinkless net not caught")
	}
}

func TestInstanceGeometry(t *testing.T) {
	p, lib := testLib(t)
	nl := New("geom")
	inv := nl.AddCell("i", lib.MustPick(cell.Inv, 1))
	inv.Pos = geom.Pt(1000, 2000)
	if inv.Width(p) != int64(inv.Cell.Sites)*p.SiteWidth {
		t.Error("cell width mismatch")
	}
	if inv.Height(p) != p.RowHeight {
		t.Error("cell height mismatch")
	}
	b := inv.Bounds(p)
	if b.Lo != inv.Pos {
		t.Error("bounds origin mismatch")
	}
	if b.Area() != inv.AreaNM2(p) {
		t.Error("area mismatch")
	}
}

func TestMacroInstance(t *testing.T) {
	p, _ := testLib(t)
	nl := New("mac")
	m := &MacroRef{
		Kind: "rram_bank", Width: 500_000, Height: 400_000,
		Blockages: []Blockage{{Tier: tech.TierSiCMOS, Rect: geom.R(0, 0, 500_000, 300_000)}},
	}
	inst := nl.AddMacro("bank0", m, tech.TierRRAM)
	if !inst.IsMacro() || !inst.Fixed {
		t.Error("macro must be fixed and report IsMacro")
	}
	if inst.AreaNM2(p) != 500_000*400_000 {
		t.Error("macro area mismatch")
	}
	if m.Area() != 500_000*400_000 {
		t.Error("MacroRef.Area mismatch")
	}
}

func TestStats(t *testing.T) {
	p, lib := testLib(t)
	nl := buildChain(t, lib, 3)
	m := &MacroRef{Kind: "sram", Width: 100_000, Height: 100_000}
	nl.AddMacro("buf0", m, tech.TierSiCMOS)
	s := nl.ComputeStats(p)
	if s.Cells != 5 || s.Macros != 1 {
		t.Errorf("cells/macros = %d/%d, want 5/1", s.Cells, s.Macros)
	}
	if s.Sequential != 2 {
		t.Errorf("sequential = %d, want 2", s.Sequential)
	}
	if s.MacroAreaNM2 != 100_000*100_000 {
		t.Errorf("macro area = %d", s.MacroAreaNM2)
	}
	if s.CellAreaNM2[tech.TierSiCMOS] <= 0 {
		t.Error("Si cell area should be positive")
	}
	if s.FloatingNets != 0 {
		t.Errorf("floating nets = %d, want 0", s.FloatingNets)
	}
}

func TestNetHPWLAndCap(t *testing.T) {
	_, lib := testLib(t)
	nl := New("wl")
	a := nl.AddCell("a", lib.MustPick(cell.Inv, 1))
	b := nl.AddCell("b", lib.MustPick(cell.Inv, 2))
	c := nl.AddCell("c", lib.MustPick(cell.Inv, 4))
	n := nl.AddNet("n", 0.1)
	nl.MustPin(a, "Y", true, 0, n)
	pb := nl.MustPin(b, "A", false, b.Cell.InputCapF, n)
	pc := nl.MustPin(c, "A", false, c.Cell.InputCapF, n)
	a.Pos = geom.Pt(0, 0)
	b.Pos = geom.Pt(10_000, 0)
	c.Pos = geom.Pt(5_000, 7_000)
	if got := n.HPWL(); got != 17_000 {
		t.Errorf("HPWL = %d, want 17000", got)
	}
	wantCap := pb.CapF + pc.CapF
	if got := n.SinkCapF(); got != wantCap {
		t.Errorf("SinkCapF = %g, want %g", got, wantCap)
	}
}

func TestPinLoc(t *testing.T) {
	_, lib := testLib(t)
	nl := New("pin")
	a := nl.AddCell("a", lib.MustPick(cell.Inv, 1))
	n := nl.AddNet("n", 0.1)
	p := nl.MustPin(a, "Y", true, 0, n)
	p.Offset = geom.Pt(100, 200)
	a.Pos = geom.Pt(1000, 1000)
	if p.Loc() != geom.Pt(1100, 1200) {
		t.Errorf("pin loc = %v", p.Loc())
	}
}

func TestSelections(t *testing.T) {
	_, lib := testLib(t)
	nl := buildChain(t, lib, 4)
	nl.AddMacro("m", &MacroRef{Kind: "x", Width: 10, Height: 10}, tech.TierRRAM)
	if got := len(nl.MovableCells()); got != 6 {
		t.Errorf("movable = %d, want 6", got)
	}
	if got := len(nl.MacroInstances()); got != 1 {
		t.Errorf("macros = %d, want 1", got)
	}
	if got := len(nl.CellsOn(tech.TierSiCMOS)); got != 6 {
		t.Errorf("Si cells = %d, want 6", got)
	}
	if got := len(nl.CellsOn(tech.TierCNFET)); got != 0 {
		t.Errorf("CNFET cells = %d, want 0", got)
	}
}

func TestTotalHPWLExcludesClock(t *testing.T) {
	_, lib := testLib(t)
	nl := New("clk")
	a := nl.AddCell("a", lib.MustPick(cell.ClkBuf, 1))
	b := nl.AddCell("b", lib.MustPick(cell.DFF, 1))
	n := nl.AddNet("clk", 1.0)
	n.Clock = true
	nl.MustPin(a, "Y", true, 0, n)
	nl.MustPin(b, "CK", false, b.Cell.InputCapF, n)
	a.Pos = geom.Pt(0, 0)
	b.Pos = geom.Pt(50_000, 0)
	if got := nl.TotalHPWL(); got != 0 {
		t.Errorf("clock nets must not count toward signal HPWL, got %d", got)
	}
}

// Property: any randomly wired single-driver netlist passes Check, and its
// stats add up.
func TestRandomNetlistInvariants(t *testing.T) {
	p, lib := testLib(t)
	kinds := []cell.Kind{cell.Inv, cell.Nand2, cell.Nor2, cell.Xor2, cell.DFF}
	f := func(seed int64, nCellsRaw, nNetsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nCells := 2 + int(nCellsRaw)%30
		nNets := 1 + int(nNetsRaw)%20
		nl := New("rand")
		for i := 0; i < nCells; i++ {
			k := kinds[rng.Intn(len(kinds))]
			nl.AddCell("c", lib.MustPick(k, 1))
		}
		for i := 0; i < nNets; i++ {
			n := nl.AddNet("n", rng.Float64())
			drv := nl.Instances[rng.Intn(nCells)]
			nl.MustPin(drv, "Y", true, 0, n)
			nSinks := 1 + rng.Intn(4)
			for j := 0; j < nSinks; j++ {
				s := nl.Instances[rng.Intn(nCells)]
				nl.MustPin(s, "A", false, s.Cell.InputCapF, n)
			}
		}
		if err := nl.Check(); err != nil {
			return false
		}
		st := nl.ComputeStats(p)
		return st.Cells == nCells && st.Nets == nNets && st.FloatingNets == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
