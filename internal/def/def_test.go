package def

import (
	"bytes"
	"strings"
	"testing"

	"m3d/internal/cell"
	"m3d/internal/geom"
	"m3d/internal/netlist"
	"m3d/internal/tech"
)

func smallDesign(t *testing.T) (*tech.PDK, *netlist.Netlist, geom.Rect) {
	t.Helper()
	p := tech.Default130()
	lib, err := cell.NewLibrary(p, tech.TierSiCMOS)
	if err != nil {
		t.Fatal(err)
	}
	nl := netlist.New("dump")
	a := nl.AddCell("u1", lib.MustPick(cell.Inv, 1))
	b := nl.AddCell("u2", lib.MustPick(cell.Nand2, 2))
	m := nl.AddMacro("bank0", &netlist.MacroRef{Kind: "rram", Width: 50_000, Height: 40_000}, tech.TierRRAM)
	n := nl.AddNet("n1", 0.2)
	nl.MustPin(a, "Y", true, 0, n)
	nl.MustPin(b, "A", false, b.Cell.InputCapF, n)
	a.Pos = geom.Pt(1000, 2000)
	b.Pos = geom.Pt(10_000, 3690)
	m.Pos = geom.Pt(100_000, 0)
	return p, nl, geom.R(0, 0, 200_000, 200_000)
}

func TestWriteFormat(t *testing.T) {
	_, nl, die := smallDesign(t)
	var buf bytes.Buffer
	if err := Write(&buf, nl, die); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"VERSION 5.8 ;",
		"DESIGN dump ;",
		"DIEAREA ( 0 0 ) ( 200000 200000 ) ;",
		"COMPONENTS 3 ;",
		"- u1 INV_X1 + PLACED ( 1000 2000 ) N ;",
		"- bank0 rram + FIXED ( 100000 0 ) N ;",
		"NETS 1 ;",
		"( u1 Y ) ( u2 A )",
		"END DESIGN",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRoundTripApply(t *testing.T) {
	p, nl, die := smallDesign(t)
	var buf bytes.Buffer
	if err := Write(&buf, nl, die); err != nil {
		t.Fatal(err)
	}
	parsed, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Design != "dump" || parsed.Die != die {
		t.Fatalf("header wrong: %+v", parsed)
	}
	if len(parsed.Placements) != 3 || parsed.NetCount != 1 {
		t.Fatalf("parsed %d placements / %d nets", len(parsed.Placements), parsed.NetCount)
	}
	// Scramble positions, then re-apply.
	for _, inst := range nl.Instances {
		inst.Pos = geom.Pt(0, 0)
	}
	placed, err := Apply(nl, parsed, p)
	if err != nil {
		t.Fatal(err)
	}
	if placed != 3 {
		t.Fatalf("placed = %d", placed)
	}
	if nl.Instances[0].Pos != geom.Pt(1000, 2000) {
		t.Error("u1 position not restored")
	}
	if !nl.Instances[2].Fixed {
		t.Error("macro fixedness not restored")
	}
}

func TestApplyErrors(t *testing.T) {
	p, nl, die := smallDesign(t)
	parsed := &Parsed{
		Design: "dump",
		Die:    die,
		Placements: []Placement{
			{Name: "ghost", Pos: geom.Pt(0, 0)},
		},
	}
	if _, err := Apply(nl, parsed, p); err == nil {
		t.Error("unknown instance should fail")
	}
	parsed.Placements = []Placement{{Name: "u1", Pos: geom.Pt(500_000, 0)}}
	if _, err := Apply(nl, parsed, p); err == nil {
		t.Error("off-die placement should fail")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",
		"VERSION 5.8 ;\nDESIGN d ;\nDIEAREA ( 0 0 ) ;\n",
		"VERSION 5.8 ;\nDESIGN d ;\nCOMPONENTS 1 ;\n- u1 INV_X1 ;\nEND COMPONENTS\n",
	}
	for i, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestIdent(t *testing.T) {
	if ident("") != "_" {
		t.Error("empty ident")
	}
	if ident("a b.c") != "a_b_c" {
		t.Errorf("ident = %q", ident("a b.c"))
	}
	if ident("bus[3]/x") != "bus[3]/x" {
		t.Errorf("ident clobbered legal chars: %q", ident("bus[3]/x"))
	}
}
