// Package def writes and reads a subset of the DEF (Design Exchange
// Format) sufficient to carry this project's placements between tools:
// VERSION, DESIGN, UNITS, DIEAREA, a COMPONENTS section with PLACED
// locations (macros as FIXED), and a NETS section listing connections.
// The reader applies a DEF's placement back onto an existing netlist.
package def

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"m3d/internal/geom"
	"m3d/internal/netlist"
	"m3d/internal/tech"
)

// Write emits the design's floorplan and placement as DEF. die is the die
// area; distance units are nm (DEF DBU = 1000 per micron).
func Write(w io.Writer, nl *netlist.Netlist, die geom.Rect) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "VERSION 5.8 ;\n")
	fmt.Fprintf(bw, "DESIGN %s ;\n", ident(nl.Name))
	fmt.Fprintf(bw, "UNITS DISTANCE MICRONS 1000 ;\n")
	fmt.Fprintf(bw, "DIEAREA ( %d %d ) ( %d %d ) ;\n", die.Lo.X, die.Lo.Y, die.Hi.X, die.Hi.Y)

	fmt.Fprintf(bw, "COMPONENTS %d ;\n", len(nl.Instances))
	for _, inst := range nl.Instances {
		master := ""
		status := "PLACED"
		if inst.IsMacro() {
			master = ident(inst.Macro.Kind)
			status = "FIXED"
		} else {
			master = ident(inst.Cell.Name)
			if inst.Fixed {
				status = "FIXED"
			}
		}
		fmt.Fprintf(bw, "  - %s %s + %s ( %d %d ) N ;\n",
			ident(inst.Name), master, status, inst.Pos.X, inst.Pos.Y)
	}
	fmt.Fprintf(bw, "END COMPONENTS\n")

	fmt.Fprintf(bw, "NETS %d ;\n", len(nl.Nets))
	for _, n := range nl.Nets {
		fmt.Fprintf(bw, "  - %s", ident(n.Name))
		for _, p := range n.Pins() {
			fmt.Fprintf(bw, " ( %s %s )", ident(p.Inst.Name), ident(p.Name))
		}
		fmt.Fprintf(bw, " ;\n")
	}
	fmt.Fprintf(bw, "END NETS\n")
	fmt.Fprintf(bw, "END DESIGN\n")
	return bw.Flush()
}

func ident(s string) string {
	if s == "" {
		return "_"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '[', r == ']', r == '/':
			return r
		default:
			return '_'
		}
	}, s)
}

// Placement is one component location parsed from a DEF.
type Placement struct {
	Name   string
	Master string
	Fixed  bool
	Pos    geom.Point
}

// Parsed is the reader's output.
type Parsed struct {
	Design     string
	Die        geom.Rect
	Placements []Placement
	NetCount   int
}

// Read parses the subset Write produces.
func Read(r io.Reader) (*Parsed, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	out := &Parsed{}
	inComponents := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		f := strings.Fields(line)
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
		case strings.HasPrefix(line, "DESIGN "):
			if len(f) >= 2 {
				out.Design = f[1]
			}
		case strings.HasPrefix(line, "DIEAREA"):
			// DIEAREA ( x0 y0 ) ( x1 y1 ) ;
			nums := numbers(f)
			if len(nums) != 4 {
				return nil, fmt.Errorf("def: line %d: bad DIEAREA", lineNo)
			}
			out.Die = geom.R(nums[0], nums[1], nums[2], nums[3])
		case strings.HasPrefix(line, "COMPONENTS "):
			inComponents = true
		case line == "END COMPONENTS":
			inComponents = false
		case strings.HasPrefix(line, "NETS "):
			if len(f) >= 2 {
				n, err := strconv.Atoi(f[1])
				if err != nil {
					return nil, fmt.Errorf("def: line %d: bad NETS count", lineNo)
				}
				out.NetCount = n
			}
		case inComponents && strings.HasPrefix(line, "- "):
			// - name master + STATUS ( x y ) N ;
			if len(f) < 9 {
				return nil, fmt.Errorf("def: line %d: bad component %q", lineNo, line)
			}
			nums := numbers(f)
			if len(nums) != 2 {
				return nil, fmt.Errorf("def: line %d: bad component coords", lineNo)
			}
			out.Placements = append(out.Placements, Placement{
				Name:   f[1],
				Master: f[2],
				Fixed:  f[4] == "FIXED",
				Pos:    geom.Pt(nums[0], nums[1]),
			})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if out.Design == "" {
		return nil, fmt.Errorf("def: no DESIGN statement")
	}
	return out, nil
}

// numbers extracts all integer tokens from fields.
func numbers(fields []string) []int64 {
	var out []int64
	for _, f := range fields {
		if v, err := strconv.ParseInt(f, 10, 64); err == nil {
			out = append(out, v)
		}
	}
	return out
}

// Apply copies a parsed DEF's placement onto nl by instance name (as
// written by Write, i.e. after identifier mapping). Returns how many
// instances were placed; errors if a placed instance is missing.
func Apply(nl *netlist.Netlist, parsed *Parsed, p *tech.PDK) (int, error) {
	byName := make(map[string]*netlist.Instance, len(nl.Instances))
	for _, inst := range nl.Instances {
		byName[ident(inst.Name)] = inst
	}
	placed := 0
	for _, pl := range parsed.Placements {
		inst, ok := byName[pl.Name]
		if !ok {
			return placed, fmt.Errorf("def: placement for unknown instance %q", pl.Name)
		}
		inst.Pos = pl.Pos
		inst.Fixed = pl.Fixed
		if !parsed.Die.Empty() && !parsed.Die.ContainsRect(inst.Bounds(p)) {
			return placed, fmt.Errorf("def: instance %q placed outside the die", pl.Name)
		}
		placed++
	}
	return placed, nil
}
