package def

import (
	"strings"
	"testing"
)

// FuzzRead feeds arbitrary text through the DEF reader. The property
// under test: Read never panics — malformed input must come back as an
// error (or parse cleanly), never as a crash.
func FuzzRead(f *testing.F) {
	f.Add("VERSION 5.8 ;\nDESIGN dut ;\nUNITS DISTANCE MICRONS 1000 ;\n" +
		"DIEAREA ( 0 0 ) ( 1000 1000 ) ;\nCOMPONENTS 1 ;\n" +
		"- u0 INV_X1 + PLACED ( 10 20 ) N ;\nEND COMPONENTS\n" +
		"NETS 3 ;\nEND NETS\nEND DESIGN\n")
	f.Add("DESIGN d ;\n")
	f.Add("DIEAREA ( 0 0 ) ( 10 ) ;\n")
	f.Add("COMPONENTS 1 ;\n- u0 ;\nEND COMPONENTS\n")
	f.Add("NETS many ;\n")
	f.Add("")

	f.Fuzz(func(t *testing.T, data string) {
		parsed, err := Read(strings.NewReader(data))
		if err == nil && parsed == nil {
			t.Fatal("nil parse with nil error")
		}
		if err == nil && parsed.Design == "" {
			t.Fatal("accepted input without DESIGN")
		}
	})
}
