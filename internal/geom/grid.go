package geom

import "fmt"

// Grid is a dense 2D occupancy/capacity grid over a rectangular region,
// used for placement density, routing capacity, blockages, and power maps.
// Cell (0,0) covers the region's lower-left corner.
type Grid struct {
	Region Rect
	NX, NY int
	Pitch  int64 // cell size in DBU (cells are square except at the far edge)
	vals   []float64
}

// NewGrid builds a grid over region with the given cell pitch (> 0).
func NewGrid(region Rect, pitch int64) *Grid {
	if pitch <= 0 {
		panic("geom: grid pitch must be positive")
	}
	nx := int((region.W() + pitch - 1) / pitch)
	ny := int((region.H() + pitch - 1) / pitch)
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	return &Grid{
		Region: region,
		NX:     nx,
		NY:     ny,
		Pitch:  pitch,
		vals:   make([]float64, nx*ny),
	}
}

// Clone returns a deep copy of the grid.
func (g *Grid) Clone() *Grid {
	out := *g
	out.vals = make([]float64, len(g.vals))
	copy(out.vals, g.vals)
	return &out
}

func (g *Grid) idx(ix, iy int) int { return iy*g.NX + ix }

// InBounds reports whether cell (ix, iy) exists.
func (g *Grid) InBounds(ix, iy int) bool {
	return ix >= 0 && ix < g.NX && iy >= 0 && iy < g.NY
}

// At returns the value of cell (ix, iy).
func (g *Grid) At(ix, iy int) float64 {
	if !g.InBounds(ix, iy) {
		panic(fmt.Sprintf("geom: grid index (%d,%d) out of bounds %dx%d", ix, iy, g.NX, g.NY))
	}
	return g.vals[g.idx(ix, iy)]
}

// Set assigns the value of cell (ix, iy).
func (g *Grid) Set(ix, iy int, v float64) {
	if !g.InBounds(ix, iy) {
		panic(fmt.Sprintf("geom: grid index (%d,%d) out of bounds %dx%d", ix, iy, g.NX, g.NY))
	}
	g.vals[g.idx(ix, iy)] = v
}

// Add accumulates v into cell (ix, iy).
func (g *Grid) Add(ix, iy int, v float64) {
	g.Set(ix, iy, g.At(ix, iy)+v)
}

// CellOf returns the cell containing p, clamped to the grid.
func (g *Grid) CellOf(p Point) (ix, iy int) {
	ix = int((p.X - g.Region.Lo.X) / g.Pitch)
	iy = int((p.Y - g.Region.Lo.Y) / g.Pitch)
	if ix < 0 {
		ix = 0
	}
	if ix >= g.NX {
		ix = g.NX - 1
	}
	if iy < 0 {
		iy = 0
	}
	if iy >= g.NY {
		iy = g.NY - 1
	}
	return ix, iy
}

// CellRect returns the region covered by cell (ix, iy), clipped to the grid
// region.
func (g *Grid) CellRect(ix, iy int) Rect {
	lo := Point{
		X: g.Region.Lo.X + int64(ix)*g.Pitch,
		Y: g.Region.Lo.Y + int64(iy)*g.Pitch,
	}
	hi := Point{lo.X + g.Pitch, lo.Y + g.Pitch}
	return Rect{Lo: lo, Hi: hi}.Intersect(g.Region)
}

// AddRect distributes v over all cells overlapping r, weighted by the
// overlap fraction of each cell. Total added equals v scaled by the fraction
// of r inside the grid region.
func (g *Grid) AddRect(r Rect, v float64) {
	clipped := r.Intersect(g.Region)
	if clipped.Empty() || r.Area() == 0 {
		return
	}
	ix0, iy0 := g.CellOf(clipped.Lo)
	ix1, iy1 := g.CellOf(Point{clipped.Hi.X - 1, clipped.Hi.Y - 1})
	total := float64(r.Area())
	for iy := iy0; iy <= iy1; iy++ {
		for ix := ix0; ix <= ix1; ix++ {
			ov := g.CellRect(ix, iy).Intersect(clipped)
			if !ov.Empty() {
				g.Add(ix, iy, v*float64(ov.Area())/total)
			}
		}
	}
}

// Max returns the maximum cell value (0 for an all-zero grid).
func (g *Grid) Max() float64 {
	m := g.vals[0]
	for _, v := range g.vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Sum returns the total of all cell values.
func (g *Grid) Sum() float64 {
	var s float64
	for _, v := range g.vals {
		s += v
	}
	return s
}

// Scale multiplies every cell by f.
func (g *Grid) Scale(f float64) {
	for i := range g.vals {
		g.vals[i] *= f
	}
}
