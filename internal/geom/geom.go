// Package geom provides the integer Manhattan geometry primitives used by
// the physical-design substrate: points, rectangles, and dense occupancy
// grids. All coordinates are in database units (DBU); the technology layer
// defines the DBU-to-micron scale (1 DBU = 1 nm throughout this project).
package geom

import "fmt"

// Point is a location in database units.
type Point struct {
	X, Y int64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y int64) Point { return Point{X: x, Y: y} }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p translated by -q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// ManhattanDist returns the L1 distance between p and q.
func (p Point) ManhattanDist(q Point) int64 {
	return absInt64(p.X-q.X) + absInt64(p.Y-q.Y)
}

func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

func absInt64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// Rect is an axis-aligned rectangle with inclusive lower-left (Lo) and
// exclusive upper-right (Hi) corners. A Rect with Hi <= Lo on either axis is
// empty.
type Rect struct {
	Lo, Hi Point
}

// R builds a rectangle from two corner coordinates, normalizing the order.
func R(x0, y0, x1, y1 int64) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{Lo: Point{x0, y0}, Hi: Point{x1, y1}}
}

// W returns the rectangle width (0 if empty).
func (r Rect) W() int64 {
	if r.Hi.X <= r.Lo.X {
		return 0
	}
	return r.Hi.X - r.Lo.X
}

// H returns the rectangle height (0 if empty).
func (r Rect) H() int64 {
	if r.Hi.Y <= r.Lo.Y {
		return 0
	}
	return r.Hi.Y - r.Lo.Y
}

// Area returns the rectangle area in DBU².
func (r Rect) Area() int64 { return r.W() * r.H() }

// Empty reports whether the rectangle encloses no area.
func (r Rect) Empty() bool { return r.W() == 0 || r.H() == 0 }

// Center returns the rectangle's center point (rounded down).
func (r Rect) Center() Point {
	return Point{(r.Lo.X + r.Hi.X) / 2, (r.Lo.Y + r.Hi.Y) / 2}
}

// Contains reports whether p lies inside r (Lo inclusive, Hi exclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Lo.X && p.X < r.Hi.X && p.Y >= r.Lo.Y && p.Y < r.Hi.Y
}

// ContainsRect reports whether s lies fully inside r.
func (r Rect) ContainsRect(s Rect) bool {
	if s.Empty() {
		return true
	}
	return s.Lo.X >= r.Lo.X && s.Lo.Y >= r.Lo.Y && s.Hi.X <= r.Hi.X && s.Hi.Y <= r.Hi.Y
}

// Intersect returns the overlap of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		Lo: Point{maxInt64(r.Lo.X, s.Lo.X), maxInt64(r.Lo.Y, s.Lo.Y)},
		Hi: Point{minInt64(r.Hi.X, s.Hi.X), minInt64(r.Hi.Y, s.Hi.Y)},
	}
	if out.Hi.X < out.Lo.X {
		out.Hi.X = out.Lo.X
	}
	if out.Hi.Y < out.Lo.Y {
		out.Hi.Y = out.Lo.Y
	}
	return out
}

// Overlaps reports whether r and s share any area.
func (r Rect) Overlaps(s Rect) bool { return !r.Intersect(s).Empty() }

// Union returns the bounding box of r and s. Empty inputs are ignored.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		Lo: Point{minInt64(r.Lo.X, s.Lo.X), minInt64(r.Lo.Y, s.Lo.Y)},
		Hi: Point{maxInt64(r.Hi.X, s.Hi.X), maxInt64(r.Hi.Y, s.Hi.Y)},
	}
}

// Inset shrinks the rectangle by d on every side (negative d grows it).
func (r Rect) Inset(d int64) Rect {
	out := Rect{
		Lo: Point{r.Lo.X + d, r.Lo.Y + d},
		Hi: Point{r.Hi.X - d, r.Hi.Y - d},
	}
	if out.Hi.X < out.Lo.X || out.Hi.Y < out.Lo.Y {
		c := r.Center()
		return Rect{Lo: c, Hi: c}
	}
	return out
}

// Translate returns r moved by p.
func (r Rect) Translate(p Point) Rect {
	return Rect{Lo: r.Lo.Add(p), Hi: r.Hi.Add(p)}
}

func (r Rect) String() string {
	return fmt.Sprintf("[%s %s]", r.Lo, r.Hi)
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// HPWL returns the half-perimeter wirelength of the bounding box of pts,
// the standard placement wirelength estimate. It returns 0 for fewer than
// two points.
func HPWL(pts []Point) int64 {
	if len(pts) < 2 {
		return 0
	}
	minX, maxX := pts[0].X, pts[0].X
	minY, maxY := pts[0].Y, pts[0].Y
	for _, p := range pts[1:] {
		if p.X < minX {
			minX = p.X
		}
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	return (maxX - minX) + (maxY - minY)
}
