package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := Pt(3, 4)
	q := Pt(-1, 2)
	if got := p.Add(q); got != Pt(2, 6) {
		t.Errorf("Add = %v, want (2,6)", got)
	}
	if got := p.Sub(q); got != Pt(4, 2) {
		t.Errorf("Sub = %v, want (4,2)", got)
	}
	if got := p.ManhattanDist(q); got != 6 {
		t.Errorf("ManhattanDist = %d, want 6", got)
	}
	if got := p.ManhattanDist(p); got != 0 {
		t.Errorf("self distance = %d, want 0", got)
	}
}

func TestRectNormalization(t *testing.T) {
	r := R(10, 20, 0, 5)
	if r.Lo != Pt(0, 5) || r.Hi != Pt(10, 20) {
		t.Fatalf("R did not normalize corners: %v", r)
	}
	if r.W() != 10 || r.H() != 15 || r.Area() != 150 {
		t.Errorf("W/H/Area = %d/%d/%d, want 10/15/150", r.W(), r.H(), r.Area())
	}
}

func TestRectEmpty(t *testing.T) {
	if !R(0, 0, 0, 10).Empty() {
		t.Error("zero-width rect should be empty")
	}
	if R(0, 0, 1, 1).Empty() {
		t.Error("unit rect should not be empty")
	}
	if R(0, 0, 0, 10).Area() != 0 {
		t.Error("empty rect area should be 0")
	}
}

func TestRectContains(t *testing.T) {
	r := R(0, 0, 10, 10)
	cases := []struct {
		p    Point
		want bool
	}{
		{Pt(0, 0), true},
		{Pt(9, 9), true},
		{Pt(10, 10), false}, // Hi is exclusive
		{Pt(5, 10), false},
		{Pt(-1, 5), false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRectIntersectUnion(t *testing.T) {
	a := R(0, 0, 10, 10)
	b := R(5, 5, 15, 15)
	got := a.Intersect(b)
	if got != R(5, 5, 10, 10) {
		t.Errorf("Intersect = %v, want [5,5,10,10]", got)
	}
	if !a.Overlaps(b) {
		t.Error("a should overlap b")
	}
	c := R(20, 20, 30, 30)
	if a.Overlaps(c) {
		t.Error("disjoint rects must not overlap")
	}
	if got := a.Union(b); got != R(0, 0, 15, 15) {
		t.Errorf("Union = %v, want [0,0,15,15]", got)
	}
	if got := a.Union(Rect{}); got != a {
		t.Errorf("Union with empty = %v, want %v", got, a)
	}
}

func TestRectInset(t *testing.T) {
	r := R(0, 0, 10, 10)
	if got := r.Inset(2); got != R(2, 2, 8, 8) {
		t.Errorf("Inset(2) = %v", got)
	}
	if got := r.Inset(-2); got != R(-2, -2, 12, 12) {
		t.Errorf("Inset(-2) = %v", got)
	}
	// Over-inset collapses to the center rather than inverting.
	if got := r.Inset(6); !got.Empty() {
		t.Errorf("over-inset should be empty, got %v", got)
	}
}

func TestRectTranslate(t *testing.T) {
	r := R(0, 0, 4, 4).Translate(Pt(10, 20))
	if r != R(10, 20, 14, 24) {
		t.Errorf("Translate = %v", r)
	}
}

func TestHPWL(t *testing.T) {
	if got := HPWL(nil); got != 0 {
		t.Errorf("HPWL(nil) = %d", got)
	}
	if got := HPWL([]Point{Pt(3, 3)}); got != 0 {
		t.Errorf("HPWL(single) = %d", got)
	}
	pts := []Point{Pt(0, 0), Pt(10, 5), Pt(3, 8)}
	if got := HPWL(pts); got != 18 {
		t.Errorf("HPWL = %d, want 18", got)
	}
}

func TestIntersectionPropertySubset(t *testing.T) {
	// The intersection of two rectangles is contained in both.
	f := func(x0, y0, x1, y1, x2, y2, x3, y3 int16) bool {
		a := R(int64(x0), int64(y0), int64(x1), int64(y1))
		b := R(int64(x2), int64(y2), int64(x3), int64(y3))
		in := a.Intersect(b)
		return a.ContainsRect(in) && b.ContainsRect(in)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnionPropertySuperset(t *testing.T) {
	f := func(x0, y0, x1, y1, x2, y2, x3, y3 int16) bool {
		a := R(int64(x0), int64(y0), int64(x1), int64(y1))
		b := R(int64(x2), int64(y2), int64(x3), int64(y3))
		u := a.Union(b)
		return u.ContainsRect(a) && u.ContainsRect(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestManhattanTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a, b, c := Pt(int64(ax), int64(ay)), Pt(int64(bx), int64(by)), Pt(int64(cx), int64(cy))
		return a.ManhattanDist(c) <= a.ManhattanDist(b)+b.ManhattanDist(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGridBasics(t *testing.T) {
	g := NewGrid(R(0, 0, 100, 50), 10)
	if g.NX != 10 || g.NY != 5 {
		t.Fatalf("grid dims = %dx%d, want 10x5", g.NX, g.NY)
	}
	g.Set(3, 2, 7.5)
	if got := g.At(3, 2); got != 7.5 {
		t.Errorf("At = %v", got)
	}
	g.Add(3, 2, 0.5)
	if got := g.At(3, 2); got != 8 {
		t.Errorf("after Add, At = %v", got)
	}
	ix, iy := g.CellOf(Pt(35, 27))
	if ix != 3 || iy != 2 {
		t.Errorf("CellOf = (%d,%d), want (3,2)", ix, iy)
	}
	// Clamping.
	ix, iy = g.CellOf(Pt(1000, -5))
	if ix != 9 || iy != 0 {
		t.Errorf("clamped CellOf = (%d,%d), want (9,0)", ix, iy)
	}
}

func TestGridRaggedEdge(t *testing.T) {
	// 95 wide at pitch 10 -> 10 cells, last cell clipped to width 5.
	g := NewGrid(R(0, 0, 95, 10), 10)
	if g.NX != 10 {
		t.Fatalf("NX = %d, want 10", g.NX)
	}
	last := g.CellRect(9, 0)
	if last.W() != 5 {
		t.Errorf("last cell width = %d, want 5", last.W())
	}
}

func TestGridAddRectConserves(t *testing.T) {
	g := NewGrid(R(0, 0, 100, 100), 10)
	g.AddRect(R(5, 5, 45, 35), 12.0)
	if diff := math.Abs(g.Sum() - 12.0); diff > 1e-9 {
		t.Errorf("AddRect total = %v, want 12 (diff %v)", g.Sum(), diff)
	}
}

func TestGridAddRectPartiallyOutside(t *testing.T) {
	g := NewGrid(R(0, 0, 100, 100), 10)
	// Half the rect hangs off the left edge; only half the mass lands.
	g.AddRect(R(-20, 0, 20, 10), 10.0)
	if diff := math.Abs(g.Sum() - 5.0); diff > 1e-9 {
		t.Errorf("clipped AddRect total = %v, want 5", g.Sum())
	}
}

func TestGridAddRectConservationProperty(t *testing.T) {
	g := NewGrid(R(0, 0, 1000, 1000), 37) // deliberately non-divisible pitch
	f := func(x0, y0, w, h uint8, v uint8) bool {
		r := R(int64(x0), int64(y0), int64(x0)+int64(w)+1, int64(y0)+int64(h)+1)
		before := g.Sum()
		g.AddRect(r, float64(v))
		after := g.Sum()
		// Rect is fully inside the region (max 256+256 < 1000).
		return math.Abs((after-before)-float64(v)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGridCloneIndependent(t *testing.T) {
	g := NewGrid(R(0, 0, 30, 30), 10)
	g.Set(1, 1, 5)
	c := g.Clone()
	c.Set(1, 1, 9)
	if g.At(1, 1) != 5 {
		t.Error("clone mutated the original")
	}
}

func TestGridMaxScale(t *testing.T) {
	g := NewGrid(R(0, 0, 30, 30), 10)
	g.Set(0, 0, 2)
	g.Set(2, 2, 6)
	if g.Max() != 6 {
		t.Errorf("Max = %v", g.Max())
	}
	g.Scale(0.5)
	if g.Max() != 3 || g.At(0, 0) != 1 {
		t.Errorf("after Scale: max=%v at(0,0)=%v", g.Max(), g.At(0, 0))
	}
}

func TestGridPanicsOutOfBounds(t *testing.T) {
	g := NewGrid(R(0, 0, 30, 30), 10)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-bounds access")
		}
	}()
	g.At(5, 5)
}
