// Package gds implements a GDSII stream-format writer and a minimal reader,
// used as the final output of the RTL-to-GDS flow. It supports the record
// set needed for placed-and-routed layout export: HEADER, BGNLIB, LIBNAME,
// UNITS, BGNSTR, STRNAME, BOUNDARY, PATH, LAYER, DATATYPE, WIDTH, XY,
// ENDEL, ENDSTR, ENDLIB. Coordinates are database units (1 nm).
package gds

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"m3d/internal/geom"
)

// GDSII record types.
const (
	recHEADER   = 0x00
	recBGNLIB   = 0x01
	recLIBNAME  = 0x02
	recUNITS    = 0x03
	recENDLIB   = 0x04
	recBGNSTR   = 0x05
	recSTRNAME  = 0x06
	recENDSTR   = 0x07
	recBOUNDARY = 0x08
	recPATH     = 0x09
	recLAYER    = 0x0d
	recDATATYPE = 0x0e
	recWIDTH    = 0x0f
	recXY       = 0x10
	recENDEL    = 0x11
)

// GDSII data types.
const (
	dtNone   = 0x00
	dtInt16  = 0x02
	dtInt32  = 0x03
	dtReal64 = 0x05
	dtASCII  = 0x06
)

// Element is a drawable layout element.
type Element interface {
	encode(w *recordWriter) error
}

// Boundary is a filled polygon on a layer. XY is the open outline; the
// writer closes it (GDSII repeats the first point).
type Boundary struct {
	Layer, Datatype int16
	XY              []geom.Point
}

// RectBoundary builds a Boundary from a rectangle.
func RectBoundary(layer, datatype int16, r geom.Rect) *Boundary {
	return &Boundary{
		Layer: layer, Datatype: datatype,
		XY: []geom.Point{
			r.Lo, {X: r.Hi.X, Y: r.Lo.Y}, r.Hi, {X: r.Lo.X, Y: r.Hi.Y},
		},
	}
}

// Path is a wire centerline with a width on a layer.
type Path struct {
	Layer, Datatype int16
	Width           int32
	XY              []geom.Point
}

// Struct is a GDS structure (a named cell).
type Struct struct {
	Name     string
	Elements []Element
}

// Library is a GDS library: the top-level container of the stream file.
type Library struct {
	Name string
	// UserUnitPerDBU is the user unit per database unit (default 1e-3:
	// 1 DBU = 0.001 µm). MetersPerDBU is the physical size of one database
	// unit (default 1e-9: 1 nm).
	UserUnitPerDBU float64
	MetersPerDBU   float64
	Structs        []*Struct
}

// NewLibrary creates a library with nm database units.
func NewLibrary(name string) *Library {
	return &Library{Name: name, UserUnitPerDBU: 1e-3, MetersPerDBU: 1e-9}
}

// AddStruct appends and returns a new named structure.
func (l *Library) AddStruct(name string) *Struct {
	s := &Struct{Name: name}
	l.Structs = append(l.Structs, s)
	return s
}

// recordWriter emits GDS records.
type recordWriter struct {
	w   *bufio.Writer
	err error
}

func (rw *recordWriter) record(recType, dataType byte, payload []byte) {
	if rw.err != nil {
		return
	}
	total := 4 + len(payload)
	if total > 0xFFFF {
		rw.err = fmt.Errorf("gds: record 0x%02x payload too large (%d bytes)", recType, len(payload))
		return
	}
	var hdr [4]byte
	binary.BigEndian.PutUint16(hdr[0:2], uint16(total))
	hdr[2] = recType
	hdr[3] = dataType
	if _, err := rw.w.Write(hdr[:]); err != nil {
		rw.err = err
		return
	}
	if _, err := rw.w.Write(payload); err != nil {
		rw.err = err
	}
}

func (rw *recordWriter) int16s(recType byte, vals ...int16) {
	buf := make([]byte, 2*len(vals))
	for i, v := range vals {
		binary.BigEndian.PutUint16(buf[2*i:], uint16(v))
	}
	rw.record(recType, dtInt16, buf)
}

func (rw *recordWriter) int32s(recType byte, vals ...int32) {
	buf := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.BigEndian.PutUint32(buf[4*i:], uint32(v))
	}
	rw.record(recType, dtInt32, buf)
}

func (rw *recordWriter) ascii(recType byte, s string) {
	b := []byte(s)
	if len(b)%2 == 1 {
		b = append(b, 0) // GDS pads strings to even length
	}
	rw.record(recType, dtASCII, b)
}

func (rw *recordWriter) reals(recType byte, vals ...float64) {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.BigEndian.PutUint64(buf[8*i:], float64ToGDSReal(v))
	}
	rw.record(recType, dtReal64, buf)
}

// float64ToGDSReal converts to the GDSII 8-byte excess-64 base-16 real.
func float64ToGDSReal(v float64) uint64 {
	if v == 0 {
		return 0
	}
	var sign uint64
	if v < 0 {
		sign = 1 << 63
		v = -v
	}
	exp := 0
	for v >= 1 {
		v /= 16
		exp++
	}
	for v < 1.0/16 {
		v *= 16
		exp--
	}
	// v ∈ [1/16, 1); mantissa is 56 bits.
	mant := uint64(v * math.Pow(2, 56))
	return sign | uint64(exp+64)<<56 | mant&((1<<56)-1)
}

// gdsRealToFloat64 converts back (for the reader).
func gdsRealToFloat64(bits uint64) float64 {
	if bits == 0 {
		return 0
	}
	sign := 1.0
	if bits&(1<<63) != 0 {
		sign = -1
	}
	exp := int((bits>>56)&0x7F) - 64
	mant := float64(bits&((1<<56)-1)) / math.Pow(2, 56)
	return sign * mant * math.Pow(16, float64(exp))
}

func xyPayload(pts []geom.Point, closeLoop bool) ([]int32, error) {
	out := make([]int32, 0, 2*(len(pts)+1))
	add := func(p geom.Point) error {
		if p.X < math.MinInt32 || p.X > math.MaxInt32 || p.Y < math.MinInt32 || p.Y > math.MaxInt32 {
			return fmt.Errorf("gds: coordinate %v exceeds 32-bit range", p)
		}
		out = append(out, int32(p.X), int32(p.Y))
		return nil
	}
	for _, p := range pts {
		if err := add(p); err != nil {
			return nil, err
		}
	}
	if closeLoop && len(pts) > 0 {
		if err := add(pts[0]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (b *Boundary) encode(rw *recordWriter) error {
	if len(b.XY) < 3 {
		return fmt.Errorf("gds: boundary needs at least 3 points, got %d", len(b.XY))
	}
	rw.record(recBOUNDARY, dtNone, nil)
	rw.int16s(recLAYER, b.Layer)
	rw.int16s(recDATATYPE, b.Datatype)
	xy, err := xyPayload(b.XY, true)
	if err != nil {
		return err
	}
	rw.int32s(recXY, xy...)
	rw.record(recENDEL, dtNone, nil)
	return rw.err
}

func (p *Path) encode(rw *recordWriter) error {
	if len(p.XY) < 2 {
		return fmt.Errorf("gds: path needs at least 2 points, got %d", len(p.XY))
	}
	rw.record(recPATH, dtNone, nil)
	rw.int16s(recLAYER, p.Layer)
	rw.int16s(recDATATYPE, p.Datatype)
	rw.int32s(recWIDTH, p.Width)
	xy, err := xyPayload(p.XY, false)
	if err != nil {
		return err
	}
	rw.int32s(recXY, xy...)
	rw.record(recENDEL, dtNone, nil)
	return rw.err
}

// timestamp is the fixed modification time stamped into BGNLIB/BGNSTR
// (deterministic output).
var timestamp = [12]int16{2023, 4, 17, 0, 0, 0, 2023, 4, 17, 0, 0, 0}

// Encode writes the library as a GDSII stream.
func (l *Library) Encode(w io.Writer) error {
	if l.Name == "" {
		return fmt.Errorf("gds: library needs a name")
	}
	rw := &recordWriter{w: bufio.NewWriter(w)}
	rw.int16s(recHEADER, 600) // stream version 6
	rw.int16s(recBGNLIB, timestamp[:]...)
	rw.ascii(recLIBNAME, l.Name)
	rw.reals(recUNITS, l.UserUnitPerDBU, l.MetersPerDBU)
	for _, s := range l.Structs {
		if s.Name == "" {
			return fmt.Errorf("gds: structure needs a name")
		}
		rw.int16s(recBGNSTR, timestamp[:]...)
		rw.ascii(recSTRNAME, s.Name)
		for _, e := range s.Elements {
			if err := e.encode(rw); err != nil {
				return err
			}
		}
		rw.record(recENDSTR, dtNone, nil)
	}
	rw.record(recENDLIB, dtNone, nil)
	if rw.err != nil {
		return rw.err
	}
	return rw.w.Flush()
}
