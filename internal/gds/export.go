package gds

import (
	"fmt"

	"m3d/internal/geom"
	"m3d/internal/netlist"
	"m3d/internal/route"
	"m3d/internal/tech"
)

// dieOutlineLayer is the GDS layer for the die boundary.
const dieOutlineLayer = 0

// FromDesign exports a placed-and-routed design to a GDS library: the die
// outline, every instance as a boundary on its tier's device layer, and
// (when routes are given) every routed segment as a path on its metal
// layer. This is the flow's final "GDS" deliverable (Fig. 4b).
func FromDesign(p *tech.PDK, nl *netlist.Netlist, die geom.Rect, routes *route.Result) (*Library, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("gds: invalid PDK: %w", err)
	}
	lib := NewLibrary(nl.Name)
	top := lib.AddStruct("TOP")
	top.Elements = append(top.Elements, RectBoundary(dieOutlineLayer, 0, die))

	deviceLayer := func(t tech.Tier) int16 {
		for _, l := range p.Stack {
			if l.Kind == tech.LayerDevice && l.Tier == t {
				return l.GDSLayer
			}
		}
		return dieOutlineLayer
	}

	for _, inst := range nl.Instances {
		b := inst.Bounds(p)
		if b.Empty() {
			continue
		}
		layer := deviceLayer(inst.Tier)
		dt := int16(0)
		if inst.IsMacro() {
			dt = 1 // macros distinguishable by datatype
		}
		top.Elements = append(top.Elements, RectBoundary(layer, dt, b))
	}

	if routes != nil {
		metals := p.RoutingLayers()
		// Iterate nets in netlist order, not map order: the stream's
		// element order (and therefore the GDS bytes) must be a pure
		// function of the design.
		for _, n := range nl.Nets {
			nr, ok := routes.Routes[n]
			if !ok {
				continue
			}
			for _, s := range nr.Segs {
				if s.A == s.B {
					continue // via; omitted from stream for size
				}
				L := metals[s.LayerIdx]
				top.Elements = append(top.Elements, &Path{
					Layer: L.GDSLayer,
					Width: int32(L.Pitch / 2),
					XY:    []geom.Point{s.A, s.B},
				})
			}
		}
	}
	return lib, nil
}
