package gds

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"m3d/internal/cell"
	"m3d/internal/geom"
	"m3d/internal/netlist"
	"m3d/internal/route"
	"m3d/internal/tech"
)

// TestFromDesignRouteStreamDeterministic pins the route-stream ordering:
// the Routes table is a Go map, so the export must iterate nets in
// netlist order for the GDS bytes to be a pure function of the design.
// With map-order iteration this fails with overwhelming probability at
// 24 nets.
func TestFromDesignRouteStreamDeterministic(t *testing.T) {
	p := tech.Default130()
	nl := netlist.New("chip")
	metals := len(p.RoutingLayers())
	res := &route.Result{Routes: map[*netlist.Net]*route.NetRoute{}}
	for i := 0; i < 24; i++ {
		n := nl.AddNet("n", 0.1)
		res.Routes[n] = &route.NetRoute{Net: n, Segs: []route.Seg{{
			LayerIdx: i % metals,
			A:        geom.Pt(int64(i)*1000, 0),
			B:        geom.Pt(int64(i)*1000, 5000),
		}}}
	}
	die := geom.R(0, 0, 500_000, 500_000)
	encode := func() []byte {
		g, err := FromDesign(p, nl, die, res)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := g.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first := encode()
	for i := 0; i < 5; i++ {
		if !bytes.Equal(encode(), first) {
			t.Fatal("GDS route stream not byte-deterministic across exports")
		}
	}
}

func TestGDSRealRoundTrip(t *testing.T) {
	vals := []float64{0, 1, -1, 0.001, 1e-9, 123456.789, -0.0625, 1e-3}
	for _, v := range vals {
		got := gdsRealToFloat64(float64ToGDSReal(v))
		if v == 0 {
			if got != 0 {
				t.Errorf("0 round trip = %g", got)
			}
			continue
		}
		if rel := math.Abs(got-v) / math.Abs(v); rel > 1e-12 {
			t.Errorf("real %g round-tripped to %g (rel err %g)", v, got, rel)
		}
	}
}

func TestGDSRealRoundTripProperty(t *testing.T) {
	f := func(mant int32, scale uint8) bool {
		v := float64(mant) * math.Pow(10, float64(int(scale)%24-12))
		got := gdsRealToFloat64(float64ToGDSReal(v))
		if v == 0 {
			return got == 0
		}
		return math.Abs(got-v)/math.Abs(v) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	lib := NewLibrary("testlib")
	s := lib.AddStruct("TOP")
	s.Elements = append(s.Elements,
		RectBoundary(11, 0, geom.R(0, 0, 1000, 2000)),
		&Boundary{Layer: 21, Datatype: 1, XY: []geom.Point{
			geom.Pt(0, 0), geom.Pt(500, 0), geom.Pt(250, 400),
		}},
		&Path{Layer: 13, Width: 205, XY: []geom.Point{geom.Pt(0, 0), geom.Pt(9000, 0)}},
	)
	var buf bytes.Buffer
	if err := lib.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	// Stream must start with a HEADER record of version 600.
	b := buf.Bytes()
	if b[2] != recHEADER || b[4] != 0x02 || b[5] != 0x58 {
		t.Errorf("bad header bytes: % x", b[:6])
	}

	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "testlib" {
		t.Errorf("library name = %q", got.Name)
	}
	if math.Abs(got.MetersPerDBU-1e-9)/1e-9 > 1e-12 {
		t.Errorf("meters per DBU = %g", got.MetersPerDBU)
	}
	if len(got.Structs) != 1 || got.Structs[0].Name != "TOP" {
		t.Fatalf("structs wrong: %+v", got.Structs)
	}
	els := got.Structs[0].Elements
	if len(els) != 3 {
		t.Fatalf("elements = %d, want 3", len(els))
	}
	rb, ok := els[0].(*Boundary)
	if !ok || rb.Layer != 11 || len(rb.XY) != 4 {
		t.Errorf("first element wrong: %+v", els[0])
	}
	tri, ok := els[1].(*Boundary)
	if !ok || tri.Layer != 21 || tri.Datatype != 1 || len(tri.XY) != 3 {
		t.Errorf("triangle wrong: %+v", els[1])
	}
	path, ok := els[2].(*Path)
	if !ok || path.Layer != 13 || path.Width != 205 || len(path.XY) != 2 {
		t.Errorf("path wrong: %+v", els[2])
	}
}

func TestEncodeValidation(t *testing.T) {
	lib := &Library{} // no name
	var buf bytes.Buffer
	if err := lib.Encode(&buf); err == nil {
		t.Error("unnamed library should fail")
	}
	lib = NewLibrary("x")
	s := lib.AddStruct("s")
	s.Elements = append(s.Elements, &Boundary{Layer: 1, XY: []geom.Point{geom.Pt(0, 0)}})
	if err := lib.Encode(&buf); err == nil {
		t.Error("degenerate boundary should fail")
	}
	lib2 := NewLibrary("y")
	s2 := lib2.AddStruct("s")
	s2.Elements = append(s2.Elements, &Path{Layer: 1, XY: []geom.Point{geom.Pt(0, 0)}})
	if err := lib2.Encode(&buf); err == nil {
		t.Error("one-point path should fail")
	}
	lib3 := NewLibrary("z")
	s3 := lib3.AddStruct("s")
	s3.Elements = append(s3.Elements, RectBoundary(1, 0, geom.R(0, 0, int64(math.MaxInt32)+10, 5)))
	if err := lib3.Encode(&buf); err == nil {
		t.Error("out-of-range coordinate should fail")
	}
}

func TestDeterministicOutput(t *testing.T) {
	build := func() []byte {
		lib := NewLibrary("det")
		s := lib.AddStruct("TOP")
		s.Elements = append(s.Elements, RectBoundary(5, 0, geom.R(1, 2, 3, 4)))
		var buf bytes.Buffer
		if err := lib.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(build(), build()) {
		t.Error("GDS output not byte-deterministic")
	}
}

func TestFromDesign(t *testing.T) {
	p := tech.Default130()
	lib, err := cell.NewLibrary(p, tech.TierSiCMOS)
	if err != nil {
		t.Fatal(err)
	}
	nl := netlist.New("chip")
	inv := nl.AddCell("i", lib.MustPick(cell.Inv, 1))
	inv.Pos = geom.Pt(1000, 1000)
	m := &netlist.MacroRef{Kind: "rram", Width: 100_000, Height: 100_000}
	bank := nl.AddMacro("bank", m, tech.TierRRAM)
	bank.Pos = geom.Pt(200_000, 0)

	die := geom.R(0, 0, 500_000, 500_000)
	g, err := FromDesign(p, nl, die, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// die + cell + macro = 3 boundaries.
	if len(back.Structs[0].Elements) != 3 {
		t.Fatalf("elements = %d, want 3", len(back.Structs[0].Elements))
	}
	// The macro must be on the RRAM device layer with datatype 1.
	found := false
	for _, e := range back.Structs[0].Elements {
		if b, ok := e.(*Boundary); ok && b.Layer == 21 && b.Datatype == 1 {
			found = true
		}
	}
	if !found {
		t.Error("macro boundary not on RRAM layer / datatype 1")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream should fail")
	}
	// Truncated record.
	if _, err := Decode(bytes.NewReader([]byte{0x00, 0x08, recHEADER, dtInt16, 0x02})); err == nil {
		t.Error("truncated record should fail")
	}
	// Record length < 4.
	if _, err := Decode(bytes.NewReader([]byte{0x00, 0x02, 0, 0})); err == nil {
		t.Error("undersized record should fail")
	}
}

func TestDecodeRobustAgainstGarbage(t *testing.T) {
	// The reader must reject arbitrary byte soup with errors, never panic.
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 200; i++ {
		n := rng.Intn(512)
		buf := make([]byte, n)
		rng.Read(buf)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Decode panicked on %d random bytes: %v", n, r)
				}
			}()
			lib, err := Decode(bytes.NewReader(buf))
			// Either an error or a (vacuously) parsed library is fine; a
			// panic is not.
			_ = lib
			_ = err
		}()
	}
}

func TestDecodeTruncatedStreams(t *testing.T) {
	// Truncate a valid stream at every byte offset: each prefix must fail
	// cleanly (except the full stream).
	lib := NewLibrary("trunc")
	s := lib.AddStruct("TOP")
	s.Elements = append(s.Elements, RectBoundary(1, 0, geom.R(0, 0, 10, 10)))
	var full bytes.Buffer
	if err := lib.Encode(&full); err != nil {
		t.Fatal(err)
	}
	data := full.Bytes()
	for cut := 0; cut < len(data); cut++ {
		if _, err := Decode(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d of %d decoded without error", cut, len(data))
		}
	}
	if _, err := Decode(bytes.NewReader(data)); err != nil {
		t.Fatalf("full stream failed: %v", err)
	}
}
