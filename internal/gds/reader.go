package gds

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strings"

	"m3d/internal/geom"
)

// Decode reads a GDSII stream back into a Library. It understands exactly
// the records Encode produces; unknown records are skipped. Primarily used
// for round-trip verification and lightweight inspection.
func Decode(r io.Reader) (*Library, error) {
	br := bufio.NewReader(r)
	lib := &Library{}
	var cur *Struct
	var curBoundary *Boundary
	var curPath *Path

	for {
		var hdr [4]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return nil, fmt.Errorf("gds: stream ended without ENDLIB")
			}
			return nil, err
		}
		length := int(binary.BigEndian.Uint16(hdr[0:2]))
		if length < 4 {
			return nil, fmt.Errorf("gds: record length %d too small", length)
		}
		recType := hdr[2]
		payload := make([]byte, length-4)
		if _, err := io.ReadFull(br, payload); err != nil {
			return nil, fmt.Errorf("gds: truncated record 0x%02x: %w", recType, err)
		}

		switch recType {
		case recENDLIB:
			return lib, nil
		case recLIBNAME:
			lib.Name = trimGDSString(payload)
		case recUNITS:
			if len(payload) >= 16 {
				lib.UserUnitPerDBU = gdsRealToFloat64(binary.BigEndian.Uint64(payload[0:8]))
				lib.MetersPerDBU = gdsRealToFloat64(binary.BigEndian.Uint64(payload[8:16]))
			}
		case recBGNSTR:
			cur = &Struct{}
			lib.Structs = append(lib.Structs, cur)
		case recSTRNAME:
			if cur == nil {
				return nil, fmt.Errorf("gds: STRNAME outside structure")
			}
			cur.Name = trimGDSString(payload)
		case recBOUNDARY:
			curBoundary = &Boundary{}
		case recPATH:
			curPath = &Path{}
		case recLAYER:
			v := int16(binary.BigEndian.Uint16(payload))
			if curBoundary != nil {
				curBoundary.Layer = v
			} else if curPath != nil {
				curPath.Layer = v
			}
		case recDATATYPE:
			v := int16(binary.BigEndian.Uint16(payload))
			if curBoundary != nil {
				curBoundary.Datatype = v
			} else if curPath != nil {
				curPath.Datatype = v
			}
		case recWIDTH:
			if curPath != nil && len(payload) >= 4 {
				curPath.Width = int32(binary.BigEndian.Uint32(payload))
			}
		case recXY:
			pts := make([]geom.Point, 0, len(payload)/8)
			for i := 0; i+8 <= len(payload); i += 8 {
				x := int32(binary.BigEndian.Uint32(payload[i:]))
				y := int32(binary.BigEndian.Uint32(payload[i+4:]))
				pts = append(pts, geom.Pt(int64(x), int64(y)))
			}
			if curBoundary != nil {
				// Strip the closing point the writer added.
				if len(pts) > 1 && pts[0] == pts[len(pts)-1] {
					pts = pts[:len(pts)-1]
				}
				curBoundary.XY = pts
			} else if curPath != nil {
				curPath.XY = pts
			}
		case recENDEL:
			if cur == nil {
				return nil, fmt.Errorf("gds: element outside structure")
			}
			if curBoundary != nil {
				cur.Elements = append(cur.Elements, curBoundary)
				curBoundary = nil
			}
			if curPath != nil {
				cur.Elements = append(cur.Elements, curPath)
				curPath = nil
			}
		case recENDSTR:
			cur = nil
		}
	}
}

func trimGDSString(b []byte) string {
	return strings.TrimRight(string(b), "\x00")
}
