// Package dse is the adaptive multi-objective design-space explorer: a
// Pareto search over the combined Case 1 × Case 3 design space of the
// paper — BEOL access-FET width relaxation δ, interleaved compute+memory
// tier pairs Y, and memory bandwidth scale — ranking designs by four
// objectives: speedup, EDP benefit, thermal headroom (Eq. 17) and chip
// footprint. It replaces exhaustive grids: instead of evaluating every
// lattice cell it seeds a coarse sample, keeps a Pareto archive with
// dominated-region pruning, and refines on a halving ε-grid around the
// non-dominated points until the frontier closes under its stride-1
// neighbourhood, typically issuing a small fraction of the brute-force
// grid's model evaluations (see EXPERIMENTS.md).
//
// Determinism contract (the route/parallel.go discipline): candidate
// batches are generated single-threaded in canonical lattice order —
// seeded random exploration included — evaluated on the exec worker pool
// (results land at their input index), and committed to the archive
// serially in that order. Every flushed Update and the final Result are
// therefore deep-equal at any worker width. Point evaluations memoize
// through an exec.Cache (Options.Cache) so repeated requests — and the
// brute-force comparison — share work without affecting results.
package dse

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"m3d/internal/analytic"
	"m3d/internal/arch"
	"m3d/internal/core"
	"m3d/internal/errs"
	"m3d/internal/exec"
	"m3d/internal/obs"
	"m3d/internal/tech"
	"m3d/internal/thermal"
	"m3d/internal/vary"
	"m3d/internal/workload"
)

// maxGridCells bounds the lattice of one exploration (mirrors the serve
// tier's sweep-point bound).
const maxGridCells = 65536

// maxAxisSteps bounds one axis.
const maxAxisSteps = 512

// maxTierPairs bounds the Case 3 stack depth (far above the thermally
// feasible range).
const maxTierPairs = 64

// Axis is a uniform float axis: Steps values from Min to Max inclusive
// (Steps == 1 collapses to Min).
type Axis struct {
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Steps int     `json:"steps"`
}

// Value returns lattice value i ∈ [0, Steps).
func (a Axis) Value(i int) float64 {
	if a.Steps <= 1 {
		return a.Min
	}
	return a.Min + (a.Max-a.Min)*float64(i)/float64(a.Steps-1)
}

// IntAxis is a unit-stride integer axis, Min..Max inclusive.
type IntAxis struct {
	Min int `json:"min"`
	Max int `json:"max"`
}

// Steps reports the number of lattice values.
func (a IntAxis) Steps() int { return a.Max - a.Min + 1 }

// Value returns lattice value i ∈ [0, Steps()).
func (a IntAxis) Value(i int) int { return a.Min + i }

// Space is the boxed design space the explorer samples. The zero value
// of any axis selects its default (DefaultSpace); PerTierPowerW ≤ 0
// selects 2 W per pair.
type Space struct {
	// Deltas is the Case 1 BEOL FET width relaxation axis (δ ≥ 1).
	Deltas Axis `json:"deltas"`
	// TierPairs is the Case 3 interleaved pair axis (Y ≥ 1).
	TierPairs IntAxis `json:"tier_pairs"`
	// BWScales scales the M3D total memory bandwidth (> 0).
	BWScales Axis `json:"bw_scales"`
	// PerTierPowerW is the power dissipated per interleaved pair, feeding
	// the Eq. 17 thermal headroom objective.
	PerTierPowerW float64 `json:"per_tier_power_w,omitempty"`
}

// DefaultSpace is the stock exploration box: δ ∈ [1, 2.5] in 16 steps,
// Y ∈ [1, 6], bandwidth scale ∈ [1, 8] in 8 steps, 2 W per pair.
func DefaultSpace() Space {
	return Space{
		Deltas:        Axis{Min: 1, Max: 2.5, Steps: 16},
		TierPairs:     IntAxis{Min: 1, Max: 6},
		BWScales:      Axis{Min: 1, Max: 8, Steps: 8},
		PerTierPowerW: 2,
	}
}

// WithDefaults fills zero-valued axes and the per-pair power from
// DefaultSpace — the normalization Explore and BruteForce apply before
// validating.
func (s Space) WithDefaults() Space {
	def := DefaultSpace()
	if s.Deltas == (Axis{}) {
		s.Deltas = def.Deltas
	}
	if s.TierPairs == (IntAxis{}) {
		s.TierPairs = def.TierPairs
	}
	if s.BWScales == (Axis{}) {
		s.BWScales = def.BWScales
	}
	if s.PerTierPowerW <= 0 {
		s.PerTierPowerW = def.PerTierPowerW
	}
	return s
}

// Validate checks the (defaults-applied) space. Violations match
// errs.ErrBadSpec.
func (s Space) Validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("dse: %s: %w", fmt.Sprintf(format, args...), errs.ErrBadSpec)
	}
	if s.Deltas.Steps < 1 || s.Deltas.Steps > maxAxisSteps {
		return bad("delta axis steps %d outside [1, %d]", s.Deltas.Steps, maxAxisSteps)
	}
	if s.Deltas.Min < 1 || s.Deltas.Max < s.Deltas.Min {
		return bad("delta axis [%g, %g] needs 1 ≤ min ≤ max", s.Deltas.Min, s.Deltas.Max)
	}
	if s.BWScales.Steps < 1 || s.BWScales.Steps > maxAxisSteps {
		return bad("bandwidth axis steps %d outside [1, %d]", s.BWScales.Steps, maxAxisSteps)
	}
	if s.BWScales.Min <= 0 || s.BWScales.Max < s.BWScales.Min {
		return bad("bandwidth axis [%g, %g] needs 0 < min ≤ max", s.BWScales.Min, s.BWScales.Max)
	}
	if s.TierPairs.Min < 1 || s.TierPairs.Max < s.TierPairs.Min || s.TierPairs.Max > maxTierPairs {
		return bad("tier pair axis [%d, %d] needs 1 ≤ min ≤ max ≤ %d",
			s.TierPairs.Min, s.TierPairs.Max, maxTierPairs)
	}
	if g := s.GridSize(); g > maxGridCells {
		return bad("grid of %d cells exceeds the limit %d", g, maxGridCells)
	}
	return nil
}

// GridSize is the full lattice cell count — what a brute-force sweep
// would evaluate.
func (s Space) GridSize() int {
	return s.Deltas.Steps * s.TierPairs.Steps() * s.BWScales.Steps
}

// coord is one lattice cell (axis indices).
type coord struct{ d, y, b int }

func coordLess(a, b coord) bool {
	if a.d != b.d {
		return a.d < b.d
	}
	if a.y != b.y {
		return a.y < b.y
	}
	return a.b < b.b
}

// PointKey identifies one memoizable point evaluation across requests:
// the machine/workload/thermal fingerprint plus the design coordinates.
type PointKey struct {
	Sig     string
	Delta   float64
	Y       int
	BWScale float64
}

// PointCache memoizes point evaluations (exec.Cache single-flight
// semantics); a server shares one across requests and bounds it with
// Cache.Bound.
type PointCache = exec.Cache[PointKey, Point]

// Options tune one exploration.
type Options struct {
	// MaxEvals bounds the number of point evaluations this exploration
	// may issue; ≤ 0 selects GridSize()/4 (the adaptive search is
	// expected to beat a quarter of brute force).
	MaxEvals int
	// Seed drives the per-round randomized exploration samples. The same
	// seed yields the same search at any worker width.
	Seed int64
	// Explore is the number of extra seeded random lattice samples mixed
	// into the initial coarse batch (escape hatch for frontier islands
	// the stride lattice misses): 0 selects 8, negative disables.
	Explore int
	// RequireThermal drops points whose Eq. 17 temperature rise exceeds
	// the PDK budget (negative thermal headroom) from the archive.
	RequireThermal bool
	// Cache memoizes point evaluations across calls; nil uses a private
	// per-call cache.
	Cache *PointCache

	// VarySamples switches the exploration into variation-aware mode:
	// every point is additionally evaluated under this many process
	// corners drawn from the PDK's Variation parameters, the p5/p50/p95
	// EDP band lands on the Point, and EDPBenefit becomes the band's p5
	// so the Pareto search optimizes yield-constrained EDP. 0 (the
	// default) is nominal evaluation.
	VarySamples int
	// VarySeed selects the corner stream for variation-aware mode; the
	// same (Variation, VarySeed, VarySamples) reproduces every band.
	VarySeed int64
}

// Update is one streamed frontier snapshot: the current non-dominated
// set plus the number of evaluations issued so far. The final update of
// a run carries Done plus the run totals.
type Update struct {
	Round       int     `json:"round"`
	Evaluations int     `json:"evaluations"`
	Frontier    []Point `json:"frontier"`
	Done        bool    `json:"done,omitempty"`
	// GridSize and Exhausted are set on the Done update: the brute-force
	// cell count for comparison, and whether the evaluation budget ran
	// out before the frontier closed.
	GridSize  int  `json:"grid_size,omitempty"`
	Exhausted bool `json:"exhausted,omitempty"`
}

// Result is the final state of one exploration.
type Result struct {
	Frontier    []Point `json:"frontier"`
	Evaluations int     `json:"evaluations"`
	Rounds      int     `json:"rounds"`
	GridSize    int     `json:"grid_size"`
	Exhausted   bool    `json:"exhausted,omitempty"`
}

// evaluator computes points of one space against the case-study machine.
type evaluator struct {
	space  Space
	params analytic.Params
	am     analytic.AreaModel
	loads  []analytic.Load
	pdk    *tech.PDK
	sig    string
	cache  *PointCache
	evals  *obs.Counter
	hits   *obs.Counter
	misses *obs.Counter

	// Variation-aware mode (Options.VarySamples > 0): the corner
	// sampler and per-point corner count for EDP bands.
	sampler     *vary.Sampler
	varySamples int
}

// Explore runs the adaptive Pareto search over space on the case-study
// machine (the Sec. II 2D baseline and its ResNet-18 loads). onUpdate —
// when non-nil — receives one Update per round plus a final Done update,
// always from the calling goroutine, in round order. The usual exec
// options apply: WithWorkers fans point evaluations out (results are
// width-independent), WithContext cancels between batches, tracing and
// metrics attach via WithTracer/WithMetrics (counters dse.evals,
// dse.rounds, dse.memo.hits/dse.memo.misses, gauge dse.frontier.size).
func Explore(pdk *tech.PDK, space Space, opt Options, onUpdate func(Update), opts ...exec.Option) (*Result, error) {
	space = space.WithDefaults()
	if err := space.Validate(); err != nil {
		return nil, err
	}
	st := exec.Resolve(opts...)
	if st.Label == "" {
		st.Label = "dse.point"
	}
	if st.Tracer != nil {
		sp := st.Tracer.StartSpan("dse.explore",
			obs.Int("grid", space.GridSize()), obs.Int("max_evals", opt.MaxEvals))
		defer sp.End()
	}
	ev, err := newEvaluator(pdk, space, opt.Cache, st.Metrics, opt.VarySamples, opt.VarySeed)
	if err != nil {
		return nil, err
	}

	maxEvals := opt.MaxEvals
	if maxEvals <= 0 {
		maxEvals = space.GridSize() / 4
		if maxEvals < 1 {
			maxEvals = 1
		}
	}
	explore := opt.Explore
	if explore == 0 {
		explore = 8
	}
	budget := exec.NewBudget(int64(maxEvals))
	rng := rand.New(rand.NewSource(opt.Seed))
	rounds := st.Metrics.Counter("dse.rounds")
	frontierSize := st.Metrics.Gauge("dse.frontier.size")

	visited := make(map[coord]bool)
	archive := &Archive{}
	strides := initialStrides(space)
	cands := coarseSample(space, strides)
	if explore > 0 {
		cands = append(cands, randomUnvisited(space, visited, rng, explore, cands)...)
		sortCoords(cands)
	}
	issued := 0
	exhausted := false

	round := 0
	for {
		// Truncate the batch to the remaining budget (canonical order, so
		// the kept prefix is width-independent), evaluate on the pool, and
		// commit serially in candidate order.
		grant := int(budget.Take(int64(len(cands))))
		if grant < len(cands) {
			cands = cands[:grant]
			exhausted = true
		}
		for _, c := range cands {
			visited[c] = true
		}
		pts, err := exec.MapWith(st, cands, ev.eval)
		if err != nil {
			return nil, err
		}
		issued += len(cands)
		for _, p := range pts {
			if opt.RequireThermal && p.ThermalHeadroomK < 0 {
				continue
			}
			archive.Add(p)
		}
		rounds.Add(1)
		frontierSize.Set(int64(archive.Len()))
		round++
		done := exhausted
		var next []coord
		if !done {
			next, strides = nextCandidates(space, archive, strides, visited)
			done = len(next) == 0
		}
		if onUpdate != nil {
			u := Update{Round: round - 1, Evaluations: issued, Frontier: archive.Frontier(), Done: done}
			if done {
				u.GridSize = space.GridSize()
				u.Exhausted = exhausted
			}
			onUpdate(u)
		}
		if done {
			break
		}
		cands = next
	}
	return &Result{
		Frontier:    archive.Frontier(),
		Evaluations: issued,
		Rounds:      round,
		GridSize:    space.GridSize(),
		Exhausted:   exhausted,
	}, nil
}

// BruteForce evaluates every lattice cell of space and returns the exact
// non-dominated set — the oracle the adaptive search is tested against.
// Evaluations bypass the memo cache so metrics reflect true model work
// (counter dse.brute.evals).
func BruteForce(pdk *tech.PDK, space Space, opts ...exec.Option) (*Result, error) {
	space = space.WithDefaults()
	if err := space.Validate(); err != nil {
		return nil, err
	}
	st := exec.Resolve(opts...)
	if st.Label == "" {
		st.Label = "dse.brute.point"
	}
	ev, err := newEvaluator(pdk, space, nil, st.Metrics, 0, 0)
	if err != nil {
		return nil, err
	}
	ev.evals = st.Metrics.Counter("dse.brute.evals")
	ev.cache = nil

	all := make([]coord, 0, space.GridSize())
	for d := 0; d < space.Deltas.Steps; d++ {
		for y := 0; y < space.TierPairs.Steps(); y++ {
			for b := 0; b < space.BWScales.Steps; b++ {
				all = append(all, coord{d, y, b})
			}
		}
	}
	pts, err := exec.MapWith(st, all, ev.eval)
	if err != nil {
		return nil, err
	}
	archive := &Archive{}
	for _, p := range pts {
		archive.Add(p)
	}
	return &Result{
		Frontier:    archive.Frontier(),
		Evaluations: len(all),
		Rounds:      1,
		GridSize:    len(all),
	}, nil
}

func newEvaluator(pdk *tech.PDK, space Space, cache *PointCache, reg *obs.Registry, varySamples int, varySeed int64) (*evaluator, error) {
	a2d, a3d, _, err := core.CaseStudyPair(pdk)
	if err != nil {
		return nil, err
	}
	am, err := core.AreaModel(pdk, arch.MB64)
	if err != nil {
		return nil, err
	}
	loads, err := core.Loads(a2d, workload.ResNet18())
	if err != nil {
		return nil, err
	}
	params := core.Params(a2d, a3d)
	if cache == nil {
		cache = &PointCache{}
	}
	if varySamples < 0 || varySamples > vary.MaxSamples {
		return nil, fmt.Errorf("dse: variation samples %d out of range [0, %d]: %w",
			varySamples, vary.MaxSamples, errs.ErrBadSpec)
	}
	var sampler *vary.Sampler
	if varySamples > 0 {
		var err error
		if sampler, err = vary.NewSampler(pdk.Variation, varySeed); err != nil {
			return nil, err
		}
		// Every point evaluation reuses the same corners; draw them once.
		sampler.Prime(varySamples)
	}
	return &evaluator{
		space:  space,
		params: params,
		am:     am,
		loads:  loads,
		pdk:    pdk,
		// The fingerprint covers everything the point value depends on
		// besides the coordinates, so one shared cache can serve
		// different machines, powers, thermal budgets and variation
		// configurations.
		sig: fmt.Sprintf("%v|%v|n=%d|p=%g|rs=%g|rt=%g|max=%g|vs=%d|vseed=%d|var=%v",
			params, am, len(loads), space.PerTierPowerW,
			pdk.RthetaSink, pdk.RthetaPerTier, pdk.MaxTempRiseK,
			varySamples, varySeed, pdk.Variation),
		cache:       cache,
		evals:       reg.Counter("dse.evals"),
		hits:        reg.Counter("dse.memo.hits"),
		misses:      reg.Counter("dse.memo.misses"),
		sampler:     sampler,
		varySamples: varySamples,
	}, nil
}

// eval computes (or recalls) one lattice cell.
func (ev *evaluator) eval(_ context.Context, _ int, c coord) (Point, error) {
	delta := ev.space.Deltas.Value(c.d)
	y := ev.space.TierPairs.Value(c.y)
	bw := ev.space.BWScales.Value(c.b)
	compute := func() (Point, error) {
		ev.evals.Add(1)
		pr, err := analytic.CasePoint(ev.params, ev.am, ev.loads,
			analytic.DesignPoint{Delta: delta, TierPairs: y, BWScale: bw})
		if err != nil {
			return Point{}, err
		}
		powers := make([]float64, y)
		for i := range powers {
			powers[i] = ev.space.PerTierPowerW
		}
		rise := thermal.NewStack(ev.pdk, powers).TempRiseK()
		pt := Point{
			Delta:            delta,
			TierPairs:        y,
			BWScale:          bw,
			N:                pr.N,
			N2DNew:           pr.N2DNew,
			Speedup:          pr.Speedup,
			EDPBenefit:       pr.EDPBenefit,
			ThermalHeadroomK: ev.pdk.MaxTempRiseK - rise,
			FootprintMM2:     pr.Footprint / 1e12,
		}
		if ev.sampler != nil {
			band, err := vary.EDPBand(ev.params, ev.am, ev.loads,
				analytic.DesignPoint{Delta: delta, TierPairs: y, BWScale: bw},
				ev.sampler, ev.varySamples)
			if err != nil {
				return Point{}, err
			}
			pt.EDPBenefitP5, pt.EDPBenefitP50, pt.EDPBenefitP95 = band.P5, band.P50, band.P95
			// Yield-constrained objective: rank by what 95% of chips meet.
			pt.EDPBenefit = band.P5
		}
		return pt, nil
	}
	if ev.cache == nil {
		return compute()
	}
	key := PointKey{Sig: ev.sig, Delta: delta, Y: y, BWScale: bw}
	return ev.cache.DoMetered(key, ev.hits, ev.misses, compute)
}

// initialStrides picks per-axis power-of-two strides giving ~3-4 coarse
// samples per axis.
func initialStrides(space Space) [3]int {
	return [3]int{
		initialStride(space.Deltas.Steps),
		initialStride(space.TierPairs.Steps()),
		initialStride(space.BWScales.Steps),
	}
}

func initialStride(steps int) int {
	if steps <= 1 {
		return 1
	}
	want := (steps - 1 + 2) / 3 // ceil((steps-1)/3)
	s := 1
	for s < want {
		s *= 2
	}
	return s
}

// coarseSample is the round-0 candidate list: every stride-aligned cell
// plus the axis endpoints, in canonical order.
func coarseSample(space Space, strides [3]int) []coord {
	ds := axisCoords(space.Deltas.Steps, strides[0])
	ys := axisCoords(space.TierPairs.Steps(), strides[1])
	bs := axisCoords(space.BWScales.Steps, strides[2])
	out := make([]coord, 0, len(ds)*len(ys)*len(bs))
	for _, d := range ds {
		for _, y := range ys {
			for _, b := range bs {
				out = append(out, coord{d, y, b})
			}
		}
	}
	return out
}

func axisCoords(steps, stride int) []int {
	var out []int
	for i := 0; i < steps; i += stride {
		out = append(out, i)
	}
	if out[len(out)-1] != steps-1 {
		out = append(out, steps-1)
	}
	return out
}

// nextCandidates builds the following round's batch: the unvisited
// neighbourhood of the archive at the current strides, halving strides
// until it is non-empty (ε-grid refinement). An empty return means the
// frontier is closed under its stride-1 axis neighbourhood — convergence.
func nextCandidates(space Space, archive *Archive, strides [3]int, visited map[coord]bool) ([]coord, [3]int) {
	for {
		cands := neighbourhood(space, archive, strides, visited)
		if len(cands) > 0 {
			sortCoords(cands)
			return cands, strides
		}
		if strides[0] == 1 && strides[1] == 1 && strides[2] == 1 {
			return nil, strides
		}
		for i := range strides {
			if strides[i] > 1 {
				strides[i] /= 2
			}
		}
	}
}

// neighbourhood collects the unvisited axis-aligned ±stride offsets
// around every frontier point, deduplicated, unsorted. Axis moves (6
// offsets) rather than the full 26-cell box keep the refinement from
// flood-filling the lattice: frontier manifolds of the analytic model
// are axis-connected (footprint varies only with δ, headroom only with
// Y), so closure under axis moves finds the same frontier at a fraction
// of the evaluations.
func neighbourhood(space Space, archive *Archive, strides [3]int, visited map[coord]bool) []coord {
	steps := [3]int{space.Deltas.Steps, space.TierPairs.Steps(), space.BWScales.Steps}
	seen := make(map[coord]bool)
	var out []coord
	for _, p := range archive.Frontier() {
		c := coordOf(space, p)
		for _, n := range []coord{
			{c.d - strides[0], c.y, c.b}, {c.d + strides[0], c.y, c.b},
			{c.d, c.y - strides[1], c.b}, {c.d, c.y + strides[1], c.b},
			{c.d, c.y, c.b - strides[2]}, {c.d, c.y, c.b + strides[2]},
		} {
			if seen[n] || visited[n] {
				continue
			}
			if n.d < 0 || n.d >= steps[0] || n.y < 0 || n.y >= steps[1] || n.b < 0 || n.b >= steps[2] {
				continue
			}
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// randomUnvisited draws up to n seeded random lattice cells not yet
// visited and not already in batch. Draws are sequential on one rng, so
// the result is width-independent.
func randomUnvisited(space Space, visited map[coord]bool, rng *rand.Rand, n int, batch []coord) []coord {
	inBatch := make(map[coord]bool, len(batch))
	for _, c := range batch {
		inBatch[c] = true
	}
	var out []coord
	for tries := 0; tries < 8*n && len(out) < n; tries++ {
		c := coord{
			d: rng.Intn(space.Deltas.Steps),
			y: rng.Intn(space.TierPairs.Steps()),
			b: rng.Intn(space.BWScales.Steps),
		}
		if visited[c] || inBatch[c] {
			continue
		}
		inBatch[c] = true
		out = append(out, c)
	}
	return out
}

// coordOf inverts the axis value maps (values are exact functions of the
// index, so rounding recovers it).
func coordOf(space Space, p Point) coord {
	return coord{
		d: axisIndex(space.Deltas, p.Delta),
		y: p.TierPairs - space.TierPairs.Min,
		b: axisIndex(space.BWScales, p.BWScale),
	}
}

func axisIndex(a Axis, v float64) int {
	if a.Steps <= 1 || a.Max == a.Min {
		return 0
	}
	i := int((v-a.Min)/(a.Max-a.Min)*float64(a.Steps-1) + 0.5)
	if i < 0 {
		i = 0
	}
	if i >= a.Steps {
		i = a.Steps - 1
	}
	return i
}

func sortCoords(cs []coord) {
	sort.Slice(cs, func(i, j int) bool { return coordLess(cs[i], cs[j]) })
}
