package dse

import (
	"reflect"
	"testing"

	"m3d/internal/exec"
	"m3d/internal/obs"
	"m3d/internal/tech"
)

func pt(delta float64, y int, bw float64, s, edp, th, fp float64) Point {
	return Point{Delta: delta, TierPairs: y, BWScale: bw,
		Speedup: s, EDPBenefit: edp, ThermalHeadroomK: th, FootprintMM2: fp}
}

func TestDominance(t *testing.T) {
	a := pt(1, 1, 1, 2, 4, 30, 100)
	b := pt(1, 2, 1, 1, 3, 20, 120)
	c := pt(1, 3, 1, 2, 4, 30, 100) // equal objectives to a
	if !a.Dominates(b) || b.Dominates(a) {
		t.Fatal("a must strictly dominate b")
	}
	if a.Dominates(c) || !a.WeaklyDominates(c) || !c.WeaklyDominates(a) {
		t.Fatal("equal objective vectors weakly dominate both ways, strictly neither")
	}
	d := pt(1, 4, 1, 3, 2, 30, 100) // trades EDP for speedup vs a
	if a.Dominates(d) || d.Dominates(a) {
		t.Fatal("trade-off points must be mutually non-dominated")
	}
}

func TestArchivePruning(t *testing.T) {
	ar := &Archive{}
	if !ar.Add(pt(1, 1, 1, 1, 1, 10, 100)) {
		t.Fatal("first point must enter")
	}
	// Dominated candidate rejected, archive unchanged.
	if ar.Add(pt(1, 2, 1, 0.5, 0.5, 5, 200)) || ar.Len() != 1 {
		t.Fatal("dominated candidate must be rejected")
	}
	// Equal-objective candidate rejected: first committed wins.
	if ar.Add(pt(2, 1, 1, 1, 1, 10, 100)) || ar.Len() != 1 {
		t.Fatal("duplicate objective vector must be rejected")
	}
	// Dominating candidate evicts the member.
	if !ar.Add(pt(1, 3, 1, 2, 2, 20, 50)) || ar.Len() != 1 {
		t.Fatal("dominating candidate must replace the dominated member")
	}
	// Incomparable candidate coexists.
	if !ar.Add(pt(1, 4, 1, 3, 1, 20, 50)) || ar.Len() != 2 {
		t.Fatal("incomparable candidate must coexist")
	}
	f := ar.Frontier()
	for i := range f {
		for j := range f {
			if i != j && f[i].WeaklyDominates(f[j]) {
				t.Fatalf("frontier not mutually non-dominated: %+v vs %+v", f[i], f[j])
			}
		}
	}
}

func TestArchiveFrontierCanonicalOrder(t *testing.T) {
	ar := &Archive{}
	ar.Add(pt(2, 1, 1, 1, 1, 10, 100))
	ar.Add(pt(1, 2, 1, 2, 0.5, 10, 100))
	ar.Add(pt(1, 1, 1, 0.5, 2, 10, 100))
	f := ar.Frontier()
	for i := 1; i < len(f); i++ {
		if !pointLess(f[i-1], f[i]) {
			t.Fatalf("frontier out of canonical order at %d: %+v !< %+v", i, f[i-1], f[i])
		}
	}
}

func TestTopK(t *testing.T) {
	f := []Point{
		pt(1, 1, 1, 1, 5, 10, 100),
		pt(2, 1, 1, 1, 9, 10, 100),
		pt(3, 1, 1, 1, 7, 10, 100),
	}
	top := TopK(f, 2)
	if len(top) != 2 || top[0].EDPBenefit != 9 || top[1].EDPBenefit != 7 {
		t.Fatalf("TopK(2) = %+v, want EDP 9 then 7", top)
	}
	if got := TopK(f, 10); len(got) != 3 {
		t.Fatalf("TopK beyond len = %d points, want 3", len(got))
	}
	if TopK(f, 0) != nil {
		t.Fatal("TopK(0) must be nil")
	}
}

func TestSpaceValidate(t *testing.T) {
	for name, s := range map[string]Space{
		"delta<1":    {Deltas: Axis{Min: 0.5, Max: 2, Steps: 4}, TierPairs: IntAxis{Min: 1, Max: 2}, BWScales: Axis{Min: 1, Max: 2, Steps: 2}},
		"bw<=0":      {Deltas: Axis{Min: 1, Max: 2, Steps: 4}, TierPairs: IntAxis{Min: 1, Max: 2}, BWScales: Axis{Min: 0, Max: 2, Steps: 2}},
		"y<1":        {Deltas: Axis{Min: 1, Max: 2, Steps: 4}, TierPairs: IntAxis{Min: 0, Max: 2}, BWScales: Axis{Min: 1, Max: 2, Steps: 2}},
		"inverted":   {Deltas: Axis{Min: 2, Max: 1, Steps: 4}, TierPairs: IntAxis{Min: 1, Max: 2}, BWScales: Axis{Min: 1, Max: 2, Steps: 2}},
		"grid blown": {Deltas: Axis{Min: 1, Max: 2, Steps: 512}, TierPairs: IntAxis{Min: 1, Max: 64}, BWScales: Axis{Min: 1, Max: 2, Steps: 512}},
	} {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, s)
		}
	}
	if err := DefaultSpace().Validate(); err != nil {
		t.Fatalf("default space invalid: %v", err)
	}
}

// testSpace is the pinned space the determinism and coverage tests run
// on: big enough for refinement to matter, small enough to brute-force.
func testSpace() Space {
	return Space{
		Deltas:        Axis{Min: 1, Max: 2.5, Steps: 16},
		TierPairs:     IntAxis{Min: 1, Max: 6},
		BWScales:      Axis{Min: 1, Max: 8, Steps: 8},
		PerTierPowerW: 2,
	}
}

// TestExploreDeterministicAcrossWidths: same space, same seed — the full
// update stream and the final result must be deep-equal at widths 1/2/8.
func TestExploreDeterministicAcrossWidths(t *testing.T) {
	pdk := tech.Default130()
	space := testSpace()
	opt := Options{Seed: 42}
	type run struct {
		updates []Update
		res     *Result
	}
	var runs []run
	for _, w := range []int{1, 2, 8} {
		var ups []Update
		res, err := Explore(pdk, space, opt, func(u Update) { ups = append(ups, u) },
			exec.WithWorkers(w))
		if err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
		runs = append(runs, run{ups, res})
	}
	for i := 1; i < len(runs); i++ {
		if !reflect.DeepEqual(runs[0].updates, runs[i].updates) {
			t.Fatalf("update streams differ between widths 1 and %d", []int{1, 2, 8}[i])
		}
		if !reflect.DeepEqual(runs[0].res, runs[i].res) {
			t.Fatalf("results differ between widths 1 and %d", []int{1, 2, 8}[i])
		}
	}
	last := runs[0].updates[len(runs[0].updates)-1]
	if !last.Done {
		t.Fatal("final update must carry Done")
	}
	if !reflect.DeepEqual(last.Frontier, runs[0].res.Frontier) {
		t.Fatal("final update frontier must equal the result frontier")
	}
}

// coverageSpace is the pinned space of the headline acceptance check: a
// finer lattice (3072 cells) where adaptive refinement has real room to
// beat brute force.
func coverageSpace() Space {
	return Space{
		Deltas:        Axis{Min: 1, Max: 2.5, Steps: 32},
		TierPairs:     IntAxis{Min: 1, Max: 6},
		BWScales:      Axis{Min: 1, Max: 8, Steps: 16},
		PerTierPowerW: 2,
	}
}

// TestExploreCoversBruteForce is the headline acceptance check: on the
// pinned space the adaptive frontier weakly dominates every brute-force
// frontier point while issuing ≤ 25% of the grid's model evaluations
// (counted at the model, via a fresh registry and a fresh cache).
func TestExploreCoversBruteForce(t *testing.T) {
	pdk := tech.Default130()
	space := coverageSpace()
	reg := &obs.Registry{}
	res, err := Explore(pdk, space, Options{Seed: 42}, nil,
		exec.WithWorkers(4), exec.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	brute, err := BruteForce(pdk, space, exec.WithWorkers(4), exec.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	if int(reg.Counter("dse.brute.evals").Value()) != space.GridSize() {
		t.Fatalf("brute force evaluated %d cells, want the full grid %d",
			reg.Counter("dse.brute.evals").Value(), space.GridSize())
	}
	ar := &Archive{}
	for _, p := range res.Frontier {
		ar.Add(p)
	}
	if q, ok := ar.Uncovered(brute.Frontier); !ok {
		t.Fatalf("adaptive frontier misses brute-force point %+v", q)
	}
	evals := int(reg.Counter("dse.evals").Value())
	if evals == 0 {
		t.Fatal("dse.evals not recorded")
	}
	limit := space.GridSize() / 4
	if evals > limit {
		t.Fatalf("adaptive search issued %d model evaluations, budget is %d (25%% of %d)",
			evals, limit, space.GridSize())
	}
	t.Logf("adaptive: %d evals, %d rounds, frontier %d; brute: %d evals, frontier %d",
		evals, res.Rounds, len(res.Frontier), brute.Evaluations, len(brute.Frontier))
}

// TestExploreSharedCache: a second exploration against a shared cache
// recomputes nothing (dse.evals unchanged) yet returns the same result.
func TestExploreSharedCache(t *testing.T) {
	pdk := tech.Default130()
	space := testSpace()
	cache := &PointCache{}
	reg := &obs.Registry{}
	opt := Options{Seed: 42, Cache: cache}
	first, err := Explore(pdk, space, opt, nil, exec.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	cold := reg.Counter("dse.evals").Value()
	second, err := Explore(pdk, space, opt, nil, exec.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("dse.evals").Value(); got != cold {
		t.Fatalf("warm run recomputed: dse.evals %d -> %d", cold, got)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("warm run returned a different result")
	}
	// Evaluations counts submissions, not cache misses, so it is
	// cache-warmth-independent — required for byte-identical streams.
	if first.Evaluations != second.Evaluations {
		t.Fatalf("Evaluations differ with cache warmth: %d vs %d",
			first.Evaluations, second.Evaluations)
	}
}

// TestExploreBudgetExhaustion: a tiny budget ends the search early with
// Exhausted set and the evaluation count within budget.
func TestExploreBudgetExhaustion(t *testing.T) {
	pdk := tech.Default130()
	space := testSpace()
	res, err := Explore(pdk, space, Options{Seed: 1, MaxEvals: 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted {
		t.Fatal("10-eval run must report Exhausted")
	}
	if res.Evaluations > 10 {
		t.Fatalf("issued %d evaluations, budget was 10", res.Evaluations)
	}
	if len(res.Frontier) == 0 {
		t.Fatal("even an exhausted run must surface a frontier")
	}
}

// TestExploreRequireThermal: with the thermal gate on, every frontier
// point has non-negative headroom.
func TestExploreRequireThermal(t *testing.T) {
	pdk := tech.Default130()
	space := testSpace()
	space.PerTierPowerW = 8 // hot enough that deep stacks violate Eq. 17
	res, err := Explore(pdk, space, Options{Seed: 7, RequireThermal: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frontier) == 0 {
		t.Fatal("thermal-gated run returned an empty frontier")
	}
	for _, p := range res.Frontier {
		if p.ThermalHeadroomK < 0 {
			t.Fatalf("thermal-gated frontier holds infeasible point %+v", p)
		}
	}
	// Sanity: the gate actually bit — an ungated run reaches deeper stacks.
	open, err := Explore(pdk, space, Options{Seed: 7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	deepest := func(f []Point) int {
		d := 0
		for _, p := range f {
			if p.TierPairs > d {
				d = p.TierPairs
			}
		}
		return d
	}
	if deepest(open.Frontier) <= deepest(res.Frontier) {
		t.Skipf("gate did not bite at this power (open %d vs gated %d pairs)",
			deepest(open.Frontier), deepest(res.Frontier))
	}
}

func TestExploreBadSpace(t *testing.T) {
	pdk := tech.Default130()
	bad := Space{Deltas: Axis{Min: 0.2, Max: 2, Steps: 4},
		TierPairs: IntAxis{Min: 1, Max: 2}, BWScales: Axis{Min: 1, Max: 2, Steps: 2}}
	if _, err := Explore(pdk, bad, Options{}, nil); err == nil {
		t.Fatal("Explore accepted an invalid space")
	}
	if _, err := BruteForce(pdk, bad); err == nil {
		t.Fatal("BruteForce accepted an invalid space")
	}
}
