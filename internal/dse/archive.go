package dse

import "sort"

// Point is one evaluated design point with its four objectives. The
// explorer maximizes Speedup, EDPBenefit and ThermalHeadroomK and
// minimizes FootprintMM2; N and N2DNew document the geometry behind the
// objectives. The JSON shape is the /v1/dse wire format.
type Point struct {
	// Coordinates of the combined Case 1 × Case 3 design space.
	Delta     float64 `json:"delta"`
	TierPairs int     `json:"tier_pairs"`
	BWScale   float64 `json:"bw_scale"`

	// Geometry.
	N      int `json:"n"`
	N2DNew int `json:"n_2d_new"`

	// Objectives.
	Speedup          float64 `json:"speedup"`
	EDPBenefit       float64 `json:"edp_benefit"`
	ThermalHeadroomK float64 `json:"thermal_headroom_k"`
	FootprintMM2     float64 `json:"footprint_mm2"`

	// Variation band (set only when the exploration runs with
	// Options.VarySamples > 0): the p5/p50/p95 EDP benefit across
	// sampled process corners. In that mode EDPBenefit itself holds the
	// p5 — the yield-constrained objective dominance ranks by.
	EDPBenefitP5  float64 `json:"edp_p5,omitempty"`
	EDPBenefitP50 float64 `json:"edp_p50,omitempty"`
	EDPBenefitP95 float64 `json:"edp_p95,omitempty"`
}

// objectives returns the maximize-normalized objective vector (footprint
// negated so dominance is uniformly ≥).
func (p Point) objectives() [4]float64 {
	return [4]float64{p.Speedup, p.EDPBenefit, p.ThermalHeadroomK, -p.FootprintMM2}
}

// WeaklyDominates reports whether p is at least as good as q in every
// objective (equality included).
func (p Point) WeaklyDominates(q Point) bool {
	a, b := p.objectives(), q.objectives()
	for i := range a {
		if a[i] < b[i] {
			return false
		}
	}
	return true
}

// Dominates reports whether p is at least as good as q in every objective
// and strictly better in at least one.
func (p Point) Dominates(q Point) bool {
	a, b := p.objectives(), q.objectives()
	better := false
	for i := range a {
		if a[i] < b[i] {
			return false
		}
		if a[i] > b[i] {
			better = true
		}
	}
	return better
}

// Archive is a Pareto archive with dominated-region pruning: it holds the
// non-dominated subset of the points committed so far. Commit order is
// the determinism contract — a candidate weakly dominated by the current
// archive (equal objective vectors included) is rejected, so when several
// lattice cells share one objective vector the first committed
// representative wins. The explorer commits in canonical candidate order
// at every worker width, making the archive deep-equal across widths.
//
// Archive is not safe for concurrent use; the explorer commits serially.
type Archive struct {
	pts []Point
}

// Add commits p. It returns false (archive unchanged) when an existing
// member weakly dominates p; otherwise it removes every member p strictly
// dominates and inserts p.
func (a *Archive) Add(p Point) bool {
	for _, q := range a.pts {
		if q.WeaklyDominates(p) {
			return false
		}
	}
	kept := a.pts[:0]
	for _, q := range a.pts {
		if !p.Dominates(q) {
			kept = append(kept, q)
		}
	}
	a.pts = append(kept, p)
	return true
}

// Len reports the archive size.
func (a *Archive) Len() int { return len(a.pts) }

// Frontier returns the archive contents in canonical order (Delta, then
// TierPairs, then BWScale) — the order every stream flush and final
// result uses, independent of commit interleaving.
func (a *Archive) Frontier() []Point {
	out := make([]Point, len(a.pts))
	copy(out, a.pts)
	sort.Slice(out, func(i, j int) bool { return pointLess(out[i], out[j]) })
	return out
}

func pointLess(p, q Point) bool {
	if p.Delta != q.Delta {
		return p.Delta < q.Delta
	}
	if p.TierPairs != q.TierPairs {
		return p.TierPairs < q.TierPairs
	}
	return p.BWScale < q.BWScale
}

// Covers reports whether every point in want is weakly dominated by some
// archive member — the "dominates-or-matches" acceptance relation between
// an adaptive frontier and a brute-force one.
func (a *Archive) Covers(want []Point) bool {
	_, ok := a.Uncovered(want)
	return ok
}

// Uncovered returns the first point of want no archive member weakly
// dominates, for diagnostics; ok is true when everything is covered.
func (a *Archive) Uncovered(want []Point) (Point, bool) {
	for _, q := range want {
		covered := false
		for _, p := range a.pts {
			if p.WeaklyDominates(q) {
				covered = true
				break
			}
		}
		if !covered {
			return q, false
		}
	}
	return Point{}, true
}

// TopK returns the k frontier points with the highest EDP benefit
// (ties broken canonically), for promotion to full physical-flow runs.
func TopK(frontier []Point, k int) []Point {
	if k <= 0 {
		return nil
	}
	out := make([]Point, len(frontier))
	copy(out, frontier)
	sort.Slice(out, func(i, j int) bool {
		if out[i].EDPBenefit != out[j].EDPBenefit {
			return out[i].EDPBenefit > out[j].EDPBenefit
		}
		return pointLess(out[i], out[j])
	})
	if k > len(out) {
		k = len(out)
	}
	return out[:k]
}
