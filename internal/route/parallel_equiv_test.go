package route

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"m3d/internal/cell"
	"m3d/internal/floorplan"
	"m3d/internal/geom"
	"m3d/internal/netlist"
	"m3d/internal/tech"
)

// oracleWidths is the pool-width matrix every differential test runs:
// 1 is the serial reference path itself, 2 and 8 exercise the
// speculative route + ordered-commit scheme at narrow and wide pools.
var oracleWidths = []int{1, 2, 8}

// routeOracle runs the serial reference router (Workers: 1 short-circuits
// to routeSerial) on a fresh grid.
func routeOracle(t testing.TB, fp *floorplan.Floorplan, nl *netlist.Netlist, opt Options) *Result {
	t.Helper()
	opt.Workers = 1
	opt.Stats = nil
	res, err := Route(fp, nl, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// diffResults asserts the parallel Result deeply equals the serial
// oracle, with field-level messages before the full DeepEqual so a
// divergence names what moved.
func diffResults(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if got.TotalWLdbu != want.TotalWLdbu {
		t.Errorf("%s: TotalWLdbu %d, oracle %d", label, got.TotalWLdbu, want.TotalWLdbu)
	}
	if got.TotalVias != want.TotalVias || got.TotalILVs != want.TotalILVs {
		t.Errorf("%s: vias/ILVs %d/%d, oracle %d/%d",
			label, got.TotalVias, got.TotalILVs, want.TotalVias, want.TotalILVs)
	}
	if got.OverflowEdges != want.OverflowEdges {
		t.Errorf("%s: OverflowEdges %d, oracle %d", label, got.OverflowEdges, want.OverflowEdges)
	}
	if got.FailedNets != want.FailedNets || got.SkippedNets != want.SkippedNets {
		t.Errorf("%s: failed/skipped %d/%d, oracle %d/%d",
			label, got.FailedNets, got.SkippedNets, want.FailedNets, want.SkippedNets)
	}
	if !reflect.DeepEqual(got.RipupHistory, want.RipupHistory) {
		t.Errorf("%s: RipupHistory %v, oracle %v", label, got.RipupHistory, want.RipupHistory)
	}
	if !reflect.DeepEqual(got.WLByLayer, want.WLByLayer) {
		t.Errorf("%s: WLByLayer %v, oracle %v", label, got.WLByLayer, want.WLByLayer)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s: full Result differs from serial oracle", label)
	}
}

// randomPlacedNetlist builds a seeded random design on a small die:
// mixed Si/CNFET cells at fixed random positions (ILV crossings), nets
// of fanout 1–4, one clock net and one over-fanout net (skip paths),
// and enough density that rip-up rounds actually fire.
func randomPlacedNetlist(t testing.TB, seed int64) (*floorplan.Floorplan, *netlist.Netlist) {
	t.Helper()
	p := tech.Default130()
	siLib, err := cell.NewLibrary(p, tech.TierSiCMOS)
	if err != nil {
		t.Fatal(err)
	}
	cnLib, err := cell.NewLibrary(p, tech.TierCNFET)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	die := geom.R(0, 0, mm/2, mm/2)
	fp, err := floorplan.New(p, die)
	if err != nil {
		t.Fatal(err)
	}

	nl := netlist.New(fmt.Sprintf("rnd%d", seed))
	kinds := []cell.Kind{cell.Inv, cell.Buf, cell.Nand2, cell.Nor2, cell.And2}
	nCells := 90 + rng.Intn(40)
	cells := make([]*netlist.Instance, nCells)
	for i := range cells {
		lib := siLib
		if rng.Intn(4) == 0 {
			lib = cnLib
		}
		c := nl.AddCell(fmt.Sprintf("c%d", i), lib.MustPick(kinds[rng.Intn(len(kinds))], 1))
		c.Pos = geom.Pt(rng.Int63n(die.W()), rng.Int63n(die.H()))
		c.Fixed = true
		cells[i] = c
	}

	nNets := 110 + rng.Intn(50)
	for i := 0; i < nNets; i++ {
		drv := cells[rng.Intn(nCells)]
		n := nl.AddNet(fmt.Sprintf("n%d", i), 0.1)
		nl.MustPin(drv, fmt.Sprintf("Y%d", i), true, 0, n)
		for s := 0; s < 1+rng.Intn(4); s++ {
			snk := cells[rng.Intn(nCells)]
			nl.MustPin(snk, fmt.Sprintf("A%d_%d", i, s), false, snk.Cell.InputCapF, n)
		}
	}
	// Skip paths: a clock net and an over-fanout net must be counted
	// identically by every width.
	ck := nl.AddNet("clk", 0.5)
	ck.Clock = true
	nl.MustPin(cells[0], "CKY", true, 0, ck)
	nl.MustPin(cells[1], "CK", false, cells[1].Cell.InputCapF, ck)
	big := nl.AddNet("fanout", 0.1)
	nl.MustPin(cells[2], "YBIG", true, 0, big)
	for s := 0; s < 70; s++ {
		snk := cells[3+(s%(nCells-3))]
		nl.MustPin(snk, fmt.Sprintf("BIG%d", s), false, snk.Cell.InputCapF, big)
	}
	return fp, nl
}

// TestRouteParallelMatchesSerialOracleRandom pins the speculative
// parallel router against the serial oracle on randomized seeded
// designs: the full Result — routes, WLByLayer, rip-up history,
// congestion map, every counter — must be deeply equal at widths 1/2/8.
func TestRouteParallelMatchesSerialOracleRandom(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		fp, nl := randomPlacedNetlist(t, seed)
		want := routeOracle(t, fp, nl, Options{})
		for _, w := range oracleWidths {
			got, err := Route(fp, nl, Options{Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			diffResults(t, fmt.Sprintf("seed %d width %d", seed, w), want, got)
		}
	}
}

// TestRouteParallelMatchesSerialOracleSystolic runs the same differential
// check on real placed systolic-array netlists (the flow's workload
// shape) at several sizes, including a tight grid that forces rip-up.
func TestRouteParallelMatchesSerialOracleSystolic(t *testing.T) {
	shapes := []struct{ rows, cols int }{{1, 2}, {2, 2}, {2, 3}}
	for _, sh := range shapes {
		fx := placedFixture(t, sh.rows, sh.cols)
		for _, opt := range []Options{{}, {GCellsX: 16, MaxRipupRounds: 2}} {
			want := routeOracle(t, fx.fp, fx.nl, opt)
			for _, w := range oracleWidths {
				o := opt
				o.Workers = w
				got, err := Route(fx.fp, fx.nl, o)
				if err != nil {
					t.Fatal(err)
				}
				diffResults(t, fmt.Sprintf("%dx%d gcells=%d width %d",
					sh.rows, sh.cols, opt.GCellsX, w), want, got)
			}
		}
	}
}

// TestRouteParallelStats checks the work counters: every net decision in
// every round is either committed speculatively or re-routed serially,
// and the counters live outside Result so they cannot perturb the
// differential contract.
func TestRouteParallelStats(t *testing.T) {
	fx := placedFixture(t, 2, 2)
	var st Stats
	res, err := Route(fx.fp, fx.nl, Options{Workers: 4, Stats: &st})
	if err != nil {
		t.Fatal(err)
	}
	if st.Batches == 0 {
		t.Error("parallel run recorded no speculation batches")
	}
	if st.SpecCommitted == 0 {
		t.Error("parallel run committed no speculative results")
	}
	decisions := st.SpecCommitted + st.SpecRerouted
	perRound := len(res.Routes)
	if decisions < perRound {
		t.Errorf("decisions %d < routed nets %d", decisions, perRound)
	}
	if decisions%perRound != 0 {
		t.Errorf("decisions %d not a whole number of rounds over %d nets", decisions, perRound)
	}
	// Serial runs must leave a provided Stats untouched at zero work.
	var serialSt Stats
	if _, err := Route(fx.fp, fx.nl, Options{Workers: 1, Stats: &serialSt}); err != nil {
		t.Fatal(err)
	}
	if serialSt != (Stats{}) {
		t.Errorf("serial run wrote parallel stats: %+v", serialSt)
	}
}
