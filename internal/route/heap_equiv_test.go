package route

import (
	"container/heap"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"m3d/internal/tech"
)

// refPQ is the pre-optimization priority queue: the boxed heap.Interface
// implementation that the typed pq replaced. It is kept here as a test
// oracle so any future change to the typed heap that alters pop order —
// ties included — fails loudly.
type refPQ []pqItem

func (q refPQ) Len() int            { return len(q) }
func (q refPQ) Less(i, j int) bool  { return q[i].f < q[j].f }
func (q refPQ) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *refPQ) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *refPQ) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// refCongPenalty is the pre-optimization congestion penalty: always one
// float division. The production congPenalty short-circuits the ≤75%
// utilization case with an integer compare; this oracle proves the two
// agree bit-for-bit on every cost the search evaluates.
func refCongPenalty(use, capacity int32, hist float64) float64 {
	if capacity <= 0 {
		return 1e6
	}
	u := float64(use) / float64(capacity)
	pen := hist
	if u >= 1 {
		pen += 20 * (u - 0.75)
	} else if u > 0.75 {
		pen += 4 * (u - 0.75)
	}
	return pen
}

// TestTypedHeapMatchesContainerHeap drives the typed pq and the boxed
// reference through identical randomized push/pop interleavings and
// requires bit-identical pop sequences. The f values are drawn from a
// small discrete set so ties are frequent: equal-key ordering is exactly
// what the typed reimplementation must preserve.
func TestTypedHeapMatchesContainerHeap(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var got pq
		ref := &refPQ{}
		for op := 0; op < 2000; op++ {
			if len(got) != ref.Len() {
				t.Fatalf("seed %d op %d: len %d vs %d", seed, op, len(got), ref.Len())
			}
			if len(got) == 0 || rng.Intn(3) != 0 {
				it := pqItem{
					node: rng.Intn(64),
					f:    float64(rng.Intn(8)) * 0.5, // few distinct keys → many ties
					g:    rng.Float64(),
				}
				got.push(it)
				heap.Push(ref, it)
			} else {
				a := got.pop()
				b := heap.Pop(ref).(pqItem)
				if a != b {
					t.Fatalf("seed %d op %d: pop %+v, reference popped %+v", seed, op, a, b)
				}
			}
		}
		for len(got) > 0 {
			a := got.pop()
			b := heap.Pop(ref).(pqItem)
			if a != b {
				t.Fatalf("seed %d drain: pop %+v, reference popped %+v", seed, a, b)
			}
		}
	}
}

// astarBoundedRef is a behavioral copy of the pre-optimization
// astarBounded: driven by container/heap on the boxed refPQ instead of
// the typed pq, with the float-division congestion penalty and the
// split()-based heuristic. It shares the searcher's epoch-stamped
// scratch (each call bumps the epoch), so a divergence can only come
// from the optimized queue, penalty, or heuristic plumbing.
func (s *searcher) astarBoundedRef(src, dst, margin int) []int {
	g := s.g
	nNodes := len(g.layers) * g.nx * g.ny
	if len(s.gScore) != nNodes {
		s.gScore = make([]float64, nNodes)
		s.from = make([]int32, nNodes)
		s.epoch = make([]uint32, nNodes)
	}
	s.curEpoch++
	if s.curEpoch == 0 {
		for i := range s.epoch {
			s.epoch[i] = 0
		}
		s.curEpoch = 1
	}
	gScore := s.gScore
	from := s.from
	seen := func(n int) bool { return s.epoch[n] == s.curEpoch }
	touch := func(n int) {
		if !seen(n) {
			s.epoch[n] = s.curEpoch
			gScore[n] = math.Inf(1)
			from[n] = -1
		}
	}
	touch(src)
	touch(dst)

	dl, dxy := g.split(dst)
	dX, dY := dxy%g.nx, dxy/g.nx
	_, sxy := g.split(src)
	sX, sY := sxy%g.nx, sxy/g.nx

	x0, x1 := minInt(sX, dX)-margin, maxInt(sX, dX)+margin
	y0, y1 := minInt(sY, dY)-margin, maxInt(sY, dY)+margin

	h := func(n int) float64 {
		l, xy := g.split(n)
		x, y := xy%g.nx, xy/g.nx
		dist := float64(absInt(x-dX) + absInt(y-dY))
		return hWeight * (dist + viaCost*float64(absInt(l-dl)))
	}

	open := &refPQ{}
	heap.Push(open, pqItem{node: src, f: h(src)})
	gScore[src] = 0

	for open.Len() > 0 {
		cur := heap.Pop(open).(pqItem)
		if cur.node == dst {
			steps, reached := 0, false
			for n := dst; n != -1; n = int(from[n]) {
				steps++
				if n == src {
					reached = true
					break
				}
			}
			if !reached {
				return nil
			}
			path := make([]int, steps)
			for n, i := dst, steps-1; ; n, i = int(from[n]), i-1 {
				path[i] = n
				if n == src {
					break
				}
			}
			return path
		}
		if cur.g > gScore[cur.node] {
			continue
		}
		l, xy := g.split(cur.node)
		x, y := xy%g.nx, xy/g.nx
		L := g.layers[l]

		relax := func(nn int, cost float64) {
			touch(nn)
			ng := cur.g + cost
			if ng < gScore[nn] {
				gScore[nn] = ng
				from[nn] = int32(cur.node)
				heap.Push(open, pqItem{node: nn, f: ng + h(nn), g: ng})
			}
		}

		if L.Dir == tech.DirHorizontal {
			if x+1 < g.nx && x+1 <= x1 {
				i := g.idx(l, x, y)
				relax(g.idx(l, x+1, y), 1+refCongPenalty(g.useH[i], g.capH[i], g.histH[i]))
			}
			if x > 0 && x-1 >= x0 {
				i := g.idx(l, x-1, y)
				relax(g.idx(l, x-1, y), 1+refCongPenalty(g.useH[i], g.capH[i], g.histH[i]))
			}
		} else {
			if y+1 < g.ny && y+1 <= y1 {
				i := g.idx(l, x, y)
				relax(g.idx(l, x, y+1), 1+refCongPenalty(g.useV[i], g.capV[i], g.histV[i]))
			}
			if y > 0 && y-1 >= y0 {
				i := g.idx(l, x, y-1)
				relax(g.idx(l, x, y-1), 1+refCongPenalty(g.useV[i], g.capV[i], g.histV[i]))
			}
		}
		if l+1 < len(g.layers) {
			i := g.idx(l, x, y)
			if g.capUp[i] > 0 {
				c := viaCost
				if l == g.boundary {
					c += ilvCost
				}
				relax(g.idx(l+1, x, y), c+refCongPenalty(g.useUp[i], g.capUp[i], g.histUp[i]))
			}
		}
		if l > 0 {
			i := g.idx(l-1, x, y)
			if g.capUp[i] > 0 {
				c := viaCost
				if l-1 == g.boundary {
					c += ilvCost
				}
				relax(g.idx(l-1, x, y), c+refCongPenalty(g.useUp[i], g.capUp[i], g.histUp[i]))
			}
		}
	}
	return nil
}

// randGrid builds a synthetic routing grid with randomized capacities,
// usage, and congestion history — enough structure to make many distinct
// path costs and enough ties to stress equal-key pop order.
func randGrid(rng *rand.Rand, nx, ny int) *grid {
	layers := tech.Default130().RoutingLayers()
	g := &grid{layers: layers, nx: nx, ny: ny, boundary: 1}
	n := len(layers) * nx * ny
	g.capH = make([]int32, n)
	g.capV = make([]int32, n)
	g.capUp = make([]int32, n)
	g.useH = make([]int32, n)
	g.useV = make([]int32, n)
	g.useUp = make([]int32, n)
	g.histH = make([]float64, n)
	g.histV = make([]float64, n)
	g.histUp = make([]float64, n)
	for i := 0; i < n; i++ {
		g.capH[i] = int32(rng.Intn(5))
		g.capV[i] = int32(rng.Intn(5))
		g.capUp[i] = int32(rng.Intn(4)) // zeros make some vias impassable
		g.useH[i] = int32(rng.Intn(6))
		g.useV[i] = int32(rng.Intn(6))
		g.useUp[i] = int32(rng.Intn(4))
		g.histH[i] = float64(rng.Intn(3))
		g.histV[i] = float64(rng.Intn(3))
		g.histUp[i] = float64(rng.Intn(3))
	}
	return g
}

// TestAstarPathEquivalenceRandomGrids compares the optimized search against
// the container/heap oracle over a randomized grid corpus: same grid, same
// terminals, both windowed and full-grid margins, element-identical paths.
func TestAstarPathEquivalenceRandomGrids(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nx, ny := 5+rng.Intn(8), 5+rng.Intn(8)
		g := randGrid(rng, nx, ny)
		s := newSearcher(g, false)
		nNodes := len(g.layers) * nx * ny
		for trial := 0; trial < 40; trial++ {
			src, dst := rng.Intn(nNodes), rng.Intn(nNodes)
			for _, margin := range []int{bboxMargin, 1 << 30} {
				got := s.astarBounded(src, dst, margin)
				want := s.astarBoundedRef(src, dst, margin)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d trial %d margin %d: path %v, reference %v",
						seed, trial, margin, got, want)
				}
			}
		}
	}
}
