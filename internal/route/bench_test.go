package route

import "testing"

// BenchmarkRouteNets measures the negotiated-congestion router — A*
// search dominates — on a placed 2x2 systolic block. Workers is pinned
// to 1 so the number stays the serial baseline regardless of the host's
// core count. Tracked by scripts/benchdiff.sh for both ns/op and
// allocs/op.
func BenchmarkRouteNets(b *testing.B) {
	fx := placedFixture(b, 2, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Route(fx.fp, fx.nl, Options{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouteNetsParallel measures the speculative route + ordered
// commit path at a fixed pool width of 8 on the same fixture — the
// byte-identical parallel counterpart to BenchmarkRouteNets. Tracked by
// scripts/benchdiff.sh.
func BenchmarkRouteNetsParallel(b *testing.B) {
	fx := placedFixture(b, 2, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Route(fx.fp, fx.nl, Options{Workers: 8}); err != nil {
			b.Fatal(err)
		}
	}
}
