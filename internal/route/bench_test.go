package route

import "testing"

// BenchmarkRouteNets measures the negotiated-congestion router — A*
// search dominates — on a placed 2x2 systolic block. Tracked by
// scripts/benchdiff.sh for both ns/op and allocs/op.
func BenchmarkRouteNets(b *testing.B) {
	fx := placedFixture(b, 2, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Route(fx.fp, fx.nl, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
