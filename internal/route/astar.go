package route

import (
	"math"

	"m3d/internal/tech"
)

// pqItem is an A* frontier entry.
type pqItem struct {
	node int
	f, g float64
}

// pq is a typed min-heap on f. It reimplements container/heap's exact
// sift algorithm (same comparison and swap sequence, so the pop order —
// ties included — is identical to the heap.Interface version it
// replaces) without boxing every entry through interface{}: the boxed
// Push/Pop pair accounted for ~94% of all allocations in a reduced
// flow.Run before the change.
type pq []pqItem

func (q *pq) push(it pqItem) {
	*q = append(*q, it)
	q.up(len(*q) - 1)
}

func (q *pq) pop() pqItem {
	h := *q
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	h.down(0, n)
	it := h[n]
	*q = h[:n]
	return it
}

func (q pq) up(j int) {
	for j > 0 {
		i := (j - 1) / 2 // parent
		if q[j].f >= q[i].f {
			break
		}
		q[i], q[j] = q[j], q[i]
		j = i
	}
}

func (q pq) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && q[j2].f < q[j1].f {
			j = j2 // right child
		}
		if q[j].f >= q[i].f {
			break
		}
		q[i], q[j] = q[j], q[i]
		i = j
	}
}

// congestion cost multiplier: cost = base * (1 + penalty), penalty grows
// steeply past capacity.
func congPenalty(use, capacity int32, hist float64) float64 {
	if capacity <= 0 {
		return 1e6
	}
	u := float64(use) / float64(capacity)
	pen := hist
	if u >= 1 {
		pen += 20 * (u - 0.75)
	} else if u > 0.75 {
		pen += 4 * (u - 0.75)
	}
	return pen
}

// viaCost is the base cost of one layer change relative to one gcell of
// wire.
const viaCost = 0.9

// ilvCost is the extra cost of crossing the ILV boundary.
const ilvCost = 1.6

// hWeight > 1 makes the A* heuristic slightly inadmissible, trading a few
// percent of path cost for a large reduction in explored nodes.
const hWeight = 1.3

// bboxMargin is the search-window margin (in gcells) around the two
// terminals; most nets route inside it. A failed windowed search falls
// back to the full grid.
const bboxMargin = 6

// astar finds the min-cost path from src to dst nodes; returns the node
// path (src..dst) or nil.
func (g *grid) astar(src, dst int) []int {
	if path := g.astarBounded(src, dst, bboxMargin); path != nil {
		return path
	}
	return g.astarBounded(src, dst, 1<<30)
}

// astarBounded searches within a window of margin gcells around the
// terminals. Scratch arrays are reused across calls with an epoch counter,
// so each search touches only the nodes it visits.
func (g *grid) astarBounded(src, dst, margin int) []int {
	nNodes := len(g.layers) * g.nx * g.ny
	if len(g.gScore) != nNodes {
		g.gScore = make([]float64, nNodes)
		g.from = make([]int32, nNodes)
		g.epoch = make([]uint32, nNodes)
	}
	g.curEpoch++
	if g.curEpoch == 0 { // wrapped: force full reset
		for i := range g.epoch {
			g.epoch[i] = 0
		}
		g.curEpoch = 1
	}
	gScore := g.gScore
	from := g.from
	seen := func(n int) bool { return g.epoch[n] == g.curEpoch }
	touch := func(n int) {
		if !seen(n) {
			g.epoch[n] = g.curEpoch
			gScore[n] = math.Inf(1)
			from[n] = -1
		}
	}
	touch(src)
	touch(dst)

	dl, dxy := g.split(dst)
	dX, dY := dxy%g.nx, dxy/g.nx
	_, sxy := g.split(src)
	sX, sY := sxy%g.nx, sxy/g.nx

	// Search window.
	x0, x1 := minInt(sX, dX)-margin, maxInt(sX, dX)+margin
	y0, y1 := minInt(sY, dY)-margin, maxInt(sY, dY)+margin

	h := func(n int) float64 {
		l, xy := g.split(n)
		x, y := xy%g.nx, xy/g.nx
		dist := float64(absInt(x-dX) + absInt(y-dY))
		return hWeight * (dist + viaCost*float64(absInt(l-dl)))
	}

	g.open = g.open[:0]
	open := &g.open
	open.push(pqItem{node: src, f: h(src)})
	gScore[src] = 0

	for len(*open) > 0 {
		cur := open.pop()
		if cur.node == dst {
			// Reconstruct into an exact-size slice, filled in reverse.
			steps, reached := 0, false
			for n := dst; n != -1; n = int(from[n]) {
				steps++
				if n == src {
					reached = true
					break
				}
			}
			if !reached {
				return nil
			}
			path := make([]int, steps)
			for n, i := dst, steps-1; ; n, i = int(from[n]), i-1 {
				path[i] = n
				if n == src {
					break
				}
			}
			return path
		}
		if cur.g > gScore[cur.node] {
			continue
		}
		l, xy := g.split(cur.node)
		x, y := xy%g.nx, xy/g.nx
		L := g.layers[l]

		relax := func(nn int, cost float64) {
			touch(nn)
			ng := cur.g + cost
			if ng < gScore[nn] {
				gScore[nn] = ng
				from[nn] = int32(cur.node)
				open.push(pqItem{node: nn, f: ng + h(nn), g: ng})
			}
		}

		// Planar moves in the layer's preferred direction, clipped to the
		// search window.
		if L.Dir == tech.DirHorizontal {
			if x+1 < g.nx && x+1 <= x1 {
				i := g.idx(l, x, y)
				relax(g.idx(l, x+1, y), 1+congPenalty(g.useH[i], g.capH[i], g.histH[i]))
			}
			if x > 0 && x-1 >= x0 {
				i := g.idx(l, x-1, y)
				relax(g.idx(l, x-1, y), 1+congPenalty(g.useH[i], g.capH[i], g.histH[i]))
			}
		} else {
			if y+1 < g.ny && y+1 <= y1 {
				i := g.idx(l, x, y)
				relax(g.idx(l, x, y+1), 1+congPenalty(g.useV[i], g.capV[i], g.histV[i]))
			}
			if y > 0 && y-1 >= y0 {
				i := g.idx(l, x, y-1)
				relax(g.idx(l, x, y-1), 1+congPenalty(g.useV[i], g.capV[i], g.histV[i]))
			}
		}
		// Via moves. Zero-capacity cuts (ILVs consumed by an RRAM array
		// above) are impassable.
		if l+1 < len(g.layers) {
			i := g.idx(l, x, y)
			if g.capUp[i] > 0 {
				c := viaCost
				if l == g.boundary {
					c += ilvCost
				}
				relax(g.idx(l+1, x, y), c+congPenalty(g.useUp[i], g.capUp[i], g.histUp[i]))
			}
		}
		if l > 0 {
			i := g.idx(l-1, x, y)
			if g.capUp[i] > 0 {
				c := viaCost
				if l-1 == g.boundary {
					c += ilvCost
				}
				relax(g.idx(l-1, x, y), c+congPenalty(g.useUp[i], g.capUp[i], g.histUp[i]))
			}
		}
	}
	return nil
}

func (g *grid) split(n int) (layer, xy int) {
	return n / (g.nx * g.ny), n % (g.nx * g.ny)
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// overflowCount returns the number of over-capacity edges and bumps history
// on them.
func (g *grid) overflowCount(bumpHistory bool) int {
	n := 0
	for i := range g.useH {
		if g.capH[i] > 0 && g.useH[i] > g.capH[i] {
			n++
			if bumpHistory {
				g.histH[i] += 1.0
			}
		}
		if g.capV[i] > 0 && g.useV[i] > g.capV[i] {
			n++
			if bumpHistory {
				g.histV[i] += 1.0
			}
		}
		if g.capUp[i] > 0 && g.useUp[i] > g.capUp[i] {
			n++
			if bumpHistory {
				g.histUp[i] += 1.0
			}
		}
	}
	return n
}

// pathOverflows reports whether any edge of the path is over capacity.
func (g *grid) pathOverflows(path []int) bool {
	for i := 1; i < len(path); i++ {
		a, b := path[i-1], path[i]
		la, xya := g.split(a)
		lb, xyb := g.split(b)
		xa, ya := xya%g.nx, xya/g.nx
		xb, yb := xyb%g.nx, xyb/g.nx
		switch {
		case la != lb:
			lo := la
			if lb < lo {
				lo = lb
			}
			i := g.idx(lo, xa, ya)
			if g.useUp[i] > g.capUp[i] {
				return true
			}
		case xa != xb:
			lo := xa
			if xb < lo {
				lo = xb
			}
			i := g.idx(la, lo, ya)
			if g.useH[i] > g.capH[i] {
				return true
			}
		default:
			lo := ya
			if yb < lo {
				lo = yb
			}
			i := g.idx(la, xa, lo)
			if g.useV[i] > g.capV[i] {
				return true
			}
		}
		_ = xb
		_ = yb
	}
	return false
}
