package route

import (
	"math"

	"m3d/internal/tech"
)

// pqItem is an A* frontier entry.
type pqItem struct {
	node int
	f, g float64
}

// pq is a typed min-heap on f. It reimplements container/heap's exact
// sift algorithm (same comparison sequence, so the pop order — ties
// included — is identical to the heap.Interface version it replaces)
// without boxing every entry through interface{}: the boxed Push/Pop
// pair accounted for ~94% of all allocations in a reduced flow.Run
// before the change. The sifts are hole-based: instead of swapping the
// moving item pairwise they shift elements into the hole and place the
// item once, which halves the stores per level while performing the
// same comparisons on the same values — the final array is identical.
type pq []pqItem

func (q *pq) push(it pqItem) {
	*q = append(*q, it)
	q.up(len(*q) - 1)
}

func (q *pq) pop() pqItem {
	h := *q
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	h.down(0, n)
	it := h[n]
	*q = h[:n]
	return it
}

func (q pq) up(j int) {
	it := q[j]
	for j > 0 {
		i := (j - 1) / 2 // parent
		if it.f >= q[i].f {
			break
		}
		q[j] = q[i]
		j = i
	}
	q[j] = it
}

func (q pq) down(i0, n int) {
	i := i0
	it := q[i]
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && q[j2].f < q[j1].f {
			j = j2 // right child
		}
		if q[j].f >= it.f {
			break
		}
		q[i] = q[j]
		i = j
	}
	q[i] = it
}

// congestion cost multiplier: cost = base * (1 + penalty), penalty grows
// steeply past capacity.
func congPenalty(use, capacity int32, hist float64) float64 {
	if capacity <= 0 {
		return 1e6
	}
	// Below-3/4 utilization the penalty is the bare history term; the
	// integer compare decides it without the division. It is exact:
	// use*4 > cap*3 ⟺ use/cap > 0.75, and for int32 operands the float64
	// quotient below cannot round across the 3/4 boundary (the gap to
	// 0.75 is at least 1/(4·cap), far above one ulp), so this branch
	// never changes the result.
	if int64(use)*4 <= int64(capacity)*3 {
		return hist
	}
	u := float64(use) / float64(capacity)
	pen := hist
	if u >= 1 {
		pen += 20 * (u - 0.75)
	} else {
		pen += 4 * (u - 0.75)
	}
	return pen
}

// viaCost is the base cost of one layer change relative to one gcell of
// wire.
const viaCost = 0.9

// ilvCost is the extra cost of crossing the ILV boundary.
const ilvCost = 1.6

// hWeight > 1 makes the A* heuristic slightly inadmissible, trading a few
// percent of path cost for a large reduction in explored nodes.
const hWeight = 1.3

// bboxMargin is the search-window margin (in gcells) around the two
// terminals; most nets route inside it. A failed windowed search falls
// back to the full grid.
const bboxMargin = 6

// Edge families of the flat edge index space e = fam*nNodes + node:
// horizontal track edges, vertical track edges, and via (up) edges.
const (
	famH = iota
	famV
	famUp
)

// edgeRead records one live usage word a speculative search observed:
// the commit phase re-checks that the word still holds this value.
type edgeRead struct {
	e   int32
	val int32
}

// searcher owns the per-goroutine routing state: the epoch-stamped A*
// scratch, the open heap, and the sink-ordering scratch. In speculative
// mode (parallel routing) it additionally carries a private usage
// overlay — the net's own uncommitted path commits — and a read log of
// every live usage word the search depended on, which is what lets the
// ordered commit prove the speculative result identical to a serial
// execution.
type searcher struct {
	g  *grid
	nn int // nodes per edge family

	// A* scratch, reused across searches (epoch-stamped).
	gScore   []float64
	from     []int32
	epoch    []uint32
	curEpoch uint32
	open     pq

	// sinkScratch is reused across routeNet calls so per-net sink
	// ordering allocates nothing once grown.
	sinkScratch []sinkRef

	// Speculative mode. delta overlays the frozen live usage arrays with
	// this net's own in-flight commits; readLog records each live word
	// the first time the search reads it (logEp dedupes within a net).
	spec    bool
	delta   []int32
	depoch  []uint32
	dcur    uint32
	logEp   []uint32
	logCur  uint32
	readLog []edgeRead
}

func newSearcher(g *grid, spec bool) *searcher {
	s := &searcher{g: g, nn: g.nNodes(), spec: spec}
	if spec {
		s.delta = make([]int32, 3*s.nn)
		s.depoch = make([]uint32, 3*s.nn)
		s.logEp = make([]uint32, 3*s.nn)
	}
	return s
}

// beginNet opens a fresh speculative scope: an empty usage overlay and a
// new read log owned by the net being routed.
func (s *searcher) beginNet() {
	s.readLog = nil
	s.logCur++
	if s.logCur == 0 { // wrapped: force full reset
		for i := range s.logEp {
			s.logEp[i] = 0
		}
		s.logCur = 1
	}
	s.dcur++
	if s.dcur == 0 {
		for i := range s.depoch {
			s.depoch[i] = 0
		}
		s.dcur = 1
	}
}

// specRead logs the live usage word for edge (fam, i) once per net and
// returns it with this net's own overlay applied.
func (s *searcher) specRead(fam, i int, live int32) int32 {
	e := fam*s.nn + i
	if s.logEp[e] != s.logCur {
		s.logEp[e] = s.logCur
		s.readLog = append(s.readLog, edgeRead{e: int32(e), val: live})
	}
	if s.depoch[e] == s.dcur {
		live += s.delta[e]
	}
	return live
}

// rdH/rdV/rdUp return the usage value the search must observe for an
// edge: the live value in serial mode; in speculative mode the frozen
// live value (logged for commit-time validation) plus the overlay.
func (s *searcher) rdH(i int) int32 {
	u := s.g.useH[i]
	if s.spec {
		u = s.specRead(famH, i, u)
	}
	return u
}

func (s *searcher) rdV(i int) int32 {
	u := s.g.useV[i]
	if s.spec {
		u = s.specRead(famV, i, u)
	}
	return u
}

func (s *searcher) rdUp(i int) int32 {
	u := s.g.useUp[i]
	if s.spec {
		u = s.specRead(famUp, i, u)
	}
	return u
}

// overlayAdd accumulates a usage delta for edge (fam, i) in the private
// overlay.
func (s *searcher) overlayAdd(fam, i int, delta int32) {
	e := fam*s.nn + i
	if s.depoch[e] != s.dcur {
		s.depoch[e] = s.dcur
		s.delta[e] = 0
	}
	s.delta[e] += delta
}

// overlayPath mirrors grid.applyPath's usage walk into the overlay.
func (s *searcher) overlayPath(path []int, delta int32) {
	g := s.g
	for i := 1; i < len(path); i++ {
		a, b := path[i-1], path[i]
		la, xya := g.split(a)
		lb, xyb := g.split(b)
		xa, ya := xya%g.nx, xya/g.nx
		xb, yb := xyb%g.nx, xyb/g.nx
		switch {
		case la != lb:
			lo := la
			if lb < lo {
				lo = lb
			}
			s.overlayAdd(famUp, g.idx(lo, xa, ya), delta)
		case xa != xb:
			lo := xa
			if xb < lo {
				lo = xb
			}
			s.overlayAdd(famH, g.idx(la, lo, ya), delta)
		default:
			lo := ya
			if yb < lo {
				lo = yb
			}
			s.overlayAdd(famV, g.idx(la, xa, lo), delta)
		}
	}
}

// astar finds the min-cost path from src to dst nodes; returns the node
// path (src..dst) or nil.
func (s *searcher) astar(src, dst int) []int {
	if path := s.astarBounded(src, dst, bboxMargin); path != nil {
		return path
	}
	return s.astarBounded(src, dst, 1<<30)
}

// astarBounded searches within a window of margin gcells around the
// terminals. Scratch arrays are reused across calls with an epoch counter,
// so each search touches only the nodes it visits.
func (s *searcher) astarBounded(src, dst, margin int) []int {
	g := s.g
	nNodes := s.nn
	if len(s.gScore) != nNodes {
		s.gScore = make([]float64, nNodes)
		s.from = make([]int32, nNodes)
		s.epoch = make([]uint32, nNodes)
	}
	s.curEpoch++
	if s.curEpoch == 0 { // wrapped: force full reset
		for i := range s.epoch {
			s.epoch[i] = 0
		}
		s.curEpoch = 1
	}
	gScore := s.gScore
	from := s.from
	touch := func(n int) {
		if s.epoch[n] != s.curEpoch {
			s.epoch[n] = s.curEpoch
			gScore[n] = math.Inf(1)
			from[n] = -1
		}
	}
	touch(src)
	touch(dst)

	dl, dxy := g.split(dst)
	dX, dY := dxy%g.nx, dxy/g.nx
	sl, sxy := g.split(src)
	sX, sY := sxy%g.nx, sxy/g.nx

	// Search window.
	x0, x1 := minInt(sX, dX)-margin, maxInt(sX, dX)+margin
	y0, y1 := minInt(sY, dY)-margin, maxInt(sY, dY)+margin

	// The heuristic takes the neighbor's coordinates directly: the relax
	// sites already know them, and recovering them via split() put a
	// div/mod pair on the hottest path of the search.
	hAt := func(l, x, y int) float64 {
		dist := float64(absInt(x-dX) + absInt(y-dY))
		return hWeight * (dist + viaCost*float64(absInt(l-dl)))
	}

	s.open = s.open[:0]
	open := &s.open
	open.push(pqItem{node: src, f: hAt(sl, sX, sY)})
	gScore[src] = 0

	for len(*open) > 0 {
		cur := open.pop()
		if cur.node == dst {
			// Reconstruct into an exact-size slice, filled in reverse.
			steps, reached := 0, false
			for n := dst; n != -1; n = int(from[n]) {
				steps++
				if n == src {
					reached = true
					break
				}
			}
			if !reached {
				return nil
			}
			path := make([]int, steps)
			for n, i := dst, steps-1; ; n, i = int(from[n]), i-1 {
				path[i] = n
				if n == src {
					break
				}
			}
			return path
		}
		if cur.g > gScore[cur.node] {
			continue
		}
		l, xy := g.split(cur.node)
		x, y := xy%g.nx, xy/g.nx
		L := g.layers[l]

		relax := func(nn, nl, nx, ny int, cost float64) {
			touch(nn)
			ng := cur.g + cost
			if ng < gScore[nn] {
				gScore[nn] = ng
				from[nn] = int32(cur.node)
				open.push(pqItem{node: nn, f: ng + hAt(nl, nx, ny), g: ng})
			}
		}

		// Planar moves in the layer's preferred direction, clipped to the
		// search window.
		if L.Dir == tech.DirHorizontal {
			if x+1 < g.nx && x+1 <= x1 {
				i := g.idx(l, x, y)
				relax(g.idx(l, x+1, y), l, x+1, y, 1+congPenalty(s.rdH(i), g.capH[i], g.histH[i]))
			}
			if x > 0 && x-1 >= x0 {
				i := g.idx(l, x-1, y)
				relax(g.idx(l, x-1, y), l, x-1, y, 1+congPenalty(s.rdH(i), g.capH[i], g.histH[i]))
			}
		} else {
			if y+1 < g.ny && y+1 <= y1 {
				i := g.idx(l, x, y)
				relax(g.idx(l, x, y+1), l, x, y+1, 1+congPenalty(s.rdV(i), g.capV[i], g.histV[i]))
			}
			if y > 0 && y-1 >= y0 {
				i := g.idx(l, x, y-1)
				relax(g.idx(l, x, y-1), l, x, y-1, 1+congPenalty(s.rdV(i), g.capV[i], g.histV[i]))
			}
		}
		// Via moves. Zero-capacity cuts (ILVs consumed by an RRAM array
		// above) are impassable.
		if l+1 < len(g.layers) {
			i := g.idx(l, x, y)
			if g.capUp[i] > 0 {
				c := viaCost
				if l == g.boundary {
					c += ilvCost
				}
				relax(g.idx(l+1, x, y), l+1, x, y, c+congPenalty(s.rdUp(i), g.capUp[i], g.histUp[i]))
			}
		}
		if l > 0 {
			i := g.idx(l-1, x, y)
			if g.capUp[i] > 0 {
				c := viaCost
				if l-1 == g.boundary {
					c += ilvCost
				}
				relax(g.idx(l-1, x, y), l-1, x, y, c+congPenalty(s.rdUp(i), g.capUp[i], g.histUp[i]))
			}
		}
	}
	return nil
}

func (g *grid) split(n int) (layer, xy int) {
	return n / (g.nx * g.ny), n % (g.nx * g.ny)
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// overflowCount returns the number of over-capacity edges and bumps history
// on them.
func (g *grid) overflowCount(bumpHistory bool) int {
	n := 0
	for i := range g.useH {
		if g.capH[i] > 0 && g.useH[i] > g.capH[i] {
			n++
			if bumpHistory {
				g.histH[i] += 1.0
			}
		}
		if g.capV[i] > 0 && g.useV[i] > g.capV[i] {
			n++
			if bumpHistory {
				g.histV[i] += 1.0
			}
		}
		if g.capUp[i] > 0 && g.useUp[i] > g.capUp[i] {
			n++
			if bumpHistory {
				g.histUp[i] += 1.0
			}
		}
	}
	return n
}

// pathOverflows reports whether any edge of the path is over capacity,
// reading usage through the searcher so a speculative check logs the
// words its verdict depends on.
func (s *searcher) pathOverflows(path []int) bool {
	g := s.g
	for i := 1; i < len(path); i++ {
		a, b := path[i-1], path[i]
		la, xya := g.split(a)
		lb, xyb := g.split(b)
		xa, ya := xya%g.nx, xya/g.nx
		xb, yb := xyb%g.nx, xyb/g.nx
		switch {
		case la != lb:
			lo := la
			if lb < lo {
				lo = lb
			}
			i := g.idx(lo, xa, ya)
			if s.rdUp(i) > g.capUp[i] {
				return true
			}
		case xa != xb:
			lo := xa
			if xb < lo {
				lo = xb
			}
			i := g.idx(la, lo, ya)
			if s.rdH(i) > g.capH[i] {
				return true
			}
		default:
			lo := ya
			if yb < lo {
				lo = yb
			}
			i := g.idx(la, xa, lo)
			if s.rdV(i) > g.capV[i] {
				return true
			}
		}
	}
	return false
}
