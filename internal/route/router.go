package route

import (
	"fmt"
	"sort"

	"m3d/internal/floorplan"
	"m3d/internal/geom"
	"m3d/internal/netlist"
)

// routedNet keeps the committed paths of one net for rip-up.
type routedNet struct {
	net   *netlist.Net
	paths [][]int
	// hpwl is the net's HPWL at route time, precomputed once so the
	// work-list ordering does not recompute it O(n log n) times.
	hpwl int64
}

// sinkRef pairs a sink pin with its precomputed driver distance for the
// nearest-first ordering inside routeNet.
type sinkRef struct {
	pin  *netlist.Pin
	dist int64
}

// Route globally routes all signal nets of the placed netlist. Clock nets
// and nets above the fanout threshold are idealized (skipped). The router
// runs an initial pass plus negotiated rip-up-and-reroute rounds on
// overflowing nets. With Options.Workers > 1 the rounds run as
// speculative parallel batches whose results commit in serial work-list
// order (see parallel.go); the Result is byte-identical to the serial
// router's at every width.
func Route(f *floorplan.Floorplan, nl *netlist.Netlist, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	g := newGrid(f, opt)
	if g.boundary < 0 {
		return nil, fmt.Errorf("route: stack has no lower-metal boundary")
	}

	res := &Result{
		Routes:     make(map[*netlist.Net]*NetRoute),
		WLByLayer:  make([]int64, len(g.layers)),
		GCellPitch: g.pitch,
	}

	var work []*routedNet
	for _, n := range nl.Nets {
		if (n.Clock && !opt.IncludeClock) || len(n.Sinks)+1 > opt.MaxFanout ||
			n.Driver == nil || len(n.Sinks) == 0 {
			res.SkippedNets++
			continue
		}
		work = append(work, &routedNet{net: n, hpwl: n.HPWL()})
	}
	// Short nets first: they lock in the cheap resources, long nets then
	// negotiate around them.
	sort.SliceStable(work, func(i, j int) bool {
		return work[i].hpwl < work[j].hpwl
	})

	if opt.Workers > 1 && len(work) > 1 {
		if err := routeParallel(g, work, res, opt); err != nil {
			return nil, err
		}
	} else {
		routeSerial(g, work, res, opt)
	}

	finalize(g, f, work, res)
	return res, nil
}

// routeSerial is the reference router: one searcher, nets in work-list
// order, negotiated rip-up rounds. The parallel path is tested against
// it as an oracle and must replay it exactly.
func routeSerial(g *grid, work []*routedNet, res *Result, opt Options) {
	s := newSearcher(g, false)
	for _, rn := range work {
		var failed int
		rn.paths, failed = s.routeNet(rn.net, rn.paths[:0])
		res.FailedNets += failed
	}

	// Negotiated rip-up and reroute.
	for round := 0; round < opt.MaxRipupRounds; round++ {
		ov := g.overflowCount(true)
		res.RipupHistory = append(res.RipupHistory, ov)
		if ov == 0 {
			break
		}
		for _, rn := range work {
			bad := false
			for _, path := range rn.paths {
				if s.pathOverflows(path) {
					bad = true
					break
				}
			}
			if !bad {
				continue
			}
			for _, path := range rn.paths {
				g.commitPathUsage(path, -1)
			}
			var failed int
			rn.paths, failed = s.routeNet(rn.net, rn.paths[:0])
			res.FailedNets += failed
		}
	}
}

// routeNet routes one net from scratch: star topology from the driver,
// nearest sink first. Each found path is committed before the next sink
// is routed — to the live grid in serial mode, to the searcher's private
// overlay in speculative mode — and appended to dst, which is returned
// along with the count of unroutable sinks.
func (s *searcher) routeNet(n *netlist.Net, dst [][]int) ([][]int, int) {
	g := s.g
	failed := 0
	dx, dy := g.cellOf(n.Driver.Loc())
	src := g.idx(g.pinLayer(n.Driver.Inst), dx, dy)
	sinks := s.sinkScratch[:0]
	dloc := n.Driver.Loc()
	for _, sk := range n.Sinks {
		sinks = append(sinks, sinkRef{pin: sk, dist: sk.Loc().ManhattanDist(dloc)})
	}
	sort.SliceStable(sinks, func(i, j int) bool {
		return sinks[i].dist < sinks[j].dist
	})
	s.sinkScratch = sinks
	for _, sr := range sinks {
		sx, sy := g.cellOf(sr.pin.Loc())
		d := g.idx(g.pinLayer(sr.pin.Inst), sx, sy)
		if d == src {
			continue
		}
		path := s.astar(src, d)
		if path == nil {
			failed++
			continue
		}
		if s.spec {
			s.overlayPath(path, +1)
		} else {
			g.commitPathUsage(path, +1)
		}
		dst = append(dst, path)
	}
	return dst, failed
}

// finalize converts the committed paths into the Result's accounting.
func finalize(g *grid, f *floorplan.Floorplan, work []*routedNet, res *Result) {
	for _, rn := range work {
		nr := &NetRoute{Net: rn.net}
		for _, path := range rn.paths {
			segs, wl, vias, ilvs := g.describe(path)
			nr.Segs = append(nr.Segs, segs...)
			nr.WLdbu += wl
			nr.Vias += vias
			nr.ILVs += ilvs
		}
		if len(rn.paths) == 0 && len(rn.net.Sinks) > 0 {
			// All connections were same-gcell (zero length) or failed.
			nr.Failed = false
		}
		res.Routes[rn.net] = nr
		res.TotalWLdbu += nr.WLdbu
		res.TotalVias += nr.Vias
		res.TotalILVs += nr.ILVs
		for _, s := range nr.Segs {
			if s.A != s.B {
				res.WLByLayer[s.LayerIdx] += s.A.ManhattanDist(s.B)
			}
		}
	}
	res.OverflowEdges = g.overflowCount(false)
	res.Congestion = g.congestionGrid(f)
}

// congestionGrid summarizes per-gcell routing utilization: for each cell,
// the maximum usage/capacity ratio across layers and edge families.
func (g *grid) congestionGrid(f *floorplan.Floorplan) *geom.Grid {
	out := geom.NewGrid(f.Die, g.pitch)
	for l := 0; l < len(g.layers); l++ {
		for y := 0; y < g.ny && y < out.NY; y++ {
			for x := 0; x < g.nx && x < out.NX; x++ {
				i := g.idx(l, x, y)
				worst := out.At(x, y)
				check := func(use, capacity int32) {
					if capacity <= 0 {
						return
					}
					if u := float64(use) / float64(capacity); u > worst {
						worst = u
					}
				}
				check(g.useH[i], g.capH[i])
				check(g.useV[i], g.capV[i])
				check(g.useUp[i], g.capUp[i])
				out.Set(x, y, worst)
			}
		}
	}
	return out
}

// commitPathUsage applies only the usage deltas of a path (no segment
// generation).
func (g *grid) commitPathUsage(path []int, delta int32) {
	g.applyPath(path, delta, nil)
}

// describe converts a committed path into segments and counts without
// changing usage.
func (g *grid) describe(path []int) (segs []Seg, wl int64, vias, ilvs int) {
	out := &pathDescr{}
	g.applyPath(path, 0, out)
	return out.segs, out.wl, out.vias, out.ilvs
}

type pathDescr struct {
	segs []Seg
	wl   int64
	vias int
	ilvs int
}

// applyPath walks a path once, applying a usage delta and/or collecting a
// description.
func (g *grid) applyPath(path []int, delta int32, d *pathDescr) {
	for i := 1; i < len(path); i++ {
		a, b := path[i-1], path[i]
		la, xya := g.split(a)
		lb, xyb := g.split(b)
		xa, ya := xya%g.nx, xya/g.nx
		xb, yb := xyb%g.nx, xyb/g.nx
		switch {
		case la != lb:
			lo := la
			if lb < lo {
				lo = lb
			}
			if delta != 0 {
				g.useUp[g.idx(lo, xa, ya)] += delta
			}
			if d != nil {
				d.vias++
				if lo == g.boundary {
					d.ilvs++
				}
				d.segs = append(d.segs, Seg{LayerIdx: lb, A: g.center(xa, ya), B: g.center(xa, ya)})
			}
		case xa != xb:
			lo := xa
			if xb < lo {
				lo = xb
			}
			if delta != 0 {
				g.useH[g.idx(la, lo, ya)] += delta
			}
			if d != nil {
				d.wl += g.pitch
				d.segs = append(d.segs, Seg{LayerIdx: la, A: g.center(xa, ya), B: g.center(xb, yb)})
			}
		default:
			lo := ya
			if yb < lo {
				lo = yb
			}
			if delta != 0 {
				g.useV[g.idx(la, xa, lo)] += delta
			}
			if d != nil {
				d.wl += g.pitch
				d.segs = append(d.segs, Seg{LayerIdx: la, A: g.center(xa, ya), B: g.center(xb, yb)})
			}
		}
	}
}
