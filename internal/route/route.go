// Package route implements 3D global routing over the M3D metal stack: a
// capacitated grid-cell (GCell) graph spanning the six routing layers, A*
// maze routing per two-pin connection with congestion-aware costs, and
// negotiated rip-up-and-reroute. Crossings between the lower metals (M1–M4,
// below the RRAM/CNFET layers) and the upper metals (M5–M6) consume
// inter-layer vias (ILVs), whose per-GCell capacity derives from the PDK's
// ILV pitch — the resource the paper's Obs. 8 identifies as critical.
package route

import (
	"m3d/internal/exec"
	"m3d/internal/floorplan"
	"m3d/internal/geom"
	"m3d/internal/netlist"
	"m3d/internal/tech"
)

// Options tunes the router.
type Options struct {
	// GCellsX is the target number of grid cells across the die (default 48).
	GCellsX int
	// MaxRipupRounds is the number of negotiated reroute rounds (default 3).
	MaxRipupRounds int
	// MaxFanout skips nets with more sinks than this (they are treated as
	// ideal networks, e.g. resets); clock nets are skipped unless
	// IncludeClock is set. Default 64.
	MaxFanout int
	// IncludeClock routes clock nets too — set after clock tree synthesis,
	// when the clock is a real buffered network rather than an ideal net.
	IncludeClock bool
	// Workers is the routing pool width. 1 runs the plain serial router;
	// values above 1 route nets speculatively in parallel and commit them
	// in exact serial order, so the Result is byte-identical at every
	// width. 0 (the zero value) selects exec.DefaultWorkers, which honors
	// M3D_WORKERS.
	Workers int
	// Stats, when non-nil, receives the speculative router's work
	// counters. They live outside Result on purpose: serial and parallel
	// runs must produce deeply equal Results, and how the work was
	// scheduled is not part of the routing answer.
	Stats *Stats
}

// Stats counts how the speculative parallel router spent its work.
type Stats struct {
	// SpecCommitted is the number of speculative net results whose read
	// logs validated and were committed as-is.
	SpecCommitted int
	// SpecRerouted is the number of validation conflicts that fell back
	// to a serial re-route on the live grid.
	SpecRerouted int
	// Batches is the number of speculation barriers executed.
	Batches int
}

func (o Options) withDefaults() Options {
	if o.GCellsX <= 0 {
		o.GCellsX = 48
	}
	if o.MaxRipupRounds <= 0 {
		o.MaxRipupRounds = 3
	}
	if o.MaxFanout <= 0 {
		o.MaxFanout = 64
	}
	if o.Workers <= 0 {
		o.Workers = exec.DefaultWorkers()
	}
	return o
}

// Seg is one routed segment on a layer between two GCell centers (absolute
// coordinates). Vertical segments (layer changes) have A == B.
type Seg struct {
	LayerIdx int // index into PDK.RoutingLayers()
	A, B     geom.Point
}

// NetRoute is the routing result for one net.
type NetRoute struct {
	Net    *netlist.Net
	Segs   []Seg
	WLdbu  int64 // total wire length
	Vias   int   // intra-stack vias
	ILVs   int   // vias crossing the lower/upper metal boundary
	Failed bool
}

// Result is the full routing report.
type Result struct {
	Routes map[*netlist.Net]*NetRoute
	// TotalWLdbu is the total routed wirelength.
	TotalWLdbu int64
	// TotalVias / TotalILVs count via usage.
	TotalVias, TotalILVs int
	// OverflowEdges counts edges above capacity after the final round.
	OverflowEdges int
	// SkippedNets counts nets excluded (clock / high fanout).
	SkippedNets int
	// FailedNets counts nets with no path.
	FailedNets int
	// RipupHistory records the over-capacity edge count observed at the
	// start of each negotiation round; the final entry is 0 when the
	// router converged before exhausting MaxRipupRounds. Serial and
	// parallel runs produce identical histories.
	RipupHistory []int
	// WLByLayer is wirelength per routing layer.
	WLByLayer []int64
	// GCellPitch is the routing grid pitch used (DBU); segments step
	// between gcell centers at this pitch.
	GCellPitch int64
	// Congestion maps each gcell to its worst usage/capacity ratio across
	// layers (>1 = overflow), for hot-spot inspection.
	Congestion *geom.Grid
}

// grid is the routing graph.
type grid struct {
	p      *tech.PDK
	die    geom.Rect
	layers []tech.Layer
	nx, ny int
	pitch  int64
	// boundary is the routing-layer index of the topmost lower metal (M4);
	// via edges from it to the next layer cross the RRAM/CNFET stack and
	// consume ILVs.
	boundary int

	// capacities and usage per edge family.
	capH, capV   []int32 // per-layer track capacity per gcell edge
	capUp        []int32 // via capacity per gcell between layer l and l+1
	useH, useV   []int32 // [l][y][x]
	useUp        []int32
	histH, histV []float64 // negotiated-congestion history
	histUp       []float64
}

func (g *grid) idx(l, x, y int) int { return (l*g.ny+y)*g.nx + x }

func (g *grid) nNodes() int { return len(g.layers) * g.nx * g.ny }

func newGrid(f *floorplan.Floorplan, opt Options) *grid {
	p := f.PDK
	layers := p.RoutingLayers()
	die := f.Die
	nx := opt.GCellsX
	pitch := die.W() / int64(nx)
	if pitch < 4*p.RowHeight {
		pitch = 4 * p.RowHeight
		nx = int(die.W()/pitch) + 1
	}
	ny := int(die.H()/pitch) + 1

	g := &grid{
		p: p, die: die, layers: layers,
		nx: nx, ny: ny, pitch: pitch,
		boundary: -1,
	}
	// The boundary between lower and upper metals is the last routing layer
	// whose stack tier is SiCMOS.
	for i, L := range layers {
		if L.Tier == tech.TierSiCMOS {
			g.boundary = i
		}
	}

	n := len(layers) * nx * ny
	g.capH = make([]int32, n)
	g.capV = make([]int32, n)
	g.capUp = make([]int32, n)
	g.useH = make([]int32, n)
	g.useV = make([]int32, n)
	g.useUp = make([]int32, n)
	g.histH = make([]float64, n)
	g.histV = make([]float64, n)
	g.histUp = make([]float64, n)

	for li, L := range layers {
		tracks := int32(pitch / L.Pitch)
		if tracks < 1 {
			tracks = 1
		}
		// Derate: ~30% of tracks are reserved for the power mesh and local
		// pin escapes.
		tracks = tracks * 7 / 10
		if tracks < 1 {
			tracks = 1
		}
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				i := g.idx(li, x, y)
				if L.Dir == tech.DirHorizontal {
					g.capH[i] = tracks
				} else {
					g.capV[i] = tracks
				}
				if li < len(layers)-1 {
					if li == g.boundary {
						// ILV boundary: capacity from the ILV pitch, minus
						// what the RRAM arrays consume (applied below).
						per := (pitch / p.ILVPitch) * (pitch / p.ILVPitch) / 8
						if per < 1 {
							per = 1
						}
						g.capUp[i] = int32(per)
					} else {
						g.capUp[i] = tracks * 2
					}
				}
			}
		}
	}

	// RRAM array footprints consume nearly all ILVs beneath them (every bit
	// cell uses m vias): zero out ILV capacity under CNFET-tier blockages.
	for _, blk := range f.Blockages(tech.TierCNFET) {
		x0, y0 := g.cellOf(blk.Lo)
		x1, y1 := g.cellOf(geom.Pt(blk.Hi.X-1, blk.Hi.Y-1))
		for y := y0; y <= y1; y++ {
			for x := x0; x <= x1; x++ {
				g.capUp[g.idx(g.boundary, x, y)] = 0
			}
		}
	}
	return g
}

func (g *grid) cellOf(p geom.Point) (int, int) {
	x := int((p.X - g.die.Lo.X) / g.pitch)
	y := int((p.Y - g.die.Lo.Y) / g.pitch)
	if x < 0 {
		x = 0
	}
	if x >= g.nx {
		x = g.nx - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= g.ny {
		y = g.ny - 1
	}
	return x, y
}

func (g *grid) center(x, y int) geom.Point {
	return geom.Pt(
		g.die.Lo.X+int64(x)*g.pitch+g.pitch/2,
		g.die.Lo.Y+int64(y)*g.pitch+g.pitch/2,
	)
}

// pinLayer maps an instance to its routing access layer.
func (g *grid) pinLayer(inst *netlist.Instance) int {
	if inst.IsMacro() {
		// Macro ports present on M4 (top lower metal).
		return g.boundary
	}
	if inst.Tier == tech.TierCNFET {
		// Upper-tier cells access the first upper metal.
		return g.boundary + 1
	}
	return 0 // M1
}
