package route

import (
	"testing"

	"m3d/internal/cell"
	"m3d/internal/exec"
	"m3d/internal/floorplan"
	"m3d/internal/geom"
	"m3d/internal/macro"
	"m3d/internal/netlist"
	"m3d/internal/place"
	"m3d/internal/synth"
	"m3d/internal/tech"
)

const mm = int64(1_000_000)

type fixture struct {
	p  *tech.PDK
	nl *netlist.Netlist
	fp *floorplan.Floorplan
}

func placedFixture(t testing.TB, rows, cols int) *fixture {
	t.Helper()
	p := tech.Default130()
	lib, err := cell.NewLibrary(p, tech.TierSiCMOS)
	if err != nil {
		t.Fatal(err)
	}
	b := synth.NewBuilder("dut", lib)
	b.Systolic("cs", synth.SystolicSpec{Rows: rows, Cols: cols, ActBits: 4, WeightBits: 4, AccBits: 12, Activity: 0.2})
	die, err := floorplan.SizeDie(p, b.NL, 0.6, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := floorplan.New(p, die)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := place.Global(fp, b.NL, tech.TierSiCMOS, place.Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	return &fixture{p: p, nl: b.NL, fp: fp}
}

func TestRouteCompletes(t *testing.T) {
	fx := placedFixture(t, 2, 2)
	res, err := Route(fx.fp, fx.nl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedNets > 0 {
		t.Errorf("failed nets: %d", res.FailedNets)
	}
	if res.TotalWLdbu <= 0 {
		t.Error("routed wirelength should be positive")
	}
	// Routed WL should be at least the HPWL of the routable nets (global
	// routing detours), but not absurdly larger.
	hpwl := fx.nl.TotalHPWL()
	if res.TotalWLdbu > 20*hpwl {
		t.Errorf("routed WL %d is wildly above HPWL %d", res.TotalWLdbu, hpwl)
	}
}

func TestRouteSkipsClockAndHugeFanout(t *testing.T) {
	fx := placedFixture(t, 1, 1)
	res, err := Route(fx.fp, fx.nl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The clock net exists in every synth netlist.
	if res.SkippedNets == 0 {
		t.Error("clock net should be skipped")
	}
	for n := range res.Routes {
		if n.Clock {
			t.Error("clock net was routed")
		}
	}
}

func TestRouteOverflowBoundedOnReasonableDesign(t *testing.T) {
	fx := placedFixture(t, 2, 2)
	res, err := Route(fx.fp, fx.nl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	totalEdges := 6 * 48 * 48
	if res.OverflowEdges > totalEdges/20 {
		t.Errorf("overflow on %d edges (>5%% of %d)", res.OverflowEdges, totalEdges)
	}
}

func TestWLByLayerAccounting(t *testing.T) {
	fx := placedFixture(t, 1, 2)
	res, err := Route(fx.fp, fx.nl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, wl := range res.WLByLayer {
		sum += wl
	}
	if sum != res.TotalWLdbu {
		t.Errorf("per-layer WL %d != total %d", sum, res.TotalWLdbu)
	}
	// A 2D design routes overwhelmingly in the lower metals.
	lower := res.WLByLayer[0] + res.WLByLayer[1] + res.WLByLayer[2] + res.WLByLayer[3]
	if lower < res.TotalWLdbu*9/10 {
		t.Errorf("Si-tier design should route mostly in M1-M4: lower=%d total=%d", lower, res.TotalWLdbu)
	}
}

func TestILVUsedForCNFETTierCells(t *testing.T) {
	p := tech.Default130()
	siLib, err := cell.NewLibrary(p, tech.TierSiCMOS)
	if err != nil {
		t.Fatal(err)
	}
	cnLib, err := cell.NewLibrary(p, tech.TierCNFET)
	if err != nil {
		t.Fatal(err)
	}
	nl := netlist.New("x")
	a := nl.AddCell("a", siLib.MustPick(cell.Inv, 1))
	b := nl.AddCell("b", cnLib.MustPick(cell.Inv, 1))
	n := nl.AddNet("n", 0.1)
	nl.MustPin(a, "Y", true, 0, n)
	nl.MustPin(b, "A", false, b.Cell.InputCapF, n)
	a.Pos = geom.Pt(mm/4, mm/4)
	b.Pos = geom.Pt(3*mm/4, 3*mm/4)
	a.Fixed, b.Fixed = true, true

	fp, err := floorplan.New(p, geom.R(0, 0, mm, mm))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Route(fp, nl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalILVs == 0 {
		t.Error("a Si->CNFET net must consume an ILV")
	}
	if res.FailedNets != 0 {
		t.Errorf("failed nets: %d", res.FailedNets)
	}
}

func TestILVBlockedUnderRRAMArray(t *testing.T) {
	// Place an M3D RRAM bank covering the die center; ILV capacity under
	// its array must be zero, so a Si->CNFET net whose endpoints sit under
	// the array must detour (or fail if fully covered).
	p := tech.Default130()
	siLib, _ := cell.NewLibrary(p, tech.TierSiCMOS)
	cnLib, _ := cell.NewLibrary(p, tech.TierCNFET)

	bank, err := macro.NewRRAMBank(p, macro.RRAMBankSpec{CapacityBits: 4 << 20, WordBits: 64, Style: macro.Style3D})
	if err != nil {
		t.Fatal(err)
	}
	die := geom.R(0, 0, bank.Ref.Width*3, bank.Ref.Height*3)
	fp, err := floorplan.New(p, die)
	if err != nil {
		t.Fatal(err)
	}
	nl := netlist.New("x")
	bi := nl.AddMacro("bank", bank.Ref, tech.TierRRAM)
	if err := fp.PlaceMacro(bi, geom.Pt(bank.Ref.Width, bank.Ref.Height)); err != nil {
		t.Fatal(err)
	}

	a := nl.AddCell("a", siLib.MustPick(cell.Inv, 1))
	b := nl.AddCell("b", cnLib.MustPick(cell.Inv, 1))
	n := nl.AddNet("n", 0.1)
	nl.MustPin(a, "Y", true, 0, n)
	nl.MustPin(b, "A", false, b.Cell.InputCapF, n)
	// Both endpoints under the bank's array center.
	c := bi.Bounds(p).Center()
	a.Pos, b.Pos = c, c.Add(geom.Pt(2*p.SiteWidth, 0))
	a.Fixed, b.Fixed = true, true

	res, err := Route(fp, nl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	nr := res.Routes[n]
	if nr == nil {
		t.Fatal("net not routed")
	}
	// The route must run out from under the array before rising: its
	// wirelength is much larger than the pin separation.
	if nr.WLdbu <= bank.Ref.Width/2 {
		t.Errorf("expected a detour around the RRAM array, WL=%d", nr.WLdbu)
	}
	if nr.ILVs == 0 {
		t.Error("net still needs an ILV once outside the array")
	}
}

func TestRouteDeterministic(t *testing.T) {
	a := placedFixture(t, 1, 2)
	b := placedFixture(t, 1, 2)
	ra, err := Route(a.fp, a.nl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Route(b.fp, b.nl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ra.TotalWLdbu != rb.TotalWLdbu || ra.TotalVias != rb.TotalVias {
		t.Errorf("routing not deterministic: WL %d/%d vias %d/%d",
			ra.TotalWLdbu, rb.TotalWLdbu, ra.TotalVias, rb.TotalVias)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.GCellsX != 48 || o.MaxRipupRounds != 3 || o.MaxFanout != 64 {
		t.Errorf("defaults wrong: %+v", o)
	}
	if o.Workers != exec.DefaultWorkers() {
		t.Errorf("Workers default = %d, want exec.DefaultWorkers() = %d",
			o.Workers, exec.DefaultWorkers())
	}
	o2 := Options{GCellsX: 10, MaxRipupRounds: 1, MaxFanout: 5, Workers: 7}.withDefaults()
	if o2.GCellsX != 10 || o2.MaxRipupRounds != 1 || o2.MaxFanout != 5 || o2.Workers != 7 {
		t.Errorf("explicit options clobbered: %+v", o2)
	}
}

func TestCongestionGrid(t *testing.T) {
	fx := placedFixture(t, 1, 2)
	res, err := Route(fx.fp, fx.nl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Congestion == nil {
		t.Fatal("congestion map missing")
	}
	max := res.Congestion.Max()
	if max <= 0 {
		t.Error("a routed design must show utilization somewhere")
	}
	// No overflow edges => no cell above 1.0.
	if res.OverflowEdges == 0 && max > 1.0+1e-9 {
		t.Errorf("no overflow reported but congestion max = %.2f", max)
	}
}
