package route

import (
	"context"

	"m3d/internal/exec"
)

// The parallel router keeps the serial router's results bit-for-bit by
// splitting every round into speculate/commit phases:
//
//   - Speculation: a batch of nets is routed concurrently against the
//     *frozen* live usage arrays (no goroutine writes them during the
//     phase). Each net routes on a private searcher whose overlay models
//     the net's own intra-net commits, and the searcher logs the live
//     value of every usage word the search reads.
//   - Commit: the batch is walked in serial work-list order. A net whose
//     logged reads all still match the live arrays would have read — and
//     therefore computed — exactly the same thing under serial
//     execution (the search is deterministic and its entire input is
//     the read set), so its speculative paths commit as-is. A net whose
//     reads were invalidated by an earlier commit re-routes serially on
//     the live grid, exactly as the serial router would.
//
// Congestion history only changes between rounds (overflowCount runs
// serially), so within a round the read set is the usage words alone.
// By induction over the work list the live state after each commit
// equals the serial router's, which is what the differential oracle
// tests in parallel_equiv_test.go pin down.

// specBatchPerWorker sizes speculation batches: enough nets per barrier
// to amortize dispatch, few enough that stale-read conflicts stay rare.
const specBatchPerWorker = 8

// specRoute is one net's speculative outcome.
type specRoute struct {
	// ripped is meaningful in rip-up rounds: whether the overflow check
	// decided to re-route the net.
	ripped bool
	paths  [][]int
	failed int
	reads  []edgeRead
}

func routeParallel(g *grid, work []*routedNet, res *Result, opt Options) error {
	st := exec.Resolve(exec.WithWorkers(opt.Workers))
	pool := make(chan *searcher, opt.Workers)
	serial := newSearcher(g, false)
	stats := opt.Stats
	batch := opt.Workers * specBatchPerWorker

	runRound := func(round int) error {
		for lo := 0; lo < len(work); lo += batch {
			hi := lo + batch
			if hi > len(work) {
				hi = len(work)
			}
			if stats != nil {
				stats.Batches++
			}
			specs, err := exec.MapWith(st, work[lo:hi],
				func(_ context.Context, _ int, rn *routedNet) (specRoute, error) {
					var s *searcher
					select {
					case s = <-pool:
					default:
						s = newSearcher(g, true)
					}
					sp := s.speculate(rn, round)
					select {
					case pool <- s:
					default:
					}
					return sp, nil
				})
			if err != nil {
				return err
			}
			for i, sp := range specs {
				commitSpec(g, serial, work[lo+i], sp, round, res, stats)
			}
		}
		return nil
	}

	if err := runRound(0); err != nil {
		return err
	}
	for round := 0; round < opt.MaxRipupRounds; round++ {
		ov := g.overflowCount(true)
		res.RipupHistory = append(res.RipupHistory, ov)
		if ov == 0 {
			break
		}
		if err := runRound(round + 1); err != nil {
			return err
		}
	}
	return nil
}

// speculate runs one net's routing decision against the frozen live
// arrays, logging every live usage word it observed. Rip-up rounds
// (round > 0) first replay the serial driver's overflow check on the
// net's committed paths and only re-route when it trips — the check's
// reads are logged too, so commit-time validation covers the decision
// itself, not just the new paths.
func (s *searcher) speculate(rn *routedNet, round int) specRoute {
	s.beginNet()
	var sp specRoute
	if round > 0 {
		bad := false
		for _, path := range rn.paths {
			if s.pathOverflows(path) {
				bad = true
				break
			}
		}
		if !bad {
			sp.reads = s.readLog
			return sp
		}
		sp.ripped = true
		for _, path := range rn.paths {
			s.overlayPath(path, -1)
		}
	}
	sp.paths, sp.failed = s.routeNet(rn.net, nil)
	sp.reads = s.readLog
	return sp
}

// commitSpec applies one net's speculative outcome in serial work-list
// order: validated results commit as-is; invalidated nets re-run the
// serial algorithm on the live grid.
func commitSpec(g *grid, serial *searcher, rn *routedNet, sp specRoute, round int, res *Result, stats *Stats) {
	if g.readsValid(sp.reads) {
		if stats != nil {
			stats.SpecCommitted++
		}
		if round > 0 {
			if !sp.ripped {
				return
			}
			for _, path := range rn.paths {
				g.commitPathUsage(path, -1)
			}
		}
		for _, path := range sp.paths {
			g.commitPathUsage(path, +1)
		}
		rn.paths = sp.paths
		res.FailedNets += sp.failed
		return
	}

	if stats != nil {
		stats.SpecRerouted++
	}
	if round > 0 {
		bad := false
		for _, path := range rn.paths {
			if serial.pathOverflows(path) {
				bad = true
				break
			}
		}
		if !bad {
			return
		}
		for _, path := range rn.paths {
			g.commitPathUsage(path, -1)
		}
	}
	var failed int
	rn.paths, failed = serial.routeNet(rn.net, rn.paths[:0])
	res.FailedNets += failed
}

// readsValid reports whether every logged live usage word still holds
// the value the speculation observed.
func (g *grid) readsValid(reads []edgeRead) bool {
	n := g.nNodes()
	for _, r := range reads {
		e := int(r.e)
		var live int32
		switch {
		case e < n:
			live = g.useH[e]
		case e < 2*n:
			live = g.useV[e-n]
		default:
			live = g.useUp[e-2*n]
		}
		if live != r.val {
			return false
		}
	}
	return true
}
