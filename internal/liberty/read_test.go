package liberty

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"m3d/internal/cell"
	"m3d/internal/tech"
)

func TestReadRoundTrip(t *testing.T) {
	p := tech.Default130()
	lib, err := cell.NewLibrary(p, tech.TierSiCMOS)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, p, lib); err != nil {
		t.Fatal(err)
	}
	parsed, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Read(Write): %v", err)
	}
	if parsed.Name != lib.Name {
		t.Errorf("library name %q, want %q", parsed.Name, lib.Name)
	}
	if math.Abs(parsed.NomVoltage-p.VDD) > 0.005 {
		t.Errorf("nom_voltage %g, want %g", parsed.NomVoltage, p.VDD)
	}
	cells := lib.Cells()
	if len(parsed.Cells) != len(cells) {
		t.Fatalf("parsed %d cells, library has %d", len(parsed.Cells), len(cells))
	}
	byName := map[string]ParsedCell{}
	for _, c := range parsed.Cells {
		byName[c.Name] = c
	}
	for _, c := range cells {
		pc, ok := byName[c.Name]
		if !ok {
			t.Errorf("cell %s missing from parse", c.Name)
			continue
		}
		wantArea := float64(c.AreaNM2) / 1e6
		if math.Abs(pc.AreaUM2-wantArea) > 0.0005 {
			t.Errorf("cell %s: area %g, want %g", c.Name, pc.AreaUM2, wantArea)
		}
		wantLeak := c.LeakageW * 1e6
		if math.Abs(pc.LeakageUW-wantLeak) > 0.0005*math.Max(1, wantLeak) {
			t.Errorf("cell %s: leakage %g, want %g", c.Name, pc.LeakageUW, wantLeak)
		}
		var outs, ins int
		for _, pin := range pc.Pins {
			switch pin.Direction {
			case "output":
				outs++
				if pin.Function == "" {
					t.Errorf("cell %s pin %s: empty function", c.Name, pin.Name)
				}
			case "input":
				ins++
				if pin.CapacitancePF <= 0 {
					t.Errorf("cell %s pin %s: non-positive capacitance", c.Name, pin.Name)
				}
			default:
				t.Errorf("cell %s pin %s: direction %q", c.Name, pin.Name, pin.Direction)
			}
		}
		if outs != 1 {
			t.Errorf("cell %s: %d output pins", c.Name, outs)
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"library (a) {\n",                                    // unterminated library
		"library (a) {\n  cell (x) {\n}\n",                   // unterminated cell
		"}\n",                                                // unbalanced close
		"library (a) {\n  nom_voltage : volts;\n}\n",         // bad number
		"library (a) {\n  library (b) {\n  }\n}\n",           // nested library
		"cell (x) {\n  cell (y) {\n  }\n}\n",                 // nested cell
		"cell (x) {\n  pin (a) {\n    pin (b) {\n  }\n}\n}\n", // nested pin
		"pin (a) {\n}\n",                                     // pin outside cell
		"cell (x) {\n  area : wide;\n}\n",                    // bad area
		"cell (x) {\n  pin (a) {\n    capacitance : big;\n  }\n}\n", // bad cap
	}
	for _, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}
