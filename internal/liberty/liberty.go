// Package liberty writes the cell library in Liberty (.lib) format — the
// timing/power view consumed by synthesis and STA tools, complementing the
// LEF physical view. It emits the linear delay model our characterization
// uses (intrinsic + drive resistance), pin capacitances, internal energy,
// and leakage for every cell.
package liberty

import (
	"bufio"
	"fmt"
	"io"

	"m3d/internal/cell"
	"m3d/internal/tech"
)

// Write emits the library as Liberty text. Units: ns, pF, µW, µm².
func Write(w io.Writer, p *tech.PDK, lib *cell.Library) error {
	if lib == nil {
		return fmt.Errorf("liberty: nil library")
	}
	if err := p.Validate(); err != nil {
		return fmt.Errorf("liberty: invalid PDK: %w", err)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "library (%s) {\n", lib.Name)
	fmt.Fprintf(bw, "  delay_model : generic_cmos;\n")
	fmt.Fprintf(bw, "  time_unit : \"1ns\";\n")
	fmt.Fprintf(bw, "  capacitive_load_unit (1, pf);\n")
	fmt.Fprintf(bw, "  voltage_unit : \"1V\";\n")
	fmt.Fprintf(bw, "  leakage_power_unit : \"1uW\";\n")
	fmt.Fprintf(bw, "  nom_voltage : %.2f;\n\n", p.VDD)

	for _, c := range lib.Cells() {
		fmt.Fprintf(bw, "  cell (%s) {\n", c.Name)
		fmt.Fprintf(bw, "    area : %.3f;\n", float64(c.AreaNM2)/1e6) // µm²
		fmt.Fprintf(bw, "    cell_leakage_power : %.6f;\n", c.LeakageW*1e6)
		if c.Sequential {
			fmt.Fprintf(bw, "    ff (IQ, IQN) { clocked_on : \"CK\"; next_state : \"D\"; }\n")
			writeInPin(bw, "D", c.InputCapF, fmt.Sprintf("setup_rising : %.6f", c.SetupS*1e9))
			writeInPin(bw, "CK", c.InputCapF*0.8, "clock : true")
			writeOutPin(bw, "Q", "IQ", c)
		} else if c.Kind == cell.TieHi || c.Kind == cell.TieLo {
			fn := "0"
			if c.Kind == cell.TieHi {
				fn = "1"
			}
			writeOutPin(bw, "Y", fn, c)
		} else {
			names := []string{"A", "B", "C", "D"}
			for i := 0; i < c.NumInputs && i < len(names); i++ {
				writeInPin(bw, names[i], c.InputCapF, "")
			}
			writeOutPin(bw, "Y", function(c.Kind), c)
		}
		fmt.Fprintf(bw, "  }\n")
	}
	fmt.Fprintf(bw, "}\n")
	return bw.Flush()
}

func writeInPin(bw *bufio.Writer, name string, capF float64, extra string) {
	fmt.Fprintf(bw, "    pin (%s) {\n      direction : input;\n      capacitance : %.6f;\n", name, capF*1e12)
	if extra != "" {
		fmt.Fprintf(bw, "      %s;\n", extra)
	}
	fmt.Fprintf(bw, "    }\n")
}

func writeOutPin(bw *bufio.Writer, name, fn string, c *cell.Cell) {
	fmt.Fprintf(bw, "    pin (%s) {\n      direction : output;\n      function : \"%s\";\n", name, fn)
	// Linear delay model: intrinsic (ns) + resistance (ns/pF ≡ kΩ·0.69).
	fmt.Fprintf(bw, "      timing () {\n")
	fmt.Fprintf(bw, "        intrinsic_rise : %.6f;\n        intrinsic_fall : %.6f;\n",
		c.IntrinsicDelayS*1e9, c.IntrinsicDelayS*1e9)
	fmt.Fprintf(bw, "        rise_resistance : %.6f;\n        fall_resistance : %.6f;\n",
		0.69*c.DriveResOhm*1e-3, 0.69*c.DriveResOhm*1e-3)
	if c.Sequential {
		fmt.Fprintf(bw, "        related_pin : \"CK\";\n")
	}
	fmt.Fprintf(bw, "      }\n")
	fmt.Fprintf(bw, "      internal_power () { rise_power : %.6f; fall_power : %.6f; }\n",
		c.SwitchEnergyJ*1e12, c.SwitchEnergyJ*1e12)
	fmt.Fprintf(bw, "    }\n")
}

// function returns the Liberty boolean expression of a cell kind.
func function(k cell.Kind) string {
	switch k {
	case cell.Inv:
		return "!A"
	case cell.Buf, cell.ClkBuf:
		return "A"
	case cell.Nand2:
		return "!(A&B)"
	case cell.Nor2:
		return "!(A|B)"
	case cell.And2:
		return "A&B"
	case cell.Or2:
		return "A|B"
	case cell.Xor2:
		return "A^B"
	case cell.Mux2:
		return "(A&B)|(!A&C)"
	case cell.Aoi22:
		return "!((A&B)|(C&D))"
	case cell.Maj3:
		return "(A&B)|(B&C)|(A&C)"
	case cell.HalfAdder:
		return "A^B"
	case cell.FullAdder:
		return "A^B^C"
	default:
		return "A"
	}
}
