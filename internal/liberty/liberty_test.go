package liberty

import (
	"bytes"
	"strings"
	"testing"

	"m3d/internal/cell"
	"m3d/internal/tech"
)

func TestWriteLiberty(t *testing.T) {
	p := tech.Default130()
	lib, err := cell.NewLibrary(p, tech.TierSiCMOS)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, p, lib); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"library (m3d130_SiCMOS) {",
		"delay_model : generic_cmos;",
		"nom_voltage : 1.20;",
		"cell (NAND2_X1) {",
		"function : \"!(A&B)\";",
		"cell (DFF_X1) {",
		"clocked_on : \"CK\";",
		"setup_rising",
		"related_pin : \"CK\";",
		"cell (MAJ3_X1) {",
		"function : \"(A&B)|(B&C)|(A&C)\";",
		"cell (TIEHI_X1) {",
		"function : \"1\";",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
	// One cell block per library cell.
	if n := strings.Count(out, "  cell ("); n != lib.Size() {
		t.Errorf("cells = %d, want %d", n, lib.Size())
	}
	// Braces balance.
	if strings.Count(out, "{") != strings.Count(out, "}") {
		t.Error("unbalanced braces")
	}
}

func TestWriteLibertyValidation(t *testing.T) {
	p := tech.Default130()
	var buf bytes.Buffer
	if err := Write(&buf, p, nil); err == nil {
		t.Error("nil library should fail")
	}
	lib, err := cell.NewLibrary(p, tech.TierSiCMOS)
	if err != nil {
		t.Fatal(err)
	}
	bad := tech.Default130()
	bad.VDD = 0
	if err := Write(&buf, bad, lib); err == nil {
		t.Error("invalid PDK should fail")
	}
}

func TestFunctionExpressions(t *testing.T) {
	cases := map[cell.Kind]string{
		cell.Inv:       "!A",
		cell.Xor2:      "A^B",
		cell.Mux2:      "(A&B)|(!A&C)",
		cell.FullAdder: "A^B^C",
		cell.Maj3:      "(A&B)|(B&C)|(A&C)",
	}
	for k, want := range cases {
		if got := function(k); got != want {
			t.Errorf("function(%v) = %q, want %q", k, got, want)
		}
	}
}
