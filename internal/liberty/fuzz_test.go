package liberty

import (
	"bytes"
	"strings"
	"testing"

	"m3d/internal/cell"
	"m3d/internal/tech"
)

// FuzzRead feeds arbitrary text through the Liberty reader. The property
// under test: Read never panics — malformed input must come back as an
// error (or parse cleanly), never as a crash.
func FuzzRead(f *testing.F) {
	p := tech.Default130()
	if lib, err := cell.NewLibrary(p, tech.TierSiCMOS); err == nil {
		var buf bytes.Buffer
		if err := Write(&buf, p, lib); err == nil {
			f.Add(buf.String())
		}
	}
	f.Add("library (l) {\n  nom_voltage : 1.2;\n  cell (c) {\n    area : 1.0;\n    pin (a) {\n      direction : input;\n    }\n  }\n}\n")
	f.Add("library (l) {\n")
	f.Add("}\n")
	f.Add("cell () { ff (IQ, IQN) { clocked_on : \"CK\"; } }\n")
	f.Add("a : b; } {\n")

	f.Fuzz(func(t *testing.T, data string) {
		parsed, err := Read(strings.NewReader(data))
		if err == nil && parsed == nil {
			t.Fatal("nil parse with nil error")
		}
	})
}
