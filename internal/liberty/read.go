package liberty

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParsedPin is one pin group of a Liberty cell.
type ParsedPin struct {
	Name          string
	Direction     string
	Function      string
	CapacitancePF float64
}

// ParsedCell is one cell group.
type ParsedCell struct {
	Name      string
	AreaUM2   float64
	LeakageUW float64
	Pins      []ParsedPin
}

// Parsed is the reader's view of a Liberty stream: the subset Write
// produces (library → cells → pins with the attributes our flow uses).
type Parsed struct {
	Name       string
	NomVoltage float64
	Cells      []ParsedCell
}

// Read parses the Liberty subset this package writes. Unknown groups and
// attributes are skipped; structural errors (unbalanced braces, malformed
// known attributes) are returned as errors — the parser never panics.
func Read(r io.Reader) (*Parsed, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	out := &Parsed{}
	// Group stack: what each open '{' belongs to.
	type frame struct{ kind, name string } // kind: library | cell | pin | other
	var stack []frame
	var cell *ParsedCell
	var pin *ParsedPin
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "//") || strings.HasPrefix(line, "/*") {
			continue
		}
		opens := strings.Count(line, "{")
		closes := strings.Count(line, "}")
		switch {
		case opens == 1 && closes == 0:
			kind, name := groupHeader(line)
			switch kind {
			case "library":
				if len(stack) != 0 {
					return nil, fmt.Errorf("liberty: line %d: nested library group", lineNo)
				}
				out.Name = name
			case "cell":
				if cell != nil {
					return nil, fmt.Errorf("liberty: line %d: cell %q opened inside cell %q", lineNo, name, cell.Name)
				}
				cell = &ParsedCell{Name: name}
			case "pin":
				if cell == nil {
					return nil, fmt.Errorf("liberty: line %d: pin %q outside a cell", lineNo, name)
				}
				if pin != nil {
					return nil, fmt.Errorf("liberty: line %d: pin %q opened inside pin %q", lineNo, name, pin.Name)
				}
				pin = &ParsedPin{Name: name}
			}
			stack = append(stack, frame{kind, name})
		case closes > opens:
			for i := 0; i < closes-opens; i++ {
				if len(stack) == 0 {
					return nil, fmt.Errorf("liberty: line %d: unbalanced '}'", lineNo)
				}
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				switch top.kind {
				case "pin":
					cell.Pins = append(cell.Pins, *pin)
					pin = nil
				case "cell":
					out.Cells = append(out.Cells, *cell)
					cell = nil
				}
			}
		case opens == closes:
			// Balanced one-line group such as `timing () { ... }` or
			// `ff (IQ, IQN) { ... }`: self-contained, nothing to track.
			if opens > 0 {
				continue
			}
			if err := attribute(out, cell, pin, line, lineNo); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("liberty: line %d: unsupported brace layout %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("liberty: %w", err)
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("liberty: unterminated group %q", stack[len(stack)-1].kind)
	}
	return out, nil
}

// groupHeader splits `kind (name) {` into its kind and name.
func groupHeader(line string) (kind, name string) {
	open := strings.IndexByte(line, '(')
	if open < 0 {
		return strings.TrimSpace(strings.TrimSuffix(line, "{")), ""
	}
	kind = strings.TrimSpace(line[:open])
	rest := line[open+1:]
	if close := strings.IndexByte(rest, ')'); close >= 0 {
		name = strings.TrimSpace(rest[:close])
	}
	return kind, name
}

// attribute applies one `key : value;` line to the innermost open group.
func attribute(out *Parsed, cell *ParsedCell, pin *ParsedPin, line string, lineNo int) error {
	colon := strings.IndexByte(line, ':')
	if colon < 0 {
		return nil // statement we do not model (e.g. bare identifiers)
	}
	key := strings.TrimSpace(line[:colon])
	val := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(line[colon+1:]), ";"))
	num := func() (float64, error) {
		v, err := strconv.ParseFloat(strings.Trim(val, `"`), 64)
		if err != nil {
			return 0, fmt.Errorf("liberty: line %d: bad numeric value %q for %s", lineNo, val, key)
		}
		return v, nil
	}
	var err error
	switch key {
	case "nom_voltage":
		out.NomVoltage, err = num()
	case "area":
		if cell != nil && pin == nil {
			cell.AreaUM2, err = num()
		}
	case "cell_leakage_power":
		if cell != nil && pin == nil {
			cell.LeakageUW, err = num()
		}
	case "direction":
		if pin != nil {
			pin.Direction = val
		}
	case "function":
		if pin != nil {
			pin.Function = strings.Trim(val, `"`)
		}
	case "capacitance":
		if pin != nil {
			pin.CapacitancePF, err = num()
		}
	}
	return err
}
