// Package synth stands in for RTL synthesis (the paper uses Synopsys DC):
// it elaborates the accelerator's RTL-level components — MAC processing
// elements, systolic arrays, registers, controllers, memory-bank peripheral
// logic — directly into gate-level netlists mapped onto the cell library.
//
// The generators produce structurally realistic logic (array multipliers
// built from partial-product gates and carry-save adders, ripple
// accumulators, register pipelines, nearest-neighbour systolic links), so
// downstream placement, routing, timing, and power see representative net
// topologies and cell populations.
package synth

import (
	"fmt"

	"m3d/internal/cell"
	"m3d/internal/netlist"
)

// Builder wraps a netlist under construction with its target library and a
// running name scope for unique instance names.
type Builder struct {
	NL  *netlist.Netlist
	Lib *cell.Library
	// Clk is the clock net all sequential cells attach to.
	Clk *netlist.Net

	seq  int
	zero *netlist.Net
}

// NewBuilder starts building into a fresh netlist with a clock net driven
// by a root clock buffer.
func NewBuilder(name string, lib *cell.Library) *Builder {
	nl := netlist.New(name)
	b := &Builder{NL: nl, Lib: lib}
	clk := nl.AddNet("clk", 2.0) // two transitions per cycle
	clk.Clock = true
	root := nl.AddCell("clkroot", lib.MustPick(cell.ClkBuf, 8))
	nl.MustPin(root, "Y", true, 0, clk)
	// The root buffer's input: tie cell keeps the netlist closed.
	tie := nl.AddCell("clksrc", lib.MustPick(cell.TieHi, 1))
	src := nl.AddNet("clksrc_n", 0)
	nl.MustPin(tie, "Y", true, 0, src)
	nl.MustPin(root, "A", false, root.Cell.InputCapF, src)
	b.Clk = clk
	return b
}

func (b *Builder) uname(prefix string) string {
	b.seq++
	return fmt.Sprintf("%s_%d", prefix, b.seq)
}

// net creates a fresh signal net with a default activity factor.
func (b *Builder) net(prefix string, act float64) *netlist.Net {
	return b.NL.AddNet(b.uname(prefix), act)
}

// gate instantiates a cell of kind k at the given drive, connects inputs,
// and returns the output net it drives.
func (b *Builder) gate(prefix string, k cell.Kind, drive int, act float64, inputs ...*netlist.Net) *netlist.Net {
	c := b.Lib.MustPick(k, drive)
	inst := b.NL.AddCell(b.uname(prefix), c)
	names := []string{"A", "B", "C", "D"}
	for i, in := range inputs {
		b.NL.MustPin(inst, names[i], false, c.InputCapF, in)
	}
	out := b.net(prefix+"_y", act)
	b.NL.MustPin(inst, "Y", true, 0, out)
	return out
}

// dff instantiates a flip-flop clocked by b.Clk with data input d, returning
// the Q net.
func (b *Builder) dff(prefix string, d *netlist.Net, act float64) *netlist.Net {
	c := b.Lib.MustPick(cell.DFF, 1)
	inst := b.NL.AddCell(b.uname(prefix), c)
	b.NL.MustPin(inst, "D", false, c.InputCapF, d)
	b.NL.MustPin(inst, "CK", false, c.InputCapF*0.8, b.Clk)
	q := b.net(prefix+"_q", act)
	b.NL.MustPin(inst, "Q", true, 0, q)
	return q
}

// Input creates a primary-input stub: a buffer driven by a tie cell, so the
// netlist remains structurally closed. Returns the usable input net.
func (b *Builder) Input(prefix string, act float64) *netlist.Net {
	tie := b.NL.AddCell(b.uname(prefix+"_pad"), b.Lib.MustPick(cell.TieLo, 1))
	raw := b.net(prefix+"_pad_n", act)
	b.NL.MustPin(tie, "Y", true, 0, raw)
	return b.gate(prefix+"_ibuf", cell.Buf, 2, act, raw)
}

// Sink terminates a net in a register so it is observed (keeps Check happy
// and models output capture).
func (b *Builder) Sink(prefix string, n *netlist.Net) {
	b.dffSinkOnly(prefix, n)
}

func (b *Builder) dffSinkOnly(prefix string, d *netlist.Net) {
	c := b.Lib.MustPick(cell.DFF, 1)
	inst := b.NL.AddCell(b.uname(prefix+"_of"), c)
	b.NL.MustPin(inst, "D", false, c.InputCapF, d)
	b.NL.MustPin(inst, "CK", false, c.InputCapF*0.8, b.Clk)
	// Q is intentionally trimmed (register observes the net; its output
	// feeds chip IO modeled elsewhere). Netlist.Check requires driven,
	// sunk nets — a Q with no net is fine (pin unconnected).
}

// Bus is an ordered set of nets (LSB first).
type Bus []*netlist.Net

// InputBus creates n primary-input stubs.
func (b *Builder) InputBus(prefix string, n int, act float64) Bus {
	out := make(Bus, n)
	for i := range out {
		out[i] = b.Input(fmt.Sprintf("%s%d", prefix, i), act)
	}
	return out
}

// SinkBus terminates every net of a bus.
func (b *Builder) SinkBus(prefix string, bus Bus) {
	for i, n := range bus {
		b.Sink(fmt.Sprintf("%s%d", prefix, i), n)
	}
}

// Register builds an n-bit register stage and returns the Q bus.
func (b *Builder) Register(prefix string, d Bus, act float64) Bus {
	q := make(Bus, len(d))
	for i, n := range d {
		q[i] = b.dff(fmt.Sprintf("%s%d", prefix, i), n, act)
	}
	return q
}

// FullAdd builds a full adder returning (sum, carry). The library FA cell
// computes the three-input parity; the carry is a majority gate — both
// functionally exact, so generated datapaths simulate correctly.
func (b *Builder) FullAdd(prefix string, a, c, ci *netlist.Net, act float64) (sum, co *netlist.Net) {
	sum = b.gate(prefix+"_s", cell.FullAdder, 1, act, a, c, ci)
	co = b.gate(prefix+"_c", cell.Maj3, 1, act*0.9, a, c, ci)
	return sum, co
}

// Adder builds an n-bit ripple-carry adder; returns the sum bus (n+1 bits
// including carry out).
func (b *Builder) Adder(prefix string, x, y Bus, act float64) Bus {
	if len(x) != len(y) {
		panic(fmt.Sprintf("synth: adder width mismatch %d vs %d", len(x), len(y)))
	}
	n := len(x)
	out := make(Bus, 0, n+1)
	carry := b.gate(prefix+"_c0", cell.And2, 1, act, x[0], y[0])
	out = append(out, b.gate(prefix+"_s0", cell.Xor2, 1, act, x[0], y[0]))
	for i := 1; i < n; i++ {
		s, c := b.FullAdd(fmt.Sprintf("%s_b%d", prefix, i), x[i], y[i], carry, act)
		out = append(out, s)
		carry = c
	}
	return append(out, carry)
}

// Zero returns the builder's constant-0 net (a shared TieLo), created on
// first use.
func (b *Builder) Zero() *netlist.Net {
	if b.zero == nil {
		tie := b.NL.AddCell(b.uname("const0"), b.Lib.MustPick(cell.TieLo, 1))
		b.zero = b.net("zero", 0)
		b.NL.MustPin(tie, "Y", true, 0, b.zero)
	}
	return b.zero
}

// Multiplier builds an unsigned aBits×bBits array multiplier (partial
// products + ripple-carry rows with an exact carry chain) and returns the
// full-width product bus (len(a)+len(bb) bits).
func (b *Builder) Multiplier(prefix string, a, bb Bus, act float64) Bus {
	n := len(a)
	// Row 0 seeds the running sum.
	acc := make(Bus, n)
	for i := range a {
		acc[i] = b.gate(fmt.Sprintf("%s_pp0_%d", prefix, i), cell.And2, 1, act, a[i], bb[0])
	}
	product := Bus{acc[0]}
	acc = append(acc[1:], b.Zero()) // running sum stays n wide

	for j := 1; j < len(bb); j++ {
		var carry *netlist.Net
		next := make(Bus, 0, n)
		for i := 0; i < n; i++ {
			pp := b.gate(fmt.Sprintf("%s_pp%d_%d", prefix, j, i), cell.And2, 1, act, a[i], bb[j])
			if carry == nil {
				next = append(next, b.gate(fmt.Sprintf("%s_r%d_s%d", prefix, j, i), cell.Xor2, 1, act, acc[i], pp))
				carry = b.gate(fmt.Sprintf("%s_r%d_c%d", prefix, j, i), cell.And2, 1, act, acc[i], pp)
				continue
			}
			s, c := b.FullAdd(fmt.Sprintf("%s_r%d_b%d", prefix, j, i), acc[i], pp, carry, act)
			next = append(next, s)
			carry = c
		}
		product = append(product, next[0])
		acc = append(next[1:], carry)
	}
	return append(product, acc...)
}

// MACResult describes a generated processing element.
type MACResult struct {
	// ActOut is the registered activation forwarded to the next PE.
	ActOut Bus
	// PSumOut is the registered partial-sum output.
	PSumOut Bus
}

// MAC builds one weight-stationary processing element: a weight register,
// an activation pass-through register, a wBits×aBits multiplier, and an
// accBits accumulator. The weight-load port is an input stub.
func (b *Builder) MAC(prefix string, actIn, psumIn Bus, wBits int, act float64) MACResult {
	wIn := make(Bus, wBits)
	for i := range wIn {
		wIn[i] = b.Input(fmt.Sprintf("%s_w%d", prefix, i), 0.01)
	}
	return b.MACWithWeights(prefix, actIn, psumIn, wIn, act)
}

// MACWithWeights is MAC with an explicit weight-load bus (used by
// testbenches that drive the weights).
func (b *Builder) MACWithWeights(prefix string, actIn, psumIn, wIn Bus, act float64) MACResult {
	// Stationary weight register (loaded rarely; low activity).
	wReg := b.Register(prefix+"_wr", wIn, 0.01)

	actReg := b.Register(prefix+"_ar", actIn, act)
	prod := b.Multiplier(prefix+"_mul", actReg, wReg, act)
	// Align the unsigned product to the accumulator width (zero-extend).
	accW := len(psumIn)
	sumIn := make(Bus, accW)
	for i := range sumIn {
		if i < len(prod) {
			sumIn[i] = prod[i]
		} else {
			sumIn[i] = b.Zero()
		}
	}
	// Upper product bits beyond the accumulator width are observed so the
	// netlist stays closed (they model saturation/overflow flags).
	for i := accW; i < len(prod); i++ {
		b.Sink(fmt.Sprintf("%s_povf%d", prefix, i), prod[i])
	}
	total := b.Adder(prefix+"_acc", sumIn, psumIn, act)
	for i := accW; i < len(total); i++ {
		b.Sink(fmt.Sprintf("%s_covf%d", prefix, i), total[i])
	}
	psumReg := b.Register(prefix+"_pr", total[:accW], act)
	return MACResult{ActOut: actReg, PSumOut: psumReg}
}

// SystolicSpec sizes a systolic array.
type SystolicSpec struct {
	Rows, Cols int
	ActBits    int
	WeightBits int
	AccBits    int
	// Activity is the datapath switching activity.
	Activity float64
}

// SystolicResult reports the generated array.
type SystolicResult struct {
	Spec SystolicSpec
	// FirstCell / LastCell delimit the instance ID range of the array
	// (inclusive/exclusive) for area accounting.
	FirstCell, LastCell int
}

// Systolic builds a Rows×Cols weight-stationary systolic array: activations
// stream left-to-right, partial sums top-to-bottom, exactly the case-study
// CS organization.
func (b *Builder) Systolic(prefix string, spec SystolicSpec) SystolicResult {
	first := len(b.NL.Instances)
	// Activation inputs per row, partial-sum seeds per column.
	psums := make([]Bus, spec.Cols)
	for c := 0; c < spec.Cols; c++ {
		psums[c] = b.InputBus(fmt.Sprintf("%s_ps_c%d_", prefix, c), spec.AccBits, 0.05)
	}
	for r := 0; r < spec.Rows; r++ {
		actBus := b.InputBus(fmt.Sprintf("%s_act_r%d_", prefix, r), spec.ActBits, spec.Activity)
		for c := 0; c < spec.Cols; c++ {
			res := b.MAC(fmt.Sprintf("%s_pe_r%dc%d", prefix, r, c), actBus, psums[c], spec.WeightBits, spec.Activity)
			actBus = res.ActOut
			psums[c] = res.PSumOut
		}
		b.SinkBus(fmt.Sprintf("%s_act_out_r%d_", prefix, r), actBus)
	}
	for c := 0; c < spec.Cols; c++ {
		b.SinkBus(fmt.Sprintf("%s_ps_out_c%d_", prefix, c), psums[c])
	}
	return SystolicResult{Spec: spec, FirstCell: first, LastCell: len(b.NL.Instances)}
}

// FSM builds a control finite-state machine with the given state-register
// width and a blob of next-state/output logic proportional to complexity.
func (b *Builder) FSM(prefix string, stateBits, complexity int) {
	state := make(Bus, stateBits)
	for i := range state {
		state[i] = b.Input(fmt.Sprintf("%s_st%d", prefix, i), 0.15)
	}
	cur := b.Register(prefix+"_sr", state, 0.15)
	// Next-state logic: layered random-ish gate network over the state.
	sig := cur
	for l := 0; l < complexity; l++ {
		next := make(Bus, len(sig))
		for i := range sig {
			j := (i + l + 1) % len(sig)
			k := cell.Nand2
			switch (i + l) % 4 {
			case 1:
				k = cell.Nor2
			case 2:
				k = cell.Aoi22
			case 3:
				k = cell.Mux2
			}
			if k == cell.Aoi22 {
				m := (i + l + 3) % len(sig)
				q := (i + l + 5) % len(sig)
				next[i] = b.gate(fmt.Sprintf("%s_l%d_g%d", prefix, l, i), k, 1, 0.15, sig[i], sig[j], sig[m], sig[q])
			} else if k == cell.Mux2 {
				m := (i + l + 3) % len(sig)
				next[i] = b.gate(fmt.Sprintf("%s_l%d_g%d", prefix, l, i), k, 1, 0.15, sig[i], sig[j], sig[m])
			} else {
				next[i] = b.gate(fmt.Sprintf("%s_l%d_g%d", prefix, l, i), k, 1, 0.15, sig[i], sig[j])
			}
		}
		sig = next
	}
	b.SinkBus(prefix+"_out", sig)
}

// BankPeriph builds the Si CMOS peripheral logic for one RRAM bank: address
// decoder, word/bit-line control, and an access sequencer. This logic stays
// on the Si tier in both 2D and M3D designs (the paper leaves power-hungry
// peripherals in Si CMOS — Obs. 2).
func (b *Builder) BankPeriph(prefix string, addrBits int) {
	addr := b.InputBus(prefix+"_a", addrBits, 0.2)
	reg := b.Register(prefix+"_ar", addr, 0.2)
	// Decoder tree: pairwise ANDs, log-depth.
	level := reg
	for len(level) > 1 {
		next := make(Bus, 0, (len(level)+1)/2)
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, b.gate(fmt.Sprintf("%s_dec%d", prefix, i), cell.And2, 2, 0.2, level[i], level[i+1]))
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	b.Sink(prefix+"_wl", level[0])
	b.FSM(prefix+"_seq", 6, 2)
}
