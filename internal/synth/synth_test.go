package synth

import (
	"testing"

	"m3d/internal/cell"
	"m3d/internal/tech"
)

func newTB(t *testing.T) *Builder {
	t.Helper()
	lib, err := cell.NewLibrary(tech.Default130(), tech.TierSiCMOS)
	if err != nil {
		t.Fatal(err)
	}
	return NewBuilder("t", lib)
}

func TestBuilderClock(t *testing.T) {
	b := newTB(t)
	if b.Clk == nil || !b.Clk.Clock {
		t.Fatal("builder must provide a clock net")
	}
	// Attach one FF so the clock net has a sink, then the netlist closes.
	d := b.Input("d", 0.1)
	q := b.Register("r", Bus{d}, 0.1)
	b.SinkBus("o", q)
	if err := b.NL.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestInputAndSinkClose(t *testing.T) {
	b := newTB(t)
	in := b.InputBus("x", 4, 0.2)
	if len(in) != 4 {
		t.Fatalf("bus width %d", len(in))
	}
	b.SinkBus("y", in)
	if err := b.NL.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestAdderStructure(t *testing.T) {
	b := newTB(t)
	x := b.InputBus("x", 8, 0.3)
	y := b.InputBus("y", 8, 0.3)
	sum := b.Adder("add", x, y, 0.3)
	if len(sum) != 9 {
		t.Fatalf("8-bit adder must produce 9 bits, got %d", len(sum))
	}
	b.SinkBus("s", sum)
	if err := b.NL.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	st := b.NL.ComputeStats(tech.Default130())
	// 7 FA stages of 2 gates + 2 gates for bit 0 = 16 combinational gates
	// minimum, plus IO stubs.
	if st.Cells < 16 {
		t.Errorf("adder too small: %d cells", st.Cells)
	}
}

func TestAdderWidthMismatchPanics(t *testing.T) {
	b := newTB(t)
	x := b.InputBus("x", 4, 0.3)
	y := b.InputBus("y", 5, 0.3)
	defer func() {
		if recover() == nil {
			t.Error("width mismatch should panic")
		}
	}()
	b.Adder("bad", x, y, 0.3)
}

func TestMultiplierCloses(t *testing.T) {
	b := newTB(t)
	x := b.InputBus("x", 8, 0.3)
	y := b.InputBus("y", 8, 0.3)
	p := b.Multiplier("mul", x, y, 0.3)
	if len(p) != 16 {
		t.Fatalf("8x8 multiplier should give 16 product bits, got %d", len(p))
	}
	b.SinkBus("p", p)
	if err := b.NL.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestMACCloses(t *testing.T) {
	b := newTB(t)
	act := b.InputBus("a", 8, 0.3)
	psum := b.InputBus("p", 24, 0.3)
	res := b.MAC("pe", act, psum, 8, 0.3)
	if len(res.ActOut) != 8 || len(res.PSumOut) != 24 {
		t.Fatalf("MAC bus widths wrong: act %d psum %d", len(res.ActOut), len(res.PSumOut))
	}
	b.SinkBus("ao", res.ActOut)
	b.SinkBus("po", res.PSumOut)
	if err := b.NL.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestSystolicArray(t *testing.T) {
	b := newTB(t)
	res := b.Systolic("cs", SystolicSpec{
		Rows: 2, Cols: 2, ActBits: 8, WeightBits: 8, AccBits: 24, Activity: 0.25,
	})
	if err := b.NL.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if res.LastCell <= res.FirstCell {
		t.Fatal("array produced no cells")
	}
	st := b.NL.ComputeStats(tech.Default130())
	// Each 8x8 MAC with 24b accumulator is a few hundred cells; 4 PEs.
	if st.Cells < 800 {
		t.Errorf("2x2 array suspiciously small: %d cells", st.Cells)
	}
	if st.Sequential < 4*(8+8+24) {
		t.Errorf("sequential count %d below register minimum", st.Sequential)
	}
}

func TestSystolicScalesQuadratically(t *testing.T) {
	count := func(rows, cols int) int {
		b := newTB(t)
		b.Systolic("cs", SystolicSpec{Rows: rows, Cols: cols, ActBits: 8, WeightBits: 8, AccBits: 24, Activity: 0.25})
		return len(b.NL.Instances)
	}
	c2 := count(2, 2)
	c4 := count(4, 4)
	ratio := float64(c4) / float64(c2)
	if ratio < 3.2 || ratio > 4.8 {
		t.Errorf("4x4 vs 2x2 instance ratio = %.2f, want ≈4", ratio)
	}
}

func TestFSMCloses(t *testing.T) {
	b := newTB(t)
	b.FSM("ctl", 8, 3)
	if err := b.NL.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestBankPeriphCloses(t *testing.T) {
	b := newTB(t)
	b.BankPeriph("bank0", 16)
	if err := b.NL.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	st := b.NL.ComputeStats(tech.Default130())
	if st.Cells < 60 {
		t.Errorf("bank peripheral logic too small: %d cells", st.Cells)
	}
}

func TestUniqueInstanceNames(t *testing.T) {
	b := newTB(t)
	b.Systolic("cs", SystolicSpec{Rows: 2, Cols: 1, ActBits: 4, WeightBits: 4, AccBits: 12, Activity: 0.2})
	seen := make(map[string]bool, len(b.NL.Instances))
	for _, inst := range b.NL.Instances {
		if seen[inst.Name] {
			t.Fatalf("duplicate instance name %q", inst.Name)
		}
		seen[inst.Name] = true
	}
}

func TestAllSequentialOnClock(t *testing.T) {
	b := newTB(t)
	b.Systolic("cs", SystolicSpec{Rows: 1, Cols: 2, ActBits: 4, WeightBits: 4, AccBits: 12, Activity: 0.2})
	for _, inst := range b.NL.Instances {
		if inst.IsMacro() || !inst.Cell.Sequential {
			continue
		}
		onClk := false
		for _, p := range inst.Pins() {
			if p.Net == b.Clk {
				onClk = true
			}
		}
		if !onClk {
			t.Fatalf("sequential cell %s not on the clock", inst.Name)
		}
	}
}
