package sim

import (
	"math/rand"
	"testing"

	"m3d/internal/synth"
)

func TestStuckAtChangesAdderOutput(t *testing.T) {
	lib := newLib(t)
	b := synth.NewBuilder("add", lib)
	x := b.InputBus("x", 8, 0.3)
	y := b.InputBus("y", 8, 0.3)
	sum := b.Adder("add", x, y, 0.3)
	b.SinkBus("s", sum)
	s, err := New(b.NL)
	if err != nil {
		t.Fatal(err)
	}
	s.ForceBus(x, 100)
	s.ForceBus(y, 55)
	if got := s.ReadBus(sum); got != 155 {
		t.Fatalf("golden sum = %d", got)
	}
	// Stuck-at-0 on the LSB sum net flips the output.
	f := s.InjectStuckAt(sum[0], false)
	if got := s.ReadBus(sum); got != 154 {
		t.Fatalf("faulted sum = %d, want 154", got)
	}
	s.Clear(f)
	if got := s.ReadBus(sum); got != 155 {
		t.Fatalf("after clear, sum = %d, want 155", got)
	}
}

func TestStuckAtCampaignCoverage(t *testing.T) {
	lib := newLib(t)
	b := synth.NewBuilder("mul", lib)
	x := b.InputBus("x", 6, 0.3)
	y := b.InputBus("y", 6, 0.3)
	prod := b.Multiplier("mul", x, y, 0.3)
	b.SinkBus("p", prod)
	s, err := New(b.NL)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	res, err := RunStuckAtCampaign(s, rng, 150,
		func(s *Simulator) {
			s.ForceBus(x, 63)
			s.ForceBus(y, 63) // all-ones stimulus exercises most of the array
		},
		func(s *Simulator) uint64 { return s.ReadBus(prod) })
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected < 100 {
		t.Fatalf("campaign too small: %d faults", res.Injected)
	}
	// The all-ones pattern propagates most internal nodes to the product:
	// expect substantial (not total) coverage.
	if res.Coverage() < 0.4 {
		t.Errorf("coverage %.2f suspiciously low", res.Coverage())
	}
	if res.Coverage() > 1.0 {
		t.Errorf("coverage %.2f impossible", res.Coverage())
	}
}

func TestCampaignValidation(t *testing.T) {
	lib := newLib(t)
	b := synth.NewBuilder("v", lib)
	in := b.Input("x", 0.3)
	b.Sink("y", in)
	s, err := New(b.NL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunStuckAtCampaign(s, nil, 10, func(*Simulator) {}, func(*Simulator) uint64 { return 0 }); err == nil {
		t.Error("nil RNG should fail")
	}
	if _, err := RunStuckAtCampaign(s, rand.New(rand.NewSource(1)), 10, nil, nil); err == nil {
		t.Error("nil callbacks should fail")
	}
}

func TestResetClearsState(t *testing.T) {
	lib := newLib(t)
	b := synth.NewBuilder("r", lib)
	d := b.InputBus("d", 4, 0.3)
	q := b.Register("r", d, 0.3)
	b.SinkBus("o", q)
	s, err := New(b.NL)
	if err != nil {
		t.Fatal(err)
	}
	s.ForceBus(d, 0xF)
	s.Step()
	if s.ReadBus(q) != 0xF {
		t.Fatal("register did not load")
	}
	s.Reset()
	if s.ReadBus(q) != 0 {
		t.Error("reset should clear register state")
	}
	// Forced inputs survive reset.
	if s.ReadBus(d) != 0xF {
		t.Error("forced nets must survive reset")
	}
}
