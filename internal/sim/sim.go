// Package sim is a gate-level logic simulator for the project's netlists:
// two-valued, cycle-based, with exact truth functions for every library
// cell. It exists to *functionally verify* the synthesis generators — the
// array multipliers, adders, registers, and systolic pipelines that the
// physical-design flow implements are checked to compute the right values,
// not just to have plausible structure.
package sim

import (
	"fmt"

	"m3d/internal/cell"
	"m3d/internal/netlist"
)

// Simulator evaluates a netlist cycle by cycle.
type Simulator struct {
	nl *netlist.Netlist
	// value holds the current logic value of each net (by net ID).
	value []bool
	// forced marks nets whose value is pinned by the testbench.
	forced []bool
	// state holds each DFF's current output value (by instance ID).
	state []bool
	// order caches a combinational evaluation order (instance IDs).
	order []int
}

// New builds a simulator. The netlist must be structurally sound and
// combinationally acyclic (netlist.Check is run; macros are not simulated —
// their outputs read as 0 unless forced).
func New(nl *netlist.Netlist) (*Simulator, error) {
	if err := nl.Check(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	s := &Simulator{
		nl:     nl,
		value:  make([]bool, len(nl.Nets)),
		forced: make([]bool, len(nl.Nets)),
		state:  make([]bool, len(nl.Instances)),
	}
	if err := s.buildOrder(); err != nil {
		return nil, err
	}
	s.Settle()
	return s, nil
}

// buildOrder topologically sorts combinational cells (Kahn's algorithm);
// sequential cells, macros, and tie cells are sources.
func (s *Simulator) buildOrder() error {
	nl := s.nl
	pending := make([]int, len(nl.Instances))
	var queue []int
	isSource := func(inst *netlist.Instance) bool {
		if inst.IsMacro() {
			return true
		}
		k := inst.Cell.Kind
		return inst.Cell.Sequential || k == cell.TieHi || k == cell.TieLo
	}
	for i, inst := range nl.Instances {
		if isSource(inst) {
			pending[i] = -1
			continue
		}
		n := 0
		for _, p := range inst.Pins() {
			if !p.IsOutput && p.Net != nil && !p.Net.Clock {
				n++
			}
		}
		pending[i] = n
		if n == 0 {
			queue = append(queue, i)
		}
	}
	// Seed propagation from sources.
	propagate := func(inst *netlist.Instance) {
		for _, op := range inst.Pins() {
			if !op.IsOutput || op.Net == nil || op.Net.Clock {
				continue
			}
			for _, sink := range op.Net.Sinks {
				si := sink.Inst.ID
				if pending[si] < 0 {
					continue
				}
				pending[si]--
				if pending[si] == 0 {
					pending[si] = -2 // scheduled
					queue = append(queue, si)
				}
			}
		}
	}
	for i, inst := range nl.Instances {
		if pending[i] == -1 {
			propagate(inst)
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		s.order = append(s.order, id)
		propagate(nl.Instances[id])
	}
	// Anything still pending > 0 is in a combinational cycle.
	for i, p := range pending {
		if p > 0 {
			return fmt.Errorf("sim: combinational cycle through %s", nl.Instances[i].Name)
		}
	}
	return nil
}

// Force pins a net to a value (overriding its driver) until Release.
func (s *Simulator) Force(n *netlist.Net, v bool) {
	s.forced[n.ID] = true
	s.value[n.ID] = v
}

// Release removes a Force.
func (s *Simulator) Release(n *netlist.Net) { s.forced[n.ID] = false }

// Value reads a net's current value.
func (s *Simulator) Value(n *netlist.Net) bool { return s.value[n.ID] }

// inputVals gathers an instance's input pin values in pin order (clock
// pins excluded).
func (s *Simulator) inputVals(inst *netlist.Instance, buf []bool) []bool {
	buf = buf[:0]
	for _, p := range inst.Pins() {
		if p.IsOutput || p.Net == nil || p.Net.Clock {
			continue
		}
		buf = append(buf, s.value[p.Net.ID])
	}
	return buf
}

func at(in []bool, i int) bool {
	if i < len(in) {
		return in[i]
	}
	return false
}

// evalKind computes a combinational cell's output from its inputs.
func evalKind(k cell.Kind, in []bool) bool {
	a, b, c, d := at(in, 0), at(in, 1), at(in, 2), at(in, 3)
	switch k {
	case cell.Inv:
		return !a
	case cell.Buf, cell.ClkBuf:
		return a
	case cell.Nand2:
		return !(a && b)
	case cell.Nor2:
		return !(a || b)
	case cell.And2:
		return a && b
	case cell.Or2:
		return a || b
	case cell.Xor2:
		return a != b
	case cell.Mux2: // A selects between B (A=1) and C (A=0)
		if a {
			return b
		}
		return c
	case cell.Aoi22:
		return !((a && b) || (c && d))
	case cell.Maj3:
		return (a && b) || (b && c) || (a && c)
	case cell.HalfAdder:
		return a != b
	case cell.FullAdder:
		return (a != b) != c
	case cell.TieHi:
		return true
	case cell.TieLo:
		return false
	default:
		return false
	}
}

// Settle propagates combinational logic from the current sources and
// state (one evaluation pass in topological order).
func (s *Simulator) Settle() {
	nl := s.nl
	var buf []bool
	drive := func(inst *netlist.Instance, v bool) {
		for _, op := range inst.Pins() {
			if op.IsOutput && op.Net != nil && !s.forced[op.Net.ID] {
				s.value[op.Net.ID] = v
			}
		}
	}
	// Sources first: ties, DFF outputs, macros (0).
	for i, inst := range nl.Instances {
		if inst.IsMacro() {
			drive(inst, false)
			continue
		}
		switch {
		case inst.Cell.Sequential:
			drive(inst, s.state[i])
		case inst.Cell.Kind == cell.TieHi:
			drive(inst, true)
		case inst.Cell.Kind == cell.TieLo:
			drive(inst, false)
		}
	}
	for _, id := range s.order {
		inst := nl.Instances[id]
		buf = s.inputVals(inst, buf)
		drive(inst, evalKind(inst.Cell.Kind, buf))
	}
}

// Step advances one clock cycle: every DFF captures its D input, then the
// combinational logic settles.
func (s *Simulator) Step() {
	var buf []bool
	for i, inst := range s.nl.Instances {
		if inst.IsMacro() || !inst.Cell.Sequential {
			continue
		}
		buf = s.inputVals(inst, buf)
		s.state[i] = at(buf, 0) // D is the first non-clock input
	}
	s.Settle()
}

// ForceBus pins a bus of nets (LSB first) to an integer value.
func (s *Simulator) ForceBus(bus []*netlist.Net, v uint64) {
	for i, n := range bus {
		s.Force(n, v&(1<<uint(i)) != 0)
	}
	s.Settle()
}

// ReadBus reads a bus of nets (LSB first) as an integer.
func (s *Simulator) ReadBus(bus []*netlist.Net) uint64 {
	var v uint64
	for i, n := range bus {
		if s.value[n.ID] {
			v |= 1 << uint(i)
		}
	}
	return v
}
