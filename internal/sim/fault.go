package sim

import (
	"fmt"
	"math/rand"

	"m3d/internal/netlist"
)

// Fault is one injected stuck-at fault.
type Fault struct {
	// Net is the faulted net (its driver is overridden).
	Net *netlist.Net
	// StuckAt is the forced value.
	StuckAt bool
}

// InjectStuckAt forces a net to a constant, modeling a stuck-at defect on
// its driver. Returns the fault handle; Clear removes it.
func (s *Simulator) InjectStuckAt(n *netlist.Net, v bool) Fault {
	s.Force(n, v)
	s.Settle()
	return Fault{Net: n, StuckAt: v}
}

// Clear removes an injected fault.
func (s *Simulator) Clear(f Fault) {
	s.Release(f.Net)
	s.Settle()
}

// CampaignResult summarizes a stuck-at fault-injection campaign.
type CampaignResult struct {
	// Injected is the number of faults simulated.
	Injected int
	// Detected is how many changed at least one observed output under the
	// applied stimulus (test coverage of the stimulus).
	Detected int
}

// Coverage returns the detection fraction.
func (c CampaignResult) Coverage() float64 {
	if c.Injected == 0 {
		return 0
	}
	return float64(c.Detected) / float64(c.Injected)
}

// RunStuckAtCampaign injects single stuck-at faults on up to maxFaults
// randomly chosen internal nets and reports how many the given stimulus
// detects. apply drives inputs and advances the simulator; observe reads
// the outputs being compared.
func RunStuckAtCampaign(s *Simulator, rng *rand.Rand, maxFaults int,
	apply func(*Simulator), observe func(*Simulator) uint64) (CampaignResult, error) {

	if rng == nil || maxFaults <= 0 {
		return CampaignResult{}, fmt.Errorf("sim: campaign needs an RNG and a positive fault budget")
	}
	if apply == nil || observe == nil {
		return CampaignResult{}, fmt.Errorf("sim: campaign needs apply and observe functions")
	}

	// Golden run.
	s.Reset()
	apply(s)
	golden := observe(s)

	nets := s.nl.Nets
	res := CampaignResult{}
	for i := 0; i < maxFaults; i++ {
		n := nets[rng.Intn(len(nets))]
		if n.Clock || s.forced[n.ID] {
			continue
		}
		stuck := rng.Intn(2) == 1
		s.Reset()
		f := s.InjectStuckAt(n, stuck)
		apply(s)
		got := observe(s)
		s.Clear(f)
		res.Injected++
		if got != golden {
			res.Detected++
		}
	}
	return res, nil
}

// Reset clears all state and re-settles (forced nets keep their values).
func (s *Simulator) Reset() {
	for i := range s.state {
		s.state[i] = false
	}
	for i := range s.value {
		if !s.forced[i] {
			s.value[i] = false
		}
	}
	s.Settle()
}
