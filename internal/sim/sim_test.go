package sim

import (
	"testing"
	"testing/quick"

	"m3d/internal/cell"
	"m3d/internal/netlist"
	"m3d/internal/synth"
	"m3d/internal/tech"
)

func newLib(t *testing.T) *cell.Library {
	t.Helper()
	lib, err := cell.NewLibrary(tech.Default130(), tech.TierSiCMOS)
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func TestGateTruthTables(t *testing.T) {
	cases := []struct {
		k    cell.Kind
		in   []bool
		want bool
	}{
		{cell.Inv, []bool{true}, false},
		{cell.Inv, []bool{false}, true},
		{cell.Nand2, []bool{true, true}, false},
		{cell.Nand2, []bool{true, false}, true},
		{cell.Nor2, []bool{false, false}, true},
		{cell.Nor2, []bool{true, false}, false},
		{cell.And2, []bool{true, true}, true},
		{cell.Or2, []bool{false, true}, true},
		{cell.Xor2, []bool{true, true}, false},
		{cell.Xor2, []bool{true, false}, true},
		{cell.Mux2, []bool{true, true, false}, true},   // sel=1 -> B
		{cell.Mux2, []bool{false, true, false}, false}, // sel=0 -> C
		{cell.Aoi22, []bool{true, true, false, false}, false},
		{cell.Aoi22, []bool{false, false, false, false}, true},
		{cell.Maj3, []bool{true, true, false}, true},
		{cell.Maj3, []bool{true, false, false}, false},
		{cell.FullAdder, []bool{true, true, true}, true},
		{cell.FullAdder, []bool{true, true, false}, false},
		{cell.FullAdder, []bool{true, false, false}, true},
		{cell.TieHi, nil, true},
		{cell.TieLo, nil, false},
	}
	for _, c := range cases {
		if got := evalKind(c.k, c.in); got != c.want {
			t.Errorf("%v%v = %v, want %v", c.k, c.in, got, c.want)
		}
	}
}

func TestAdderComputesSum(t *testing.T) {
	lib := newLib(t)
	b := synth.NewBuilder("add", lib)
	x := b.InputBus("x", 8, 0.3)
	y := b.InputBus("y", 8, 0.3)
	sum := b.Adder("add", x, y, 0.3)
	b.SinkBus("s", sum)

	s, err := New(b.NL)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range [][2]uint64{{0, 0}, {1, 1}, {255, 255}, {200, 55}, {127, 128}, {73, 41}} {
		s.ForceBus(x, tc[0])
		s.ForceBus(y, tc[1])
		if got := s.ReadBus(sum); got != tc[0]+tc[1] {
			t.Errorf("%d + %d = %d, want %d", tc[0], tc[1], got, tc[0]+tc[1])
		}
	}
}

func TestAdderProperty(t *testing.T) {
	lib := newLib(t)
	b := synth.NewBuilder("add", lib)
	x := b.InputBus("x", 12, 0.3)
	y := b.InputBus("y", 12, 0.3)
	sum := b.Adder("add", x, y, 0.3)
	b.SinkBus("s", sum)
	s, err := New(b.NL)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, bb uint16) bool {
		av, bv := uint64(a&0xFFF), uint64(bb&0xFFF)
		s.ForceBus(x, av)
		s.ForceBus(y, bv)
		return s.ReadBus(sum) == av+bv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMultiplierComputesProduct(t *testing.T) {
	lib := newLib(t)
	b := synth.NewBuilder("mul", lib)
	x := b.InputBus("x", 8, 0.3)
	y := b.InputBus("y", 8, 0.3)
	prod := b.Multiplier("mul", x, y, 0.3)
	b.SinkBus("p", prod)
	s, err := New(b.NL)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, bb uint8) bool {
		s.ForceBus(x, uint64(a))
		s.ForceBus(y, uint64(bb))
		return s.ReadBus(prod) == uint64(a)*uint64(bb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRegisterPipelines(t *testing.T) {
	lib := newLib(t)
	b := synth.NewBuilder("reg", lib)
	d := b.InputBus("d", 4, 0.3)
	q1 := b.Register("r1", d, 0.3)
	q2 := b.Register("r2", q1, 0.3)
	b.SinkBus("o", q2)
	s, err := New(b.NL)
	if err != nil {
		t.Fatal(err)
	}
	s.ForceBus(d, 0xA)
	if got := s.ReadBus(q2); got != 0 {
		t.Fatalf("before any clock, q2 = %x", got)
	}
	s.Step()
	if got := s.ReadBus(q1); got != 0xA {
		t.Fatalf("after 1 clock, q1 = %x, want A", got)
	}
	if got := s.ReadBus(q2); got != 0 {
		t.Fatalf("after 1 clock, q2 = %x, want 0", got)
	}
	s.ForceBus(d, 0x5)
	s.Step()
	if got := s.ReadBus(q2); got != 0xA {
		t.Fatalf("after 2 clocks, q2 = %x, want A", got)
	}
	if got := s.ReadBus(q1); got != 0x5 {
		t.Fatalf("after 2 clocks, q1 = %x, want 5", got)
	}
}

func TestMACComputes(t *testing.T) {
	// The PE: psumOut = actReg * wReg + psumIn, registered. Verify the
	// full generated datapath end to end.
	lib := newLib(t)
	b := synth.NewBuilder("pe", lib)
	act := b.InputBus("a", 8, 0.3)
	psum := b.InputBus("p", 24, 0.3)
	w := b.InputBus("w", 8, 0.3)
	res := b.MACWithWeights("pe", act, psum, w, 0.3)
	b.SinkBus("ao", res.ActOut)
	b.SinkBus("po", res.PSumOut)

	s, err := New(b.NL)
	if err != nil {
		t.Fatal(err)
	}
	// Include a large-product case (MSB of the 16-bit product set): it
	// caught a real zero-vs-sign extension bug in the generator.
	cases := [][3]uint64{
		{37, 113, 5000},
		{255, 255, 65535}, // maximal everything
		{200, 250, 0},     // product MSB set, no psum
		{1, 1, 1},
		{0, 0, 0},
	}
	for _, tc := range cases {
		aVal, wVal, pVal := tc[0], tc[1], tc[2]
		s.Reset()
		s.ForceBus(act, aVal)
		s.ForceBus(w, wVal)
		s.ForceBus(psum, pVal)
		// Cycle 1 latches the weight and activation; cycle 2 latches the
		// accumulated partial sum.
		s.Step()
		s.Step()
		want := aVal*wVal + pVal
		if got := s.ReadBus(res.PSumOut); got != want {
			t.Fatalf("MAC: %d*%d+%d = %d, want %d", aVal, wVal, pVal, got, want)
		}
		if got := s.ReadBus(res.ActOut); got != aVal {
			t.Fatalf("activation forwarding = %d, want %d", got, aVal)
		}
	}
}

func TestCombinationalCycleDetected(t *testing.T) {
	lib := newLib(t)
	nl := netlist.New("loop")
	i1 := nl.AddCell("i1", lib.MustPick(cell.Inv, 1))
	i2 := nl.AddCell("i2", lib.MustPick(cell.Inv, 1))
	n1 := nl.AddNet("n1", 0.2)
	n2 := nl.AddNet("n2", 0.2)
	nl.MustPin(i1, "Y", true, 0, n1)
	nl.MustPin(i2, "A", false, 1e-15, n1)
	nl.MustPin(i2, "Y", true, 0, n2)
	nl.MustPin(i1, "A", false, 1e-15, n2)
	if _, err := New(nl); err == nil {
		t.Error("ring oscillator should be rejected")
	}
}

func TestBrokenNetlistRejected(t *testing.T) {
	lib := newLib(t)
	nl := netlist.New("bad")
	i := nl.AddCell("i", lib.MustPick(cell.Inv, 1))
	n := nl.AddNet("n", 0.2)
	nl.MustPin(i, "A", false, 1e-15, n) // no driver
	if _, err := New(nl); err == nil {
		t.Error("undriven net should be rejected")
	}
}

func TestForceRelease(t *testing.T) {
	lib := newLib(t)
	b := synth.NewBuilder("fr", lib)
	in := b.Input("x", 0.3)
	b.Sink("y", in)
	s, err := New(b.NL)
	if err != nil {
		t.Fatal(err)
	}
	// Input stubs idle at 0 (TieLo-driven).
	if s.Value(in) {
		t.Fatal("stub should read 0")
	}
	s.Force(in, true)
	s.Settle()
	if !s.Value(in) {
		t.Fatal("force failed")
	}
	s.Release(in)
	s.Settle()
	if s.Value(in) {
		t.Fatal("release failed: driver should restore 0")
	}
}
