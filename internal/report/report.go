// Package report renders experiment results as aligned text tables for
// the command-line tools and the benchmark harness.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; values are formatted with %v (floats use %0.2f).
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case float32:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[minInt(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders to a string (for logs and tests).
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return fmt.Sprintf("report: render failed: %v", err)
	}
	return b.String()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Ratio formats a benefit multiplier ("5.66x").
func Ratio(v float64) string { return fmt.Sprintf("%.2fx", v) }

// MM2 formats an nm² area in mm².
func MM2(nm2 int64) string { return fmt.Sprintf("%.3f mm2", float64(nm2)/1e12) }

// MHz formats a frequency.
func MHz(hz float64) string { return fmt.Sprintf("%.2f MHz", hz/1e6) }

// MW formats a power in milliwatts.
func MW(w float64) string { return fmt.Sprintf("%.2f mW", w*1e3) }
