package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := New("Demo", "Layer", "Speedup", "EDP")
	tb.Add("L1.0 CONV1", 3.72, Ratio(3.73))
	tb.Add("Total", 5.64, Ratio(5.66))
	out := tb.String()
	if !strings.Contains(out, "Demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "L1.0 CONV1") || !strings.Contains(out, "3.72") {
		t.Errorf("missing row content:\n%s", out)
	}
	if !strings.Contains(out, "5.66x") {
		t.Errorf("missing formatted ratio:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Errorf("lines = %d, want 5:\n%s", len(lines), out)
	}
	// Columns align: headers and rows share the first column width.
	if !strings.HasPrefix(lines[1], "Layer") {
		t.Error("header missing")
	}
}

func TestFormatters(t *testing.T) {
	if Ratio(5.657) != "5.66x" {
		t.Errorf("Ratio = %s", Ratio(5.657))
	}
	if MM2(2_500_000_000_000) != "2.500 mm2" {
		t.Errorf("MM2 = %s", MM2(2_500_000_000_000))
	}
	if MHz(20e6) != "20.00 MHz" {
		t.Errorf("MHz = %s", MHz(20e6))
	}
	if MW(0.1234) != "123.40 mW" {
		t.Errorf("MW = %s", MW(0.1234))
	}
}

func TestEmptyTable(t *testing.T) {
	tb := New("", "A")
	out := tb.String()
	if !strings.Contains(out, "A") {
		t.Error("headers should render even with no rows")
	}
}
