package report

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestRenderGolden locks down the exact table layout (alignment, padding,
// separators, formatter output) against a checked-in golden file. Run with
// -update to regenerate after an intentional format change.
func TestRenderGolden(t *testing.T) {
	tb := New("== Golden layout check ==",
		"Name", "Ratio", "Area", "Freq", "Power", "Count")
	tb.Add("short", Ratio(5.6612), MM2(1_234_567_890_123), MHz(456.7e6), MW(0.01234), 7)
	tb.Add("a-much-longer-name", Ratio(0.5), MM2(42), MHz(1e6), MW(1.5), 123456)
	tb.Add("floats", 3.14159, float32(2.5), "x", "", -1)
	tb.Add("ragged", "only-two")

	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "table.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("render differs from golden\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}

	// String() must agree with Render byte-for-byte.
	if tb.String() != buf.String() {
		t.Error("String() differs from Render() output")
	}
}
