// Package irdrop analyzes static IR drop on the chip's power delivery
// network: the die is modeled as a resistive mesh (the power mesh straps
// on the upper metals), cells inject their average current at the nearest
// mesh node, supply pads pin the mesh boundary to VDD, and a Gauss–Seidel
// solve yields the node voltage map. The M3D concern: stacking more
// compute into the same footprint raises local current density, so the
// flow checks the worst drop stays within budget.
package irdrop

import (
	"fmt"
	"math"

	"m3d/internal/geom"
	"m3d/internal/tech"
)

// Options configures the analysis.
type Options struct {
	// MeshPitch is the power-strap pitch in DBU (default: die/32).
	MeshPitch int64
	// StrapResOhm is the resistance of one mesh segment between adjacent
	// nodes (default 0.4 Ω — wide upper-metal straps).
	StrapResOhm float64
	// MaxIterations bounds the solver (default 10000).
	MaxIterations int
	// Tolerance is the convergence threshold in volts (default 1 nV).
	Tolerance float64
	// DropBudgetFrac is the allowed drop as a fraction of VDD (default 5%).
	DropBudgetFrac float64
}

func (o Options) withDefaults(die geom.Rect) Options {
	if o.MeshPitch <= 0 {
		o.MeshPitch = die.W() / 32
		if o.MeshPitch < 1 {
			o.MeshPitch = 1
		}
	}
	if o.StrapResOhm <= 0 {
		o.StrapResOhm = 0.4
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 10000
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-9
	}
	if o.DropBudgetFrac <= 0 {
		o.DropBudgetFrac = 0.05
	}
	return o
}

// Report is the IR-drop result.
type Report struct {
	// WorstDropV is the largest VDD-to-node drop.
	WorstDropV float64
	// WorstAt is the location of the worst node.
	WorstAt geom.Point
	// MeanDropV averages over all nodes.
	MeanDropV float64
	// BudgetV is the allowed drop; Pass reports WorstDropV <= BudgetV.
	BudgetV float64
	Pass    bool
	// Iterations used by the solver.
	Iterations int
	// VoltageMap holds the solved node voltages.
	VoltageMap *geom.Grid
}

// Analyze solves the mesh for the given power-density map (total watts
// distributed over the die, as produced by the power package).
func Analyze(p *tech.PDK, die geom.Rect, density *geom.Grid, opt Options) (*Report, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("irdrop: invalid PDK: %w", err)
	}
	if die.Empty() {
		return nil, fmt.Errorf("irdrop: empty die")
	}
	if density == nil {
		return nil, fmt.Errorf("irdrop: nil power density map")
	}
	opt = opt.withDefaults(die)

	mesh := geom.NewGrid(die, opt.MeshPitch)
	nx, ny := mesh.NX, mesh.NY
	if nx < 2 || ny < 2 {
		return nil, fmt.Errorf("irdrop: mesh %dx%d too coarse", nx, ny)
	}

	// Current injection per mesh node: map the density grid onto the mesh.
	inj := make([]float64, nx*ny)
	for iy := 0; iy < density.NY; iy++ {
		for ix := 0; ix < density.NX; ix++ {
			w := density.At(ix, iy)
			if w <= 0 {
				continue
			}
			c := density.CellRect(ix, iy).Center()
			mx, my := mesh.CellOf(c)
			inj[my*nx+mx] += w / p.VDD
		}
	}

	// Pads: the full die boundary ring is pinned to VDD (a pad ring).
	pad := func(ix, iy int) bool {
		return ix == 0 || iy == 0 || ix == nx-1 || iy == ny-1
	}

	g := 1 / opt.StrapResOhm
	v := make([]float64, nx*ny)
	for i := range v {
		v[i] = p.VDD
	}

	iter := 0
	for ; iter < opt.MaxIterations; iter++ {
		var worstDelta float64
		for iy := 0; iy < ny; iy++ {
			for ix := 0; ix < nx; ix++ {
				if pad(ix, iy) {
					continue
				}
				i := iy*nx + ix
				var sumG, sumGV float64
				if ix > 0 {
					sumG += g
					sumGV += g * v[i-1]
				}
				if ix < nx-1 {
					sumG += g
					sumGV += g * v[i+1]
				}
				if iy > 0 {
					sumG += g
					sumGV += g * v[i-nx]
				}
				if iy < ny-1 {
					sumG += g
					sumGV += g * v[i+nx]
				}
				nv := (sumGV - inj[i]) / sumG
				if d := math.Abs(nv - v[i]); d > worstDelta {
					worstDelta = d
				}
				v[i] = nv
			}
		}
		if worstDelta < opt.Tolerance {
			break
		}
	}

	rep := &Report{
		BudgetV:    p.VDD * opt.DropBudgetFrac,
		Iterations: iter,
		VoltageMap: mesh,
	}
	var sum float64
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			drop := p.VDD - v[iy*nx+ix]
			mesh.Set(ix, iy, v[iy*nx+ix])
			sum += drop
			if drop > rep.WorstDropV {
				rep.WorstDropV = drop
				rep.WorstAt = mesh.CellRect(ix, iy).Center()
			}
		}
	}
	rep.MeanDropV = sum / float64(nx*ny)
	rep.Pass = rep.WorstDropV <= rep.BudgetV
	return rep, nil
}
