package irdrop

import (
	"testing"

	"m3d/internal/geom"
	"m3d/internal/tech"
)

const mm = int64(1_000_000)

func uniformDensity(die geom.Rect, totalW float64) *geom.Grid {
	g := geom.NewGrid(die, die.W()/16)
	g.AddRect(die, totalW)
	return g
}

func TestZeroPowerZeroDrop(t *testing.T) {
	p := tech.Default130()
	die := geom.R(0, 0, 2*mm, 2*mm)
	rep, err := Analyze(p, die, uniformDensity(die, 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WorstDropV > 1e-9 {
		t.Errorf("zero power should give zero drop, got %g", rep.WorstDropV)
	}
	if !rep.Pass {
		t.Error("zero drop must pass")
	}
}

func TestDropScalesWithPower(t *testing.T) {
	p := tech.Default130()
	die := geom.R(0, 0, 2*mm, 2*mm)
	r1, err := Analyze(p, die, uniformDensity(die, 0.1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Analyze(p, die, uniformDensity(die, 0.2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.WorstDropV <= r1.WorstDropV {
		t.Error("drop must grow with power")
	}
	// Linear system: 2x power => ~2x drop.
	ratio := r2.WorstDropV / r1.WorstDropV
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("drop ratio = %.2f, want ≈2 (linearity)", ratio)
	}
}

func TestWorstDropAwayFromPads(t *testing.T) {
	// With a boundary pad ring and uniform power, the worst node is near
	// the die center.
	p := tech.Default130()
	die := geom.R(0, 0, 4*mm, 4*mm)
	rep, err := Analyze(p, die, uniformDensity(die, 0.5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := die.Center()
	if rep.WorstAt.ManhattanDist(c) > die.W()/3 {
		t.Errorf("worst drop at %v, expected near center %v", rep.WorstAt, c)
	}
	if rep.MeanDropV <= 0 || rep.MeanDropV > rep.WorstDropV {
		t.Errorf("mean drop %g inconsistent with worst %g", rep.MeanDropV, rep.WorstDropV)
	}
}

func TestHotspotRaisesLocalDrop(t *testing.T) {
	p := tech.Default130()
	die := geom.R(0, 0, 4*mm, 4*mm)
	// Uniform background plus a hotspot off-center.
	g := uniformDensity(die, 0.2)
	hot := geom.R(mm, mm, mm+mm/2, mm+mm/2)
	g.AddRect(hot, 0.3)
	rep, err := Analyze(p, die, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WorstAt.ManhattanDist(hot.Center()) > die.W()/3 {
		t.Errorf("worst drop at %v, expected near hotspot %v", rep.WorstAt, hot.Center())
	}
}

func TestBudgetCheck(t *testing.T) {
	p := tech.Default130()
	die := geom.R(0, 0, 4*mm, 4*mm)
	// Enormous power: must fail the 5% budget.
	rep, err := Analyze(p, die, uniformDensity(die, 100), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Errorf("100 W on a 16 mm² die should violate the drop budget (worst %g V, budget %g V)",
			rep.WorstDropV, rep.BudgetV)
	}
}

func TestValidation(t *testing.T) {
	p := tech.Default130()
	die := geom.R(0, 0, mm, mm)
	if _, err := Analyze(p, geom.Rect{}, uniformDensity(die, 1), Options{}); err == nil {
		t.Error("empty die should fail")
	}
	if _, err := Analyze(p, die, nil, Options{}); err == nil {
		t.Error("nil density should fail")
	}
	bad := tech.Default130()
	bad.VDD = 0
	if _, err := Analyze(bad, die, uniformDensity(die, 1), Options{}); err == nil {
		t.Error("invalid PDK should fail")
	}
	if _, err := Analyze(p, die, uniformDensity(die, 1), Options{MeshPitch: 10 * mm}); err == nil {
		t.Error("too-coarse mesh should fail")
	}
}

func TestSolverConverges(t *testing.T) {
	p := tech.Default130()
	die := geom.R(0, 0, 2*mm, 2*mm)
	rep, err := Analyze(p, die, uniformDensity(die, 0.3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations >= 10000 {
		t.Errorf("solver hit the iteration cap (%d)", rep.Iterations)
	}
	// All node voltages within [VDD - worst, VDD].
	for iy := 0; iy < rep.VoltageMap.NY; iy++ {
		for ix := 0; ix < rep.VoltageMap.NX; ix++ {
			v := rep.VoltageMap.At(ix, iy)
			if v > p.VDD+1e-12 || v < p.VDD-rep.WorstDropV-1e-12 {
				t.Fatalf("node (%d,%d) voltage %g outside bounds", ix, iy, v)
			}
		}
	}
}
