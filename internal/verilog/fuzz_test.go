package verilog

import (
	"bytes"
	"strings"
	"testing"

	"m3d/internal/cell"
	"m3d/internal/macro"
	"m3d/internal/netlist"
	"m3d/internal/synth"
	"m3d/internal/tech"
)

// FuzzRead feeds arbitrary text through the structural-Verilog reader.
// The property under test: Read never panics — malformed input must come
// back as an error (or parse cleanly), never as a crash.
func FuzzRead(f *testing.F) {
	p := tech.Default130()
	lib, err := cell.NewLibrary(p, tech.TierSiCMOS)
	if err != nil {
		f.Fatal(err)
	}
	bank, err := macro.NewRRAMBank(p, macro.RRAMBankSpec{CapacityBits: 1 << 20, WordBits: 32, Style: macro.Style3D})
	if err != nil {
		f.Fatal(err)
	}
	macros := map[string]*netlist.MacroRef{sanitize(bank.Ref.Kind): bank.Ref}

	// Seed with real writer output so the fuzzer starts from the grammar.
	b := synth.NewBuilder("dut", lib)
	b.Systolic("cs", synth.SystolicSpec{Rows: 1, Cols: 2, ActBits: 4, WeightBits: 4, AccBits: 12, Activity: 0.2})
	var buf bytes.Buffer
	if err := Write(&buf, b.NL); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("module m;\nendmodule\n")
	f.Add("module m;\nwire a;\nINV_X1 u0 (.A(a), .Y(a));\nendmodule\n")
	f.Add("wire a;\n")
	f.Add("BOGUS u0 (.A(x));\n")
	f.Add("module m;\nINV_X1 u0 (A(a));\nendmodule\n")

	f.Fuzz(func(t *testing.T, data string) {
		nl, err := Read(strings.NewReader(data), lib, macros)
		if err == nil && nl == nil {
			t.Fatal("nil netlist with nil error")
		}
	})
}
