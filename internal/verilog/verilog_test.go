package verilog

import (
	"bytes"
	"strings"
	"testing"

	"m3d/internal/cell"
	"m3d/internal/macro"
	"m3d/internal/netlist"
	"m3d/internal/synth"
	"m3d/internal/tech"
)

func testDesign(t *testing.T) (*cell.Library, *netlist.Netlist, map[string]*netlist.MacroRef) {
	t.Helper()
	p := tech.Default130()
	lib, err := cell.NewLibrary(p, tech.TierSiCMOS)
	if err != nil {
		t.Fatal(err)
	}
	b := synth.NewBuilder("dut", lib)
	b.Systolic("cs", synth.SystolicSpec{Rows: 1, Cols: 2, ActBits: 4, WeightBits: 4, AccBits: 12, Activity: 0.2})
	bank, err := macro.NewRRAMBank(p, macro.RRAMBankSpec{CapacityBits: 1 << 20, WordBits: 32, Style: macro.Style3D})
	if err != nil {
		t.Fatal(err)
	}
	inst := b.NL.AddMacro("bank0", bank.Ref, tech.TierRRAM)
	// One macro connection so the macro has pins.
	in := b.Input("ba", 0.2)
	b.NL.MustPin(inst, "A0", false, bank.Ref.PinCapF, in)
	q := b.NL.AddNet("bq", 0.2)
	b.NL.MustPin(inst, "Q0", true, 0, q)
	b.Sink("bqs", q)
	if err := b.NL.Check(); err != nil {
		t.Fatal(err)
	}
	return lib, b.NL, map[string]*netlist.MacroRef{sanitize(bank.Ref.Kind): bank.Ref}
}

func TestWriteBasics(t *testing.T) {
	_, nl, _ := testDesign(t)
	var buf bytes.Buffer
	if err := Write(&buf, nl); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "// Generated") {
		t.Error("missing header comment")
	}
	if !strings.Contains(out, "module dut;") {
		t.Error("missing module line")
	}
	if !strings.Contains(out, "endmodule") {
		t.Error("missing endmodule")
	}
	if !strings.Contains(out, "wire clk;") {
		t.Error("missing clock wire")
	}
	if !strings.Contains(out, "rram_bank_M3D bank0 (") {
		t.Errorf("missing macro instance:\n%s", out[:400])
	}
}

func TestRoundTrip(t *testing.T) {
	lib, nl, macros := testDesign(t)
	var buf bytes.Buffer
	if err := Write(&buf, nl); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf, lib, macros)
	if err != nil {
		t.Fatal(err)
	}
	c1, m1, n1, f1 := Stats(nl)
	c2, m2, n2, f2 := Stats(back)
	if c1 != c2 || m1 != m2 || n1 != n2 {
		t.Fatalf("counts differ: %d/%d/%d vs %d/%d/%d", c1, m1, n1, c2, m2, n2)
	}
	if f1 != f2 {
		t.Fatal("connectivity fingerprints differ after round trip")
	}
	if err := back.Check(); err != nil {
		t.Fatalf("round-tripped netlist broken: %v", err)
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"abc_123":   "abc_123",
		"a.b/c":     "a_b_c",
		"9lives":    "_lives",
		"ok9":       "ok9",
		"x y":       "x_y",
		"CLKBUF_X4": "CLKBUF_X4",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestReadErrors(t *testing.T) {
	p := tech.Default130()
	lib, err := cell.NewLibrary(p, tech.TierSiCMOS)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name, src string
	}{
		{"empty", ""},
		{"wire before module", "wire x;\n"},
		{"unknown master", "module m;\nwire a;\nBOGUS_X1 u (.A(a));\nendmodule\n"},
		{"undeclared net", "module m;\nINV_X1 u (.A(nope), .Y(nope));\nendmodule\n"},
		{"malformed instance", "module m;\nINV_X1 u .A(x);\nendmodule\n"},
		{"malformed connection", "module m;\nwire a;\nINV_X1 u (A(a));\nendmodule\n"},
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c.src), lib, nil); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestReadMinimal(t *testing.T) {
	p := tech.Default130()
	lib, err := cell.NewLibrary(p, tech.TierSiCMOS)
	if err != nil {
		t.Fatal(err)
	}
	src := `// comment
module tiny;
  wire n1;
  wire n2;

  TIEHI_X1 t (.Y(n1));
  INV_X1 u (.A(n1), .Y(n2));
  INV_X1 v (.A(n2));
endmodule
`
	nl, err := Read(strings.NewReader(src), lib, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := nl.Check(); err != nil {
		t.Fatal(err)
	}
	if len(nl.Instances) != 3 || len(nl.Nets) != 2 {
		t.Errorf("parsed %d instances / %d nets", len(nl.Instances), len(nl.Nets))
	}
	// Direction inference: Y out, A in.
	if nl.Nets[0].Driver == nil || nl.Nets[0].Driver.Inst.Name != "t" {
		t.Error("driver inference failed")
	}
}

func TestDuplicateDriverCaught(t *testing.T) {
	p := tech.Default130()
	lib, err := cell.NewLibrary(p, tech.TierSiCMOS)
	if err != nil {
		t.Fatal(err)
	}
	src := `module bad;
  wire n1;
  TIEHI_X1 a (.Y(n1));
  TIEHI_X1 b (.Y(n1));
endmodule
`
	if _, err := Read(strings.NewReader(src), lib, nil); err == nil {
		t.Error("double driver should be rejected")
	}
}
