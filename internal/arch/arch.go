// Package arch models the AI accelerator architectures the paper studies:
// the case-study computing sub-system (a 16×16 weight-stationary systolic
// array backed by banked on-chip RRAM, Sec. II) and the six Table II
// architecture presets. It provides the per-layer cost model (cycles and
// energy) used as the "architectural simulation to determine the AI/ML
// workload cycle count" in the flow's system-level EDP assessment.
package arch

import (
	"fmt"

	"m3d/internal/workload"
)

// Spatial is the PE-array spatial unrolling of Table II: how many output
// channels (K), input channels (C), and output pixels (OX, OY) are computed
// in parallel each cycle. Dimensions of 1 mean no unrolling.
type Spatial struct {
	K, C, OX, OY int
}

// PEs returns the processing-element count (MACs per cycle at full
// utilization — the paper's P_peak).
func (s Spatial) PEs() int { return s.K * s.C * s.OX * s.OY }

// Energy holds the accelerator's energy model parameters.
type Energy struct {
	// MACJ is energy per multiply-accumulate including pipeline registers.
	MACJ float64
	// RRAMReadJPerBit is on-chip RRAM read energy (cell + peripherals).
	RRAMReadJPerBit float64
	// SRAMJPerBit is buffer access energy.
	SRAMJPerBit float64
	// CSIdleJPerCycle is the idle (clock + leakage) energy of one CS per
	// cycle — the paper's E_C^idle.
	CSIdleJPerCycle float64
	// MemIdleJPerCycle is the memory system idle energy per cycle — the
	// paper's E_M^idle (small for non-volatile RRAM).
	MemIdleJPerCycle float64
}

// MemHier describes the SRAM buffer hierarchy (Table II columns).
type MemHier struct {
	RegPerPEBits int
	LocalKB      float64
	GlobalMB     float64
}

// Dataflow selects the stationary operand of the CS (Sec. II uses weight
// stationary, "which has high utilization on AI/ML workloads").
type Dataflow int

const (
	// WeightStationaryFlow keeps weights pinned in the PEs: each weight is
	// read from RRAM once; activations and partial sums stream.
	WeightStationaryFlow Dataflow = iota
	// OutputStationaryFlow keeps output accumulators pinned: weights are
	// re-streamed from RRAM for every output-pixel tile pass.
	OutputStationaryFlow
)

// String names the dataflow.
func (d Dataflow) String() string {
	if d == OutputStationaryFlow {
		return "output-stationary"
	}
	return "weight-stationary"
}

// Accel is a complete accelerator configuration: N computing sub-systems
// sharing a banked on-chip RRAM.
type Accel struct {
	Name string
	// CS spatial organization (identical for every parallel CS).
	CS Spatial
	// Dataflow is the CS's stationary operand (default weight-stationary).
	Dataflow Dataflow
	// FillCycles is the systolic fill/drain overhead per K-tile pass.
	FillCycles int
	// NumCS is N: parallel computing sub-systems (1 in the 2D baseline).
	NumCS int

	// ActBits / WeightBits are the datapath precisions.
	ActBits, WeightBits int

	// RRAMCapBits is total on-chip RRAM (iso across 2D/M3D comparisons).
	RRAMCapBits int64
	// Banks × BankWordBits/cycle is the total RRAM bandwidth B; per-CS
	// bandwidth is B/NumCS (the paper's equal partition).
	Banks        int
	BankWordBits int

	// ActBWBitsPerCycle is the activation streaming bandwidth per CS from
	// the buffer hierarchy.
	ActBWBitsPerCycle float64

	Mem    MemHier
	Energy Energy
	// ClockHz converts cycles to time.
	ClockHz float64
}

// Validate checks the configuration.
func (a *Accel) Validate() error {
	if a.CS.PEs() <= 0 {
		return fmt.Errorf("arch: %s has no PEs", a.Name)
	}
	if a.NumCS <= 0 {
		return fmt.Errorf("arch: %s needs at least one CS", a.Name)
	}
	if a.Banks <= 0 || a.BankWordBits <= 0 {
		return fmt.Errorf("arch: %s needs banked RRAM bandwidth", a.Name)
	}
	if a.ActBits <= 0 || a.WeightBits <= 0 {
		return fmt.Errorf("arch: %s needs positive precisions", a.Name)
	}
	if a.ActBWBitsPerCycle <= 0 {
		return fmt.Errorf("arch: %s needs activation bandwidth", a.Name)
	}
	if a.ClockHz <= 0 {
		return fmt.Errorf("arch: %s needs a clock", a.Name)
	}
	return nil
}

// TotalRRAMBWBitsPerCycle is B (total memory bandwidth per cycle).
func (a *Accel) TotalRRAMBWBitsPerCycle() float64 {
	return float64(a.Banks * a.BankWordBits)
}

// PPeak is the per-CS peak MACs per cycle.
func (a *Accel) PPeak() int { return a.CS.PEs() }

// AccBitsOrDefault returns the accumulator precision: wide enough for the
// products plus headroom for deep reductions.
func (a *Accel) AccBitsOrDefault() int { return a.ActBits + a.WeightBits + 8 }

// Bound labels what limits a layer's runtime.
type Bound string

// Bound values.
const (
	ComputeBound Bound = "compute"
	WeightBound  Bound = "weight-bw"
	ActBound     Bound = "act-bw"
)

// LayerCost is the per-layer evaluation result.
type LayerCost struct {
	Layer workload.Layer
	// Cycles is the layer runtime (max of the three components).
	Cycles int64
	// ComputeCycles / WeightCycles / ActCycles are the roofline components.
	ComputeCycles, WeightCycles, ActCycles int64
	// EnergyJ is total energy (compute + memory + idle).
	EnergyJ float64
	// Nmax is the number of CSs the layer can use (min(N#, N)).
	Nmax int
	// NPartitions is N#: the layer's maximum parallel partitions.
	NPartitions int
	// Bound labels the limiting resource.
	Bound Bound
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}

// EvalLayer runs the architectural cost model on one layer.
//
// Compute: the layer's loop nest maps onto the CS spatial dims with ceiling
// rounding (under-utilization on ragged edges), plus a systolic fill
// overhead per K-tile. Output-channel tiles are the unit of parallelism
// across CSs (the paper's N# workload partitions).
//
// Memory: weights stream from the CS's RRAM bank share; activations stream
// through the buffer hierarchy at ActBWBitsPerCycle. Input activations are
// replicated across the CSs sharing a layer (each computes different output
// channels of the same inputs); outputs are partitioned.
func (a *Accel) EvalLayer(l workload.Layer) LayerCost {
	groups := int64(1)
	if l.Groups > 1 {
		groups = int64(l.Groups)
	}
	tilesK := ceilDiv(int64(l.K), int64(a.CS.K))
	// Grouped convolutions reduce each output channel's input fan-in to
	// C/groups; a C-spatial array is under-utilized accordingly.
	tilesC := ceilDiv(int64(l.C)/groups, int64(a.CS.C))
	tilesOX := ceilDiv(int64(l.OX), int64(a.CS.OX))
	tilesOY := ceilDiv(int64(l.OY), int64(a.CS.OY))

	nPart := int(tilesK)
	nmax := a.NumCS
	if nPart < nmax {
		nmax = nPart
	}

	kTilesPerCS := ceilDiv(tilesK, int64(nmax))
	passCycles := tilesC * tilesOX * tilesOY * int64(l.R) * int64(l.S)
	compute := kTilesPerCS * (passCycles + int64(a.FillCycles))

	// Weight streaming: each CS reads its K-slice of weights from its own
	// bank share. Output-stationary re-fetches weights once per
	// output-pixel tile pass.
	weightBits := l.Weights() * int64(a.WeightBits)
	if a.Dataflow == OutputStationaryFlow {
		weightBits *= tilesOX * tilesOY
	}
	perCSBankBW := a.TotalRRAMBWBitsPerCycle() / float64(a.NumCS)
	weightCyc := int64(float64(weightBits) / float64(nmax) / perCSBankBW)

	// Activation streaming: inputs replicated, outputs partitioned.
	// Partial sums accumulate in the local buffers in both dataflows, so
	// each output crosses the global stream once.
	inBits := l.InputActs() * int64(a.ActBits)
	outBits := l.OutputActs() * int64(a.ActBits)
	actCyc := int64((float64(inBits) + float64(outBits)/float64(nmax)) / a.ActBWBitsPerCycle)

	cycles := compute
	bound := ComputeBound
	if weightCyc > cycles {
		cycles = weightCyc
		bound = WeightBound
	}
	if actCyc > cycles {
		cycles = actCyc
		bound = ActBound
	}

	e := a.Energy
	energy := float64(l.MACs()) * e.MACJ
	energy += float64(weightBits) * e.RRAMReadJPerBit
	// Buffer traffic energy: inputs once, outputs once (broadcast energy
	// charged once; replication is a bandwidth cost, not an energy copy).
	energy += (float64(inBits) + float64(outBits)) * e.SRAMJPerBit
	// Idle energy: fully idle CSs all run, active CSs idle off the compute
	// phase, memory idles off the weight-streaming phase (Eqs. 6-7).
	energy += float64(a.NumCS-nmax) * float64(cycles) * e.CSIdleJPerCycle
	energy += float64(nmax) * float64(cycles-compute) * e.CSIdleJPerCycle
	energy += float64(cycles-weightCyc) * e.MemIdleJPerCycle

	return LayerCost{
		Layer:         l,
		Cycles:        cycles,
		ComputeCycles: compute,
		WeightCycles:  weightCyc,
		ActCycles:     actCyc,
		EnergyJ:       energy,
		Nmax:          nmax,
		NPartitions:   nPart,
		Bound:         bound,
	}
}

// ModelCost aggregates EvalLayer over a model.
type ModelCost struct {
	Model   string
	Layers  []LayerCost
	Cycles  int64
	EnergyJ float64
	// TimeS is Cycles / ClockHz.
	TimeS float64
}

// EDP returns the energy-delay product (J·s).
func (m ModelCost) EDP() float64 { return m.EnergyJ * m.TimeS }

// BoundBreakdown returns the fraction of runtime spent in layers limited
// by each resource — the roofline diagnosis behind Table I's banding.
func (m ModelCost) BoundBreakdown() map[Bound]float64 {
	out := map[Bound]float64{}
	if m.Cycles == 0 {
		return out
	}
	for _, lc := range m.Layers {
		out[lc.Bound] += float64(lc.Cycles) / float64(m.Cycles)
	}
	return out
}

// EvalModel evaluates all layers of a model.
func (a *Accel) EvalModel(m workload.Model) (ModelCost, error) {
	if err := a.Validate(); err != nil {
		return ModelCost{}, err
	}
	if err := m.Validate(); err != nil {
		return ModelCost{}, err
	}
	out := ModelCost{Model: m.Name}
	for _, l := range m.Layers {
		c := a.EvalLayer(l)
		out.Layers = append(out.Layers, c)
		out.Cycles += c.Cycles
		out.EnergyJ += c.EnergyJ
	}
	out.TimeS = float64(out.Cycles) / a.ClockHz
	return out, nil
}

// Benefit compares this accelerator against a baseline on a model,
// returning (speedup, energyRatio, edpBenefit) — the paper's Fig. 5 /
// Table I quantities (baseline ÷ this for speedup and EDP; energyRatio is
// baseline energy ÷ this energy, so >1 means this uses less energy).
func (a *Accel) Benefit(baseline *Accel, m workload.Model) (speedup, energyRatio, edp float64, err error) {
	mine, err := a.EvalModel(m)
	if err != nil {
		return 0, 0, 0, err
	}
	base, err := baseline.EvalModel(m)
	if err != nil {
		return 0, 0, 0, err
	}
	speedup = base.TimeS / mine.TimeS
	energyRatio = base.EnergyJ / mine.EnergyJ
	edp = base.EDP() / mine.EDP()
	return speedup, energyRatio, edp, nil
}
