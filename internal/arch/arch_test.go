package arch

import (
	"testing"

	"m3d/internal/workload"
)

func TestCaseStudyPresetsValidate(t *testing.T) {
	for _, a := range []*Accel{CaseStudy2D(), CaseStudy3D()} {
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
	a2, a3 := CaseStudy2D(), CaseStudy3D()
	if a3.NumCS != 8 || a3.Banks != 8 {
		t.Errorf("M3D preset must have 8 CS / 8 banks, got %d/%d", a3.NumCS, a3.Banks)
	}
	// Iso-memory capacity.
	if a2.RRAMCapBits != a3.RRAMCapBits {
		t.Error("2D and M3D presets must be iso-on-chip-memory-capacity")
	}
	// 8× total bandwidth, equal per-CS bandwidth.
	if a3.TotalRRAMBWBitsPerCycle() != 8*a2.TotalRRAMBWBitsPerCycle() {
		t.Error("M3D must have 8x total bandwidth")
	}
}

func TestPPeak(t *testing.T) {
	if got := CaseStudy2D().PPeak(); got != 256 {
		t.Errorf("case-study P_peak = %d, want 256 (16x16)", got)
	}
}

func TestEvalLayerComputeBoundConv(t *testing.T) {
	a := CaseStudy2D()
	l := workload.ResNet18().Layers[1] // L1.0 CONV1
	c := a.EvalLayer(l)
	if c.Bound != ComputeBound {
		t.Errorf("L1 conv should be compute bound in 2D, got %s", c.Bound)
	}
	// F0/P_peak = 115.6M/256 ≈ 451.6k cycles (plus fill).
	if c.Cycles < 450_000 || c.Cycles > 460_000 {
		t.Errorf("L1 conv cycles = %d, want ≈452k", c.Cycles)
	}
	if c.NPartitions != 4 { // K=64 / 16
		t.Errorf("N# = %d, want 4", c.NPartitions)
	}
}

func TestTableIBanding(t *testing.T) {
	// The paper's Table I banding: L1 convs ≈3.7x (N#=4), L2+ convs
	// ≈7.4-7.9x, DS layers lowest, total ≈5.66x.
	a2, a3 := CaseStudy2D(), CaseStudy3D()
	m := workload.ResNet18()
	speedup := func(name string) float64 {
		for _, l := range m.Layers {
			if l.Name == name {
				return float64(a2.EvalLayer(l).Cycles) / float64(a3.EvalLayer(l).Cycles)
			}
		}
		t.Fatalf("layer %q missing", name)
		return 0
	}
	l1 := speedup("L1.0 CONV1")
	if l1 < 3.3 || l1 > 4.3 {
		t.Errorf("L1 conv speedup = %.2f, want ≈3.7-4 (paper 3.72)", l1)
	}
	l4 := speedup("L4.1 CONV2")
	if l4 < 7.0 || l4 > 8.2 {
		t.Errorf("L4 conv speedup = %.2f, want ≈7.8 (paper 7.83)", l4)
	}
	dsl := speedup("L2.0 DS")
	if dsl < 2.0 || dsl > 3.5 {
		t.Errorf("L2 DS speedup = %.2f, want ≈2.6 (paper 2.57)", dsl)
	}
	// DS layers must trail their stage's conv layers.
	if dsl >= speedup("L2.0 CONV2") {
		t.Error("DS must be slower to accelerate than convs")
	}
}

func TestCaseStudyTotalBenefit(t *testing.T) {
	// Paper: 5.64x speedup, 0.99x energy, 5.66x EDP on ResNet-18.
	sp, er, edp, err := CaseStudy3D().Benefit(CaseStudy2D(), workload.ResNet18())
	if err != nil {
		t.Fatal(err)
	}
	if sp < 4.8 || sp > 6.5 {
		t.Errorf("total speedup = %.2f, want ≈5.6 (paper 5.64)", sp)
	}
	if er < 0.93 || er > 1.03 {
		t.Errorf("energy ratio = %.3f, want ≈0.99", er)
	}
	if edp < 4.6 || edp > 6.6 {
		t.Errorf("EDP benefit = %.2f, want ≈5.66", edp)
	}
}

func TestFig5RangeAcrossModels(t *testing.T) {
	// Paper Fig. 5: 5.7x-7.5x speedup and EDP across AlexNet/VGG/ResNets
	// at ≈0.99x energy. Our shape target: every model lands in ≈[4.5, 8.5]
	// with energy ratio near 1.
	a2, a3 := CaseStudy2D(), CaseStudy3D()
	for _, m := range workload.Zoo() {
		sp, er, edp, err := a3.Benefit(a2, m)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if sp < 4.0 || sp > 8.5 {
			t.Errorf("%s: speedup %.2f outside the Fig. 5 band", m.Name, sp)
		}
		if er < 0.9 || er > 1.05 {
			t.Errorf("%s: energy ratio %.3f should be ≈0.99", m.Name, er)
		}
		if edp < 3.8 || edp > 9.0 {
			t.Errorf("%s: EDP benefit %.2f outside the Fig. 5 band", m.Name, edp)
		}
	}
}

func TestMoreCSHelpsUntilPartitionLimit(t *testing.T) {
	// A K=64 layer partitions 4 ways on a 16-wide array: N=4 and N=8 give
	// the same compute time.
	l := workload.ResNet18().Layers[1]
	base := CaseStudy2D()
	c4 := base.WithParallelCS(4).EvalLayer(l)
	c8 := base.WithParallelCS(8).EvalLayer(l)
	if c4.ComputeCycles != c8.ComputeCycles {
		t.Errorf("beyond N#, compute time must not improve: %d vs %d", c4.ComputeCycles, c8.ComputeCycles)
	}
	if c8.Nmax != 4 {
		t.Errorf("Nmax = %d, want 4", c8.Nmax)
	}
}

func TestIdleEnergyGrowsWithUnusedCS(t *testing.T) {
	l := workload.ResNet18().Layers[1] // N# = 4
	e8 := CaseStudy2D().WithParallelCS(8).EvalLayer(l).EnergyJ
	e4 := CaseStudy2D().WithParallelCS(4).EvalLayer(l).EnergyJ
	if e8 <= e4 {
		t.Errorf("idle CSs must cost energy: E(8)=%g <= E(4)=%g", e8, e4)
	}
}

func TestWithBandwidthScale(t *testing.T) {
	a := CaseStudy2D().WithBandwidthScale(2)
	if a.BankWordBits != 512 {
		t.Errorf("word bits = %d, want 512", a.BankWordBits)
	}
	// FC layers are weight-bandwidth bound; doubling bandwidth halves time.
	fcl := workload.ResNet18().Layers[20]
	if fcl.Type != workload.FC {
		t.Fatal("layer 20 should be FC")
	}
	c1 := CaseStudy2D().EvalLayer(fcl)
	c2 := a.EvalLayer(fcl)
	if c1.Bound != WeightBound {
		t.Fatalf("FC should be weight bound, got %s", c1.Bound)
	}
	ratio := float64(c1.Cycles) / float64(c2.Cycles)
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("2x bandwidth should ≈halve FC time, got %.2fx", ratio)
	}
}

func TestTableIIPresets(t *testing.T) {
	all := AllTableII()
	if len(all) != 6 {
		t.Fatalf("presets = %d", len(all))
	}
	for i, a := range all {
		if err := a.Validate(); err != nil {
			t.Errorf("Arch%d: %v", i+1, err)
		}
		if a.PPeak() != 1024 {
			t.Errorf("Arch%d: PEs = %d, want 1024 (normalized)", i+1, a.PPeak())
		}
		if a.RRAMCapBits != int64(256)<<23 {
			t.Errorf("Arch%d: RRAM = %d, want 256MB", i+1, a.RRAMCapBits)
		}
	}
	if _, err := TableII(0); err == nil {
		t.Error("arch 0 should fail")
	}
	if _, err := TableII(7); err == nil {
		t.Error("arch 7 should fail")
	}
}

func TestTableIIBenefitsSpread(t *testing.T) {
	// Fig. 7: EDP benefits 5.3x-11.5x across architectures on AlexNet.
	// Shape target: all in [3, 14] and a meaningful spread (max/min > 1.3).
	alex := workload.AlexNet()
	minB, maxB := 1e18, 0.0
	for i, a := range AllTableII() {
		m3d := a.WithParallelCS(8)
		_, _, edp, err := m3d.Benefit(a, alex)
		if err != nil {
			t.Fatalf("Arch%d: %v", i+1, err)
		}
		if edp < 2.5 || edp > 15 {
			t.Errorf("Arch%d EDP benefit %.2f outside plausible Fig. 7 band", i+1, edp)
		}
		if edp < minB {
			minB = edp
		}
		if edp > maxB {
			maxB = edp
		}
	}
	if maxB/minB < 1.2 {
		t.Errorf("architectures should spread: min %.2f max %.2f", minB, maxB)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mods := []func(*Accel){
		func(a *Accel) { a.CS.K = 0 },
		func(a *Accel) { a.NumCS = 0 },
		func(a *Accel) { a.Banks = 0 },
		func(a *Accel) { a.ActBits = 0 },
		func(a *Accel) { a.ActBWBitsPerCycle = 0 },
		func(a *Accel) { a.ClockHz = 0 },
	}
	for i, mod := range mods {
		a := CaseStudy2D()
		mod(a)
		if err := a.Validate(); err == nil {
			t.Errorf("case %d not caught", i)
		}
	}
}

func TestEvalModelAggregates(t *testing.T) {
	a := CaseStudy2D()
	m := workload.ResNet18()
	mc, err := a.EvalModel(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(mc.Layers) != len(m.Layers) {
		t.Fatal("layer costs missing")
	}
	var cyc int64
	var e float64
	for _, lc := range mc.Layers {
		cyc += lc.Cycles
		e += lc.EnergyJ
	}
	if cyc != mc.Cycles || e != mc.EnergyJ {
		t.Error("aggregation mismatch")
	}
	if mc.TimeS <= 0 || mc.EDP() <= 0 {
		t.Error("time/EDP must be positive")
	}
}

func TestDataflowAblation(t *testing.T) {
	// The paper picks weight-stationary for its high utilization; on a
	// conv workload the OS variant re-streams weights every output tile
	// and must lose on energy (more RRAM reads) without a speed win.
	ws := CaseStudy2D()
	os := CaseStudy2D()
	os.Dataflow = OutputStationaryFlow
	m := workload.ResNet18()
	cws, err := ws.EvalModel(m)
	if err != nil {
		t.Fatal(err)
	}
	cos, err := os.EvalModel(m)
	if err != nil {
		t.Fatal(err)
	}
	if cos.EnergyJ <= cws.EnergyJ {
		t.Errorf("OS should burn more RRAM energy on convs: WS %g vs OS %g", cws.EnergyJ, cos.EnergyJ)
	}
	if cos.Cycles < cws.Cycles {
		t.Errorf("OS should not be faster here: WS %d vs OS %d cycles", cws.Cycles, cos.Cycles)
	}
	if WeightStationaryFlow.String() == OutputStationaryFlow.String() {
		t.Error("dataflow names must differ")
	}
}

func TestDepthwiseUnderutilization(t *testing.T) {
	// A depthwise layer uses one input channel per output: a 16-row
	// C-spatial array runs at ~1/16 utilization, so cycles shrink far less
	// than MACs.
	a := CaseStudy2D()
	dense := workload.Layer{Name: "d", Type: workload.Conv, K: 64, C: 64, R: 3, S: 3, OX: 28, OY: 28, Stride: 1}
	dw := dense
	dw.Groups = 64
	cd := a.EvalLayer(dense)
	cw := a.EvalLayer(dw)
	macRatio := float64(dense.MACs()) / float64(dw.MACs()) // 64
	cycRatio := float64(cd.ComputeCycles) / float64(cw.ComputeCycles)
	if cycRatio > macRatio/10 {
		t.Errorf("depthwise should be badly utilized: MACs 64x fewer but cycles only %.1fx fewer", cycRatio)
	}
}

func TestBoundBreakdown(t *testing.T) {
	a := CaseStudy2D()
	mc, err := a.EvalModel(workload.ResNet18())
	if err != nil {
		t.Fatal(err)
	}
	bb := mc.BoundBreakdown()
	var sum float64
	for _, f := range bb {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("bound fractions sum to %g, want 1", sum)
	}
	// The 2D baseline is overwhelmingly compute bound (Table I's premise).
	if bb[ComputeBound] < 0.9 {
		t.Errorf("2D compute-bound fraction = %.2f, want > 0.9", bb[ComputeBound])
	}
	// The M3D design shifts time toward the memory/activation roofline.
	mc3, err := CaseStudy3D().EvalModel(workload.ResNet18())
	if err != nil {
		t.Fatal(err)
	}
	bb3 := mc3.BoundBreakdown()
	if bb3[ActBound]+bb3[WeightBound] <= bb[ActBound]+bb[WeightBound] {
		t.Error("M3D should spend relatively more time memory-bound")
	}
}
