package arch

import "fmt"

// Energy and bandwidth calibration for the 130 nm case study. ActBW is the
// per-CS activation streaming bandwidth through the buffer hierarchy,
// calibrated so the ResNet-18 per-layer speedup banding reproduces the
// paper's Table I (conv layers compute-bound, DS layers activation-bound).
const (
	caseStudyActBW = 168.0 // bits per cycle per CS
	caseStudyClock = 20e6  // the paper's relaxed 20 MHz target

	macJ      = 3.0e-12  // 8×16-bit MAC at 130 nm, 1.2 V
	rramReadJ = 0.64e-12 // per bit, cell + peripherals
	sramJ     = 0.05e-12 // per bit
	csIdleJ   = 23e-12   // per CS per cycle (≈3% of active)
	memIdleJ  = 1e-12    // per cycle (non-volatile RRAM)
)

// MB64 is the case-study on-chip RRAM capacity in bits.
const MB64 = int64(64) << 23

// defaultEnergy returns the calibrated energy model.
func defaultEnergy() Energy {
	return Energy{
		MACJ:             macJ,
		RRAMReadJPerBit:  rramReadJ,
		SRAMJPerBit:      sramJ,
		CSIdleJPerCycle:  csIdleJ,
		MemIdleJPerCycle: memIdleJ,
	}
}

// CaseStudy2D returns the paper's Sec. II baseline: one 16×16
// weight-stationary systolic CS next to 64 MB of on-chip RRAM in a single
// bank (Fig. 2a-b).
func CaseStudy2D() *Accel {
	return &Accel{
		Name:              "case-study-2D",
		CS:                Spatial{K: 16, C: 16, OX: 1, OY: 1},
		FillCycles:        32,
		NumCS:             1,
		ActBits:           8,
		WeightBits:        8,
		RRAMCapBits:       MB64,
		Banks:             1,
		BankWordBits:      256,
		ActBWBitsPerCycle: caseStudyActBW,
		Mem:               MemHier{RegPerPEBits: 24, LocalKB: 64, GlobalMB: 0.5},
		Energy:            defaultEnergy(),
		ClockHz:           caseStudyClock,
	}
}

// CaseStudy3D returns the paper's iso-footprint, iso-on-chip-memory M3D
// design point: 8 parallel CSs, RRAM partitioned into 8 banks for 8× total
// bandwidth (Fig. 2c-d). Per-CS bandwidth equals the 2D baseline.
func CaseStudy3D() *Accel {
	a := CaseStudy2D()
	a.Name = "case-study-M3D"
	return a.WithParallelCS(8)
}

// WithParallelCS returns a copy reconfigured to n parallel CSs with the
// RRAM partitioned into n× the banks (total bandwidth scales by
// n/previous-n; per-CS bandwidth is unchanged). This is the M3D
// architectural transformation of Sec. II.
func (a *Accel) WithParallelCS(n int) *Accel {
	if n <= 0 {
		n = 1
	}
	out := *a
	out.Banks = a.Banks * n / a.NumCS
	if out.Banks < 1 {
		out.Banks = 1
	}
	out.NumCS = n
	out.Name = fmt.Sprintf("%s-x%d", a.Name, n)
	return &out
}

// WithBandwidthScale returns a copy with the total RRAM bandwidth scaled by
// f (by changing the bank word width), leaving the CS count alone — the
// Fig. 8 second axis.
func (a *Accel) WithBandwidthScale(f float64) *Accel {
	out := *a
	out.BankWordBits = int(float64(a.BankWordBits) * f)
	if out.BankWordBits < 1 {
		out.BankWordBits = 1
	}
	out.Name = fmt.Sprintf("%s-bw%.2g", a.Name, f)
	return &out
}

// TableII returns the six accelerator architecture presets of the paper's
// Table II (variants of popular AI accelerators [14-18] plus the Sec. II
// design), normalized to 1024 PEs and 256 MB of on-chip RRAM. n is 1-based.
func TableII(n int) (*Accel, error) {
	base := func(name string, sp Spatial, mem MemHier) *Accel {
		return &Accel{
			Name:              name,
			CS:                sp,
			FillCycles:        sp.K + sp.C, // systolic-style fill
			NumCS:             1,
			ActBits:           8,
			WeightBits:        8,
			RRAMCapBits:       int64(256) << 23,
			Banks:             1,
			BankWordBits:      256,
			ActBWBitsPerCycle: caseStudyActBW,
			Mem:               mem,
			Energy:            defaultEnergy(),
			ClockHz:           caseStudyClock,
		}
	}
	switch n {
	case 1: // AR/VR codec-avatar style [14]
		return base("Arch1", Spatial{K: 16, C: 16, OX: 2, OY: 2},
			MemHier{RegPerPEBits: 24, LocalKB: 64 + 64 + 256, GlobalMB: 2}), nil
	case 2: // TPU-style [15]
		return base("Arch2", Spatial{K: 8, C: 8, OX: 4, OY: 4},
			MemHier{RegPerPEBits: 24, LocalKB: 32, GlobalMB: 2}), nil
	case 3: // Edge-TPU style [16]
		return base("Arch3", Spatial{K: 32, C: 32, OX: 1, OY: 1},
			MemHier{RegPerPEBits: (128 + 1024) * 8, LocalKB: 0, GlobalMB: 2}), nil
	case 4: // Ascend style [17]
		return base("Arch4", Spatial{K: 32, C: 2, OX: 4, OY: 4},
			MemHier{RegPerPEBits: 24, LocalKB: 64 + 32, GlobalMB: 2}), nil
	case 5: // FSD style [18]
		return base("Arch5", Spatial{K: 32, C: 1, OX: 8, OY: 4},
			MemHier{RegPerPEBits: 40, LocalKB: 2, GlobalMB: 2}), nil
	case 6: // the Sec. II accelerator scaled to 1024 PEs
		return base("Arch6", Spatial{K: 32, C: 32, OX: 1, OY: 1},
			MemHier{RegPerPEBits: 26, LocalKB: 64, GlobalMB: 0.5}), nil
	default:
		return nil, fmt.Errorf("arch: Table II defines architectures 1-6, got %d", n)
	}
}

// AllTableII returns the six presets in order.
func AllTableII() []*Accel {
	out := make([]*Accel, 0, 6)
	for i := 1; i <= 6; i++ {
		a, err := TableII(i)
		if err != nil {
			panic(err) // unreachable: 1..6 are defined
		}
		out = append(out, a)
	}
	return out
}
