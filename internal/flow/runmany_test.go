package flow

import (
	"bytes"
	"reflect"
	"testing"

	"m3d/internal/exec"
	"m3d/internal/macro"
	"m3d/internal/tech"
)

func runManySpecs() []SoCSpec {
	tiny := SoCSpec{
		ArrayRows: 2, ArrayCols: 2,
		RRAMCapBits:    2 << 20,
		BankWordBits:   64,
		GlobalSRAMBits: 64 << 10,
		Seed:           1,
	}
	second := tiny
	second.Style = macro.Style3D
	second.NumCS = 2
	second.Banks = 2
	third := tiny
	third.Seed = 7
	return []SoCSpec{tiny, second, third}
}

// stripDB clears the retained design database (fresh pointer graphs per
// run, so never DeepEqual across runs) leaving the reported metrics.
func stripDB(r *Result) *Result {
	c := *r
	c.pdk, c.nl, c.routes = nil, nil, nil
	return &c
}

// TestRunManyMatchesSerial proves the batched flow is equivalent to
// serial Run calls at pool widths 1, 2, and 8: same specs, same seeds,
// deep-equal reports in spec order.
func TestRunManyMatchesSerial(t *testing.T) {
	p := tech.Default130()
	specs := runManySpecs()

	want := make([]*Result, len(specs))
	for i, s := range specs {
		r, err := Run(p, s)
		if err != nil {
			t.Fatalf("serial spec %d: %v", i, err)
		}
		want[i] = stripDB(r)
	}

	for _, width := range []int{1, 2, 8} {
		got, err := RunMany(p, specs, exec.WithWorkers(width))
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		if len(got) != len(want) {
			t.Fatalf("width %d: %d results, want %d", width, len(got), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(stripDB(got[i]), want[i]) {
				t.Errorf("width %d: spec %d result differs from serial Run", width, i)
			}
		}
	}
}

// TestRunManyDedupesIdenticalSpecs checks the single-flight memo: two
// identical cacheable specs share one evaluation (and one *Result).
func TestRunManyDedupesIdenticalSpecs(t *testing.T) {
	p := tech.Default130()
	spec := runManySpecs()[0]
	results, err := RunMany(p, []SoCSpec{spec, spec}, exec.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if results[0] != results[1] {
		t.Error("identical specs were evaluated separately (cache miss)")
	}
}

// TestRunManyWriterSpecsShareCache: export sinks no longer defeat the
// memo — identical specs share one evaluation even when each requests a
// writer (deprecated field or WithSinksAt), and every sink is replayed
// from the shared result with identical bytes.
func TestRunManyWriterSpecsShareCache(t *testing.T) {
	p := tech.Default130()
	spec := runManySpecs()[0]
	var v1, v2, v3 bytes.Buffer
	a, b := spec, spec
	a.WriteVerilog = &v1 // deprecated field path
	b.WriteVerilog = &v2
	results, err := RunMany(p, []SoCSpec{a, b},
		exec.WithWorkers(1), WithSinksAt(1, Sinks{Verilog: &v3}))
	if err != nil {
		t.Fatal(err)
	}
	if results[0] != results[1] {
		t.Error("identical writer specs were evaluated separately (cache miss)")
	}
	if v1.Len() == 0 {
		t.Fatal("writer sink 0 not filled")
	}
	if !bytes.Equal(v1.Bytes(), v2.Bytes()) || !bytes.Equal(v1.Bytes(), v3.Bytes()) {
		t.Errorf("replayed exports diverged: %d, %d, %d bytes", v1.Len(), v2.Len(), v3.Len())
	}
}

func TestRunManyPropagatesError(t *testing.T) {
	p := tech.Default130()
	bad := runManySpecs()[0]
	bad.TargetClockHz = -1 // withDefaults keeps it; sta will receive a negative period
	bad.RRAMCapBits = -5   // invalid macro capacity
	specs := []SoCSpec{runManySpecs()[0], bad}
	if _, err := RunMany(p, specs, exec.WithWorkers(2)); err == nil {
		t.Fatal("expected error from invalid spec")
	}
}
