package flow

import (
	"testing"

	"m3d/internal/macro"
	"m3d/internal/tech"
)

func BenchmarkM3DFlow(b *testing.B) {
	p := tech.Default130()
	spec := SoCSpec{
		ArrayRows: 3, ArrayCols: 3,
		RRAMCapBits:    4 << 20,
		GlobalSRAMBits: 64 << 10,
		NumCS:          2,
		Banks:          2,
		Style:          macro.Style3D,
		Seed:           1,
	}
	for i := 0; i < b.N; i++ {
		if _, err := Run(p, spec); err != nil {
			b.Fatal(err)
		}
	}
}
