package flow

import (
	"testing"

	"m3d/internal/exec"
	"m3d/internal/tech"
)

// benchSpecs is a reduced RunMany batch: four distinct tiny SoCs (different
// seeds) so nothing hits the memo cache and every spec runs the full
// synthesize→partition→place→route→sign-off pipeline.
func benchSpecs() []SoCSpec {
	base := SoCSpec{
		ArrayRows: 2, ArrayCols: 2,
		RRAMCapBits:    2 << 20,
		BankWordBits:   64,
		GlobalSRAMBits: 64 << 10,
	}
	specs := make([]SoCSpec, 4)
	for i := range specs {
		specs[i] = base
		specs[i].Seed = int64(i + 1)
	}
	return specs
}

// BenchmarkRunFlowReduced runs one reduced spec through the full
// synthesize→place→route→sign-off pipeline — the perf pass's headline
// number. Tracked by scripts/benchdiff.sh for both ns/op and allocs/op.
func BenchmarkRunFlowReduced(b *testing.B) {
	p := tech.Default130()
	spec := benchSpecs()[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(p, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunManySerial runs the batch through sequential Run calls —
// the pre-engine behaviour.
func BenchmarkRunManySerial(b *testing.B) {
	p := tech.Default130()
	specs := benchSpecs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, s := range specs {
			if _, err := Run(p, s); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkRunManyParallel runs the same batch through the worker pool at
// the default width (GOMAXPROCS or M3D_WORKERS).
func BenchmarkRunManyParallel(b *testing.B) {
	p := tech.Default130()
	specs := benchSpecs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunMany(p, specs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunManyParallelWidth4 pins four workers — one per spec — the
// configuration the ISSUE's speedup criterion measures on a ≥4-core host.
func BenchmarkRunManyParallelWidth4(b *testing.B) {
	p := tech.Default130()
	specs := benchSpecs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunMany(p, specs, exec.WithWorkers(4)); err != nil {
			b.Fatal(err)
		}
	}
}
