package flow

import (
	"context"

	"m3d/internal/exec"
	"m3d/internal/tech"
)

// RunMany executes Run for every spec on the exec worker pool and returns
// the results in spec order (pool width and cancellation via exec.Option;
// default width is exec.DefaultWorkers). Each run is independent: the
// shared PDK is read-only throughout the flow, and all randomized stages
// (tier partitioning, global placement, annealed refinement) draw from
// per-run generators seeded by the spec's Seed, so batches are
// race-detector clean and each spec's result is identical to a serial
// Run of the same spec.
//
// Identical specs without writer sinks are evaluated once behind a
// single-flight memo cache and share one *Result, so design-space sweeps
// that revisit a configuration (e.g. a baseline appearing in several
// comparisons) pay for it once. Specs that stream GDS/Verilog/DEF bypass
// the cache: their writers are side effects that must happen per spec.
func RunMany(p *tech.PDK, specs []SoCSpec, opts ...exec.Option) ([]*Result, error) {
	cache := &exec.Cache[SoCSpec, *Result]{}
	return exec.Map(specs, func(_ context.Context, _ int, spec SoCSpec) (*Result, error) {
		spec = spec.withDefaults()
		if spec.WriteGDS != nil || spec.WriteVerilog != nil || spec.WriteDEF != nil {
			return Run(p, spec)
		}
		return cache.Do(spec, func() (*Result, error) { return Run(p, spec) })
	}, opts...)
}
