package flow

import (
	"context"

	"m3d/internal/exec"
	"m3d/internal/tech"
)

// RunMany executes the flow for every spec on the exec worker pool and
// returns the results in spec order (pool width, cancellation, tracing
// and metrics via the shared exec.Option surface; default width is
// exec.DefaultWorkers). Each run is independent: the shared PDK is
// read-only throughout the flow, and all randomized stages (tier
// partitioning, global placement, annealed refinement) draw from per-run
// generators seeded by the spec's Seed, so batches are race-detector
// clean and each spec's result is identical to a serial Run of the same
// spec.
//
// Identical specs are evaluated once behind a single-flight memo cache
// and share one *Result; the registry's flow.memo.hits / flow.memo.misses
// counters account for the cache. Export sinks — WithSinksAt(i, ...)
// options or the deprecated writer fields on the specs — no longer
// defeat the cache: specs are memoized by their pure value, and the
// requested exports are replayed from the shared results afterwards
// (deterministically, in spec order).
func RunMany(p *tech.PDK, specs []SoCSpec, opts ...exec.Option) ([]*Result, error) {
	return runMany(exec.Resolve(opts...), p, specs)
}

// RunManyContext is RunMany under an explicit context: cancellation stops
// dispatch (error matches errs.ErrCanceled) and a tracer/registry on the
// context instruments the runs.
func RunManyContext(ctx context.Context, p *tech.PDK, specs []SoCSpec, opts ...exec.Option) ([]*Result, error) {
	return runMany(resolve(ctx, opts), p, specs)
}

func runMany(st *exec.Settings, p *tech.PDK, specs []SoCSpec) ([]*Result, error) {
	cache := &exec.Cache[SoCSpec, *Result]{}
	hits := st.Metrics.Counter("flow.memo.hits")
	misses := st.Metrics.Counter("flow.memo.misses")
	// Capture the batch's sink options, then strip them from the compute
	// settings (the values map is shared by the shallow copy): the
	// memoized runs are pure, exports are replayed below. WithSinks (no
	// index) addresses the primary variant, spec 0.
	single := sinksOf(st)
	perIdx := sinksAt(st)
	inner := *st
	inner.Label = "flow.runmany"
	inner.SetValue(sinksKey{}, Sinks{})
	results, err := exec.MapWith(&inner, specs, func(ctx context.Context, _ int, spec SoCSpec) (*Result, error) {
		key := spec.withDefaults().pure()
		return cache.DoMetered(key, hits, misses, func() (*Result, error) {
			return runWith(ctx, &inner, p, key)
		})
	})
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		sinks := Sinks{
			GDS:     specs[i].WriteGDS,
			Verilog: specs[i].WriteVerilog,
			DEF:     specs[i].WriteDEF,
		}.tee(perIdx[i])
		if i == 0 {
			sinks = sinks.tee(single)
		}
		if sinks.empty() {
			continue
		}
		if err := res.export(sinks); err != nil {
			return nil, err
		}
	}
	return results, nil
}
