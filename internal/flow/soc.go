package flow

import (
	"fmt"

	"m3d/internal/cell"
	"m3d/internal/macro"
	"m3d/internal/netlist"
	"m3d/internal/synth"
	"m3d/internal/tech"
)

// socParts records what the SoC generator produced, for area accounting
// and floorplanning.
type socParts struct {
	nl    *netlist.Netlist
	banks []*macro.RRAMBank
	srams []*macro.SRAM
	// bankInsts / sramInsts are the macro instances, in order.
	bankInsts, sramInsts []*netlist.Instance
	// csRanges are [first, last) instance-ID ranges of each CS's cells.
	csRanges [][2]int
	// csAreaNM2 is the standard-cell area of one CS (average).
	csAreaNM2 int64
}

// buildSoC elaborates the accelerator SoC netlist per the spec: NumCS
// systolic computing sub-systems, per-CS SRAM buffer macros, RRAM bank
// macros in the requested style, per-bank Si peripheral logic, and a top
// controller.
func buildSoC(p *tech.PDK, lib *cell.Library, spec SoCSpec) (*socParts, error) {
	b := synth.NewBuilder(fmt.Sprintf("soc_%s", spec.Style), lib)
	parts := &socParts{nl: b.NL}

	// Computing sub-systems.
	var totalCSArea int64
	for cs := 0; cs < spec.NumCS; cs++ {
		res := b.Systolic(fmt.Sprintf("cs%d", cs), synth.SystolicSpec{
			Rows: spec.ArrayRows, Cols: spec.ArrayCols,
			ActBits: spec.ActBits, WeightBits: spec.WeightBits, AccBits: spec.AccBits,
			Activity: 0.25,
		})
		b.FSM(fmt.Sprintf("cs%d_ctl", cs), 8, 3)
		for id := res.FirstCell; id < len(b.NL.Instances); id++ {
			totalCSArea += b.NL.Instances[id].AreaNM2(p)
		}
		parts.csRanges = append(parts.csRanges, [2]int{res.FirstCell, len(b.NL.Instances)})

		// Per-CS activation buffer macro.
		sram, err := macro.NewSRAM(p, macro.SRAMSpec{
			CapacityBits: spec.GlobalSRAMBits,
			WordBits:     spec.ActBits * spec.ArrayRows,
		})
		if err != nil {
			return nil, fmt.Errorf("flow: CS %d SRAM: %w", cs, err)
		}
		parts.srams = append(parts.srams, sram)
		inst := b.NL.AddMacro(fmt.Sprintf("cs%d_buf", cs), sram.Ref, tech.TierSiCMOS)
		parts.sramInsts = append(parts.sramInsts, inst)
		connectMacro(b, inst, spec.ActBits*spec.ArrayRows/2)
	}
	parts.csAreaNM2 = totalCSArea / int64(spec.NumCS)

	// RRAM banks with Si peripheral/controller logic.
	banks, err := macro.BankSet(p, spec.RRAMCapBits, spec.Banks, spec.BankWordBits, spec.Style)
	if err != nil {
		return nil, fmt.Errorf("flow: banks: %w", err)
	}
	parts.banks = banks
	for i, bank := range banks {
		inst := b.NL.AddMacro(fmt.Sprintf("bank%d", i), bank.Ref, tech.TierRRAM)
		parts.bankInsts = append(parts.bankInsts, inst)
		b.BankPeriph(fmt.Sprintf("bank%d_p", i), 16)
		connectMacro(b, inst, 16)
	}

	// Top-level control.
	b.FSM("top_ctl", 12, 4)

	if err := b.NL.Check(); err != nil {
		return nil, fmt.Errorf("flow: SoC netlist: %w", err)
	}
	return parts, nil
}

// connectMacro wires a macro instance into the netlist with nPins
// representative data/address connections (driver buffers into the macro,
// macro data out into capture registers).
func connectMacro(b *synth.Builder, inst *netlist.Instance, nPins int) {
	if nPins < 2 {
		nPins = 2
	}
	lib := b.Lib
	for i := 0; i < nPins/2; i++ {
		// Input to the macro.
		src := b.Input(fmt.Sprintf("%s_a%d", inst.Name, i), 0.2)
		b.NL.MustPin(inst, fmt.Sprintf("A%d", i), false, inst.Macro.PinCapF, src)
	}
	for i := 0; i < nPins/2; i++ {
		// Output from the macro into a capture register.
		n := b.NL.AddNet(fmt.Sprintf("%s_q%d", inst.Name, i), 0.2)
		b.NL.MustPin(inst, fmt.Sprintf("Q%d", i), true, 0, n)
		ff := b.NL.AddCell(fmt.Sprintf("%s_cap%d", inst.Name, i), lib.MustPick(cell.DFF, 1))
		b.NL.MustPin(ff, "D", false, ff.Cell.InputCapF, n)
		b.NL.MustPin(ff, "CK", false, ff.Cell.InputCapF*0.8, b.Clk)
	}
}
