package flow

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"m3d/internal/errs"
	"m3d/internal/exec"
	"m3d/internal/obs"
	"m3d/internal/tech"
)

// flowStageNames is the span taxonomy in End order: every stage of the
// Fig. 4b flow, then the enclosing root span.
var flowStageNames = []string{
	"flow.synth", "flow.floorplan", "flow.place", "flow.cts", "flow.route",
	"flow.sta", "flow.power", "flow.signoff", "flow.gds", "flow.run",
}

// TestRunFlowStageSpans asserts the tentpole's span contract: one span
// per flow stage per run, in stage order, carrying the style/CS
// attributes, with skipped stages present as zero-length spans — via the
// context-first API with context-attached sinks.
func TestRunFlowStageSpans(t *testing.T) {
	p := tech.Default130()
	rec := obs.NewRecorder()
	reg := obs.NewRegistry()
	ctx := obs.ContextWithTracer(context.Background(), rec)
	ctx = obs.ContextWithMetrics(ctx, reg)

	if _, err := RunContext(ctx, p, runManySpecs()[0]); err != nil {
		t.Fatal(err)
	}
	if got := rec.Names(); !reflect.DeepEqual(got, flowStageNames) {
		t.Fatalf("span sequence = %v\nwant %v", got, flowStageNames)
	}
	root := rec.Find("flow.run")[0]
	if root.Attr("style") != "2D" || root.Attr("cs") != "1" {
		t.Errorf("root attrs = %v", root.Attrs)
	}
	// No CTS and no export sinks in this spec: both stages must still
	// appear, flagged skipped, with no work inside (sub-millisecond span).
	for _, name := range []string{"flow.cts", "flow.gds"} {
		sp := rec.Find(name)[0]
		if sp.Attr("skipped") != "true" || sp.Dur() >= time.Millisecond {
			t.Errorf("%s: skipped=%q dur=%v, want flagged near-zero span", name, sp.Attr("skipped"), sp.Dur())
		}
	}
	// Executed stages feed their wall-time histograms.
	for _, stage := range []string{"synth", "floorplan", "place", "route", "sta", "power", "signoff"} {
		if n := reg.Histogram("flow.stage.seconds." + stage).Count(); n != 1 {
			t.Errorf("flow.stage.seconds.%s count = %d, want 1", stage, n)
		}
	}
	if n := reg.Histogram("flow.stage.seconds.cts").Count(); n != 0 {
		t.Errorf("skipped cts recorded %d histogram samples", n)
	}
}

// TestRunManyMemoCounters asserts the memo accounting contract at pool
// widths 1, 2 and 8: misses == distinct specs and hits == duplicates,
// independent of scheduling (the interner counts the miss; single-flight
// waiters count hits).
func TestRunManyMemoCounters(t *testing.T) {
	p := tech.Default130()
	a := runManySpecs()[0]
	b := a
	b.Seed = 7
	specs := []SoCSpec{a, a, b, a} // 2 distinct, 2 duplicates

	for _, width := range []int{1, 2, 8} {
		reg := obs.NewRegistry()
		if _, err := RunMany(p, specs, exec.WithWorkers(width), exec.WithMetrics(reg)); err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		snap := reg.Snapshot()
		if got := snap.Counters["flow.memo.misses"]; got != 2 {
			t.Errorf("width %d: misses = %d, want 2", width, got)
		}
		if got := snap.Counters["flow.memo.hits"]; got != 2 {
			t.Errorf("width %d: hits = %d, want 2", width, got)
		}
		if got := snap.Counters["exec.tasks"]; got != int64(len(specs)) {
			t.Errorf("width %d: exec.tasks = %d, want %d", width, got, len(specs))
		}
		want := int64(width)
		if width > len(specs) {
			want = int64(len(specs))
		}
		if got := snap.Gauges["exec.pool.width"]; got != want {
			t.Errorf("width %d: exec.pool.width = %d, want %d", width, got, want)
		}
	}
}

// TestRunManyTaskSpans: each batched run gets one labeled per-task span.
func TestRunManyTaskSpans(t *testing.T) {
	p := tech.Default130()
	rec := obs.NewRecorder()
	specs := runManySpecs()[:2]
	if _, err := RunMany(p, specs, exec.WithWorkers(2), exec.WithTracer(rec)); err != nil {
		t.Fatal(err)
	}
	if got := len(rec.Find("flow.runmany")); got != len(specs) {
		t.Errorf("%d flow.runmany task spans, want %d", got, len(specs))
	}
	if got := len(rec.Find("flow.run")); got != len(specs) {
		t.Errorf("%d flow.run root spans, want %d", got, len(specs))
	}
}

// TestRunContextCanceled: a canceled context surfaces as an error
// matching both the m3d sentinel and the stdlib sentinel.
func TestRunContextCanceled(t *testing.T) {
	p := tech.Default130()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, p, runManySpecs()[0])
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if !errors.Is(err, errs.ErrCanceled) {
		t.Errorf("error %v does not match errs.ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not match context.Canceled", err)
	}

	if _, err := RunManyContext(ctx, p, runManySpecs()); !errors.Is(err, errs.ErrCanceled) {
		t.Errorf("RunManyContext error %v does not match errs.ErrCanceled", err)
	}
}

// TestRunBadSpec: validation failures match ErrBadSpec.
func TestRunBadSpec(t *testing.T) {
	p := tech.Default130()
	bad := runManySpecs()[0]
	bad.ArrayRows = -1
	_, err := Run(p, bad)
	if !errors.Is(err, errs.ErrBadSpec) {
		t.Errorf("error %v does not match errs.ErrBadSpec", err)
	}
}

// TestWithThermalCheck: the opt-in Eq. 17 sign-off fails a run whose
// stack exceeds the budget (and passes an unbounded one).
func TestWithThermalCheck(t *testing.T) {
	p := tech.Default130()
	spec := runManySpecs()[0]
	_, err := Run(p, spec, WithThermalCheck(1e-9))
	if !errors.Is(err, errs.ErrThermalLimit) {
		t.Fatalf("error %v does not match errs.ErrThermalLimit", err)
	}
	if _, err := Run(p, spec, WithThermalCheck(1e9)); err != nil {
		t.Fatalf("generous budget failed: %v", err)
	}
}

// BenchmarkRunFlow is the overhead baseline: no observability attached.
func BenchmarkRunFlow(b *testing.B) {
	p := tech.Default130()
	spec := runManySpecs()[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(p, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunFlowNopTracer measures the tracing fast path: a live (but
// no-op) tracer plus a registry on every stage. The budget is <2% over
// BenchmarkRunFlow (see EXPERIMENTS.md).
func BenchmarkRunFlowNopTracer(b *testing.B) {
	p := tech.Default130()
	spec := runManySpecs()[0]
	reg := obs.NewRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(p, spec, exec.WithTracer(obs.Nop()), exec.WithMetrics(reg)); err != nil {
			b.Fatal(err)
		}
	}
}
