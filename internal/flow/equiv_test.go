package flow

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"m3d/internal/exec"
	"m3d/internal/tech"
)

var update = flag.Bool("update", false, "rewrite golden files")

// equivReport renders the fields of each result that the perf work must
// not perturb — counts, wirelength, timing, hold — in a fixed format, so
// the golden pins the flow's numeric output bit-for-bit.
func equivReport(results []*Result) []byte {
	var b bytes.Buffer
	for i, r := range results {
		fmt.Fprintf(&b,
			"spec %d: cells=%d macros=%d hpwl=%d routedwl=%d vias=%d ilvs=%d overflow=%d upsized=%d fmax=%.9e critical=%.9e met=%v",
			i, r.Cells, r.Macros, r.HPWL, r.RoutedWL, r.Vias, r.ILVs,
			r.OverflowEdges, r.Upsized, r.FmaxHz, r.CriticalPathS, r.TimingMet)
		if r.Hold != nil {
			fmt.Fprintf(&b, " hold=%.9e/%d", r.Hold.WorstSlackS, r.Hold.Violations)
		}
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// TestFlowEquivalenceGoldensAcrossWidths asserts the optimized
// place/route/sta path produces byte-identical DEF and report output vs
// the checked-in goldens at pool widths 1, 2, and 8. Run with -update to
// rewrite the goldens (recorded at width 1).
// TestFlowFullFeatureGoldensAcrossWidths is the same contract over the
// full-featured flow — CTS (clock nets routed, hold on a real tree) and
// logic folding (two placement tiers, CNFET re-mapping) — which the
// reduced benchmark spec never exercises. DEF, numeric report, and raw
// GDS bytes must be identical at pool widths 1, 2, and 8.
func TestFlowFullFeatureGoldensAcrossWidths(t *testing.T) {
	p := tech.Default130()
	spec := benchSpecs()[0]
	spec.RunCTS = true
	spec.FoldLogic = true
	defGolden := filepath.Join("testdata", "equiv_full_def.golden")
	repGolden := filepath.Join("testdata", "equiv_full_report.golden")
	gdsGolden := filepath.Join("testdata", "equiv_full_gds.golden")

	for _, width := range []int{1, 2, 8} {
		res, err := Run(p, spec, exec.WithWorkers(width))
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		var def, gds bytes.Buffer
		if err := res.WriteDEF(&def); err != nil {
			t.Fatalf("width %d: DEF export: %v", width, err)
		}
		if err := res.WriteGDS(&gds); err != nil {
			t.Fatalf("width %d: GDS export: %v", width, err)
		}
		rep := equivReport([]*Result{res})
		if res.CTS == nil {
			t.Fatalf("width %d: CTS report missing", width)
		}

		if *update && width == 1 {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			for _, g := range []struct {
				path string
				data []byte
			}{{defGolden, def.Bytes()}, {repGolden, rep}, {gdsGolden, gds.Bytes()}} {
				if err := os.WriteFile(g.path, g.data, 0o644); err != nil {
					t.Fatal(err)
				}
			}
		}
		for _, g := range []struct {
			name string
			path string
			got  []byte
		}{{"DEF", defGolden, def.Bytes()}, {"report", repGolden, rep}, {"GDS", gdsGolden, gds.Bytes()}} {
			want, err := os.ReadFile(g.path)
			if err != nil {
				t.Fatalf("missing golden (regenerate with go test ./internal/flow -run FullFeature -update): %v", err)
			}
			if !bytes.Equal(g.got, want) {
				t.Errorf("width %d: %s output differs from golden (%d vs %d bytes)",
					width, g.name, len(g.got), len(want))
			}
		}
	}
}

func TestFlowEquivalenceGoldensAcrossWidths(t *testing.T) {
	p := tech.Default130()
	specs := benchSpecs()[:2]
	defGolden := filepath.Join("testdata", "equiv_def.golden")
	repGolden := filepath.Join("testdata", "equiv_report.golden")

	for _, width := range []int{1, 2, 8} {
		results, err := RunMany(p, specs, exec.WithWorkers(width))
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		var def bytes.Buffer
		if err := results[0].WriteDEF(&def); err != nil {
			t.Fatalf("width %d: DEF export: %v", width, err)
		}
		rep := equivReport(results)

		if *update && width == 1 {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(defGolden, def.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(repGolden, rep, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		wantDef, err := os.ReadFile(defGolden)
		if err != nil {
			t.Fatalf("missing golden (regenerate with go test ./internal/flow -run Equivalence -update): %v", err)
		}
		if !bytes.Equal(def.Bytes(), wantDef) {
			t.Errorf("width %d: DEF output differs from golden (%d vs %d bytes)",
				width, def.Len(), len(wantDef))
		}
		wantRep, err := os.ReadFile(repGolden)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rep, wantRep) {
			t.Errorf("width %d: report differs from golden\n got: %s\nwant: %s",
				width, rep, wantRep)
		}
	}
}
