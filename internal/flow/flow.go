// Package flow orchestrates the RTL-to-GDS implementation flow of Fig. 4b
// over the in-repo EDA substrate: synthesis (structural elaboration),
// floorplanning with style-dependent RRAM macro blockages, placement,
// 3D global routing, post-route drive optimization, static timing, power
// analysis, and GDS export. Running the flow twice — once with 2D-style
// banks (Si access FETs) and once with M3D-style banks on the same die —
// reproduces the paper's Sec. II physical-design case study.
package flow

import (
	"fmt"
	"io"
	"math"

	"m3d/internal/cell"
	"m3d/internal/cts"
	"m3d/internal/def"
	"m3d/internal/drc"
	"m3d/internal/floorplan"
	"m3d/internal/gds"
	"m3d/internal/geom"
	"m3d/internal/irdrop"
	"m3d/internal/macro"
	"m3d/internal/place"
	"m3d/internal/power"
	"m3d/internal/route"
	"m3d/internal/sta"
	"m3d/internal/tech"
	"m3d/internal/verilog"
)

// SoCSpec describes one accelerator SoC implementation run.
type SoCSpec struct {
	// Style selects 2D (Si access FETs under RRAM) or M3D (CNFET access
	// FETs above RRAM).
	Style macro.Style
	// NumCS is the number of parallel computing sub-systems (1 in the 2D
	// baseline, 8 in the paper's M3D design).
	NumCS int
	// ArrayRows/ArrayCols size each CS's systolic array. The full case
	// study uses 16×16; reduced sizes run the identical flow faster.
	ArrayRows, ArrayCols         int
	ActBits, WeightBits, AccBits int
	RRAMCapBits                  int64
	Banks                        int
	BankWordBits                 int
	GlobalSRAMBits               int64
	TargetClockHz                float64
	Seed                         int64
	// Die forces the footprint (pass the 2D result's die to the M3D run
	// for an iso-footprint comparison). Empty = size automatically.
	Die geom.Rect
	// WriteGDS streams the final layout to this writer when non-nil.
	WriteGDS io.Writer
	// WriteVerilog streams the synthesized structural netlist when
	// non-nil.
	WriteVerilog io.Writer
	// WriteDEF streams the final placement when non-nil.
	WriteDEF io.Writer
	// FoldLogic enables the refs [3-4]-style M3D folding flow: logic cells
	// are min-cut partitioned between the Si and CNFET tiers (CNFET cells
	// re-mapped to the weaker BEOL library) and the footprint shrinks to
	// roughly half — iso-architecture, physical design only.
	FoldLogic bool
	// RunCTS synthesizes a buffered clock tree after placement instead of
	// treating the clock as an ideal net; the tree is legalized and its
	// nets are routed.
	RunCTS bool
}

func (s SoCSpec) withDefaults() SoCSpec {
	if s.NumCS == 0 {
		s.NumCS = 1
	}
	if s.ArrayRows == 0 {
		s.ArrayRows = 16
	}
	if s.ArrayCols == 0 {
		s.ArrayCols = 16
	}
	if s.ActBits == 0 {
		s.ActBits = 8
	}
	if s.WeightBits == 0 {
		s.WeightBits = 8
	}
	if s.AccBits == 0 {
		s.AccBits = 24
	}
	if s.RRAMCapBits == 0 {
		s.RRAMCapBits = 64 << 23
	}
	if s.Banks == 0 {
		s.Banks = s.NumCS
	}
	if s.BankWordBits == 0 {
		s.BankWordBits = 256
	}
	if s.GlobalSRAMBits == 0 {
		s.GlobalSRAMBits = 4 << 20 // 0.5 MB per CS
	}
	if s.TargetClockHz == 0 {
		s.TargetClockHz = 20e6
	}
	return s
}

// AreaReport carries the measured area decomposition (feeds Eq. 2).
type AreaReport struct {
	// CSNM2 is the standard-cell area of one computing sub-system.
	CSNM2 int64
	// CellsNM2 is the total RRAM cell-array area (A_M^cells).
	CellsNM2 int64
	// PerifNM2 is the memory peripheral area (A_M^perif).
	PerifNM2 int64
	// FreeSiNM2 is the placeable Si area left after floorplanning.
	FreeSiNM2 int64
}

// Result is the flow output for one SoC.
type Result struct {
	Spec SoCSpec
	Die  geom.Rect

	Cells, Macros int
	HPWL          int64
	RoutedWL      int64
	WLByLayer     []int64
	Vias, ILVs    int
	OverflowEdges int

	FmaxHz        float64
	CriticalPathS float64
	TimingMet     bool
	Upsized       int
	// Hold is the min-delay analysis at sign-off.
	Hold *sta.HoldReport

	// CTS is the clock-tree report (nil when RunCTS is off).
	CTS *cts.Report
	// Audit is the full-chip DRC sign-off report.
	Audit *drc.Report
	// IRDrop is the power-grid analysis at the operating point.
	IRDrop *irdrop.Report

	Power *power.Breakdown
	Area  AreaReport
}

// FootprintMM2 returns the die area in mm².
func (r *Result) FootprintMM2() float64 {
	return float64(r.Die.Area()) / 1e12
}

// Run executes the full flow for one SoC spec.
func Run(p *tech.PDK, spec SoCSpec) (*Result, error) {
	spec = spec.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("flow: invalid PDK: %w", err)
	}
	siLib, err := cell.NewLibrary(p, tech.TierSiCMOS)
	if err != nil {
		return nil, err
	}

	// 1. Synthesis.
	parts, err := buildSoC(p, siLib, spec)
	if err != nil {
		return nil, err
	}
	nl := parts.nl

	// 1b. Optional logic folding (tier assignment + CNFET re-mapping).
	var cnLib *cell.Library
	if spec.FoldLogic {
		cnLib, err = cell.NewLibrary(p, tech.TierCNFET)
		if err != nil {
			return nil, err
		}
		var total int64
		for _, c := range nl.MovableCells() {
			total += c.AreaNM2(p)
		}
		caps := map[tech.Tier]int64{
			tech.TierSiCMOS: total * 6 / 10,
			tech.TierCNFET:  total * 6 / 10,
		}
		if _, err := place.AssignTiers(nl, p, place.PartitionOptions{CapNM2: caps, Seed: spec.Seed}); err != nil {
			return nil, fmt.Errorf("flow: tier assignment: %w", err)
		}
		for _, c := range nl.MovableCells() {
			if c.Tier == tech.TierCNFET {
				c.Cell = cnLib.MustPick(c.Cell.Kind, c.Cell.Drive)
			}
		}
	}

	// 2+3. Floorplan and placement. An auto-sized die is grown and retried
	// when shelf-packing fragmentation or blockage-constrained placement
	// overflows it; a caller-forced die (iso-footprint comparisons) fails
	// hard instead.
	die := spec.Die
	forced := !die.Empty()
	if !forced {
		die, err = floorplan.SizeDie(p, nl, 0.55, 1.0)
		if err != nil {
			return nil, err
		}
		if spec.FoldLogic {
			// Folding splits the logic over two tiers (~50% logic footprint
			// reduction, refs [3-4]) but hard macros keep their area: size
			// the die for half the cell area plus the macros.
			st := nl.ComputeStats(p)
			var cellArea int64
			for _, a := range st.CellAreaNM2 {
				cellArea += a
			}
			total := float64(cellArea)/2/0.55 + float64(st.MacroAreaNM2)*1.15
			side := int64(math.Sqrt(total))
			side = (side/p.RowHeight + 1) * p.RowHeight
			die = geom.R(0, 0, side, side)
		}
	}
	tiers := []tech.Tier{tech.TierSiCMOS}
	if spec.FoldLogic {
		tiers = append(tiers, tech.TierCNFET)
	}
	var fp *floorplan.Floorplan
	for try := 0; ; try++ {
		fp, err = floorplan.New(p, die)
		if err != nil {
			return nil, err
		}
		if err = fp.PackMacros3D(nl.MacroInstances()); err == nil {
			for _, tier := range tiers {
				if _, err = place.Global(fp, nl, tier, place.Options{Seed: spec.Seed}); err != nil {
					break
				}
			}
			if err == nil {
				break
			}
		}
		if forced || try >= 6 {
			return nil, fmt.Errorf("flow: floorplan/place on die %v: %w", die, err)
		}
		die = geom.R(die.Lo.X, die.Lo.Y, die.Lo.X+die.W()*115/100, die.Lo.Y+die.H()*115/100)
	}
	// Detailed-placement refinement (annealed same-footprint swaps).
	for _, tier := range tiers {
		if _, err := place.Refine(fp, nl, tier, place.RefineOptions{Seed: spec.Seed}); err != nil {
			return nil, fmt.Errorf("flow: refine: %w", err)
		}
	}
	for _, tier := range tiers {
		if err := place.CheckLegal(fp, nl, tier); err != nil {
			return nil, fmt.Errorf("flow: placement not legal: %w", err)
		}
	}

	// 3b. Optional clock tree synthesis + re-legalization of the inserted
	// buffers.
	var ctsRep *cts.Report
	if spec.RunCTS {
		ctsRep, err = cts.Synthesize(p, nl, siLib, cts.Options{})
		if err != nil {
			return nil, fmt.Errorf("flow: cts: %w", err)
		}
		for _, tier := range tiers {
			if err := place.Legalize(fp, nl, tier); err != nil {
				return nil, fmt.Errorf("flow: post-CTS legalize: %w", err)
			}
		}
	}

	// 4. Global routing.
	routes, err := route.Route(fp, nl, route.Options{IncludeClock: spec.RunCTS})
	if err != nil {
		return nil, fmt.Errorf("flow: route: %w", err)
	}

	// 5. Post-route optimization + STA.
	wm := sta.NewWireModel(p, routes)
	libs := map[tech.Tier]*cell.Library{tech.TierSiCMOS: siLib}
	if cnLib != nil {
		libs[tech.TierCNFET] = cnLib
	}
	opt, err := sta.OptimizeDrives(p, nl, wm, libs, 1/spec.TargetClockHz, 4)
	if err != nil {
		return nil, fmt.Errorf("flow: sta: %w", err)
	}
	hold, err := sta.AnalyzeHold(p, nl, wm)
	if err != nil {
		return nil, fmt.Errorf("flow: hold: %w", err)
	}

	// 6. Power analysis at the achieved frequency.
	clock := spec.TargetClockHz
	if !opt.Final.Met() && opt.Final.FmaxHz > 0 {
		clock = opt.Final.FmaxHz
	}
	pw, err := power.Analyze(p, nl, wm, die, power.Options{ClockHz: clock})
	if err != nil {
		return nil, fmt.Errorf("flow: power: %w", err)
	}

	// 7. Area decomposition for the analytical framework.
	var cellsArea, perifArea int64
	for _, b := range parts.banks {
		cellsArea += b.CellArrayAreaNM2()
		perifArea += b.PeriphAreaNM2()
	}
	area := AreaReport{
		CSNM2:     parts.csAreaNM2,
		CellsNM2:  cellsArea,
		PerifNM2:  perifArea,
		FreeSiNM2: fp.FreeAreaNM2(tech.TierSiCMOS),
	}

	st := nl.ComputeStats(p)
	res := &Result{
		Spec:          spec,
		Die:           die,
		Cells:         st.Cells,
		Macros:        st.Macros,
		HPWL:          nl.TotalHPWL(),
		RoutedWL:      routes.TotalWLdbu,
		WLByLayer:     routes.WLByLayer,
		Vias:          routes.TotalVias,
		ILVs:          routes.TotalILVs,
		OverflowEdges: routes.OverflowEdges,
		FmaxHz:        opt.Final.FmaxHz,
		CriticalPathS: opt.Final.CriticalPathS,
		TimingMet:     opt.Final.Met(),
		Upsized:       opt.Upsized,
		Hold:          hold,
		CTS:           ctsRep,
		Power:         pw,
		Area:          area,
	}

	// 6b. Power-grid IR drop at the operating point.
	ir, err := irdrop.Analyze(p, die, pw.Density, irdrop.Options{})
	if err != nil {
		return nil, fmt.Errorf("flow: irdrop: %w", err)
	}

	// 7b. Full-chip sign-off audit.
	audit, err := drc.Audit(fp, nl, routes)
	if err != nil {
		return nil, fmt.Errorf("flow: drc: %w", err)
	}
	res.Audit = audit
	res.IRDrop = ir

	// 8. Interchange exports.
	if spec.WriteVerilog != nil {
		if err := verilog.Write(spec.WriteVerilog, nl); err != nil {
			return nil, fmt.Errorf("flow: verilog: %w", err)
		}
	}
	if spec.WriteDEF != nil {
		if err := def.Write(spec.WriteDEF, nl, die); err != nil {
			return nil, fmt.Errorf("flow: def: %w", err)
		}
	}
	if spec.WriteGDS != nil {
		lib, err := gds.FromDesign(p, nl, die, routes)
		if err != nil {
			return nil, fmt.Errorf("flow: gds: %w", err)
		}
		if err := lib.Encode(spec.WriteGDS); err != nil {
			return nil, fmt.Errorf("flow: gds encode: %w", err)
		}
	}
	return res, nil
}

// CaseStudy runs the paper's Sec. II comparison at the given scale: the 2D
// baseline (1 CS, 2D-style banks) sized automatically, then the M3D design
// (numCS CSs, M3D-style banks, numCS× banks) on the identical die —
// iso-footprint, iso-on-chip-memory-capacity by construction.
func CaseStudy(p *tech.PDK, scale SoCSpec, numCS int) (twoD, m3d *Result, err error) {
	scale = scale.withDefaults()

	spec2 := scale
	spec2.Style = macro.Style2D
	spec2.NumCS = 1
	spec2.Banks = 1
	twoD, err = Run(p, spec2)
	if err != nil {
		return nil, nil, fmt.Errorf("flow: 2D baseline: %w", err)
	}

	spec3 := scale
	spec3.Style = macro.Style3D
	spec3.NumCS = numCS
	spec3.Banks = numCS
	spec3.Die = twoD.Die // iso-footprint
	m3d, err = Run(p, spec3)
	if err != nil {
		return nil, nil, fmt.Errorf("flow: M3D design: %w", err)
	}
	return twoD, m3d, nil
}
