// Package flow orchestrates the RTL-to-GDS implementation flow of Fig. 4b
// over the in-repo EDA substrate: synthesis (structural elaboration),
// floorplanning with style-dependent RRAM macro blockages, placement,
// 3D global routing, post-route drive optimization, static timing, power
// analysis, and GDS export. Running the flow twice — once with 2D-style
// banks (Si access FETs) and once with M3D-style banks on the same die —
// reproduces the paper's Sec. II physical-design case study.
//
// API shape: RunContext/RunManyContext are the context-first entry
// points; Run/RunMany are thin wrappers over context.Background(). All
// of them accept the shared exec.Option surface (m3d.Option):
// WithWorkers, WithContext, WithTracer, WithMetrics, plus this package's
// export-sink options (WithGDS, WithVerilog, WithDEF, WithSinksAt).
// When a tracer is attached, every run emits one "flow.<stage>" span per
// stage — synth, floorplan, place, cts, route, sta, power, gds (skipped
// stages carry skipped="true") — under a "flow.run" root span; a metrics
// registry additionally collects per-stage wall-time histograms
// ("flow.stage.seconds.<stage>").
//
// Error contract: invalid specs fail with an error matching
// errs.ErrBadSpec; cancellation surfaces as errs.ErrCanceled (also
// matching the context sentinel); the optional WithThermalCheck sign-off
// fails with errs.ErrThermalLimit.
package flow

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"m3d/internal/cell"
	"m3d/internal/cts"
	"m3d/internal/def"
	"m3d/internal/drc"
	"m3d/internal/errs"
	"m3d/internal/exec"
	"m3d/internal/floorplan"
	"m3d/internal/gds"
	"m3d/internal/geom"
	"m3d/internal/irdrop"
	"m3d/internal/macro"
	"m3d/internal/netlist"
	"m3d/internal/obs"
	"m3d/internal/place"
	"m3d/internal/power"
	"m3d/internal/route"
	"m3d/internal/sta"
	"m3d/internal/tech"
	"m3d/internal/thermal"
	"m3d/internal/verilog"
)

// SoCSpec describes one accelerator SoC implementation run. A spec is a
// pure value: two equal specs describe the same design, which is what
// lets RunMany memoize repeated configurations.
type SoCSpec struct {
	// Style selects 2D (Si access FETs under RRAM) or M3D (CNFET access
	// FETs above RRAM).
	Style macro.Style
	// NumCS is the number of parallel computing sub-systems (1 in the 2D
	// baseline, 8 in the paper's M3D design).
	NumCS int
	// ArrayRows/ArrayCols size each CS's systolic array. The full case
	// study uses 16×16; reduced sizes run the identical flow faster.
	ArrayRows, ArrayCols         int
	ActBits, WeightBits, AccBits int
	RRAMCapBits                  int64
	Banks                        int
	BankWordBits                 int
	GlobalSRAMBits               int64
	TargetClockHz                float64
	Seed                         int64
	// Die forces the footprint (pass the 2D result's die to the M3D run
	// for an iso-footprint comparison). Empty = size automatically.
	Die geom.Rect
	// WriteGDS streams the final layout to this writer when non-nil.
	//
	// Deprecated: pass WithGDS (or WithSinks/WithSinksAt) to the run call
	// instead; writer fields make the spec impure and are only kept as a
	// compatibility shim. They are stripped before the spec is used as a
	// memo key.
	WriteGDS io.Writer
	// WriteVerilog streams the synthesized structural netlist when
	// non-nil.
	//
	// Deprecated: pass WithVerilog to the run call instead.
	WriteVerilog io.Writer
	// WriteDEF streams the final placement when non-nil.
	//
	// Deprecated: pass WithDEF to the run call instead.
	WriteDEF io.Writer
	// FoldLogic enables the refs [3-4]-style M3D folding flow: logic cells
	// are min-cut partitioned between the Si and CNFET tiers (CNFET cells
	// re-mapped to the weaker BEOL library) and the footprint shrinks to
	// roughly half — iso-architecture, physical design only.
	FoldLogic bool
	// RunCTS synthesizes a buffered clock tree after placement instead of
	// treating the clock as an ideal net; the tree is legalized and its
	// nets are routed.
	RunCTS bool
}

func (s SoCSpec) withDefaults() SoCSpec {
	if s.NumCS == 0 {
		s.NumCS = 1
	}
	if s.ArrayRows == 0 {
		s.ArrayRows = 16
	}
	if s.ArrayCols == 0 {
		s.ArrayCols = 16
	}
	if s.ActBits == 0 {
		s.ActBits = 8
	}
	if s.WeightBits == 0 {
		s.WeightBits = 8
	}
	if s.AccBits == 0 {
		s.AccBits = 24
	}
	if s.RRAMCapBits == 0 {
		s.RRAMCapBits = 64 << 23
	}
	if s.Banks == 0 {
		s.Banks = s.NumCS
	}
	if s.BankWordBits == 0 {
		s.BankWordBits = 256
	}
	if s.GlobalSRAMBits == 0 {
		s.GlobalSRAMBits = 4 << 20 // 0.5 MB per CS
	}
	if s.TargetClockHz == 0 {
		s.TargetClockHz = 20e6
	}
	return s
}

// pure returns the spec with the deprecated writer fields stripped — the
// memoizable value identity of the design.
func (s SoCSpec) pure() SoCSpec {
	s.WriteGDS, s.WriteVerilog, s.WriteDEF = nil, nil, nil
	return s
}

// Validate checks the spec (after default filling). Violations return an
// error matching errs.ErrBadSpec.
func (s SoCSpec) Validate() error {
	s = s.withDefaults()
	bad := func(format string, args ...any) error {
		return fmt.Errorf("flow: %w: %s", errs.ErrBadSpec, fmt.Sprintf(format, args...))
	}
	switch {
	case s.NumCS < 1:
		return bad("NumCS %d must be ≥ 1", s.NumCS)
	case s.ArrayRows < 1 || s.ArrayCols < 1:
		return bad("array %dx%d must be ≥ 1x1", s.ArrayRows, s.ArrayCols)
	case s.ActBits < 1 || s.WeightBits < 1 || s.AccBits < 1:
		return bad("bit widths act=%d weight=%d acc=%d must be ≥ 1", s.ActBits, s.WeightBits, s.AccBits)
	case s.RRAMCapBits < 0:
		return bad("RRAMCapBits %d must be ≥ 0", s.RRAMCapBits)
	case s.Banks < 1:
		return bad("Banks %d must be ≥ 1", s.Banks)
	case s.BankWordBits < 1:
		return bad("BankWordBits %d must be ≥ 1", s.BankWordBits)
	case s.GlobalSRAMBits < 0:
		return bad("GlobalSRAMBits %d must be ≥ 0", s.GlobalSRAMBits)
	case s.TargetClockHz <= 0:
		return bad("TargetClockHz %g must be positive", s.TargetClockHz)
	}
	return nil
}

// Sinks bundles the flow's export writers. Nil writers skip the export.
type Sinks struct {
	GDS, Verilog, DEF io.Writer
}

func (s Sinks) empty() bool { return s.GDS == nil && s.Verilog == nil && s.DEF == nil }

// merge overlays over on s: non-nil writers in over win.
func (s Sinks) merge(over Sinks) Sinks {
	if over.GDS != nil {
		s.GDS = over.GDS
	}
	if over.Verilog != nil {
		s.Verilog = over.Verilog
	}
	if over.DEF != nil {
		s.DEF = over.DEF
	}
	return s
}

func teeWriter(a, b io.Writer) io.Writer {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	default:
		return io.MultiWriter(a, b)
	}
}

// tee combines two sink sets so each export reaches both writers — used
// where a spec's deprecated writer fields meet the option sinks, so
// neither silently loses the export.
func (s Sinks) tee(o Sinks) Sinks {
	return Sinks{
		GDS:     teeWriter(s.GDS, o.GDS),
		Verilog: teeWriter(s.Verilog, o.Verilog),
		DEF:     teeWriter(s.DEF, o.DEF),
	}
}

type sinksKey struct{}

type sinksAtKey struct{}

type thermalKey struct{}

func sinksOf(st *exec.Settings) Sinks {
	s, _ := st.Value(sinksKey{}).(Sinks)
	return s
}

func mutateSinks(st *exec.Settings, f func(*Sinks)) {
	s, _ := st.Value(sinksKey{}).(Sinks)
	f(&s)
	st.SetValue(sinksKey{}, s)
}

// WithSinks attaches export writers to a Run/RunContext call (in
// RunMany it applies to spec index 0).
func WithSinks(s Sinks) exec.Option {
	return func(st *exec.Settings) {
		mutateSinks(st, func(dst *Sinks) { *dst = dst.merge(s) })
	}
}

// WithGDS streams the final layout of the run (RunMany: of spec 0) to w.
func WithGDS(w io.Writer) exec.Option {
	return func(st *exec.Settings) { mutateSinks(st, func(s *Sinks) { s.GDS = w }) }
}

// WithVerilog streams the synthesized structural netlist to w.
func WithVerilog(w io.Writer) exec.Option {
	return func(st *exec.Settings) { mutateSinks(st, func(s *Sinks) { s.Verilog = w }) }
}

// WithDEF streams the final placement DEF to w.
func WithDEF(w io.Writer) exec.Option {
	return func(st *exec.Settings) { mutateSinks(st, func(s *Sinks) { s.DEF = w }) }
}

// WithSinksAt attaches export writers to the i-th spec of a
// RunMany/RunManyContext call. Because specs stay pure values, the run
// itself is still memoized; only the exports are per-index side effects.
func WithSinksAt(i int, s Sinks) exec.Option {
	return func(st *exec.Settings) {
		m, _ := st.Value(sinksAtKey{}).(map[int]Sinks)
		if m == nil {
			m = make(map[int]Sinks)
			st.SetValue(sinksAtKey{}, m)
		}
		m[i] = m[i].merge(s)
	}
}

func sinksAt(st *exec.Settings) map[int]Sinks {
	m, _ := st.Value(sinksAtKey{}).(map[int]Sinks)
	return m
}

// WithThermalCheck adds an Eq. 17 thermal sign-off after power analysis:
// the run fails with an error matching errs.ErrThermalLimit when the
// stack's temperature rise exceeds maxRiseK (≤ 0 selects the PDK's
// MaxTempRiseK budget).
func WithThermalCheck(maxRiseK float64) exec.Option {
	return func(st *exec.Settings) { st.SetValue(thermalKey{}, maxRiseK) }
}

// AreaReport carries the measured area decomposition (feeds Eq. 2).
type AreaReport struct {
	// CSNM2 is the standard-cell area of one computing sub-system.
	CSNM2 int64
	// CellsNM2 is the total RRAM cell-array area (A_M^cells).
	CellsNM2 int64
	// PerifNM2 is the memory peripheral area (A_M^perif).
	PerifNM2 int64
	// FreeSiNM2 is the placeable Si area left after floorplanning.
	FreeSiNM2 int64
}

// Result is the flow output for one SoC. It retains the design database
// (netlist, routes, PDK), so exports can be replayed any time via
// WriteGDS/WriteVerilog/WriteDEF — which is how RunMany shares one
// memoized Result among duplicate specs while still filling every
// caller's sinks.
type Result struct {
	Spec SoCSpec
	Die  geom.Rect

	Cells, Macros int
	HPWL          int64
	RoutedWL      int64
	WLByLayer     []int64
	Vias, ILVs    int
	OverflowEdges int

	FmaxHz        float64
	CriticalPathS float64
	TimingMet     bool
	Upsized       int
	// Hold is the min-delay analysis at sign-off.
	Hold *sta.HoldReport

	// CTS is the clock-tree report (nil when RunCTS is off).
	CTS *cts.Report
	// Audit is the full-chip DRC sign-off report.
	Audit *drc.Report
	// IRDrop is the power-grid analysis at the operating point.
	IRDrop *irdrop.Report

	Power *power.Breakdown
	Area  AreaReport

	// Design database handles for export replay (read-only after the run).
	pdk    *tech.PDK
	nl     *netlist.Netlist
	routes *route.Result
}

// FootprintMM2 returns the die area in mm².
func (r *Result) FootprintMM2() float64 {
	return float64(r.Die.Area()) / 1e12
}

// Design exposes the retained design database — the PDK, the synthesized
// netlist and the routing result (routes may be nil on unrouted runs).
// Read-only: callers such as the Monte-Carlo yield engine (internal/vary)
// build their own Timers/WireModels over these shared structures.
func (r *Result) Design() (*tech.PDK, *netlist.Netlist, *route.Result) {
	return r.pdk, r.nl, r.routes
}

// WriteVerilog streams the synthesized structural netlist to w.
func (r *Result) WriteVerilog(w io.Writer) error {
	if r == nil || r.nl == nil {
		return fmt.Errorf("flow: result holds no netlist")
	}
	if err := verilog.Write(w, r.nl); err != nil {
		return fmt.Errorf("flow: verilog: %w", err)
	}
	return nil
}

// WriteDEF streams the final placement DEF to w.
func (r *Result) WriteDEF(w io.Writer) error {
	if r == nil || r.nl == nil {
		return fmt.Errorf("flow: result holds no netlist")
	}
	if err := def.Write(w, r.nl, r.Die); err != nil {
		return fmt.Errorf("flow: def: %w", err)
	}
	return nil
}

// WriteGDS streams the final layout to w.
func (r *Result) WriteGDS(w io.Writer) error {
	if r == nil || r.nl == nil || r.routes == nil {
		return fmt.Errorf("flow: result holds no routed design")
	}
	lib, err := gds.FromDesign(r.pdk, r.nl, r.Die, r.routes)
	if err != nil {
		return fmt.Errorf("flow: gds: %w", err)
	}
	if err := lib.Encode(w); err != nil {
		return fmt.Errorf("flow: gds encode: %w", err)
	}
	return nil
}

// export writes every non-nil sink.
func (r *Result) export(s Sinks) error {
	if s.Verilog != nil {
		if err := r.WriteVerilog(s.Verilog); err != nil {
			return err
		}
	}
	if s.DEF != nil {
		if err := r.WriteDEF(s.DEF); err != nil {
			return err
		}
	}
	if s.GDS != nil {
		if err := r.WriteGDS(s.GDS); err != nil {
			return err
		}
	}
	return nil
}

// stageTrace instruments the flow stages: one "flow.<stage>" span per
// stage on the tracer and one wall-time histogram sample per stage on
// the registry. With neither attached every call is a nil check.
type stageTrace struct {
	tr   obs.Tracer
	reg  *obs.Registry
	base []obs.Attr
}

// start opens a stage; the returned func closes it.
func (t stageTrace) start(name string) func() {
	if t.tr == nil && t.reg == nil {
		return func() {}
	}
	begin := time.Now()
	var sp obs.Span
	if t.tr != nil {
		sp = t.tr.StartSpan("flow."+name, t.base...)
	}
	return func() {
		if sp != nil {
			sp.End()
		}
		t.reg.Histogram("flow.stage.seconds." + name).Observe(time.Since(begin).Seconds())
	}
}

// skip emits a zero-length span marking a stage that did not run, so a
// trace always carries the full stage taxonomy per variant.
func (t stageTrace) skip(name string) {
	if t.tr == nil {
		return
	}
	attrs := append(append([]obs.Attr(nil), t.base...), obs.Bool("skipped", true))
	t.tr.StartSpan("flow."+name, attrs...).End()
}

// checkCtx converts a cancelled context into the flow's error contract.
func checkCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("flow: %w: %w", errs.ErrCanceled, err)
	}
	return nil
}

// resolve builds run settings with an explicit context override (the
// context-first entry points win over a WithContext option).
func resolve(ctx context.Context, opts []exec.Option) *exec.Settings {
	st := exec.Resolve(opts...)
	if ctx != nil {
		st.Ctx = ctx
		if st.Tracer == nil {
			st.Tracer = obs.TracerFrom(ctx)
		}
		if st.Metrics == nil {
			st.Metrics = obs.MetricsFrom(ctx)
		}
	}
	return st
}

// Run executes the full flow for one SoC spec. It is RunContext over
// context.Background(); cancellation can still be supplied via
// exec.WithContext.
func Run(p *tech.PDK, spec SoCSpec, opts ...exec.Option) (*Result, error) {
	st := exec.Resolve(opts...)
	return runWith(st.Ctx, st, p, spec)
}

// RunContext executes the full flow for one SoC spec under ctx: the run
// is abandoned between stages once ctx is cancelled (error matches
// errs.ErrCanceled), and any tracer/metrics attached to ctx (or passed
// as options) instrument the stages.
func RunContext(ctx context.Context, p *tech.PDK, spec SoCSpec, opts ...exec.Option) (*Result, error) {
	st := resolve(ctx, opts)
	return runWith(st.Ctx, st, p, spec)
}

// runWith is the flow body. Sinks come from the settings (options)
// merged over the spec's deprecated writer fields; the spec used for all
// computation is pure.
func runWith(ctx context.Context, st *exec.Settings, p *tech.PDK, spec SoCSpec) (*Result, error) {
	spec = spec.withDefaults()
	sinks := Sinks{GDS: spec.WriteGDS, Verilog: spec.WriteVerilog, DEF: spec.WriteDEF}.tee(sinksOf(st))
	spec = spec.pure()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("flow: invalid PDK: %w", err)
	}
	if err := checkCtx(ctx); err != nil {
		return nil, err
	}

	tr := stageTrace{tr: st.Tracer, reg: st.Metrics, base: []obs.Attr{
		obs.String("style", spec.Style.String()),
		obs.Int("cs", spec.NumCS),
		obs.String("tier", tech.TierSiCMOS.String()),
	}}
	var root obs.Span
	if st.Tracer != nil {
		root = st.Tracer.StartSpan("flow.run", tr.base...)
		defer root.End()
	}

	siLib, err := cell.NewLibrary(p, tech.TierSiCMOS)
	if err != nil {
		return nil, err
	}

	// 1. Synthesis (plus the optional logic folding: tier assignment and
	// CNFET re-mapping are part of netlist construction).
	endSynth := tr.start("synth")
	parts, err := buildSoC(p, siLib, spec)
	if err != nil {
		endSynth()
		return nil, err
	}
	nl := parts.nl

	var cnLib *cell.Library
	if spec.FoldLogic {
		cnLib, err = cell.NewLibrary(p, tech.TierCNFET)
		if err != nil {
			endSynth()
			return nil, err
		}
		var total int64
		for _, c := range nl.MovableCells() {
			total += c.AreaNM2(p)
		}
		caps := map[tech.Tier]int64{
			tech.TierSiCMOS: total * 6 / 10,
			tech.TierCNFET:  total * 6 / 10,
		}
		if _, err := place.AssignTiers(nl, p, place.PartitionOptions{CapNM2: caps, Seed: spec.Seed}); err != nil {
			endSynth()
			return nil, fmt.Errorf("flow: tier assignment: %w", err)
		}
		for _, c := range nl.MovableCells() {
			if c.Tier == tech.TierCNFET {
				c.Cell = cnLib.MustPick(c.Cell.Kind, c.Cell.Drive)
			}
		}
	}
	endSynth()
	if err := checkCtx(ctx); err != nil {
		return nil, err
	}

	// 2. Floorplan: die sizing plus the pack/global-place retry loop. An
	// auto-sized die is grown and retried when shelf-packing fragmentation
	// or blockage-constrained placement overflows it; a caller-forced die
	// (iso-footprint comparisons) fails hard instead.
	endFloorplan := tr.start("floorplan")
	die := spec.Die
	forced := !die.Empty()
	if !forced {
		die, err = floorplan.SizeDie(p, nl, 0.55, 1.0)
		if err != nil {
			endFloorplan()
			return nil, err
		}
		if spec.FoldLogic {
			// Folding splits the logic over two tiers (~50% logic footprint
			// reduction, refs [3-4]) but hard macros keep their area: size
			// the die for half the cell area plus the macros.
			stc := nl.ComputeStats(p)
			var cellArea int64
			for _, a := range stc.CellAreaNM2 {
				cellArea += a
			}
			total := float64(cellArea)/2/0.55 + float64(stc.MacroAreaNM2)*1.15
			side := int64(math.Sqrt(total))
			side = (side/p.RowHeight + 1) * p.RowHeight
			die = geom.R(0, 0, side, side)
		}
	}
	tiers := []tech.Tier{tech.TierSiCMOS}
	if spec.FoldLogic {
		tiers = append(tiers, tech.TierCNFET)
	}
	var fp *floorplan.Floorplan
	for try := 0; ; try++ {
		if err := checkCtx(ctx); err != nil {
			endFloorplan()
			return nil, err
		}
		fp, err = floorplan.New(p, die)
		if err != nil {
			endFloorplan()
			return nil, err
		}
		if err = fp.PackMacros3D(nl.MacroInstances()); err == nil {
			for _, tier := range tiers {
				if _, err = place.Global(fp, nl, tier, place.Options{Seed: spec.Seed, Workers: st.Workers}); err != nil {
					break
				}
			}
			if err == nil {
				break
			}
		}
		if forced || try >= 6 {
			endFloorplan()
			return nil, fmt.Errorf("flow: floorplan/place on die %v: %w", die, err)
		}
		die = geom.R(die.Lo.X, die.Lo.Y, die.Lo.X+die.W()*115/100, die.Lo.Y+die.H()*115/100)
	}
	endFloorplan()

	// 3. Detailed-placement refinement (annealed same-footprint swaps)
	// and legality sign-off.
	endPlace := tr.start("place")
	for _, tier := range tiers {
		if _, err := place.Refine(fp, nl, tier, place.RefineOptions{Seed: spec.Seed}); err != nil {
			endPlace()
			return nil, fmt.Errorf("flow: refine: %w", err)
		}
	}
	for _, tier := range tiers {
		if err := place.CheckLegal(fp, nl, tier); err != nil {
			endPlace()
			return nil, fmt.Errorf("flow: placement not legal: %w", err)
		}
	}
	endPlace()
	if err := checkCtx(ctx); err != nil {
		return nil, err
	}

	// 3b. Optional clock tree synthesis + re-legalization of the inserted
	// buffers.
	var ctsRep *cts.Report
	if spec.RunCTS {
		endCTS := tr.start("cts")
		ctsRep, err = cts.Synthesize(p, nl, siLib, cts.Options{})
		if err != nil {
			endCTS()
			return nil, fmt.Errorf("flow: cts: %w", err)
		}
		for _, tier := range tiers {
			if err := place.Legalize(fp, nl, tier); err != nil {
				endCTS()
				return nil, fmt.Errorf("flow: post-CTS legalize: %w", err)
			}
		}
		endCTS()
	} else {
		tr.skip("cts")
	}

	// 4. Global routing: speculative parallel at the pool width, with
	// ordered commits keeping the result byte-identical to a serial route.
	endRoute := tr.start("route")
	var rst route.Stats
	routes, err := route.Route(fp, nl, route.Options{
		IncludeClock: spec.RunCTS,
		Workers:      st.Workers,
		Stats:        &rst,
	})
	endRoute()
	if err != nil {
		return nil, fmt.Errorf("flow: route: %w", err)
	}
	st.Metrics.Counter("flow.route.nets.committed").Add(int64(rst.SpecCommitted))
	st.Metrics.Counter("flow.route.nets.rerouted").Add(int64(rst.SpecRerouted))
	st.Metrics.Counter("flow.route.batches").Add(int64(rst.Batches))
	if err := checkCtx(ctx); err != nil {
		return nil, err
	}

	// 5. Post-route optimization + STA. One sta.Timer serves the
	// upsizing rounds and the hold pass: the timing graph is built once.
	endSTA := tr.start("sta")
	wm := sta.NewWireModel(p, routes)
	libs := map[tech.Tier]*cell.Library{tech.TierSiCMOS: siLib}
	if cnLib != nil {
		libs[tech.TierCNFET] = cnLib
	}
	tm := sta.NewTimer(p, nl, wm)
	opt, err := tm.OptimizeDrives(libs, 1/spec.TargetClockHz, 4)
	if err != nil {
		endSTA()
		return nil, fmt.Errorf("flow: sta: %w", err)
	}
	hold, err := tm.AnalyzeHold()
	endSTA()
	if err != nil {
		return nil, fmt.Errorf("flow: hold: %w", err)
	}
	tst := tm.Stats()
	st.Metrics.Counter("flow.sta.passes.full").Add(int64(tst.FullPasses))
	st.Metrics.Counter("flow.sta.passes.incremental").Add(int64(tst.IncrementalPasses))
	st.Metrics.Counter("flow.sta.insts.recomputed").Add(int64(tst.RecomputedInsts))
	st.Metrics.Counter("flow.sta.insts.skipped").Add(int64(tst.SkippedInsts))

	// 6. Power analysis at the achieved frequency.
	endPower := tr.start("power")
	clock := spec.TargetClockHz
	if !opt.Final.Met() && opt.Final.FmaxHz > 0 {
		clock = opt.Final.FmaxHz
	}
	pw, err := power.Analyze(p, nl, wm, die, power.Options{ClockHz: clock})
	endPower()
	if err != nil {
		return nil, fmt.Errorf("flow: power: %w", err)
	}

	// 6b. Optional Eq. 17 thermal sign-off: lower tier is the Si CMOS
	// logic, the BEOL memory/CNFET tiers stack above it.
	if v, ok := st.Value(thermalKey{}).(float64); ok {
		budget := v
		if budget <= 0 {
			budget = p.MaxTempRiseK
		}
		stack := thermal.NewStack(p, []float64{
			pw.ByTier[tech.TierSiCMOS],
			pw.ByTier[tech.TierRRAM] + pw.ByTier[tech.TierCNFET],
		})
		if rise := stack.TempRiseK(); rise > budget {
			return nil, fmt.Errorf("flow: temperature rise %.1f K exceeds %.1f K budget: %w",
				rise, budget, errs.ErrThermalLimit)
		}
	}

	// 7. Area decomposition for the analytical framework.
	var cellsArea, perifArea int64
	for _, b := range parts.banks {
		cellsArea += b.CellArrayAreaNM2()
		perifArea += b.PeriphAreaNM2()
	}
	area := AreaReport{
		CSNM2:     parts.csAreaNM2,
		CellsNM2:  cellsArea,
		PerifNM2:  perifArea,
		FreeSiNM2: fp.FreeAreaNM2(tech.TierSiCMOS),
	}

	stats := nl.ComputeStats(p)
	res := &Result{
		Spec:          spec,
		Die:           die,
		Cells:         stats.Cells,
		Macros:        stats.Macros,
		HPWL:          nl.TotalHPWL(),
		RoutedWL:      routes.TotalWLdbu,
		WLByLayer:     routes.WLByLayer,
		Vias:          routes.TotalVias,
		ILVs:          routes.TotalILVs,
		OverflowEdges: routes.OverflowEdges,
		FmaxHz:        opt.Final.FmaxHz,
		CriticalPathS: opt.Final.CriticalPathS,
		TimingMet:     opt.Final.Met(),
		Upsized:       opt.Upsized,
		Hold:          hold,
		CTS:           ctsRep,
		Power:         pw,
		Area:          area,
		pdk:           p,
		nl:            nl,
		routes:        routes,
	}

	// 7b. Power-grid IR drop and full-chip DRC sign-off.
	endSignoff := tr.start("signoff")
	ir, err := irdrop.Analyze(p, die, pw.Density, irdrop.Options{})
	if err != nil {
		endSignoff()
		return nil, fmt.Errorf("flow: irdrop: %w", err)
	}
	audit, err := drc.Audit(fp, nl, routes)
	endSignoff()
	if err != nil {
		return nil, fmt.Errorf("flow: drc: %w", err)
	}
	res.Audit = audit
	res.IRDrop = ir

	// 8. Interchange exports.
	if sinks.empty() {
		tr.skip("gds")
	} else {
		endGDS := tr.start("gds")
		err := res.export(sinks)
		endGDS()
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// CaseStudy runs the paper's Sec. II comparison at the given scale: the 2D
// baseline (1 CS, 2D-style banks) sized automatically, then the M3D design
// (numCS CSs, M3D-style banks, numCS× banks) on the identical die —
// iso-footprint, iso-on-chip-memory-capacity by construction. Options
// (context, tracer, metrics) apply to both runs; export sinks are not
// forwarded.
func CaseStudy(p *tech.PDK, scale SoCSpec, numCS int, opts ...exec.Option) (twoD, m3d *Result, err error) {
	st := exec.Resolve(opts...)
	st.SetValue(sinksKey{}, Sinks{}) // sinks are per-run, not per-pair
	scale = scale.withDefaults().pure()

	spec2 := scale
	spec2.Style = macro.Style2D
	spec2.NumCS = 1
	spec2.Banks = 1
	twoD, err = runWith(st.Ctx, st, p, spec2)
	if err != nil {
		return nil, nil, fmt.Errorf("flow: 2D baseline: %w", err)
	}

	spec3 := scale
	spec3.Style = macro.Style3D
	spec3.NumCS = numCS
	spec3.Banks = numCS
	spec3.Die = twoD.Die // iso-footprint
	m3d, err = runWith(st.Ctx, st, p, spec3)
	if err != nil {
		return nil, nil, fmt.Errorf("flow: M3D design: %w", err)
	}
	return twoD, m3d, nil
}
