package flow

import (
	"bytes"
	"testing"

	"m3d/internal/def"
	"m3d/internal/gds"
	"m3d/internal/macro"
	"m3d/internal/tech"
)

// smallSpec is a reduced-scale SoC that runs the full flow quickly: 2×2
// PEs per CS, 2 MB RRAM, 64 Kb buffers.
func smallSpec() SoCSpec {
	return SoCSpec{
		ArrayRows: 2, ArrayCols: 2,
		RRAMCapBits:    2 << 20,
		BankWordBits:   64,
		GlobalSRAMBits: 64 << 10,
		Seed:           1,
	}
}

func TestRun2DBaseline(t *testing.T) {
	p := tech.Default130()
	spec := smallSpec()
	spec.Style = macro.Style2D
	res, err := Run(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells == 0 || res.Macros == 0 {
		t.Fatal("empty flow result")
	}
	if res.RoutedWL <= 0 {
		t.Error("no routed wirelength")
	}
	if res.FmaxHz <= 0 {
		t.Error("no timing result")
	}
	if !res.TimingMet {
		t.Errorf("20 MHz should be met; fmax = %.2f MHz", res.FmaxHz/1e6)
	}
	if res.Power == nil || res.Power.TotalW <= 0 {
		t.Error("no power result")
	}
	if res.Area.CellsNM2 <= 0 || res.Area.CSNM2 <= 0 {
		t.Error("area report incomplete")
	}
}

func TestCaseStudyIsoFootprintFreesSi(t *testing.T) {
	p := tech.Default130()
	twoD, m3d, err := CaseStudy(p, smallSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Iso-footprint by construction.
	if twoD.Die != m3d.Die {
		t.Fatalf("dies differ: %v vs %v", twoD.Die, m3d.Die)
	}
	// Iso-on-chip-memory-capacity.
	if twoD.Spec.RRAMCapBits != m3d.Spec.RRAMCapBits {
		t.Fatal("memory capacities differ")
	}
	// The M3D run frees Si under the arrays: more free Si even though it
	// hosts 2x the CS logic.
	if m3d.Area.FreeSiNM2 <= twoD.Area.FreeSiNM2 {
		t.Errorf("M3D free Si %d should exceed 2D %d (the paper's mechanism)",
			m3d.Area.FreeSiNM2, twoD.Area.FreeSiNM2)
	}
	// The M3D design holds more CSs (more cells) in the same footprint.
	if m3d.Cells <= twoD.Cells {
		t.Errorf("M3D should hold more logic: %d vs %d cells", m3d.Cells, twoD.Cells)
	}
	// Both meet the relaxed 20 MHz target.
	if !twoD.TimingMet || !m3d.TimingMet {
		t.Errorf("timing: 2D met=%v (%.1f MHz), M3D met=%v (%.1f MHz)",
			twoD.TimingMet, twoD.FmaxHz/1e6, m3d.TimingMet, m3d.FmaxHz/1e6)
	}
}

func TestObservation2PowerDensity(t *testing.T) {
	// Obs. 2: upper-layer (BEOL) power <1% of chip power; peak power
	// density increase ≈1% vs 2D.
	p := tech.Default130()
	twoD, m3d, err := CaseStudy(p, smallSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if frac := m3d.Power.UpperTierFraction(); frac >= 0.05 {
		t.Errorf("upper-tier power fraction = %.3f, want < 0.05 (paper <0.01)", frac)
	}
	// Peak density stays in the same ballpark (the CS region dominates in
	// both; only the thin BEOL adder moves it).
	ratio := m3d.Power.PeakDensityWPerMM2 / twoD.Power.PeakDensityWPerMM2
	if ratio > 2.0 {
		t.Errorf("M3D peak density ratio = %.2f, want ≈1 (paper +1%%)", ratio)
	}
}

func TestGDSExportValid(t *testing.T) {
	p := tech.Default130()
	spec := smallSpec()
	spec.Style = macro.Style3D
	var buf bytes.Buffer
	spec.WriteGDS = &buf
	res, err := Run(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no GDS bytes")
	}
	lib, err := gds.Decode(&buf)
	if err != nil {
		t.Fatalf("GDS round trip: %v", err)
	}
	// Die + every instance + routed paths.
	if len(lib.Structs) != 1 || len(lib.Structs[0].Elements) < res.Cells {
		t.Errorf("GDS underpopulated: %d elements for %d cells",
			len(lib.Structs[0].Elements), res.Cells)
	}
}

func TestSpecDefaults(t *testing.T) {
	s := SoCSpec{}.withDefaults()
	if s.NumCS != 1 || s.ArrayRows != 16 || s.ArrayCols != 16 {
		t.Errorf("defaults wrong: %+v", s)
	}
	if s.RRAMCapBits != 64<<23 {
		t.Errorf("default RRAM = %d, want 64MB", s.RRAMCapBits)
	}
	if s.TargetClockHz != 20e6 {
		t.Errorf("default clock = %g", s.TargetClockHz)
	}
}

func TestInvalidPDKRejected(t *testing.T) {
	p := tech.Default130()
	p.VDD = 0
	if _, err := Run(p, smallSpec()); err == nil {
		t.Error("invalid PDK should fail")
	}
}

func TestFoldingStyleILVUse(t *testing.T) {
	// The M3D run routes in the same stack; its design uses ILVs only for
	// macro connectivity (logic all in Si), so ILV count is modest but the
	// route report carries the layer split.
	p := tech.Default130()
	spec := smallSpec()
	spec.Style = macro.Style3D
	spec.NumCS = 2
	spec.Banks = 2
	res, err := Run(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	var lower, upper int64
	for i, wl := range res.WLByLayer {
		if i < 4 {
			lower += wl
		} else {
			upper += wl
		}
	}
	if lower == 0 {
		t.Error("no lower-metal routing")
	}
	if lower+upper != res.RoutedWL {
		t.Error("layer split does not sum")
	}
}

func TestFoldedFlowRuns(t *testing.T) {
	// The refs [3-4]-style folding flow: iso-architecture, logic split
	// across Si and CNFET tiers on a ~half-size die.
	// Logic-dominated config (tiny RRAM) so folding's footprint gain shows.
	p := tech.Default130()
	spec := SoCSpec{
		ArrayRows: 3, ArrayCols: 3,
		RRAMCapBits:    256 << 10,
		BankWordBits:   64,
		GlobalSRAMBits: 16 << 10,
		Seed:           1,
	}
	spec.Style = macro.Style2D
	flat, err := Run(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.FoldLogic = true
	spec.Style = macro.Style3D
	folded, err := Run(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	if folded.Die.Area() >= flat.Die.Area() {
		t.Errorf("folded die %v should be smaller than flat %v", folded.Die, flat.Die)
	}
	if folded.ILVs == 0 {
		t.Error("folded logic must consume ILVs for tier crossings")
	}
	// Folding shrinks placement wirelength (the refs [3-4] ~20% effect).
	// Routed WL may regress in this PDK: the CNFET tier only has the two
	// coarse top metals (Fig. 4a), so upper-tier routing detours — one
	// reason folding alone buys little here (the paper's intro point).
	if folded.HPWL >= flat.HPWL {
		t.Errorf("folded HPWL %d should be below flat HPWL %d", folded.HPWL, flat.HPWL)
	}
}

func TestFlowWithCTS(t *testing.T) {
	p := tech.Default130()
	spec := smallSpec()
	spec.Style = macro.Style2D
	spec.RunCTS = true
	res, err := Run(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.CTS == nil {
		t.Fatal("CTS report missing")
	}
	if res.CTS.Sinks == 0 || res.CTS.Buffers == 0 {
		t.Errorf("CTS trivial: %+v", res.CTS)
	}
	if res.CTS.MaxSkewS < 0 || res.CTS.MaxSkewS > 5e-9 {
		t.Errorf("skew %g out of range", res.CTS.MaxSkewS)
	}
	if !res.TimingMet {
		t.Errorf("CTS run should still meet 20 MHz, fmax=%.1f MHz", res.FmaxHz/1e6)
	}
}

func TestFlowAuditClean(t *testing.T) {
	p := tech.Default130()
	spec := smallSpec()
	spec.Style = macro.Style3D
	res, err := Run(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Audit == nil {
		t.Fatal("audit missing")
	}
	// The flow's own output should sign off cleanly, modulo residual
	// routing overflow on congested small dies.
	for _, v := range res.Audit.Violations {
		if v.Kind != "route-overflow" {
			t.Errorf("unexpected violation: %s", v)
		}
	}
}

func TestFlowIRDrop(t *testing.T) {
	p := tech.Default130()
	spec := smallSpec()
	spec.Style = macro.Style2D
	res, err := Run(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.IRDrop == nil {
		t.Fatal("IR drop report missing")
	}
	if res.IRDrop.WorstDropV < 0 {
		t.Error("negative drop")
	}
	// A milliwatt-class SoC on a boundary pad ring passes the 5% budget.
	if !res.IRDrop.Pass {
		t.Errorf("IR drop %g V should pass the %g V budget",
			res.IRDrop.WorstDropV, res.IRDrop.BudgetV)
	}
}

func TestFlowInterchangeExports(t *testing.T) {
	p := tech.Default130()
	spec := smallSpec()
	spec.Style = macro.Style2D
	var v, d bytes.Buffer
	spec.WriteVerilog = &v
	spec.WriteDEF = &d
	res, err := Run(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() == 0 || d.Len() == 0 {
		t.Fatal("interchange outputs empty")
	}
	parsed, err := def.Read(&d)
	if err != nil {
		t.Fatalf("DEF round trip: %v", err)
	}
	if len(parsed.Placements) != res.Cells+res.Macros {
		t.Errorf("DEF placements = %d, want %d", len(parsed.Placements), res.Cells+res.Macros)
	}
	if parsed.Die != res.Die {
		t.Error("DEF die mismatch")
	}
}
