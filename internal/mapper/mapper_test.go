package mapper

import (
	"math"
	"testing"

	"m3d/internal/arch"
	"m3d/internal/workload"
)

func TestTileCandidates(t *testing.T) {
	got := tileCandidates(56)
	want := []int{1, 2, 4, 8, 16, 32, 56}
	if len(got) != len(want) {
		t.Fatalf("candidates = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("candidates = %v, want %v", got, want)
		}
	}
	if c := tileCandidates(1); len(c) != 1 || c[0] != 1 {
		t.Errorf("dim 1 candidates = %v", c)
	}
}

func TestBestMappingFindsFeasible(t *testing.T) {
	a := arch.CaseStudy2D()
	l := workload.ResNet18().Layers[1] // L1.0 CONV1
	c, err := BestMapping(a, l)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Feasible {
		t.Error("a 64KB local buffer should fit some tiling of a 64x64 3x3 layer")
	}
	if c.Cycles <= 0 || c.EnergyJ <= 0 {
		t.Fatal("degenerate cost")
	}
	// Compute lower bound: cycles can't beat F0 / (utilized PEs).
	min := l.MACs() / int64(a.PPeak())
	if c.Cycles < min {
		t.Errorf("cycles %d below the compute bound %d", c.Cycles, min)
	}
}

func TestWeightStationaryWinsForConv(t *testing.T) {
	// For a conv layer with large spatial reuse, re-fetching weights per
	// output tile (OS with small tiles) costs more RRAM traffic than WS.
	a := arch.CaseStudy2D()
	l := workload.ResNet18().Layers[1]
	ws := Evaluate(a, l, Mapping{Order: WeightStationary, TK: 16, TC: 16, TX: 56, TY: 56})
	os := Evaluate(a, l, Mapping{Order: OutputStationary, TK: 16, TC: 16, TX: 8, TY: 8})
	if ws.RRAMBits >= os.RRAMBits {
		t.Errorf("WS RRAM traffic %g should beat tiled OS %g", ws.RRAMBits, os.RRAMBits)
	}
}

func TestMapperCloseToDirectModel(t *testing.T) {
	// The mapper's best cost should be within ~25% of the direct arch
	// cost model on compute-bound conv layers (same roofline structure).
	a := arch.CaseStudy2D()
	for _, idx := range []int{1, 7, 17} {
		l := workload.ResNet18().Layers[idx]
		mc, err := BestMapping(a, l)
		if err != nil {
			t.Fatal(err)
		}
		direct := a.EvalLayer(l)
		ratio := float64(mc.Cycles) / float64(direct.Cycles)
		if ratio < 0.75 || ratio > 1.35 {
			t.Errorf("%s: mapper cycles %d vs direct %d (ratio %.2f)", l.Name, mc.Cycles, direct.Cycles, ratio)
		}
	}
}

func TestEvalModelAggregates(t *testing.T) {
	a := arch.CaseStudy2D()
	m := workload.ResNet18()
	mc, err := EvalModel(a, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(mc.Layers) != len(m.Layers) {
		t.Fatal("missing layers")
	}
	var cyc int64
	for _, c := range mc.Layers {
		cyc += c.Cycles
	}
	if cyc != mc.Cycles {
		t.Error("cycle aggregation mismatch")
	}
	if mc.EDP() <= 0 {
		t.Error("EDP must be positive")
	}
}

func TestBenefitMatchesDirectModelBand(t *testing.T) {
	// The paper validates its analytical model within 10% of ZigZag; our
	// mapper and direct model should agree on the M3D benefit within ~20%.
	m3d, b2d := arch.CaseStudy3D(), arch.CaseStudy2D()
	rn := workload.ResNet18()
	sp, er, edp, err := Benefit(m3d, b2d, rn)
	if err != nil {
		t.Fatal(err)
	}
	_, _, directEDP, err := m3d.Benefit(b2d, rn)
	if err != nil {
		t.Fatal(err)
	}
	if sp < 4.0 || sp > 8.5 {
		t.Errorf("mapper speedup %.2f outside the case-study band", sp)
	}
	if er < 0.85 || er > 1.1 {
		t.Errorf("mapper energy ratio %.3f should be ≈1", er)
	}
	if rel := math.Abs(edp-directEDP) / directEDP; rel > 0.25 {
		t.Errorf("mapper EDP benefit %.2f vs direct %.2f (rel %.2f)", edp, directEDP, rel)
	}
}

func TestInfeasibleFallback(t *testing.T) {
	// Shrink local buffers to nothing: mapping still returns (marked
	// infeasible) rather than failing.
	a := arch.CaseStudy2D()
	a.Mem.LocalKB = 0.001
	a.Mem.RegPerPEBits = 1
	l := workload.ResNet18().Layers[1]
	c, err := BestMapping(a, l)
	if err != nil {
		t.Fatal(err)
	}
	if c.Feasible {
		t.Error("nothing should fit a 1-byte buffer")
	}
}

func TestValidation(t *testing.T) {
	a := arch.CaseStudy2D()
	a.NumCS = 0
	if _, err := BestMapping(a, workload.ResNet18().Layers[1]); err == nil {
		t.Error("invalid accel should fail")
	}
	b := arch.CaseStudy2D()
	if _, err := BestMapping(b, workload.Layer{Name: "bad"}); err == nil {
		t.Error("invalid layer should fail")
	}
}

func TestOrderString(t *testing.T) {
	if WeightStationary.String() != "WS" || OutputStationary.String() != "OS" {
		t.Error("order names wrong")
	}
}
