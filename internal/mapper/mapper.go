// Package mapper is the architectural mapping engine standing in for the
// ZigZag DNN-accelerator simulator [13] the paper validates against
// (Fig. 7): for each layer it searches temporal tilings of the (K, C, OX,
// OY) loop nest over the accelerator's buffer hierarchy, under buffer
// capacity constraints and two loop-order families (weight-stationary and
// output-stationary), counting per-level memory accesses and deriving
// cycles and energy for the best mapping.
package mapper

import (
	"fmt"
	"math"

	"m3d/internal/arch"
	"m3d/internal/workload"
)

// Order is the outer-loop family of a mapping.
type Order int

const (
	// WeightStationary fetches each weight tile once; inputs are re-read
	// per output-channel tile and partial sums spill per input-channel
	// tile.
	WeightStationary Order = iota
	// OutputStationary keeps output tiles resident; weights are re-fetched
	// per output-pixel tile.
	OutputStationary
)

// String names the order.
func (o Order) String() string {
	if o == WeightStationary {
		return "WS"
	}
	return "OS"
}

// Mapping is one candidate temporal tiling.
type Mapping struct {
	Order          Order
	TK, TC, TX, TY int // temporal tile sizes (output channels, input channels, OX, OY)
}

// Cost is the evaluated cost of a mapping.
type Cost struct {
	Mapping Mapping
	Cycles  int64
	EnergyJ float64
	// RRAMBits / GlobalBits / LocalBits are per-level traffic.
	RRAMBits, GlobalBits, LocalBits float64
	Feasible                        bool
}

// EDP returns cycles × energy (relative EDP; the clock divides out in
// benefit ratios).
func (c Cost) EDP() float64 { return float64(c.Cycles) * c.EnergyJ }

// perBit energies of the hierarchy levels (J/bit). Registers are folded
// into the MAC energy.
const (
	localJPerBit = 0.02e-12
)

// tileCandidates returns the power-of-two divisors-style candidates for a
// dimension (1, 2, 4, ..., plus the dimension itself).
func tileCandidates(dim int) []int {
	var out []int
	for v := 1; v < dim; v *= 2 {
		out = append(out, v)
	}
	return append(out, dim)
}

// Evaluate evaluates one mapping of a layer on the accelerator.
func Evaluate(a *arch.Accel, l workload.Layer, m Mapping) Cost {
	wBits := float64(l.Weights()) * float64(a.WeightBits)
	inBits := float64(l.InputActs()) * float64(a.ActBits)
	outBits := float64(l.OutputActs()) * float64(a.ActBits)

	nK := int64(math.Ceil(float64(l.K) / float64(m.TK)))
	nC := int64(math.Ceil(float64(l.C) / float64(m.TC)))
	nX := int64(math.Ceil(float64(l.OX) / float64(m.TX)))
	nY := int64(math.Ceil(float64(l.OY) / float64(m.TY)))

	// Buffer requirements of the tile (bits).
	wTile := float64(m.TK*m.TC*l.R*l.S) * float64(a.WeightBits)
	ix := (m.TX-1)*l.Stride + l.R
	iy := (m.TY-1)*l.Stride + l.S
	iTile := float64(ix*iy*m.TC) * float64(a.ActBits)
	oTile := float64(m.TK*m.TX*m.TY) * float64(a.AccBitsOrDefault())
	localBits := a.Mem.LocalKB * 8192
	if a.Mem.LocalKB == 0 {
		// Architectures without local buffers (Table II Arch 3) hold tiles
		// in their large per-PE register files.
		localBits = float64(a.Mem.RegPerPEBits * a.CS.PEs())
	}
	feasible := wTile+iTile+oTile <= localBits

	// Per-level traffic by loop order.
	var rram, global float64
	switch m.Order {
	case WeightStationary:
		// Weights once; inputs re-read per K-tile; partials spill per
		// C-tile beyond the first.
		rram = wBits
		global = inBits*float64(nK) + outBits*float64(2*(nC-1)+1)
	case OutputStationary:
		// Outputs once; weights re-fetched per output-pixel tile; inputs
		// re-read per K-tile.
		rram = wBits * float64(nX*nY)
		global = inBits*float64(nK) + outBits
	}
	local := 2 * (wBits*float64(nX*nY) + inBits*float64(nK) + outBits*float64(nC))

	// Parallelism across CSs: output-channel tiles partition (the paper's
	// N#); inputs are replicated to the CSs sharing the layer.
	nPart := int(nK)
	nmax := a.NumCS
	if nPart < nmax {
		nmax = nPart
	}

	// Compute cycles with spatial under-utilization, per CS. Grouped
	// convolutions shrink the per-output input fan-in to C/groups.
	groups := int64(1)
	if l.Groups > 1 {
		groups = int64(l.Groups)
	}
	tilesK := ceilDiv(int64(l.K), int64(a.CS.K))
	kPerCS := ceilDiv(tilesK, int64(nmax))
	pass := ceilDiv(int64(l.C)/groups, int64(a.CS.C)) *
		ceilDiv(int64(l.OX), int64(a.CS.OX)) *
		ceilDiv(int64(l.OY), int64(a.CS.OY)) *
		int64(l.R) * int64(l.S)
	compute := kPerCS * (pass + int64(a.FillCycles))

	// Bandwidth cycles: RRAM traffic across the banked interface (inputs
	// replicated: the global term scales by participating CSs for input
	// reads but is served by the shared buffer bandwidth per CS).
	rramCyc := int64(rram / a.TotalRRAMBWBitsPerCycle() * float64(a.NumCS) / float64(nmax))
	globalCyc := int64(global / (a.ActBWBitsPerCycle * float64(nmax)))

	cycles := compute
	if rramCyc > cycles {
		cycles = rramCyc
	}
	if globalCyc > cycles {
		cycles = globalCyc
	}

	e := a.Energy
	energy := float64(l.MACs())*e.MACJ +
		rram*e.RRAMReadJPerBit +
		global*e.SRAMJPerBit +
		local*localJPerBit
	energy += float64(a.NumCS-nmax) * float64(cycles) * e.CSIdleJPerCycle
	energy += float64(nmax) * float64(cycles-compute) * e.CSIdleJPerCycle

	return Cost{
		Mapping:    m,
		Cycles:     cycles,
		EnergyJ:    energy,
		RRAMBits:   rram,
		GlobalBits: global,
		LocalBits:  local,
		Feasible:   feasible,
	}
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}

// BestMapping searches tilings and orders for the layer, returning the
// feasible mapping with minimum EDP (falling back to the minimum-EDP
// infeasible mapping if no tiling fits the buffers).
func BestMapping(a *arch.Accel, l workload.Layer) (Cost, error) {
	if err := a.Validate(); err != nil {
		return Cost{}, err
	}
	if err := l.Validate(); err != nil {
		return Cost{}, err
	}
	var best, bestInfeasible Cost
	haveF, haveI := false, false
	for _, order := range []Order{WeightStationary, OutputStationary} {
		for _, tk := range tileCandidates(l.K) {
			for _, tc := range tileCandidates(l.C) {
				for _, tx := range tileCandidates(l.OX) {
					for _, ty := range tileCandidates(l.OY) {
						c := Evaluate(a, l, Mapping{Order: order, TK: tk, TC: tc, TX: tx, TY: ty})
						if c.Feasible {
							if !haveF || c.EDP() < best.EDP() {
								best, haveF = c, true
							}
						} else if !haveI || c.EDP() < bestInfeasible.EDP() {
							bestInfeasible, haveI = c, true
						}
					}
				}
			}
		}
	}
	if haveF {
		return best, nil
	}
	if haveI {
		return bestInfeasible, nil
	}
	return Cost{}, fmt.Errorf("mapper: no mapping found for %s", l.Name)
}

// ModelCost aggregates best-mapping costs over a model.
type ModelCost struct {
	Model   string
	Layers  []Cost
	Cycles  int64
	EnergyJ float64
}

// EDP returns aggregate cycles × energy.
func (m ModelCost) EDP() float64 { return float64(m.Cycles) * m.EnergyJ }

// EvalModel maps every layer of the model.
func EvalModel(a *arch.Accel, m workload.Model) (ModelCost, error) {
	out := ModelCost{Model: m.Name}
	for _, l := range m.Layers {
		c, err := BestMapping(a, l)
		if err != nil {
			return ModelCost{}, fmt.Errorf("mapper: %s/%s: %w", m.Name, l.Name, err)
		}
		out.Layers = append(out.Layers, c)
		out.Cycles += c.Cycles
		out.EnergyJ += c.EnergyJ
	}
	return out, nil
}

// Benefit compares accelerator a against baseline on model m, returning
// (speedup, energyRatio, edpBenefit) under mapper costs — the Fig. 7 "ZZ"
// bars.
func Benefit(a, baseline *arch.Accel, m workload.Model) (speedup, energyRatio, edp float64, err error) {
	mine, err := EvalModel(a, m)
	if err != nil {
		return 0, 0, 0, err
	}
	base, err := EvalModel(baseline, m)
	if err != nil {
		return 0, 0, 0, err
	}
	speedup = float64(base.Cycles) / float64(mine.Cycles)
	energyRatio = base.EnergyJ / mine.EnergyJ
	return speedup, energyRatio, speedup * energyRatio, nil
}
