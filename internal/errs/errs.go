// Package errs defines the library-wide sentinel errors of the public
// error contract (re-exported as m3d.ErrCanceled, m3d.ErrBadSpec and
// m3d.ErrThermalLimit). The flow, analytic and core packages wrap these
// with %w, so callers classify failures with errors.Is instead of
// string-matching:
//
//	_, err := m3d.RunFlowContext(ctx, pdk, spec)
//	switch {
//	case errors.Is(err, m3d.ErrCanceled):     // ctx cancelled / deadline
//	case errors.Is(err, m3d.ErrBadSpec):      // invalid spec or parameters
//	case errors.Is(err, m3d.ErrThermalLimit): // Eq. 17 budget exceeded
//	}
//
// Cancellation errors additionally match context.Canceled /
// context.DeadlineExceeded (double-wrapped), so pre-existing callers keep
// working.
package errs

import "errors"

var (
	// ErrCanceled marks a run aborted by context cancellation or
	// deadline before completing.
	ErrCanceled = errors.New("m3d: run canceled")
	// ErrBadSpec marks an invalid SoC spec, analytical parameter set,
	// load, or sweep axis.
	ErrBadSpec = errors.New("m3d: bad spec")
	// ErrThermalLimit marks an Eq. 17 temperature-rise budget violation.
	ErrThermalLimit = errors.New("m3d: thermal limit exceeded")
	// ErrOverloaded marks work refused by an admission gate because the
	// in-flight limit and its waiting queue are both full (load shedding;
	// the HTTP service maps it to 429 Too Many Requests).
	ErrOverloaded = errors.New("m3d: overloaded")
	// ErrNotFound marks a lookup of an entity that does not exist — an
	// unknown job ID, a missing checkpoint, an absent artifact (the HTTP
	// service maps it to 404 Not Found).
	ErrNotFound = errors.New("m3d: not found")
)
