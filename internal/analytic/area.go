package analytic

import (
	"fmt"
	"math"

	"m3d/internal/errs"
)

// AreaModel carries the 2D baseline chip's area decomposition (Fig. 6a):
// one computing sub-system, the memory cell arrays, the memory peripherals,
// and buses/IO. Units are arbitrary but consistent (we use nm²).
type AreaModel struct {
	ACS    float64 // A_C,2D: one computing sub-system
	ACells float64 // A_M,2D^cells: memory cell arrays (cells + access FETs)
	APerif float64 // A_M,2D^perif: memory peripherals/controllers (Si)
	ABusIO float64 // A_bus,2D: buses and IO
}

// Validate checks the model.
func (a AreaModel) Validate() error {
	if a.ACS <= 0 || a.ACells <= 0 || a.APerif < 0 || a.ABusIO < 0 {
		return fmt.Errorf("analytic: area model needs positive CS and cell areas")
	}
	return nil
}

// Total2D is A_2D, the baseline chip footprint.
func (a AreaModel) Total2D() float64 {
	return a.ACS + a.ACells + a.APerif + a.ABusIO
}

// GammaCells is γ_2D^cells = A_cells / A_CS.
func (a AreaModel) GammaCells() float64 { return a.ACells / a.ACS }

// GammaPerif is γ_2D^perif = A_perif / A_CS.
func (a AreaModel) GammaPerif() float64 { return a.APerif / a.ACS }

// N is Eq. 2: the parallel CS count of the iso-footprint M3D chip, from
// the Si area freed by moving memory access FETs to the BEOL tier.
func (a AreaModel) N() int {
	n := int(math.Floor(1 + a.GammaCells()))
	if n < 1 {
		n = 1
	}
	return n
}

// Case1Result reports the FET-width-relaxation analysis for one δ.
type Case1Result struct {
	Delta float64
	// Footprint is the common (grown) chip footprint.
	Footprint float64
	// N3D / N2DNew are the CS counts of the M3D chip and the
	// commensurately-grown 2D baseline (Eq. 9).
	N3D, N2DNew int
}

// Case1 evaluates the paper's Case 1 geometry at BEOL FET width relaxation
// δ ≥ 1: the M3D cell array grows to δ·A_cells; if it outgrows the original
// footprint both chips grow, and the larger 2D baseline hosts extra
// parallel CSs (Eq. 9) while the M3D chip's freed Si hosts more still.
func (a AreaModel) Case1(delta float64) (Case1Result, error) {
	if err := a.Validate(); err != nil {
		return Case1Result{}, err
	}
	if delta < 1 {
		return Case1Result{}, fmt.Errorf("analytic: δ=%g must be ≥ 1: %w", delta, errs.ErrBadSpec)
	}
	a2d := a.Total2D()
	cells3D := delta * a.ACells

	// Common footprint: the M3D chip must fit the relaxed array in BEOL
	// and (peripherals + CSs) in Si; the comparison is iso-footprint.
	footprint := math.Max(a2d, cells3D+a.APerif+a.ABusIO)

	// M3D Si budget: everything except peripherals and bus/IO.
	n3d := int(math.Floor((footprint - a.APerif - a.ABusIO) / a.ACS))
	if n3d < 1 {
		n3d = 1
	}

	// Eq. 9: the grown 2D baseline's extra CS capacity. Its Si still holds
	// the (unrelaxed) cell array with Si access FETs. The paper's [·]
	// brackets floor (Eq. 2 yields N=8 from γ=7.55 only under floor).
	n2d := int(math.Floor(math.Max(cells3D-a2d, a.ACS) / a.ACS))
	if n2d < 1 {
		n2d = 1
	}
	return Case1Result{Delta: delta, Footprint: footprint, N3D: n3d, N2DNew: n2d}, nil
}

// Case2Delta converts a via-pitch scale β into the effective area
// relaxation of Case 2: the cell is via-pitch-limited at m·β² per cell, so
// the effective δ is max(1, m·(β·pitch)² / cellArea2D). cellArea2D and
// pitch are in consistent units; m is vias per cell.
func Case2Delta(beta float64, viasPerCell int, pitch, cellArea2D float64) (float64, error) {
	if beta < 1 {
		return 0, fmt.Errorf("analytic: β=%g must be ≥ 1: %w", beta, errs.ErrBadSpec)
	}
	if viasPerCell <= 0 || pitch <= 0 || cellArea2D <= 0 {
		return 0, fmt.Errorf("analytic: Case 2 needs positive via count, pitch, and cell area: %w", errs.ErrBadSpec)
	}
	viaLimited := float64(viasPerCell) * (beta * pitch) * (beta * pitch)
	if viaLimited <= cellArea2D {
		return 1, nil
	}
	return viaLimited / cellArea2D, nil
}

// Case3N is the paper's Case 3 CS count for Y interleaved compute+memory
// tier pairs, each memory tier carrying its own peripherals and IO:
// N = Y·⌊1 + γ_cells + γ_perif⌋.
func (a AreaModel) Case3N(y int) (int, error) {
	if y < 1 {
		return 0, fmt.Errorf("analytic: Y=%d must be ≥ 1: %w", y, errs.ErrBadSpec)
	}
	per := int(math.Floor(1 + a.GammaCells() + a.GammaPerif()))
	if per < 1 {
		per = 1
	}
	return y * per, nil
}
