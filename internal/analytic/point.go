package analytic

import (
	"fmt"

	"m3d/internal/errs"
)

// DesignPoint is one coordinate of the combined Case 1 × Case 3 design
// space the adaptive explorer (internal/dse) walks: a BEOL memory access
// FET width relaxation δ (Case 1), a number of interleaved compute+memory
// tier pairs Y (Case 3), and a total-bandwidth scale applied on top of
// the per-CS bandwidth share (the Fig. 8 axis).
type DesignPoint struct {
	Delta     float64
	TierPairs int
	BWScale   float64
}

// Validate checks the coordinate ranges. Violations match errs.ErrBadSpec.
func (d DesignPoint) Validate() error {
	if d.Delta < 1 {
		return fmt.Errorf("analytic: δ=%g must be ≥ 1: %w", d.Delta, errs.ErrBadSpec)
	}
	if d.TierPairs < 1 {
		return fmt.Errorf("analytic: tier pairs %d must be ≥ 1: %w", d.TierPairs, errs.ErrBadSpec)
	}
	if d.BWScale <= 0 {
		return fmt.Errorf("analytic: bandwidth scale %g must be positive: %w", d.BWScale, errs.ErrBadSpec)
	}
	return nil
}

// PointResult is the objective extraction for one DesignPoint: everything
// a multi-objective explorer ranks designs by, plus the geometry behind
// it. Speedup and EDPBenefit are against the commensurately-grown 2D
// baseline (Eq. 9 semantics); Footprint is the common grown footprint in
// the AreaModel's units (nm² for the case-study model) — the explorer
// minimizes it while maximizing the other objectives.
type PointResult struct {
	Point DesignPoint
	// N is the M3D design's parallel CS count: the Case 1 freed-Si count
	// replicated per interleaved pair (Case 3).
	N int
	// N2DNew is the grown 2D baseline's CS count (Eq. 9).
	N2DNew int
	// Footprint is the common chip footprint (grows once δ·A_cells
	// outgrows the original die).
	Footprint float64
	// Speedup / EnergyRatio / EDPBenefit vs the grown 2D baseline.
	Speedup     float64
	EnergyRatio float64
	EDPBenefit  float64
}

// CasePoint evaluates one DesignPoint of the combined design space on a
// load sequence: Case 1 geometry at δ fixes the common footprint and the
// per-pair CS count, Case 3 replicates compute and banked memory across Y
// interleaved pairs (N and total bandwidth both scale with Y), and
// bwScale scales the M3D total bandwidth on top of the preserved per-CS
// share. The 2D baseline is the Eq. 9 commensurately-grown chip — it
// gains CSs from the grown die but keeps its single Si memory system.
//
// CasePoint is a pure function of (p, a, loads, d): the adaptive
// explorer memoizes it through exec.Cache and fans it out on the worker
// pool with deterministic results at any width.
func CasePoint(p Params, a AreaModel, loads []Load, d DesignPoint) (PointResult, error) {
	if err := p.Validate(); err != nil {
		return PointResult{}, err
	}
	if err := d.Validate(); err != nil {
		return PointResult{}, err
	}
	if len(loads) == 0 {
		return PointResult{}, fmt.Errorf("analytic: no loads: %w", errs.ErrBadSpec)
	}
	geo, err := a.Case1(d.Delta)
	if err != nil {
		return PointResult{}, err
	}
	n := geo.N3D * d.TierPairs
	// Per-CS bandwidth share preserved from the reference design, scaled
	// by the pair count (one banked memory system per pair) and the
	// explored bandwidth scale.
	perCSB3D := p.B3D / float64(p.N)
	b3d := perCSB3D * float64(geo.N3D) * float64(d.TierPairs) * d.BWScale

	var t2, t3, e2, e3 float64
	for _, w := range loads {
		t2 += tLike(p, w, geo.N2DNew, p.B2D)
		t3 += tLike(p, w, n, b3d)
		e2 += eLike(p, w, geo.N2DNew, p.B2D, p.Alpha2D, p.EMIdle2D)
		e3 += eLike(p, w, n, b3d, p.Alpha3D, p.EMIdle3D)
	}
	s := t2 / t3
	return PointResult{
		Point:       d,
		N:           n,
		N2DNew:      geo.N2DNew,
		Footprint:   geo.Footprint,
		Speedup:     s,
		EnergyRatio: e2 / e3,
		EDPBenefit:  s * e2 / e3,
	}, nil
}
