// Package analytic implements the paper's Sec. III analytical framework
// verbatim: execution-time and energy models for iso-footprint,
// iso-on-chip-memory-capacity M3D chips vs 2D baselines (Eqs. 1-8), the
// area model that converts freed Si CMOS area into parallel computing
// sub-systems (Eq. 2), and the three design-space cases — BEOL memory
// access FET width relaxation δ (Case 1, Eqs. 9-12), M3D via pitch β
// (Case 2), and multiple interleaved compute/memory tier pairs Y (Case 3)
// with the Eq. 17 thermal limit.
package analytic

import (
	"fmt"
	"math"

	"m3d/internal/errs"
)

// Params carries the abstract machine quantities of Sec. III.
type Params struct {
	// PPeak is ops/cycle of one computing sub-system (the paper's P_peak).
	PPeak float64
	// B2D is the baseline total memory bandwidth in bits/cycle.
	B2D float64
	// B3D is the M3D total memory bandwidth in bits/cycle (8×B2D in the
	// case study: 8× banks).
	B3D float64
	// N is the number of parallel CSs in the M3D chip (Eq. 2).
	N int

	// Alpha2D / Alpha3D are memory access energies, J/bit (α_2D, α_3D).
	Alpha2D, Alpha3D float64
	// EC is compute energy per op (E_C); identical for 2D and M3D since
	// both implement CSs in Si CMOS.
	EC float64
	// ECIdle is CS idle energy per cycle (E_C^idle).
	ECIdle float64
	// EMIdle2D / EMIdle3D are memory idle energies per cycle (E_M^idle).
	EMIdle2D, EMIdle3D float64
}

// Validate checks the parameters. Violations match errs.ErrBadSpec.
func (p Params) Validate() error {
	if p.PPeak <= 0 || p.B2D <= 0 || p.B3D <= 0 {
		return fmt.Errorf("analytic: PPeak/B2D/B3D must be positive: %w", errs.ErrBadSpec)
	}
	if p.N < 1 {
		return fmt.Errorf("analytic: N must be ≥ 1, got %d: %w", p.N, errs.ErrBadSpec)
	}
	return nil
}

// Load is one workload: F₀ compute ops over D₀ bits of on-chip data, with
// at most N# parallel partitions.
type Load struct {
	F0    float64 // ops
	D0    float64 // bits
	NPart int     // N#
}

// T2D is Eq. 1: baseline execution time in cycles.
func T2D(p Params, w Load) float64 {
	return math.Max(w.D0/p.B2D, w.F0/p.PPeak)
}

// Nmax returns min(N#, N) — the usable parallel CSs (Sec. III.A).
func Nmax(p Params, w Load) int {
	if w.NPart < 1 {
		return 1
	}
	if w.NPart < p.N {
		return w.NPart
	}
	return p.N
}

// T3D is Eq. 4: M3D execution time in cycles. The D₀·N/B₃D term models the
// bandwidth cost of feeding N partitions from the equally-partitioned banks.
func T3D(p Params, w Load) float64 {
	nm := float64(Nmax(p, w))
	return math.Max(w.D0*float64(p.N)/p.B3D, w.F0/(nm*p.PPeak))
}

// Speedup is Eq. 5.
func Speedup(p Params, w Load) float64 {
	return T2D(p, w) / T3D(p, w)
}

// E2D is Eq. 6: baseline energy in joules (cycle-denominated idle terms).
func E2D(p Params, w Load) float64 {
	t := T2D(p, w)
	return p.Alpha2D*w.D0 +
		p.EMIdle2D*(t-w.D0/p.B2D) +
		p.ECIdle*(t-w.F0/p.PPeak) +
		p.EC*w.F0
}

// E3D is Eq. 7: M3D energy in joules.
func E3D(p Params, w Load) float64 {
	t := T3D(p, w)
	nm := float64(Nmax(p, w))
	n := float64(p.N)
	return p.Alpha3D*w.D0 +
		p.EMIdle3D*(t-w.D0*n/p.B3D) +
		(n-nm)*p.ECIdle*t +
		nm*p.ECIdle*(t-w.F0/(nm*p.PPeak)) +
		p.EC*w.F0
}

// EDPBenefit is Eq. 8: speedup × energy ratio.
func EDPBenefit(p Params, w Load) float64 {
	return Speedup(p, w) * E2D(p, w) / E3D(p, w)
}

// Result bundles the three headline quantities for one load.
type Result struct {
	Speedup     float64
	EnergyRatio float64 // E2D / E3D (>1 means M3D uses less)
	EDPBenefit  float64
}

// Evaluate computes all three quantities.
func Evaluate(p Params, w Load) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if w.F0 <= 0 || w.D0 <= 0 {
		return Result{}, fmt.Errorf("analytic: load needs positive F0/D0: %w", errs.ErrBadSpec)
	}
	e2, e3 := E2D(p, w), E3D(p, w)
	if e3 <= 0 {
		return Result{}, fmt.Errorf("analytic: non-positive M3D energy %g", e3)
	}
	s := Speedup(p, w)
	return Result{Speedup: s, EnergyRatio: e2 / e3, EDPBenefit: s * e2 / e3}, nil
}

// EvaluateMany sums times and energies over a sequence of loads (a model's
// layers) and returns aggregate benefits.
func EvaluateMany(p Params, loads []Load) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if len(loads) == 0 {
		return Result{}, fmt.Errorf("analytic: no loads: %w", errs.ErrBadSpec)
	}
	var t2, t3, e2, e3 float64
	for _, w := range loads {
		t2 += T2D(p, w)
		t3 += T3D(p, w)
		e2 += E2D(p, w)
		e3 += E3D(p, w)
	}
	s := t2 / t3
	return Result{Speedup: s, EnergyRatio: e2 / e3, EDPBenefit: s * e2 / e3}, nil
}
