package analytic

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"m3d/internal/errs"
	"m3d/internal/exec"
)

func equivParams() Params {
	return Params{
		PPeak: 256, B2D: 168, B3D: 1344, N: 8,
		Alpha2D: 1e-12, Alpha3D: 1.1e-12,
		EC: 0.5e-12, ECIdle: 2e-12, EMIdle2D: 5e-12, EMIdle3D: 5.5e-12,
	}
}

// TestSweepBandwidthCSEquivalence proves the tentpole determinism claim:
// the pooled sweep is byte-identical to the serial seed implementation at
// pool widths 1, 2, and 8, and stable across repeated runs.
func TestSweepBandwidthCSEquivalence(t *testing.T) {
	p := equivParams()
	w := Load{F0: 16e6, D0: 1e6, NPart: 64}
	cs := []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}
	bw := []float64{0.5, 1, 1.5, 2, 4, 8, 16, 32}

	serial, err := sweepBandwidthCSSerial(p, w, cs, bw)
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("%v", serial)

	for _, width := range []int{1, 2, 8} {
		for rep := 0; rep < 3; rep++ {
			got, err := SweepBandwidthCS(p, w, cs, bw, exec.WithWorkers(width))
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(cs)*len(bw) {
				t.Fatalf("width %d: %d points, want %d", width, len(got), len(cs)*len(bw))
			}
			if s := fmt.Sprintf("%v", got); s != want {
				t.Fatalf("width %d rep %d: parallel sweep diverged from serial\nserial:   %s\nparallel: %s",
					width, rep, want, s)
			}
		}
	}
}

// TestSweepBandwidthCSErrorOrder pins the serial error semantics: the
// first offending axis value in row-major order is the one reported.
func TestSweepBandwidthCSErrorOrder(t *testing.T) {
	p := equivParams()
	w := Load{F0: 1e6, D0: 1e6, NPart: 4}
	for _, width := range []int{1, 2, 8} {
		_, err := SweepBandwidthCS(p, w, []int{1, 0}, []float64{0, 1}, exec.WithWorkers(width))
		if err == nil {
			t.Fatalf("width %d: expected error", width)
		}
		// Row-major: n=1 valid, then b=0 invalid, before n=0 is reached.
		if want := "analytic: bandwidth scale 0 must be positive"; !strings.Contains(err.Error(), want) {
			t.Fatalf("width %d: got %q, want %q", width, err.Error(), want)
		}
		if !errors.Is(err, errs.ErrBadSpec) {
			t.Fatalf("width %d: error %v must match errs.ErrBadSpec", width, err)
		}
	}
}

func TestSweepBandwidthCSEmptyAxes(t *testing.T) {
	p := equivParams()
	w := Load{F0: 1e6, D0: 1e6, NPart: 4}
	pts, err := SweepBandwidthCS(p, w, nil, []float64{1})
	if err != nil || len(pts) != 0 {
		t.Fatalf("empty axes: got %v, %v", pts, err)
	}
}
