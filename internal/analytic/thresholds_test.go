package analytic

import (
	"math"
	"testing"
)

func TestDeltaStarMatchesSweep(t *testing.T) {
	a := caseArea()
	// δ*₂ is where the grown 2D baseline first reaches 2 CSs; the Case 1
	// geometry must agree on both sides of it.
	d2, err := a.DeltaStar(2)
	if err != nil {
		t.Fatal(err)
	}
	if d2 <= 1.5 || d2 >= 2.0 {
		t.Errorf("δ*₂ = %.3f, expected in (1.5, 2) for the case-study areas", d2)
	}
	below, err := a.Case1(d2 - 0.01)
	if err != nil {
		t.Fatal(err)
	}
	above, err := a.Case1(d2 + 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if below.N2DNew != 1 {
		t.Errorf("just below δ*₂ the baseline should still have 1 CS, got %d", below.N2DNew)
	}
	if above.N2DNew < 2 {
		t.Errorf("just above δ*₂ the baseline should have 2 CSs, got %d", above.N2DNew)
	}
}

func TestDeltaStarClampsAtOne(t *testing.T) {
	// A tiny memory next to a huge CS: any δ ≥ 1 already exceeds the
	// threshold, so δ* clamps at 1.
	a := AreaModel{ACS: 100, ACells: 1, APerif: 1, ABusIO: 1}
	d, err := a.DeltaStar(1)
	if err != nil {
		t.Fatal(err)
	}
	if d < 1 {
		t.Errorf("δ* = %g must be ≥ 1", d)
	}
}

func TestDeltaStarValidation(t *testing.T) {
	if _, err := caseArea().DeltaStar(0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := (AreaModel{}).DeltaStar(1); err == nil {
		t.Error("empty model should fail")
	}
}

func TestBetaStarIsSqrtDeltaStar(t *testing.T) {
	a := caseArea()
	d, err := a.DeltaStar(2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := a.BetaStar(2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b*b-d) > 1e-12 {
		t.Errorf("β*² = %g != δ* = %g", b*b, d)
	}
	// The paper's Obs. 8 threshold: β* ≈ 1.3 with the case-study areas.
	if b < 1.2 || b > 1.45 {
		t.Errorf("β*₂ = %.3f, expected ≈1.3 (Obs. 8)", b)
	}
}

func TestBalanceBandwidth(t *testing.T) {
	p := caseParams()
	w := Load{F0: 16e6, D0: 1e6, NPart: 64}
	b, err := BalanceBandwidth(p, w, 8)
	if err != nil {
		t.Fatal(err)
	}
	// At exactly B = b, memory time equals compute time.
	mem := w.D0 * 8 / b
	cmp := w.F0 / (8 * p.PPeak)
	if math.Abs(mem-cmp)/cmp > 1e-9 {
		t.Errorf("balance point wrong: mem %g vs compute %g", mem, cmp)
	}
	// Below balance: memory bound; above: compute bound.
	pLow := p
	pLow.N = 8
	pLow.B3D = b * 0.5
	if T3D(pLow, w) <= cmp {
		t.Error("below balance the load should be memory bound")
	}
	pHigh := p
	pHigh.N = 8
	pHigh.B3D = b * 2
	if T3D(pHigh, w) != cmp {
		t.Error("above balance the load should be compute bound")
	}
	if _, err := BalanceBandwidth(p, Load{}, 1); err == nil {
		t.Error("empty load should fail")
	}
	if _, err := BalanceBandwidth(p, w, 0); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestOpsPerBitPivot(t *testing.T) {
	p := caseParams()
	pivot, err := OpsPerBitPivot(p)
	if err != nil {
		t.Fatal(err)
	}
	if pivot != p.PPeak/p.B2D {
		t.Errorf("pivot = %g", pivot)
	}
	// A load at the pivot has equal compute and memory time in 2D.
	w := Load{F0: pivot * 1e6, D0: 1e6, NPart: 1}
	if math.Abs(w.F0/p.PPeak-w.D0/p.B2D) > 1e-9 {
		t.Error("pivot load not balanced")
	}
	bad := p
	bad.B2D = 0
	if _, err := OpsPerBitPivot(bad); err == nil {
		t.Error("invalid params should fail")
	}
}
