package analytic

import (
	"errors"
	"math"
	"testing"

	"m3d/internal/errs"
)

func pointTestFixture() (Params, AreaModel, []Load) {
	p := Params{
		PPeak: 512, B2D: 64, B3D: 512, N: 8,
		Alpha2D: 1e-12, Alpha3D: 0.95e-12,
		EC: 0.5e-12, ECIdle: 10e-12, EMIdle2D: 40e-12, EMIdle3D: 38e-12,
	}
	a := AreaModel{ACS: 1e10, ACells: 7.8e10, APerif: 0.8e10, ABusIO: 2e10}
	loads := []Load{
		{F0: 16e6, D0: 1e6, NPart: 64},
		{F0: 2e6, D0: 8e6, NPart: 64},
	}
	return p, a, loads
}

// TestCasePointDegenerate pins the anchor: at δ=1, Y=1, bwScale=1 the
// combined point reduces exactly to Case1Benefit at δ=1 (same geometry,
// same bandwidth, same baseline).
func TestCasePointDegenerate(t *testing.T) {
	p, a, loads := pointTestFixture()
	got, err := CasePoint(p, a, loads, DesignPoint{Delta: 1, TierPairs: 1, BWScale: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, geo, err := Case1Benefit(p, a, loads, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != geo.N3D || got.N2DNew != geo.N2DNew {
		t.Fatalf("geometry mismatch: got N=%d N2DNew=%d, want %d/%d",
			got.N, got.N2DNew, geo.N3D, geo.N2DNew)
	}
	if math.Abs(got.EDPBenefit-want.EDPBenefit) > 1e-12*want.EDPBenefit {
		t.Fatalf("EDP benefit %g != Case1Benefit %g", got.EDPBenefit, want.EDPBenefit)
	}
	if math.Abs(got.Speedup-want.Speedup) > 1e-12*want.Speedup {
		t.Fatalf("speedup %g != Case1Benefit %g", got.Speedup, want.Speedup)
	}
	if got.Footprint != geo.Footprint {
		t.Fatalf("footprint %g != Case1 footprint %g", got.Footprint, geo.Footprint)
	}
}

// TestCasePointTierScaling checks the Case 3 axis: Y pairs multiply the
// CS count, and on a memory-bound load the speedup grows with the
// per-pair bandwidth replication.
func TestCasePointTierScaling(t *testing.T) {
	p, a, loads := pointTestFixture()
	one, err := CasePoint(p, a, loads, DesignPoint{Delta: 1, TierPairs: 1, BWScale: 1})
	if err != nil {
		t.Fatal(err)
	}
	four, err := CasePoint(p, a, loads, DesignPoint{Delta: 1, TierPairs: 4, BWScale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if four.N != 4*one.N {
		t.Fatalf("N at Y=4 is %d, want 4×%d", four.N, one.N)
	}
	if four.Speedup < one.Speedup {
		t.Fatalf("speedup dropped with tier pairs: %g < %g", four.Speedup, one.Speedup)
	}
	if four.Footprint != one.Footprint {
		t.Fatalf("footprint changed with Y (iso-footprint stacking): %g vs %g",
			four.Footprint, one.Footprint)
	}
}

// TestCasePointBandwidthMonotone: more M3D bandwidth never slows the
// design down (T3D is non-increasing in b), so speedup is monotone
// non-decreasing in bwScale.
func TestCasePointBandwidthMonotone(t *testing.T) {
	p, a, loads := pointTestFixture()
	prev := -math.MaxFloat64
	for _, b := range []float64{0.5, 1, 2, 4, 8, 16} {
		r, err := CasePoint(p, a, loads, DesignPoint{Delta: 1.5, TierPairs: 2, BWScale: b})
		if err != nil {
			t.Fatal(err)
		}
		if r.Speedup < prev {
			t.Fatalf("speedup fell at bwScale=%g: %g < %g", b, r.Speedup, prev)
		}
		prev = r.Speedup
	}
}

// TestCasePointFootprintGrows: once δ·A_cells outgrows the die both chips
// grow, so footprint is monotone non-decreasing in δ and strictly larger
// at a big enough δ.
func TestCasePointFootprintGrows(t *testing.T) {
	p, a, loads := pointTestFixture()
	small, err := CasePoint(p, a, loads, DesignPoint{Delta: 1, TierPairs: 1, BWScale: 1})
	if err != nil {
		t.Fatal(err)
	}
	big, err := CasePoint(p, a, loads, DesignPoint{Delta: 2.5, TierPairs: 1, BWScale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if big.Footprint <= small.Footprint {
		t.Fatalf("footprint did not grow with δ: %g vs %g", big.Footprint, small.Footprint)
	}
}

func TestCasePointBadSpec(t *testing.T) {
	p, a, loads := pointTestFixture()
	for _, d := range []DesignPoint{
		{Delta: 0.5, TierPairs: 1, BWScale: 1},
		{Delta: 1, TierPairs: 0, BWScale: 1},
		{Delta: 1, TierPairs: 1, BWScale: 0},
		{Delta: 1, TierPairs: 1, BWScale: -2},
	} {
		if _, err := CasePoint(p, a, loads, d); !errors.Is(err, errs.ErrBadSpec) {
			t.Errorf("CasePoint(%+v) error = %v, want ErrBadSpec", d, err)
		}
	}
	if _, err := CasePoint(p, a, nil, DesignPoint{Delta: 1, TierPairs: 1, BWScale: 1}); !errors.Is(err, errs.ErrBadSpec) {
		t.Errorf("empty loads error = %v, want ErrBadSpec", err)
	}
}
