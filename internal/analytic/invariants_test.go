package analytic

import (
	"math"
	"math/rand"
	"testing"

	"m3d/internal/tech"
	"m3d/internal/thermal"
)

// This file is the property-based invariant suite for the Sec. III
// analytical framework: randomized-but-valid Params/Load draws checked
// against the model's mathematical guarantees rather than point goldens.
// Every subtest logs its seed so a failure replays deterministically.

// invariantSeeds are the fixed seeds the suite runs at; each seed drives
// an independent stream of randomized machines and workloads.
var invariantSeeds = []int64{1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377, 610, 987, 1597, 2584, 4181, 6765, 10946}

const invariantTol = 1e-9

// randParams draws a valid machine with B3D = scale·B2D for a uniform
// scale in [1, N] — the physically meaningful regime (Eq. 2 frees Si for
// at most N sub-systems, each fed from an equal bank partition), and
// exactly the regime in which Speedup ≤ N is a theorem (see
// TestInvariantSpeedupBoundedByN).
func randParams(rng *rand.Rand) Params {
	n := 1 + rng.Intn(16)
	b2d := 64 * math.Pow(2, 3*rng.Float64()) // [64, 512) bits/cycle
	scale := 1 + rng.Float64()*float64(n-1)  // [1, N)
	return Params{
		PPeak:    256 * math.Pow(2, 2*rng.Float64()),
		B2D:      b2d,
		B3D:      scale * b2d,
		N:        n,
		Alpha2D:  1e-12 * (1 + rng.Float64()),
		Alpha3D:  1e-13 * (1 + rng.Float64()),
		EC:       1e-12 * (1 + rng.Float64()),
		ECIdle:   1e-13 * (1 + rng.Float64()),
		EMIdle2D: 1e-11 * (1 + rng.Float64()),
		EMIdle3D: 1e-12 * (1 + rng.Float64()),
	}
}

// randLoad draws a valid workload for p: positive F0/D0 and a partition
// count covering the NPart < N, = N and > N branches of Nmax.
func randLoad(rng *rand.Rand, p Params) Load {
	return Load{
		F0:    1e6 * (1 + 100*rng.Float64()),
		D0:    1e5 * (1 + 100*rng.Float64()),
		NPart: 1 + rng.Intn(2*p.N),
	}
}

// memBoundLoad draws a workload that stays memory-bound on the M3D side
// even at bandwidth scale bMax: D0·N/(B2D·bMax) ≥ F0/(Nmax·PPeak). In
// this regime T3D = D0·N/B3D, so more bandwidth strictly shortens
// execution and idles nothing extra — the regime where EDP benefit is
// provably monotone in bandwidth (outside it the memory-idle term
// E_M^idle·(t − D0·N/B3D) grows with bandwidth and the claim is false).
func memBoundLoad(rng *rand.Rand, p Params, bMax float64) Load {
	w := randLoad(rng, p)
	nm := float64(Nmax(p, w))
	// Cap F0 at a random fraction of the bound so the property is
	// exercised strictly inside the region, not only on its boundary.
	f0Bound := w.D0 * float64(p.N) * nm * p.PPeak / (p.B2D * bMax)
	w.F0 = f0Bound * (0.1 + 0.85*rng.Float64())
	return w
}

// TestInvariantSpeedupBoundedByN: with B3D ≤ N·B2D (randParams'
// construction), T3D ≥ T2D/N termwise, so Eq. 5 speedup can never exceed
// the parallel CS count N — parallelism is the only lever, and bandwidth
// per CS never exceeds the baseline's.
func TestInvariantSpeedupBoundedByN(t *testing.T) {
	for _, seed := range invariantSeeds {
		rng := rand.New(rand.NewSource(seed))
		t.Logf("seed %d", seed)
		for i := 0; i < 200; i++ {
			p := randParams(rng)
			w := randLoad(rng, p)
			s := Speedup(p, w)
			if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
				t.Fatalf("seed %d draw %d: degenerate speedup %g (p=%+v w=%+v)", seed, i, s, p, w)
			}
			if bound := float64(p.N) * (1 + invariantTol); s > bound {
				t.Fatalf("seed %d draw %d: speedup %g exceeds N=%d (p=%+v w=%+v)", seed, i, s, p.N, p, w)
			}
		}
	}
}

// TestInvariantEDPMonotoneInBandwidth: at fixed N and a memory-bound
// workload, scaling M3D bandwidth up never lowers the EDP benefit.
func TestInvariantEDPMonotoneInBandwidth(t *testing.T) {
	scales := []float64{1, 1.5, 2, 3, 4, 6, 8, 12, 16}
	bMax := scales[len(scales)-1]
	for _, seed := range invariantSeeds {
		rng := rand.New(rand.NewSource(seed))
		t.Logf("seed %d", seed)
		for i := 0; i < 100; i++ {
			p := randParams(rng)
			w := memBoundLoad(rng, p, bMax)
			prev := math.Inf(-1)
			for _, sc := range scales {
				q := p
				q.B3D = p.B2D * sc
				res, err := Evaluate(q, w)
				if err != nil {
					t.Fatalf("seed %d draw %d scale %g: %v", seed, i, sc, err)
				}
				if res.EDPBenefit < prev*(1-invariantTol) {
					t.Fatalf("seed %d draw %d: EDP benefit fell %g → %g at scale %g (p=%+v w=%+v)",
						seed, i, prev, res.EDPBenefit, sc, q, w)
				}
				prev = res.EDPBenefit
			}
		}
	}
}

// TestInvariantThermalHeadroomMonotoneInTiers: at fixed per-tier power,
// every added tier pushes the Eq. 17 junction rise up (each tier heats
// through all resistances below it), so the headroom against the PDK
// budget never grows with stack depth.
func TestInvariantThermalHeadroomMonotoneInTiers(t *testing.T) {
	pdk := tech.Default130()
	for _, seed := range invariantSeeds {
		rng := rand.New(rand.NewSource(seed))
		t.Logf("seed %d", seed)
		for i := 0; i < 50; i++ {
			perTier := 0.5 + 10*rng.Float64()
			prevHeadroom := math.Inf(1)
			prevRise := 0.0
			for tiers := 1; tiers <= 16; tiers++ {
				powers := make([]float64, tiers)
				for j := range powers {
					powers[j] = perTier
				}
				rise := thermal.NewStack(pdk, powers).TempRiseK()
				if rise < prevRise-invariantTol {
					t.Fatalf("seed %d draw %d: rise fell %g → %g K at %d tiers (per-tier %g W)",
						seed, i, prevRise, rise, tiers, perTier)
				}
				headroom := pdk.MaxTempRiseK - rise
				if headroom > prevHeadroom+invariantTol {
					t.Fatalf("seed %d draw %d: headroom grew %g → %g K at %d tiers (per-tier %g W)",
						seed, i, prevHeadroom, headroom, tiers, perTier)
				}
				prevRise, prevHeadroom = rise, headroom
			}
		}
	}
}

// TestInvariantDegenerateMatchesBaseline: collapsing every M3D advantage
// — N=1, B3D=B2D, α_3D=α_2D, E_M^idle,3D=E_M^idle,2D — makes Eqs. 4/7
// coincide with Eqs. 1/6, so speedup, energy ratio and EDP benefit are
// all exactly 1 (within 1e-9). The area-model analogue: δ=1 (Case 1)
// and β small enough to not via-limit the cell (Case 2 δ=1) leave the
// geometry untouched.
func TestInvariantDegenerateMatchesBaseline(t *testing.T) {
	for _, seed := range invariantSeeds {
		rng := rand.New(rand.NewSource(seed))
		t.Logf("seed %d", seed)
		for i := 0; i < 200; i++ {
			p := randParams(rng)
			p.N = 1
			p.B3D = p.B2D
			p.Alpha3D = p.Alpha2D
			p.EMIdle3D = p.EMIdle2D
			w := randLoad(rng, p)
			res, err := Evaluate(p, w)
			if err != nil {
				t.Fatalf("seed %d draw %d: %v", seed, i, err)
			}
			for name, got := range map[string]float64{
				"speedup":      res.Speedup,
				"energy ratio": res.EnergyRatio,
				"edp benefit":  res.EDPBenefit,
			} {
				if math.Abs(got-1) > invariantTol {
					t.Fatalf("seed %d draw %d: degenerate %s = %.12g, want 1 (p=%+v w=%+v)",
						seed, i, name, got, p, w)
				}
			}
		}

		// Area-model degeneracy at δ=1: the footprint and the M3D CS
		// count match the unrelaxed Eq. 2 geometry.
		a := AreaModel{
			ACS:    1e6 * (1 + rng.Float64()),
			ACells: 1e6 * (1 + 10*rng.Float64()),
			APerif: 1e5 * rng.Float64(),
			ABusIO: 1e5 * rng.Float64(),
		}
		c1, err := a.Case1(1)
		if err != nil {
			t.Fatalf("seed %d: Case1(1): %v", seed, err)
		}
		if c1.Footprint != a.Total2D() {
			t.Fatalf("seed %d: δ=1 footprint %g ≠ A_2D %g", seed, c1.Footprint, a.Total2D())
		}
		if c1.N2DNew != 1 {
			t.Fatalf("seed %d: δ=1 grown baseline N = %d, want 1", seed, c1.N2DNew)
		}
		// β=1 with a via budget already inside the cell area keeps δ=1.
		delta, err := Case2Delta(1, 4, 100, 1e6)
		if err != nil || delta != 1 {
			t.Fatalf("seed %d: Case2Delta(β=1) = %g, %v, want 1", seed, delta, err)
		}
	}
}
