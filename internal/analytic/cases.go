package analytic

import (
	"context"
	"fmt"
	"math"

	"m3d/internal/errs"
	"m3d/internal/exec"
	"m3d/internal/obs"
)

// tLike is the generalized Eq. 4 time: n parallel CSs sharing total
// bandwidth b.
func tLike(p Params, w Load, n int, b float64) float64 {
	nm := n
	if w.NPart >= 1 && w.NPart < nm {
		nm = w.NPart
	}
	if nm < 1 {
		nm = 1
	}
	return math.Max(w.D0*float64(n)/b, w.F0/(float64(nm)*p.PPeak))
}

// eLike is the generalized Eq. 7/11 energy: n parallel CSs, total
// bandwidth b, memory access energy alpha, memory idle energy emIdle.
func eLike(p Params, w Load, n int, b, alpha, emIdle float64) float64 {
	nm := n
	if w.NPart >= 1 && w.NPart < nm {
		nm = w.NPart
	}
	if nm < 1 {
		nm = 1
	}
	t := tLike(p, w, n, b)
	return alpha*w.D0 +
		emIdle*(t-w.D0*float64(n)/b) +
		float64(n-nm)*p.ECIdle*t +
		float64(nm)*p.ECIdle*(t-w.F0/(float64(nm)*p.PPeak)) +
		p.EC*w.F0
}

// Case1Benefit evaluates Eqs. 10-12: the M3D EDP benefit at BEOL FET width
// relaxation δ, against the commensurately-grown 2D baseline with N_2D^new
// parallel CSs. The per-CS memory bandwidth of both chips is preserved as
// CS counts change (banks scale with CSs in M3D; the 2D baseline keeps its
// single memory system).
func Case1Benefit(p Params, a AreaModel, loads []Load, delta float64) (Result, Case1Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, Case1Result{}, err
	}
	geo, err := a.Case1(delta)
	if err != nil {
		return Result{}, Case1Result{}, err
	}
	if len(loads) == 0 {
		return Result{}, Case1Result{}, fmt.Errorf("analytic: no loads: %w", errs.ErrBadSpec)
	}
	// M3D bandwidth: per-CS share preserved from the reference design.
	perCSB3D := p.B3D / float64(p.N)
	b3d := perCSB3D * float64(geo.N3D)

	var t2, t3, e2, e3 float64
	for _, w := range loads {
		t2 += tLike(p, w, geo.N2DNew, p.B2D)
		t3 += tLike(p, w, geo.N3D, b3d)
		e2 += eLike(p, w, geo.N2DNew, p.B2D, p.Alpha2D, p.EMIdle2D)
		e3 += eLike(p, w, geo.N3D, b3d, p.Alpha3D, p.EMIdle3D)
	}
	s := t2 / t3
	return Result{Speedup: s, EnergyRatio: e2 / e3, EDPBenefit: s * e2 / e3}, geo, nil
}

// Case2Benefit evaluates the via-pitch case: β is converted to an
// effective δ (via-pitch-limited cell growth) and fed through Case 1.
func Case2Benefit(p Params, a AreaModel, loads []Load, beta float64,
	viasPerCell int, pitch, cellArea2D float64) (Result, Case1Result, error) {

	delta, err := Case2Delta(beta, viasPerCell, pitch, cellArea2D)
	if err != nil {
		return Result{}, Case1Result{}, err
	}
	return Case1Benefit(p, a, loads, delta)
}

// Case3Benefit evaluates Y interleaved compute+memory tier pairs vs the
// original 2D baseline: N scales as Y·⌊1+γ_cells+γ_perif⌋ (each memory
// tier brings its own peripherals/IO), and total M3D bandwidth scales with
// Y (one banked memory system per pair).
func Case3Benefit(p Params, a AreaModel, loads []Load, y int) (Result, int, error) {
	if err := p.Validate(); err != nil {
		return Result{}, 0, err
	}
	n, err := a.Case3N(y)
	if err != nil {
		return Result{}, 0, err
	}
	if len(loads) == 0 {
		return Result{}, 0, fmt.Errorf("analytic: no loads: %w", errs.ErrBadSpec)
	}
	b3d := p.B3D * float64(y)
	var t2, t3, e2, e3 float64
	for _, w := range loads {
		t2 += T2D(p, w)
		t3 += tLike(p, w, n, b3d)
		e2 += E2D(p, w)
		e3 += eLike(p, w, n, b3d, p.Alpha3D, p.EMIdle3D)
	}
	s := t2 / t3
	return Result{Speedup: s, EnergyRatio: e2 / e3, EDPBenefit: s * e2 / e3}, n, nil
}

// SweepPoint is one cell of the Fig. 8 heat map.
type SweepPoint struct {
	NumCS      int
	BWScale    float64
	EDPBenefit float64
}

// sweepPoint computes one Fig. 8 grid cell: an M3D design with n CSs and
// b×B2D total bandwidth vs the 1-CS 2D baseline.
func sweepPoint(p Params, w Load, n int, b float64) SweepPoint {
	b3d := p.B2D * b
	t2 := T2D(p, w)
	t3 := tLike(p, w, n, b3d)
	e2 := E2D(p, w)
	e3 := eLike(p, w, n, b3d, p.Alpha3D, p.EMIdle3D)
	return SweepPoint{
		NumCS:      n,
		BWScale:    b,
		EDPBenefit: (t2 / t3) * (e2 / e3),
	}
}

// validateSweepAxes mirrors the serial sweep's error order: the first
// offending axis value in row-major (csCounts outer, bwScales inner)
// iteration order is reported. Violations match errs.ErrBadSpec.
func validateSweepAxes(csCounts []int, bwScales []float64) error {
	for _, n := range csCounts {
		if n < 1 {
			return fmt.Errorf("analytic: CS count %d must be ≥ 1: %w", n, errs.ErrBadSpec)
		}
		for _, b := range bwScales {
			if b <= 0 {
				return fmt.Errorf("analytic: bandwidth scale %g must be positive: %w", b, errs.ErrBadSpec)
			}
		}
	}
	return nil
}

// sweepKey identifies one memoizable sweep evaluation: the full machine
// parameters, the load, and the grid coordinates determine the point.
type sweepKey struct {
	p Params
	w Load
	n int
	b float64
}

// sweepCache memoizes repeated (Params, Load, n, b) evaluations across
// sweeps. SweepPoint is a pure function of the key, so a process-wide
// cache is deterministic and safe under concurrency — eviction merely
// costs a recomputation, never changes a result. Long-lived processes
// bound it with M3D_CACHE_CAP (entries); unset keeps the seed's
// unbounded behaviour.
var sweepCache exec.Cache[sweepKey, SweepPoint]

func init() {
	if cap := exec.CacheCapFromEnv(); cap > 0 {
		sweepCache.Bound(cap, nil)
	}
}

// SweepBandwidthCS evaluates the Fig. 8 grid: EDP benefit as a function of
// parallel CS count and total-bandwidth scale, for a workload with the
// given compute intensity (ops per bit). Each point is an M3D design with
// n CSs and b×B2D total bandwidth vs the 1-CS 2D baseline.
//
// Points are evaluated concurrently on the exec worker pool (the shared
// exec.Option surface controls width, cancellation, tracing and
// metrics); results are returned in the serial row-major order (csCounts
// outer, bwScales inner) and are bit-identical to the serial evaluation
// at any pool width. Repeated points are served from a process-wide memo
// cache, accounted by the registry's sweep.memo.hits /
// sweep.memo.misses counters; when a tracer is attached the whole grid
// runs under one "analytic.sweep" span.
func SweepBandwidthCS(p Params, w Load, csCounts []int, bwScales []float64, opts ...exec.Option) ([]SweepPoint, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := validateSweepAxes(csCounts, bwScales); err != nil {
		return nil, err
	}
	if len(csCounts) == 0 || len(bwScales) == 0 {
		return nil, nil
	}
	st := exec.Resolve(opts...)
	if st.Label == "" {
		st.Label = "sweep.point"
	}
	if st.Tracer != nil {
		sp := st.Tracer.StartSpan("analytic.sweep",
			obs.Int("cs_axis", len(csCounts)), obs.Int("bw_axis", len(bwScales)))
		defer sp.End()
	}
	hits := st.Metrics.Counter("sweep.memo.hits")
	misses := st.Metrics.Counter("sweep.memo.misses")
	return exec.GridWith(st, csCounts, bwScales, func(_ context.Context, n int, b float64) (SweepPoint, error) {
		return sweepCache.DoMetered(sweepKey{p, w, n, b}, hits, misses, func() (SweepPoint, error) {
			return sweepPoint(p, w, n, b), nil
		})
	})
}

// sweepBandwidthCSSerial is the seed implementation, retained as the
// reference for the parallel-equivalence tests.
func sweepBandwidthCSSerial(p Params, w Load, csCounts []int, bwScales []float64) ([]SweepPoint, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var out []SweepPoint
	for _, n := range csCounts {
		if n < 1 {
			return nil, fmt.Errorf("analytic: CS count %d must be ≥ 1", n)
		}
		for _, b := range bwScales {
			if b <= 0 {
				return nil, fmt.Errorf("analytic: bandwidth scale %g must be positive", b)
			}
			out = append(out, sweepPoint(p, w, n, b))
		}
	}
	return out, nil
}
