package analytic

import (
	"testing"

	"m3d/internal/exec"
)

// benchGrid is the Fig. 8 sweep shape scaled up (denser axes) so the
// serial-vs-parallel comparison measures per-point work, not setup.
var (
	benchCS = []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128}
	benchBW = []float64{0.5, 1, 1.5, 2, 3, 4, 6, 8, 12, 16, 24, 32}
)

func benchLoad() (Params, Load) {
	p := equivParams()
	return p, Load{F0: 16e6, D0: 1e6, NPart: 64}
}

// BenchmarkSweepSerial is the seed's nested-loop sweep, kept as the
// reference implementation.
func BenchmarkSweepSerial(b *testing.B) {
	p, w := benchLoad()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sweepBandwidthCSSerial(p, w, benchCS, benchBW); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepParallel runs the same grid through exec.Grid at the
// default pool width. The memo cache is reset every iteration so the
// benchmark measures evaluation, not cache hits.
func BenchmarkSweepParallel(b *testing.B) {
	p, w := benchLoad()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sweepCache.Reset()
		if _, err := SweepBandwidthCS(p, w, benchCS, benchBW); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepParallelCached measures the steady-state path where the
// whole grid is already memoized (repeated DSE queries on one grid).
func BenchmarkSweepParallelCached(b *testing.B) {
	p, w := benchLoad()
	sweepCache.Reset()
	if _, err := SweepBandwidthCS(p, w, benchCS, benchBW); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SweepBandwidthCS(p, w, benchCS, benchBW); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepParallelWidth8 pins the pool width explicitly, so runs on
// many-core machines report the scaling the ISSUE's criterion targets.
func BenchmarkSweepParallelWidth8(b *testing.B) {
	p, w := benchLoad()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sweepCache.Reset()
		if _, err := SweepBandwidthCS(p, w, benchCS, benchBW, exec.WithWorkers(8)); err != nil {
			b.Fatal(err)
		}
	}
}
