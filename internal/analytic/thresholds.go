package analytic

import (
	"fmt"
	"math"
)

// Closed-form design-space thresholds derived from the framework. These
// make the paper's Observations 5/7/8 available as solvers instead of
// sweep read-offs.

// DeltaStar returns the Case 1 width-relaxation threshold at which the
// commensurately-grown 2D baseline gains its k-th additional CS (Eq. 9
// crosses k): δ*_k = (A_2D + k·A_CS) / A_cells. Benefits hold while the
// baseline stays at one CS, i.e. up to DeltaStar(2) — the paper's
// "no loss up to 1.6×" point.
func (a AreaModel) DeltaStar(k int) (float64, error) {
	if err := a.Validate(); err != nil {
		return 0, err
	}
	if k < 1 {
		return 0, fmt.Errorf("analytic: k must be ≥ 1, got %d", k)
	}
	d := (a.Total2D() + float64(k)*a.ACS) / a.ACells
	if d < 1 {
		d = 1
	}
	return d, nil
}

// BetaStar converts DeltaStar into the Case 2 via-pitch threshold for a
// via-pitch-limited cell (δ_eff = β²): β* = √δ*. The paper's Obs. 8
// "cannot increase more than ~1.3×" point is BetaStar(2).
func (a AreaModel) BetaStar(k int) (float64, error) {
	d, err := a.DeltaStar(k)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(d), nil
}

// BalanceBandwidth returns the memory bandwidth (bits/cycle) at which a
// load is exactly balanced between compute and memory on n parallel CSs:
// D₀·n/B = F₀/(min(n,N#)·P). Below it the load is memory-bound; above,
// compute-bound (Obs. 5's pivot).
func BalanceBandwidth(p Params, w Load, n int) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if w.F0 <= 0 || w.D0 <= 0 {
		return 0, fmt.Errorf("analytic: load needs positive F0/D0")
	}
	if n < 1 {
		return 0, fmt.Errorf("analytic: n must be ≥ 1, got %d", n)
	}
	nm := n
	if w.NPart >= 1 && w.NPart < nm {
		nm = w.NPart
	}
	return w.D0 * float64(n) * float64(nm) * p.PPeak / w.F0, nil
}

// OpsPerBitPivot returns the compute intensity (ops per bit) at which a
// load transitions from memory-bound to compute-bound on the baseline:
// F₀/D₀ = P/B.
func OpsPerBitPivot(p Params) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	return p.PPeak / p.B2D, nil
}
