package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

// caseArea mirrors the Sec. II case study: γ_cells ≈ 7.5 → N = 8 (Eq. 2).
// Bus/IO area is sized so the grown 2D baseline gains its second CS just
// past δ≈1.7 (β≈1.3), reproducing the paper's Obs. 7/8 thresholds.
func caseArea() AreaModel {
	return AreaModel{ACS: 1.0, ACells: 7.55, APerif: 1.06, ABusIO: 2.0}
}

// resnetLikeLoads is a coarse ResNet-18-like layer mix: mostly
// compute-bound, highly partitionable layers plus a few low-intensity ones.
func resnetLikeLoads() []Load {
	return []Load{
		{F0: 118e6, D0: 1.3e6, NPart: 4},  // early conv
		{F0: 462e6, D0: 13e6, NPart: 4},   // L1 stage
		{F0: 410e6, D0: 7e6, NPart: 8},    // L2 stage
		{F0: 410e6, D0: 3.5e6, NPart: 16}, // L3 stage
		{F0: 410e6, D0: 2e6, NPart: 32},   // L4 stage
		{F0: 6.4e6, D0: 2.4e6, NPart: 8},  // DS layers
		{F0: 0.5e6, D0: 4.1e6, NPart: 63}, // FC
	}
}

func TestEq2N(t *testing.T) {
	if got := caseArea().N(); got != 8 {
		t.Errorf("Eq. 2 N = %d, want 8 (γ_cells=7.55)", got)
	}
	small := AreaModel{ACS: 1, ACells: 0.3, APerif: 0.05, ABusIO: 0.05}
	if got := small.N(); got != 1 {
		t.Errorf("small memory N = %d, want 1", got)
	}
}

func TestGammas(t *testing.T) {
	a := caseArea()
	if a.GammaCells() != 7.55 || a.GammaPerif() != 1.06 {
		t.Error("gamma computation wrong")
	}
	if math.Abs(a.Total2D()-11.61) > 1e-12 {
		t.Errorf("total area = %g, want 11.61", a.Total2D())
	}
}

func TestCase1GeometryUnchangedAtSmallDelta(t *testing.T) {
	a := caseArea()
	geo, err := a.Case1(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if geo.Footprint != a.Total2D() {
		t.Errorf("δ=1 footprint %g != A2D %g", geo.Footprint, a.Total2D())
	}
	if geo.N2DNew != 1 {
		t.Errorf("δ=1 N2Dnew = %d, want 1", geo.N2DNew)
	}
	if geo.N3D < a.N() {
		t.Errorf("δ=1 N3D = %d, want ≥ %d", geo.N3D, a.N())
	}
}

func TestCase1GeometryGrowsWithDelta(t *testing.T) {
	a := caseArea()
	g16, err := a.Case1(1.6)
	if err != nil {
		t.Fatal(err)
	}
	g25, err := a.Case1(2.5)
	if err != nil {
		t.Fatal(err)
	}
	if g16.Footprint <= a.Total2D() {
		t.Error("δ=1.6 should outgrow the original footprint")
	}
	if g25.N3D <= g16.N3D || g25.N2DNew <= g16.N2DNew {
		t.Error("both CS counts must grow with δ (Fig. 10b)")
	}
	// The M3D chip always hosts more CSs than the grown 2D baseline.
	if g25.N3D <= g25.N2DNew {
		t.Errorf("N3D %d should exceed N2Dnew %d", g25.N3D, g25.N2DNew)
	}
}

func TestCase1DeltaValidation(t *testing.T) {
	if _, err := caseArea().Case1(0.5); err == nil {
		t.Error("δ<1 should fail")
	}
	bad := AreaModel{}
	if _, err := bad.Case1(1); err == nil {
		t.Error("empty area model should fail")
	}
}

func TestObservation7WidthRelaxationCurve(t *testing.T) {
	// Obs. 7: benefits hold to δ≈1.6, decline after, but remain >1 at 2.5.
	p := caseParams()
	a := caseArea()
	loads := resnetLikeLoads()

	at := func(delta float64) float64 {
		r, _, err := Case1Benefit(p, a, loads, delta)
		if err != nil {
			t.Fatal(err)
		}
		return r.EDPBenefit
	}
	b10, b16, b25 := at(1.0), at(1.6), at(2.5)
	if b10 < 4.5 || b10 > 7.5 {
		t.Errorf("δ=1 EDP benefit = %.2f, want ≈5.7", b10)
	}
	if b16 < 0.75*b10 {
		t.Errorf("δ=1.6 benefit %.2f dropped more than 25%% from %.2f (Obs. 7 says ≈no loss)", b16, b10)
	}
	if b25 >= b16 {
		t.Errorf("δ=2.5 benefit %.2f should be below δ=1.6 %.2f", b25, b16)
	}
	if b25 <= 1 {
		t.Errorf("δ=2.5 should retain small benefits, got %.2f", b25)
	}
}

func TestCase2DeltaThreshold(t *testing.T) {
	// The baseline cell is via-pitch limited (area = m·pitch² = 50,700 nm²
	// at m=3, 130 nm pitch), so δ_eff = β².
	d, err := Case2Delta(1.2, 3, 130, 50700)
	if err != nil {
		t.Fatal(err)
	}
	if d < 1.43 || d > 1.45 {
		t.Errorf("β=1.2 δ = %g, want β²=1.44", d)
	}
	d, err = Case2Delta(2.0, 3, 130, 50700)
	if err != nil {
		t.Fatal(err)
	}
	if d < 3.99 || d > 4.01 {
		t.Errorf("β=2 δ = %g, want 4", d)
	}
	// A cell bigger than the via limit stays at δ=1 for small β.
	d, err = Case2Delta(1.2, 3, 130, 120_000)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Errorf("FET-limited cell at β=1.2: δ = %g, want 1", d)
	}
	if _, err := Case2Delta(0.5, 3, 130, 50700); err == nil {
		t.Error("β<1 should fail")
	}
	if _, err := Case2Delta(1.5, 0, 130, 50700); err == nil {
		t.Error("zero vias should fail")
	}
}

func TestObservation8ViaPitchCurve(t *testing.T) {
	// Obs. 8: β ≤ 1.3 free; β ≥ 1.6-2 erodes benefits substantially.
	p := caseParams()
	a := caseArea()
	loads := resnetLikeLoads()
	cellArea := 50700.0
	pitch := 130.0

	at := func(beta float64) float64 {
		r, _, err := Case2Benefit(p, a, loads, beta, 3, pitch, cellArea)
		if err != nil {
			t.Fatal(err)
		}
		return r.EDPBenefit
	}
	b10, b13, b16 := at(1.0), at(1.3), at(1.6)
	if b13 < 0.9*b10 {
		t.Errorf("β=1.3 benefit %.2f should be ≈ β=1 benefit %.2f (Obs. 8)", b13, b10)
	}
	if b16 >= 0.7*b10 {
		t.Errorf("β=1.6 benefit %.2f should clearly erode vs %.2f (Obs. 8)", b16, b10)
	}
}

func TestObservation9InterleavedTiers(t *testing.T) {
	// Obs. 9: one extra compute+memory pair raises the benefit, then it
	// plateaus as N exceeds the workload's partitionability.
	p := caseParams()
	a := caseArea()
	loads := resnetLikeLoads()

	at := func(y int) float64 {
		r, _, err := Case3Benefit(p, a, loads, y)
		if err != nil {
			t.Fatal(err)
		}
		return r.EDPBenefit
	}
	b1, b2, b4, b8 := at(1), at(2), at(4), at(8)
	if b2 <= b1 {
		t.Errorf("Y=2 (%.2f) should beat Y=1 (%.2f)", b2, b1)
	}
	// Plateau: Y=8 gains little over Y=4.
	if b8 > 1.25*b4 {
		t.Errorf("benefit should plateau: Y=4 %.2f vs Y=8 %.2f", b4, b8)
	}
	if _, _, err := Case3Benefit(p, a, loads, 0); err == nil {
		t.Error("Y=0 should fail")
	}
}

func TestCase3HighlyParallelLayer(t *testing.T) {
	// Obs. 9's aside: a highly parallelizable layer (L4.1-like, N#=32)
	// approaches a much higher plateau (~23x in the paper).
	p := caseParams()
	a := caseArea()
	layer := []Load{{F0: 410e6, D0: 0.4e6, NPart: 32}}
	r, _, err := Case3Benefit(p, a, layer, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.EDPBenefit < 15 {
		t.Errorf("highly parallel layer at Y=4 = %.1fx, want ≥15x (paper ≈23x)", r.EDPBenefit)
	}
}

func TestFig8SweepShape(t *testing.T) {
	p := caseParams()
	// Compute-bound load (16 ops/bit).
	w := Load{F0: 16e6, D0: 1e6, NPart: 64}
	pts, err := SweepBandwidthCS(p, w, []int{1, 2, 4, 8}, []float64{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 16 {
		t.Fatalf("points = %d", len(pts))
	}
	get := func(n int, b float64) float64 {
		for _, pt := range pts {
			if pt.NumCS == n && pt.BWScale == b {
				return pt.EDPBenefit
			}
		}
		t.Fatalf("missing point %d/%g", n, b)
		return 0
	}
	// Compute-bound: more CSs help (at matching bandwidth).
	if get(8, 8) <= get(2, 8) {
		t.Error("compute-bound: 8 CS should beat 2 CS")
	}
	// More bandwidth alone doesn't help a compute-bound load.
	if get(1, 8) > get(1, 1)*1.05 {
		t.Error("compute-bound: bandwidth alone should not help")
	}
	if _, err := SweepBandwidthCS(p, w, []int{0}, []float64{1}); err == nil {
		t.Error("zero CS should fail")
	}
	if _, err := SweepBandwidthCS(p, w, []int{1}, []float64{0}); err == nil {
		t.Error("zero bandwidth should fail")
	}
}

func TestCase1MonotoneGeometryProperty(t *testing.T) {
	a := caseArea()
	f := func(raw uint8) bool {
		d1 := 1 + float64(raw)/64.0
		d2 := d1 + 0.3
		g1, err1 := a.Case1(d1)
		g2, err2 := a.Case1(d2)
		if err1 != nil || err2 != nil {
			return false
		}
		return g2.Footprint >= g1.Footprint && g2.N3D >= g1.N3D && g2.N2DNew >= g1.N2DNew
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
