package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

// caseParams mirrors the Sec. II case study: P=256 ops/cycle, B3D=8×B2D,
// N=8.
func caseParams() Params {
	return Params{
		PPeak:    256,
		B2D:      256,
		B3D:      8 * 256,
		N:        8,
		Alpha2D:  0.64e-12,
		Alpha3D:  0.64e-12,
		EC:       3e-12,
		ECIdle:   23e-12,
		EMIdle2D: 1e-12,
		EMIdle3D: 1e-12,
	}
}

func TestEq1Eq4HandComputed(t *testing.T) {
	p := caseParams()
	w := Load{F0: 256_000, D0: 25_600, NPart: 100} // compute bound
	if got := T2D(p, w); got != 1000 {
		t.Errorf("T2D = %g, want 1000", got)
	}
	// T3D: compute F0/(8·256) = 125; memory D0·8/2048 = 100 → 125.
	if got := T3D(p, w); got != 125 {
		t.Errorf("T3D = %g, want 125", got)
	}
	if got := Speedup(p, w); got != 8 {
		t.Errorf("speedup = %g, want 8", got)
	}
}

func TestMemoryBoundNoSpeedup(t *testing.T) {
	// With B3D = N·B2D, a fully memory-bound load sees zero speedup: the
	// per-CS bandwidth is unchanged (the paper's explanation of Table I's
	// low-speedup layers).
	p := caseParams()
	w := Load{F0: 100, D0: 1e9, NPart: 100}
	if got := Speedup(p, w); math.Abs(got-1) > 1e-9 {
		t.Errorf("memory-bound speedup = %g, want 1", got)
	}
}

func TestPartitionLimit(t *testing.T) {
	p := caseParams()
	w := Load{F0: 256_000_000, D0: 1000, NPart: 4}
	if got := Speedup(p, w); math.Abs(got-4) > 1e-6 {
		t.Errorf("N#=4 speedup = %g, want 4", got)
	}
	if Nmax(p, w) != 4 {
		t.Errorf("Nmax = %d, want 4", Nmax(p, w))
	}
	// NPart=0 means "unknown": treated as 1.
	if Nmax(p, Load{NPart: 0}) != 1 {
		t.Error("NPart=0 should clamp to 1")
	}
}

func TestEnergyRatioNearOneForComputeBound(t *testing.T) {
	p := caseParams()
	w := Load{F0: 256_000_000, D0: 256_000, NPart: 64}
	r, err := Evaluate(p, w)
	if err != nil {
		t.Fatal(err)
	}
	if r.EnergyRatio < 0.9 || r.EnergyRatio > 1.05 {
		t.Errorf("energy ratio = %g, want ≈0.99 (Fig. 5)", r.EnergyRatio)
	}
	if r.EDPBenefit < 7 || r.EDPBenefit > 8.2 {
		t.Errorf("EDP benefit = %g, want ≈8 for a fully parallel compute-bound load", r.EDPBenefit)
	}
}

func TestEDPIsSpeedupTimesEnergyRatio(t *testing.T) {
	p := caseParams()
	f := func(fRaw, dRaw uint16, nPart uint8) bool {
		w := Load{
			F0:    float64(fRaw)*1e4 + 1e3,
			D0:    float64(dRaw)*1e3 + 1e3,
			NPart: 1 + int(nPart)%32,
		}
		r, err := Evaluate(p, w)
		if err != nil {
			return false
		}
		return math.Abs(r.EDPBenefit-r.Speedup*r.EnergyRatio)/r.EDPBenefit < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpeedupBounds(t *testing.T) {
	// 1 ≤ speedup ≤ min(N, N#) whenever B3D ≥ N·B2D.
	p := caseParams()
	f := func(fRaw, dRaw uint16, nPart uint8) bool {
		w := Load{
			F0:    float64(fRaw)*1e4 + 1e3,
			D0:    float64(dRaw)*1e3 + 1e3,
			NPart: 1 + int(nPart)%32,
		}
		s := Speedup(p, w)
		lim := float64(Nmax(p, w))
		return s >= 1-1e-9 && s <= lim+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestObservation5ComputeBound(t *testing.T) {
	// Obs. 5: a 16 ops/bit workload gains ≈2.1× EDP from 2× CSs at equal
	// bandwidth. Baseline here: N CSs; variant: 2N CSs, same total B3D.
	p := caseParams()
	p.N = 2
	p.B3D = p.B2D // no bandwidth change vs baseline
	w := Load{F0: 16 * 1e6, D0: 1e6, NPart: 64}
	r, err := Evaluate(p, w)
	if err != nil {
		t.Fatal(err)
	}
	if r.EDPBenefit < 1.6 || r.EDPBenefit > 2.4 {
		t.Errorf("compute-bound 2x-CS EDP = %g, want ≈2.1 (Obs. 5)", r.EDPBenefit)
	}
}

func TestObservation5MemoryBound(t *testing.T) {
	// Obs. 5 mirror: a 16 bits/op workload gains ≈2.1× EDP from 2× total
	// bandwidth even with a single CS.
	p := caseParams()
	p.N = 1
	p.B3D = 2 * p.B2D
	w := Load{F0: 1e6, D0: 16 * 1e6, NPart: 64}
	r, err := Evaluate(p, w)
	if err != nil {
		t.Fatal(err)
	}
	if r.EDPBenefit < 1.6 || r.EDPBenefit > 2.4 {
		t.Errorf("memory-bound 2x-BW EDP = %g, want ≈2.1 (Obs. 5)", r.EDPBenefit)
	}
}

func TestValidation(t *testing.T) {
	p := caseParams()
	p.N = 0
	if err := p.Validate(); err == nil {
		t.Error("N=0 should fail")
	}
	p = caseParams()
	p.B2D = 0
	if err := p.Validate(); err == nil {
		t.Error("B2D=0 should fail")
	}
	if _, err := Evaluate(caseParams(), Load{}); err == nil {
		t.Error("empty load should fail")
	}
	if _, err := EvaluateMany(caseParams(), nil); err == nil {
		t.Error("no loads should fail")
	}
}

func TestEvaluateManyAggregates(t *testing.T) {
	p := caseParams()
	loads := []Load{
		{F0: 256_000_000, D0: 1e6, NPart: 64},
		{F0: 1e6, D0: 64e6, NPart: 64},
	}
	r, err := EvaluateMany(p, loads)
	if err != nil {
		t.Fatal(err)
	}
	// Mixed workload: between the memory-bound 1x and compute-bound 8x.
	if r.Speedup <= 1 || r.Speedup >= 8 {
		t.Errorf("aggregate speedup = %g, want in (1, 8)", r.Speedup)
	}
}
