package sta

import (
	"m3d/internal/cell"
	"m3d/internal/netlist"
	"m3d/internal/tech"
)

// OptimizeResult reports the post-route optimization pass.
type OptimizeResult struct {
	// Upsized is the number of driver cells swapped to stronger drives.
	Upsized int
	// AddedAreaNM2 is the footprint growth from upsizing (the "buffer
	// area" the paper's 3D flows reduce by ~20%).
	AddedAreaNM2 int64
	// Rounds is the number of optimize+analyze iterations performed.
	Rounds int
	// Final is the report after the last round.
	Final *Report
}

// OptimizeDrives is the flow's post-route optimization: it repeatedly runs
// STA and upsizes drivers of nets whose wire delay dominates, until the
// target period is met or no further improvement is found. libs maps each
// tier to the library used for cells on that tier.
func OptimizeDrives(p *tech.PDK, nl *netlist.Netlist, wm *WireModel,
	libs map[tech.Tier]*cell.Library, targetPeriodS float64, maxRounds int) (*OptimizeResult, error) {
	return NewTimer(p, nl, wm).OptimizeDrives(libs, targetPeriodS, maxRounds)
}

// OptimizeDrives runs the upsizing loop on the Timer: the timing graph is
// built once, the first round runs a full Analyze, and every later round
// re-propagates only the fanout cones of the drivers the previous round
// upsized (AnalyzeIncremental — identical reports, a fraction of the
// work).
func (tm *Timer) OptimizeDrives(libs map[tech.Tier]*cell.Library,
	targetPeriodS float64, maxRounds int) (*OptimizeResult, error) {

	if maxRounds <= 0 {
		maxRounds = 4
	}
	res := &OptimizeResult{}
	rep, err := tm.Analyze(targetPeriodS)
	if err != nil {
		return nil, err
	}
	for round := 0; round < maxRounds; round++ {
		res.Final = rep
		res.Rounds = round + 1
		if rep.Met() {
			return res, nil
		}
		changed, addedArea := tm.upsizeRound(libs, targetPeriodS)
		res.Upsized += len(changed)
		res.AddedAreaNM2 += addedArea
		if len(changed) == 0 {
			return res, nil
		}
		rep, err = tm.AnalyzeIncremental(targetPeriodS, changed)
		if err != nil {
			return nil, err
		}
	}
	res.Final = rep
	return res, nil
}

// upsizeRound upsizes every driver whose net delay exceeds its fair share
// of the period (a cheap heuristic that matches how ECO sizing behaves)
// and returns the changed driver instances — one entry per upsized net,
// so the count matches the historical per-net Upsized accounting — plus
// the footprint growth.
func (tm *Timer) upsizeRound(libs map[tech.Tier]*cell.Library,
	targetPeriodS float64) (changed []*netlist.Instance, addedAreaNM2 int64) {

	nl, wm := tm.nl, tm.wm
	budget := targetPeriodS / 12
	for _, n := range nl.Nets {
		if n.Clock || n.Driver == nil || n.Driver.Inst.IsMacro() {
			continue
		}
		drv := n.Driver.Inst
		lib, ok := libs[drv.Tier]
		if !ok {
			continue
		}
		rw, cw := wm.NetRC(n)
		load := cw + n.SinkCapF()
		cur := drv.Cell
		delay := cur.Delay(load) + 0.69*rw*(cw/2+n.SinkCapF())
		if delay <= budget {
			continue
		}
		best := lib.UpsizeFor(cur.Kind, load, budget-0.69*rw*(cw/2+n.SinkCapF()))
		if best != nil && best.Drive > cur.Drive {
			addedAreaNM2 += best.AreaNM2 - cur.AreaNM2
			drv.Cell = best
			changed = append(changed, drv)
		}
	}
	return changed, addedAreaNM2
}
