package sta

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"m3d/internal/cell"
	"m3d/internal/tech"
)

// cornerScales draws k deterministic per-tier delay-scale corners across
// the full legal range (minScale-ish up to ~2×). Corner 0 is pinned to
// all-ones so every run also checks the nominal-identity claim.
func cornerScales(seed int64, k int) [][tech.NumTiers]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][tech.NumTiers]float64, k)
	for i := range out {
		for t := range out[i] {
			out[i][t] = 0.05 + rng.Float64()*1.95
		}
	}
	if k > 0 {
		for t := range out[0] {
			out[0][t] = 1.0
		}
	}
	return out
}

// assertBatchMatchesOracle prices scales through one AnalyzeBatch call
// and through the serial per-corner SetTierDelayScale path, requiring
// bit-for-bit equal critical paths.
func assertBatchMatchesOracle(t *testing.T, label string, bt *BatchTimer, oracle *Timer, scales [][tech.NumTiers]float64) {
	t.Helper()
	got := make([]float64, len(scales))
	if err := bt.AnalyzeBatch(scales, got); err != nil {
		t.Fatalf("%s: AnalyzeBatch: %v", label, err)
	}
	for k, sc := range scales {
		oracle.SetTierDelayScale(sc[:])
		rep, err := oracle.Analyze(1.0)
		if err != nil {
			t.Fatalf("%s: oracle corner %d: %v", label, k, err)
		}
		if math.Float64bits(got[k]) != math.Float64bits(rep.CriticalPathS) {
			t.Fatalf("%s: corner %d diverged: batch %.17g vs oracle %.17g",
				label, k, got[k], rep.CriticalPathS)
		}
	}
}

// TestBatchMatchesPerCornerRandom pins AnalyzeBatch against the serial
// per-corner oracle on randomized acyclic designs at batch sizes 1, 7
// and 64 — including a batch smaller than the timer's capacity.
func TestBatchMatchesPerCornerRandom(t *testing.T) {
	p := tech.Default130()
	lib, err := cell.NewLibrary(p, tech.TierSiCMOS)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 4; seed++ {
		nl := randomTimedNetlist(t, lib, seed)
		bt, err := NewBatchTimer(p, nl, nil, 64)
		if err != nil {
			t.Fatal(err)
		}
		oracle := NewTimer(p, nl, nil)
		for _, k := range []int{1, 7, 64} {
			scales := cornerScales(seed*100+int64(k), k)
			assertBatchMatchesOracle(t, "random", bt, oracle, scales)
		}
	}
}

// TestBatchMatchesPerCornerRouted runs the same oracle comparison over
// the routed systolic fixture — cached wire RC, macros, ILV parasitics —
// reusing one BatchTimer across batch sizes like the yield engine does.
func TestBatchMatchesPerCornerRouted(t *testing.T) {
	p, nl, wm, _ := routedFixture(t, 2, 2)
	bt, err := NewBatchTimer(p, nl, wm, 64)
	if err != nil {
		t.Fatal(err)
	}
	oracle := NewTimer(p, nl, wm)
	for _, k := range []int{1, 7, 64} {
		scales := cornerScales(int64(k), k)
		assertBatchMatchesOracle(t, "routed", bt, oracle, scales)
	}
}

// TestBatchConcurrentWidths prices 128 corners in 16-corner slabs fanned
// over 1, 2 and 8 goroutines (one BatchTimer + WireModel per goroutine,
// the vary.Engine sharing pattern) and requires every width to agree
// bit-for-bit with the serial per-corner oracle. Run under -race this is
// the proof that concurrent BatchTimers over one read-only netlist and
// routing result do not interfere.
func TestBatchConcurrentWidths(t *testing.T) {
	p, nl, routes, _ := routedFixtureRoutes(t, 2, 2)
	const total, slab = 128, 16
	scales := cornerScales(7, total)

	want := make([]float64, total)
	oracle := NewTimer(p, nl, NewWireModel(p, routes))
	for k, sc := range scales {
		oracle.SetTierDelayScale(sc[:])
		rep, err := oracle.Analyze(1.0)
		if err != nil {
			t.Fatal(err)
		}
		want[k] = rep.CriticalPathS
	}

	for _, width := range []int{1, 2, 8} {
		got := make([]float64, total)
		var next atomic.Int64
		var wg sync.WaitGroup
		errc := make(chan error, width)
		for w := 0; w < width; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				bt, err := NewBatchTimer(p, nl, NewWireModel(p, routes), slab)
				if err != nil {
					errc <- err
					return
				}
				for {
					lo := int(next.Add(slab)) - slab
					if lo >= total {
						return
					}
					if err := bt.AnalyzeBatch(scales[lo:lo+slab], got[lo:lo+slab]); err != nil {
						errc <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errc)
		for err := range errc {
			t.Fatal(err)
		}
		for k := range want {
			if math.Float64bits(got[k]) != math.Float64bits(want[k]) {
				t.Fatalf("width %d corner %d: %.17g vs oracle %.17g", width, k, got[k], want[k])
			}
		}
	}
}

// TestBatchValidation covers the argument contract: zero corners,
// capacity overflow, mismatched output length and bad capacity.
func TestBatchValidation(t *testing.T) {
	p := tech.Default130()
	lib, err := cell.NewLibrary(p, tech.TierSiCMOS)
	if err != nil {
		t.Fatal(err)
	}
	nl := randomTimedNetlist(t, lib, 1)
	if _, err := NewBatchTimer(p, nl, nil, 0); err == nil {
		t.Fatal("want error for zero capacity")
	}
	bt, err := NewBatchTimer(p, nl, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := bt.AnalyzeBatch(nil, nil); err == nil {
		t.Fatal("want error for empty batch")
	}
	five := cornerScales(1, 5)
	if err := bt.AnalyzeBatch(five, make([]float64, 5)); err == nil {
		t.Fatal("want error for batch beyond capacity")
	}
	if err := bt.AnalyzeBatch(five[:4], make([]float64, 3)); err == nil {
		t.Fatal("want error for critOut length mismatch")
	}
}

// BenchmarkBatchCornerSTA is the benchdiff-tracked cost of pricing a
// 32-corner batch with ONE levelization walk over the routed fixture —
// the inner kernel the Monte-Carlo yield engine runs per slab. The
// serial equivalent is 32 full Analyze passes (≈32× BenchmarkSTAFullTiming's
// setup half).
func BenchmarkBatchCornerSTA(b *testing.B) {
	p, nl, wm, _ := routedFixture(b, 2, 2)
	bt, err := NewBatchTimer(p, nl, wm, 32)
	if err != nil {
		b.Fatal(err)
	}
	scales := cornerScales(1, 32)
	out := make([]float64, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bt.AnalyzeBatch(scales, out); err != nil {
			b.Fatal(err)
		}
	}
}
