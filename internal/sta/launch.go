package sta

import (
	"m3d/internal/cell"
)

// launchClass labels where a timing path starts.
type launchClass int

const (
	launchReg launchClass = iota
	launchMacro
	launchConst
)

func isConstKind(c *cell.Cell) bool {
	return c.Kind == cell.TieHi || c.Kind == cell.TieLo
}

// arrivalsWithLaunchClass runs max-arrival propagation (like Analyze) but
// also tracks the launch class of each pin's dominant path. Results are
// left in the Timer's arr/seen/cls scratch, indexed by Pin.ID.
func (t *Timer) arrivalsWithLaunchClass() {
	t.reset()
	t.valid = false // class-tracking pass repurposes the max-arrival scratch
	nl := t.nl
	arr, seen, cls, pending := t.arr, t.seen, t.cls, t.pending
	netDelay := makeNetDelay(t.wm, t.tierScale)

	for _, inst := range nl.Instances {
		launchT := -1.0
		class := launchReg
		switch {
		case inst.IsMacro():
			launchT = inst.Macro.AccessLatencyS
			class = launchMacro
		case inst.Cell.Sequential:
			launchT = inst.Cell.ClkQS
		case isConstKind(inst.Cell):
			launchT = 0
			class = launchConst
		case pending[inst.ID] == 0:
			launchT = 0
			class = launchConst
		}
		if launchT >= 0 {
			for _, pin := range inst.Pins() {
				if pin.IsOutput {
					arr[pin.ID] = launchT
					seen[pin.ID] = true
					cls[pin.ID] = class
				}
			}
			t.queue = append(t.queue, inst)
			pending[inst.ID] = -1
		}
	}
	for qi := 0; qi < len(t.queue); qi++ {
		inst := t.queue[qi]
		for _, out := range inst.Pins() {
			if !out.IsOutput || out.Net == nil || out.Net.Clock {
				continue
			}
			if !seen[out.ID] {
				continue
			}
			tOut := arr[out.ID]
			d := netDelay(out.Net)
			for _, sink := range out.Net.Sinks {
				tSink := tOut + d
				if !seen[sink.ID] || tSink > arr[sink.ID] {
					arr[sink.ID] = tSink
					seen[sink.ID] = true
					cls[sink.ID] = cls[out.ID]
				}
				sid := sink.Inst.ID
				if pending[sid] < 0 {
					continue
				}
				pending[sid]--
				if pending[sid] == 0 {
					pending[sid] = -1
					worst := 0.0
					worstCls := launchConst
					for _, in := range sink.Inst.Pins() {
						if in.IsOutput || in.Net == nil || in.Net.Clock {
							continue
						}
						if seen[in.ID] && arr[in.ID] >= worst {
							worst = arr[in.ID]
							worstCls = cls[in.ID]
						}
					}
					for _, op := range sink.Inst.Pins() {
						if op.IsOutput {
							arr[op.ID] = worst
							seen[op.ID] = true
							cls[op.ID] = worstCls
						}
					}
					t.queue = append(t.queue, sink.Inst)
				}
			}
		}
	}
}
