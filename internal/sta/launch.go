package sta

import (
	"m3d/internal/cell"
	"m3d/internal/netlist"
	"m3d/internal/tech"
)

// launchClass labels where a timing path starts.
type launchClass int

const (
	launchReg launchClass = iota
	launchMacro
	launchConst
)

func isConstKind(c *cell.Cell) bool {
	return c.Kind == cell.TieHi || c.Kind == cell.TieLo
}

// arrivalsWithLaunchClass runs max-arrival propagation (like Analyze) but
// also tracks the launch class of each pin's dominant path.
func arrivalsWithLaunchClass(p *tech.PDK, nl *netlist.Netlist, wm *WireModel) (map[*netlist.Pin]float64, map[*netlist.Pin]launchClass, error) {
	if wm == nil {
		wm = NewWireModel(p, nil)
	}
	arr := make(map[*netlist.Pin]float64)
	cls := make(map[*netlist.Pin]launchClass)
	netDelay := makeNetDelay(wm)

	type node struct{ pending int }
	nodes := make(map[*netlist.Instance]*node, len(nl.Instances))
	var queue []*netlist.Instance
	for _, inst := range nl.Instances {
		nd := &node{}
		for _, pin := range inst.Pins() {
			if !pin.IsOutput && pin.Net != nil && !pin.Net.Clock {
				nd.pending++
			}
		}
		nodes[inst] = nd
		launchT := -1.0
		class := launchReg
		switch {
		case inst.IsMacro():
			launchT = inst.Macro.AccessLatencyS
			class = launchMacro
		case inst.Cell.Sequential:
			launchT = inst.Cell.ClkQS
		case isConstKind(inst.Cell):
			launchT = 0
			class = launchConst
		case nd.pending == 0:
			launchT = 0
			class = launchConst
		}
		if launchT >= 0 {
			for _, pin := range inst.Pins() {
				if pin.IsOutput {
					arr[pin] = launchT
					cls[pin] = class
				}
			}
			queue = append(queue, inst)
			nd.pending = -1
		}
	}
	for len(queue) > 0 {
		inst := queue[0]
		queue = queue[1:]
		for _, out := range inst.Pins() {
			if !out.IsOutput || out.Net == nil || out.Net.Clock {
				continue
			}
			tOut, ok := arr[out]
			if !ok {
				continue
			}
			d := netDelay(out.Net)
			for _, sink := range out.Net.Sinks {
				tSink := tOut + d
				if old, ok := arr[sink]; !ok || tSink > old {
					arr[sink] = tSink
					cls[sink] = cls[out]
				}
				snd := nodes[sink.Inst]
				if snd.pending < 0 {
					continue
				}
				snd.pending--
				if snd.pending == 0 {
					snd.pending = -1
					worst := 0.0
					worstCls := launchConst
					for _, in := range sink.Inst.Pins() {
						if in.IsOutput || in.Net == nil || in.Net.Clock {
							continue
						}
						if t, ok := arr[in]; ok && t >= worst {
							worst = t
							worstCls = cls[in]
						}
					}
					for _, op := range sink.Inst.Pins() {
						if op.IsOutput {
							arr[op] = worst
							cls[op] = worstCls
						}
					}
					queue = append(queue, sink.Inst)
				}
			}
		}
	}
	return arr, cls, nil
}
