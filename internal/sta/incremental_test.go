package sta

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"m3d/internal/cell"
	"m3d/internal/geom"
	"m3d/internal/netlist"
	"m3d/internal/tech"
)

// Differential tests for the incremental STA: after every OptimizeDrives
// round, AnalyzeIncremental must be indistinguishable from a fresh full
// Analyze — identical reports (endpoint names, critical-path trace,
// slacks), identical raw arrival/predecessor state, identical endpoint
// group order.

// assertSameReports fails if two reports differ anywhere (including the
// critical path's instance/pin names and arrival floats).
func assertSameReports(t *testing.T, label string, full, inc *Report) {
	t.Helper()
	if inc.WorstSlackS != full.WorstSlackS || inc.CriticalPathS != full.CriticalPathS {
		t.Errorf("%s: slack/critical %g/%g, oracle %g/%g",
			label, inc.WorstSlackS, inc.CriticalPathS, full.WorstSlackS, full.CriticalPathS)
	}
	if !reflect.DeepEqual(inc, full) {
		t.Errorf("%s: incremental report differs from full analysis: %+v vs %+v", label, inc, full)
	}
}

// assertSameArrivals compares the complete propagated state of two
// timers: seen must match everywhere, arrivals and predecessor links at
// every seen pin. (Unseen pins carry stale scratch and are excluded.)
func assertSameArrivals(t *testing.T, label string, oracle, tm *Timer) {
	t.Helper()
	for i := range tm.seen {
		if tm.seen[i] != oracle.seen[i] {
			t.Fatalf("%s: pin %d seen=%v, oracle %v", label, i, tm.seen[i], oracle.seen[i])
		}
		if !tm.seen[i] {
			continue
		}
		if tm.arr[i] != oracle.arr[i] {
			t.Fatalf("%s: pin %d arrival %g, oracle %g", label, i, tm.arr[i], oracle.arr[i])
		}
		if tm.from[i] != oracle.from[i] {
			t.Fatalf("%s: pin %d from=%d, oracle %d", label, i, tm.from[i], oracle.from[i])
		}
	}
}

// checkIncrementalPerRound drives the exact OptimizeDrives loop shape by
// hand and pins every incremental pass against a fresh full Analyze on
// the same netlist state. Returns how many incremental passes ran so
// callers can require the test actually exercised the fast path.
func checkIncrementalPerRound(t *testing.T, label string, p *tech.PDK, nl *netlist.Netlist,
	wm *WireModel, libsMap map[tech.Tier]*cell.Library, target float64, maxRounds int) int {
	t.Helper()
	tm := NewTimer(p, nl, wm)
	rep, err := tm.Analyze(target)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < maxRounds; round++ {
		if rep.Met() {
			break
		}
		changed, _ := tm.upsizeRound(libsMap, target)
		if len(changed) == 0 {
			break
		}
		rep, err = tm.AnalyzeIncremental(target, changed)
		if err != nil {
			t.Fatal(err)
		}
		oracle := NewTimer(p, nl, wm)
		full, err := oracle.Analyze(target)
		if err != nil {
			t.Fatal(err)
		}
		rl := fmt.Sprintf("%s round %d (%d changed)", label, round, len(changed))
		assertSameReports(t, rl, full, rep)
		assertSameArrivals(t, rl, oracle, tm)
	}
	return tm.Stats().IncrementalPasses
}

// randomTimedNetlist builds a seeded random placed DAG: launch registers,
// a topologically-ordered soup of combinational gates at random positions
// (real HPWL wire delays), and capture registers. Same seed, same
// netlist — twin builds are used for oracle comparisons.
func randomTimedNetlist(t testing.TB, lib *cell.Library, seed int64) *netlist.Netlist {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nl := netlist.New(fmt.Sprintf("rnd%d", seed))
	clk := nl.AddNet("clk", 2)
	clk.Clock = true
	tie := nl.AddCell("tie", lib.MustPick(cell.TieHi, 1))
	tn := nl.AddNet("tn", 0)
	nl.MustPin(tie, "Y", true, 0, tn)
	cb := nl.AddCell("cb", lib.MustPick(cell.ClkBuf, 4))
	nl.MustPin(cb, "A", false, cb.Cell.InputCapF, tn)
	nl.MustPin(cb, "Y", true, 0, clk)

	randPos := func() geom.Point {
		return geom.Pt(rng.Int63n(400_000), rng.Int63n(400_000))
	}
	var nets []*netlist.Net
	for i := 0; i < 8; i++ {
		ff := nl.AddCell(fmt.Sprintf("lff%d", i), lib.MustPick(cell.DFF, 1))
		ff.Pos = randPos()
		nl.MustPin(ff, "CK", false, ff.Cell.InputCapF, clk)
		q := nl.AddNet(fmt.Sprintf("q%d", i), 0.2)
		nl.MustPin(ff, "Q", true, 0, q)
		nets = append(nets, q)
	}
	kinds := []cell.Kind{cell.Inv, cell.Buf, cell.Nand2, cell.Nor2, cell.And2}
	for i := 0; i < 70; i++ {
		k := kinds[rng.Intn(len(kinds))]
		c := nl.AddCell(fmt.Sprintf("g%d", i), lib.MustPick(k, 1))
		c.Pos = randPos()
		nIn := 1
		if k != cell.Inv && k != cell.Buf {
			nIn = 2
		}
		for s := 0; s < nIn; s++ {
			// Inputs draw only from earlier nets: acyclic by construction.
			src := nets[rng.Intn(len(nets))]
			nl.MustPin(c, fmt.Sprintf("A%d", s), false, c.Cell.InputCapF, src)
		}
		y := nl.AddNet(fmt.Sprintf("w%d", i), 0.2)
		nl.MustPin(c, "Y", true, 0, y)
		nets = append(nets, y)
	}
	for i := 0; i < 8; i++ {
		ff := nl.AddCell(fmt.Sprintf("cff%d", i), lib.MustPick(cell.DFF, 1))
		ff.Pos = randPos()
		nl.MustPin(ff, "CK", false, ff.Cell.InputCapF, clk)
		nl.MustPin(ff, "D", false, ff.Cell.InputCapF, nets[len(nets)-1-i])
	}
	return nl
}

// TestIncrementalMatchesFullRandom pins every optimize round's
// incremental analysis against a fresh full pass on randomized seeded
// designs with tight targets (forcing several rounds of upsizing).
func TestIncrementalMatchesFullRandom(t *testing.T) {
	p, lib := libs(t)
	lm := map[tech.Tier]*cell.Library{tech.TierSiCMOS: lib}
	incPasses := 0
	for seed := int64(1); seed <= 6; seed++ {
		nl := randomTimedNetlist(t, lib, seed)
		first, err := Analyze(p, nl, nil, 50e-9)
		if err != nil {
			t.Fatal(err)
		}
		target := first.CriticalPathS / 3
		incPasses += checkIncrementalPerRound(t, fmt.Sprintf("seed %d", seed),
			p, nl, nil, lm, target, 6)
	}
	if incPasses == 0 {
		t.Fatal("no incremental pass ran: targets too loose to exercise the fast path")
	}
}

// TestIncrementalMatchesFullRoutedSystolic runs the per-round
// differential on a placed-and-routed systolic array (routed-RC wire
// model — the flow's real configuration).
func TestIncrementalMatchesFullRoutedSystolic(t *testing.T) {
	p, nl, wm, lib := routedFixture(t, 2, 2)
	lm := map[tech.Tier]*cell.Library{tech.TierSiCMOS: lib}
	first, err := Analyze(p, nl, wm, 50e-9)
	if err != nil {
		t.Fatal(err)
	}
	inc := checkIncrementalPerRound(t, "systolic", p, nl, wm, lm, first.CriticalPathS/2, 4)
	if inc == 0 {
		t.Fatal("no incremental pass ran on the systolic fixture")
	}
}

// TestOptimizeDrivesForceFullOracle runs OptimizeDrives twice on twin
// netlists — once on the normal incremental path, once with forceFull
// (full Analyze every round through the identical code path) — and
// requires identical results: the OptimizeResult, every final cell
// choice, and the endpoint group summaries.
func TestOptimizeDrivesForceFullOracle(t *testing.T) {
	p, lib := libs(t)
	lm := map[tech.Tier]*cell.Library{tech.TierSiCMOS: lib}
	for seed := int64(1); seed <= 4; seed++ {
		nlInc := randomTimedNetlist(t, lib, seed)
		nlFull := randomTimedNetlist(t, lib, seed)
		first, err := Analyze(p, nlInc, nil, 50e-9)
		if err != nil {
			t.Fatal(err)
		}
		target := first.CriticalPathS / 3

		tmInc := NewTimer(p, nlInc, nil)
		resInc, err := tmInc.OptimizeDrives(lm, target, 4)
		if err != nil {
			t.Fatal(err)
		}
		tmFull := NewTimer(p, nlFull, nil)
		tmFull.forceFull = true
		resFull, err := tmFull.OptimizeDrives(lm, target, 4)
		if err != nil {
			t.Fatal(err)
		}

		if !reflect.DeepEqual(resInc, resFull) {
			t.Errorf("seed %d: OptimizeResult differs: %+v vs forceFull %+v", seed, resInc, resFull)
		}
		for i, inst := range nlInc.Instances {
			if inst.Cell.Drive != nlFull.Instances[i].Cell.Drive {
				t.Errorf("seed %d: %s sized X%d, forceFull X%d",
					seed, inst.Name, inst.Cell.Drive, nlFull.Instances[i].Cell.Drive)
			}
		}
		gInc, err := GroupEndpoints(p, nlInc, tmInc.wm, resInc.Final)
		if err != nil {
			t.Fatal(err)
		}
		gFull, err := GroupEndpoints(p, nlFull, tmFull.wm, resFull.Final)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gInc, gFull) {
			t.Errorf("seed %d: endpoint groups differ: %+v vs %+v", seed, gInc, gFull)
		}
		if tmInc.Stats().IncrementalPasses == 0 {
			t.Errorf("seed %d: normal path ran no incremental passes", seed)
		}
		if tmFull.Stats().IncrementalPasses != 0 {
			t.Errorf("seed %d: forceFull oracle ran incremental passes", seed)
		}
	}
}

// TestIncrementalInvalidation: passes that repurpose the shared scratch
// (AnalyzeHold's min-arrival pass, the launch-class pass) must force the
// next AnalyzeIncremental to fall back to a full Analyze — and the
// fallback must still produce the exact full-analysis report.
func TestIncrementalInvalidation(t *testing.T) {
	p, lib := libs(t)
	nl := randomTimedNetlist(t, lib, 42)
	tm := NewTimer(p, nl, nil)
	if _, err := tm.Analyze(50e-9); err != nil {
		t.Fatal(err)
	}
	if !tm.valid {
		t.Fatal("Analyze must validate the scratch")
	}
	if _, err := tm.AnalyzeHold(); err != nil {
		t.Fatal(err)
	}
	if tm.valid {
		t.Fatal("AnalyzeHold must invalidate the max-arrival scratch")
	}
	before := tm.Stats()
	rep, err := tm.AnalyzeIncremental(50e-9, nil)
	if err != nil {
		t.Fatal(err)
	}
	after := tm.Stats()
	if after.FullPasses != before.FullPasses+1 || after.IncrementalPasses != before.IncrementalPasses {
		t.Errorf("invalidated incremental call must fall back to a full pass: %+v -> %+v", before, after)
	}
	full, err := NewTimer(p, nl, nil).Analyze(50e-9)
	if err != nil {
		t.Fatal(err)
	}
	assertSameReports(t, "post-hold fallback", full, rep)

	tm.arrivalsWithLaunchClass()
	if tm.valid {
		t.Fatal("launch-class pass must invalidate the max-arrival scratch")
	}
	if _, err := tm.AnalyzeIncremental(0, nil); err == nil {
		t.Error("non-positive target must be rejected")
	}
}

// TestIncrementalStatsCounted: the flow metrics read these counters, so
// pin their semantics — incremental passes touch strictly fewer
// instances than a full pass would.
func TestIncrementalStatsCounted(t *testing.T) {
	p, lib := libs(t)
	lm := map[tech.Tier]*cell.Library{tech.TierSiCMOS: lib}
	nl := randomTimedNetlist(t, lib, 7)
	first, err := Analyze(p, nl, nil, 50e-9)
	if err != nil {
		t.Fatal(err)
	}
	tm := NewTimer(p, nl, nil)
	if _, err := tm.OptimizeDrives(lm, first.CriticalPathS/3, 4); err != nil {
		t.Fatal(err)
	}
	st := tm.Stats()
	if st.FullPasses != 1 {
		t.Errorf("OptimizeDrives should run exactly one full pass, got %d", st.FullPasses)
	}
	if st.IncrementalPasses == 0 {
		t.Error("tight target should force incremental rounds")
	}
	fullEquiv := st.IncrementalPasses * len(nl.Instances)
	if st.RecomputedInsts+st.SkippedInsts != fullEquiv {
		t.Errorf("recomputed+skipped=%d, want %d (passes × instances)",
			st.RecomputedInsts+st.SkippedInsts, fullEquiv)
	}
	if st.SkippedInsts == 0 {
		t.Error("incremental passes should skip at least some instances")
	}
}
