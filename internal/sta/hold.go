package sta

import (
	"fmt"
	"sort"

	"m3d/internal/netlist"
	"m3d/internal/tech"
)

// PathGroup classifies a timing endpoint by its launch and capture points.
type PathGroup string

// Path groups.
const (
	GroupRegToReg   PathGroup = "reg2reg"
	GroupMacroToReg PathGroup = "macro2reg"
	GroupRegToMacro PathGroup = "reg2macro"
	GroupInToReg    PathGroup = "in2reg"
)

// GroupSummary aggregates endpoints of one path group.
type GroupSummary struct {
	Group     PathGroup
	Endpoints int
	// WorstArrivalS is the worst data arrival (including setup where the
	// endpoint is a flip-flop).
	WorstArrivalS float64
	// WorstEndpoint names the worst pin.
	WorstEndpoint string
}

// HoldReport carries min-delay (hold) analysis results.
type HoldReport struct {
	// WorstSlackS is the smallest hold slack (negative = violation).
	WorstSlackS float64
	// Violations counts endpoints with negative hold slack.
	Violations int
	// Endpoints checked.
	Endpoints int
	// WorstEndpoint names the worst pin.
	WorstEndpoint string
}

// holdTimeS is the flip-flop hold requirement. The library's DFFs are
// built with internal delay buffering, so the requirement is small; data
// must not change within this window after the clock edge.
const holdTimeS = 15e-12

// AnalyzeHold runs min-delay analysis: for every flip-flop D input, the
// shortest launch-to-D path must exceed the hold time (with an ideal,
// zero-skew clock, any positive path delay above holdTimeS passes). It
// mirrors Analyze but propagates minimum arrivals.
func AnalyzeHold(p *tech.PDK, nl *netlist.Netlist, wm *WireModel) (*HoldReport, error) {
	if wm == nil {
		wm = NewWireModel(p, nil)
	}
	arr := make(map[*netlist.Pin]float64)
	cls := make(map[*netlist.Pin]launchClass)

	netDelay := makeNetDelay(wm)

	type node struct{ pending int }
	nodes := make(map[*netlist.Instance]*node, len(nl.Instances))
	var queue []*netlist.Instance
	for _, inst := range nl.Instances {
		nd := &node{}
		for _, pin := range inst.Pins() {
			if !pin.IsOutput && pin.Net != nil && !pin.Net.Clock {
				nd.pending++
			}
		}
		nodes[inst] = nd
		if isLaunch(inst) || nd.pending == 0 {
			t := 0.0
			class := launchConst
			if !inst.IsMacro() && inst.Cell.Sequential {
				t = inst.Cell.ClkQS
				class = launchReg
			}
			if inst.IsMacro() {
				t = inst.Macro.AccessLatencyS
				class = launchMacro
			}
			for _, pin := range inst.Pins() {
				if pin.IsOutput {
					arr[pin] = t
					cls[pin] = class
				}
			}
			queue = append(queue, inst)
			nd.pending = -1
		}
	}
	for len(queue) > 0 {
		inst := queue[0]
		queue = queue[1:]
		for _, out := range inst.Pins() {
			if !out.IsOutput || out.Net == nil || out.Net.Clock {
				continue
			}
			tOut, ok := arr[out]
			if !ok {
				continue
			}
			d := netDelay(out.Net)
			for _, sink := range out.Net.Sinks {
				tSink := tOut + d
				if old, ok := arr[sink]; !ok || tSink < old {
					arr[sink] = tSink
					cls[sink] = cls[out]
				}
				snd := nodes[sink.Inst]
				if snd.pending < 0 {
					continue
				}
				snd.pending--
				if snd.pending == 0 {
					snd.pending = -1
					best := 0.0
					bestCls := launchConst
					first := true
					for _, in := range sink.Inst.Pins() {
						if in.IsOutput || in.Net == nil || in.Net.Clock {
							continue
						}
						if t, ok := arr[in]; ok && (first || t < best) {
							best = t
							bestCls = cls[in]
							first = false
						}
					}
					for _, op := range sink.Inst.Pins() {
						if op.IsOutput {
							arr[op] = best
							cls[op] = bestCls
						}
					}
					queue = append(queue, sink.Inst)
				}
			}
		}
	}

	rep := &HoldReport{WorstSlackS: 1e9}
	for _, inst := range nl.Instances {
		if inst.IsMacro() || !inst.Cell.Sequential {
			continue
		}
		for _, pin := range inst.Pins() {
			if pin.IsOutput || pin.Net == nil || pin.Net.Clock {
				continue
			}
			t, ok := arr[pin]
			if !ok {
				continue
			}
			// Constant-launched paths (tie cells, input stubs) carry no
			// clock-edge race and are not hold-checked.
			if cls[pin] == launchConst {
				continue
			}
			rep.Endpoints++
			slack := t - holdTimeS
			if slack < rep.WorstSlackS {
				rep.WorstSlackS = slack
				rep.WorstEndpoint = inst.Name + "/" + pin.Name
			}
			if slack < 0 {
				rep.Violations++
			}
		}
	}
	if rep.Endpoints == 0 {
		return nil, fmt.Errorf("sta: no hold endpoints")
	}
	return rep, nil
}

// isLaunch reports whether an instance's outputs start timing paths.
func isLaunch(inst *netlist.Instance) bool {
	if inst.IsMacro() {
		return true
	}
	return inst.Cell.Sequential
}

// makeNetDelay builds the shared driver+wire delay function.
func makeNetDelay(wm *WireModel) func(*netlist.Net) float64 {
	return func(n *netlist.Net) float64 {
		rw, cw := wm.NetRC(n)
		cTotal := cw + n.SinkCapF()
		var rd, intrinsic float64
		if n.Driver != nil && !n.Driver.Inst.IsMacro() {
			c := n.Driver.Inst.Cell
			if isConstKind(c) {
				return 0
			}
			rd = c.DriveResOhm
			intrinsic = c.IntrinsicDelayS
		} else if n.Driver != nil {
			rd = 200
		}
		return intrinsic + 0.69*(rd*cTotal+rw*(cw/2+n.SinkCapF()))
	}
}

// GroupEndpoints classifies every timing endpoint by path group using the
// max-arrival analysis and returns per-group summaries (sorted by group).
func GroupEndpoints(p *tech.PDK, nl *netlist.Netlist, wm *WireModel, rep *Report) ([]GroupSummary, error) {
	if rep == nil {
		return nil, fmt.Errorf("sta: nil setup report")
	}
	// Re-derive worst arrival per endpoint group from a fresh analysis:
	// we only need the endpoint pins and their launch classes, which the
	// existing Analyze exposes via the critical path; for grouping we
	// rerun arrivals here in a compact form.
	groups := map[PathGroup]*GroupSummary{}
	bump := func(g PathGroup, arrival float64, name string) {
		s, ok := groups[g]
		if !ok {
			s = &GroupSummary{Group: g}
			groups[g] = s
		}
		s.Endpoints++
		if arrival > s.WorstArrivalS {
			s.WorstArrivalS = arrival
			s.WorstEndpoint = name
		}
	}
	arrivals, launches, err := arrivalsWithLaunchClass(p, nl, wm)
	if err != nil {
		return nil, err
	}
	for _, inst := range nl.Instances {
		seq := !inst.IsMacro() && inst.Cell.Sequential
		mac := inst.IsMacro()
		if !seq && !mac {
			continue
		}
		for _, pin := range inst.Pins() {
			if pin.IsOutput || pin.Net == nil || pin.Net.Clock {
				continue
			}
			t, ok := arrivals[pin]
			if !ok {
				continue
			}
			if seq {
				t += inst.Cell.SetupS
			}
			var g PathGroup
			switch {
			case mac && launches[pin] == launchMacro:
				g = GroupRegToMacro // macro endpoint; launch class irrelevant label-wise
			case mac:
				g = GroupRegToMacro
			case launches[pin] == launchMacro:
				g = GroupMacroToReg
			case launches[pin] == launchConst:
				g = GroupInToReg
			default:
				g = GroupRegToReg
			}
			bump(g, t, inst.Name+"/"+pin.Name)
		}
	}
	out := make([]GroupSummary, 0, len(groups))
	for _, s := range groups {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Group < out[j].Group })
	return out, nil
}
