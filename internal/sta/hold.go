package sta

import (
	"fmt"
	"sort"

	"m3d/internal/netlist"
	"m3d/internal/tech"
)

// PathGroup classifies a timing endpoint by its launch and capture points.
type PathGroup string

// Path groups.
const (
	GroupRegToReg   PathGroup = "reg2reg"
	GroupMacroToReg PathGroup = "macro2reg"
	GroupRegToMacro PathGroup = "reg2macro"
	GroupInToReg    PathGroup = "in2reg"
)

// GroupSummary aggregates endpoints of one path group.
type GroupSummary struct {
	Group     PathGroup
	Endpoints int
	// WorstArrivalS is the worst data arrival (including setup where the
	// endpoint is a flip-flop).
	WorstArrivalS float64
	// WorstEndpoint names the worst pin.
	WorstEndpoint string
}

// HoldReport carries min-delay (hold) analysis results.
type HoldReport struct {
	// WorstSlackS is the smallest hold slack (negative = violation).
	WorstSlackS float64
	// Violations counts endpoints with negative hold slack.
	Violations int
	// Endpoints checked.
	Endpoints int
	// WorstEndpoint names the worst pin.
	WorstEndpoint string
}

// holdTimeS is the flip-flop hold requirement. The library's DFFs are
// built with internal delay buffering, so the requirement is small; data
// must not change within this window after the clock edge.
const holdTimeS = 15e-12

// AnalyzeHold runs min-delay analysis: for every flip-flop D input, the
// shortest launch-to-D path must exceed the hold time (with an ideal,
// zero-skew clock, any positive path delay above holdTimeS passes). It
// mirrors Analyze but propagates minimum arrivals.
func AnalyzeHold(p *tech.PDK, nl *netlist.Netlist, wm *WireModel) (*HoldReport, error) {
	return NewTimer(p, nl, wm).AnalyzeHold()
}

// AnalyzeHold runs the Timer's min-arrival pass over the shared scratch.
func (t *Timer) AnalyzeHold() (*HoldReport, error) {
	t.reset()
	t.valid = false // min-arrival pass repurposes the max-arrival scratch
	nl := t.nl
	arr, seen, cls, pending := t.arr, t.seen, t.cls, t.pending
	netDelay := makeNetDelay(t.wm, t.tierScale)

	for _, inst := range nl.Instances {
		if isLaunch(inst) || pending[inst.ID] == 0 {
			launchT := 0.0
			class := launchConst
			if !inst.IsMacro() && inst.Cell.Sequential {
				launchT = inst.Cell.ClkQS
				class = launchReg
			}
			if inst.IsMacro() {
				launchT = inst.Macro.AccessLatencyS
				class = launchMacro
			}
			for _, pin := range inst.Pins() {
				if pin.IsOutput {
					arr[pin.ID] = launchT
					seen[pin.ID] = true
					cls[pin.ID] = class
				}
			}
			t.queue = append(t.queue, inst)
			pending[inst.ID] = -1
		}
	}
	for qi := 0; qi < len(t.queue); qi++ {
		inst := t.queue[qi]
		for _, out := range inst.Pins() {
			if !out.IsOutput || out.Net == nil || out.Net.Clock {
				continue
			}
			if !seen[out.ID] {
				continue
			}
			tOut := arr[out.ID]
			d := netDelay(out.Net)
			for _, sink := range out.Net.Sinks {
				tSink := tOut + d
				if !seen[sink.ID] || tSink < arr[sink.ID] {
					arr[sink.ID] = tSink
					seen[sink.ID] = true
					cls[sink.ID] = cls[out.ID]
				}
				sid := sink.Inst.ID
				if pending[sid] < 0 {
					continue
				}
				pending[sid]--
				if pending[sid] == 0 {
					pending[sid] = -1
					best := 0.0
					bestCls := launchConst
					first := true
					for _, in := range sink.Inst.Pins() {
						if in.IsOutput || in.Net == nil || in.Net.Clock {
							continue
						}
						if seen[in.ID] && (first || arr[in.ID] < best) {
							best = arr[in.ID]
							bestCls = cls[in.ID]
							first = false
						}
					}
					for _, op := range sink.Inst.Pins() {
						if op.IsOutput {
							arr[op.ID] = best
							seen[op.ID] = true
							cls[op.ID] = bestCls
						}
					}
					t.queue = append(t.queue, sink.Inst)
				}
			}
		}
	}

	rep := &HoldReport{WorstSlackS: 1e9}
	for _, inst := range nl.Instances {
		if inst.IsMacro() || !inst.Cell.Sequential {
			continue
		}
		for _, pin := range inst.Pins() {
			if pin.IsOutput || pin.Net == nil || pin.Net.Clock {
				continue
			}
			if !seen[pin.ID] {
				continue
			}
			// Constant-launched paths (tie cells, input stubs) carry no
			// clock-edge race and are not hold-checked.
			if cls[pin.ID] == launchConst {
				continue
			}
			rep.Endpoints++
			slack := arr[pin.ID] - holdTimeS
			if slack < rep.WorstSlackS {
				rep.WorstSlackS = slack
				rep.WorstEndpoint = inst.Name + "/" + pin.Name
			}
			if slack < 0 {
				rep.Violations++
			}
		}
	}
	if rep.Endpoints == 0 {
		return nil, fmt.Errorf("sta: no hold endpoints")
	}
	return rep, nil
}

// isLaunch reports whether an instance's outputs start timing paths.
func isLaunch(inst *netlist.Instance) bool {
	if inst.IsMacro() {
		return true
	}
	return inst.Cell.Sequential
}

// netDelayParts computes the corner-independent pieces of one net's
// driver+wire arc delay: the nominal delay d, the driver's implementing
// tier, and whether a per-tier corner scale applies to the arc at all
// (driven nets only; const-kind tie cells contribute a hard zero that no
// corner may stretch). Splitting the arc this way lets the corner-batched
// BatchTimer price K corners of one arc as d·scale_k[tier] — the exact
// operand pair the serial path multiplies — without re-walking the RC
// model per corner.
func netDelayParts(wm *WireModel, n *netlist.Net) (d float64, tier tech.Tier, scaled bool) {
	rw, cw := wm.NetRC(n)
	cTotal := cw + n.SinkCapF()
	var rd, intrinsic float64
	tier = tech.TierRRAM
	if n.Driver != nil && !n.Driver.Inst.IsMacro() {
		c := n.Driver.Inst.Cell
		if isConstKind(c) {
			return 0, tier, false
		}
		rd = c.DriveResOhm
		intrinsic = c.IntrinsicDelayS
		tier = c.Tier
	} else if n.Driver != nil {
		rd = 200
	}
	d = intrinsic + 0.69*(rd*cTotal+rw*(cw/2+n.SinkCapF()))
	return d, tier, n.Driver != nil
}

// makeNetDelay builds the shared driver+wire delay function. tierScale,
// when non-nil, multiplies each driven arc by the driver's tier entry
// (indexed by tech.Tier) — the hook the Monte-Carlo variation engine
// (internal/vary) scales per-tier cell delays through. Cell-driven arcs
// scale by the cell's implementing tier; macro-driven arcs (the ILV-rich
// memory interface) scale by the RRAM tier entry. nil means nominal, and
// an all-ones scale is bit-for-bit identical to nominal.
func makeNetDelay(wm *WireModel, tierScale []float64) func(*netlist.Net) float64 {
	return func(n *netlist.Net) float64 {
		d, tier, scaled := netDelayParts(wm, n)
		if tierScale != nil && scaled {
			d *= tierScale[tier]
		}
		return d
	}
}

// GroupEndpoints classifies every timing endpoint by path group using the
// max-arrival analysis and returns per-group summaries (sorted by group).
func GroupEndpoints(p *tech.PDK, nl *netlist.Netlist, wm *WireModel, rep *Report) ([]GroupSummary, error) {
	if rep == nil {
		return nil, fmt.Errorf("sta: nil setup report")
	}
	// Re-derive worst arrival per endpoint group from a fresh analysis:
	// we only need the endpoint pins and their launch classes, which the
	// existing Analyze exposes via the critical path; for grouping we
	// rerun arrivals here in a compact form.
	groups := map[PathGroup]*GroupSummary{}
	bump := func(g PathGroup, arrival float64, name string) {
		s, ok := groups[g]
		if !ok {
			s = &GroupSummary{Group: g}
			groups[g] = s
		}
		s.Endpoints++
		if arrival > s.WorstArrivalS {
			s.WorstArrivalS = arrival
			s.WorstEndpoint = name
		}
	}
	tm := NewTimer(p, nl, wm)
	tm.arrivalsWithLaunchClass()
	for _, inst := range nl.Instances {
		seq := !inst.IsMacro() && inst.Cell.Sequential
		mac := inst.IsMacro()
		if !seq && !mac {
			continue
		}
		for _, pin := range inst.Pins() {
			if pin.IsOutput || pin.Net == nil || pin.Net.Clock {
				continue
			}
			if !tm.seen[pin.ID] {
				continue
			}
			t := tm.arr[pin.ID]
			if seq {
				t += inst.Cell.SetupS
			}
			var g PathGroup
			switch {
			case mac && tm.cls[pin.ID] == launchMacro:
				g = GroupRegToMacro // macro endpoint; launch class irrelevant label-wise
			case mac:
				g = GroupRegToMacro
			case tm.cls[pin.ID] == launchMacro:
				g = GroupMacroToReg
			case tm.cls[pin.ID] == launchConst:
				g = GroupInToReg
			default:
				g = GroupRegToReg
			}
			bump(g, t, inst.Name+"/"+pin.Name)
		}
	}
	out := make([]GroupSummary, 0, len(groups))
	for _, s := range groups {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Group < out[j].Group })
	return out, nil
}
