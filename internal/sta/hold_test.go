package sta

import (
	"testing"

	"m3d/internal/cell"
	"m3d/internal/netlist"
	"m3d/internal/synth"
	"m3d/internal/tech"
)

func TestHoldCleanOnPipeline(t *testing.T) {
	p, lib := libs(t)
	nl := pipelineNetlist(t, lib, 3)
	rep, err := AnalyzeHold(p, nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Endpoints == 0 {
		t.Fatal("no endpoints")
	}
	// A clk-to-Q plus an inverter chain comfortably exceeds 15 ps.
	if rep.Violations != 0 {
		t.Errorf("unexpected hold violations: %d (worst %g at %s)",
			rep.Violations, rep.WorstSlackS, rep.WorstEndpoint)
	}
	if rep.WorstSlackS <= 0 {
		t.Errorf("worst hold slack %g should be positive", rep.WorstSlackS)
	}
}

func TestHoldViolationDetected(t *testing.T) {
	// Back-to-back FFs with a direct Q->D connection: only clk-to-Q delay
	// in the path. Shrink it below the hold time by using a strong DFF and
	// checking with an artificially slow... simpler: force the hold window
	// by connecting Q of a fast FF straight to D. The X8 DFF's clk-to-Q is
	// 3·FO1/8 ≈ a few ps at this node — below the 15 ps hold time.
	p, lib := libs(t)
	nl := netlist.New("hold")
	clk := nl.AddNet("clk", 2)
	clk.Clock = true
	cb := nl.AddCell("cb", lib.MustPick(cell.ClkBuf, 4))
	tie := nl.AddCell("tie", lib.MustPick(cell.TieHi, 1))
	tn := nl.AddNet("tn", 0)
	nl.MustPin(tie, "Y", true, 0, tn)
	nl.MustPin(cb, "A", false, cb.Cell.InputCapF, tn)
	nl.MustPin(cb, "Y", true, 0, clk)

	a := nl.AddCell("ffa", lib.MustPick(cell.DFF, 8))
	b := nl.AddCell("ffb", lib.MustPick(cell.DFF, 1))
	nl.MustPin(a, "CK", false, a.Cell.InputCapF, clk)
	nl.MustPin(b, "CK", false, b.Cell.InputCapF, clk)
	q := nl.AddNet("q", 0.2)
	nl.MustPin(a, "Q", true, 0, q)
	nl.MustPin(b, "D", false, b.Cell.InputCapF, q)

	rep, err := AnalyzeHold(p, nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations == 0 {
		t.Errorf("shift-register path should violate the %gps hold time (worst slack %g)",
			holdTimeS*1e12, rep.WorstSlackS)
	}
}

func TestHoldMinPropagation(t *testing.T) {
	// Two paths to one endpoint: hold analysis must take the SHORT one.
	p, lib := libs(t)
	nl := netlist.New("minpath")
	clk := nl.AddNet("clk", 2)
	clk.Clock = true
	cb := nl.AddCell("cb", lib.MustPick(cell.ClkBuf, 4))
	tie := nl.AddCell("tie", lib.MustPick(cell.TieHi, 1))
	tn := nl.AddNet("tn", 0)
	nl.MustPin(tie, "Y", true, 0, tn)
	nl.MustPin(cb, "A", false, cb.Cell.InputCapF, tn)
	nl.MustPin(cb, "Y", true, 0, clk)

	src := nl.AddCell("src", lib.MustPick(cell.DFF, 1))
	nl.MustPin(src, "CK", false, src.Cell.InputCapF, clk)
	q := nl.AddNet("q", 0.2)
	nl.MustPin(src, "Q", true, 0, q)

	// Long path: 6 inverters; short path: direct.
	sig := q
	for i := 0; i < 6; i++ {
		inv := nl.AddCell("inv", lib.MustPick(cell.Inv, 1))
		nl.MustPin(inv, "A", false, inv.Cell.InputCapF, sig)
		next := nl.AddNet("n", 0.2)
		nl.MustPin(inv, "Y", true, 0, next)
		sig = next
	}
	and := nl.AddCell("and", lib.MustPick(cell.And2, 1))
	nl.MustPin(and, "A", false, and.Cell.InputCapF, sig)
	nl.MustPin(and, "B", false, and.Cell.InputCapF, q) // short leg
	ao := nl.AddNet("ao", 0.2)
	nl.MustPin(and, "Y", true, 0, ao)
	cap := nl.AddCell("cap", lib.MustPick(cell.DFF, 1))
	nl.MustPin(cap, "CK", false, cap.Cell.InputCapF, clk)
	nl.MustPin(cap, "D", false, cap.Cell.InputCapF, ao)

	rep, err := AnalyzeHold(p, nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	setup, err := Analyze(p, nl, nil, 50e-9)
	if err != nil {
		t.Fatal(err)
	}
	// Min arrival (hold) must be well below max arrival (setup) at the
	// capture FF: the 6-inverter leg dominates setup, the direct leg hold.
	holdArrival := rep.WorstSlackS + holdTimeS
	setupArrival := setup.CriticalPathS - 2*lib.MustPick(cell.DFF, 1).SetupS
	if holdArrival >= setupArrival {
		t.Errorf("hold arrival %g should be below setup arrival %g", holdArrival, setupArrival)
	}
}

func TestGroupEndpoints(t *testing.T) {
	p, lib := libs(t)
	b := synth.NewBuilder("grp", lib)
	// reg2reg paths.
	d := b.Input("d", 0.2)
	q := b.Register("r", synth.Bus{d}, 0.2)
	sig := q[0]
	for i := 0; i < 3; i++ {
		sig = chainInv(b, sig)
	}
	b.SinkBus("o", synth.Bus{sig})
	// macro2reg path.
	m := &netlist.MacroRef{Kind: "rram", Width: 1000, Height: 1000, AccessLatencyS: 10e-9, PinCapF: 8e-15}
	bank := b.NL.AddMacro("bank", m, tech.TierRRAM)
	rd := b.NL.AddNet("rd", 0.2)
	b.NL.MustPin(bank, "Q0", true, 0, rd)
	ff := b.NL.AddCell("capff", lib.MustPick(cell.DFF, 1))
	b.NL.MustPin(ff, "D", false, ff.Cell.InputCapF, rd)
	b.NL.MustPin(ff, "CK", false, ff.Cell.InputCapF, b.Clk)

	rep, err := Analyze(p, b.NL, nil, 50e-9)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := GroupEndpoints(p, b.NL, nil, rep)
	if err != nil {
		t.Fatal(err)
	}
	byGroup := map[PathGroup]GroupSummary{}
	for _, g := range groups {
		byGroup[g.Group] = g
	}
	if byGroup[GroupRegToReg].Endpoints == 0 {
		t.Error("missing reg2reg endpoints")
	}
	m2r, ok := byGroup[GroupMacroToReg]
	if !ok || m2r.Endpoints == 0 {
		t.Fatal("missing macro2reg endpoints")
	}
	// The macro path carries the 10ns access latency.
	if m2r.WorstArrivalS < 10e-9 {
		t.Errorf("macro2reg worst arrival %g should include the RRAM latency", m2r.WorstArrivalS)
	}
	if _, err := GroupEndpoints(p, b.NL, nil, nil); err == nil {
		t.Error("nil report should fail")
	}
}
