package sta

import (
	"fmt"

	"m3d/internal/netlist"
)

// Incremental STA. After a full Analyze, the arr/seen/from scratch holds
// a complete max-arrival solution. A drive upsize changes only the delay
// of the nets the changed instance drives (and, for a sequential cell,
// its clk→Q launch time) — the wire RC and the sink pin capacitances are
// position- and topology-derived and do not move. AnalyzeIncremental
// therefore re-propagates only the fanout cones of the changed drivers:
//
//   - Seed: for every changed instance, recompute the delay of its
//     driven nets (and, defensively, its fanin nets) and rewrite the
//     sink arrivals; sequential changed cells first refresh their launch
//     arrivals (ClkQS differs across drive variants).
//   - Propagate: sink instances whose arrival moved are enqueued into
//     level-ordered buckets (levels built once, lazily, from the same
//     Kahn traversal Analyze uses). Processing ascending levels visits
//     each instance at most once, because a sink's level is strictly
//     above its driver's; the per-instance recomputation is the same
//     worst-input scan Analyze runs, including the `>=` last-max tie
//     rule, so from[] links match a full pass exactly.
//   - Prune: an instance whose outputs did not move propagates nothing.
//
// Exactness (not just approximate equality): every sink pin arrival has
// a single definition — driver output arrival plus one net delay — and
// the instance-level max over identical float64 inputs is
// order-independent, so the incremental result is bit-identical to a
// full re-analysis. The differential tests in incremental_test.go pin
// this after every optimize round.
//
// Invalidation rule: any pass that repurposes the shared scratch for a
// different propagation (AnalyzeHold's min-arrival pass,
// arrivalsWithLaunchClass) clears t.valid, and the next incremental call
// silently falls back to a full Analyze.

// AnalyzeIncremental updates the timing solution after the given
// instances changed cells (drive upsizing) and returns a report
// identical to a fresh Analyze. It requires a prior full Analyze on the
// current scratch; without one it falls back to Analyze.
func (t *Timer) AnalyzeIncremental(targetPeriodS float64, changed []*netlist.Instance) (*Report, error) {
	if targetPeriodS <= 0 {
		return nil, fmt.Errorf("sta: target period must be positive, got %g", targetPeriodS)
	}
	if !t.valid || t.forceFull {
		return t.Analyze(targetPeriodS)
	}
	t.ensureLevels()
	t.stats.IncrementalPasses++
	nl := t.nl
	arr, seen, from := t.arr, t.seen, t.from
	netDelay := makeNetDelay(t.wm, t.tierScale)

	t.qEpoch++
	if t.qEpoch == 0 {
		for i := range t.inQ {
			t.inQ[i] = 0
		}
		t.qEpoch = 1
	}
	t.netEpoch++
	if t.netEpoch == 0 {
		for i := range t.netEp {
			t.netEp[i] = 0
		}
		t.netEpoch = 1
	}
	for i := range t.buckets {
		t.buckets[i] = t.buckets[i][:0]
	}
	maxUsed := int32(-1)

	enqueue := func(inst *netlist.Instance) {
		id := inst.ID
		if t.inQ[id] == t.qEpoch {
			return
		}
		// Launch instances own their output arrivals; unresolved
		// instances (outputs never seen by the full pass) stay untouched,
		// exactly as a full re-analysis would leave them.
		if inst.IsMacro() || inst.Cell.Sequential || isConstKind(inst.Cell) {
			return
		}
		resolved := false
		for _, op := range inst.Pins() {
			if op.IsOutput {
				resolved = seen[op.ID]
				break
			}
		}
		if !resolved {
			return
		}
		t.inQ[id] = t.qEpoch
		l := t.lvl[id]
		t.buckets[l] = append(t.buckets[l], inst)
		if l > maxUsed {
			maxUsed = l
		}
	}

	seedNet := func(n *netlist.Net) {
		if n == nil || n.Clock || t.netEp[n.ID] == t.netEpoch {
			return
		}
		t.netEp[n.ID] = t.netEpoch
		drv := n.Driver
		if drv == nil || !seen[drv.ID] {
			return
		}
		d := netDelay(n)
		tSink := arr[drv.ID] + d
		for _, sink := range n.Sinks {
			if !seen[sink.ID] {
				continue
			}
			if tSink != arr[sink.ID] {
				arr[sink.ID] = tSink
				from[sink.ID] = int32(drv.ID)
				enqueue(sink.Inst)
			}
		}
	}

	// Launch refresh first: a changed sequential cell launches at its new
	// ClkQS, and the seeds below must read the refreshed arrivals.
	for _, inst := range changed {
		if inst.IsMacro() || !inst.Cell.Sequential {
			continue
		}
		launchT := inst.Cell.ClkQS
		for _, op := range inst.Pins() {
			if op.IsOutput && seen[op.ID] {
				arr[op.ID] = launchT
			}
		}
	}
	for _, inst := range changed {
		for _, pin := range inst.Pins() {
			seedNet(pin.Net)
		}
	}

	recomputed := 0
	for l := int32(0); l <= maxUsed; l++ {
		for qi := 0; qi < len(t.buckets[l]); qi++ {
			inst := t.buckets[l][qi]
			recomputed++
			// The same worst-input scan as Analyze, `>=` keeping the last
			// max so worstPin ties break identically.
			worstIn := 0.0
			var worstPin *netlist.Pin
			for _, in := range inst.Pins() {
				if in.IsOutput || in.Net == nil || in.Net.Clock {
					continue
				}
				if seen[in.ID] && arr[in.ID] >= worstIn {
					worstIn = arr[in.ID]
					worstPin = in
				}
			}
			moved := false
			for _, op := range inst.Pins() {
				if !op.IsOutput || !seen[op.ID] {
					continue
				}
				if arr[op.ID] != worstIn {
					arr[op.ID] = worstIn
					moved = true
				}
				if worstPin != nil && from[op.ID] != int32(worstPin.ID) {
					from[op.ID] = int32(worstPin.ID)
				}
			}
			if !moved {
				continue
			}
			for _, op := range inst.Pins() {
				if !op.IsOutput || op.Net == nil || op.Net.Clock || !seen[op.ID] {
					continue
				}
				d := netDelay(op.Net)
				tSink := arr[op.ID] + d
				for _, sink := range op.Net.Sinks {
					if !seen[sink.ID] {
						continue
					}
					if tSink != arr[sink.ID] {
						arr[sink.ID] = tSink
						from[sink.ID] = int32(op.ID)
						enqueue(sink.Inst)
					}
				}
			}
		}
	}
	t.stats.RecomputedInsts += recomputed
	t.stats.SkippedInsts += len(nl.Instances) - recomputed
	return t.buildReport(targetPeriodS)
}

// ensureLevels builds the per-instance topological levels with the same
// Kahn traversal Analyze uses. Built lazily: full-only Timer users never
// pay for it.
func (t *Timer) ensureLevels() {
	if t.lvl != nil {
		return
	}
	nl := t.nl
	t.lvl = make([]int32, len(nl.Instances))
	t.inQ = make([]uint32, len(nl.Instances))
	t.netEp = make([]uint32, len(nl.Nets))
	pending := make([]int32, len(nl.Instances))
	copy(pending, t.pendingInit)
	var queue []*netlist.Instance
	for _, inst := range nl.Instances {
		seq := !inst.IsMacro() && inst.Cell.Sequential
		if seq || inst.IsMacro() || isConstKind(inst.Cell) || pending[inst.ID] == 0 {
			queue = append(queue, inst)
			pending[inst.ID] = -1
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		inst := queue[qi]
		for _, out := range inst.Pins() {
			if !out.IsOutput || out.Net == nil || out.Net.Clock {
				continue
			}
			for _, sink := range out.Net.Sinks {
				sid := sink.Inst.ID
				if pending[sid] < 0 {
					continue
				}
				if l := t.lvl[inst.ID] + 1; l > t.lvl[sid] {
					t.lvl[sid] = l
				}
				pending[sid]--
				if pending[sid] == 0 {
					pending[sid] = -1
					queue = append(queue, sink.Inst)
				}
			}
		}
	}
	t.maxLvl = 0
	for _, l := range t.lvl {
		if l > t.maxLvl {
			t.maxLvl = l
		}
	}
	t.buckets = make([][]*netlist.Instance, t.maxLvl+1)
}
