package sta

import (
	"fmt"

	"m3d/internal/cell"
	"m3d/internal/netlist"
	"m3d/internal/tech"
)

// BatchTimer prices K process corners with ONE levelization walk. The
// Kahn traversal in Timer.Analyze — queue order, pending decrements,
// seen flags — depends only on the netlist topology, never on delay
// values, so K corners that differ only in per-tier delay scales share
// all of that bookkeeping. Arrival times become a structure-of-arrays
// slab indexed [pin*K + corner]; each arc's corner-independent base
// delay (netDelayParts) is expanded to K scaled delays once per out-pin
// visit and applied inside the shared worst-input scan.
//
// Corner k of one AnalyzeBatch call is bit-for-bit identical to a
// serial Timer pass under SetTierDelayScale(scales[k][:]): the per-arc
// multiply d·scale[tier], the relaxation compare, the >= last-max
// worst-input tie rule and the endpoint > scan are the same operations
// on the same operands in the same order. The Monte-Carlo variation
// engine (internal/vary) relies on this to swap K full graph walks for
// one without moving a single output bit.
//
// Like Timer, a BatchTimer is single-goroutine and the netlist topology
// must not change between passes; distinct BatchTimers over the same
// read-only netlist may run concurrently (each owns its WireModel).
type BatchTimer struct {
	p  *tech.PDK
	nl *netlist.Netlist
	wm *WireModel

	kmax int

	// pendingInit is the static levelization structure (see Timer).
	pendingInit []int32

	// Per-pass scratch, reused across passes.
	pending []int32
	arr     []float64 // [pin*K + corner] arrival slab, K = kmax
	seen    []bool    // per pin, shared by all corners
	queue   []*netlist.Instance
	dk      []float64 // per-corner delay of the arc being relaxed
	worstIn []float64 // per-corner worst input / worst endpoint scratch
}

// NewBatchTimer builds a corner-batched timing engine able to price up
// to maxCorners corners per pass; wm may be nil (pre-route estimates).
func NewBatchTimer(p *tech.PDK, nl *netlist.Netlist, wm *WireModel, maxCorners int) (*BatchTimer, error) {
	if maxCorners < 1 {
		return nil, fmt.Errorf("sta: batch size must be >= 1, got %d", maxCorners)
	}
	if wm == nil {
		wm = NewWireModel(p, nil)
	}
	bt := &BatchTimer{
		p: p, nl: nl, wm: wm,
		kmax:        maxCorners,
		pendingInit: make([]int32, len(nl.Instances)),
		pending:     make([]int32, len(nl.Instances)),
		arr:         make([]float64, nl.NumPins()*maxCorners),
		seen:        make([]bool, nl.NumPins()),
		dk:          make([]float64, maxCorners),
		worstIn:     make([]float64, maxCorners),
	}
	for _, inst := range nl.Instances {
		var n int32
		for _, pin := range inst.Pins() {
			if !pin.IsOutput && pin.Net != nil && !pin.Net.Clock {
				n++
			}
		}
		bt.pendingInit[inst.ID] = n
	}
	return bt, nil
}

// MaxCorners returns the batch capacity fixed at construction.
func (bt *BatchTimer) MaxCorners() int { return bt.kmax }

// AnalyzeBatch runs one max-arrival propagation for len(scales) corners
// at once. scales[k] is corner k's per-tier delay multiplier (indexed by
// tech.Tier, the SetTierDelayScale convention); critOut[k] receives the
// corner's critical path in seconds. len(critOut) must equal len(scales)
// and len(scales) must not exceed MaxCorners. Only the critical path is
// produced — no slack, trace or Fmax — which is exactly what Monte-Carlo
// yield consumes per sample.
func (bt *BatchTimer) AnalyzeBatch(scales [][tech.NumTiers]float64, critOut []float64) error {
	K := len(scales)
	if K == 0 {
		return fmt.Errorf("sta: batch analyze needs at least one corner")
	}
	if K > bt.kmax {
		return fmt.Errorf("sta: batch of %d corners exceeds capacity %d", K, bt.kmax)
	}
	if len(critOut) != K {
		return fmt.Errorf("sta: critOut length %d != batch size %d", len(critOut), K)
	}

	nl := bt.nl
	copy(bt.pending, bt.pendingInit)
	for i := range bt.seen {
		bt.seen[i] = false
	}
	bt.queue = bt.queue[:0]
	arr, seen, pending := bt.arr, bt.seen, bt.pending
	dk, worstIn := bt.dk[:K], bt.worstIn[:K]

	// Launch points: same classification as Timer.Analyze. Launch times
	// (ClkQS, macro access latency) are corner-independent, so all K
	// lanes of a launch pin carry the same value.
	for _, inst := range nl.Instances {
		seq := !inst.IsMacro() && inst.Cell.Sequential
		mac := inst.IsMacro()
		tie := !mac && (inst.Cell.Kind == cell.TieHi || inst.Cell.Kind == cell.TieLo)
		if seq || mac || tie || pending[inst.ID] == 0 {
			launchT := 0.0
			if seq {
				launchT = inst.Cell.ClkQS
			}
			if mac {
				launchT = inst.Macro.AccessLatencyS
			}
			for _, pin := range inst.Pins() {
				if pin.IsOutput {
					base := pin.ID * K
					for k := 0; k < K; k++ {
						arr[base+k] = launchT
					}
					seen[pin.ID] = true
				}
			}
			bt.queue = append(bt.queue, inst)
			pending[inst.ID] = -1
		}
	}

	for qi := 0; qi < len(bt.queue); qi++ {
		inst := bt.queue[qi]
		for _, out := range inst.Pins() {
			if !out.IsOutput || out.Net == nil || out.Net.Clock {
				continue
			}
			if !seen[out.ID] {
				continue
			}
			outBase := out.ID * K
			d, tier, scaled := netDelayParts(bt.wm, out.Net)
			if scaled {
				for k := 0; k < K; k++ {
					dk[k] = d * scales[k][tier]
				}
			} else {
				for k := 0; k < K; k++ {
					dk[k] = d
				}
			}
			for _, sink := range out.Net.Sinks {
				sinkBase := sink.ID * K
				// Timer.Analyze relaxes with `!seen || tSink > arr`; the
				// seen flag flips identically across corners, so test it
				// once and run the value compare per lane.
				if !seen[sink.ID] {
					for k := 0; k < K; k++ {
						arr[sinkBase+k] = arr[outBase+k] + dk[k]
					}
					seen[sink.ID] = true
				} else {
					for k := 0; k < K; k++ {
						tSink := arr[outBase+k] + dk[k]
						if tSink > arr[sinkBase+k] {
							arr[sinkBase+k] = tSink
						}
					}
				}
				sid := sink.Inst.ID
				if pending[sid] < 0 {
					continue // launch point; D pins are endpoints only
				}
				pending[sid]--
				if pending[sid] == 0 {
					pending[sid] = -1
					// Worst-input scan: same pin order and the same >=
					// last-max tie rule as the serial path, one max per
					// corner lane.
					for k := 0; k < K; k++ {
						worstIn[k] = 0
					}
					for _, in := range sink.Inst.Pins() {
						if in.IsOutput || in.Net == nil || in.Net.Clock {
							continue
						}
						if !seen[in.ID] {
							continue
						}
						inBase := in.ID * K
						for k := 0; k < K; k++ {
							if arr[inBase+k] >= worstIn[k] {
								worstIn[k] = arr[inBase+k]
							}
						}
					}
					for _, op := range sink.Inst.Pins() {
						if op.IsOutput {
							copy(arr[op.ID*K:op.ID*K+K], worstIn)
							seen[op.ID] = true
						}
					}
					bt.queue = append(bt.queue, sink.Inst)
				}
			}
		}
	}

	// Endpoint scan: DFF D pins (+ setup), macro input pins — the same
	// order and strict-> compare as Timer.buildReport, minus the trace.
	worst := worstIn
	for k := 0; k < K; k++ {
		worst[k] = 0
	}
	endpoints := 0
	for _, inst := range nl.Instances {
		seq := !inst.IsMacro() && inst.Cell.Sequential
		mac := inst.IsMacro()
		if !seq && !mac {
			continue
		}
		for _, pin := range inst.Pins() {
			if pin.IsOutput || pin.Net == nil || pin.Net.Clock {
				continue
			}
			if !seen[pin.ID] {
				continue
			}
			endpoints++
			base := pin.ID * K
			if seq {
				setup := inst.Cell.SetupS
				for k := 0; k < K; k++ {
					if tEnd := arr[base+k] + setup; tEnd > worst[k] {
						worst[k] = tEnd
					}
				}
			} else {
				for k := 0; k < K; k++ {
					if tEnd := arr[base+k]; tEnd > worst[k] {
						worst[k] = tEnd
					}
				}
			}
		}
	}
	if endpoints == 0 {
		return fmt.Errorf("sta: design has no timing endpoints")
	}
	copy(critOut, worst)
	return nil
}
