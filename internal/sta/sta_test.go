package sta

import (
	"testing"

	"m3d/internal/cell"
	"m3d/internal/floorplan"
	"m3d/internal/geom"
	"m3d/internal/netlist"
	"m3d/internal/place"
	"m3d/internal/route"
	"m3d/internal/synth"
	"m3d/internal/tech"
)

func libs(t *testing.T) (*tech.PDK, *cell.Library) {
	t.Helper()
	p := tech.Default130()
	lib, err := cell.NewLibrary(p, tech.TierSiCMOS)
	if err != nil {
		t.Fatal(err)
	}
	return p, lib
}

// pipelineNetlist builds FF -> inv chain (n stages) -> FF with known delays.
func pipelineNetlist(t *testing.T, lib *cell.Library, stages int) *netlist.Netlist {
	t.Helper()
	b := synth.NewBuilder("pipe", lib)
	d := b.Input("in", 0.2)
	q := b.Register("launch", synth.Bus{d}, 0.2)
	sig := q[0]
	for i := 0; i < stages; i++ {
		sig = chainInv(b, sig)
	}
	b.SinkBus("capture", synth.Bus{sig})
	if err := b.NL.Check(); err != nil {
		t.Fatal(err)
	}
	return b.NL
}

func chainInv(b *synth.Builder, in *netlist.Net) *netlist.Net {
	inv := b.NL.AddCell("inv", b.Lib.MustPick(cell.Inv, 1))
	b.NL.MustPin(inv, "A", false, inv.Cell.InputCapF, in)
	out := b.NL.AddNet("n", 0.2)
	b.NL.MustPin(inv, "Y", true, 0, out)
	return out
}

func TestAnalyzeSimplePipeline(t *testing.T) {
	p, lib := libs(t)
	nl := pipelineNetlist(t, lib, 4)
	rep, err := Analyze(p, nl, nil, 50e-9)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Endpoints == 0 {
		t.Fatal("no endpoints")
	}
	if rep.CriticalPathS <= 0 {
		t.Fatal("critical path must be positive")
	}
	// Unplaced cells (coincident pins): path ≈ clkQ + gate delays + setup;
	// a 4-inverter path at 130 nm is well under 50 ns.
	if !rep.Met() {
		t.Errorf("4-stage pipeline should meet 20 MHz, path=%g", rep.CriticalPathS)
	}
	if rep.FmaxHz <= 0 {
		t.Error("fmax missing")
	}
}

func TestLongerChainSlower(t *testing.T) {
	p, lib := libs(t)
	short := pipelineNetlist(t, lib, 2)
	long := pipelineNetlist(t, lib, 30)
	rs, err := Analyze(p, short, nil, 50e-9)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := Analyze(p, long, nil, 50e-9)
	if err != nil {
		t.Fatal(err)
	}
	if rl.CriticalPathS <= rs.CriticalPathS {
		t.Errorf("30 stages (%g) should be slower than 2 (%g)", rl.CriticalPathS, rs.CriticalPathS)
	}
}

func TestWireDelayMatters(t *testing.T) {
	p, lib := libs(t)
	// Two cells far apart: placed distance should raise the path delay via
	// the HPWL wire model.
	build := func(dist int64) *netlist.Netlist {
		nl := netlist.New("w")
		ff := nl.AddCell("ff", lib.MustPick(cell.DFF, 1))
		inv := nl.AddCell("inv", lib.MustPick(cell.Inv, 1))
		cap := nl.AddCell("cap", lib.MustPick(cell.DFF, 1))
		clk := nl.AddNet("clk", 2)
		clk.Clock = true
		cb := nl.AddCell("cb", lib.MustPick(cell.ClkBuf, 4))
		tie := nl.AddCell("tie", lib.MustPick(cell.TieHi, 1))
		tn := nl.AddNet("tn", 0)
		nl.MustPin(tie, "Y", true, 0, tn)
		nl.MustPin(cb, "A", false, cb.Cell.InputCapF, tn)
		nl.MustPin(cb, "Y", true, 0, clk)
		nl.MustPin(ff, "CK", false, ff.Cell.InputCapF, clk)
		nl.MustPin(cap, "CK", false, cap.Cell.InputCapF, clk)
		n1 := nl.AddNet("n1", 0.2)
		nl.MustPin(ff, "Q", true, 0, n1)
		nl.MustPin(inv, "A", false, inv.Cell.InputCapF, n1)
		n2 := nl.AddNet("n2", 0.2)
		nl.MustPin(inv, "Y", true, 0, n2)
		nl.MustPin(cap, "D", false, cap.Cell.InputCapF, n2)
		inv.Pos = geom.Pt(dist, 0)
		cap.Pos = geom.Pt(2*dist, 0)
		return nl
	}
	near, err := Analyze(p, build(1000), nil, 50e-9)
	if err != nil {
		t.Fatal(err)
	}
	far, err := Analyze(p, build(3_000_000), nil, 50e-9)
	if err != nil {
		t.Fatal(err)
	}
	if far.CriticalPathS <= near.CriticalPathS {
		t.Errorf("3mm wires (%g) should be slower than 1um (%g)", far.CriticalPathS, near.CriticalPathS)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	p, lib := libs(t)
	nl := pipelineNetlist(t, lib, 1)
	if _, err := Analyze(p, nl, nil, 0); err == nil {
		t.Error("zero period must be rejected")
	}
	empty := netlist.New("empty")
	if _, err := Analyze(p, empty, nil, 1e-9); err == nil {
		t.Error("no endpoints must be an error")
	}
}

func TestMacroLatencyDominates(t *testing.T) {
	p, lib := libs(t)
	nl := netlist.New("mac")
	m := &netlist.MacroRef{
		Kind: "rram", Width: 1000, Height: 1000,
		AccessLatencyS: 10e-9, PinCapF: 8e-15,
	}
	bank := nl.AddMacro("bank", m, tech.TierRRAM)
	ff := nl.AddCell("ff", lib.MustPick(cell.DFF, 1))
	clk := nl.AddNet("clk", 2)
	clk.Clock = true
	cb := nl.AddCell("cb", lib.MustPick(cell.ClkBuf, 4))
	tie := nl.AddCell("tie", lib.MustPick(cell.TieHi, 1))
	tn := nl.AddNet("tn", 0)
	nl.MustPin(tie, "Y", true, 0, tn)
	nl.MustPin(cb, "A", false, cb.Cell.InputCapF, tn)
	nl.MustPin(cb, "Y", true, 0, clk)
	nl.MustPin(ff, "CK", false, ff.Cell.InputCapF, clk)
	rd := nl.AddNet("rdata", 0.3)
	nl.MustPin(bank, "DO", true, 0, rd)
	nl.MustPin(ff, "D", false, ff.Cell.InputCapF, rd)
	rep, err := Analyze(p, nl, nil, 50e-9)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CriticalPathS < 10e-9 {
		t.Errorf("macro read latency (10ns) must appear on the path, got %g", rep.CriticalPathS)
	}
}

func TestCriticalPathTraced(t *testing.T) {
	p, lib := libs(t)
	nl := pipelineNetlist(t, lib, 5)
	rep, err := Analyze(p, nl, nil, 50e-9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.CriticalPath) < 3 {
		t.Fatalf("critical path trace too short: %d points", len(rep.CriticalPath))
	}
	// Arrivals along the path are non-decreasing.
	for i := 1; i < len(rep.CriticalPath); i++ {
		if rep.CriticalPath[i].Arrival < rep.CriticalPath[i-1].Arrival {
			t.Fatal("critical path arrivals not monotone")
		}
	}
}

func TestRoutedWireModel(t *testing.T) {
	p, lib := libs(t)
	b := synth.NewBuilder("dut", lib)
	b.Systolic("cs", synth.SystolicSpec{Rows: 1, Cols: 2, ActBits: 4, WeightBits: 4, AccBits: 12, Activity: 0.2})
	die, err := floorplan.SizeDie(p, b.NL, 0.6, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := floorplan.New(p, die)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := place.Global(fp, b.NL, tech.TierSiCMOS, place.Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	routes, err := route.Route(fp, b.NL, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wm := NewWireModel(p, routes)
	rep, err := Analyze(p, b.NL, wm, 50e-9)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CriticalPathS <= 0 {
		t.Fatal("no timing")
	}
	// Routed RC of some real net must be positive.
	found := false
	for n, nr := range routes.Routes {
		if nr.WLdbu > 0 {
			r, c := wm.NetRC(n)
			if r <= 0 || c <= 0 {
				t.Fatalf("routed net has non-positive RC: r=%g c=%g", r, c)
			}
			found = true
			break
		}
	}
	if !found {
		t.Error("no routed net with wirelength found")
	}
}

func TestOptimizeDrivesImprovesTiming(t *testing.T) {
	p, lib := libs(t)
	// A long inverter chain with one weak driver on a huge fanout net.
	b := synth.NewBuilder("opt", lib)
	d := b.Input("in", 0.2)
	q := b.Register("launch", synth.Bus{d}, 0.2)
	// One X1 inverter driving 24 loads.
	inv := b.NL.AddCell("weak", lib.MustPick(cell.Inv, 1))
	b.NL.MustPin(inv, "A", false, inv.Cell.InputCapF, q[0])
	big := b.NL.AddNet("big", 0.2)
	b.NL.MustPin(inv, "Y", true, 0, big)
	for i := 0; i < 24; i++ {
		s := b.NL.AddCell("ld", lib.MustPick(cell.DFF, 1))
		b.NL.MustPin(s, "D", false, s.Cell.InputCapF, big)
		b.NL.MustPin(s, "CK", false, s.Cell.InputCapF, b.Clk)
	}
	if err := b.NL.Check(); err != nil {
		t.Fatal(err)
	}
	before, err := Analyze(p, b.NL, nil, 50e-9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := OptimizeDrives(p, b.NL, nil, map[tech.Tier]*cell.Library{tech.TierSiCMOS: lib}, before.CriticalPathS/2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Upsized == 0 {
		t.Fatal("optimizer should upsize the weak driver")
	}
	if res.Final.CriticalPathS >= before.CriticalPathS {
		t.Errorf("optimization did not improve timing: %g -> %g", before.CriticalPathS, res.Final.CriticalPathS)
	}
	if res.AddedAreaNM2 <= 0 {
		t.Error("upsizing must add area")
	}
}

func TestOptimizeNoopWhenMet(t *testing.T) {
	p, lib := libs(t)
	nl := pipelineNetlist(t, lib, 2)
	res, err := OptimizeDrives(p, nl, nil, map[tech.Tier]*cell.Library{tech.TierSiCMOS: lib}, 50e-9, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Upsized != 0 {
		t.Errorf("met design should not be touched, upsized=%d", res.Upsized)
	}
	if !res.Final.Met() {
		t.Error("final report should meet")
	}
}
