// Package sta implements static timing analysis over a placed-and-routed
// netlist: lumped-RC wire delays derived from the global routes (Elmore
// approximation), NLDM-style cell delays from the library characterization,
// topological arrival-time propagation, setup checks at every flip-flop,
// and an achieved-frequency report. A post-route drive optimization pass
// (the flow's "post-route optimization to meet power and timing") upsizes
// drivers on failing paths.
package sta

import (
	"fmt"
	"sort"

	"m3d/internal/cell"
	"m3d/internal/netlist"
	"m3d/internal/route"
	"m3d/internal/tech"
)

// WireModel converts a net into a lumped resistance/capacitance pair. When
// routes are available it sums segment RC per layer plus via and ILV
// parasitics; otherwise it estimates from HPWL with average lower-metal RC.
type WireModel struct {
	p      *tech.PDK
	routes *route.Result
	layers []tech.Layer
	// fallback per-DBU parasitics.
	rPerDBU, cPerDBU float64

	// Per-net RC cache over the dense Net.ID space, filled lazily. Only
	// nets with committed routes are cached: their segment walk is a pure
	// function of the static routing result, while the HPWL fallback
	// tracks live pin positions and must stay uncached. The cache makes a
	// WireModel single-goroutine (like the Timer that owns it).
	rcR, rcC []float64
	rcOK     []bool
}

// NewWireModel builds a wire model; routes may be nil (pre-route estimate).
func NewWireModel(p *tech.PDK, routes *route.Result) *WireModel {
	layers := p.RoutingLayers()
	// Average of M1/M2 for the pre-route estimate.
	r := (layers[0].ROhmPerUm + layers[1].ROhmPerUm) / 2 / 1000.0
	c := (layers[0].CfFPerUm + layers[1].CfFPerUm) / 2 / 1000.0 * 1e-15
	return &WireModel{p: p, routes: routes, layers: layers, rPerDBU: r, cPerDBU: c}
}

// NetRC returns the lumped wire resistance (ohm) and capacitance (F) of n.
func (w *WireModel) NetRC(n *netlist.Net) (rOhm, cF float64) {
	if w.routes != nil {
		if n.ID < len(w.rcOK) && w.rcOK[n.ID] {
			return w.rcR[n.ID], w.rcC[n.ID]
		}
		if nr, ok := w.routes.Routes[n]; ok && len(nr.Segs) > 0 {
			for _, s := range nr.Segs {
				L := w.layers[s.LayerIdx]
				lenDBU := float64(s.A.ManhattanDist(s.B))
				rOhm += L.ROhmPerUm * lenDBU / 1000.0
				cF += L.CfFPerUm * lenDBU / 1000.0 * 1e-15
			}
			rOhm += float64(nr.Vias) * w.p.ILVResistanceOhm / 4
			cF += float64(nr.Vias) * w.p.ILVCapF / 4
			rOhm += float64(nr.ILVs) * w.p.ILVResistanceOhm
			cF += float64(nr.ILVs) * w.p.ILVCapF
			if n.ID >= len(w.rcOK) {
				grown := n.ID + 1
				if grown < 2*len(w.rcOK) {
					grown = 2 * len(w.rcOK)
				}
				w.rcR = append(w.rcR, make([]float64, grown-len(w.rcR))...)
				w.rcC = append(w.rcC, make([]float64, grown-len(w.rcC))...)
				w.rcOK = append(w.rcOK, make([]bool, grown-len(w.rcOK))...)
			}
			w.rcR[n.ID], w.rcC[n.ID] = rOhm, cF
			w.rcOK[n.ID] = true
			return rOhm, cF
		}
	}
	wl := float64(n.HPWL())
	return w.rPerDBU * wl, w.cPerDBU * wl
}

// PathPoint is one pin on the critical path.
type PathPoint struct {
	Inst    string
	Pin     string
	Arrival float64
}

// Report is the STA result.
type Report struct {
	// CriticalPathS is the worst launch-to-capture delay including setup.
	CriticalPathS float64
	// FmaxHz is 1 / CriticalPathS.
	FmaxHz float64
	// WorstSlackS is slack at the target period (negative = violated).
	WorstSlackS float64
	// TargetPeriodS echoes the constraint.
	TargetPeriodS float64
	// Endpoints is the number of timing endpoints checked.
	Endpoints int
	// CriticalPath lists the pins of the worst path, launch to capture.
	CriticalPath []PathPoint
}

// Met reports whether the target period is met.
func (r *Report) Met() bool { return r.WorstSlackS >= 0 }

// Timer runs repeated timing passes over one netlist with slice-indexed
// bookkeeping: arrival times, predecessor links, and launch classes are
// arrays over the dense Pin.ID space, and the per-instance combinational
// dependency counts (the levelization structure) are built once at
// construction and restored by copy for every pass. This replaces the
// map[*Pin]float64 / map[*Instance]*node bookkeeping that dominated STA
// allocations, and lets OptimizeDrives rerun analysis each round without
// rebuilding anything.
//
// A Timer is single-goroutine; the netlist topology (instances, pins,
// nets) must not change between passes. Cell pointer swaps (drive
// upsizing) are fine — cell-dependent delays are read during the pass.
type Timer struct {
	p  *tech.PDK
	nl *netlist.Netlist
	wm *WireModel

	// pendingInit is the per-instance count of connected non-clock input
	// pins, indexed by Instance.ID — the static levelization structure.
	pendingInit []int32

	// Per-pass scratch, reused across passes.
	pending []int32       // per instance: remaining inputs; -1 = resolved
	arr     []float64     // per pin: arrival time
	seen    []bool        // per pin: arrival computed
	from    []int32       // per pin: predecessor Pin.ID, -1 = launch
	cls     []launchClass // per pin: dominant launch class
	queue   []*netlist.Instance

	// Incremental-analysis state (see incremental.go). valid marks the
	// arr/seen/from scratch as holding a complete max-arrival solution;
	// passes that repurpose the scratch for other propagations
	// (AnalyzeHold, arrivalsWithLaunchClass) clear it, which forces the
	// next AnalyzeIncremental to fall back to a full Analyze.
	valid bool
	// forceFull makes AnalyzeIncremental delegate to Analyze — the
	// differential tests use it to run the full-analysis oracle through
	// the exact OptimizeDrives code path.
	forceFull bool
	// lvl is the topological level per instance (built lazily); buckets,
	// inQ and netEp are the incremental pass's level-ordered work queue
	// and epoch-stamped dedupe sets.
	lvl      []int32
	maxLvl   int32
	buckets  [][]*netlist.Instance
	inQ      []uint32
	qEpoch   uint32
	netEp    []uint32
	netEpoch uint32

	// tierScale, when non-nil, multiplies every driven-arc delay by the
	// driver tier's entry (indexed by tech.Tier) — the per-sample corner
	// hook the Monte-Carlo variation engine (internal/vary) drives. nil
	// (the default) is nominal timing.
	tierScale []float64

	stats Stats
}

// Stats counts the Timer's analysis work since construction: how many
// full propagations ran versus incremental ones, and how much of the
// instance graph the incremental passes actually re-evaluated.
type Stats struct {
	// FullPasses counts complete max-arrival propagations (Analyze).
	FullPasses int
	// IncrementalPasses counts cone-only re-propagations.
	IncrementalPasses int
	// RecomputedInsts is the total instances re-evaluated across all
	// incremental passes.
	RecomputedInsts int
	// SkippedInsts is the total instances incremental passes did not
	// have to touch (full-pass equivalent work avoided).
	SkippedInsts int
}

// Stats returns the Timer's accumulated work counters.
func (t *Timer) Stats() Stats { return t.stats }

// SetTierDelayScale installs per-tier multiplicative delay scales,
// indexed by tech.Tier (so scale[tech.TierCNFET] stretches every
// CNFET-driven arc). Passing nil restores nominal timing. The scale is
// copied, and the cached arrival solution is invalidated so the next
// AnalyzeIncremental falls back to a full pass under the new corner.
// An all-ones scale produces bit-for-bit nominal results.
func (t *Timer) SetTierDelayScale(scale []float64) {
	if scale == nil {
		t.tierScale = nil
	} else {
		t.tierScale = append(t.tierScale[:0], scale...)
	}
	t.valid = false
}

// NewTimer builds a reusable timing engine for the netlist; wm may be
// nil (pre-route estimates).
func NewTimer(p *tech.PDK, nl *netlist.Netlist, wm *WireModel) *Timer {
	if wm == nil {
		wm = NewWireModel(p, nil)
	}
	t := &Timer{
		p: p, nl: nl, wm: wm,
		pendingInit: make([]int32, len(nl.Instances)),
		pending:     make([]int32, len(nl.Instances)),
		arr:         make([]float64, nl.NumPins()),
		seen:        make([]bool, nl.NumPins()),
		from:        make([]int32, nl.NumPins()),
		cls:         make([]launchClass, nl.NumPins()),
	}
	for _, inst := range nl.Instances {
		var n int32
		for _, pin := range inst.Pins() {
			if !pin.IsOutput && pin.Net != nil && !pin.Net.Clock {
				n++
			}
		}
		t.pendingInit[inst.ID] = n
	}
	return t
}

// reset restores the per-pass scratch for a fresh propagation.
func (t *Timer) reset() {
	copy(t.pending, t.pendingInit)
	for i := range t.seen {
		t.seen[i] = false
		t.from[i] = -1
	}
	t.queue = t.queue[:0]
}

// Analyze runs STA at the given target clock period.
func Analyze(p *tech.PDK, nl *netlist.Netlist, wm *WireModel, targetPeriodS float64) (*Report, error) {
	return NewTimer(p, nl, wm).Analyze(targetPeriodS)
}

// Analyze runs max-arrival STA at the given target clock period, reusing
// the Timer's graph and scratch.
func (t *Timer) Analyze(targetPeriodS float64) (*Report, error) {
	if targetPeriodS <= 0 {
		return nil, fmt.Errorf("sta: target period must be positive, got %g", targetPeriodS)
	}
	t.reset()
	nl := t.nl
	arr, seen, from, pending := t.arr, t.seen, t.from, t.pending
	netDelay := makeNetDelay(t.wm, t.tierScale)

	for _, inst := range nl.Instances {
		seq := !inst.IsMacro() && inst.Cell.Sequential
		mac := inst.IsMacro()
		tie := !mac && (inst.Cell.Kind == cell.TieHi || inst.Cell.Kind == cell.TieLo)
		if seq || mac || tie || pending[inst.ID] == 0 {
			// Launch point: outputs available at fixed time.
			launchT := 0.0
			if seq {
				launchT = inst.Cell.ClkQS
			}
			if mac {
				launchT = inst.Macro.AccessLatencyS
			}
			for _, pin := range inst.Pins() {
				if pin.IsOutput {
					arr[pin.ID] = launchT
					seen[pin.ID] = true
				}
			}
			t.queue = append(t.queue, inst)
			pending[inst.ID] = -1 // mark done
		}
	}

	for qi := 0; qi < len(t.queue); qi++ {
		inst := t.queue[qi]
		for _, out := range inst.Pins() {
			if !out.IsOutput || out.Net == nil || out.Net.Clock {
				continue
			}
			if !seen[out.ID] {
				continue
			}
			tOut := arr[out.ID]
			d := netDelay(out.Net)
			for _, sink := range out.Net.Sinks {
				tSink := tOut + d
				if !seen[sink.ID] || tSink > arr[sink.ID] {
					arr[sink.ID] = tSink
					seen[sink.ID] = true
					from[sink.ID] = int32(out.ID)
				}
				sid := sink.Inst.ID
				if pending[sid] < 0 {
					continue // launch point; D pins are endpoints only
				}
				pending[sid]--
				if pending[sid] == 0 {
					pending[sid] = -1
					// Compute output arrivals: max input arrival + cell delay.
					worstIn := 0.0
					var worstPin *netlist.Pin
					for _, in := range sink.Inst.Pins() {
						if in.IsOutput || in.Net == nil || in.Net.Clock {
							continue
						}
						if seen[in.ID] && arr[in.ID] >= worstIn {
							worstIn = arr[in.ID]
							worstPin = in
						}
					}
					// The cell's intrinsic and drive delay are charged on the
					// output net arc (netDelay), so the output pin launches
					// at the worst input arrival.
					for _, op := range sink.Inst.Pins() {
						if op.IsOutput {
							arr[op.ID] = worstIn
							seen[op.ID] = true
							if worstPin != nil {
								from[op.ID] = int32(worstPin.ID)
							}
						}
					}
					t.queue = append(t.queue, sink.Inst)
				}
			}
		}
	}

	t.valid = true
	t.stats.FullPasses++
	return t.buildReport(targetPeriodS)
}

// buildReport scans the timing endpoints and traces the critical path
// over the arr/seen/from scratch. Analyze and AnalyzeIncremental share
// it, so equal arrival state yields byte-identical reports.
func (t *Timer) buildReport(targetPeriodS float64) (*Report, error) {
	nl := t.nl
	arr, seen, from := t.arr, t.seen, t.from

	// Endpoints: DFF D pins (+ setup), macro input pins.
	rep := &Report{TargetPeriodS: targetPeriodS}
	var worst float64
	var worstPin *netlist.Pin
	for _, inst := range nl.Instances {
		seq := !inst.IsMacro() && inst.Cell.Sequential
		mac := inst.IsMacro()
		if !seq && !mac {
			continue
		}
		for _, pin := range inst.Pins() {
			if pin.IsOutput || pin.Net == nil || pin.Net.Clock {
				continue
			}
			if !seen[pin.ID] {
				continue
			}
			tEnd := arr[pin.ID]
			if seq {
				tEnd += inst.Cell.SetupS
			}
			rep.Endpoints++
			if tEnd > worst {
				worst = tEnd
				worstPin = pin
			}
		}
	}
	if rep.Endpoints == 0 {
		return nil, fmt.Errorf("sta: design has no timing endpoints")
	}
	rep.CriticalPathS = worst
	if worst > 0 {
		rep.FmaxHz = 1 / worst
	}
	rep.WorstSlackS = targetPeriodS - worst

	// Trace the critical path.
	if worstPin != nil {
		for id := int32(worstPin.ID); id >= 0; id = from[id] {
			pin := nl.PinByID(int(id))
			rep.CriticalPath = append(rep.CriticalPath, PathPoint{
				Inst: pin.Inst.Name, Pin: pin.Name, Arrival: arr[id],
			})
			if len(rep.CriticalPath) > 10000 {
				break
			}
		}
	}
	// Reverse to launch-to-capture order.
	sort.SliceStable(rep.CriticalPath, func(i, j int) bool {
		return rep.CriticalPath[i].Arrival < rep.CriticalPath[j].Arrival
	})
	return rep, nil
}
