// Package sta implements static timing analysis over a placed-and-routed
// netlist: lumped-RC wire delays derived from the global routes (Elmore
// approximation), NLDM-style cell delays from the library characterization,
// topological arrival-time propagation, setup checks at every flip-flop,
// and an achieved-frequency report. A post-route drive optimization pass
// (the flow's "post-route optimization to meet power and timing") upsizes
// drivers on failing paths.
package sta

import (
	"fmt"
	"sort"

	"m3d/internal/cell"
	"m3d/internal/netlist"
	"m3d/internal/route"
	"m3d/internal/tech"
)

// WireModel converts a net into a lumped resistance/capacitance pair. When
// routes are available it sums segment RC per layer plus via and ILV
// parasitics; otherwise it estimates from HPWL with average lower-metal RC.
type WireModel struct {
	p      *tech.PDK
	routes *route.Result
	layers []tech.Layer
	// fallback per-DBU parasitics.
	rPerDBU, cPerDBU float64
}

// NewWireModel builds a wire model; routes may be nil (pre-route estimate).
func NewWireModel(p *tech.PDK, routes *route.Result) *WireModel {
	layers := p.RoutingLayers()
	// Average of M1/M2 for the pre-route estimate.
	r := (layers[0].ROhmPerUm + layers[1].ROhmPerUm) / 2 / 1000.0
	c := (layers[0].CfFPerUm + layers[1].CfFPerUm) / 2 / 1000.0 * 1e-15
	return &WireModel{p: p, routes: routes, layers: layers, rPerDBU: r, cPerDBU: c}
}

// NetRC returns the lumped wire resistance (ohm) and capacitance (F) of n.
func (w *WireModel) NetRC(n *netlist.Net) (rOhm, cF float64) {
	if w.routes != nil {
		if nr, ok := w.routes.Routes[n]; ok && len(nr.Segs) > 0 {
			for _, s := range nr.Segs {
				L := w.layers[s.LayerIdx]
				lenDBU := float64(s.A.ManhattanDist(s.B))
				rOhm += L.ROhmPerUm * lenDBU / 1000.0
				cF += L.CfFPerUm * lenDBU / 1000.0 * 1e-15
			}
			rOhm += float64(nr.Vias) * w.p.ILVResistanceOhm / 4
			cF += float64(nr.Vias) * w.p.ILVCapF / 4
			rOhm += float64(nr.ILVs) * w.p.ILVResistanceOhm
			cF += float64(nr.ILVs) * w.p.ILVCapF
			return rOhm, cF
		}
	}
	wl := float64(n.HPWL())
	return w.rPerDBU * wl, w.cPerDBU * wl
}

// PathPoint is one pin on the critical path.
type PathPoint struct {
	Inst    string
	Pin     string
	Arrival float64
}

// Report is the STA result.
type Report struct {
	// CriticalPathS is the worst launch-to-capture delay including setup.
	CriticalPathS float64
	// FmaxHz is 1 / CriticalPathS.
	FmaxHz float64
	// WorstSlackS is slack at the target period (negative = violated).
	WorstSlackS float64
	// TargetPeriodS echoes the constraint.
	TargetPeriodS float64
	// Endpoints is the number of timing endpoints checked.
	Endpoints int
	// CriticalPath lists the pins of the worst path, launch to capture.
	CriticalPath []PathPoint
}

// Met reports whether the target period is met.
func (r *Report) Met() bool { return r.WorstSlackS >= 0 }

// Analyze runs STA at the given target clock period.
func Analyze(p *tech.PDK, nl *netlist.Netlist, wm *WireModel, targetPeriodS float64) (*Report, error) {
	if wm == nil {
		wm = NewWireModel(p, nil)
	}
	if targetPeriodS <= 0 {
		return nil, fmt.Errorf("sta: target period must be positive, got %g", targetPeriodS)
	}

	// Arrival time per pin; -1 = not yet computed.
	arr := make(map[*netlist.Pin]float64)
	from := make(map[*netlist.Pin]*netlist.Pin)

	// Net delay from driver to one sink: Elmore with lumped wire RC.
	netDelay := func(n *netlist.Net) float64 {
		rw, cw := wm.NetRC(n)
		cTotal := cw + n.SinkCapF()
		var rd float64
		var intrinsic float64
		if n.Driver != nil && !n.Driver.Inst.IsMacro() {
			k := n.Driver.Inst.Cell.Kind
			if k == cell.TieHi || k == cell.TieLo {
				// Constant nets do not propagate transitions.
				return 0
			}
			rd = n.Driver.Inst.Cell.DriveResOhm
			intrinsic = n.Driver.Inst.Cell.IntrinsicDelayS
		} else if n.Driver != nil {
			rd = 200 // macro output driver
		}
		return intrinsic + 0.69*(rd*cTotal+rw*(cw/2+n.SinkCapF()))
	}

	// Build a combinational dependency count per instance: outputs wait on
	// all inputs (sequential and macro outputs are launch points).
	type node struct {
		inst    *netlist.Instance
		pending int
	}
	nodes := make(map[*netlist.Instance]*node, len(nl.Instances))
	var queue []*netlist.Instance

	launch := func(pin *netlist.Pin, t float64) {
		arr[pin] = t
	}

	for _, inst := range nl.Instances {
		nd := &node{inst: inst}
		for _, pin := range inst.Pins() {
			if !pin.IsOutput && pin.Net != nil && !pin.Net.Clock {
				nd.pending++
			}
		}
		nodes[inst] = nd
		seq := !inst.IsMacro() && inst.Cell.Sequential
		mac := inst.IsMacro()
		tie := !mac && (inst.Cell.Kind == cell.TieHi || inst.Cell.Kind == cell.TieLo)
		if seq || mac || tie || nd.pending == 0 {
			// Launch point: outputs available at fixed time.
			t := 0.0
			if seq {
				t = inst.Cell.ClkQS
			}
			if mac {
				t = inst.Macro.AccessLatencyS
			}
			for _, pin := range inst.Pins() {
				if pin.IsOutput {
					launch(pin, t)
				}
			}
			queue = append(queue, inst)
			nd.pending = -1 // mark done
		}
	}

	for len(queue) > 0 {
		inst := queue[0]
		queue = queue[1:]
		for _, out := range inst.Pins() {
			if !out.IsOutput || out.Net == nil || out.Net.Clock {
				continue
			}
			tOut, ok := arr[out]
			if !ok {
				continue
			}
			d := netDelay(out.Net)
			for _, sink := range out.Net.Sinks {
				tSink := tOut + d
				if old, ok := arr[sink]; !ok || tSink > old {
					arr[sink] = tSink
					from[sink] = out
				}
				snd := nodes[sink.Inst]
				if snd.pending < 0 {
					continue // launch point; D pins are endpoints only
				}
				snd.pending--
				if snd.pending == 0 {
					snd.pending = -1
					// Compute output arrivals: max input arrival + cell delay.
					worstIn := 0.0
					var worstPin *netlist.Pin
					for _, in := range sink.Inst.Pins() {
						if in.IsOutput || in.Net == nil || in.Net.Clock {
							continue
						}
						if t, ok := arr[in]; ok && t >= worstIn {
							worstIn = t
							worstPin = in
						}
					}
					// The cell's intrinsic and drive delay are charged on the
					// output net arc (netDelay), so the output pin launches
					// at the worst input arrival.
					for _, op := range sink.Inst.Pins() {
						if op.IsOutput {
							arr[op] = worstIn
							if worstPin != nil {
								from[op] = worstPin
							}
						}
					}
					queue = append(queue, sink.Inst)
				}
			}
		}
	}

	// Endpoints: DFF D pins (+ setup), macro input pins.
	rep := &Report{TargetPeriodS: targetPeriodS}
	var worst float64
	var worstPin *netlist.Pin
	for _, inst := range nl.Instances {
		seq := !inst.IsMacro() && inst.Cell.Sequential
		mac := inst.IsMacro()
		if !seq && !mac {
			continue
		}
		for _, pin := range inst.Pins() {
			if pin.IsOutput || pin.Net == nil || pin.Net.Clock {
				continue
			}
			t, ok := arr[pin]
			if !ok {
				continue
			}
			if seq {
				t += inst.Cell.SetupS
			}
			rep.Endpoints++
			if t > worst {
				worst = t
				worstPin = pin
			}
		}
	}
	if rep.Endpoints == 0 {
		return nil, fmt.Errorf("sta: design has no timing endpoints")
	}
	rep.CriticalPathS = worst
	if worst > 0 {
		rep.FmaxHz = 1 / worst
	}
	rep.WorstSlackS = targetPeriodS - worst

	// Trace the critical path.
	for pin := worstPin; pin != nil; pin = from[pin] {
		rep.CriticalPath = append(rep.CriticalPath, PathPoint{
			Inst: pin.Inst.Name, Pin: pin.Name, Arrival: arr[pin],
		})
		if len(rep.CriticalPath) > 10000 {
			break
		}
	}
	// Reverse to launch-to-capture order.
	sort.SliceStable(rep.CriticalPath, func(i, j int) bool {
		return rep.CriticalPath[i].Arrival < rep.CriticalPath[j].Arrival
	})
	return rep, nil
}
