package sta

import (
	"reflect"
	"testing"

	"m3d/internal/cell"
	"m3d/internal/floorplan"
	"m3d/internal/netlist"
	"m3d/internal/place"
	"m3d/internal/route"
	"m3d/internal/synth"
	"m3d/internal/tech"
)

// routedFixture builds a placed-and-routed systolic block with a routed
// wire model — the same analysis surface the flow's sign-off stage uses.
func routedFixture(tb testing.TB, rows, cols int) (*tech.PDK, *netlist.Netlist, *WireModel, *cell.Library) {
	tb.Helper()
	p, nl, routes, lib := routedFixtureRoutes(tb, rows, cols)
	return p, nl, NewWireModel(p, routes), lib
}

// routedFixtureRoutes is routedFixture exposing the raw routing result,
// for tests that need one WireModel per goroutine (a WireModel's RC
// cache makes it single-goroutine).
func routedFixtureRoutes(tb testing.TB, rows, cols int) (*tech.PDK, *netlist.Netlist, *route.Result, *cell.Library) {
	tb.Helper()
	p := tech.Default130()
	lib, err := cell.NewLibrary(p, tech.TierSiCMOS)
	if err != nil {
		tb.Fatal(err)
	}
	b := synth.NewBuilder("dut", lib)
	b.Systolic("cs", synth.SystolicSpec{Rows: rows, Cols: cols, ActBits: 4, WeightBits: 4, AccBits: 12, Activity: 0.2})
	die, err := floorplan.SizeDie(p, b.NL, 0.6, 1.0)
	if err != nil {
		tb.Fatal(err)
	}
	fp, err := floorplan.New(p, die)
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := place.Global(fp, b.NL, tech.TierSiCMOS, place.Options{Seed: 1}); err != nil {
		tb.Fatal(err)
	}
	routes, err := route.Route(fp, b.NL, route.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	return p, b.NL, routes, lib
}

// TestTimingDeterministicAcrossRepeats is the map-iteration-order audit's
// regression pin: every report — worst endpoints named by string, the
// traced critical path, per-group summaries — must be a pure function of
// the netlist, identical across repeated passes on both fresh and reused
// Timers. The slice-indexed propagation iterates nl.Instances / Pins in
// dense-ID order, so nothing here may depend on Go map iteration.
func TestTimingDeterministicAcrossRepeats(t *testing.T) {
	p, nl, wm, _ := routedFixture(t, 2, 2)
	const target = 10e-9

	ref, err := Analyze(p, nl, wm, target)
	if err != nil {
		t.Fatal(err)
	}
	refHold, err := AnalyzeHold(p, nl, wm)
	if err != nil {
		t.Fatal(err)
	}
	refGroups, err := GroupEndpoints(p, nl, wm, ref)
	if err != nil {
		t.Fatal(err)
	}

	tm := NewTimer(p, nl, wm) // reused across passes, like OptimizeDrives
	for pass := 0; pass < 5; pass++ {
		rep, err := Analyze(p, nl, wm, target)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rep, ref) {
			t.Fatalf("pass %d: fresh Analyze diverged:\n got %+v\nwant %+v", pass, rep, ref)
		}
		rep2, err := tm.Analyze(target)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rep2, ref) {
			t.Fatalf("pass %d: reused-Timer Analyze diverged:\n got %+v\nwant %+v", pass, rep2, ref)
		}
		hold, err := tm.AnalyzeHold()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(hold, refHold) {
			t.Fatalf("pass %d: hold report diverged:\n got %+v\nwant %+v", pass, hold, refHold)
		}
		groups, err := GroupEndpoints(p, nl, wm, rep)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(groups, refGroups) {
			t.Fatalf("pass %d: group summaries diverged:\n got %+v\nwant %+v", pass, groups, refGroups)
		}
	}
}

// BenchmarkSTAFullTiming measures one full sign-off timing pass — max
// (setup) analysis plus min (hold) analysis over a routed wire model —
// with one Timer per iteration, the flow's usage pattern.
func BenchmarkSTAFullTiming(b *testing.B) {
	p, nl, wm, _ := routedFixture(b, 2, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm := NewTimer(p, nl, wm)
		if _, err := tm.Analyze(10e-9); err != nil {
			b.Fatal(err)
		}
		if _, err := tm.AnalyzeHold(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeDrivesIncremental measures the full OptimizeDrives
// loop — one full analysis plus incremental cone re-propagation per
// upsizing round — under a target tight enough to force every round.
// Cell choices are restored between iterations so each run re-does the
// same sizing work. Tracked by scripts/benchdiff.sh.
func BenchmarkOptimizeDrivesIncremental(b *testing.B) {
	p, nl, wm, lib := routedFixture(b, 2, 2)
	lm := map[tech.Tier]*cell.Library{tech.TierSiCMOS: lib}
	first, err := Analyze(p, nl, wm, 10e-9)
	if err != nil {
		b.Fatal(err)
	}
	target := first.CriticalPathS / 2
	orig := make([]*cell.Cell, len(nl.Instances))
	for i, inst := range nl.Instances {
		orig[i] = inst.Cell
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j, inst := range nl.Instances {
			inst.Cell = orig[j]
		}
		b.StartTimer()
		tm := NewTimer(p, nl, wm)
		if _, err := tm.OptimizeDrives(lm, target, 4); err != nil {
			b.Fatal(err)
		}
	}
}
