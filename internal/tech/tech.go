// Package tech models the foundry monolithic-3D (M3D) process design kit
// used throughout this project: the 130 nm vertical stack-up of Fig. 4a in
// the paper (Si CMOS FEOL, lower BEOL metals, a BEOL RRAM layer, a BEOL
// CNFET layer, and upper metals), inter-layer via (ILV) geometry and
// parasitics, per-layer wire parasitics, and the device models (Si FET,
// CNFET, RRAM cell) from which the cell library and macro generators are
// characterized.
//
// The real PDK is proprietary; this package substitutes a parameterized
// model that exposes exactly the knobs the paper sweeps: CNFET drive
// derating / width relaxation δ (Case 1), ILV pitch β (Case 2), and the
// number of interleaved compute+memory tier pairs Y (Case 3).
//
// All lengths are in database units (DBU) with 1 DBU = 1 nm.
package tech

import "fmt"

// Tier identifies a device tier in the M3D stack.
type Tier int

const (
	// TierSiCMOS is the bottom FEOL silicon tier (logic, memory peripherals).
	TierSiCMOS Tier = iota
	// TierRRAM is the BEOL resistive-RAM memory layer.
	TierRRAM
	// TierCNFET is the BEOL carbon-nanotube FET layer (memory access
	// transistors, optionally logic).
	TierCNFET

	// NumTiers is the number of device tiers in the stack — the length
	// of per-tier parameter arrays (e.g. the variation corner scales).
	NumTiers
)

// String returns the tier name.
func (t Tier) String() string {
	switch t {
	case TierSiCMOS:
		return "SiCMOS"
	case TierRRAM:
		return "RRAM"
	case TierCNFET:
		return "CNFET"
	default:
		return fmt.Sprintf("Tier(%d)", int(t))
	}
}

// LayerKind classifies a layer in the stack-up.
type LayerKind int

const (
	// LayerDevice hosts transistors or memory cells.
	LayerDevice LayerKind = iota
	// LayerRouting is a metal routing layer.
	LayerRouting
	// LayerVia connects adjacent layers (cut layer).
	LayerVia
)

// RouteDir is the preferred routing direction of a metal layer.
type RouteDir int

const (
	// DirHorizontal prefers horizontal wires.
	DirHorizontal RouteDir = iota
	// DirVertical prefers vertical wires.
	DirVertical
)

// Layer describes one layer of the M3D stack-up.
type Layer struct {
	Name  string
	Kind  LayerKind
	Tier  Tier // the device tier this layer belongs to / sits above
	Index int  // position in the stack, 0 = substrate side

	// Routing-layer properties.
	Dir       RouteDir
	Pitch     int64   // track pitch in DBU
	ROhmPerUm float64 // wire resistance, ohm per micron
	CfFPerUm  float64 // wire capacitance, fF per micron

	// GDS stream numbers for layout export.
	GDSLayer, GDSDatatype int16
}

// FET models a field-effect transistor family (Si CMOS or CNFET).
type FET struct {
	Name string
	Tier Tier
	// MinWidth is the minimum drawn gate width in DBU.
	MinWidth int64
	// IonUAPerUm is the on-current per micron of width, µA/µm. CNFETs in
	// the foundry M3D process are newly introduced and achieve lower drive
	// than idealized projections; the paper's Case 1 sweeps this derating.
	IonUAPerUm float64
	// CgFFPerUm is the gate capacitance per micron of width, fF/µm.
	CgFFPerUm float64
	// IoffNAPerUm is the off (leakage) current per micron of width, nA/µm.
	IoffNAPerUm float64
	// FootprintNM2PerUm is the layout footprint cost per micron of width,
	// nm² per µm of gate width (diffusion + gate + contacts).
	FootprintNM2PerUm float64
}

// EffectiveResistance returns the switching resistance (ohm) of a FET of
// width w DBU driving at supply vdd.
func (f FET) EffectiveResistance(vdd float64, w int64) float64 {
	if w <= 0 {
		w = f.MinWidth
	}
	wUm := float64(w) / 1000.0
	ionA := f.IonUAPerUm * wUm * 1e-6
	if ionA <= 0 {
		return 1e12
	}
	// R_eff ≈ Vdd / I_on with the usual 3/4 switching-trajectory factor.
	return 0.75 * vdd / ionA
}

// GateCapF returns the gate capacitance (F) of a FET of width w DBU.
func (f FET) GateCapF(w int64) float64 {
	if w <= 0 {
		w = f.MinWidth
	}
	return f.CgFFPerUm * (float64(w) / 1000.0) * 1e-15
}

// RRAMCell models the BEOL resistive-RAM bit cell.
type RRAMCell struct {
	// ReadEnergyPJPerBit / WriteEnergyPJPerBit are access energies.
	ReadEnergyPJPerBit  float64
	WriteEnergyPJPerBit float64
	// ReadLatencyNs is the array read latency.
	ReadLatencyNs float64
	// ViasPerCell is m in the paper's Case 2: the number of vertical ILVs
	// each cell needs down to its access transistor (WL, BL, SL).
	ViasPerCell int
	// BitsPerCell is the multi-level-cell density (ref [11]'s
	// four-bits-per-memory 1T8R RRAM stores 4 bits per access device).
	BitsPerCell int
	// LRSOhm / HRSOhm are the low/high resistive state resistances.
	LRSOhm, HRSOhm float64
}

// Variation models inter-tier process variation of the M3D stack: the
// newly-introduced BEOL devices (CNFETs, fine-pitch ILVs) vary more than
// the mature Si FEOL, and the upper CNFET tier additionally suffers a
// systematic threshold-voltage shift (Musavvir et al., "Inter-Tier
// Process Variation-Aware Monolithic 3D NoC Architectures"). All sigma
// fields are relative 1σ fractions of the nominal quantity; the zero
// value is the nominal, variation-free process.
type Variation struct {
	// SiDriveSigma is the FEOL Si CMOS drive-current spread (relative 1σ
	// of delay on Si-tier cells).
	SiDriveSigma float64
	// CNFETDriveSigma is the BEOL CNFET drive-current spread (relative 1σ
	// of delay on CNFET-tier cells); BEOL devices sit above several
	// deposition steps and vary more than the FEOL.
	CNFETDriveSigma float64
	// CNFETVtShift is the systematic upper-tier Vt shift, expressed as a
	// mean relative delay penalty on CNFET-tier cells (0.05 = 5% slower
	// on average, before the random component).
	CNFETVtShift float64
	// ILVRSpread is the inter-layer-via resistance spread (relative 1σ);
	// it loads the ILV-rich memory-interface (RRAM-tier) arcs.
	ILVRSpread float64
	// TierCorr is the correlation ρ ∈ [0, 1] between the tiers' random
	// components: 0 draws every tier independently, 1 collapses the stack
	// to one fully-correlated process corner.
	TierCorr float64
}

// maxVariationSigma bounds the relative spreads: beyond 50% the linear
// delay-scale model (1 + σ·z) loses physical meaning.
const maxVariationSigma = 0.5

// IsZero reports whether v is the nominal (variation-free) process.
func (v Variation) IsZero() bool { return v == (Variation{}) }

// Validate checks the variation parameter ranges.
func (v Variation) Validate() error {
	check := func(name string, s float64) error {
		if s < 0 || s > maxVariationSigma {
			return fmt.Errorf("tech: %s %g outside [0, %g]", name, s, maxVariationSigma)
		}
		return nil
	}
	if err := check("SiDriveSigma", v.SiDriveSigma); err != nil {
		return err
	}
	if err := check("CNFETDriveSigma", v.CNFETDriveSigma); err != nil {
		return err
	}
	if err := check("ILVRSpread", v.ILVRSpread); err != nil {
		return err
	}
	if v.CNFETVtShift < 0 || v.CNFETVtShift > 1 {
		return fmt.Errorf("tech: CNFETVtShift %g outside [0, 1]", v.CNFETVtShift)
	}
	if v.TierCorr < 0 || v.TierCorr > 1 {
		return fmt.Errorf("tech: TierCorr %g outside [0, 1]", v.TierCorr)
	}
	return nil
}

// DefaultVariation returns the stock inter-tier variation corner used
// when a caller enables variation analysis without overriding the
// parameters: a mature FEOL, a noticeably wider BEOL CNFET spread with a
// 5% systematic Vt-shift slowdown, a 10% ILV resistance spread, and
// half-correlated tiers.
func DefaultVariation() Variation {
	return Variation{
		SiDriveSigma:    0.03,
		CNFETDriveSigma: 0.08,
		CNFETVtShift:    0.05,
		ILVRSpread:      0.10,
		TierCorr:        0.5,
	}
}

// PDK is the full process model. Construct one with Default130 and refine it
// with the With* options; the zero value is not usable.
type PDK struct {
	Name   string
	NodeNM int64 // lithography node (130 for this PDK)
	// VDD is the core supply voltage.
	VDD float64

	// Stack is the layer stack-up in order from the substrate.
	Stack []Layer

	// RowHeight is the standard-cell row height in DBU.
	RowHeight int64
	// SiteWidth is the placement site width in DBU.
	SiteWidth int64

	// ILVPitch is the inter-layer via pitch β in DBU. Fine-pitch ILVs
	// (<100 nm class, here 130 nm drawn) are the enabler the paper's
	// Obs. 8 studies.
	ILVPitch int64
	// ILVResistanceOhm / ILVCapF are per-ILV parasitics.
	ILVResistanceOhm float64
	ILVCapF          float64

	// SiFET / CNFET are the two transistor families. CNFETWidthRelax is δ
	// from Case 1: the width (and therefore footprint) relaxation applied
	// to BEOL memory access FETs relative to the ideal minimum device.
	SiFET           FET
	CNFET           FET
	CNFETWidthRelax float64

	RRAM RRAMCell

	// Variation carries the inter-tier process variation parameters; the
	// zero value (the Default130 setting) is the nominal process. The
	// nominal models ignore it — only the Monte-Carlo variation engine
	// (internal/vary) and its callers sample it.
	Variation Variation

	// Thermal stack parameters for Eq. 17: RthetaSink is R0 (heat-sink /
	// package resistance to ambient, K/W) and RthetaPerTier is the
	// resistance added by each additional interleaved compute+memory tier
	// pair, K/W.
	RthetaSink    float64
	RthetaPerTier float64
	// MaxTempRiseK is the allowed junction temperature rise (~60 K,
	// Obs. 10).
	MaxTempRiseK float64
}

// Default130 returns the 130 nm foundry M3D PDK model: Si CMOS FEOL, four
// lower routing metals (usable under the RRAM arrays), the BEOL RRAM layer,
// the BEOL CNFET layer, and two upper routing metals, with fine-pitch ILVs.
func Default130() *PDK {
	p := &PDK{
		Name:   "m3d130",
		NodeNM: 130,
		VDD:    1.2,

		RowHeight: 3690, // 9 tracks × 410 nm M1 pitch
		SiteWidth: 410,

		ILVPitch:         130,
		ILVResistanceOhm: 8.0,
		ILVCapF:          0.05e-15,

		SiFET: FET{
			Name:              "si_nmos",
			Tier:              TierSiCMOS,
			MinWidth:          300,
			IonUAPerUm:        600,
			CgFFPerUm:         1.6,
			IoffNAPerUm:       0.3,
			FootprintNM2PerUm: 390000, // 0.39 µm of pitch per µm width at 130 nm
		},
		CNFET: FET{
			Name:              "cnfet",
			Tier:              TierCNFET,
			MinWidth:          300,
			IonUAPerUm:        360, // newly-introduced BEOL device: ~0.6× Si drive
			CgFFPerUm:         1.2,
			IoffNAPerUm:       0.6,
			FootprintNM2PerUm: 390000,
		},
		CNFETWidthRelax: 1.0,

		RRAM: RRAMCell{
			ReadEnergyPJPerBit:  0.4,
			WriteEnergyPJPerBit: 2.5,
			ReadLatencyNs:       10,
			ViasPerCell:         3,
			BitsPerCell:         4,
			LRSOhm:              10e3,
			HRSOhm:              1e6,
		},

		RthetaSink:    2.0,
		RthetaPerTier: 0.6,
		MaxTempRiseK:  60,
	}
	p.Stack = defaultStack()
	return p
}

func defaultStack() []Layer {
	mk := func(idx int, name string, kind LayerKind, tier Tier, dir RouteDir, pitch int64, r, c float64, gds int16) Layer {
		return Layer{
			Name: name, Kind: kind, Tier: tier, Index: idx,
			Dir: dir, Pitch: pitch, ROhmPerUm: r, CfFPerUm: c,
			GDSLayer: gds,
		}
	}
	return []Layer{
		mk(0, "FEOL", LayerDevice, TierSiCMOS, DirHorizontal, 0, 0, 0, 1),
		mk(1, "M1", LayerRouting, TierSiCMOS, DirHorizontal, 410, 0.45, 0.20, 11),
		mk(2, "V1", LayerVia, TierSiCMOS, DirHorizontal, 410, 0, 0, 12),
		mk(3, "M2", LayerRouting, TierSiCMOS, DirVertical, 410, 0.45, 0.20, 13),
		mk(4, "V2", LayerVia, TierSiCMOS, DirHorizontal, 410, 0, 0, 14),
		mk(5, "M3", LayerRouting, TierSiCMOS, DirHorizontal, 460, 0.35, 0.21, 15),
		mk(6, "V3", LayerVia, TierSiCMOS, DirHorizontal, 460, 0, 0, 16),
		mk(7, "M4", LayerRouting, TierSiCMOS, DirVertical, 460, 0.35, 0.21, 17),
		mk(8, "ILV_RRAM", LayerVia, TierRRAM, DirHorizontal, 130, 0, 0, 20),
		mk(9, "RRAM", LayerDevice, TierRRAM, DirHorizontal, 0, 0, 0, 21),
		mk(10, "ILV_CNT", LayerVia, TierCNFET, DirHorizontal, 130, 0, 0, 30),
		mk(11, "CNFET", LayerDevice, TierCNFET, DirHorizontal, 0, 0, 0, 31),
		mk(12, "M5", LayerRouting, TierCNFET, DirHorizontal, 920, 0.12, 0.24, 41),
		mk(13, "V5", LayerVia, TierCNFET, DirHorizontal, 920, 0, 0, 42),
		mk(14, "M6", LayerRouting, TierCNFET, DirVertical, 920, 0.12, 0.24, 43),
	}
}

// RoutingLayers returns the metal layers, bottom-up.
func (p *PDK) RoutingLayers() []Layer {
	var out []Layer
	for _, l := range p.Stack {
		if l.Kind == LayerRouting {
			out = append(out, l)
		}
	}
	return out
}

// LayerByName returns the named layer.
func (p *PDK) LayerByName(name string) (Layer, bool) {
	for _, l := range p.Stack {
		if l.Name == name {
			return l, true
		}
	}
	return Layer{}, false
}

// Clone returns a deep copy of the PDK that can be mutated independently.
func (p *PDK) Clone() *PDK {
	out := *p
	out.Stack = append([]Layer(nil), p.Stack...)
	return &out
}

// WithCNFETDerate returns a copy whose CNFET on-current is scaled by f
// (f < 1 weakens the BEOL devices).
func (p *PDK) WithCNFETDerate(f float64) *PDK {
	out := p.Clone()
	out.CNFET.IonUAPerUm *= f
	return out
}

// WithCNFETWidthRelax returns a copy with Case 1's width relaxation δ
// applied: BEOL memory access FETs are drawn δ× wider to recover drive,
// growing the M3D bit-cell footprint proportionally.
func (p *PDK) WithCNFETWidthRelax(delta float64) *PDK {
	if delta < 1 {
		delta = 1
	}
	out := p.Clone()
	out.CNFETWidthRelax = delta
	return out
}

// WithVariation returns a copy with the inter-tier variation parameters
// installed (see Variation; the zero value restores the nominal process).
func (p *PDK) WithVariation(v Variation) *PDK {
	out := p.Clone()
	out.Variation = v
	return out
}

// WithILVPitchScale returns a copy with Case 2's via-pitch scale β applied
// to both ILV cut layers.
func (p *PDK) WithILVPitchScale(beta float64) *PDK {
	if beta < 1 {
		beta = 1
	}
	out := p.Clone()
	out.ILVPitch = int64(float64(p.ILVPitch) * beta)
	for i := range out.Stack {
		if out.Stack[i].Kind == LayerVia && (out.Stack[i].Tier == TierRRAM || out.Stack[i].Tier == TierCNFET) {
			out.Stack[i].Pitch = out.ILVPitch
		}
	}
	return out
}

// BitcellArea2D returns the area (DBU² = nm²) of one RRAM bit cell in the 2D
// baseline, where the access transistor is a Si FET directly under the cell:
// the cell is limited by the Si access device footprint and the via pitch.
func (p *PDK) BitcellArea2D() int64 {
	fet := accessFETFootprint(p.SiFET, 1.0)
	via := viaLimitedCellArea(p)
	if via > fet {
		return via
	}
	return fet
}

// BitcellArea3D returns the area (nm²) of one RRAM bit cell in the M3D
// design, where the access transistor is a CNFET above the cell with width
// relaxation δ (Case 1); the footprint under the array in the Si tier is
// zero, but the array itself grows with δ and with the via pitch β (Case 2).
func (p *PDK) BitcellArea3D() int64 {
	fet := accessFETFootprint(p.CNFET, p.CNFETWidthRelax)
	via := viaLimitedCellArea(p)
	if via > fet {
		return via
	}
	return fet
}

// arrayLayoutEff is the area efficiency of access transistors inside a
// memory array relative to random logic layout: array FETs share
// diffusions, word lines, and contacts, so the per-device footprint is
// well below the logic-cell cost. With this factor the baseline bit cell
// is via-pitch-limited (m·β² > FET footprint at δ=1), matching the paper's
// Case 2 premise that "memory cell area is via-pitch limited".
const arrayLayoutEff = 0.4

// accessFETFootprint is the layout footprint of a single memory access
// transistor of the given family at width relax·MinWidth.
func accessFETFootprint(f FET, relax float64) int64 {
	wUm := relax * float64(f.MinWidth) / 1000.0
	return int64(f.FootprintNM2PerUm * wUm * arrayLayoutEff)
}

// viaLimitedCellArea is the paper's Case 2 bound: m·β² per cell.
func viaLimitedCellArea(p *PDK) int64 {
	return int64(p.RRAM.ViasPerCell) * p.ILVPitch * p.ILVPitch
}

// Validate checks internal consistency of the PDK model.
func (p *PDK) Validate() error {
	if p.NodeNM <= 0 {
		return fmt.Errorf("tech: node must be positive, got %d", p.NodeNM)
	}
	if p.VDD <= 0 {
		return fmt.Errorf("tech: VDD must be positive, got %g", p.VDD)
	}
	if p.RowHeight <= 0 || p.SiteWidth <= 0 {
		return fmt.Errorf("tech: row height / site width must be positive")
	}
	if p.ILVPitch <= 0 {
		return fmt.Errorf("tech: ILV pitch must be positive")
	}
	if p.CNFETWidthRelax < 1 {
		return fmt.Errorf("tech: CNFET width relax δ=%g must be ≥ 1", p.CNFETWidthRelax)
	}
	if len(p.Stack) == 0 {
		return fmt.Errorf("tech: empty layer stack")
	}
	for i, l := range p.Stack {
		if l.Index != i {
			return fmt.Errorf("tech: layer %q index %d != position %d", l.Name, l.Index, i)
		}
		if l.Kind == LayerRouting && l.Pitch <= 0 {
			return fmt.Errorf("tech: routing layer %q needs a positive pitch", l.Name)
		}
	}
	if err := p.Variation.Validate(); err != nil {
		return err
	}
	if p.RRAM.ViasPerCell <= 0 {
		return fmt.Errorf("tech: RRAM ViasPerCell must be positive")
	}
	if p.RRAM.BitsPerCell <= 0 {
		return fmt.Errorf("tech: RRAM BitsPerCell must be positive")
	}
	return nil
}

// RRAMAreaPerBit2D returns the 2D-baseline array area per stored bit
// (cell area over the multi-level-cell density), in nm².
func (p *PDK) RRAMAreaPerBit2D() float64 {
	return float64(p.BitcellArea2D()) / float64(p.RRAM.BitsPerCell)
}

// RRAMAreaPerBit3D returns the M3D array area per stored bit in nm².
func (p *PDK) RRAMAreaPerBit3D() float64 {
	return float64(p.BitcellArea3D()) / float64(p.RRAM.BitsPerCell)
}
