package tech

import (
	"testing"
	"testing/quick"
)

func TestDefault130Validates(t *testing.T) {
	p := Default130()
	if err := p.Validate(); err != nil {
		t.Fatalf("default PDK invalid: %v", err)
	}
	if p.NodeNM != 130 {
		t.Errorf("node = %d, want 130", p.NodeNM)
	}
}

func TestStackOrdering(t *testing.T) {
	p := Default130()
	// RRAM must sit above the lower metals and below the CNFET layer
	// (Fig. 4a): FEOL < M4 < RRAM < CNFET < M6.
	idx := func(name string) int {
		l, ok := p.LayerByName(name)
		if !ok {
			t.Fatalf("missing layer %q", name)
		}
		return l.Index
	}
	if !(idx("FEOL") < idx("M4") && idx("M4") < idx("RRAM") && idx("RRAM") < idx("CNFET") && idx("CNFET") < idx("M6")) {
		t.Error("stack-up ordering does not match Fig. 4a")
	}
}

func TestRoutingLayers(t *testing.T) {
	p := Default130()
	rl := p.RoutingLayers()
	if len(rl) != 6 {
		t.Fatalf("routing layers = %d, want 6 (M1-M6)", len(rl))
	}
	// Adjacent metals must alternate preferred direction.
	for i := 1; i < len(rl); i++ {
		if rl[i].Dir == rl[i-1].Dir {
			t.Errorf("layers %s and %s share direction", rl[i-1].Name, rl[i].Name)
		}
	}
}

func TestLayerByNameMissing(t *testing.T) {
	p := Default130()
	if _, ok := p.LayerByName("M99"); ok {
		t.Error("found a layer that should not exist")
	}
}

func TestFETEffectiveResistance(t *testing.T) {
	p := Default130()
	rMin := p.SiFET.EffectiveResistance(p.VDD, p.SiFET.MinWidth)
	rWide := p.SiFET.EffectiveResistance(p.VDD, 4*p.SiFET.MinWidth)
	if rMin <= 0 || rWide <= 0 {
		t.Fatal("resistances must be positive")
	}
	if rWide >= rMin {
		t.Errorf("4x wider FET should have lower resistance: %g vs %g", rWide, rMin)
	}
	// Zero width falls back to the minimum device.
	if got := p.SiFET.EffectiveResistance(p.VDD, 0); got != rMin {
		t.Errorf("zero-width fallback = %g, want %g", got, rMin)
	}
}

func TestCNFETWeakerThanSi(t *testing.T) {
	p := Default130()
	rSi := p.SiFET.EffectiveResistance(p.VDD, 300)
	rCN := p.CNFET.EffectiveResistance(p.VDD, 300)
	if rCN <= rSi {
		t.Errorf("newly-introduced CNFET should be weaker than Si: R_cn=%g R_si=%g", rCN, rSi)
	}
}

func TestGateCapScalesWithWidth(t *testing.T) {
	p := Default130()
	c1 := p.SiFET.GateCapF(300)
	c2 := p.SiFET.GateCapF(600)
	if c2 <= c1 {
		t.Error("gate cap must grow with width")
	}
	if got, want := c2/c1, 2.0; got < want-0.01 || got > want+0.01 {
		t.Errorf("cap ratio = %g, want 2", got)
	}
}

func TestBitcellAreas(t *testing.T) {
	p := Default130()
	a2d := p.BitcellArea2D()
	a3d := p.BitcellArea3D()
	if a2d <= 0 || a3d <= 0 {
		t.Fatal("bitcell areas must be positive")
	}
	// At δ=1 the Si and CNFET access devices have the same drawn footprint,
	// so the cell areas match; M3D just relocates the FET off the Si tier.
	if a2d != a3d {
		t.Errorf("iso-width bitcell areas differ: 2D=%d 3D=%d", a2d, a3d)
	}
}

func TestWidthRelaxGrowsCell(t *testing.T) {
	p := Default130()
	base := p.BitcellArea3D()
	relaxed := p.WithCNFETWidthRelax(2.0).BitcellArea3D()
	if relaxed <= base {
		t.Errorf("δ=2 should grow the 3D bitcell: %d vs %d", relaxed, base)
	}
	// δ clamps at 1 from below.
	if got := p.WithCNFETWidthRelax(0.5).CNFETWidthRelax; got != 1 {
		t.Errorf("δ=0.5 should clamp to 1, got %g", got)
	}
}

func TestBitcellViaLimitedAtBaseline(t *testing.T) {
	// The paper's Case 2 premise: the memory cell is via-pitch limited, so
	// the baseline cell area equals m·β² and any β increase grows it.
	p := Default130()
	base := p.BitcellArea2D()
	want := int64(p.RRAM.ViasPerCell) * p.ILVPitch * p.ILVPitch
	if base != want {
		t.Errorf("baseline cell should be via-limited: %d vs m·β²=%d", base, want)
	}
	small := p.WithILVPitchScale(1.2).BitcellArea3D()
	large := p.WithILVPitchScale(3.0).BitcellArea3D()
	if small <= base {
		t.Errorf("β=1.2 must grow a via-limited cell: %d vs %d", small, base)
	}
	if large <= small {
		t.Errorf("β=3 must grow further: %d vs %d", large, small)
	}
}

func TestWithILVPitchScaleUpdatesStack(t *testing.T) {
	p := Default130().WithILVPitchScale(2.0)
	l, ok := p.LayerByName("ILV_RRAM")
	if !ok {
		t.Fatal("missing ILV_RRAM layer")
	}
	if l.Pitch != p.ILVPitch {
		t.Errorf("stack ILV pitch %d != PDK ILV pitch %d", l.Pitch, p.ILVPitch)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := Default130()
	q := p.Clone()
	q.Stack[0].Name = "mutated"
	q.VDD = 9
	if p.Stack[0].Name == "mutated" || p.VDD == 9 {
		t.Error("Clone shares state with the original")
	}
}

func TestWithCNFETDerate(t *testing.T) {
	p := Default130()
	d := p.WithCNFETDerate(0.5)
	if d.CNFET.IonUAPerUm >= p.CNFET.IonUAPerUm {
		t.Error("derate did not weaken the CNFET")
	}
	if p.CNFET.IonUAPerUm != Default130().CNFET.IonUAPerUm {
		t.Error("derate mutated the source PDK")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	cases := []func(*PDK){
		func(p *PDK) { p.NodeNM = 0 },
		func(p *PDK) { p.VDD = -1 },
		func(p *PDK) { p.RowHeight = 0 },
		func(p *PDK) { p.ILVPitch = 0 },
		func(p *PDK) { p.CNFETWidthRelax = 0.5 },
		func(p *PDK) { p.Stack = nil },
		func(p *PDK) { p.Stack[3].Index = 99 },
		func(p *PDK) { p.Stack[1].Pitch = 0 }, // M1 routing layer
		func(p *PDK) { p.RRAM.ViasPerCell = 0 },
	}
	for i, corrupt := range cases {
		p := Default130()
		corrupt(p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: corruption not caught", i)
		}
	}
}

func TestBitcellAreaMonotoneInDelta(t *testing.T) {
	base := Default130()
	f := func(raw uint8) bool {
		d1 := 1.0 + float64(raw)/100.0 // δ ∈ [1, 3.55]
		d2 := d1 + 0.25
		a1 := base.WithCNFETWidthRelax(d1).BitcellArea3D()
		a2 := base.WithCNFETWidthRelax(d2).BitcellArea3D()
		return a2 >= a1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitcellAreaMonotoneInBeta(t *testing.T) {
	base := Default130()
	f := func(raw uint8) bool {
		b1 := 1.0 + float64(raw)/64.0
		b2 := b1 + 0.5
		a1 := base.WithILVPitchScale(b1).BitcellArea3D()
		a2 := base.WithILVPitchScale(b2).BitcellArea3D()
		return a2 >= a1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTierString(t *testing.T) {
	if TierSiCMOS.String() != "SiCMOS" || TierRRAM.String() != "RRAM" || TierCNFET.String() != "CNFET" {
		t.Error("tier names wrong")
	}
	if Tier(42).String() == "" {
		t.Error("unknown tier should still format")
	}
}
