package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically-increasing atomic counter. All methods are
// safe on a nil receiver (no-ops / zero), so call sites never guard for a
// missing registry.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. Nil-receiver-safe like Counter.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultSecondsBounds are the histogram bucket upper bounds used for
// wall-time observations (seconds) when none are given: 1 ms to 100 s.
var DefaultSecondsBounds = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 100}

// Histogram is a fixed-bucket histogram (upper-bound buckets plus an
// overflow bucket) with a running count and sum. Nil-receiver-safe.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64
	count  int64
	sum    float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.count++
	h.sum += v
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.mu.Unlock()
}

// Count returns the number of samples (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sample sum (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Registry is a concurrency-safe, name-keyed instrument table. The zero
// value is ready to use; a nil *Registry hands out nil instruments whose
// methods are no-ops, so disabled metrics cost one nil check per call.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the named counter, creating it on first use. Returns
// nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counts == nil {
		r.counts = make(map[string]*Counter)
	}
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on
// a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use with
// the given bucket upper bounds (DefaultSecondsBounds when none are
// given; bounds are fixed at creation and ignored afterwards). Returns
// nil on a nil registry.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.hists == nil {
		r.hists = make(map[string]*Histogram)
	}
	h, ok := r.hists[name]
	if !ok {
		if len(bounds) == 0 {
			bounds = DefaultSecondsBounds
		}
		h = &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
		r.hists[name] = h
	}
	return h
}

// HistogramSnapshot is one histogram's frozen state. Counts has one entry
// per bound plus a trailing overflow bucket.
type HistogramSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []int64   `json:"counts,omitempty"`
}

// Snapshot is a frozen, JSON-serializable view of a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot freezes the registry. Safe on nil (returns the zero Snapshot).
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counts) > 0 {
		s.Counters = make(map[string]int64, len(r.counts))
		for k, c := range r.counts {
			s.Counters[k] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for k, g := range r.gauges {
			s.Gauges[k] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for k, h := range r.hists {
			h.mu.Lock()
			hs := HistogramSnapshot{
				Count:  h.count,
				Sum:    h.sum,
				Bounds: append([]float64(nil), h.bounds...),
				Counts: append([]int64(nil), h.counts...),
			}
			h.mu.Unlock()
			s.Histograms[k] = hs
		}
	}
	return s
}

// WriteJSON writes the registry snapshot as one JSON object. Map keys are
// emitted sorted (encoding/json), so the output is deterministic for a
// fixed set of values.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(r.Snapshot())
}

// WriteText writes the registry as a line-oriented text dump — the
// GET /metrics wire format of cmd/m3dserve, locked by a golden test.
// Every instrument is one line, and lines are sorted by metric name
// (ties broken by instrument type), so the dump is deterministic for a
// fixed set of values regardless of registration order:
//
//	counter serve.requests 42
//	gauge serve.inflight 3
//	histogram serve.request.seconds count=42 sum=0.125
//
// Histogram sums are formatted with strconv.FormatFloat 'g' -1 (shortest
// round-trip form). Safe on a nil registry (writes nothing).
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	type line struct{ name, text string }
	lines := make([]line, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for name, v := range s.Counters {
		lines = append(lines, line{name, fmt.Sprintf("counter %s %d", name, v)})
	}
	for name, v := range s.Gauges {
		lines = append(lines, line{name, fmt.Sprintf("gauge %s %d", name, v)})
	}
	for name, h := range s.Histograms {
		lines = append(lines, line{name, fmt.Sprintf("histogram %s count=%d sum=%s",
			name, h.Count, strconv.FormatFloat(h.Sum, 'g', -1, 64))})
	}
	sort.Slice(lines, func(i, j int) bool {
		if lines[i].name != lines[j].name {
			return lines[i].name < lines[j].name
		}
		return lines[i].text < lines[j].text
	})
	for _, l := range lines {
		if _, err := io.WriteString(w, l.text+"\n"); err != nil {
			return err
		}
	}
	return nil
}
