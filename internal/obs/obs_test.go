package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestNopTracer(t *testing.T) {
	sp := Nop().StartSpan("x", Int("i", 1))
	sp.SetAttr(String("k", "v"))
	sp.End()
	sp.End() // double End must be safe
}

func TestAttrConstructors(t *testing.T) {
	for _, tc := range []struct {
		got  Attr
		want Attr
	}{
		{String("s", "v"), Attr{"s", "v"}},
		{Int("i", -3), Attr{"i", "-3"}},
		{Bool("b", true), Attr{"b", "true"}},
		{Float("f", 0.5), Attr{"f", "0.5"}},
	} {
		if tc.got != tc.want {
			t.Errorf("got %+v, want %+v", tc.got, tc.want)
		}
	}
}

func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	r.Counter("c").Add(5)
	r.Gauge("g").Set(7)
	r.Histogram("h").Observe(1)
	if v := r.Counter("c").Value(); v != 0 {
		t.Errorf("nil counter value = %d", v)
	}
	if v := r.Gauge("g").Value(); v != 0 {
		t.Errorf("nil gauge value = %d", v)
	}
	if n := r.Histogram("h").Count(); n != 0 {
		t.Errorf("nil histogram count = %d", n)
	}
	if s := r.Snapshot(); !reflect.DeepEqual(s, Snapshot{}) {
		t.Errorf("nil snapshot = %+v", s)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("c").Add(1)
				r.Gauge("g").Set(int64(i))
				r.Histogram("h").Observe(float64(i) / 100)
			}
		}(w)
	}
	wg.Wait()
	if v := r.Counter("c").Value(); v != workers*perWorker {
		t.Errorf("counter = %d, want %d", v, workers*perWorker)
	}
	if n := r.Histogram("h").Count(); n != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", n, workers*perWorker)
	}
	// Same name must return the same instrument.
	if r.Counter("c") != r.Counter("c") {
		t.Error("Counter not idempotent")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", 1, 10)
	for _, v := range []float64{0.5, 1, 5, 10, 100} {
		h.Observe(v)
	}
	snap := r.Snapshot().Histograms["lat"]
	if snap.Count != 5 {
		t.Fatalf("count = %d", snap.Count)
	}
	if want := 116.5; snap.Sum != want {
		t.Errorf("sum = %g, want %g", snap.Sum, want)
	}
	// Upper-bound buckets: ≤1, ≤10, overflow.
	if want := []int64{2, 2, 1}; !reflect.DeepEqual(snap.Counts, want) {
		t.Errorf("bucket counts = %v, want %v", snap.Counts, want)
	}
}

func TestContextPlumbing(t *testing.T) {
	if TracerFrom(context.Background()) != nil {
		t.Error("empty context returned a tracer")
	}
	if MetricsFrom(nil) != nil {
		t.Error("nil context returned a registry")
	}
	rec := NewRecorder()
	reg := NewRegistry()
	ctx := ContextWithTracer(context.Background(), rec)
	ctx = ContextWithMetrics(ctx, reg)
	if TracerFrom(ctx) != Tracer(rec) {
		t.Error("tracer did not round-trip")
	}
	if MetricsFrom(ctx) != reg {
		t.Error("registry did not round-trip")
	}
	StartSpan(ctx, "op", Int("i", 1)).End()
	StartSpan(context.Background(), "dropped").End() // nop path
	if names := rec.Names(); !reflect.DeepEqual(names, []string{"op"}) {
		t.Errorf("recorded %v", names)
	}
}

func TestRecorderOrderAndAttrs(t *testing.T) {
	rec := NewRecorder()
	outer := rec.StartSpan("outer", String("k", "v"))
	inner := rec.StartSpan("inner")
	inner.SetAttr(Int("n", 2))
	inner.End()
	outer.End()
	outer.End() // idempotent
	spans := rec.Spans()
	if names := rec.Names(); !reflect.DeepEqual(names, []string{"inner", "outer"}) {
		t.Fatalf("end order = %v", names)
	}
	if got := spans[0].Attr("n"); got != "2" {
		t.Errorf("inner attr n = %q", got)
	}
	if got := spans[1].Attr("k"); got != "v" {
		t.Errorf("outer attr k = %q", got)
	}
	if got := spans[1].Attr("missing"); got != "" {
		t.Errorf("missing attr = %q", got)
	}
	if len(rec.Find("outer")) != 1 || len(rec.Find("nope")) != 0 {
		t.Error("Find mismatch")
	}
	rec.Reset()
	if len(rec.Spans()) != 0 {
		t.Error("Reset kept spans")
	}
}

// fakeClock steps 1 ms per call, giving every span a deterministic
// timestamp and duration.
func fakeClock() func() time.Time {
	base := time.Unix(1700000000, 0).UTC()
	n := 0
	return func() time.Time {
		n++
		return base.Add(time.Duration(n-1) * time.Millisecond)
	}
}

// TestJSONLGolden locks the -trace schema: span and metrics events with a
// deterministic clock must match testdata/trace.golden.jsonl exactly.
func TestJSONLGolden(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONL(&buf)
	tr.Now = fakeClock()
	tr.epoch = tr.Now() // re-anchor the epoch on the fake clock

	root := tr.StartSpan("flow.run", String("style", "3D"), Int("cs", 8))
	stage := tr.StartSpan("flow.route")
	stage.End()
	tr.StartSpan("flow.gds", Bool("skipped", true)).End()
	root.End()

	reg := NewRegistry()
	reg.Counter("flow.memo.hits").Add(3)
	reg.Counter("flow.memo.misses").Add(2)
	reg.Gauge("exec.pool.width").Set(8)
	reg.Histogram("flow.stage.seconds.route", 0.1, 1).Observe(0.25)
	tr.EmitMetrics(reg)
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "trace.golden.jsonl")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace schema drifted from golden\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	// Every line must round-trip as an Event.
	var spans, metrics int
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	for dec.More() {
		var e Event
		if err := dec.Decode(&e); err != nil {
			t.Fatalf("parse: %v", err)
		}
		switch e.Type {
		case "span":
			spans++
		case "metrics":
			metrics++
			if e.Metrics.Counters["flow.memo.hits"] != 3 {
				t.Errorf("metrics event hits = %d", e.Metrics.Counters["flow.memo.hits"])
			}
		default:
			t.Errorf("unknown event type %q", e.Type)
		}
	}
	if spans != 3 || metrics != 1 {
		t.Errorf("got %d span / %d metrics events, want 3 / 1", spans, metrics)
	}
}

func TestJSONLErrPropagation(t *testing.T) {
	tr := NewJSONL(failWriter{})
	tr.StartSpan("x").End()
	if tr.Err() == nil {
		t.Fatal("write failure not reported")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, os.ErrClosed }

// TestWriteTextGolden locks the GET /metrics text dump: sorted by metric
// name, one line per instrument, against testdata/metrics.golden.txt —
// the metrics counterpart of the trace.golden.jsonl schema lock.
func TestWriteTextGolden(t *testing.T) {
	reg := NewRegistry()
	// Registration order is deliberately unsorted: the dump must not
	// depend on it.
	reg.Gauge("serve.inflight").Set(3)
	reg.Counter("serve.requests").Add(42)
	reg.Histogram("serve.request.seconds", 0.1, 1).Observe(0.125)
	reg.Counter("exec.tasks").Add(7)
	reg.Counter("serve.memo.hits").Add(5)
	reg.Gauge("exec.pool.width").Set(8)
	reg.Histogram("flow.stage.seconds.route").Observe(0.25)
	reg.Histogram("flow.stage.seconds.route").Observe(0.5)

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden.txt")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("metrics text dump drifted from golden\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	// The dump must be sorted by name and repeatable.
	var names []string
	for _, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
		fields := bytes.Fields(line)
		if len(fields) < 3 {
			t.Fatalf("malformed line %q", line)
		}
		names = append(names, string(fields[1]))
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("metric names not sorted: %v", names)
	}
	var again bytes.Buffer
	if err := reg.WriteText(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("WriteText not deterministic across calls")
	}
}

func TestWriteTextNilRegistry(t *testing.T) {
	var r *Registry
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry: err=%v len=%d", err, buf.Len())
	}
}
