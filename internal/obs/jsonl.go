package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one JSON-lines trace record. The schema is part of the public
// CLI contract (m3dflow/m3ddse/m3dreport -trace) and is locked by a
// golden test:
//
//	{"type":"span","name":"flow.route","attrs":{"cs":"8","style":"3D"},"t_us":1234,"dur_us":56}
//	{"type":"metrics","metrics":{"counters":{...},"gauges":{...},"histograms":{...}}}
//
// t_us is the span start in microseconds since the tracer was created;
// dur_us is the span wall time in microseconds.
type Event struct {
	Type    string            `json:"type"`
	Name    string            `json:"name,omitempty"`
	Attrs   map[string]string `json:"attrs,omitempty"`
	StartUS int64             `json:"t_us,omitempty"`
	DurUS   int64             `json:"dur_us,omitempty"`
	Metrics *Snapshot         `json:"metrics,omitempty"`
}

// JSONL is a Tracer that appends one JSON object per finished span to an
// io.Writer (a trace file, a pipe, io.Discard). Writes are serialized by
// an internal mutex; span timing itself is lock-free until End.
type JSONL struct {
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time

	mu    sync.Mutex
	enc   *json.Encoder
	epoch time.Time
	err   error
}

// NewJSONL returns a JSON-lines tracer writing to w. Span timestamps are
// relative to this call.
func NewJSONL(w io.Writer) *JSONL {
	t := &JSONL{enc: json.NewEncoder(w)}
	t.epoch = t.clock()
	return t
}

func (t *JSONL) clock() time.Time {
	if t.Now != nil {
		return t.Now()
	}
	return now()
}

// Err returns the first write/encode error, if any. Tracing never fails
// the traced computation; callers that care (the CLIs) check Err at exit.
func (t *JSONL) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

func (t *JSONL) emit(e Event) {
	t.mu.Lock()
	if err := t.enc.Encode(e); err != nil && t.err == nil {
		t.err = err
	}
	t.mu.Unlock()
}

// StartSpan implements Tracer.
func (t *JSONL) StartSpan(name string, attrs ...Attr) Span {
	return &jsonlSpan{t: t, name: name, attrs: append([]Attr(nil), attrs...), start: t.clock()}
}

// EmitMetrics appends a metrics event holding the registry's snapshot.
// A nil registry emits an empty snapshot.
func (t *JSONL) EmitMetrics(r *Registry) {
	snap := r.Snapshot()
	t.emit(Event{Type: "metrics", Metrics: &snap})
}

type jsonlSpan struct {
	t     *JSONL
	name  string
	mu    sync.Mutex
	attrs []Attr
	start time.Time
	done  bool
}

func (s *jsonlSpan) SetAttr(attrs ...Attr) {
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

func (s *jsonlSpan) End() {
	end := s.t.clock()
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	var attrs map[string]string
	if len(s.attrs) > 0 {
		attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			attrs[a.Key] = a.Value
		}
	}
	e := Event{
		Type:    "span",
		Name:    s.name,
		Attrs:   attrs,
		StartUS: s.start.Sub(s.t.epoch).Microseconds(),
		DurUS:   end.Sub(s.start).Microseconds(),
	}
	s.mu.Unlock()
	s.t.emit(e)
}
