// Package obs is the zero-dependency observability substrate for the flow
// and sweep engines: a Tracer interface producing wall-clock spans (stage
// name, tier, attributes), an atomic metrics Registry
// (counters/gauges/histograms), and pluggable sinks — a no-op default, an
// in-memory Recorder for tests, and a JSON-lines event writer for the
// CLIs. Everything here is stdlib-only and safe for concurrent use.
//
// The package is wired through the public option surface
// (exec.WithTracer / exec.WithMetrics, re-exported as m3d.WithTracer /
// m3d.WithMetrics) and through context values (ContextWithTracer /
// TracerFrom), so instrumented code deep inside the flow needs neither a
// global nor a new parameter. Disabled instrumentation is the default and
// is engineered to be near-free: a nil Tracer skips span allocation
// entirely, and every Registry/Counter/Gauge/Histogram method is
// nil-receiver-safe so call sites need no guards.
package obs

import (
	"context"
	"strconv"
	"time"
)

// Attr is one key/value span attribute. Values are strings so that every
// sink (including the JSON-lines writer) renders them identically.
type Attr struct {
	Key   string
	Value string
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: strconv.Itoa(v)} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: strconv.FormatBool(v)} }

// Float builds a float attribute (shortest round-trip formatting).
func Float(k string, v float64) Attr {
	return Attr{Key: k, Value: strconv.FormatFloat(v, 'g', -1, 64)}
}

// Span is one timed operation. End must be called exactly once; SetAttr
// may be called any time before End.
type Span interface {
	SetAttr(attrs ...Attr)
	End()
}

// Tracer starts spans. Implementations must be safe for concurrent use.
type Tracer interface {
	StartSpan(name string, attrs ...Attr) Span
}

// nop implementations.

type nopTracer struct{}

type nopSpanT struct{}

func (nopTracer) StartSpan(string, ...Attr) Span { return nopSpan }

func (nopSpanT) SetAttr(...Attr) {}
func (nopSpanT) End()            {}

var nopSpan Span = nopSpanT{}

// Nop returns the no-op tracer: spans cost two interface calls and no
// allocation.
func Nop() Tracer { return nopTracer{} }

// Context plumbing. A nil tracer/registry is never stored; TracerFrom and
// MetricsFrom return nil when nothing is attached, which every
// instrumentation site treats as "disabled".

type tracerKey struct{}

type metricsKey struct{}

// ContextWithTracer returns a context carrying t. A nil t returns ctx
// unchanged.
func ContextWithTracer(ctx context.Context, t Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns the tracer attached to ctx, or nil.
func TracerFrom(ctx context.Context) Tracer {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(tracerKey{}).(Tracer)
	return t
}

// ContextWithMetrics returns a context carrying r. A nil r returns ctx
// unchanged.
func ContextWithMetrics(ctx context.Context, r *Registry) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, metricsKey{}, r)
}

// MetricsFrom returns the registry attached to ctx, or nil.
func MetricsFrom(ctx context.Context) *Registry {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(metricsKey{}).(*Registry)
	return r
}

// StartSpan starts a span on the context's tracer, or returns the no-op
// span when none is attached.
func StartSpan(ctx context.Context, name string, attrs ...Attr) Span {
	if t := TracerFrom(ctx); t != nil {
		return t.StartSpan(name, attrs...)
	}
	return nopSpan
}

// now is the clock used by tracers without an explicit override.
func now() time.Time { return time.Now() }
