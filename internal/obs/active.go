package obs

import "sync"

// ActiveTracker is a Tracer middleware that remembers which spans are
// currently open, exposing the innermost one by name. It is how the job
// tier derives live progress from instrumentation that already exists:
// the flow emits one "flow.<stage>" span per stage, so wrapping a job's
// tracer in an ActiveTracker makes "which stage is the job in right now"
// a single Active() call — no second progress channel threaded through
// the stages.
//
// Spans are tracked as a LIFO of open names (span identity, not name
// equality, so duplicate names nest correctly). Forwarding to the
// wrapped tracer (nil = none) is unchanged. Safe for concurrent use;
// with concurrent spans Active reports the most recently started one
// still open, which is the natural "what is happening now" answer for a
// progress line.
type ActiveTracker struct {
	next Tracer

	mu   sync.Mutex
	open []*activeSpan
}

// NewActiveTracker returns a tracker forwarding to next (nil forwards
// nowhere and only tracks).
func NewActiveTracker(next Tracer) *ActiveTracker {
	return &ActiveTracker{next: next}
}

// Active returns the name of the innermost open span, or "".
func (a *ActiveTracker) Active() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	if n := len(a.open); n > 0 {
		return a.open[n-1].name
	}
	return ""
}

// StartSpan implements Tracer.
func (a *ActiveTracker) StartSpan(name string, attrs ...Attr) Span {
	sp := &activeSpan{name: name, owner: a}
	if a.next != nil {
		sp.next = a.next.StartSpan(name, attrs...)
	}
	a.mu.Lock()
	a.open = append(a.open, sp)
	a.mu.Unlock()
	return sp
}

type activeSpan struct {
	name  string
	owner *ActiveTracker
	next  Span
	once  sync.Once
}

func (s *activeSpan) SetAttr(attrs ...Attr) {
	if s.next != nil {
		s.next.SetAttr(attrs...)
	}
}

func (s *activeSpan) End() {
	s.once.Do(func() {
		a := s.owner
		a.mu.Lock()
		for i := len(a.open) - 1; i >= 0; i-- {
			if a.open[i] == s {
				a.open = append(a.open[:i], a.open[i+1:]...)
				break
			}
		}
		a.mu.Unlock()
	})
	if s.next != nil {
		s.next.End()
	}
}
