package obs

import (
	"sync"
	"time"
)

// SpanRecord is one finished span as captured by the in-memory Recorder.
type SpanRecord struct {
	Name       string
	Attrs      []Attr
	Start, End time.Time
}

// Dur returns the span's wall time.
func (s SpanRecord) Dur() time.Duration { return s.End.Sub(s.Start) }

// Attr returns the value of the named attribute ("" when absent).
func (s SpanRecord) Attr(key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Recorder is an in-memory Tracer for tests: it appends a SpanRecord at
// every span End, in End order (for strictly sequential stages this is
// also start order). Safe for concurrent use.
type Recorder struct {
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time

	mu    sync.Mutex
	spans []SpanRecord
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

func (r *Recorder) clock() time.Time {
	if r.Now != nil {
		return r.Now()
	}
	return now()
}

// StartSpan implements Tracer.
func (r *Recorder) StartSpan(name string, attrs ...Attr) Span {
	return &recSpan{rec: r, name: name, attrs: append([]Attr(nil), attrs...), start: r.clock()}
}

// Spans returns a copy of the finished spans in End order.
func (r *Recorder) Spans() []SpanRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]SpanRecord(nil), r.spans...)
}

// Names returns the finished span names in End order.
func (r *Recorder) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.spans))
	for i, s := range r.spans {
		out[i] = s.Name
	}
	return out
}

// Find returns the finished spans with the given name, in End order.
func (r *Recorder) Find(name string) []SpanRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []SpanRecord
	for _, s := range r.spans {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// Reset drops every recorded span.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.spans = nil
	r.mu.Unlock()
}

type recSpan struct {
	rec   *Recorder
	name  string
	mu    sync.Mutex
	attrs []Attr
	start time.Time
	done  bool
}

func (s *recSpan) SetAttr(attrs ...Attr) {
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

func (s *recSpan) End() {
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	rec := SpanRecord{Name: s.name, Attrs: s.attrs, Start: s.start, End: s.rec.clock()}
	s.mu.Unlock()
	s.rec.mu.Lock()
	s.rec.spans = append(s.rec.spans, rec)
	s.rec.mu.Unlock()
}
