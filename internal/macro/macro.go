// Package macro generates the hard macros of the accelerator SoC: on-chip
// RRAM memory banks (the paper's BEOL memory) and SRAM buffers. Each
// generator derives geometry from the PDK bit-cell model and emits a
// netlist.MacroRef whose per-tier blockages encode the paper's central
// physical-design fact:
//
//   - In the 2D baseline the RRAM access transistors are Si FETs directly
//     under the array (Fig. 3), so the array rectangle fully blocks the
//     Si CMOS tier — no logic can be placed beneath it.
//   - In the M3D design the access transistors are CNFETs above the array
//     (Fig. 4a), so the array blocks only the CNFET tier and the Si CMOS
//     area underneath is freed for additional computing sub-systems; only
//     the memory peripherals (sense amps, controllers) still block Si.
package macro

import (
	"fmt"
	"math"

	"m3d/internal/geom"
	"m3d/internal/netlist"
	"m3d/internal/tech"
)

// Style selects how a memory macro's access devices are implemented.
type Style int

const (
	// Style2D uses Si access FETs under the array (baseline 2D chips).
	Style2D Style = iota
	// Style3D uses BEOL CNFET access transistors above the array (M3D).
	Style3D
)

// String names the style.
func (s Style) String() string {
	if s == Style2D {
		return "2D"
	}
	return "M3D"
}

// periphAreaFrac is the memory peripheral (sense amplifiers, write drivers,
// controllers, decoders) area as a fraction of the cell-array area. These
// circuits remain Si CMOS in both styles.
const periphAreaFrac = 0.14

// RRAMBankSpec describes one RRAM bank to generate.
type RRAMBankSpec struct {
	// CapacityBits is the bank storage capacity.
	CapacityBits int64
	// WordBits is the access word width (bits per read/write).
	WordBits int
	// Style selects 2D (Si access FETs) or M3D (CNFET access FETs).
	Style Style
	// Aspect is the width/height ratio of the macro (default 1).
	Aspect float64
}

// RRAMBank is a generated RRAM bank macro with its performance model.
type RRAMBank struct {
	Spec RRAMBankSpec
	Ref  *netlist.MacroRef

	// ArrayRect / PeriphRect partition the macro footprint (macro-relative
	// coordinates): the bit-cell array and the Si peripheral strip.
	ArrayRect  geom.Rect
	PeriphRect geom.Rect

	// ReadEnergyJPerBit / WriteEnergyJPerBit include peripheral energy.
	ReadEnergyJPerBit  float64
	WriteEnergyJPerBit float64
	// ReadLatencyS is the bank access latency.
	ReadLatencyS float64
	// BandwidthBitsPerCycle is the sustained read bandwidth at the SoC
	// clock (one word per access cycle).
	BandwidthBitsPerCycle int
	// ILVCount is the number of inter-layer vias the array consumes.
	ILVCount int64
}

// NewRRAMBank generates an RRAM bank macro from the spec.
func NewRRAMBank(p *tech.PDK, spec RRAMBankSpec) (*RRAMBank, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("macro: invalid PDK: %w", err)
	}
	if spec.CapacityBits <= 0 {
		return nil, fmt.Errorf("macro: bank capacity must be positive, got %d", spec.CapacityBits)
	}
	if spec.WordBits <= 0 {
		return nil, fmt.Errorf("macro: word width must be positive, got %d", spec.WordBits)
	}
	if spec.Aspect == 0 {
		spec.Aspect = 1
	}
	if spec.Aspect < 0.05 || spec.Aspect > 20 {
		return nil, fmt.Errorf("macro: unreasonable aspect ratio %g", spec.Aspect)
	}

	var perBit float64
	if spec.Style == Style2D {
		perBit = p.RRAMAreaPerBit2D()
	} else {
		perBit = p.RRAMAreaPerBit3D()
	}
	arrayArea := float64(spec.CapacityBits) * perBit
	periphArea := arrayArea * periphAreaFrac
	totalArea := arrayArea + periphArea

	w := int64(math.Sqrt(totalArea * spec.Aspect))
	h := int64(totalArea / float64(w))
	// Peripheral strip along the bottom.
	periphH := int64(periphArea / float64(w))
	arrayRect := geom.R(0, periphH, w, h)
	periphRect := geom.R(0, 0, w, periphH)

	var blk []netlist.Blockage
	switch spec.Style {
	case Style2D:
		// Access FETs occupy Si under the whole array; peripherals too.
		blk = append(blk,
			netlist.Blockage{Tier: tech.TierSiCMOS, Rect: geom.R(0, 0, w, h)},
			netlist.Blockage{Tier: tech.TierCNFET, Rect: geom.R(0, 0, w, h)},
		)
	case Style3D:
		// Array blocks only the CNFET tier; Si is freed except peripherals.
		blk = append(blk,
			netlist.Blockage{Tier: tech.TierCNFET, Rect: arrayRect},
			netlist.Blockage{Tier: tech.TierSiCMOS, Rect: periphRect},
		)
	default:
		return nil, fmt.Errorf("macro: unknown style %d", spec.Style)
	}

	// Peripheral energy adder: sense amps + decode ≈ 60% of cell energy at
	// this node.
	readE := p.RRAM.ReadEnergyPJPerBit * 1.6 * 1e-12
	writeE := p.RRAM.WriteEnergyPJPerBit * 1.25 * 1e-12

	bank := &RRAMBank{
		Spec: spec,
		Ref: &netlist.MacroRef{
			Kind:           fmt.Sprintf("rram_bank_%s", spec.Style),
			Width:          w,
			Height:         h,
			PinCapF:        8e-15,
			Blockages:      blk,
			LeakageW:       1e-6 * float64(spec.CapacityBits) / 1e6, // RRAM is non-volatile: negligible
			AccessEnergyJ:  readE * float64(spec.WordBits),
			AccessLatencyS: p.RRAM.ReadLatencyNs * 1e-9,
		},
		ArrayRect:             arrayRect,
		PeriphRect:            periphRect,
		ReadEnergyJPerBit:     readE,
		WriteEnergyJPerBit:    writeE,
		ReadLatencyS:          p.RRAM.ReadLatencyNs * 1e-9,
		BandwidthBitsPerCycle: spec.WordBits,
		ILVCount:              spec.CapacityBits / int64(p.RRAM.BitsPerCell) * int64(p.RRAM.ViasPerCell),
	}
	return bank, nil
}

// CellArrayAreaNM2 returns the bit-cell array area of the bank (the paper's
// A_M^cells contribution).
func (b *RRAMBank) CellArrayAreaNM2() int64 { return b.ArrayRect.Area() }

// PeriphAreaNM2 returns the Si peripheral area (the paper's A_M^perif
// contribution).
func (b *RRAMBank) PeriphAreaNM2() int64 { return b.PeriphRect.Area() }

// FreedSiAreaNM2 returns the Si CMOS area this bank releases when moving
// from 2D to M3D style: the full array footprint (access FETs move to the
// CNFET tier). Zero for 2D-style banks.
func (b *RRAMBank) FreedSiAreaNM2() int64 {
	if b.Spec.Style == Style2D {
		return 0
	}
	return b.ArrayRect.Area()
}

// BankSet partitions a total capacity into n equal banks, the mechanism the
// M3D design uses to scale total memory bandwidth by n×.
func BankSet(p *tech.PDK, totalBits int64, n int, wordBits int, style Style) ([]*RRAMBank, error) {
	if n <= 0 {
		return nil, fmt.Errorf("macro: bank count must be positive, got %d", n)
	}
	if totalBits%int64(n) != 0 {
		return nil, fmt.Errorf("macro: capacity %d does not divide into %d banks", totalBits, n)
	}
	out := make([]*RRAMBank, 0, n)
	for i := 0; i < n; i++ {
		b, err := NewRRAMBank(p, RRAMBankSpec{
			CapacityBits: totalBits / int64(n),
			WordBits:     wordBits,
			Style:        style,
			// Tall, narrow banks: n banks side by side occupy the same
			// square as the single-bank baseline (iso-area tiling).
			Aspect: 1.0 / float64(n),
		})
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// SRAMSpec describes an on-chip SRAM buffer macro.
type SRAMSpec struct {
	CapacityBits int64
	WordBits     int
	Aspect       float64
}

// SRAM is a generated SRAM buffer macro. SRAM is a FEOL (Si CMOS) memory:
// it always fully blocks the Si tier and, unlike RRAM, cannot move to the
// BEOL — which is why the paper's Obs. 3 notes a SRAM-based 2D baseline
// would be even larger (the 6T cell is ~2× less dense than the 1T1R RRAM).
type SRAM struct {
	Spec SRAMSpec
	Ref  *netlist.MacroRef

	ReadEnergyJPerBit  float64
	WriteEnergyJPerBit float64
	// IdleWPerBit is the retention (idle) power — nonzero, unlike RRAM.
	IdleWPerBit float64
}

// sramDensityVsRRAM is the SRAM bit-cell area relative to the 2D RRAM cell
// (Obs. 3: "a Si CMOS SRAM that is 2× less dense").
const sramDensityVsRRAM = 2.0

// NewSRAM generates an SRAM buffer macro.
func NewSRAM(p *tech.PDK, spec SRAMSpec) (*SRAM, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("macro: invalid PDK: %w", err)
	}
	if spec.CapacityBits <= 0 {
		return nil, fmt.Errorf("macro: SRAM capacity must be positive, got %d", spec.CapacityBits)
	}
	if spec.WordBits <= 0 {
		return nil, fmt.Errorf("macro: SRAM word width must be positive, got %d", spec.WordBits)
	}
	if spec.Aspect == 0 {
		spec.Aspect = 2 // buffers are typically wide and short
	}
	cellArea := p.RRAMAreaPerBit2D() * sramDensityVsRRAM
	totalArea := float64(spec.CapacityBits) * cellArea * (1 + periphAreaFrac)
	w := int64(math.Sqrt(totalArea * spec.Aspect))
	h := int64(totalArea / float64(w))

	idlePerBit := 5e-12 // W/bit retention at 130 nm
	s := &SRAM{
		Spec: spec,
		Ref: &netlist.MacroRef{
			Kind:    "sram",
			Width:   w,
			Height:  h,
			PinCapF: 5e-15,
			// SRAM occupies only its "corresponding layer" (Si CMOS): in an
			// M3D floorplan it can sit under a BEOL RRAM array, in the
			// freed space.
			Blockages: []netlist.Blockage{
				{Tier: tech.TierSiCMOS, Rect: geom.R(0, 0, w, h)},
			},
			LeakageW:       idlePerBit * float64(spec.CapacityBits),
			AccessEnergyJ:  0.05e-12 * float64(spec.WordBits),
			AccessLatencyS: 1.2e-9,
		},
		ReadEnergyJPerBit:  0.05e-12,
		WriteEnergyJPerBit: 0.06e-12,
		IdleWPerBit:        idlePerBit,
	}
	return s, nil
}
