package macro

import (
	"testing"
	"testing/quick"

	"m3d/internal/tech"
)

const mbit = int64(1) << 20

func TestRRAMBankGeometry(t *testing.T) {
	p := tech.Default130()
	b, err := NewRRAMBank(p, RRAMBankSpec{CapacityBits: 64 * mbit, WordBits: 256, Style: Style2D})
	if err != nil {
		t.Fatal(err)
	}
	if b.Ref.Width <= 0 || b.Ref.Height <= 0 {
		t.Fatal("degenerate macro")
	}
	// Array + peripheral tile the macro (up to integer rounding).
	sum := b.ArrayRect.Area() + b.PeriphRect.Area()
	total := b.Ref.Width * b.Ref.Height
	if diff := total - sum; diff < 0 || diff > total/100 {
		t.Errorf("array+periph = %d, macro = %d", sum, total)
	}
	// Array area ≈ capacity × bitcell.
	want := int64(64 * float64(mbit) * p.RRAMAreaPerBit2D())
	got := b.CellArrayAreaNM2()
	if ratio := float64(got) / float64(want); ratio < 0.98 || ratio > 1.02 {
		t.Errorf("array area = %d, want ≈%d", got, want)
	}
}

func TestBlockageSemantics2DVs3D(t *testing.T) {
	p := tech.Default130()
	spec := RRAMBankSpec{CapacityBits: 8 * mbit, WordBits: 128}

	spec.Style = Style2D
	b2, err := NewRRAMBank(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Style = Style3D
	b3, err := NewRRAMBank(p, spec)
	if err != nil {
		t.Fatal(err)
	}

	siBlocked := func(b *RRAMBank) int64 {
		var a int64
		for _, blk := range b.Ref.Blockages {
			if blk.Tier == tech.TierSiCMOS {
				a += blk.Rect.Area()
			}
		}
		return a
	}
	// The 2D bank blocks the whole footprint on Si; the M3D bank blocks
	// only the peripheral strip.
	if siBlocked(b2) != b2.Ref.Width*b2.Ref.Height {
		t.Errorf("2D bank should block all Si: %d vs %d", siBlocked(b2), b2.Ref.Width*b2.Ref.Height)
	}
	if siBlocked(b3) != b3.PeriphRect.Area() {
		t.Errorf("3D bank should block only peripherals on Si: %d vs %d", siBlocked(b3), b3.PeriphRect.Area())
	}
	// Freed Si area: 0 for 2D, the array footprint for 3D.
	if b2.FreedSiAreaNM2() != 0 {
		t.Error("2D bank frees no Si")
	}
	if b3.FreedSiAreaNM2() != b3.ArrayRect.Area() {
		t.Error("3D bank must free the array footprint")
	}
}

func TestIsoCapacityIsoAreaAcrossStyles(t *testing.T) {
	// At δ=1 the M3D and 2D banks have the same footprint (iso-capacity,
	// iso-area) — the M3D benefit is *where* the blockage lands, not size.
	p := tech.Default130()
	b2, _ := NewRRAMBank(p, RRAMBankSpec{CapacityBits: 16 * mbit, WordBits: 64, Style: Style2D})
	b3, _ := NewRRAMBank(p, RRAMBankSpec{CapacityBits: 16 * mbit, WordBits: 64, Style: Style3D})
	if b2.Ref.Width != b3.Ref.Width || b2.Ref.Height != b3.Ref.Height {
		t.Errorf("footprints differ: 2D %dx%d vs 3D %dx%d",
			b2.Ref.Width, b2.Ref.Height, b3.Ref.Width, b3.Ref.Height)
	}
}

func TestWidthRelaxGrowsOnly3D(t *testing.T) {
	base := tech.Default130()
	relaxed := base.WithCNFETWidthRelax(2.0)
	spec := RRAMBankSpec{CapacityBits: 16 * mbit, WordBits: 64, Style: Style3D}
	b1, _ := NewRRAMBank(base, spec)
	b2, _ := NewRRAMBank(relaxed, spec)
	if b2.CellArrayAreaNM2() <= b1.CellArrayAreaNM2() {
		t.Error("δ=2 must grow the M3D array")
	}
	spec.Style = Style2D
	c1, _ := NewRRAMBank(base, spec)
	c2, _ := NewRRAMBank(relaxed, spec)
	if c2.CellArrayAreaNM2() != c1.CellArrayAreaNM2() {
		t.Error("δ must not affect the 2D (Si access FET) array")
	}
}

func TestBankSet(t *testing.T) {
	p := tech.Default130()
	banks, err := BankSet(p, 64*mbit, 8, 256, Style3D)
	if err != nil {
		t.Fatal(err)
	}
	if len(banks) != 8 {
		t.Fatalf("banks = %d, want 8", len(banks))
	}
	var totalBW int
	for _, b := range banks {
		if b.Spec.CapacityBits != 8*mbit {
			t.Errorf("bank capacity = %d, want %d", b.Spec.CapacityBits, 8*mbit)
		}
		totalBW += b.BandwidthBitsPerCycle
	}
	// 8 banks provide 8× the single-bank bandwidth.
	if totalBW != 8*256 {
		t.Errorf("total bandwidth = %d, want %d", totalBW, 8*256)
	}
}

func TestBankSetErrors(t *testing.T) {
	p := tech.Default130()
	if _, err := BankSet(p, 64*mbit, 0, 256, Style3D); err == nil {
		t.Error("zero banks should fail")
	}
	if _, err := BankSet(p, 7, 2, 256, Style3D); err == nil {
		t.Error("non-divisible capacity should fail")
	}
}

func TestRRAMBankSpecValidation(t *testing.T) {
	p := tech.Default130()
	bad := []RRAMBankSpec{
		{CapacityBits: 0, WordBits: 8},
		{CapacityBits: -5, WordBits: 8},
		{CapacityBits: 1024, WordBits: 0},
		{CapacityBits: 1024, WordBits: 8, Aspect: 100},
	}
	for i, spec := range bad {
		if _, err := NewRRAMBank(p, spec); err == nil {
			t.Errorf("spec %d should be rejected", i)
		}
	}
	p2 := tech.Default130()
	p2.ILVPitch = 0
	if _, err := NewRRAMBank(p2, RRAMBankSpec{CapacityBits: 1024, WordBits: 8}); err == nil {
		t.Error("invalid PDK should be rejected")
	}
}

func TestSRAMDensityPenalty(t *testing.T) {
	p := tech.Default130()
	s, err := NewSRAM(p, SRAMSpec{CapacityBits: 2 * mbit, WordBits: 64})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRRAMBank(p, RRAMBankSpec{CapacityBits: 2 * mbit, WordBits: 64, Style: Style2D})
	if err != nil {
		t.Fatal(err)
	}
	sa := s.Ref.Width * s.Ref.Height
	ra := r.Ref.Width * r.Ref.Height
	ratio := float64(sa) / float64(ra)
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("SRAM should be ~2x the area of iso-capacity RRAM, got %.2fx", ratio)
	}
}

func TestSRAMAlwaysBlocksSi(t *testing.T) {
	p := tech.Default130()
	s, _ := NewSRAM(p, SRAMSpec{CapacityBits: 1 * mbit, WordBits: 32})
	var si int64
	for _, blk := range s.Ref.Blockages {
		if blk.Tier == tech.TierSiCMOS {
			si += blk.Rect.Area()
		}
	}
	if si != s.Ref.Width*s.Ref.Height {
		t.Error("SRAM must fully block the Si tier")
	}
}

func TestSRAMIdlePowerNonzeroRRAMNegligible(t *testing.T) {
	p := tech.Default130()
	s, _ := NewSRAM(p, SRAMSpec{CapacityBits: 16 * mbit, WordBits: 64})
	r, _ := NewRRAMBank(p, RRAMBankSpec{CapacityBits: 16 * mbit, WordBits: 64, Style: Style2D})
	if s.Ref.LeakageW <= r.Ref.LeakageW {
		t.Error("SRAM retention power should exceed RRAM leakage (non-volatility)")
	}
}

func TestSRAMValidation(t *testing.T) {
	p := tech.Default130()
	if _, err := NewSRAM(p, SRAMSpec{CapacityBits: 0, WordBits: 8}); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, err := NewSRAM(p, SRAMSpec{CapacityBits: 8, WordBits: 0}); err == nil {
		t.Error("zero word should fail")
	}
}

func TestBankAreaLinearInCapacity(t *testing.T) {
	p := tech.Default130()
	f := func(mbRaw uint8) bool {
		mb := 1 + int64(mbRaw)%64
		b1, err1 := NewRRAMBank(p, RRAMBankSpec{CapacityBits: mb * mbit, WordBits: 64, Style: Style3D})
		b2, err2 := NewRRAMBank(p, RRAMBankSpec{CapacityBits: 2 * mb * mbit, WordBits: 64, Style: Style3D})
		if err1 != nil || err2 != nil {
			return false
		}
		ratio := float64(b2.CellArrayAreaNM2()) / float64(b1.CellArrayAreaNM2())
		return ratio > 1.98 && ratio < 2.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestILVCount(t *testing.T) {
	p := tech.Default130()
	b, _ := NewRRAMBank(p, RRAMBankSpec{CapacityBits: 1024, WordBits: 8, Style: Style3D})
	wantCells := 1024 / int64(p.RRAM.BitsPerCell)
	if b.ILVCount != wantCells*int64(p.RRAM.ViasPerCell) {
		t.Errorf("ILV count = %d, want %d", b.ILVCount, wantCells*int64(p.RRAM.ViasPerCell))
	}
}

func TestStyleString(t *testing.T) {
	if Style2D.String() != "2D" || Style3D.String() != "M3D" {
		t.Error("style names wrong")
	}
}
