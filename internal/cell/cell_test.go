package cell

import (
	"testing"
	"testing/quick"

	"m3d/internal/tech"
)

func siLib(t *testing.T) *Library {
	t.Helper()
	lib, err := NewLibrary(tech.Default130(), tech.TierSiCMOS)
	if err != nil {
		t.Fatalf("NewLibrary(Si): %v", err)
	}
	return lib
}

func cnLib(t *testing.T) *Library {
	t.Helper()
	lib, err := NewLibrary(tech.Default130(), tech.TierCNFET)
	if err != nil {
		t.Fatalf("NewLibrary(CNFET): %v", err)
	}
	return lib
}

func TestLibraryPopulation(t *testing.T) {
	lib := siLib(t)
	// 14 multi-drive protos × 4 drives + 2 tie cells.
	want := 14*4 + 2
	if lib.Size() != want {
		t.Errorf("library size = %d, want %d", lib.Size(), want)
	}
	if _, ok := lib.Cell("NAND2_X2"); !ok {
		t.Error("missing NAND2_X2")
	}
	if _, ok := lib.Cell("TIEHI_X4"); ok {
		t.Error("tie cells should only exist at X1")
	}
}

func TestRRAMTierRejected(t *testing.T) {
	if _, err := NewLibrary(tech.Default130(), tech.TierRRAM); err == nil {
		t.Error("RRAM tier must not host standard cells")
	}
}

func TestInvalidPDKRejected(t *testing.T) {
	p := tech.Default130()
	p.VDD = -1
	if _, err := NewLibrary(p, tech.TierSiCMOS); err == nil {
		t.Error("invalid PDK should be rejected")
	}
}

func TestDriveStrengthMonotonic(t *testing.T) {
	lib := siLib(t)
	for _, k := range []Kind{Inv, Nand2, DFF, FullAdder} {
		prev := -1.0
		for _, d := range []int{1, 2, 4, 8} {
			c, ok := lib.Pick(k, d)
			if !ok {
				t.Fatalf("missing %v_X%d", k, d)
			}
			if prev > 0 && c.DriveResOhm >= prev {
				t.Errorf("%v_X%d: drive resistance should fall with drive", k, d)
			}
			prev = c.DriveResOhm
			if c.Sites <= 0 || c.AreaNM2 <= 0 {
				t.Errorf("%v_X%d: non-positive footprint", k, d)
			}
		}
	}
}

func TestAreaGrowsWithDrive(t *testing.T) {
	lib := siLib(t)
	x1 := lib.MustPick(Inv, 1)
	x8 := lib.MustPick(Inv, 8)
	if x8.AreaNM2 <= x1.AreaNM2 {
		t.Errorf("X8 inverter should be bigger than X1: %d vs %d", x8.AreaNM2, x1.AreaNM2)
	}
}

func TestDelayModel(t *testing.T) {
	lib := siLib(t)
	inv := lib.MustPick(Inv, 1)
	unloaded := inv.Delay(0)
	loaded := inv.Delay(10e-15)
	if unloaded <= 0 {
		t.Error("intrinsic delay must be positive")
	}
	if loaded <= unloaded {
		t.Error("delay must increase with load")
	}
	// A stronger cell is faster into the same load.
	inv8 := lib.MustPick(Inv, 8)
	if inv8.Delay(10e-15) >= inv.Delay(10e-15) {
		t.Error("X8 should beat X1 into 10fF")
	}
}

func TestCNFETLibrarySlower(t *testing.T) {
	si := siLib(t)
	cn := cnLib(t)
	load := 5e-15
	dSi := si.MustPick(Nand2, 1).Delay(load)
	dCn := cn.MustPick(Nand2, 1).Delay(load)
	if dCn <= dSi {
		t.Errorf("CNFET NAND2 should be slower than Si: %g vs %g", dCn, dSi)
	}
}

func TestSequentialCharacterization(t *testing.T) {
	lib := siLib(t)
	ff := lib.MustPick(DFF, 1)
	if !ff.Sequential {
		t.Fatal("DFF must be sequential")
	}
	if ff.SetupS <= 0 || ff.ClkQS <= 0 {
		t.Error("DFF needs positive setup and clk->q")
	}
	if lib.MustPick(Nand2, 1).Sequential {
		t.Error("NAND2 must not be sequential")
	}
}

func TestMustCellPanics(t *testing.T) {
	lib := siLib(t)
	defer func() {
		if recover() == nil {
			t.Error("MustCell should panic on a missing cell")
		}
	}()
	lib.MustCell("NOPE_X1")
}

func TestCellsSorted(t *testing.T) {
	lib := siLib(t)
	cs := lib.Cells()
	if len(cs) != lib.Size() {
		t.Fatalf("Cells() length %d != Size() %d", len(cs), lib.Size())
	}
	for i := 1; i < len(cs); i++ {
		if cs[i-1].Name >= cs[i].Name {
			t.Fatalf("cells not sorted: %s >= %s", cs[i-1].Name, cs[i].Name)
		}
	}
}

func TestUpsizeFor(t *testing.T) {
	lib := siLib(t)
	// A tiny load should be met by X1.
	c := lib.UpsizeFor(Inv, 0.1e-15, 1e-9)
	if c.Drive != 1 {
		t.Errorf("tiny load should pick X1, got X%d", c.Drive)
	}
	// An enormous load with an impossible target returns the strongest.
	c = lib.UpsizeFor(Inv, 1e-9, 1e-15)
	if c.Drive != 8 {
		t.Errorf("impossible target should pick X8, got X%d", c.Drive)
	}
	// The chosen cell always meets the target if any cell does.
	c4 := lib.MustPick(Inv, 4)
	load := 20e-15
	target := c4.Delay(load)
	got := lib.UpsizeFor(Inv, load, target)
	if got.Delay(load) > target {
		t.Errorf("UpsizeFor missed a feasible target: X%d delay %g > %g", got.Drive, got.Delay(load), target)
	}
}

func TestUpsizePropertyMeetsFeasibleTargets(t *testing.T) {
	lib := siLib(t)
	x8 := lib.MustPick(Nand2, 8)
	f := func(loadFF uint8, slackX uint8) bool {
		load := float64(loadFF) * 1e-15
		// Any target at or above the X8 delay is feasible.
		target := x8.Delay(load) * (1 + float64(slackX)/64.0)
		got := lib.UpsizeFor(Nand2, load, target)
		return got.Delay(load) <= target
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEnergyAndLeakagePositive(t *testing.T) {
	for _, lib := range []*Library{siLib(t), cnLib(t)} {
		for _, c := range lib.Cells() {
			if c.Kind == TieHi || c.Kind == TieLo {
				continue
			}
			if c.SwitchEnergyJ <= 0 {
				t.Errorf("%s/%s: switch energy %g", lib.Name, c.Name, c.SwitchEnergyJ)
			}
			if c.LeakageW <= 0 {
				t.Errorf("%s/%s: leakage %g", lib.Name, c.Name, c.LeakageW)
			}
		}
	}
}

func TestKindString(t *testing.T) {
	if Inv.String() != "INV" || DFF.String() != "DFF" {
		t.Error("kind names wrong")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should format")
	}
}
