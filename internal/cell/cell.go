// Package cell provides the standard cell library for the M3D PDK. Cells
// are characterized directly from the tech device models (a switch-level
// RC characterization in the spirit of an NLDM .lib): each cell carries its
// footprint in placement sites, pin capacitances, an effective drive
// resistance, intrinsic delay, switching energy, and leakage power.
//
// Two library variants exist per PDK: the FEOL Si CMOS library and the BEOL
// CNFET library (same cell set, weaker drive, used when the M3D flow places
// logic or memory access devices on the upper tier).
package cell

import (
	"fmt"
	"sort"

	"m3d/internal/tech"
)

// Kind enumerates the library cell functions.
type Kind int

// Library cell functions. DFF is the sequential element; the rest are
// combinational.
const (
	Inv Kind = iota
	Buf
	Nand2
	Nor2
	And2
	Or2
	Xor2
	Mux2
	Aoi22
	Maj3
	HalfAdder
	FullAdder
	DFF
	ClkBuf
	TieHi
	TieLo
)

var kindNames = map[Kind]string{
	Inv: "INV", Buf: "BUF", Nand2: "NAND2", Nor2: "NOR2", And2: "AND2",
	Or2: "OR2", Xor2: "XOR2", Mux2: "MUX2", Aoi22: "AOI22", Maj3: "MAJ3",
	HalfAdder: "HA", FullAdder: "FA", DFF: "DFF", ClkBuf: "CLKBUF",
	TieHi: "TIEHI", TieLo: "TIELO",
}

// String returns the library name of the cell function.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Cell is one characterized library cell at one drive strength.
type Cell struct {
	Name  string // e.g. "NAND2_X2"
	Kind  Kind
	Drive int       // drive strength multiplier (1, 2, 4, ...)
	Tier  tech.Tier // implementing tier (SiCMOS or CNFET)

	// Sites is the footprint width in placement sites; height is one row.
	Sites int
	// AreaNM2 is the cell area in nm².
	AreaNM2 int64

	// InputCapF is the capacitance of each input pin (F).
	InputCapF float64
	// NumInputs is the number of signal inputs (excluding clock).
	NumInputs int
	// Sequential marks flip-flops.
	Sequential bool

	// DriveResOhm is the effective output resistance (ohm).
	DriveResOhm float64
	// IntrinsicDelayS is the parasitic (unloaded) delay (s).
	IntrinsicDelayS float64
	// SwitchEnergyJ is the internal energy per output transition (J),
	// excluding the load.
	SwitchEnergyJ float64
	// LeakageW is the static leakage power (W).
	LeakageW float64

	// SetupS/ClkQS apply to sequential cells.
	SetupS float64
	ClkQS  float64
}

// Delay returns the cell propagation delay (s) into a load of cLoad farads.
func (c *Cell) Delay(cLoad float64) float64 {
	return c.IntrinsicDelayS + 0.69*c.DriveResOhm*cLoad
}

// dimensioning of each cell function: equivalent min-size transistor pairs
// (for area/cap/leakage) and logical effort style drive factor.
type proto struct {
	kind    Kind
	txPairs float64 // transistor pairs at drive 1 (area + leakage proxy)
	inCapX  float64 // input cap in units of min inverter input cap
	effortR float64 // drive resistance relative to min inverter
	parX    float64 // intrinsic delay in units of inverter FO1 delay
	inputs  int
	seq     bool
}

var protos = []proto{
	{Inv, 1, 1.0, 1.0, 1.0, 1, false},
	{Buf, 2, 1.0, 0.7, 2.0, 1, false},
	{Nand2, 2, 1.33, 1.0, 1.5, 2, false},
	{Nor2, 2, 1.67, 1.2, 1.6, 2, false},
	{And2, 3, 1.33, 0.9, 2.2, 2, false},
	{Or2, 3, 1.67, 1.0, 2.4, 2, false},
	{Xor2, 5, 2.0, 1.4, 3.0, 2, false},
	{Mux2, 5, 2.0, 1.3, 2.8, 3, false},
	{Aoi22, 4, 1.6, 1.3, 2.2, 4, false},
	{Maj3, 6, 1.8, 1.3, 2.6, 3, false},
	{HalfAdder, 8, 2.0, 1.4, 3.5, 2, false},
	{FullAdder, 14, 2.2, 1.5, 4.2, 3, false},
	{DFF, 12, 1.4, 1.1, 3.0, 1, true},
	{ClkBuf, 4, 1.2, 0.45, 2.0, 1, false},
	{TieHi, 1, 0, 1e6, 0, 0, false},
	{TieLo, 1, 0, 1e6, 0, 0, false},
}

// Library is a characterized cell library for one tier of one PDK.
type Library struct {
	Name  string
	Tier  tech.Tier
	PDK   *tech.PDK
	cells map[string]*Cell
}

// drives are the strengths characterized for every cell function.
var drives = []int{1, 2, 4, 8}

// NewLibrary characterizes a library for the given tier of the PDK.
// TierSiCMOS uses the Si FET; TierCNFET uses the (weaker) CNFET.
func NewLibrary(p *tech.PDK, tier tech.Tier) (*Library, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("cell: invalid PDK: %w", err)
	}
	var fet tech.FET
	switch tier {
	case tech.TierSiCMOS:
		fet = p.SiFET
	case tech.TierCNFET:
		fet = p.CNFET
	default:
		return nil, fmt.Errorf("cell: tier %v cannot host standard cells", tier)
	}
	lib := &Library{
		Name:  fmt.Sprintf("%s_%s", p.Name, tier),
		Tier:  tier,
		PDK:   p,
		cells: make(map[string]*Cell),
	}

	minW := fet.MinWidth
	r0 := fet.EffectiveResistance(p.VDD, minW)
	c0 := fet.GateCapF(minW) * 2 // P+N pair input cap
	fo1 := 0.69 * r0 * c0        // FO1 inverter delay scale
	// Area of one min transistor pair, snapped later to sites. The 5.3×
	// factor is layout overhead (wells, contacts, intra-cell routing,
	// pin access) typical of a 130 nm standard-cell template.
	pairArea := 5.3 * 2 * float64(fet.FootprintNM2PerUm) * float64(minW) / 1000.0
	leak0 := fet.IoffNAPerUm * (float64(minW) / 1000.0) * 1e-9 * p.VDD * 2

	for _, pr := range protos {
		for _, d := range drives {
			if (pr.kind == TieHi || pr.kind == TieLo) && d != 1 {
				continue
			}
			df := float64(d)
			area := pairArea * pr.txPairs * (0.6 + 0.4*df) // shared diffusion discount
			sites := int(area/float64(p.SiteWidth*p.RowHeight)) + 1
			c := &Cell{
				Name:            fmt.Sprintf("%s_X%d", pr.kind, d),
				Kind:            pr.kind,
				Drive:           d,
				Tier:            tier,
				Sites:           sites,
				AreaNM2:         int64(sites) * p.SiteWidth * p.RowHeight,
				InputCapF:       c0 * pr.inCapX * (0.5 + 0.5*df),
				NumInputs:       pr.inputs,
				Sequential:      pr.seq,
				DriveResOhm:     r0 * pr.effortR / df,
				IntrinsicDelayS: fo1 * pr.parX,
				SwitchEnergyJ:   0.5 * c0 * pr.txPairs * (0.6 + 0.4*df) * p.VDD * p.VDD,
				LeakageW:        leak0 * pr.txPairs * (0.6 + 0.4*df),
			}
			if pr.seq {
				c.SetupS = 2 * fo1
				c.ClkQS = 3 * fo1 / df
			}
			lib.cells[c.Name] = c
		}
	}
	return lib, nil
}

// Cell returns the named cell.
func (l *Library) Cell(name string) (*Cell, bool) {
	c, ok := l.cells[name]
	return c, ok
}

// MustCell returns the named cell or panics; for use with known-good names.
func (l *Library) MustCell(name string) *Cell {
	c, ok := l.cells[name]
	if !ok {
		panic(fmt.Sprintf("cell: library %s has no cell %q", l.Name, name))
	}
	return c
}

// Pick returns the cell of the given function at the given drive.
func (l *Library) Pick(k Kind, drive int) (*Cell, bool) {
	return l.Cell(fmt.Sprintf("%s_X%d", k, drive))
}

// MustPick returns the cell of the given function/drive or panics.
func (l *Library) MustPick(k Kind, drive int) *Cell {
	return l.MustCell(fmt.Sprintf("%s_X%d", k, drive))
}

// Cells returns all cells sorted by name.
func (l *Library) Cells() []*Cell {
	out := make([]*Cell, 0, len(l.cells))
	for _, c := range l.cells {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Size reports the number of cells in the library.
func (l *Library) Size() int { return len(l.cells) }

// UpsizeFor returns the weakest drive of kind k whose delay into cLoad meets
// target seconds, or the strongest available if none meets it.
func (l *Library) UpsizeFor(k Kind, cLoad, target float64) *Cell {
	var best *Cell
	for _, d := range drives {
		c, ok := l.Pick(k, d)
		if !ok {
			continue
		}
		best = c
		if c.Delay(cLoad) <= target {
			return c
		}
	}
	return best
}
