package exec

import (
	"os"
	"strconv"
	"sync"

	"m3d/internal/obs"
)

// CacheCapEnv is the environment variable that sets the entry budget of
// the process-wide memo caches (the analytic sweep cache, the serve
// coalescing caches) for deployments that opt into bounded memory. Unset,
// empty, or non-positive leaves them unbounded (the seed behaviour).
const CacheCapEnv = "M3D_CACHE_CAP"

// CacheCapFromEnv returns the M3D_CACHE_CAP budget, or 0 when the
// variable is unset or not a positive integer (meaning: stay unbounded).
func CacheCapFromEnv() int64 {
	if s := os.Getenv(CacheCapEnv); s != "" {
		if n, err := strconv.ParseInt(s, 10, 64); err == nil && n > 0 {
			return n
		}
	}
	return 0
}

// Cache is a concurrency-safe memoization table with single-flight
// semantics: for each key the compute function runs exactly once, even
// under concurrent Do calls; later (and concurrent) callers share the
// stored value and error. The zero value is ready to use and unbounded.
// Results must be treated as shared/immutable by callers.
//
// A Cache can opt into a size-aware LRU eviction policy with Bound: each
// completed entry carries a cost (1 by default, or a caller-supplied
// function of the value) and the least-recently-used completed entries
// are evicted once the total cost exceeds the budget. In-flight
// computations are charged a provisional cost of 1 and are never evicted
// — evicting them would admit a second concurrent computation of the
// same key, breaking the single-flight contract — so the entry count can
// transiently exceed the budget only while more than the budget's worth
// of distinct keys are computing simultaneously. Do/DoMetered callers
// always receive the value they waited for, evicted or not.
//
// Instrument attaches the policy's accounting to an obs.Registry
// (cache.evictions counter, cache.entries gauge). Both Bound and
// Instrument must be called before the cache is shared across
// goroutines.
type Cache[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*cacheEntry[K, V]

	// LRU policy (zero = unbounded). head is the most recently used
	// completed entry; tail the least. total counts provisional +
	// completed costs.
	maxCost int64
	costFn  func(V) int64
	head    *cacheEntry[K, V]
	tail    *cacheEntry[K, V]
	total   int64

	// Accounting sinks (nil-safe, see obs).
	evictions *obs.Counter
	entries   *obs.Gauge
}

type cacheEntry[K comparable, V any] struct {
	key  K
	once sync.Once
	val  V
	err  error

	// Guarded by Cache.mu.
	cost       int64
	linked     bool
	prev, next *cacheEntry[K, V]
}

// NewLRU returns a cache bounded at maxCost total cost with the given
// per-entry cost function (nil charges 1 per entry, making maxCost a
// plain entry-count capacity).
func NewLRU[K comparable, V any](maxCost int64, cost func(V) int64) *Cache[K, V] {
	c := &Cache[K, V]{}
	c.Bound(maxCost, cost)
	return c
}

// Bound sets the cache's size-aware LRU policy: evict least-recently-used
// completed entries once the summed entry costs exceed maxCost. cost
// computes one entry's cost from its value (called once, when the
// computation completes); nil — or a non-positive result — charges 1.
// maxCost ≤ 0 removes the bound (the zero-value behaviour). Set the
// policy before the cache is shared across goroutines.
func (c *Cache[K, V]) Bound(maxCost int64, cost func(V) int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if maxCost < 0 {
		maxCost = 0
	}
	c.maxCost = maxCost
	c.costFn = cost
	c.evictLocked()
}

// Instrument routes the cache's accounting into r: evictions increment
// the cache.evictions counter and the live entry count moves the
// cache.entries gauge (by deltas, so several caches sharing one registry
// sum naturally). A nil registry detaches both.
func (c *Cache[K, V]) Instrument(r *obs.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.evictions = r.Counter("cache.evictions")
	c.entries = r.Gauge("cache.entries")
}

// Do returns the memoized value for key, computing it with fn on first
// use. Errors are memoized too: a failed computation is not retried.
func (c *Cache[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	return c.DoMetered(key, nil, nil, fn)
}

// DoMetered is Do with hit/miss counters (nil counters are no-ops). The
// caller that interns the key counts one miss; every other caller —
// concurrent single-flight waiters included — counts one hit, so at any
// pool width misses equals the number of distinct keys computed
// (re-computations after eviction or Forget count as new misses).
func (c *Cache[K, V]) DoMetered(key K, hits, misses *obs.Counter, fn func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[K]*cacheEntry[K, V])
	}
	e, ok := c.m[key]
	if !ok {
		e = &cacheEntry[K, V]{key: key, cost: 1}
		c.m[key] = e
		c.entries.Add(1)
		c.total++
		c.evictLocked()
	} else if e.linked {
		c.moveToFrontLocked(e)
	}
	c.mu.Unlock()
	if ok {
		hits.Add(1)
	} else {
		misses.Add(1)
	}
	e.once.Do(func() {
		e.val, e.err = fn()
		c.complete(e)
	})
	return e.val, e.err
}

// complete settles a finished computation under the policy: replace the
// provisional cost with the real one, link the entry into the LRU list,
// and evict down to budget. An entry Forgotten (or evicted is
// impossible — in-flight entries are never linked) while computing is
// left untouched: its cost was already released.
func (c *Cache[K, V]) complete(e *cacheEntry[K, V]) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m[e.key] != e {
		return
	}
	cost := int64(1)
	if c.costFn != nil && e.err == nil {
		if v := c.costFn(e.val); v > 0 {
			cost = v
		}
	}
	c.total += cost - e.cost
	e.cost = cost
	c.pushFrontLocked(e)
	c.evictLocked()
}

// evictLocked drops least-recently-used completed entries until the
// total cost fits the budget (or nothing evictable remains). Requires
// c.mu held.
func (c *Cache[K, V]) evictLocked() {
	if c.maxCost <= 0 {
		return
	}
	for c.total > c.maxCost && c.tail != nil {
		e := c.tail
		c.unlinkLocked(e)
		delete(c.m, e.key)
		c.total -= e.cost
		c.evictions.Add(1)
		c.entries.Add(-1)
	}
}

func (c *Cache[K, V]) pushFrontLocked(e *cacheEntry[K, V]) {
	e.linked = true
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache[K, V]) unlinkLocked(e *cacheEntry[K, V]) {
	if !e.linked {
		return
	}
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
	e.linked = false
}

func (c *Cache[K, V]) moveToFrontLocked(e *cacheEntry[K, V]) {
	if c.head == e {
		return
	}
	c.unlinkLocked(e)
	c.pushFrontLocked(e)
}

// Forget drops the entry for key, so the next Do re-computes it. A
// server coalescing requests through the cache calls this when a
// computation fails with a non-deterministic error (cancellation, an
// overload) so one canceled caller does not poison the key for every
// later request; concurrent single-flight waiters already attached to
// the old entry still share its result.
func (c *Cache[K, V]) Forget(key K) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok {
		return
	}
	c.unlinkLocked(e)
	delete(c.m, key)
	c.total -= e.cost
	c.entries.Add(-1)
}

// Len reports how many keys have been interned (including in-flight
// computations).
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Cost reports the summed cost of interned entries (in-flight
// computations count 1 until they settle).
func (c *Cache[K, V]) Cost() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Reset drops every memoized entry (in-flight computations finish but
// are not re-interned).
func (c *Cache[K, V]) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries.Add(-int64(len(c.m)))
	c.m = nil
	c.head, c.tail = nil, nil
	c.total = 0
}
