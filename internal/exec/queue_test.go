package exec

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"m3d/internal/errs"
)

// waitCond polls until cond holds or the deadline passes.
func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestQueueRunsSubmitted proves Submit dispatches accepted work onto its
// own goroutines up to the gate's capacity, and Wait blocks until all of
// it settles.
func TestQueueRunsSubmitted(t *testing.T) {
	q := NewQueue(NewGate(2, 2))
	var ran atomic.Int32
	release := make(chan struct{})
	for i := 0; i < 2; i++ {
		err := q.Submit(context.Background(), func(context.Context) {
			ran.Add(1)
			<-release
		}, nil)
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	waitCond(t, "both submissions running", func() bool { return ran.Load() == 2 })
	close(release)
	q.Wait()
	if got := q.g.InFlight(); got != 0 {
		t.Fatalf("InFlight after Wait = %d, want 0", got)
	}
}

// TestQueueQueuesBeyondCapacity proves work beyond the in-flight limit
// waits for a slot instead of running concurrently, and runs once the
// slot frees.
func TestQueueQueuesBeyondCapacity(t *testing.T) {
	q := NewQueue(NewGate(1, 1))
	release := make(chan struct{})
	started := make(chan struct{})
	if err := q.Submit(context.Background(), func(context.Context) {
		close(started)
		<-release
	}, nil); err != nil {
		t.Fatal(err)
	}
	<-started

	var second atomic.Bool
	if err := q.Submit(context.Background(), func(context.Context) {
		second.Store(true)
	}, nil); err != nil {
		t.Fatalf("queued Submit: %v", err)
	}
	time.Sleep(10 * time.Millisecond)
	if second.Load() {
		t.Fatal("second submission ran while the slot was held")
	}
	close(release)
	q.Wait()
	if !second.Load() {
		t.Fatal("second submission never ran after the slot freed")
	}
}

// TestQueueSheds proves Submit rejects synchronously with ErrOverloaded
// once both the running and the waiting capacity are exhausted, without
// ever invoking either callback.
func TestQueueSheds(t *testing.T) {
	q := NewQueue(NewGate(1, 1))
	release := make(chan struct{})
	defer close(release)
	started := make(chan struct{})
	if err := q.Submit(context.Background(), func(context.Context) {
		close(started)
		<-release
	}, nil); err != nil {
		t.Fatal(err)
	}
	<-started
	if err := q.Submit(context.Background(), func(context.Context) { <-release }, nil); err != nil {
		t.Fatalf("waiting Submit: %v", err)
	}

	var called atomic.Bool
	err := q.Submit(context.Background(),
		func(context.Context) { called.Store(true) },
		func(error) { called.Store(true) })
	if !errors.Is(err, errs.ErrOverloaded) {
		t.Fatalf("third Submit error = %v, want ErrOverloaded", err)
	}
	time.Sleep(10 * time.Millisecond)
	if called.Load() {
		t.Fatal("shed submission invoked a callback")
	}
}

// TestQueueCancelWhileQueued proves a queued submission whose context
// ends is skipped — run never fires, the waiting position frees
// immediately, and the canceled callback observes ErrCanceled plus the
// context sentinel.
func TestQueueCancelWhileQueued(t *testing.T) {
	q := NewQueue(NewGate(1, 1))
	release := make(chan struct{})
	started := make(chan struct{})
	if err := q.Submit(context.Background(), func(context.Context) {
		close(started)
		<-release
	}, nil); err != nil {
		t.Fatal(err)
	}
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Bool
	canceledErr := make(chan error, 1)
	if err := q.Submit(ctx,
		func(context.Context) { ran.Store(true) },
		func(err error) { canceledErr <- err }); err != nil {
		t.Fatalf("queued Submit: %v", err)
	}
	cancel()
	select {
	case err := <-canceledErr:
		if !errors.Is(err, errs.ErrCanceled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled callback error = %v, want ErrCanceled ∧ context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled callback never fired")
	}
	if ran.Load() {
		t.Fatal("canceled submission ran")
	}
	// The waiting position must be free again: a new submission queues
	// rather than shedding.
	if err := q.Submit(context.Background(), func(context.Context) {}, nil); err != nil {
		t.Fatalf("Submit after cancel: %v (waiting position leaked)", err)
	}
	close(release)
	q.Wait()
	if got := q.g.InFlight(); got != 0 {
		t.Fatalf("InFlight after Wait = %d, want 0 (slot leaked)", got)
	}
}
