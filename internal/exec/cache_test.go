package exec

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"m3d/internal/obs"
)

// TestLRUEvictsLeastRecentlyUsed walks a bounded cache past its capacity
// and checks the eviction order: the least-recently-used completed entry
// goes first, and a re-computation after eviction counts a fresh miss.
func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	c := NewLRU[int, int](3, nil)
	reg := obs.NewRegistry()
	c.Instrument(reg)
	compute := func(k int) func() (int, error) {
		return func() (int, error) { return k * 10, nil }
	}
	for k := 0; k < 3; k++ {
		if v, _ := c.Do(k, compute(k)); v != k*10 {
			t.Fatalf("Do(%d) = %d", k, v)
		}
	}
	// Touch 0 so 1 becomes the LRU, then insert 3 to force one eviction.
	c.Do(0, compute(0))
	c.Do(3, compute(3))
	if got := c.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	if got := reg.Counter("cache.evictions").Value(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if got := reg.Gauge("cache.entries").Value(); got != 3 {
		t.Fatalf("entries gauge = %d, want 3", got)
	}
	// 1 was evicted: recomputing it must run fn again (a miss); 0 was
	// kept: it must be served memoized (a hit).
	hits, misses := reg.Counter("h"), reg.Counter("m")
	ran := false
	c.DoMetered(1, hits, misses, func() (int, error) { ran = true; return 10, nil })
	if !ran || misses.Value() != 1 {
		t.Fatalf("evicted key not recomputed (ran=%v misses=%d)", ran, misses.Value())
	}
	ran = false
	c.DoMetered(0, hits, misses, func() (int, error) { ran = true; return 0, nil })
	if ran || hits.Value() != 1 {
		t.Fatalf("retained key recomputed (ran=%v hits=%d)", ran, hits.Value())
	}
}

// TestLRUCostFunction binds the budget to a value-derived cost: entries
// are evicted by summed cost, and a single entry costing more than the
// whole budget is dropped immediately (callers still get its value).
func TestLRUCostFunction(t *testing.T) {
	c := NewLRU[string, string](10, func(v string) int64 { return int64(len(v)) })
	c.Do("a", func() (string, error) { return "xxxx", nil })  // cost 4
	c.Do("b", func() (string, error) { return "xxxxx", nil }) // cost 5, total 9
	if got := c.Cost(); got != 9 {
		t.Fatalf("Cost = %d, want 9", got)
	}
	c.Do("c", func() (string, error) { return "xxx", nil }) // cost 3 → evict "a"
	if got, want := c.Cost(), int64(8); got != want {
		t.Fatalf("Cost = %d, want %d", got, want)
	}
	if got := c.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	// An entry alone exceeding the budget: everything goes, including it.
	v, _ := c.Do("huge", func() (string, error) { return string(make([]byte, 64)), nil })
	if len(v) != 64 {
		t.Fatalf("oversized value truncated: %d bytes", len(v))
	}
	if got := c.Len(); got != 0 {
		t.Fatalf("Len = %d after oversized insert, want 0", got)
	}
	if got := c.Cost(); got != 0 {
		t.Fatalf("Cost = %d after oversized insert, want 0", got)
	}
}

// TestLRUErrorEntriesCostOne proves failed computations are charged the
// provisional unit cost (the cost function never sees an error value).
func TestLRUErrorEntriesCostOne(t *testing.T) {
	boom := errors.New("boom")
	c := NewLRU[int, string](2, func(v string) int64 { t.Fatal("cost called for error value"); return 1 })
	if _, err := c.Do(1, func() (string, error) { return "", boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := c.Cost(); got != 1 {
		t.Fatalf("Cost = %d, want 1", got)
	}
	// The error is memoized until evicted.
	if _, err := c.Do(1, func() (string, error) { t.Fatal("retried"); return "", nil }); !errors.Is(err, boom) {
		t.Fatalf("memoized err = %v", err)
	}
}

// TestLRUForgetMidFlight forgets a key while its computation runs: the
// orphaned computation must not be re-interned or corrupt the cost
// accounting, and a later Do recomputes.
func TestLRUForgetMidFlight(t *testing.T) {
	c := NewLRU[int, int](4, nil)
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan int)
	go func() {
		v, _ := c.Do(7, func() (int, error) {
			close(started)
			<-release
			return 70, nil
		})
		done <- v
	}()
	<-started
	c.Forget(7)
	if got := c.Len(); got != 0 {
		t.Fatalf("Len = %d after mid-flight Forget, want 0", got)
	}
	close(release)
	if v := <-done; v != 70 {
		t.Fatalf("orphaned caller got %d, want 70", v)
	}
	if got, cost := c.Len(), c.Cost(); got != 0 || cost != 0 {
		t.Fatalf("orphaned completion re-interned: Len=%d Cost=%d", got, cost)
	}
	ran := false
	c.Do(7, func() (int, error) { ran = true; return 71, nil })
	if !ran {
		t.Fatal("forgotten key not recomputed")
	}
}

// TestLRUSingleFlightUnderEviction is the width-8 hammer of the PR's
// concurrency contract: DoMetered + eviction pressure from a pool of
// 8 workers over a key space 4× the capacity, proving (a) single-flight —
// at no instant do two computations of the same live key run (eviction
// never removes an in-flight entry), and (b) Len() ≤ cap at every
// observation point (the capacity exceeds the pool width, so in-flight
// provisional entries always fit the budget).
func TestLRUSingleFlightUnderEviction(t *testing.T) {
	const (
		capacity = 16
		workers  = 8
		keys     = 64
		ops      = 4000
	)
	c := NewLRU[int, int](capacity, nil)
	reg := obs.NewRegistry()
	c.Instrument(reg)
	var inflight [keys]atomic.Int32
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < ops; i++ {
				k := rng.Intn(keys)
				v, err := c.Do(k, func() (int, error) {
					if n := inflight[k].Add(1); n != 1 {
						errCh <- fmt.Errorf("key %d: %d concurrent evaluations", k, n)
					}
					defer inflight[k].Add(-1)
					return k * 3, nil
				})
				if err != nil || v != k*3 {
					errCh <- fmt.Errorf("Do(%d) = %d, %v", k, v, err)
					return
				}
				if n := c.Len(); n > capacity {
					errCh <- fmt.Errorf("Len() = %d > cap %d", n, capacity)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if ev := reg.Counter("cache.evictions").Value(); ev == 0 {
		t.Fatal("hammer produced no evictions; the test exercised nothing")
	}
	if got := reg.Gauge("cache.entries").Value(); got != int64(c.Len()) {
		t.Fatalf("entries gauge %d != Len %d", reg.Gauge("cache.entries").Value(), c.Len())
	}
}

// TestLRUHammerWithForget mixes Forget into the width-8 hammer and checks
// the bookkeeping invariants hold at every observation point: Len() ≤ cap
// and the instrumented entries gauge lands exactly on the final Len.
func TestLRUHammerWithForget(t *testing.T) {
	const (
		capacity = 16
		workers  = 8
		keys     = 48
		ops      = 4000
	)
	c := NewLRU[int, int](capacity, nil)
	reg := obs.NewRegistry()
	c.Instrument(reg)
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 100))
			for i := 0; i < ops; i++ {
				k := rng.Intn(keys)
				switch rng.Intn(10) {
				case 0:
					c.Forget(k)
				default:
					if v, err := c.Do(k, func() (int, error) { return k, nil }); err != nil || v != k {
						errCh <- fmt.Errorf("Do(%d) = %d, %v", k, v, err)
						return
					}
				}
				if n := c.Len(); n > capacity {
					errCh <- fmt.Errorf("Len() = %d > cap %d", n, capacity)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if got, want := reg.Gauge("cache.entries").Value(), int64(c.Len()); got != want {
		t.Fatalf("entries gauge %d != Len %d", got, want)
	}
	if cost := c.Cost(); cost != int64(c.Len()) {
		t.Fatalf("unit-cost cache: Cost %d != Len %d", cost, c.Len())
	}
}

// TestCacheCapFromEnv pins the knob's parse contract.
func TestCacheCapFromEnv(t *testing.T) {
	for _, tc := range []struct {
		val  string
		want int64
	}{
		{"", 0}, {"0", 0}, {"-3", 0}, {"junk", 0}, {"128", 128},
	} {
		t.Setenv(CacheCapEnv, tc.val)
		if got := CacheCapFromEnv(); got != tc.want {
			t.Errorf("M3D_CACHE_CAP=%q → %d, want %d", tc.val, got, tc.want)
		}
	}
}

// TestCacheResetBounded proves Reset clears the LRU bookkeeping, not just
// the map.
func TestCacheResetBounded(t *testing.T) {
	c := NewLRU[int, int](4, nil)
	reg := obs.NewRegistry()
	c.Instrument(reg)
	for k := 0; k < 4; k++ {
		c.Do(k, func() (int, error) { return k, nil })
	}
	c.Reset()
	if c.Len() != 0 || c.Cost() != 0 {
		t.Fatalf("Reset left Len=%d Cost=%d", c.Len(), c.Cost())
	}
	if got := reg.Gauge("cache.entries").Value(); got != 0 {
		t.Fatalf("entries gauge %d after Reset", got)
	}
	// The list is gone too: refills evict in insertion order again.
	for k := 10; k < 16; k++ {
		c.Do(k, func() (int, error) { return k, nil })
	}
	if got := c.Len(); got != 4 {
		t.Fatalf("Len = %d after refill, want 4", got)
	}
}
