package exec

import (
	"fmt"
	"testing"
)

// The cache benchmarks pin the cost of the three Cache regimes the
// service runs in: unbounded hit (the PR 2 baseline), bounded hit (LRU
// bookkeeping on the hot path), and bounded churn (every call interns a
// fresh key and evicts the tail). scripts/benchdiff.sh tracks them
// against bench/BENCH_0.json.

func BenchmarkCacheHitUnbounded(b *testing.B) {
	var c Cache[int, int]
	c.Do(0, func() (int, error) { return 42, nil })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v, _ := c.Do(0, func() (int, error) { return 0, nil }); v != 42 {
			b.Fatal("miss")
		}
	}
}

func BenchmarkCacheHitLRU(b *testing.B) {
	c := NewLRU[int, int](64, nil)
	for k := 0; k < 64; k++ {
		c.Do(k, func() (int, error) { return k, nil })
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i & 63
		if v, _ := c.Do(k, func() (int, error) { return -1, nil }); v != k {
			b.Fatal("miss")
		}
	}
}

func BenchmarkCacheChurnLRU(b *testing.B) {
	c := NewLRU[int, int](64, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Do(i, func() (int, error) { return i, nil })
	}
}

func BenchmarkCacheHitLRUParallel(b *testing.B) {
	c := NewLRU[string, int](64, nil)
	keys := make([]string, 64)
	for k := range keys {
		keys[k] = fmt.Sprintf("key-%d", k)
		c.Do(keys[k], func() (int, error) { return k, nil })
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			k := keys[i&63]
			i++
			if _, err := c.Do(k, func() (int, error) { return -1, nil }); err != nil {
				b.Fatal(err)
			}
		}
	})
}
