package exec

import (
	"sync"
	"testing"
)

func TestBudgetSerial(t *testing.T) {
	b := NewBudget(10)
	if got := b.Take(4); got != 4 {
		t.Fatalf("Take(4) = %d, want 4", got)
	}
	if got := b.Remaining(); got != 6 {
		t.Fatalf("Remaining = %d, want 6", got)
	}
	if got := b.Take(10); got != 6 {
		t.Fatalf("Take(10) = %d, want 6 (partial grant)", got)
	}
	if !b.Exhausted() {
		t.Fatal("budget not exhausted after full spend")
	}
	if got := b.Take(1); got != 0 {
		t.Fatalf("Take(1) after exhaustion = %d, want 0", got)
	}
	if got := b.Take(-3); got != 0 {
		t.Fatalf("Take(-3) = %d, want 0", got)
	}
}

func TestBudgetUnlimited(t *testing.T) {
	for _, n := range []int64{0, -1} {
		b := NewBudget(n)
		if got := b.Take(1 << 40); got != 1<<40 {
			t.Fatalf("NewBudget(%d).Take = %d, want full grant", n, got)
		}
		if b.Exhausted() {
			t.Fatalf("NewBudget(%d) reports exhausted", n)
		}
		if got := b.Remaining(); got != -1 {
			t.Fatalf("NewBudget(%d).Remaining = %d, want -1", n, got)
		}
	}
}

func TestBudgetZeroValueExhausted(t *testing.T) {
	var b Budget
	if got := b.Take(1); got != 0 {
		t.Fatalf("zero-value Take = %d, want 0", got)
	}
	if !b.Exhausted() {
		t.Fatal("zero value must be exhausted")
	}
}

// TestBudgetConcurrent hammers Take from many goroutines: the summed
// grants must equal the budget exactly (nothing lost, nothing minted).
func TestBudgetConcurrent(t *testing.T) {
	const total = 100_000
	b := NewBudget(total)
	var wg sync.WaitGroup
	grants := make([]int64, 16)
	for g := range grants {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				got := b.Take(int64(g%7 + 1))
				if got == 0 {
					return
				}
				grants[g] += got
			}
		}(g)
	}
	wg.Wait()
	var sum int64
	for _, g := range grants {
		sum += g
	}
	if sum != total {
		t.Fatalf("granted %d total, want exactly %d", sum, total)
	}
}
