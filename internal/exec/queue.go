package exec

import (
	"context"
	"sync"
)

// Queue schedules asynchronous, request-shaped work over a Gate. Where
// Gate.Enter blocks the caller until a slot frees, Queue.Submit decides
// synchronously — admit now, queue for later, or shed with
// errs.ErrOverloaded — and returns immediately; the work itself runs on
// its own goroutine once a slot is held. This is the admission layer of
// the async job tier: a server accepts a job, answers 202, and lets the
// queue dispatch it, shedding with 429 only when both the running and
// the waiting capacity of the underlying Gate are exhausted.
//
// Cancellation while queued is first-class: when the submission's
// context ends before a slot frees, run is never called, the waiting
// position is released, and the optional canceled callback receives the
// wrapped context error (matching errs.ErrCanceled). A Queue is safe for
// concurrent use.
type Queue struct {
	g  *Gate
	wg sync.WaitGroup
}

// NewQueue returns a queue dispatching over g. The gate may be shared
// with synchronous Enter/Leave callers; both draw from the same slots.
func NewQueue(g *Gate) *Queue {
	return &Queue{g: g}
}

// Submit admits, queues, or sheds one unit of work. A nil return means
// the work was accepted: run(ctx) will execute on its own goroutine as
// soon as a slot is held (possibly before Submit returns), and the slot
// is released when run returns. A non-nil return matches
// errs.ErrOverloaded and means the work was shed — neither callback will
// ever fire. If ctx ends while the work is still waiting for a slot, run
// is skipped and canceled (when non-nil) receives an error matching both
// errs.ErrCanceled and the context sentinel.
func (q *Queue) Submit(ctx context.Context, run func(context.Context), cancel func(error)) error {
	admitted := false
	select {
	case q.g.slots <- struct{}{}:
		admitted = true
	default:
		if err := q.g.reserveWait(); err != nil {
			return err
		}
	}
	q.wg.Add(1)
	go func() {
		defer q.wg.Done()
		if !admitted {
			select {
			case q.g.slots <- struct{}{}:
				q.g.waiting.Add(-1)
			case <-ctx.Done():
				q.g.waiting.Add(-1)
				if cancel != nil {
					cancel(canceled(ctx.Err()))
				}
				return
			}
		}
		defer q.g.Leave()
		run(ctx)
	}()
	return nil
}

// Wait blocks until every accepted submission has settled (run returned
// or the queued work was canceled). It does not stop new submissions;
// the caller sequences that (e.g. by refusing requests while draining).
func (q *Queue) Wait() {
	q.wg.Wait()
}
