package exec

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"m3d/internal/errs"
)

func TestGateAdmitAndShed(t *testing.T) {
	g := NewGate(2, 0)
	ctx := context.Background()
	if err := g.Enter(ctx); err != nil {
		t.Fatal(err)
	}
	if err := g.Enter(ctx); err != nil {
		t.Fatal(err)
	}
	if got := g.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
	// Slots full, queue zero: third caller is shed immediately.
	err := g.Enter(ctx)
	if !errors.Is(err, errs.ErrOverloaded) {
		t.Fatalf("shed error = %v, want ErrOverloaded", err)
	}
	g.Leave()
	if err := g.Enter(ctx); err != nil {
		t.Fatalf("after Leave: %v", err)
	}
	g.Leave()
	g.Leave()
	g.Leave() // unbalanced Leave must not block or panic
	if got := g.InFlight(); got != 0 {
		t.Fatalf("drained InFlight = %d, want 0", got)
	}
}

func TestGateQueueAdmitsWhenSlotFrees(t *testing.T) {
	g := NewGate(1, 1)
	ctx := context.Background()
	if err := g.Enter(ctx); err != nil {
		t.Fatal(err)
	}
	entered := make(chan error, 1)
	go func() { entered <- g.Enter(ctx) }()
	// Wait for the second caller to be queued.
	deadline := time.Now().Add(5 * time.Second)
	for g.Waiting() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second caller never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// Queue full now: a third caller is shed while the queued one is not.
	if err := g.Enter(ctx); !errors.Is(err, errs.ErrOverloaded) {
		t.Fatalf("third caller error = %v, want ErrOverloaded", err)
	}
	g.Leave()
	if err := <-entered; err != nil {
		t.Fatalf("queued caller error = %v, want admission", err)
	}
	g.Leave()
}

func TestGateEnterCanceledWhileQueued(t *testing.T) {
	g := NewGate(1, 4)
	if err := g.Enter(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	entered := make(chan error, 1)
	go func() { entered <- g.Enter(ctx) }()
	deadline := time.Now().Add(5 * time.Second)
	for g.Waiting() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("caller never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	err := <-entered
	if !errors.Is(err, errs.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want ErrCanceled matching context.Canceled", err)
	}
	if got := g.Waiting(); got != 0 {
		t.Fatalf("Waiting after cancel = %d, want 0", got)
	}
	g.Leave()
}

// TestGateConcurrent hammers the gate from many goroutines: admitted
// holders never exceed capacity and every admitted holder leaves.
func TestGateConcurrent(t *testing.T) {
	const capacity, callers = 3, 64
	g := NewGate(capacity, callers)
	ctx := context.Background()
	var inFlight, peak, admitted atomicMax
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.Enter(ctx); err != nil {
				t.Errorf("Enter: %v", err)
				return
			}
			peak.observe(inFlight.add(1))
			admitted.add(1)
			inFlight.add(-1)
			g.Leave()
		}()
	}
	wg.Wait()
	if got := peak.load(); got > capacity {
		t.Fatalf("peak in-flight %d exceeded capacity %d", got, capacity)
	}
	if got := admitted.load(); got != callers {
		t.Fatalf("admitted %d, want %d", got, callers)
	}
	if g.InFlight() != 0 || g.Waiting() != 0 {
		t.Fatalf("gate not drained: inflight=%d waiting=%d", g.InFlight(), g.Waiting())
	}
}

type atomicMax struct {
	mu sync.Mutex
	v  int64
}

func (a *atomicMax) add(d int64) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.v += d
	return a.v
}

func (a *atomicMax) observe(v int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if v > a.v {
		a.v = v
	}
}

func (a *atomicMax) load() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.v
}

func TestCacheForget(t *testing.T) {
	var c Cache[string, int]
	calls := 0
	compute := func() (int, error) { calls++; return calls, nil }
	if v, _ := c.Do("k", compute); v != 1 {
		t.Fatalf("first Do = %d, want 1", v)
	}
	if v, _ := c.Do("k", compute); v != 1 {
		t.Fatalf("memoized Do = %d, want 1", v)
	}
	c.Forget("k")
	if v, _ := c.Do("k", compute); v != 2 {
		t.Fatalf("Do after Forget = %d, want 2 (recomputed)", v)
	}
	if n := c.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
}
