package exec

import "sync/atomic"

// Budget is a concurrency-safe evaluation allowance: a fixed number of
// grants handed out atomically. Adaptive explorers (internal/dse) use it
// to bound how many model evaluations a request may issue regardless of
// how the work is batched across rounds or workers — a round asks for as
// many grants as it has candidates and receives at most what is left.
//
// The zero value is an exhausted budget; NewBudget(n) with n ≤ 0 returns
// an unlimited one.
type Budget struct {
	remaining atomic.Int64
	unlimited bool
}

// NewBudget returns a budget of n grants. n ≤ 0 means unlimited: Take
// always grants in full and Remaining reports a negative sentinel.
func NewBudget(n int64) *Budget {
	b := &Budget{}
	if n <= 0 {
		b.unlimited = true
		return b
	}
	b.remaining.Store(n)
	return b
}

// Take requests n grants and returns how many were granted: n while the
// budget lasts, the remainder when it is nearly spent, 0 once exhausted.
// Take never grants more than requested and the sum of all grants never
// exceeds the budget, under any interleaving.
func (b *Budget) Take(n int64) int64 {
	if n <= 0 {
		return 0
	}
	if b.unlimited {
		return n
	}
	for {
		cur := b.remaining.Load()
		if cur <= 0 {
			return 0
		}
		grant := n
		if grant > cur {
			grant = cur
		}
		if b.remaining.CompareAndSwap(cur, cur-grant) {
			return grant
		}
	}
}

// Remaining reports the grants left; -1 for an unlimited budget.
func (b *Budget) Remaining() int64 {
	if b.unlimited {
		return -1
	}
	return b.remaining.Load()
}

// Exhausted reports whether no grants remain (never true when unlimited).
func (b *Budget) Exhausted() bool {
	return !b.unlimited && b.remaining.Load() <= 0
}
