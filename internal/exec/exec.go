// Package exec is the concurrency substrate for design-space sweeps: a
// context-aware, bounded worker pool (Map, Grid) whose results come back
// in deterministic input order regardless of goroutine scheduling, plus a
// concurrency-safe memoization Cache with single-flight semantics for
// deduplicating repeated evaluations (identical flow specs, repeated
// (Params, Load) points). The cache is unbounded by default and can opt
// into a size-aware LRU eviction policy (Cache.Bound, M3D_CACHE_CAP) for
// long-lived servers; see cache.go.
//
// It also owns the library's shared run-option surface: every public
// entry point that fans out (flow.Run/RunMany, analytic.SweepBandwidthCS,
// the core experiments) accepts the same Option type, so pool width
// (WithWorkers), cancellation (WithContext), tracing (WithTracer),
// metrics (WithMetrics) and caller-defined values (WithValue) thread
// uniformly through the whole stack. When a tracer or registry is
// attached, Map emits one span per task, maintains pool-width and
// queue-depth gauges, and counts tasks and errors; the memo cache counts
// hits and misses. With neither attached the instrumentation is skipped
// entirely (nil checks only).
//
// Determinism contract: for a fixed input slice and a pure evaluation
// function, Map returns bit-identical results at every pool width — each
// item's result is written to its own input index, so scheduling order
// never reorders output. Error contract: the error returned is the one
// from the lowest failing input index whose evaluation ran; once any item
// fails, in-flight items finish but no new items are dispatched.
// Cancellation surfaces as an error matching both errs.ErrCanceled
// (m3d.ErrCanceled) and the underlying context error.
package exec

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"m3d/internal/errs"
	"m3d/internal/obs"
)

// WorkersEnv is the environment variable that overrides the default pool
// width (DefaultWorkers).
const WorkersEnv = "M3D_WORKERS"

// DefaultWorkers returns the default pool width: GOMAXPROCS, overridden
// by the M3D_WORKERS environment variable when it holds a positive
// integer.
func DefaultWorkers() int {
	if s := os.Getenv(WorkersEnv); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// Settings is the resolved configuration of one run: pool width, context,
// observability sinks, and caller-defined values (see WithValue). Build
// one with Resolve; packages layered on exec (flow, analytic, core) use
// it to share a single option surface.
type Settings struct {
	// Workers is the pool width (≥ 1 after Resolve).
	Workers int
	// Ctx is the cancellation context (never nil after Resolve).
	Ctx context.Context
	// Tracer receives spans; nil disables tracing.
	Tracer obs.Tracer
	// Metrics receives counters/gauges/histograms; nil disables them.
	Metrics *obs.Registry
	// Label names Map's per-task spans ("exec.task" when empty).
	Label string

	vals map[any]any
}

// SetValue attaches a caller-defined key/value (keys follow the
// context.Value convention: unexported struct types).
func (s *Settings) SetValue(key, val any) {
	if s.vals == nil {
		s.vals = make(map[any]any)
	}
	s.vals[key] = val
}

// Value returns the value attached under key, or nil.
func (s *Settings) Value(key any) any {
	if s == nil {
		return nil
	}
	return s.vals[key]
}

// instrument returns ctx carrying the settings' tracer and registry so
// nested instrumented code (flow stages under Map) can find them.
func (s *Settings) instrument(ctx context.Context) context.Context {
	ctx = obs.ContextWithTracer(ctx, s.Tracer)
	ctx = obs.ContextWithMetrics(ctx, s.Metrics)
	return ctx
}

// Option configures one run (a Map/Grid call, a flow run, a sweep, an
// experiment). This is the shared option type re-exported as m3d.Option.
type Option func(*Settings)

// WithWorkers bounds the pool at n concurrent evaluations. n ≤ 0 selects
// DefaultWorkers(); n = 1 is the serial path (still cancellable).
func WithWorkers(n int) Option {
	return func(s *Settings) { s.Workers = n }
}

// WithContext attaches a cancellation context: when ctx is cancelled, no
// new items are dispatched, in-flight items observe the cancellation via
// the context passed to fn, and Map returns an error matching both
// errs.ErrCanceled and ctx.Err().
func WithContext(ctx context.Context) Option {
	return func(s *Settings) {
		if ctx != nil {
			s.Ctx = ctx
		}
	}
}

// WithTracer attaches a span sink (obs.Recorder, obs.JSONL, ...). nil
// leaves tracing disabled.
func WithTracer(t obs.Tracer) Option {
	return func(s *Settings) { s.Tracer = t }
}

// WithMetrics attaches a metrics registry. nil leaves metrics disabled.
func WithMetrics(r *obs.Registry) Option {
	return func(s *Settings) { s.Metrics = r }
}

// WithLabel names the per-task spans of an instrumented Map call.
func WithLabel(name string) Option {
	return func(s *Settings) { s.Label = name }
}

// WithValue attaches a caller-defined key/value to the settings; layered
// packages use this to extend the shared option surface (e.g. flow's
// export-sink options) without exec knowing their types.
func WithValue(key, val any) Option {
	return func(s *Settings) { s.SetValue(key, val) }
}

// Resolve applies opts over defaults: background context, DefaultWorkers
// width, and — when no explicit sink was given — the tracer/registry
// carried by the resolved context (so context-first callers need no
// extra options).
func Resolve(opts ...Option) *Settings {
	s := &Settings{Ctx: context.Background()}
	for _, o := range opts {
		if o != nil {
			o(s)
		}
	}
	if s.Workers <= 0 {
		s.Workers = DefaultWorkers()
	}
	if s.Tracer == nil {
		s.Tracer = obs.TracerFrom(s.Ctx)
	}
	if s.Metrics == nil {
		s.Metrics = obs.MetricsFrom(s.Ctx)
	}
	return s
}

// canceled wraps a context error so it matches both errs.ErrCanceled and
// the original context sentinel.
func canceled(err error) error {
	return fmt.Errorf("exec: %w: %w", errs.ErrCanceled, err)
}

// Map evaluates fn over every item with a bounded worker pool and returns
// the results in input order. fn receives the cancellation context (which
// carries the settings' tracer/registry when set), the item's input
// index, and the item. The first error (lowest failing input index)
// aborts dispatch and is returned with a nil result slice.
func Map[T, R any](items []T, fn func(ctx context.Context, idx int, item T) (R, error), opts ...Option) ([]R, error) {
	return MapWith(Resolve(opts...), items, fn)
}

// MapWith is Map with pre-resolved settings; layered packages that need
// the settings themselves (memo counters, sink options) resolve once and
// share.
func MapWith[T, R any](st *Settings, items []T, fn func(ctx context.Context, idx int, item T) (R, error)) ([]R, error) {
	n := len(items)
	results := make([]R, n)
	if n == 0 {
		if err := st.Ctx.Err(); err != nil {
			return results, canceled(err)
		}
		return results, nil
	}
	workers := st.Workers
	if workers > n {
		workers = n
	}
	tasks := st.Metrics.Counter("exec.tasks")
	taskErrs := st.Metrics.Counter("exec.task.errors")
	st.Metrics.Gauge("exec.pool.width").Set(int64(workers))
	queueDepth := st.Metrics.Gauge("exec.queue.depth")
	queueDepth.Set(int64(n))
	label := st.Label
	if label == "" {
		label = "exec.task"
	}
	if workers == 1 {
		ctx := st.instrument(st.Ctx)
		for i, item := range items {
			if err := st.Ctx.Err(); err != nil {
				return nil, canceled(err)
			}
			queueDepth.Set(int64(n - i - 1))
			var sp obs.Span
			if st.Tracer != nil {
				sp = st.Tracer.StartSpan(label, obs.Int("idx", i))
			}
			tasks.Add(1)
			r, err := fn(ctx, i, item)
			if sp != nil {
				sp.End()
			}
			if err != nil {
				taskErrs.Add(1)
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	ctx, cancel := context.WithCancel(st.Ctx)
	defer cancel()
	fnCtx := st.instrument(ctx)
	errors := make([]error, n)
	var next atomic.Int64
	// Contiguous chunk dispatch amortizes the counter for cheap per-point
	// sweeps; result placement by index keeps ordering deterministic.
	chunk := n / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				queueDepth.Set(int64(n - hi))
				for i := lo; i < hi; i++ {
					if ctx.Err() != nil {
						return
					}
					var sp obs.Span
					if st.Tracer != nil {
						sp = st.Tracer.StartSpan(label, obs.Int("idx", i))
					}
					tasks.Add(1)
					r, err := fn(fnCtx, i, items[i])
					if sp != nil {
						sp.End()
					}
					if err != nil {
						taskErrs.Add(1)
						errors[i] = err
						cancel()
						return
					}
					results[i] = r
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errors {
		if err != nil {
			return nil, err
		}
	}
	if err := st.Ctx.Err(); err != nil {
		return nil, canceled(err)
	}
	return results, nil
}

// Grid evaluates fn over the cross product as × bs and returns the
// results flattened row-major (index i*len(bs)+j), matching the nested
// serial loop `for a { for b { ... } }`.
func Grid[A, B, R any](as []A, bs []B, fn func(ctx context.Context, a A, b B) (R, error), opts ...Option) ([]R, error) {
	return GridWith(Resolve(opts...), as, bs, fn)
}

// GridWith is Grid with pre-resolved settings (see MapWith).
func GridWith[A, B, R any](st *Settings, as []A, bs []B, fn func(ctx context.Context, a A, b B) (R, error)) ([]R, error) {
	nb := len(bs)
	idx := make([]int, len(as)*nb)
	for i := range idx {
		idx[i] = i
	}
	return MapWith(st, idx, func(ctx context.Context, _ int, k int) (R, error) {
		return fn(ctx, as[k/nb], bs[k%nb])
	})
}

