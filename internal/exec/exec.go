// Package exec is the concurrency substrate for design-space sweeps: a
// context-aware, bounded worker pool (Map, Grid) whose results come back
// in deterministic input order regardless of goroutine scheduling, plus a
// concurrency-safe memoization Cache with single-flight semantics for
// deduplicating repeated evaluations (identical flow specs, repeated
// (Params, Load) points).
//
// Determinism contract: for a fixed input slice and a pure evaluation
// function, Map returns bit-identical results at every pool width — each
// item's result is written to its own input index, so scheduling order
// never reorders output. Error contract: the error returned is the one
// from the lowest failing input index whose evaluation ran; once any item
// fails, in-flight items finish but no new items are dispatched.
package exec

import (
	"context"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// WorkersEnv is the environment variable that overrides the default pool
// width (DefaultWorkers).
const WorkersEnv = "M3D_WORKERS"

// DefaultWorkers returns the default pool width: GOMAXPROCS, overridden
// by the M3D_WORKERS environment variable when it holds a positive
// integer.
func DefaultWorkers() int {
	if s := os.Getenv(WorkersEnv); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

type config struct {
	workers int
	ctx     context.Context
}

// Option configures one Map/Grid call.
type Option func(*config)

// WithWorkers bounds the pool at n concurrent evaluations. n ≤ 0 selects
// DefaultWorkers(); n = 1 is the serial path (still cancellable).
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// WithContext attaches a cancellation context: when ctx is cancelled, no
// new items are dispatched, in-flight items observe the cancellation via
// the context passed to fn, and Map returns ctx.Err().
func WithContext(ctx context.Context) Option {
	return func(c *config) {
		if ctx != nil {
			c.ctx = ctx
		}
	}
}

func newConfig(opts []Option) config {
	c := config{ctx: context.Background()}
	for _, o := range opts {
		o(&c)
	}
	if c.workers <= 0 {
		c.workers = DefaultWorkers()
	}
	return c
}

// Map evaluates fn over every item with a bounded worker pool and returns
// the results in input order. fn receives the cancellation context, the
// item's input index, and the item. The first error (lowest failing input
// index) aborts dispatch and is returned with a nil result slice.
func Map[T, R any](items []T, fn func(ctx context.Context, idx int, item T) (R, error), opts ...Option) ([]R, error) {
	cfg := newConfig(opts)
	n := len(items)
	results := make([]R, n)
	if n == 0 {
		return results, cfg.ctx.Err()
	}
	workers := cfg.workers
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i, item := range items {
			if err := cfg.ctx.Err(); err != nil {
				return nil, err
			}
			r, err := fn(cfg.ctx, i, item)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	ctx, cancel := context.WithCancel(cfg.ctx)
	defer cancel()
	errs := make([]error, n)
	var next atomic.Int64
	// Contiguous chunk dispatch amortizes the counter for cheap per-point
	// sweeps; result placement by index keeps ordering deterministic.
	chunk := n / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					if ctx.Err() != nil {
						return
					}
					r, err := fn(ctx, i, items[i])
					if err != nil {
						errs[i] = err
						cancel()
						return
					}
					results[i] = r
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := cfg.ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// Grid evaluates fn over the cross product as × bs and returns the
// results flattened row-major (index i*len(bs)+j), matching the nested
// serial loop `for a { for b { ... } }`.
func Grid[A, B, R any](as []A, bs []B, fn func(ctx context.Context, a A, b B) (R, error), opts ...Option) ([]R, error) {
	nb := len(bs)
	idx := make([]int, len(as)*nb)
	for i := range idx {
		idx[i] = i
	}
	return Map(idx, func(ctx context.Context, _ int, k int) (R, error) {
		return fn(ctx, as[k/nb], bs[k%nb])
	}, opts...)
}

// Cache is a concurrency-safe memoization table with single-flight
// semantics: for each key the compute function runs exactly once, even
// under concurrent Do calls; later (and concurrent) callers share the
// stored value and error. The zero value is ready to use. Results must be
// treated as shared/immutable by callers.
type Cache[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*cacheEntry[V]
}

type cacheEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

// Do returns the memoized value for key, computing it with fn on first
// use. Errors are memoized too: a failed computation is not retried.
func (c *Cache[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[K]*cacheEntry[V])
	}
	e, ok := c.m[key]
	if !ok {
		e = &cacheEntry[V]{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.val, e.err = fn() })
	return e.val, e.err
}

// Len reports how many keys have been interned (including in-flight
// computations).
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Reset drops every memoized entry.
func (c *Cache[K, V]) Reset() {
	c.mu.Lock()
	c.m = nil
	c.mu.Unlock()
}
