package exec

import (
	"context"
	"fmt"
	"sync/atomic"

	"m3d/internal/errs"
)

// Gate is a bounded admission controller for request-shaped work: at most
// maxInFlight holders are admitted at once, at most maxQueue callers wait
// for a slot, and everything beyond that is shed immediately with an
// error matching errs.ErrOverloaded. It is the admission layer in front
// of the worker pool — Map bounds how much admitted work runs
// concurrently; a Gate bounds how much work is admitted at all, which is
// what lets a server return 429 instead of queueing without bound.
//
// A Gate is safe for concurrent use. The zero value is not usable; build
// one with NewGate.
type Gate struct {
	slots   chan struct{}
	waiting atomic.Int64
	maxWait int64
}

// NewGate returns a gate admitting maxInFlight concurrent holders with a
// waiting queue of maxQueue. maxInFlight < 1 is treated as 1; maxQueue
// < 0 is treated as 0 (shed as soon as every slot is taken).
func NewGate(maxInFlight, maxQueue int) *Gate {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Gate{slots: make(chan struct{}, maxInFlight), maxWait: int64(maxQueue)}
}

// Enter admits the caller, blocking in the waiting queue when all slots
// are taken. It returns an error matching errs.ErrOverloaded when the
// queue is full (the caller was shed and must not call Leave), or an
// error matching errs.ErrCanceled and ctx.Err() when ctx ends while
// waiting. A nil error means the caller holds a slot and must Leave.
func (g *Gate) Enter(ctx context.Context) error {
	select {
	case g.slots <- struct{}{}:
		return nil
	default:
	}
	if err := g.reserveWait(); err != nil {
		return err
	}
	defer g.waiting.Add(-1)
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return canceled(ctx.Err())
	}
}

// reserveWait claims one waiting-queue position, shedding with
// errs.ErrOverloaded when the queue is full. The caller owns the
// position and must release it with waiting.Add(-1).
func (g *Gate) reserveWait() error {
	if g.waiting.Add(1) > g.maxWait {
		g.waiting.Add(-1)
		return fmt.Errorf("exec: admission queue full (%d in flight, %d waiting): %w",
			cap(g.slots), g.maxWait, errs.ErrOverloaded)
	}
	return nil
}

// Leave releases the slot acquired by a successful Enter.
func (g *Gate) Leave() {
	select {
	case <-g.slots:
	default:
		// Tolerate unbalanced calls rather than deadlocking the caller.
	}
}

// InFlight reports the number of admitted holders.
func (g *Gate) InFlight() int { return len(g.slots) }

// Waiting reports the number of callers queued for a slot.
func (g *Gate) Waiting() int { return int(g.waiting.Load()) }

// Capacity reports the in-flight limit.
func (g *Gate) Capacity() int { return cap(g.slots) }
