package exec

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderDeterministic(t *testing.T) {
	items := make([]int, 1000)
	for i := range items {
		items[i] = i
	}
	square := func(_ context.Context, _ int, v int) (int, error) { return v * v, nil }

	want, err := Map(items, square, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 8, 64} {
		for rep := 0; rep < 3; rep++ {
			got, err := Map(items, square, WithWorkers(w))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("width %d rep %d: results differ from serial", w, rep)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(nil, func(context.Context, int, int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty map: got %v, %v", out, err)
	}
}

func TestMapFirstError(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for _, w := range []int{1, 2, 8} {
		_, err := Map(items, func(_ context.Context, _ int, v int) (int, error) {
			if v >= 3 {
				return 0, fmt.Errorf("item %d failed", v)
			}
			return v, nil
		}, WithWorkers(w))
		if err == nil {
			t.Fatalf("width %d: expected error", w)
		}
	}
	// Serial path must report the lowest failing index.
	_, err := Map(items, func(_ context.Context, _ int, v int) (int, error) {
		if v >= 3 {
			return 0, fmt.Errorf("item %d failed", v)
		}
		return v, nil
	}, WithWorkers(1))
	if got := err.Error(); got != "item 3 failed" {
		t.Fatalf("serial first error: got %q", got)
	}
}

func TestMapErrorStopsDispatch(t *testing.T) {
	var calls atomic.Int64
	items := make([]int, 10000)
	boom := errors.New("boom")
	_, err := Map(items, func(_ context.Context, idx int, _ int) (int, error) {
		calls.Add(1)
		if idx == 0 {
			return 0, boom
		}
		time.Sleep(time.Microsecond)
		return 0, nil
	}, WithWorkers(4))
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if c := calls.Load(); c == int64(len(items)) {
		t.Fatalf("error did not stop dispatch: all %d items ran", c)
	}
}

func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	items := make([]int, 1000)
	_, err := Map(items, func(ctx context.Context, _ int, _ int) (int, error) {
		if started.Add(1) == 8 {
			cancel()
		}
		<-ctx.Done()
		return 0, nil
	}, WithWorkers(8), WithContext(ctx))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// Pre-cancelled context: nothing runs.
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	var ran atomic.Int64
	_, err = Map(items, func(context.Context, int, int) (int, error) {
		ran.Add(1)
		return 0, nil
	}, WithWorkers(1), WithContext(ctx2))
	if !errors.Is(err, context.Canceled) || ran.Load() != 0 {
		t.Fatalf("pre-cancelled: err=%v ran=%d", err, ran.Load())
	}
}

func TestMapWorkerBound(t *testing.T) {
	const width = 3
	var cur, peak atomic.Int64
	items := make([]int, 64)
	_, err := Map(items, func(_ context.Context, _ int, _ int) (int, error) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		cur.Add(-1)
		return 0, nil
	}, WithWorkers(width))
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > width {
		t.Fatalf("pool exceeded width: peak %d > %d", p, width)
	}
}

func TestGridRowMajor(t *testing.T) {
	as := []int{1, 2, 3}
	bs := []string{"x", "y"}
	got, err := Grid(as, bs, func(_ context.Context, a int, b string) (string, error) {
		return fmt.Sprintf("%d%s", a, b), nil
	}, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"1x", "1y", "2x", "2y", "3x", "3y"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("grid order: got %v want %v", got, want)
	}
}

func TestCacheSingleFlight(t *testing.T) {
	var c Cache[int, int]
	var computes atomic.Int64
	var wg sync.WaitGroup
	const callers = 32
	results := make([]int, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.Do(7, func() (int, error) {
				computes.Add(1)
				time.Sleep(time.Millisecond)
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("caller %d got %d", i, v)
		}
	}
	if c.Len() != 1 {
		t.Fatalf("len %d, want 1", c.Len())
	}
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("len after reset %d", c.Len())
	}
}

func TestCacheMemoizesError(t *testing.T) {
	var c Cache[string, int]
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 3; i++ {
		_, err := c.Do("k", func() (int, error) { calls++; return 0, boom })
		if !errors.Is(err, boom) {
			t.Fatalf("got %v", err)
		}
	}
	if calls != 1 {
		t.Fatalf("failed compute retried: %d calls", calls)
	}
}

func TestDefaultWorkersEnvOverride(t *testing.T) {
	t.Setenv(WorkersEnv, "5")
	if got := DefaultWorkers(); got != 5 {
		t.Fatalf("env override: got %d", got)
	}
	t.Setenv(WorkersEnv, "bogus")
	if got := DefaultWorkers(); got < 1 {
		t.Fatalf("bogus env: got %d", got)
	}
	t.Setenv(WorkersEnv, "-3")
	if got := DefaultWorkers(); got < 1 {
		t.Fatalf("negative env: got %d", got)
	}
}
