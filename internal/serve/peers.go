package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strings"

	"m3d/internal/errs"
)

// Consistent-hash sharding of the evaluation caches across a static
// fleet (Config.Peers). Every cache key hashes onto a ring of virtual
// nodes; exactly one peer owns it. The owner evaluates (and memoizes);
// every other peer forwards the request to the owner and caches the
// decoded response locally. Single-flight is preserved across the
// fleet: the forward happens inside the local cache's compute function,
// so concurrent identical requests on a non-owner coalesce into one
// forward, and the owner's own cache coalesces the forwards of every
// peer into one evaluation.
//
// Failure policy (the part the fault-injection suite pins down):
//   - A deterministic request rejection from the owner (400 bad spec,
//     422 thermal) is authoritative — the same validation would fail
//     locally, so it is relayed, not retried.
//   - Everything else — connection failure, timeout, 429 shed, 5xx, a
//     corrupt or truncated body — falls back to evaluating locally.
//     Evaluations are deterministic, so a fallback returns byte-identical
//     results to the owner's; the fleet degrades to per-node caching,
//     never to an error the client can see.
//   - Forwarded requests carry the hop header and are never re-forwarded,
//     so a stale ring cannot create loops.

// peerHopHeader marks a request already forwarded once; the receiver
// always evaluates locally.
const peerHopHeader = "M3d-Peer-Hop"

// peerVnodes is the virtual-node count per peer: enough for an even key
// split on small static fleets while keeping the ring tiny.
const peerVnodes = 64

type ringEntry struct {
	hash uint64
	peer string
}

// peerRing is the sharding state; a ring without peers is disabled and
// every operation short-circuits to local.
type peerRing struct {
	s      *Server
	self   string
	ring   []ringEntry
	client *http.Client
}

func newPeerRing(s *Server, peers []string, self string, transport http.RoundTripper) *peerRing {
	p := &peerRing{s: s, self: strings.TrimRight(self, "/")}
	if len(peers) == 0 {
		return p
	}
	if transport == nil {
		transport = http.DefaultTransport
	}
	p.client = &http.Client{Transport: transport}
	for _, peer := range peers {
		peer = strings.TrimRight(peer, "/")
		if peer == "" {
			continue
		}
		for v := 0; v < peerVnodes; v++ {
			p.ring = append(p.ring, ringEntry{
				hash: fnv64(fmt.Sprintf("%s#%d", peer, v)),
				peer: peer,
			})
		}
	}
	sort.Slice(p.ring, func(i, j int) bool {
		if p.ring[i].hash != p.ring[j].hash {
			return p.ring[i].hash < p.ring[j].hash
		}
		return p.ring[i].peer < p.ring[j].peer
	})
	return p
}

func fnv64(s string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, s)
	return h.Sum64()
}

// enabled reports whether sharding is configured.
func (p *peerRing) enabled() bool { return p != nil && len(p.ring) > 0 }

// owner returns the peer owning key: the first ring entry at or after
// the key's hash, wrapping at the top.
func (p *peerRing) owner(key string) string {
	h := fnv64(key)
	i := sort.Search(len(p.ring), func(i int) bool { return p.ring[i].hash >= h })
	if i == len(p.ring) {
		i = 0
	}
	return p.ring[i].peer
}

// peerHopKey flags a context whose request already crossed one hop.
type peerHopKey struct{}

func withPeerHop(ctx context.Context) context.Context {
	return context.WithValue(ctx, peerHopKey{}, true)
}

func isPeerHop(ctx context.Context) bool {
	hop, _ := ctx.Value(peerHopKey{}).(bool)
	return hop
}

// peerFetch forwards one evaluation to its owner. handled=true means the
// result (or the owner's authoritative rejection) stands; handled=false
// means the caller owns the key, the request already hopped, or the
// owner was unusable — evaluate locally.
func peerFetch[T any](ctx context.Context, p *peerRing, path, key string, body []byte) (out *T, handled bool, err error) {
	if !p.enabled() || isPeerHop(ctx) {
		return nil, false, nil
	}
	owner := p.owner(key)
	if owner == p.self {
		p.s.reg.Counter("serve.peer.local").Add(1)
		return nil, false, nil
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+path, bytes.NewReader(body))
	if err != nil {
		p.s.reg.Counter("serve.peer.fallbacks").Add(1)
		return nil, false, nil
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(peerHopHeader, p.self)
	resp, err := p.client.Do(req)
	if err != nil {
		p.s.reg.Counter("serve.peer.fallbacks").Add(1)
		return nil, false, nil
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		p.s.reg.Counter("serve.peer.fallbacks").Add(1)
		return nil, false, nil
	}
	switch resp.StatusCode {
	case http.StatusOK:
		out = new(T)
		if err := json.Unmarshal(blob, out); err != nil {
			// Corrupt or truncated body: never surface it — re-evaluate.
			p.s.reg.Counter("serve.peer.fallbacks").Add(1)
			return nil, false, nil
		}
		p.s.reg.Counter("serve.peer.forwarded").Add(1)
		return out, true, nil
	case http.StatusBadRequest, http.StatusUnprocessableEntity:
		// Deterministic rejections are authoritative: local evaluation
		// would fail identically.
		p.s.reg.Counter("serve.peer.errors").Add(1)
		var eb errorBody
		msg := strings.TrimSpace(string(blob))
		if err := json.Unmarshal(blob, &eb); err == nil && eb.Error != "" {
			msg = eb.Error
		}
		sentinel := errs.ErrBadSpec
		if resp.StatusCode == http.StatusUnprocessableEntity {
			sentinel = errs.ErrThermalLimit
		}
		return nil, true, fmt.Errorf("serve: peer %s: %s: %w", owner, msg, sentinel)
	default:
		// Shed (429), server error, or anything unexpected: local fallback.
		p.s.reg.Counter("serve.peer.fallbacks").Add(1)
		return nil, false, nil
	}
}

// peerBody strips the cache-key prefix back to the canonical request
// JSON — the exact body a forward posts to the owner.
func peerBody(key, prefix string) []byte {
	return []byte(strings.TrimPrefix(key, prefix))
}
