package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// submitJob POSTs one job body and decodes the 202 status reply.
func submitJob(t *testing.T, baseURL, body string) JobStatus {
	t.Helper()
	status, _, b := post(t, baseURL+"/v1/jobs", body)
	if status != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs status = %d, body %s", status, b)
	}
	var st JobStatus
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatalf("decoding job status: %v\n%s", err, b)
	}
	if st.ID == "" {
		t.Fatalf("job status without an id: %s", b)
	}
	return st
}

// getJob GETs one job status.
func getJob(t *testing.T, baseURL, id string) JobStatus {
	t.Helper()
	status, b := get(t, baseURL+"/v1/jobs/"+id)
	if status != http.StatusOK {
		t.Fatalf("GET /v1/jobs/%s status = %d, body %s", id, status, b)
	}
	var st JobStatus
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatalf("decoding job status: %v\n%s", err, b)
	}
	return st
}

// waitJob polls until the job reaches want, failing fast when it lands
// on a different terminal state.
func waitJob(t *testing.T, baseURL, id, want string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := getJob(t, baseURL, id)
		if st.State == want {
			return st
		}
		if jobTerminal(st.State) {
			t.Fatalf("job %s settled as %q (error %q), want %q", id, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q waiting for %q", id, st.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// deleteJob issues DELETE /v1/jobs/{id}.
func deleteJob(t *testing.T, baseURL, id string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, baseURL+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

const jobSweepBody = `{"id":"swjob","sweep":{"kind":"delta","deltas":[1.0,1.5,2.0,2.5]},"chunks":2}`

// TestJobSweepLifecycle submits a chunked sweep job and proves the
// lifecycle (202 → queued/running → done), the planned stage sequence,
// and that the final result is byte-identical to the synchronous
// /v1/sweep response for the same request.
func TestJobSweepLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	st := submitJob(t, ts.URL, jobSweepBody)
	if st.Kind != "sweep" {
		t.Fatalf("kind = %q, want sweep", st.Kind)
	}
	wantStages := []string{"part.00", "part.01", "final"}
	if fmt.Sprint(st.Stages) != fmt.Sprint(wantStages) {
		t.Fatalf("stages = %v, want %v", st.Stages, wantStages)
	}
	switch st.State {
	case JobStateAccepted, JobStateQueued, JobStateRunning, JobStateDone:
	default:
		t.Fatalf("submit state = %q", st.State)
	}

	done := waitJob(t, ts.URL, "swjob", JobStateDone)
	if done.Progress != 1 {
		t.Fatalf("done progress = %v, want 1", done.Progress)
	}
	if fmt.Sprint(done.StagesDone) != fmt.Sprint(wantStages) {
		t.Fatalf("stages_done = %v, want %v", done.StagesDone, wantStages)
	}

	status, _, syncBody := post(t, ts.URL+"/v1/sweep", `{"kind":"delta","deltas":[1.0,1.5,2.0,2.5]}`)
	if status != http.StatusOK {
		t.Fatalf("/v1/sweep status = %d", status)
	}
	if !bytes.Equal(done.Result, bytes.TrimSpace(syncBody)) {
		t.Fatalf("chunked job result drifted from the synchronous sweep\njob:  %s\nsync: %s",
			done.Result, syncBody)
	}
}

const jobFlowBody = `{"id":"fljob","flow":{"style":"M3D","num_cs":1,"array_rows":2,"array_cols":2,"rram_cap_mb":1,"banks":1,"global_sram_bits":65536,"seed":1}}`

// TestJobFlowArtifacts runs a flow job to completion and proves the
// result matches the synchronous /v1/flow response and the persisted DEF
// and report artifacts are served back.
func TestJobFlowArtifacts(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	st := submitJob(t, ts.URL, jobFlowBody)
	wantStages := []string{"spec", "eval", "final"}
	if fmt.Sprint(st.Stages) != fmt.Sprint(wantStages) {
		t.Fatalf("stages = %v, want %v", st.Stages, wantStages)
	}
	done := waitJob(t, ts.URL, "fljob", JobStateDone)
	if fmt.Sprint(done.Artifacts) != fmt.Sprint([]string{"def", "report"}) {
		t.Fatalf("artifacts = %v, want [def report]", done.Artifacts)
	}

	status, _, syncBody := post(t, ts.URL+"/v1/flow",
		`{"style":"M3D","num_cs":1,"array_rows":2,"array_cols":2,"rram_cap_mb":1,"banks":1,"global_sram_bits":65536,"seed":1}`)
	if status != http.StatusOK {
		t.Fatalf("/v1/flow status = %d: %s", status, syncBody)
	}
	if !bytes.Equal(done.Result, bytes.TrimSpace(syncBody)) {
		t.Fatalf("flow job result drifted from /v1/flow\njob:  %s\nsync: %s", done.Result, syncBody)
	}

	status, def := get(t, ts.URL+"/v1/jobs/fljob/artifacts/def")
	if status != http.StatusOK {
		t.Fatalf("artifact def status = %d", status)
	}
	if !bytes.HasPrefix(def, []byte("VERSION 5.8")) {
		t.Fatalf("def artifact does not look like DEF:\n%.120s", def)
	}
	status, rep := get(t, ts.URL+"/v1/jobs/fljob/artifacts/report")
	if status != http.StatusOK {
		t.Fatalf("artifact report status = %d", status)
	}
	if !bytes.Contains(rep, []byte("Flow result")) {
		t.Fatalf("report artifact missing header:\n%s", rep)
	}

	if status, _ := get(t, ts.URL+"/v1/jobs/fljob/artifacts/gds"); status != http.StatusNotFound {
		t.Fatalf("unknown artifact status = %d, want 404", status)
	}
}

// TestJobEventsStream reads GET /v1/jobs/{id}/events as the job runs:
// the stream must be a well-formed JSON array of status snapshots with
// monotone non-decreasing progress, ending on the terminal element.
func TestJobEventsStream(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	release := make(chan struct{})
	var once atomic.Bool
	s.evalBlock = func(ctx context.Context) {
		if once.CompareAndSwap(false, true) {
			select {
			case <-release:
			case <-ctx.Done():
			}
		}
	}
	submitJob(t, ts.URL, jobSweepBody)

	resp, err := http.Get(ts.URL + "/v1/jobs/swjob/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status = %d", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	if tok, err := dec.Token(); err != nil || tok != json.Delim('[') {
		t.Fatalf("stream does not open an array: %v %v", tok, err)
	}
	var (
		events   []JobStatus
		released bool
	)
	for dec.More() {
		var ev JobStatus
		if err := dec.Decode(&ev); err != nil {
			t.Fatalf("decoding event %d: %v", len(events), err)
		}
		events = append(events, ev)
		if !released {
			released = true
			close(release)
		}
	}
	if tok, err := dec.Token(); err != nil || tok != json.Delim(']') {
		t.Fatalf("stream does not close the array: %v %v", tok, err)
	}
	if len(events) == 0 {
		t.Fatal("no events streamed")
	}
	last := events[len(events)-1]
	if last.State != JobStateDone {
		t.Fatalf("final event state = %q (error %q), want done", last.State, last.Error)
	}
	prev := -1.0
	for i, ev := range events {
		if ev.Progress < prev {
			t.Fatalf("event %d progress %v regressed below %v", i, ev.Progress, prev)
		}
		prev = ev.Progress
		if ev.ID != "swjob" {
			t.Fatalf("event %d id = %q", i, ev.ID)
		}
	}
}

// TestJobIdempotentResubmit proves resubmitting an existing id with the
// identical request returns the existing job without a second accept,
// while the same id with a different request is refused with 400.
func TestJobIdempotentResubmit(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	submitJob(t, ts.URL, jobSweepBody)
	waitJob(t, ts.URL, "swjob", JobStateDone)

	st := submitJob(t, ts.URL, jobSweepBody)
	if st.State != JobStateDone {
		t.Fatalf("resubmit state = %q, want done", st.State)
	}
	if got := s.Metrics().Counter("serve.jobs.submitted").Value(); got != 1 {
		t.Fatalf("serve.jobs.submitted = %d after resubmit, want 1", got)
	}

	status, _, body := post(t, ts.URL+"/v1/jobs",
		`{"id":"swjob","sweep":{"kind":"delta","deltas":[9.0]}}`)
	if status != http.StatusBadRequest {
		t.Fatalf("conflicting resubmit status = %d, body %s", status, body)
	}
}

// TestJobNotFound maps unknown job ids to 404 on every jobs route.
func TestJobNotFound(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, url := range []string{
		"/v1/jobs/nope",
		"/v1/jobs/nope/events",
		"/v1/jobs/nope/artifacts/def",
	} {
		if status, body := get(t, ts.URL+url); status != http.StatusNotFound {
			t.Errorf("GET %s status = %d, want 404 (%s)", url, status, body)
		}
	}
	if status, body := deleteJob(t, ts.URL, "nope"); status != http.StatusNotFound {
		t.Errorf("DELETE status = %d, want 404 (%s)", status, body)
	}
}

// TestJobBadRequests exercises the request validator: every rejection is
// a 400 before any job state is created.
func TestJobBadRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	for _, tc := range []struct{ name, body string }{
		{"empty", `{}`},
		{"two_kinds", `{"sweep":{"kind":"delta"},"flow":{"num_cs":1}}`},
		{"chunks_on_flow", `{"flow":{"num_cs":1},"chunks":2}`},
		{"chunks_negative", `{"sweep":{"kind":"delta"},"chunks":-1}`},
		{"chunks_huge", `{"sweep":{"kind":"delta"},"chunks":99}`},
		{"id_slash", `{"id":"a/b","sweep":{"kind":"delta"}}`},
		{"id_dotdot", `{"id":"..","sweep":{"kind":"delta"}}`},
		{"id_long", `{"id":"` + strings.Repeat("x", 65) + `","sweep":{"kind":"delta"}}`},
		{"bad_nested", `{"sweep":{"kind":"warp"}}`},
		{"unknown_field", `{"sweep":{"kind":"delta"},"bogus":1}`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			status, _, body := post(t, ts.URL+"/v1/jobs", tc.body)
			if status != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (%s)", status, body)
			}
		})
	}
	if got := s.Metrics().Counter("serve.jobs.submitted").Value(); got != 0 {
		t.Fatalf("serve.jobs.submitted = %d after rejections, want 0", got)
	}
}

// TestJobQueueShedAndCancel pins the Gate/queue interaction: with one
// running slot and one queue position, the third concurrent job sheds
// with 429 + Retry-After and leaves no state behind; canceling the
// queued job settles it canceled without ever running and frees its
// position.
func TestJobQueueShedAndCancel(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxJobs: 1, MaxJobQueue: 1})
	release := make(chan struct{})
	var evals atomic.Int32
	s.evalStarted = func() { evals.Add(1) }
	s.evalBlock = func(ctx context.Context) {
		select {
		case <-release:
		case <-ctx.Done():
		}
	}

	submitJob(t, ts.URL, `{"id":"run1","sweep":{"kind":"delta","deltas":[1.0]}}`)
	waitJob(t, ts.URL, "run1", JobStateRunning)
	submitJob(t, ts.URL, `{"id":"wait1","sweep":{"kind":"delta","deltas":[1.5]}}`)

	status, hdr, body := post(t, ts.URL+"/v1/jobs",
		`{"id":"shed1","sweep":{"kind":"delta","deltas":[2.0]}}`)
	if status != http.StatusTooManyRequests {
		t.Fatalf("third job status = %d, want 429 (%s)", status, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if got, _ := get(t, ts.URL+"/v1/jobs/shed1"); got != http.StatusNotFound {
		t.Fatalf("shed job left state behind: GET status = %d, want 404", got)
	}
	if got := s.Metrics().Counter("serve.jobs.shed").Value(); got != 1 {
		t.Fatalf("serve.jobs.shed = %d, want 1", got)
	}

	// Cancel the queued job: it must settle canceled without running.
	if status, body := deleteJob(t, ts.URL, "wait1"); status != http.StatusOK {
		t.Fatalf("DELETE wait1 status = %d (%s)", status, body)
	}
	deadline := time.Now().Add(10 * time.Second)
	for getJob(t, ts.URL, "wait1").State != JobStateCanceled {
		if time.Now().After(deadline) {
			t.Fatalf("wait1 state = %q, want canceled", getJob(t, ts.URL, "wait1").State)
		}
		time.Sleep(time.Millisecond)
	}

	// Its queue position must be free again: a fresh job queues (not 429)
	// and completes once the runner is released.
	submitJob(t, ts.URL, `{"id":"next1","sweep":{"kind":"delta","deltas":[2.5]}}`)
	close(release)
	waitJob(t, ts.URL, "run1", JobStateDone)
	waitJob(t, ts.URL, "next1", JobStateDone)
	if got := evals.Load(); got != 2 {
		t.Fatalf("evaluations = %d, want 2 (run1 + next1; the canceled job must never run)", got)
	}
}

// TestJobCancelRunning cancels a job mid-stage: the evaluation context
// ends, the job settles canceled, and the slot frees for later jobs.
func TestJobCancelRunning(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxJobs: 1})
	s.evalBlock = func(ctx context.Context) { <-ctx.Done() }
	submitJob(t, ts.URL, `{"id":"c1","sweep":{"kind":"delta","deltas":[1.0]}}`)
	waitJob(t, ts.URL, "c1", JobStateRunning)
	if status, body := deleteJob(t, ts.URL, "c1"); status != http.StatusOK {
		t.Fatalf("DELETE status = %d (%s)", status, body)
	}
	deadline := time.Now().Add(10 * time.Second)
	for getJob(t, ts.URL, "c1").State != JobStateCanceled {
		if time.Now().After(deadline) {
			t.Fatalf("state = %q, want canceled", getJob(t, ts.URL, "c1").State)
		}
		time.Sleep(time.Millisecond)
	}
	// DELETE on a terminal job is idempotent.
	if status, _ := deleteJob(t, ts.URL, "c1"); status != http.StatusOK {
		t.Fatalf("second DELETE status = %d, want 200", status)
	}

	s.evalBlock = nil
	submitJob(t, ts.URL, `{"id":"c2","sweep":{"kind":"delta","deltas":[1.5]}}`)
	waitJob(t, ts.URL, "c2", JobStateDone)
}

// TestJobDrainParksAndResumes extends the drain choreography to
// in-flight jobs: Drain interrupts the running stage and parks both the
// running and the queued job back in "queued" with their checkpoints
// intact; a new server over the same store resumes both to completion.
func TestJobDrainParksAndResumes(t *testing.T) {
	store := NewMemJobStore()
	s, ts := newTestServer(t, Config{MaxJobs: 1, JobStore: store})
	s.evalBlock = func(ctx context.Context) { <-ctx.Done() }

	submitJob(t, ts.URL, `{"id":"d1","sweep":{"kind":"delta","deltas":[1.0,1.5]},"chunks":2}`)
	waitJob(t, ts.URL, "d1", JobStateRunning)
	submitJob(t, ts.URL, `{"id":"d2","sweep":{"kind":"delta","deltas":[2.0]}}`)

	drainCtx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	for _, id := range []string{"d1", "d2"} {
		b, err := store.GetJob(id)
		if err != nil {
			t.Fatalf("store job %s: %v", id, err)
		}
		var rec jobRecord
		if err := json.Unmarshal(b, &rec); err != nil {
			t.Fatal(err)
		}
		if rec.State != JobStateQueued {
			t.Fatalf("parked job %s state = %q, want queued", id, rec.State)
		}
	}
	if got := s.Metrics().Counter("serve.jobs.interrupted").Value(); got != 2 {
		t.Fatalf("serve.jobs.interrupted = %d, want 2", got)
	}
	if status, _, _ := post(t, ts.URL+"/v1/jobs", jobSweepBody); status != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit status = %d, want 503", status)
	}

	// Restart over the same store: both parked jobs resume and finish.
	s2, ts2 := newTestServer(t, Config{MaxJobs: 1, JobStore: store})
	waitJob(t, ts2.URL, "d1", JobStateDone)
	waitJob(t, ts2.URL, "d2", JobStateDone)
	if got := s2.Metrics().Counter("serve.jobs.resumed").Value(); got != 2 {
		t.Fatalf("serve.jobs.resumed = %d, want 2", got)
	}
}
