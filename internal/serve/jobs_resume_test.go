package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"testing"
)

// fetchArtifact reads one job artifact, requiring 200.
func fetchArtifact(t *testing.T, baseURL, id, name string) []byte {
	t.Helper()
	status, b := get(t, baseURL+"/v1/jobs/"+id+"/artifacts/"+name)
	if status != http.StatusOK {
		t.Fatalf("artifact %s/%s status = %d: %s", id, name, status, b)
	}
	return b
}

// TestJobCrashResumeByteIdentical is the crash/resume end-to-end gate:
// a flow job is killed hard after its first checkpointed stage, a new
// server is started against the same store, and the resumed job's
// result, DEF artifact and report artifact must be byte-identical to an
// uninterrupted run — at pool widths 1, 2 and 8. This is the serving
// layer's inheritance of the flow's width-independence guarantee: a
// checkpointed stage is a pure function of the request, so replaying
// the remainder reproduces the interrupted run exactly.
func TestJobCrashResumeByteIdentical(t *testing.T) {
	const body = `{"id":"crash","flow":{"style":"M3D","num_cs":1,"array_rows":2,"array_cols":2,"rram_cap_mb":1,"banks":1,"global_sram_bits":65536,"seed":7}}`

	// Reference: the same job uninterrupted, at width 1.
	_, tsRef := newTestServer(t, Config{Workers: 1})
	submitJob(t, tsRef.URL, body)
	ref := waitJob(t, tsRef.URL, "crash", JobStateDone)
	refDEF := fetchArtifact(t, tsRef.URL, "crash", "def")
	refReport := fetchArtifact(t, tsRef.URL, "crash", "report")

	for _, width := range widths {
		t.Run(fmt.Sprintf("width=%d", width), func(t *testing.T) {
			dir := t.TempDir()
			store1, err := NewDirJobStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			s1, ts1 := newTestServer(t, Config{Workers: width, JobStore: store1})
			specDone := make(chan struct{})
			killed := make(chan struct{})
			s1.jobs.stageDone = func(id, stage string) {
				if stage == "spec" {
					close(specDone)
					<-killed // hold the runner here so the kill races nothing
				}
			}
			submitJob(t, ts1.URL, body)
			<-specDone
			hardKillUnblock(s1, killed)

			// Restart against the same directory: the job must resume past
			// the "spec" checkpoint and finish.
			store2, err := NewDirJobStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			s2, ts2 := newTestServer(t, Config{Workers: width, JobStore: store2})
			if got := s2.Metrics().Counter("serve.jobs.resumed").Value(); got != 1 {
				t.Fatalf("serve.jobs.resumed = %d, want 1", got)
			}
			done := waitJob(t, ts2.URL, "crash", JobStateDone)

			if !bytes.Equal(done.Result, ref.Result) {
				t.Errorf("resumed result drifted from the uninterrupted run\nresumed: %s\nref:     %s",
					done.Result, ref.Result)
			}
			if gotDEF := fetchArtifact(t, ts2.URL, "crash", "def"); !bytes.Equal(gotDEF, refDEF) {
				t.Errorf("resumed DEF artifact drifted from the uninterrupted run (%d vs %d bytes)",
					len(gotDEF), len(refDEF))
			}
			if gotRep := fetchArtifact(t, ts2.URL, "crash", "report"); !bytes.Equal(gotRep, refReport) {
				t.Errorf("resumed report artifact drifted\nresumed:\n%s\nref:\n%s", gotRep, refReport)
			}
		})
	}
}

// TestJobSweepResumeSkipsDoneChunks kills a chunked sweep job after its
// first part checkpointed and proves the restarted server re-evaluates
// only the remaining chunk: the completed part is loaded from the store
// (exactly one local sweep evaluation on the second server), and the
// concatenated rows are byte-identical to the uninterrupted response.
func TestJobSweepResumeSkipsDoneChunks(t *testing.T) {
	const body = `{"id":"swres","sweep":{"kind":"delta","deltas":[1.0,1.5,2.0,2.5]},"chunks":2}`

	_, tsRef := newTestServer(t, Config{})
	submitJob(t, tsRef.URL, body)
	ref := waitJob(t, tsRef.URL, "swres", JobStateDone)

	dir := t.TempDir()
	store1, err := NewDirJobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1, ts1 := newTestServer(t, Config{JobStore: store1})
	partDone := make(chan struct{})
	killed := make(chan struct{})
	s1.jobs.stageDone = func(id, stage string) {
		if stage == "part.00" {
			close(partDone)
			<-killed
		}
	}
	submitJob(t, ts1.URL, body)
	<-partDone
	hardKillUnblock(s1, killed)

	store2, err := NewDirJobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, ts2 := newTestServer(t, Config{JobStore: store2})
	done := waitJob(t, ts2.URL, "swres", JobStateDone)
	if !bytes.Equal(done.Result, ref.Result) {
		t.Errorf("resumed sweep result drifted\nresumed: %s\nref:     %s", done.Result, ref.Result)
	}
	if got := s2.Metrics().Counter("serve.sweep.evals").Value(); got != 1 {
		t.Errorf("serve.sweep.evals on resume = %d, want 1 (part.00 must load from its checkpoint)", got)
	}
}

// hardKillUnblock is hardKill for tests whose stageDone hook is parked
// on a channel: the kill must land before the runner resumes.
func hardKillUnblock(s *Server, unblock chan struct{}) {
	s.jobs.mu.Lock()
	s.jobs.noPersist = true
	s.jobs.mu.Unlock()
	s.jobs.baseCancel()
	close(unblock)
	s.jobs.queue.Wait()
}
