package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// benchPost drives one POST /v1/sweep and requires a 200.
func benchPost(b *testing.B, url, body string) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status = %d", resp.StatusCode)
	}
}

// BenchmarkSweepCached measures requests/sec for a repeated identical
// sweep: after the first evaluation every request is a coalescing-cache
// hit, so this is the HTTP + JSON + admission overhead of the service.
func BenchmarkSweepCached(b *testing.B) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	body := `{"kind":"delta","deltas":[1.0,1.5,2.0]}`
	benchPost(b, ts.URL+"/v1/sweep", body) // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, ts.URL+"/v1/sweep", body)
	}
}

// BenchmarkSweepUncached measures requests/sec when every request is a
// distinct sweep (unique δ axis per request), so each one runs a real
// evaluation on the pool.
func BenchmarkSweepUncached(b *testing.B) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := fmt.Sprintf(`{"kind":"delta","deltas":[1.0,1.5,%g]}`, 2.0+float64(i)/1e6)
		benchPost(b, ts.URL+"/v1/sweep", body)
	}
}
