package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"m3d/internal/errs"
)

// TestGracefulDrain walks the full drain choreography: an in-flight
// request completes, a request arriving mid-drain is refused with 503,
// and Drain returns once the server is idle.
func TestGracefulDrain(t *testing.T) {
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	s := New(Config{Workers: 1})
	s.evalStarted = func() { started <- struct{}{} }
	s.evalBlock = func(ctx context.Context) {
		select {
		case <-release:
		case <-ctx.Done():
		}
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	inFlight := make(chan int, 1)
	go func() {
		status, _, _ := post(t, ts.URL+"/v1/sweep", `{"kind":"bandwidth_cs","cs_counts":[1],"bw_scales":[1]}`)
		inFlight <- status
	}()
	<-started

	drained := make(chan error, 1)
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelDrain()
	go func() { drained <- s.Drain(drainCtx) }()

	// Once draining, every new request — evaluation or probe — is
	// refused with 503 + Retry-After while the in-flight one lives on.
	waitFor(t, "drain mode", func() bool {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusServiceUnavailable
	})
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("mid-drain request status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 response missing Retry-After")
	}
	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v with a request in flight", err)
	default:
	}

	// The in-flight request completes normally and Drain comes home.
	close(release)
	if status := <-inFlight; status != http.StatusOK {
		t.Fatalf("in-flight request status = %d, want 200", status)
	}
	if err := <-drained; err != nil {
		t.Fatalf("Drain = %v, want nil", err)
	}

	// Drain is idempotent and the server stays refusing.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("second Drain = %v", err)
	}
	status, _, _ := post(t, ts.URL+"/v1/sweep", `{"kind":"bandwidth_cs","cs_counts":[1],"bw_scales":[1]}`)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("post-drain status = %d, want 503", status)
	}
}

// TestDrainDeadline: a drain whose context is already expired reports
// the in-flight request via an error matching both errs.ErrCanceled and
// the context sentinel (no real clock involved — the deadline is the
// injected context's).
func TestDrainDeadline(t *testing.T) {
	started := make(chan struct{}, 8)
	s := New(Config{Workers: 1})
	s.evalStarted = func() { started <- struct{}{} }
	s.evalBlock = func(ctx context.Context) { <-ctx.Done() }
	ts := httptest.NewServer(s)

	reqCtx, cancelReq := context.WithCancel(context.Background())
	reqDone := make(chan struct{})
	go func() {
		defer close(reqDone)
		req, err := http.NewRequestWithContext(reqCtx, "POST", ts.URL+"/v1/sweep",
			strings.NewReader(`{"kind":"bandwidth_cs","cs_counts":[1],"bw_scales":[1]}`))
		if err != nil {
			t.Error(err)
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started

	expired, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel()
	err := s.Drain(expired)
	if !errors.Is(err, errs.ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain = %v, want ErrCanceled matching DeadlineExceeded", err)
	}

	// Cancel the stuck request; the drain then completes.
	cancelReq()
	<-reqDone
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("Drain after release = %v", err)
	}
	ts.Close()
}

// TestDrainIdle: draining an idle server returns immediately.
func TestDrainIdle(t *testing.T) {
	s := New(Config{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain idle = %v", err)
	}
}
