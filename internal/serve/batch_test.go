package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// batchMixedBody is the acceptance batch: a good sweep, a bad spec, a
// thermal violation, a malformed one-of, and a bad flow style — success
// and every failure family in one request, each isolated to its item.
const batchMixedBody = `[
  {"sweep":{"kind":"delta","deltas":[1.0,1.5]}},
  {"sweep":{"kind":"warp"}},
  {"sweep":{"kind":"tier_pairs","tier_pairs":[8],"per_tier_power_w":50,"require_thermal":true}},
  {"sweep":{"kind":"delta"},"flow":{"style":"2D"}},
  {"flow":{"style":"4D"}}
]`

// TestBatchMixedGolden locks the full streamed reply for the mixed
// success/bad-spec/thermal-limit batch, bit-identical at pool widths
// 1, 2 and 8 (items stream in input order regardless of evaluation
// interleaving).
func TestBatchMixedGolden(t *testing.T) {
	var first []byte
	for _, width := range widths {
		_, ts := newTestServer(t, Config{Workers: width})
		status, _, body := post(t, ts.URL+"/v1/batch", batchMixedBody)
		if status != http.StatusOK {
			t.Fatalf("width %d: status = %d, body %s", width, status, body)
		}
		if first == nil {
			first = body
			checkGolden(t, "batch_mixed.golden.json", body)
		} else if !bytes.Equal(body, first) {
			t.Fatalf("width %d: batch response diverged\ngot:\n%s\nwant:\n%s", width, body, first)
		}
	}
}

// TestBatchReplyShape decodes the mixed batch reply as plain JSON and
// pins the per-item status contract (the golden pins bytes; this pins
// semantics).
func TestBatchReplyShape(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	status, _, body := post(t, ts.URL+"/v1/batch", batchMixedBody)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}
	var items []BatchItemResult
	if err := json.Unmarshal(body, &items); err != nil {
		t.Fatalf("reply is not a JSON array: %v\n%s", err, body)
	}
	wantStatus := []int{200, 400, 422, 400, 400}
	if len(items) != len(wantStatus) {
		t.Fatalf("got %d items, want %d", len(items), len(wantStatus))
	}
	for i, it := range items {
		if it.Index != i {
			t.Errorf("item %d: index = %d", i, it.Index)
		}
		if it.Status != wantStatus[i] {
			t.Errorf("item %d: status = %d, want %d (error %q)", i, it.Status, wantStatus[i], it.Error)
		}
		if (it.Status == http.StatusOK) != (it.Error == "") {
			t.Errorf("item %d: status %d with error %q", i, it.Status, it.Error)
		}
	}
	if items[0].Sweep == nil || len(items[0].Sweep.Rows) != 2 {
		t.Errorf("item 0 payload missing: %+v", items[0].Sweep)
	}
	reg := s.Metrics()
	if got := reg.Counter("serve.batch.requests").Value(); got != 1 {
		t.Errorf("serve.batch.requests = %d, want 1", got)
	}
	if got := reg.Counter("serve.batch.items").Value(); got != 5 {
		t.Errorf("serve.batch.items = %d, want 5", got)
	}
	if got := reg.Counter("serve.batch.item.errors").Value(); got != 4 {
		t.Errorf("serve.batch.item.errors = %d, want 4", got)
	}
}

// TestBatchWholeRequestErrors pins the only cases that fail the batch as
// a whole: a body that is not a JSON array, an empty array, and an
// oversized one.
func TestBatchWholeRequestErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	huge := "[" + strings.Repeat(`{"sweep":{"kind":"delta"}},`, maxBatchItems) + `{"sweep":{"kind":"delta"}}]`
	for _, tc := range []struct{ name, body string }{
		{"not an array", `{"sweep":{"kind":"delta"}}`},
		{"malformed json", `[{"sweep":`},
		{"trailing garbage", `[] extra`},
		{"empty array", `[]`},
		{"too many items", huge},
	} {
		t.Run(tc.name, func(t *testing.T) {
			status, _, body := post(t, ts.URL+"/v1/batch", tc.body)
			if status != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (body %.120s)", status, body)
			}
			var eb errorBody
			if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
				t.Fatalf("error body %.120q not a JSON error envelope", body)
			}
		})
	}
}

// TestBatchFlowItem runs a real flow inside a batch and checks it lands
// in the same coalescing cache as /v1/flow.
func TestBatchFlowItem(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	flowReq := `{"style":"M3D","num_cs":2,"array_rows":2,"array_cols":2,"rram_cap_mb":1,"banks":2,"global_sram_bits":65536,"seed":1}`
	status, _, body := post(t, ts.URL+"/v1/batch", `[{"flow":`+flowReq+`}]`)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}
	var items []BatchItemResult
	if err := json.Unmarshal(body, &items); err != nil || len(items) != 1 || items[0].Flow == nil {
		t.Fatalf("bad batch flow reply (%v): %s", err, body)
	}
	// The standalone endpoint must now hit the shared cache: still one
	// evaluation.
	if status, _, _ := post(t, ts.URL+"/v1/flow", flowReq); status != http.StatusOK {
		t.Fatalf("follow-up /v1/flow status = %d", status)
	}
	if got := s.Metrics().Counter("serve.flow.evals").Value(); got != 1 {
		t.Fatalf("flow evals = %d, want 1 (batch + endpoint coalesced)", got)
	}
}

// TestBatchCoalescesDuplicateItems proves two identical items inside one
// batch evaluate once via single-flight, at every pool width.
func TestBatchCoalescesDuplicateItems(t *testing.T) {
	for _, width := range widths {
		t.Run(fmt.Sprintf("w%d", width), func(t *testing.T) {
			s, ts := newTestServer(t, Config{Workers: width})
			body := `[{"sweep":{"kind":"delta","deltas":[1.0,2.0]}},{"sweep":{"kind":"delta","deltas":[1.0,2.0]}}]`
			status, _, reply := post(t, ts.URL+"/v1/batch", body)
			if status != http.StatusOK {
				t.Fatalf("status = %d, body %s", status, reply)
			}
			var items []BatchItemResult
			if err := json.Unmarshal(reply, &items); err != nil || len(items) != 2 {
				t.Fatalf("bad reply (%v): %s", err, reply)
			}
			a, _ := json.Marshal(items[0].Sweep)
			b, _ := json.Marshal(items[1].Sweep)
			if !bytes.Equal(a, b) {
				t.Fatalf("duplicate items disagree: %s vs %s", a, b)
			}
			if got := s.Metrics().Counter("serve.sweep.evals").Value(); got != 1 {
				t.Fatalf("sweep evals = %d, want 1", got)
			}
		})
	}
}

// TestBatchStreamsPartialResults proves chunked partial-result delivery:
// a batch of [cached item, blocked item] yields the first element on the
// wire while the second is still evaluating.
func TestBatchStreamsPartialResults(t *testing.T) {
	var blocking atomic.Bool
	blocked := make(chan struct{}, 1)
	release := make(chan struct{})
	s := New(Config{Workers: 2})
	s.evalStarted = func() {
		if blocking.Load() {
			blocked <- struct{}{}
		}
	}
	s.evalBlock = func(ctx context.Context) {
		if blocking.Load() {
			select {
			case <-release:
			case <-ctx.Done():
			}
		}
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Warm item 0 through the standalone endpoint, then turn blocking on:
	// in the batch, item 0 is a cache hit (no eval, no block), item 1
	// evaluates and parks on the release channel.
	warm := `{"kind":"delta","deltas":[1.0,1.25]}`
	if status, _, b := post(t, ts.URL+"/v1/sweep", warm); status != http.StatusOK {
		t.Fatalf("warm status = %d, body %s", status, b)
	}
	blocking.Store(true)

	body := `[{"sweep":` + warm + `},{"sweep":{"kind":"delta","deltas":[1.0,1.75]}}]`
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if len(resp.TransferEncoding) != 1 || resp.TransferEncoding[0] != "chunked" {
		t.Fatalf("TransferEncoding = %v, want [chunked]", resp.TransferEncoding)
	}

	<-blocked // item 1 is now provably mid-evaluation
	br := bufio.NewReader(resp.Body)
	readLine := func() string {
		t.Helper()
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading stream: %v (got %q)", err, line)
		}
		return strings.TrimSpace(line)
	}
	if got := readLine(); got != "[" {
		t.Fatalf("stream opener = %q, want [", got)
	}
	var item0 BatchItemResult
	if err := json.Unmarshal([]byte(readLine()), &item0); err != nil {
		t.Fatalf("first streamed element: %v", err)
	}
	if item0.Index != 0 || item0.Status != http.StatusOK || item0.Sweep == nil {
		t.Fatalf("first streamed element = %+v", item0)
	}
	// Item 0 arrived while item 1 was still blocked; release and drain.
	close(release)
	rest, _ := readAll(br)
	if !strings.Contains(rest, `"index":1`) {
		t.Fatalf("tail missing item 1: %q", rest)
	}
	if !strings.HasSuffix(strings.TrimSpace(rest), "]") {
		t.Fatalf("stream not closed: %q", rest)
	}
}

func readAll(br *bufio.Reader) (string, error) {
	var sb strings.Builder
	buf := make([]byte, 1024)
	for {
		n, err := br.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String(), err
		}
	}
}

// TestServeCacheBounded is the acceptance load test: under sustained
// randomized-key traffic against a CacheCap-bounded server, the sweep
// cache entry count never exceeds the configured capacity at any
// observation point, entries are really evicted, and every response is
// still correct. Client concurrency stays at or below the capacity — the
// documented regime in which the bound is exact (in-flight single-flight
// entries cannot be evicted).
func TestServeCacheBounded(t *testing.T) {
	const (
		capacity  = 8
		clients   = 4
		perClient = 50
	)
	s, ts := newTestServer(t, Config{Workers: 2, CacheCap: capacity})
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				// Distinct key per (client, i), with a 20% revisit of the
				// client's previous key to exercise LRU touching. The
				// bandwidth_cs kind keeps each evaluation to a few
				// microseconds of pure analytic math, so the test hammers
				// the cache, not the evaluator.
				bw := 1.0 + float64(c*perClient+i)/1000
				if i%5 == 4 {
					bw = 1.0 + float64(c*perClient+i-1)/1000
				}
				body := fmt.Sprintf(`{"kind":"bandwidth_cs","cs_counts":[1,2],"bw_scales":[1,%g]}`, bw)
				resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
				if err != nil {
					errCh <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("status %d for %s", resp.StatusCode, body)
					return
				}
				if n := s.sweeps.Len(); n > capacity {
					errCh <- fmt.Errorf("cache entries %d > cap %d", n, capacity)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if n := s.sweeps.Len(); n > capacity {
		t.Fatalf("final cache entries %d > cap %d", n, capacity)
	}
	reg := s.Metrics()
	if ev := reg.Counter("cache.evictions").Value(); ev == 0 {
		t.Fatal("no evictions under randomized load; the bound was never exercised")
	}
	if got, want := reg.Gauge("cache.entries").Value(), int64(s.sweeps.Len()+s.flows.Len()); got != want {
		t.Fatalf("cache.entries gauge %d != live entries %d", got, want)
	}
}
