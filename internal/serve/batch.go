package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"m3d/internal/obs"
)

// maxBatchItems bounds one POST /v1/batch body. A batch occupies a
// single admission slot, so the bound keeps one request from smuggling
// an unbounded amount of work past the gate.
const maxBatchItems = 256

// BatchItem is one element of the POST /v1/batch array: exactly one of
// Sweep or Flow must be set.
type BatchItem struct {
	Sweep *SweepRequest `json:"sweep,omitempty"`
	Flow  *FlowRequest  `json:"flow,omitempty"`
}

// BatchItemResult is one element of the POST /v1/batch reply array,
// streamed in input order as evaluations finish. Status carries the HTTP
// status the item would have received as a standalone request
// (200/400/422/408/...); exactly one of Sweep/Flow is set on success,
// Error on failure. Item failures are isolated: one bad spec or thermal
// violation fails that item only, never its neighbours.
type BatchItemResult struct {
	Index  int            `json:"index"`
	Status int            `json:"status"`
	Error  string         `json:"error,omitempty"`
	Sweep  *SweepResponse `json:"sweep,omitempty"`
	Flow   *FlowResponse  `json:"flow,omitempty"`
}

// handleBatch is POST /v1/batch: a heterogeneous array of sweep/flow
// items evaluated under ONE admission slot (taken by the route handler),
// fanned out through the exec pool, and streamed back as a chunked JSON
// array in input order — each element is flushed as soon as it (and all
// lower-indexed items) finished, so clients consume early results while
// later items still compute. Items share the endpoint coalescing caches,
// so duplicates inside a batch, across batches, and against /v1/sweep //
// /v1/flow all evaluate once.
//
// The top-level request fails as a whole (400) only when the body is not
// a well-formed JSON array or exceeds maxBatchItems; everything
// item-level — malformed item object, unknown field, invalid spec,
// thermal violation, canceled evaluation — is reported in that item's
// Status/Error with its neighbours unaffected.
func (s *Server) handleBatch(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	// Decode leniently to raw items first: per-item JSON problems must
	// isolate to the item, only an unparseable array is a request error.
	var raws []json.RawMessage
	if err := decode(r.Body, &raws); err != nil {
		return err
	}
	if len(raws) == 0 {
		return badSpec("batch needs at least one item")
	}
	if len(raws) > maxBatchItems {
		return badSpec("%d batch items exceed the per-request limit %d", len(raws), maxBatchItems)
	}

	n := len(raws)
	s.reg.Counter("serve.batch.requests").Add(1)
	s.reg.Counter("serve.batch.items").Add(int64(n))
	var sp obs.Span
	if s.tracer != nil {
		sp = s.tracer.StartSpan("serve.batch.run", obs.Int("items", n))
	}

	// Fan out: one goroutine per item, at most the pool width evaluating
	// at once (each evaluation itself fans its sweep grid / flow stages
	// onto the exec pool). Results land in their input slot; the writer
	// below streams slot i as soon as items 0..i are settled.
	results := make([]*BatchItemResult, n)
	done := make([]chan struct{}, n)
	for i := range done {
		done[i] = make(chan struct{})
	}
	sem := make(chan struct{}, s.workers)
	for i, raw := range raws {
		go func(i int, raw json.RawMessage) {
			defer close(done[i])
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				results[i] = s.batchResult(i, nil, canceledErr(ctx))
				return
			}
			results[i] = s.evalBatchItem(ctx, i, raw)
		}(i, raw)
	}

	// Stream the reply through the shared chunked-array encoder: status
	// and headers commit before the first item, so item failures surface
	// in-band; slot i flushes as soon as items 0..i are settled.
	st := newArrayStream(w)
	if !st.ok() {
		return nil // client gone; the handler already committed 200
	}
	itemErrs := s.reg.Counter("serve.batch.item.errors")
	for i := 0; i < n; i++ {
		<-done[i]
		if results[i].Error != "" {
			itemErrs.Add(1)
		}
		if !st.emit(results[i]) {
			break
		}
	}
	st.close()
	if sp != nil {
		sp.End()
	}
	return nil
}

// evalBatchItem decodes, validates and evaluates one raw batch item,
// folding any failure into the item's result.
func (s *Server) evalBatchItem(ctx context.Context, idx int, raw json.RawMessage) *BatchItemResult {
	item, err := decodeBatchItem(raw)
	if err != nil {
		return s.batchResult(idx, nil, err)
	}
	if item.Sweep != nil {
		resp, err := s.sweepCached(ctx, item.Sweep)
		if err != nil {
			return s.batchResult(idx, nil, err)
		}
		return s.batchResult(idx, &BatchItemResult{Sweep: resp}, nil)
	}
	resp, err := s.flowCached(ctx, item.Flow)
	if err != nil {
		return s.batchResult(idx, nil, err)
	}
	return s.batchResult(idx, &BatchItemResult{Flow: resp}, nil)
}

// decodeBatchItem strictly decodes one array element and checks the
// sweep/flow one-of. Violations match errs.ErrBadSpec.
func decodeBatchItem(raw json.RawMessage) (*BatchItem, error) {
	var item BatchItem
	if err := decode(bytes.NewReader(raw), &item); err != nil {
		return nil, err
	}
	if (item.Sweep == nil) == (item.Flow == nil) {
		return nil, badSpec("batch item needs exactly one of sweep or flow")
	}
	return &item, nil
}

// batchResult fills the Index/Status/Error envelope around a settled
// item: ok carries the success payload, err the failure.
func (s *Server) batchResult(idx int, ok *BatchItemResult, err error) *BatchItemResult {
	if err != nil {
		return &BatchItemResult{Index: idx, Status: statusOf(err), Error: err.Error()}
	}
	ok.Index = idx
	ok.Status = http.StatusOK
	return ok
}

// canceledErr wraps a finished context's error so statusOf maps it to
// 408, matching a standalone request canceled at the same point.
func canceledErr(ctx context.Context) error {
	return fmt.Errorf("serve: batch item not started: %w", ctx.Err())
}
