package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"m3d/internal/analytic"
	"m3d/internal/arch"
	"m3d/internal/core"
	"m3d/internal/errs"
)

// Sweep kinds: which design-space axis POST /v1/sweep walks.
const (
	// KindBandwidthCS is the Fig. 8 (CS count × bandwidth scale) grid.
	KindBandwidthCS = "bandwidth_cs"
	// KindRRAMCapacity is the Fig. 9 iso-capacity sweep.
	KindRRAMCapacity = "rram_capacity"
	// KindDelta is the Fig. 10b-c BEOL FET width relaxation sweep (Case 1).
	KindDelta = "delta"
	// KindBeta is the Obs. 8 M3D via pitch sweep (Case 2).
	KindBeta = "beta"
	// KindTierPairs is the Fig. 10d interleaved tier-pair sweep (Case 3)
	// with the Eq. 17 thermal state of each stack.
	KindTierPairs = "tier_pairs"
)

// maxSweepPoints bounds one request's grid so a single malformed or
// hostile request cannot monopolize the service.
const maxSweepPoints = 65536

// maxTierPairs bounds the Case 3 stack depth (each pair allocates
// per-tier power state; far above the thermally feasible range).
const maxTierPairs = 4096

// SweepParams mirrors analytic.Params on the wire (Sec. III machine
// quantities). Omitted → the paper's case-study parameters.
type SweepParams struct {
	PPeak    float64 `json:"p_peak"`
	B2D      float64 `json:"b_2d"`
	B3D      float64 `json:"b_3d"`
	N        int     `json:"n"`
	Alpha2D  float64 `json:"alpha_2d"`
	Alpha3D  float64 `json:"alpha_3d"`
	EC       float64 `json:"e_c"`
	ECIdle   float64 `json:"e_c_idle"`
	EMIdle2D float64 `json:"e_m_idle_2d"`
	EMIdle3D float64 `json:"e_m_idle_3d"`
}

// SweepLoad mirrors analytic.Load on the wire. Omitted → the Fig. 8
// compute-bound reference load.
type SweepLoad struct {
	F0    float64 `json:"f0"`
	D0    float64 `json:"d0"`
	NPart int     `json:"n_part"`
}

// SweepRequest is the POST /v1/sweep body. Kind selects the axis; the
// axis fields not belonging to the kind must be left empty. Every axis
// has a paper default when omitted.
type SweepRequest struct {
	Kind string `json:"kind"`

	// bandwidth_cs
	Params   *SweepParams `json:"params,omitempty"`
	Load     *SweepLoad   `json:"load,omitempty"`
	CSCounts []int        `json:"cs_counts,omitempty"`
	BWScales []float64    `json:"bw_scales,omitempty"`

	// rram_capacity
	CapacitiesMB []int `json:"capacities_mb,omitempty"`

	// delta / beta
	Deltas []float64 `json:"deltas,omitempty"`
	Betas  []float64 `json:"betas,omitempty"`

	// tier_pairs
	TierPairs     []int   `json:"tier_pairs,omitempty"`
	PerTierPowerW float64 `json:"per_tier_power_w,omitempty"`
	// RequireThermal fails the request with 422 (errs.ErrThermalLimit)
	// when any swept stack exceeds the PDK's temperature-rise budget.
	RequireThermal bool `json:"require_thermal,omitempty"`
}

// SweepRow is one sweep point. Fields outside the request's kind are
// omitted; EDPBenefit is always present.
type SweepRow struct {
	NumCS      int     `json:"num_cs,omitempty"`
	BWScale    float64 `json:"bw_scale,omitempty"`
	CapacityMB int     `json:"capacity_mb,omitempty"`
	Delta      float64 `json:"delta,omitempty"`
	Beta       float64 `json:"beta,omitempty"`
	N3D        int     `json:"n_3d,omitempty"`
	N2DNew     int     `json:"n_2d_new,omitempty"`
	Y          int     `json:"y,omitempty"`
	N          int     `json:"n,omitempty"`
	TempRiseK  float64 `json:"temp_rise_k,omitempty"`
	ThermalOK  *bool   `json:"thermal_ok,omitempty"`
	EDPBenefit float64 `json:"edp_benefit"`
}

// SweepResponse is the POST /v1/sweep reply.
type SweepResponse struct {
	Kind string     `json:"kind"`
	Rows []SweepRow `json:"rows"`
}

// validate checks the request shape: a known kind, axes belonging to
// that kind only, and bounded grid sizes. Value-level validation
// (positive scales, δ ≥ 1, ...) is the library's and comes back as
// errs.ErrBadSpec too.
func (q *SweepRequest) validate() error {
	switch q.Kind {
	case KindBandwidthCS, KindRRAMCapacity, KindDelta, KindBeta, KindTierPairs:
	default:
		return badSpec("unknown sweep kind %q (want %s, %s, %s, %s or %s)", q.Kind,
			KindBandwidthCS, KindRRAMCapacity, KindDelta, KindBeta, KindTierPairs)
	}
	if q.Kind != KindBandwidthCS &&
		(len(q.CSCounts) > 0 || len(q.BWScales) > 0 || q.Params != nil || q.Load != nil) {
		return badSpec("kind %q does not take cs_counts/bw_scales/params/load", q.Kind)
	}
	if q.Kind != KindRRAMCapacity && len(q.CapacitiesMB) > 0 {
		return badSpec("kind %q does not take capacities_mb", q.Kind)
	}
	if q.Kind != KindDelta && len(q.Deltas) > 0 {
		return badSpec("kind %q does not take deltas", q.Kind)
	}
	if q.Kind != KindBeta && len(q.Betas) > 0 {
		return badSpec("kind %q does not take betas", q.Kind)
	}
	if q.Kind != KindTierPairs &&
		(len(q.TierPairs) > 0 || q.PerTierPowerW != 0 || q.RequireThermal) {
		return badSpec("kind %q does not take tier_pairs/per_tier_power_w/require_thermal", q.Kind)
	}
	points := len(q.CapacitiesMB) + len(q.Deltas) + len(q.Betas) + len(q.TierPairs)
	if q.Kind == KindBandwidthCS {
		points = max(len(q.CSCounts), 1) * max(len(q.BWScales), 1)
	}
	if points > maxSweepPoints {
		return badSpec("%d sweep points exceed the per-request limit %d", points, maxSweepPoints)
	}
	for _, y := range q.TierPairs {
		if y < 1 || y > maxTierPairs {
			return badSpec("tier pairs %d outside [1, %d]", y, maxTierPairs)
		}
	}
	for _, mb := range q.CapacitiesMB {
		// The upper bound keeps mb<<23 far from int64 overflow.
		if mb < 1 || mb > 1<<20 {
			return badSpec("capacity %d MB outside [1, %d]", mb, 1<<20)
		}
	}
	return nil
}

// key is the coalescing identity: the canonical JSON of the decoded
// request, so field order and whitespace differences still coalesce.
func (q *SweepRequest) key() string {
	b, err := json.Marshal(q)
	if err != nil {
		// Marshal of a decoded request cannot fail; keep the key unique
		// rather than coalescing unrelated requests.
		return fmt.Sprintf("unkeyable:%p", q)
	}
	return "sweep:" + string(b)
}

func (s *Server) handleSweep(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	req, err := decodeRequest[SweepRequest](r.Body)
	if err != nil {
		return err
	}
	resp, err := s.sweepCached(ctx, req)
	if err != nil {
		return err
	}
	return writeJSON(w, http.StatusOK, resp)
}

// sweepCached validates one decoded request and evaluates it through the
// coalescing cache; /v1/sweep bodies and /v1/batch sweep items share this
// path, so identical requests coalesce across both endpoints.
func (s *Server) sweepCached(ctx context.Context, req *SweepRequest) (*SweepResponse, error) {
	if err := req.validate(); err != nil {
		return nil, err
	}
	hits := s.reg.Counter("serve.memo.hits")
	misses := s.reg.Counter("serve.memo.misses")
	key := req.key()
	resp, err := s.sweeps.DoMetered(key, hits, misses, func() (*SweepResponse, error) {
		if s.evalStarted != nil {
			s.evalStarted()
		}
		if s.evalBlock != nil {
			s.evalBlock(ctx)
		}
		// On a fleet, the key's owner evaluates; everyone else forwards
		// (inside the compute fn, so concurrent identical requests still
		// coalesce into one forward) and falls back to local on failure.
		if out, handled, err := peerFetch[SweepResponse](ctx, s.peers, "/v1/sweep", key, peerBody(key, "sweep:")); handled {
			return out, err
		}
		s.reg.Counter("serve.sweep.evals").Add(1)
		return s.evalSweep(ctx, req)
	})
	if err != nil {
		// Do not poison the key: a canceled or shed evaluation must not
		// fail every later identical request.
		s.sweeps.Forget(key)
		return nil, err
	}
	return resp, nil
}

// caseStudyMachine returns the Fig. 8 reference machine: the case-study
// 2D baseline evaluated against its single-CS self, so the sweep's N and
// bandwidth come entirely from the swept axes.
func caseStudyMachine() analytic.Params {
	a2d := arch.CaseStudy2D()
	return core.Params(a2d, a2d.WithParallelCS(1))
}

// Fig. 8 defaults (compute-bound reference load and axes).
var (
	defaultSweepLoad = analytic.Load{F0: 16e6, D0: 1e6, NPart: 64}
	defaultCSCounts  = []int{1, 2, 4, 8, 16}
	defaultBWScales  = []float64{1, 2, 4, 8, 16}
)

// evalSweep dispatches one validated request onto the analytic/core
// evaluators under the server's exec options.
func (s *Server) evalSweep(ctx context.Context, q *SweepRequest) (*SweepResponse, error) {
	opts := s.evalOptions(ctx)
	resp := &SweepResponse{Kind: q.Kind}
	switch q.Kind {
	case KindBandwidthCS:
		params := caseStudyMachine()
		if q.Params != nil {
			params = analytic.Params{
				PPeak: q.Params.PPeak, B2D: q.Params.B2D, B3D: q.Params.B3D, N: q.Params.N,
				Alpha2D: q.Params.Alpha2D, Alpha3D: q.Params.Alpha3D,
				EC: q.Params.EC, ECIdle: q.Params.ECIdle,
				EMIdle2D: q.Params.EMIdle2D, EMIdle3D: q.Params.EMIdle3D,
			}
		}
		load := defaultSweepLoad
		if q.Load != nil {
			load = analytic.Load{F0: q.Load.F0, D0: q.Load.D0, NPart: q.Load.NPart}
		}
		cs, bw := q.CSCounts, q.BWScales
		if len(cs) == 0 {
			cs = defaultCSCounts
		}
		if len(bw) == 0 {
			bw = defaultBWScales
		}
		points, err := analytic.SweepBandwidthCS(params, load, cs, bw, opts...)
		if err != nil {
			return nil, err
		}
		for _, pt := range points {
			resp.Rows = append(resp.Rows, SweepRow{
				NumCS: pt.NumCS, BWScale: pt.BWScale, EDPBenefit: pt.EDPBenefit,
			})
		}
	case KindRRAMCapacity:
		rows, err := core.Fig9(s.pdk, q.CapacitiesMB, opts...)
		if err != nil {
			return nil, err
		}
		for _, row := range rows {
			resp.Rows = append(resp.Rows, SweepRow{
				CapacityMB: row.CapacityMB, N: row.N, EDPBenefit: row.EDPBenefit,
			})
		}
	case KindDelta:
		rows, err := core.Fig10bc(s.pdk, q.Deltas, opts...)
		if err != nil {
			return nil, err
		}
		for _, row := range rows {
			resp.Rows = append(resp.Rows, SweepRow{
				Delta: row.Delta, N3D: row.N3D, N2DNew: row.N2DNew, EDPBenefit: row.EDPBenefit,
			})
		}
	case KindBeta:
		rows, err := core.Obs8(s.pdk, q.Betas, opts...)
		if err != nil {
			return nil, err
		}
		for _, row := range rows {
			resp.Rows = append(resp.Rows, SweepRow{
				Delta: row.Delta, Beta: row.Beta, N3D: row.N3D, N2DNew: row.N2DNew,
				EDPBenefit: row.EDPBenefit,
			})
		}
	case KindTierPairs:
		rows, err := core.Fig10d(s.pdk, q.TierPairs, q.PerTierPowerW, opts...)
		if err != nil {
			return nil, err
		}
		for _, row := range rows {
			ok := row.Thermal
			resp.Rows = append(resp.Rows, SweepRow{
				Y: row.Y, N: row.N, TempRiseK: row.TempRiseK, ThermalOK: &ok,
				EDPBenefit: row.EDPBenefit,
			})
			if q.RequireThermal && !ok {
				return nil, fmt.Errorf(
					"serve: tier pairs Y=%d rise %.2f K over the PDK budget: %w",
					row.Y, row.TempRiseK, errs.ErrThermalLimit)
			}
		}
	}
	return resp, nil
}
