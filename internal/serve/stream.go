package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// arrayStream writes a chunked JSON array of incrementally-settled
// elements — the shared partial-result encoder behind /v1/batch and
// /v1/dse. The framing is fixed: the stream opens with "[\n" (committing
// the 200 status and Content-Type first), elements are separated by
// ",\n", each element is one json.Encoder.Encode (which appends its own
// newline) flushed to the client as soon as it is written, and close
// terminates with "]\n". The whole stream is therefore one well-formed
// JSON array, and a line-oriented client can also consume it
// incrementally: every element lands on its own line the moment it
// settles.
//
// Write failures (client gone) latch the stream broken: emit becomes a
// no-op returning false so producers can stop early. The status line is
// committed at construction, so a broken stream can only end truncated —
// in-band errors belong in the elements themselves (see BatchItemResult
// and DSEUpdate).
type arrayStream struct {
	w      http.ResponseWriter
	rc     *http.ResponseController
	enc    *json.Encoder
	n      int
	broken bool
}

// newArrayStream commits the 200/Content-Type header and opens the
// array. Check ok before emitting: a stream broken at open (client
// already gone) has written nothing useful and needs no close.
func newArrayStream(w http.ResponseWriter) *arrayStream {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	st := &arrayStream{w: w, rc: http.NewResponseController(w), enc: json.NewEncoder(w)}
	if _, err := fmt.Fprint(w, "[\n"); err != nil {
		st.broken = true
	}
	return st
}

// ok reports whether the stream can still carry elements.
func (st *arrayStream) ok() bool { return !st.broken }

// emit appends one element and flushes it to the client, reporting
// whether the stream is still healthy.
func (st *arrayStream) emit(v any) bool {
	if st.broken {
		return false
	}
	if st.n > 0 {
		fmt.Fprint(st.w, ",\n")
	}
	st.n++
	if err := st.enc.Encode(v); err != nil {
		st.broken = true
		return false
	}
	st.rc.Flush()
	return true
}

// close terminates the array and flushes the tail.
func (st *arrayStream) close() {
	fmt.Fprint(st.w, "]\n")
	st.rc.Flush()
}
