package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"m3d/internal/flow"
	"m3d/internal/macro"
)

// FlowRequest is the POST /v1/flow body: one RTL-to-GDS run, evaluated
// through flow.RunContext (m3d.RunFlowContext) under the request
// deadline. Zero fields take the SoCSpec defaults (paper scale — pass
// small arrays for interactive latency).
type FlowRequest struct {
	// Style is "2D" (Si access FETs) or "M3D" (CNFET access FETs over
	// logic); empty selects "2D".
	Style          string  `json:"style,omitempty"`
	NumCS          int     `json:"num_cs,omitempty"`
	ArrayRows      int     `json:"array_rows,omitempty"`
	ArrayCols      int     `json:"array_cols,omitempty"`
	RRAMCapMB      int     `json:"rram_cap_mb,omitempty"`
	Banks          int     `json:"banks,omitempty"`
	GlobalSRAMBits int64   `json:"global_sram_bits,omitempty"`
	TargetClockHz  float64 `json:"target_clock_hz,omitempty"`
	Seed           int64   `json:"seed,omitempty"`
	FoldLogic      bool    `json:"fold_logic,omitempty"`
	RunCTS         bool    `json:"run_cts,omitempty"`
	// ThermalCheck enables the Eq. 17 sign-off stage; violations fail
	// with 422 (errs.ErrThermalLimit). MaxTempRiseK ≤ 0 uses the PDK
	// budget.
	ThermalCheck bool    `json:"thermal_check,omitempty"`
	MaxTempRiseK float64 `json:"max_temp_rise_k,omitempty"`
}

// FlowResponse is the POST /v1/flow reply: the post-route report's
// headline numbers.
type FlowResponse struct {
	Style         string  `json:"style"`
	NumCS         int     `json:"num_cs"`
	Cells         int     `json:"cells"`
	Macros        int     `json:"macros"`
	HPWLNM        int64   `json:"hpwl_nm"`
	RoutedWLNM    int64   `json:"routed_wl_nm"`
	Vias          int     `json:"vias"`
	ILVs          int     `json:"ilvs"`
	FmaxHz        float64 `json:"fmax_hz"`
	TimingMet     bool    `json:"timing_met"`
	FootprintMM2  float64 `json:"footprint_mm2"`
	TotalPowerW   float64 `json:"total_power_w"`
	LeakagePowerW float64 `json:"leakage_power_w"`
}

func (q *FlowRequest) spec() (flow.SoCSpec, error) {
	spec := flow.SoCSpec{
		NumCS:          q.NumCS,
		ArrayRows:      q.ArrayRows,
		ArrayCols:      q.ArrayCols,
		RRAMCapBits:    int64(q.RRAMCapMB) << 23,
		Banks:          q.Banks,
		GlobalSRAMBits: q.GlobalSRAMBits,
		TargetClockHz:  q.TargetClockHz,
		Seed:           q.Seed,
		FoldLogic:      q.FoldLogic,
		RunCTS:         q.RunCTS,
	}
	switch q.Style {
	case "", macro.Style2D.String():
		spec.Style = macro.Style2D
	case macro.Style3D.String():
		spec.Style = macro.Style3D
	default:
		return spec, badSpec("unknown style %q (want %q or %q)",
			q.Style, macro.Style2D, macro.Style3D)
	}
	if q.RRAMCapMB < 0 {
		return spec, badSpec("rram_cap_mb %d must be ≥ 0", q.RRAMCapMB)
	}
	if !q.ThermalCheck && q.MaxTempRiseK != 0 {
		return spec, badSpec("max_temp_rise_k needs thermal_check")
	}
	return spec, nil
}

// validate checks the request shape through the spec derivation — the
// decodeRequest contract shared with the other endpoints.
func (q *FlowRequest) validate() error {
	spec, err := q.spec()
	if err != nil {
		return err
	}
	return spec.Validate()
}

// key is the coalescing identity of a flow request (canonical JSON).
func (q *FlowRequest) key() string {
	b, err := json.Marshal(q)
	if err != nil {
		return fmt.Sprintf("unkeyable:%p", q)
	}
	return "flow:" + string(b)
}

func (s *Server) handleFlow(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	req, err := decodeRequest[FlowRequest](r.Body)
	if err != nil {
		return err
	}
	resp, err := s.flowCached(ctx, req)
	if err != nil {
		return err
	}
	return writeJSON(w, http.StatusOK, resp)
}

// flowCached validates one decoded request and evaluates it through the
// coalescing cache; /v1/flow bodies and /v1/batch flow items share this
// path.
func (s *Server) flowCached(ctx context.Context, req *FlowRequest) (*FlowResponse, error) {
	spec, err := req.spec()
	if err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	hits := s.reg.Counter("serve.memo.hits")
	misses := s.reg.Counter("serve.memo.misses")
	key := req.key()
	cached, err := s.flows.DoMetered(key, hits, misses, func() (*FlowResponse, error) {
		if s.evalStarted != nil {
			s.evalStarted()
		}
		if s.evalBlock != nil {
			s.evalBlock(ctx)
		}
		// Fleet sharding: forward to the key's owner, local fallback on
		// failure (see peers.go).
		if out, handled, err := peerFetch[FlowResponse](ctx, s.peers, "/v1/flow", key, peerBody(key, "flow:")); handled {
			return out, err
		}
		s.reg.Counter("serve.flow.evals").Add(1)
		opts := s.evalOptions(ctx)
		if req.ThermalCheck {
			opts = append(opts, flow.WithThermalCheck(req.MaxTempRiseK))
		}
		res, err := flow.RunContext(ctx, s.pdk, spec, opts...)
		if err != nil {
			return nil, err
		}
		return flowResponseOf(res), nil
	})
	if err != nil {
		s.flows.Forget(key)
		return nil, err
	}
	return cached, nil
}
