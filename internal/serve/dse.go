package serve

import (
	"context"
	"net/http"

	"m3d/internal/dse"
)

// maxPromote bounds the number of frontier points one request may
// promote to full physical-flow runs (each run is orders of magnitude
// more expensive than the whole analytic exploration).
const maxPromote = 4

// DSERequest is the POST /v1/dse body: the boxed design space plus the
// exploration knobs. Omitted axes take the dse.DefaultSpace box; the
// reply is a chunked JSON array of DSEUpdate elements — one per
// refinement round, flushed as the round settles, the last carrying
// done=true, the run totals and any promoted flow runs.
type DSERequest struct {
	// Deltas / TierPairs / BWScales box the Case 1 × Case 3 × bandwidth
	// space (see dse.Space); nil axes use the defaults.
	Deltas    *dse.Axis    `json:"deltas,omitempty"`
	TierPairs *dse.IntAxis `json:"tier_pairs,omitempty"`
	BWScales  *dse.Axis    `json:"bw_scales,omitempty"`
	// PerTierPowerW feeds the Eq. 17 thermal-headroom objective (≤ 0 →
	// default 2 W per pair).
	PerTierPowerW float64 `json:"per_tier_power_w,omitempty"`
	// MaxEvals bounds the point evaluations (0 → a quarter of the grid).
	MaxEvals int `json:"max_evals,omitempty"`
	// Seed pins the randomized exploration samples; the stream is
	// byte-identical across identical requests at any server width.
	Seed int64 `json:"seed,omitempty"`
	// Explore is the seeded random sample count mixed into the first
	// round (0 → 8, negative → none).
	Explore int `json:"explore,omitempty"`
	// RequireThermal keeps Eq. 17 violators out of the frontier.
	RequireThermal bool `json:"require_thermal,omitempty"`
	// Promote runs the top-EDP frontier points (at most maxPromote)
	// through the physical flow and attaches the results to the final
	// update. Promotion failures are reported in-band per point.
	Promote int `json:"promote,omitempty"`
}

// space assembles the dse.Space with defaults applied.
func (q *DSERequest) space() dse.Space {
	var sp dse.Space
	if q.Deltas != nil {
		sp.Deltas = *q.Deltas
	}
	if q.TierPairs != nil {
		sp.TierPairs = *q.TierPairs
	}
	if q.BWScales != nil {
		sp.BWScales = *q.BWScales
	}
	sp.PerTierPowerW = q.PerTierPowerW
	return sp.WithDefaults()
}

// validate checks the space and the serve-level knobs (the decodeRequest
// contract).
func (q *DSERequest) validate() error {
	if err := q.space().Validate(); err != nil {
		return err
	}
	if q.MaxEvals < 0 {
		return badSpec("max_evals %d must be ≥ 0", q.MaxEvals)
	}
	if q.Promote < 0 || q.Promote > maxPromote {
		return badSpec("promote %d outside [0, %d]", q.Promote, maxPromote)
	}
	return nil
}

// DSEUpdate is one element of the POST /v1/dse reply array: a dse.Update
// frontier snapshot, plus — on the final element — the promoted flow
// runs. Error carries an in-band evaluation failure when the stream was
// already committed (the status line is gone by then); requests that
// fail before any round settles get an ordinary error status instead.
type DSEUpdate struct {
	dse.Update
	Promoted []DSEPromotion `json:"promoted,omitempty"`
	Error    string         `json:"error,omitempty"`
}

// DSEPromotion is one frontier point run through the physical flow.
// Status carries the HTTP status the flow would have received as a
// standalone request; failures are isolated per point.
type DSEPromotion struct {
	Point  dse.Point     `json:"point"`
	Status int           `json:"status"`
	Error  string        `json:"error,omitempty"`
	Flow   *FlowResponse `json:"flow,omitempty"`
}

// handleDSE is POST /v1/dse: one adaptive Pareto exploration streamed as
// a chunked JSON array of frontier snapshots (shared arrayStream
// framing with /v1/batch). Point evaluations memoize through the
// server-wide dse point cache, so repeated and overlapping explorations
// reuse model work; the streamed evaluation counters count submissions,
// not cache misses, keeping identical requests byte-identical regardless
// of cache warmth.
func (s *Server) handleDSE(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	req, err := decodeRequest[DSERequest](r.Body)
	if err != nil {
		return err
	}
	s.reg.Counter("serve.dse.requests").Add(1)

	opt := dse.Options{
		MaxEvals:       req.MaxEvals,
		Seed:           req.Seed,
		Explore:        req.Explore,
		RequireThermal: req.RequireThermal,
		Cache:          &s.dsePoints,
	}
	// The stream opens lazily at the first settled round: anything that
	// fails before then (bad machine, immediate cancellation) still owns
	// the status line.
	var st *arrayStream
	var final dse.Update
	_, err = dse.Explore(s.pdk, req.space(), opt, func(u dse.Update) {
		if u.Done {
			final = u // held back: promotions ride on the final element
			return
		}
		if st == nil {
			st = newArrayStream(w)
		}
		st.emit(DSEUpdate{Update: u})
	}, s.evalOptions(ctx)...)
	if err != nil {
		if st == nil {
			return err
		}
		st.emit(DSEUpdate{Error: err.Error()})
		st.close()
		return nil
	}

	out := DSEUpdate{Update: final}
	for _, p := range dse.TopK(final.Frontier, req.Promote) {
		out.Promoted = append(out.Promoted, s.promote(ctx, req, p))
	}
	if st == nil {
		st = newArrayStream(w)
		if !st.ok() {
			return nil
		}
	}
	st.emit(out)
	st.close()
	return nil
}

// promote runs one frontier point through the physical flow via the
// coalescing flow cache: a small M3D SoC whose CS parallelism follows
// the point's N, clamped to the interactive range — promotion is a
// physical-design sanity probe of the frontier shape, not a full-scale
// build, and must land within the request deadline.
func (s *Server) promote(ctx context.Context, req *DSERequest, p dse.Point) DSEPromotion {
	numCS := p.N
	if numCS < 1 {
		numCS = 1
	}
	if numCS > 4 {
		numCS = 4
	}
	fr := &FlowRequest{
		Style:          "M3D",
		NumCS:          numCS,
		ArrayRows:      2,
		ArrayCols:      2,
		RRAMCapMB:      1,
		Banks:          numCS,
		GlobalSRAMBits: 64 << 10,
		Seed:           req.Seed,
	}
	resp, err := s.flowCached(ctx, fr)
	if err != nil {
		return DSEPromotion{Point: p, Status: statusOf(err), Error: err.Error()}
	}
	return DSEPromotion{Point: p, Status: http.StatusOK, Flow: resp}
}
