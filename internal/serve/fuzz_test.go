package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"

	"m3d/internal/errs"
	"m3d/internal/tech"
	"m3d/internal/vary"
)

// FuzzSweepRequest hammers the POST /v1/sweep request decoder and
// validator with arbitrary bodies. The contract under fuzzing: decode +
// validate never panic, and every rejection is an errs.ErrBadSpec (the
// 400 family) — a malformed body must never surface as a 5xx. Bodies
// that decode and validate cleanly must round-trip through key()
// without falling into the unkeyable branch.
//
// Seeds live in testdata/fuzz/FuzzSweepRequest (checked in), covering
// each sweep kind, the empty default, and known-hostile shapes:
// truncated JSON, trailing garbage, unknown fields, foreign axes and
// overflow-baiting capacities.
func FuzzSweepRequest(f *testing.F) {
	for _, tc := range sweepRequests {
		f.Add(tc.body)
	}
	f.Add(``)
	f.Add(`{}`)
	f.Add(`{"kind":`)
	f.Add(`{"kind":"bandwidth_cs"}{"kind":"beta"}`)
	f.Add(`{"kind":"warp"}`)
	f.Add(`{"kind":"delta","betas":[1.5]}`)
	f.Add(`{"kind":"rram_capacity","capacities_mb":[9007199254740993]}`)
	f.Add(`{"kind":"beta","unknown_field":1}`)
	f.Add(`{"kind":"delta","deltas":[0.5]}`)
	f.Add("\x00\xff")

	f.Fuzz(func(t *testing.T, body string) {
		var req SweepRequest
		err := decode(strings.NewReader(body), &req)
		if err == nil {
			err = req.validate()
		}
		if err != nil {
			if !errors.Is(err, errs.ErrBadSpec) {
				t.Fatalf("rejection is not ErrBadSpec: %v", err)
			}
			if got := statusOf(err); got != http.StatusBadRequest {
				t.Fatalf("statusOf(%v) = %d, want 400", err, got)
			}
			return
		}
		if strings.HasPrefix(req.key(), "unkeyable:") {
			t.Fatalf("accepted request is unkeyable: %q", body)
		}
	})
}

// FuzzDSERequest hammers the POST /v1/dse request decoder and validator
// with arbitrary bodies through the same decodeRequest entry the handler
// uses. Contract: no panics, every rejection is errs.ErrBadSpec (the 400
// family), and an accepted request's defaults-applied space re-validates
// cleanly and stays within the evaluation-grid bound.
//
// Seeds live in testdata/fuzz/FuzzDSERequest (checked in): the golden
// stream request, the empty default, each axis alone, and the hostile
// shapes — truncated JSON, trailing garbage, unknown fields, inverted
// and out-of-range axes, oversized grids and promote counts.
func FuzzDSERequest(f *testing.F) {
	f.Add(dseStreamBody)
	f.Add(``)
	f.Add(`{}`)
	f.Add(`{"seed":1}`)
	f.Add(`{"deltas":{"min":1,"max":2.5,"steps":16}}`)
	f.Add(`{"tier_pairs":{"min":1,"max":6}}`)
	f.Add(`{"bw_scales":{"min":1,"max":8,"steps":8},"promote":2}`)
	f.Add(`{"deltas":`)
	f.Add(`{} {}`)
	f.Add(`{"bogus":1}`)
	f.Add(`{"deltas":{"min":0.5,"max":2,"steps":4}}`)
	f.Add(`{"tier_pairs":{"min":3,"max":1}}`)
	f.Add(`{"bw_scales":{"min":-1,"max":2,"steps":2}}`)
	f.Add(`{"deltas":{"min":1,"max":2,"steps":512},"tier_pairs":{"min":1,"max":64},"bw_scales":{"min":1,"max":2,"steps":512}}`)
	f.Add(`{"max_evals":-5}`)
	f.Add(`{"promote":99}`)
	f.Add("\x00\xff")

	f.Fuzz(func(t *testing.T, body string) {
		req, err := decodeRequest[DSERequest](strings.NewReader(body))
		if err != nil {
			if !errors.Is(err, errs.ErrBadSpec) {
				t.Fatalf("rejection is not ErrBadSpec: %v", err)
			}
			if got := statusOf(err); got != http.StatusBadRequest {
				t.Fatalf("statusOf(%v) = %d, want 400", err, got)
			}
			return
		}
		space := req.space()
		if err := space.Validate(); err != nil {
			t.Fatalf("accepted request's space re-validation failed: %v", err)
		}
		if space.GridSize() < 1 || space.GridSize() > maxSweepPoints {
			t.Fatalf("accepted grid size %d out of bounds", space.GridSize())
		}
	})
}

// FuzzJobsRequest hammers the POST /v1/jobs request decoder and
// validator with arbitrary bodies through the same decodeRequest entry
// the handler uses. Contract: no panics; every rejection is
// errs.ErrBadSpec (the 400 family); an accepted request names exactly
// one kind, canonicalizes through json.Marshal, and — for chunked
// sweeps — splits into chunks whose concatenation reproduces the
// primary axis exactly (the invariant the part/final stages rely on
// for byte-identical resumed results).
//
// Seeds live in testdata/fuzz/FuzzJobsRequest (checked in): each job
// kind, explicit ids and chunk counts, and the hostile shapes —
// truncated JSON, trailing garbage, multiple kinds, path-escaping ids,
// out-of-range chunk counts and chunks on non-sweep jobs.
func FuzzJobsRequest(f *testing.F) {
	f.Add(`{"sweep":{"kind":"delta","deltas":[1.0,1.5,2.0]}}`)
	f.Add(`{"id":"swjob","sweep":{"kind":"delta","deltas":[1.0,1.5,2.0,2.5]},"chunks":2}`)
	f.Add(`{"flow":{"style":"M3D","num_cs":2,"seed":1}}`)
	f.Add(`{"id":"fl.job-1","flow":{"style":"2D"}}`)
	f.Add(`{"dse":{"deltas":{"min":1,"max":2,"steps":3}}}`)
	f.Add(`{"sweep":{"kind":"tier_pairs","tier_pairs":[1,2,3]},"chunks":32}`)
	f.Add(``)
	f.Add(`{}`)
	f.Add(`{"sweep":`)
	f.Add(`{"sweep":{"kind":"delta","deltas":[1]}} extra`)
	f.Add(`{"sweep":{"kind":"delta","deltas":[1]},"flow":{"style":"2D"}}`)
	f.Add(`{"id":"../escape","sweep":{"kind":"delta","deltas":[1]}}`)
	f.Add(`{"id":"bad id","flow":{"style":"2D"}}`)
	f.Add(`{"flow":{"style":"2D"},"chunks":2}`)
	f.Add(`{"sweep":{"kind":"delta","deltas":[1]},"chunks":-1}`)
	f.Add(`{"sweep":{"kind":"delta","deltas":[1]},"chunks":33}`)
	f.Add("\x00\xff")

	f.Fuzz(func(t *testing.T, body string) {
		req, err := decodeRequest[JobRequest](strings.NewReader(body))
		if err != nil {
			if !errors.Is(err, errs.ErrBadSpec) {
				t.Fatalf("rejection is not ErrBadSpec: %v", err)
			}
			if got := statusOf(err); got != http.StatusBadRequest {
				t.Fatalf("statusOf(%v) = %d, want 400", err, got)
			}
			return
		}
		kind := req.kind()
		if kind != "sweep" && kind != "flow" && kind != "dse" {
			t.Fatalf("accepted request has kind %q", kind)
		}
		canon, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("accepted request does not canonicalize: %v", err)
		}
		var round JobRequest
		if err := json.Unmarshal(canon, &round); err != nil {
			t.Fatalf("canonical form does not round-trip: %v", err)
		}
		if req.Sweep == nil {
			return
		}
		chunks := sweepChunks(req.Sweep, req.Chunks)
		if len(chunks) == 0 {
			t.Fatalf("accepted sweep split into zero chunks: %q", body)
		}
		var axis, whole int
		for _, c := range chunks {
			axis += sweepAxisLen(c)
		}
		whole = sweepAxisLen(req.Sweep)
		if axis != whole {
			t.Fatalf("chunked axis length %d != whole axis %d: %q", axis, whole, body)
		}
	})
}

// FuzzBatchRequest hammers the POST /v1/batch decode path: the lenient
// top-level array decode, the strict per-item decode, the sweep/flow
// one-of, and each item's spec validation. Contract: no panics; every
// whole-request rejection and every item-level pre-evaluation rejection
// is errs.ErrBadSpec (the 400 family); accepted items must be keyable
// (coalescing identity never degrades to the unkeyable branch).
//
// Seeds live in testdata/fuzz/FuzzBatchRequest (checked in): the mixed
// acceptance batch, single-item sweep and flow batches, and the hostile
// shapes — non-array bodies, truncated arrays, both/neither one-ofs,
// unknown item fields, and nested trailing garbage.
func FuzzBatchRequest(f *testing.F) {
	f.Add(batchMixedBody)
	f.Add(`[{"sweep":{"kind":"delta","deltas":[1.0,1.5]}}]`)
	f.Add(`[{"flow":{"style":"M3D","num_cs":2,"seed":1}}]`)
	f.Add(`[]`)
	f.Add(`[{}]`)
	f.Add(`[{"sweep":{"kind":"delta"},"flow":{}}]`)
	f.Add(`{"sweep":{"kind":"delta"}}`)
	f.Add(`[{"sweep":`)
	f.Add(`[{"sweep":{"kind":"delta"}}] extra`)
	f.Add(`[{"sweep":{"kind":"delta"},"bogus":1}]`)
	f.Add(`[{"flow":{"style":"4D"}},{"flow":{"rram_cap_mb":-1}}]`)
	f.Add(`[null,0,"x"]`)
	f.Add("\x00\xff")

	f.Fuzz(func(t *testing.T, body string) {
		requireBadSpec := func(err error) {
			t.Helper()
			if !errors.Is(err, errs.ErrBadSpec) {
				t.Fatalf("rejection is not ErrBadSpec: %v", err)
			}
			if got := statusOf(err); got != http.StatusBadRequest {
				t.Fatalf("statusOf(%v) = %d, want 400", err, got)
			}
		}
		var raws []json.RawMessage
		if err := decode(strings.NewReader(body), &raws); err != nil {
			requireBadSpec(err)
			return
		}
		if len(raws) == 0 || len(raws) > maxBatchItems {
			return // whole-request badSpec paths, trivially 400
		}
		for _, raw := range raws {
			item, err := decodeBatchItem(raw)
			if err != nil {
				requireBadSpec(err)
				continue
			}
			if item.Sweep != nil {
				if err := item.Sweep.validate(); err != nil {
					requireBadSpec(err)
					continue
				}
				if strings.HasPrefix(item.Sweep.key(), "unkeyable:") {
					t.Fatalf("accepted sweep item is unkeyable: %q", raw)
				}
				continue
			}
			spec, err := item.Flow.spec()
			if err == nil {
				err = spec.Validate()
			}
			if err != nil {
				requireBadSpec(err)
				continue
			}
			if strings.HasPrefix(item.Flow.key(), "unkeyable:") {
				t.Fatalf("accepted flow item is unkeyable: %q", raw)
			}
		}
	})
}

// FuzzYieldRequest hammers the POST /v1/yield request decoder and
// validator with arbitrary bodies through the same decodeRequest entry
// the handler uses. Contract: no panics, every rejection is
// errs.ErrBadSpec (the 400 family), and an accepted request's
// defaults-applied run shape stays within the sampling bounds and
// builds a valid corner sampler.
//
// Seeds live in testdata/fuzz/FuzzYieldRequest (checked in): the pinned
// stream request, the empty default, each knob alone, and the hostile
// shapes — truncated JSON, trailing garbage, unknown fields, hostile
// variation parameters, oversized sample counts and bad periods.
func FuzzYieldRequest(f *testing.F) {
	f.Add(yieldStreamBody)
	f.Add(``)
	f.Add(`{}`)
	f.Add(`{"samples":128}`)
	f.Add(`{"flow":{"style":"M3D","num_cs":2,"seed":1}}`)
	f.Add(`{"variation":{"si_drive_sigma":0.03,"cnfet_drive_sigma":0.08,"cnfet_vt_shift":0.05,"ilv_r_spread":0.1,"tier_corr":0.5}}`)
	f.Add(`{"periods":[1e-9,2e-9],"batch":16}`)
	f.Add(`{"flow":`)
	f.Add(`{} {}`)
	f.Add(`{"bogus":1}`)
	f.Add(`{"flow":{"style":"4D"}}`)
	f.Add(`{"samples":-1}`)
	f.Add(`{"samples":1000000}`)
	f.Add(`{"batch":-8}`)
	f.Add(`{"periods":[0]}`)
	f.Add(`{"variation":{"si_drive_sigma":-0.1}}`)
	f.Add(`{"variation":{"tier_corr":2}}`)
	f.Add("\x00\xff")

	f.Fuzz(func(t *testing.T, body string) {
		req, err := decodeRequest[YieldRequest](strings.NewReader(body))
		if err != nil {
			if !errors.Is(err, errs.ErrBadSpec) {
				t.Fatalf("rejection is not ErrBadSpec: %v", err)
			}
			if got := statusOf(err); got != http.StatusBadRequest {
				t.Fatalf("statusOf(%v) = %d, want 400", err, got)
			}
			return
		}
		n, b := req.samples(), req.batch()
		if n < 1 || n > maxYieldSamples {
			t.Fatalf("accepted request's sample count %d out of bounds", n)
		}
		if b < 1 || b > n {
			t.Fatalf("accepted request's batch %d out of bounds for %d samples", b, n)
		}
		v := tech.DefaultVariation()
		if req.Variation != nil {
			v = req.Variation.variation()
		}
		if _, err := vary.NewSampler(v, req.Seed); err != nil {
			t.Fatalf("accepted request's variation rejected by sampler: %v", err)
		}
	})
}
