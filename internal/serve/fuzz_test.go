package serve

import (
	"errors"
	"net/http"
	"strings"
	"testing"

	"m3d/internal/errs"
)

// FuzzSweepRequest hammers the POST /v1/sweep request decoder and
// validator with arbitrary bodies. The contract under fuzzing: decode +
// validate never panic, and every rejection is an errs.ErrBadSpec (the
// 400 family) — a malformed body must never surface as a 5xx. Bodies
// that decode and validate cleanly must round-trip through key()
// without falling into the unkeyable branch.
//
// Seeds live in testdata/fuzz/FuzzSweepRequest (checked in), covering
// each sweep kind, the empty default, and known-hostile shapes:
// truncated JSON, trailing garbage, unknown fields, foreign axes and
// overflow-baiting capacities.
func FuzzSweepRequest(f *testing.F) {
	for _, tc := range sweepRequests {
		f.Add(tc.body)
	}
	f.Add(``)
	f.Add(`{}`)
	f.Add(`{"kind":`)
	f.Add(`{"kind":"bandwidth_cs"}{"kind":"beta"}`)
	f.Add(`{"kind":"warp"}`)
	f.Add(`{"kind":"delta","betas":[1.5]}`)
	f.Add(`{"kind":"rram_capacity","capacities_mb":[9007199254740993]}`)
	f.Add(`{"kind":"beta","unknown_field":1}`)
	f.Add(`{"kind":"delta","deltas":[0.5]}`)
	f.Add("\x00\xff")

	f.Fuzz(func(t *testing.T, body string) {
		var req SweepRequest
		err := decode(strings.NewReader(body), &req)
		if err == nil {
			err = req.validate()
		}
		if err != nil {
			if !errors.Is(err, errs.ErrBadSpec) {
				t.Fatalf("rejection is not ErrBadSpec: %v", err)
			}
			if got := statusOf(err); got != http.StatusBadRequest {
				t.Fatalf("statusOf(%v) = %d, want 400", err, got)
			}
			return
		}
		if strings.HasPrefix(req.key(), "unkeyable:") {
			t.Fatalf("accepted request is unkeyable: %q", body)
		}
	})
}
