package serve

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// fleet is a set of in-process servers sharing one peer ring, each
// listening on a real TCP port so forwards cross a socket.
type fleet struct {
	servers []*Server
	urls    []string
}

// newFleet boots n servers whose Peers list covers all of them.
// transport(i) supplies server i's peer transport (nil = default).
// start(i) == false leaves slot i dark: its URL is in everyone's ring
// but nothing listens there — the "dead peer" of the fallback tests.
func newFleet(t *testing.T, n int, transport func(i int) http.RoundTripper, start func(i int) bool) *fleet {
	t.Helper()
	lns := make([]net.Listener, n)
	f := &fleet{urls: make([]string, n)}
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		f.urls[i] = "http://" + ln.Addr().String()
	}
	for i := 0; i < n; i++ {
		if start != nil && !start(i) {
			lns[i].Close()
			f.servers = append(f.servers, nil)
			continue
		}
		cfg := Config{Peers: f.urls, Self: f.urls[i]}
		if transport != nil {
			cfg.PeerTransport = transport(i)
		}
		s := New(cfg)
		ts := httptest.NewUnstartedServer(s)
		ts.Listener.Close()
		ts.Listener = lns[i]
		ts.Start()
		t.Cleanup(ts.Close)
		f.servers = append(f.servers, s)
	}
	return f
}

// peerKeys are distinct sweep bodies (one per kind plus variants) —
// distinct cache keys that spread across the ring.
var peerKeys = []string{
	`{"kind":"delta","deltas":[1.0,1.5]}`,
	`{"kind":"delta","deltas":[2.0]}`,
	`{"kind":"beta","betas":[1.0,1.2]}`,
	`{"kind":"rram_capacity","capacities_mb":[12]}`,
	`{"kind":"tier_pairs","tier_pairs":[1,2],"per_tier_power_w":2.0}`,
	`{"kind":"bandwidth_cs","cs_counts":[1,2],"bw_scales":[1,2]}`,
}

// referenceBodies evaluates every peer key on a standalone server — the
// byte-level oracle every fleet response must match.
func referenceBodies(t *testing.T) map[string][]byte {
	t.Helper()
	_, ts := newTestServer(t, Config{})
	ref := make(map[string][]byte, len(peerKeys))
	for _, body := range peerKeys {
		status, _, b := post(t, ts.URL+"/v1/sweep", body)
		if status != http.StatusOK {
			t.Fatalf("reference %s: status %d: %s", body, status, b)
		}
		ref[body] = b
	}
	return ref
}

// sweepEvals sums the local sweep evaluations across the fleet.
func (f *fleet) sweepEvals() int64 {
	var total int64
	for _, s := range f.servers {
		if s != nil {
			total += s.Metrics().Counter("serve.sweep.evals").Value()
		}
	}
	return total
}

// TestPeerShardingSingleFlight fires every key at every node of a
// healthy 2-node fleet concurrently and proves fleet-wide single-flight:
// each key is evaluated exactly once across the whole fleet (the owner's
// cache coalesces its own requests with every forward), and every
// response is byte-identical to the standalone oracle.
func TestPeerShardingSingleFlight(t *testing.T) {
	ref := referenceBodies(t)
	f := newFleet(t, 2, nil, nil)

	var wg sync.WaitGroup
	errs := make(chan string, 4*len(peerKeys))
	for _, body := range peerKeys {
		for _, url := range f.urls {
			for rep := 0; rep < 2; rep++ {
				wg.Add(1)
				go func(url, body string) {
					defer wg.Done()
					resp, err := http.Post(url+"/v1/sweep", "application/json", strings.NewReader(body))
					if err != nil {
						errs <- err.Error()
						return
					}
					defer resp.Body.Close()
					b, _ := io.ReadAll(resp.Body)
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Sprintf("%s: status %d: %s", body, resp.StatusCode, b)
						return
					}
					if !bytes.Equal(b, ref[body]) {
						errs <- fmt.Sprintf("%s: response drifted from the standalone oracle", body)
					}
				}(url, body)
			}
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if got := f.sweepEvals(); got != int64(len(peerKeys)) {
		t.Errorf("fleet-wide sweep evals = %d, want %d (one per key)", got, len(peerKeys))
	}
	forwarded := f.servers[0].Metrics().Counter("serve.peer.forwarded").Value() +
		f.servers[1].Metrics().Counter("serve.peer.forwarded").Value()
	if forwarded == 0 {
		t.Error("no forwards on a 2-node fleet — the ring is not sharding")
	}
}

// TestPeerDeadFallback points a live node at a ring whose other member
// never listens: every key the dead peer owns must fall back to local
// evaluation, and every response stays byte-identical to the oracle.
func TestPeerDeadFallback(t *testing.T) {
	ref := referenceBodies(t)
	f := newFleet(t, 2, nil, func(i int) bool { return i == 0 })
	s, url := f.servers[0], f.urls[0]

	remoteOwned := 0
	for _, body := range peerKeys {
		req := decodeSweepForTest(t, body)
		if s.peers.owner(req.key()) != s.peers.self {
			remoteOwned++
		}
		status, _, b := post(t, url+"/v1/sweep", body)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", body, status, b)
		}
		if !bytes.Equal(b, ref[body]) {
			t.Errorf("%s: fallback response drifted from the oracle", body)
		}
	}
	if remoteOwned == 0 {
		t.Fatal("ring assigns every test key to the live node; add keys")
	}
	if got := s.Metrics().Counter("serve.peer.fallbacks").Value(); got != int64(remoteOwned) {
		t.Errorf("serve.peer.fallbacks = %d, want %d (one per dead-owned key)", got, remoteOwned)
	}
}

// decodeSweepForTest parses a sweep body the way the handler does.
func decodeSweepForTest(t *testing.T, body string) *SweepRequest {
	t.Helper()
	req, err := decodeRequest[SweepRequest](strings.NewReader(body))
	if err != nil {
		t.Fatalf("decoding %s: %v", body, err)
	}
	return req
}

// flakyTransport injects seeded, deterministic faults into peer
// forwards: dropped connections, injected 503s, and corrupted bodies
// (truncation and garbage). The seed makes a failing case replayable.
type flakyTransport struct {
	mu   sync.Mutex
	rng  *rand.Rand
	next http.RoundTripper
}

func newFlakyTransport(seed int64) *flakyTransport {
	return &flakyTransport{rng: rand.New(rand.NewSource(seed)), next: http.DefaultTransport}
}

func (f *flakyTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	f.mu.Lock()
	roll := f.rng.Float64()
	f.mu.Unlock()
	switch {
	case roll < 0.20: // dropped connection
		return nil, fmt.Errorf("flaky: injected connection drop")
	case roll < 0.35: // injected shed/unavailable without touching the peer
		return &http.Response{
			StatusCode: http.StatusServiceUnavailable,
			Header:     http.Header{},
			Body:       io.NopCloser(strings.NewReader(`{"error":"flaky: injected 503"}`)),
			Request:    r,
		}, nil
	case roll < 0.50: // truncated body
		resp, err := f.next.RoundTrip(r)
		if err != nil {
			return nil, err
		}
		return corruptBody(resp, func(b []byte) []byte { return b[:len(b)/2] }), nil
	case roll < 0.60: // garbage body
		resp, err := f.next.RoundTrip(r)
		if err != nil {
			return nil, err
		}
		return corruptBody(resp, func([]byte) []byte { return []byte("}{ not json") }), nil
	default:
		return f.next.RoundTrip(r)
	}
}

// corruptBody replaces a response's body through mutate.
func corruptBody(resp *http.Response, mutate func([]byte) []byte) *http.Response {
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		b = nil
	}
	b = mutate(b)
	resp.Body = io.NopCloser(bytes.NewReader(b))
	resp.ContentLength = int64(len(b))
	resp.Header.Del("Content-Length")
	return resp
}

// TestPeerFaultInjection is the fault-injection gate: under a seeded
// flaky transport (drops, injected 503s, truncated and garbage bodies),
// every fleet response must still be byte-identical to the standalone
// oracle — an injected corruption must never surface — and per-process
// single-flight must hold: no node evaluates a key more than once, so
// local evaluations per node never exceed the distinct key count.
func TestPeerFaultInjection(t *testing.T) {
	ref := referenceBodies(t)
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			f := newFleet(t, 2,
				func(i int) http.RoundTripper { return newFlakyTransport(seed + int64(i)*100) }, nil)

			var wg sync.WaitGroup
			errCh := make(chan string, 8*len(peerKeys))
			for rep := 0; rep < 4; rep++ {
				for _, body := range peerKeys {
					for _, url := range f.urls {
						wg.Add(1)
						go func(url, body string) {
							defer wg.Done()
							resp, err := http.Post(url+"/v1/sweep", "application/json", strings.NewReader(body))
							if err != nil {
								errCh <- err.Error()
								return
							}
							defer resp.Body.Close()
							b, _ := io.ReadAll(resp.Body)
							if resp.StatusCode != http.StatusOK {
								errCh <- fmt.Sprintf("%s: status %d: %s", body, resp.StatusCode, b)
								return
							}
							if !bytes.Equal(b, ref[body]) {
								errCh <- fmt.Sprintf("%s: corrupt or stale response surfaced to a client", body)
							}
						}(url, body)
					}
				}
			}
			wg.Wait()
			close(errCh)
			for e := range errCh {
				t.Error(e)
			}
			for i, s := range f.servers {
				if got := s.Metrics().Counter("serve.sweep.evals").Value(); got > int64(len(peerKeys)) {
					t.Errorf("node %d evaluated %d times for %d keys — single-flight violated",
						i, got, len(peerKeys))
				}
			}
		})
	}
}

// TestPeerAuthoritativeError proves a deterministic rejection from the
// owner (422 thermal violation) is relayed, not retried locally: the
// non-owner answers 422 and records a relayed peer error, not a
// fallback evaluation.
func TestPeerAuthoritativeError(t *testing.T) {
	f := newFleet(t, 2, nil, nil)

	// Find a thermally-violating request owned by node B, submitted to
	// node A (per_tier_power_w variants move the key around the ring).
	for power := 40.0; power < 48.0; power++ {
		body := fmt.Sprintf(`{"kind":"tier_pairs","tier_pairs":[3],"per_tier_power_w":%.1f,"require_thermal":true}`, power)
		req := decodeSweepForTest(t, body)
		var sender *Server
		var senderURL string
		for i, s := range f.servers {
			if s.peers.owner(req.key()) != s.peers.self {
				sender, senderURL = s, f.urls[i]
			}
		}
		if sender == nil {
			continue // both nodes own it (impossible on 2 nodes) — next variant
		}
		status, _, b := post(t, senderURL+"/v1/sweep", body)
		if status != http.StatusUnprocessableEntity {
			t.Fatalf("forwarded thermal violation status = %d, want 422: %s", status, b)
		}
		if got := sender.Metrics().Counter("serve.peer.errors").Value(); got != 1 {
			t.Errorf("serve.peer.errors = %d, want 1 (authoritative relay)", got)
		}
		if got := sender.Metrics().Counter("serve.sweep.evals").Value(); got != 0 {
			t.Errorf("non-owner evaluated a relayed rejection locally (%d evals)", got)
		}
		return
	}
	t.Fatal("no candidate key landed on the remote owner")
}

// TestPeerHopNeverLoops proves a request carrying the forwarded-hop
// header is evaluated where it lands, even when the ring says another
// node owns it — the property that makes forwarding loop-free.
func TestPeerHopNeverLoops(t *testing.T) {
	f := newFleet(t, 2, nil, nil)
	body := peerKeys[0]
	req := decodeSweepForTest(t, body)
	// Pick the node that does NOT own the key and hand it a pre-hopped
	// request: it must evaluate locally instead of forwarding onward.
	for i, s := range f.servers {
		if s.peers.owner(req.key()) == s.peers.self {
			continue
		}
		hr, err := http.NewRequest(http.MethodPost, f.urls[i]+"/v1/sweep", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		hr.Header.Set("Content-Type", "application/json")
		hr.Header.Set(peerHopHeader, "test")
		resp, err := http.DefaultClient.Do(hr)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("hopped request status = %d", resp.StatusCode)
		}
		if got := s.Metrics().Counter("serve.peer.forwarded").Value(); got != 0 {
			t.Fatalf("hopped request was re-forwarded (%d forwards)", got)
		}
		if got := s.Metrics().Counter("serve.sweep.evals").Value(); got != 1 {
			t.Fatalf("hopped request local evals = %d, want 1", got)
		}
		return
	}
	t.Fatal("key owned by every node — cannot happen on 2 nodes")
}
