package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// widths are the pool widths every concurrency-sensitive test runs at
// (the PR 1/PR 2 determinism matrix).
var widths = []int{1, 2, 8}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

func TestHealthzGolden(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := get(t, ts.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200", status)
	}
	checkGolden(t, "healthz.golden.json", body)
}

// sweepRequests pairs each sweep kind with a small request body; the
// golden files lock the full response JSON per kind. sweep_default is
// the empty bandwidth_cs request (the Fig. 8 grid) and is also the
// request/golden pair the scripts/servesmoke gate replays over HTTP.
var sweepRequests = []struct{ name, body string }{
	{"sweep_default", `{"kind":"bandwidth_cs"}`},
	{"sweep_bandwidth_cs", `{"kind":"bandwidth_cs","cs_counts":[1,2,4,8],"bw_scales":[1,2,4],"load":{"f0":16e6,"d0":1e6,"n_part":64}}`},
	{"sweep_rram_capacity", `{"kind":"rram_capacity","capacities_mb":[12,16]}`},
	{"sweep_delta", `{"kind":"delta","deltas":[1.0,1.5,2.0]}`},
	{"sweep_beta", `{"kind":"beta","betas":[1.0,1.2]}`},
	{"sweep_tier_pairs", `{"kind":"tier_pairs","tier_pairs":[1,2,3],"per_tier_power_w":2.0}`},
}

// TestSweepGolden locks every sweep kind's response JSON and proves it
// is bit-identical at pool widths 1, 2 and 8.
func TestSweepGolden(t *testing.T) {
	for _, tc := range sweepRequests {
		t.Run(tc.name, func(t *testing.T) {
			var first []byte
			for _, width := range widths {
				_, ts := newTestServer(t, Config{Workers: width})
				status, _, body := post(t, ts.URL+"/v1/sweep", tc.body)
				if status != http.StatusOK {
					t.Fatalf("width %d: status = %d, body %s", width, status, body)
				}
				if first == nil {
					first = body
					checkGolden(t, tc.name+".golden.json", body)
				} else if !bytes.Equal(body, first) {
					t.Fatalf("width %d: response diverged\ngot:\n%s\nwant:\n%s", width, body, first)
				}
			}
		})
	}
}

// TestFlowGolden locks the /v1/flow response for a small M3D spec across
// pool widths; the flow itself is deterministic (PR 1 contract).
func TestFlowGolden(t *testing.T) {
	body := `{"style":"M3D","num_cs":2,"array_rows":2,"array_cols":2,"rram_cap_mb":1,"banks":2,"global_sram_bits":65536,"seed":1}`
	var first []byte
	for _, width := range widths {
		_, ts := newTestServer(t, Config{Workers: width})
		status, _, got := post(t, ts.URL+"/v1/flow", body)
		if status != http.StatusOK {
			t.Fatalf("width %d: status = %d, body %s", width, status, got)
		}
		if first == nil {
			first = got
			checkGolden(t, "flow_m3d.golden.json", got)
		} else if !bytes.Equal(got, first) {
			t.Fatalf("width %d: flow response diverged", width)
		}
	}
}

// TestStatusMapping pins the sentinel→status-code contract at the wire.
func TestStatusMapping(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, tc := range []struct {
		name, method, path, body string
		want                     int
	}{
		{"malformed json", "POST", "/v1/sweep", `{"kind":`, http.StatusBadRequest},
		{"unknown field", "POST", "/v1/sweep", `{"kind":"delta","bogus":1}`, http.StatusBadRequest},
		{"trailing garbage", "POST", "/v1/sweep", `{"kind":"delta"} extra`, http.StatusBadRequest},
		{"unknown kind", "POST", "/v1/sweep", `{"kind":"nope"}`, http.StatusBadRequest},
		{"foreign axis", "POST", "/v1/sweep", `{"kind":"delta","betas":[1.5]}`, http.StatusBadRequest},
		{"negative bandwidth", "POST", "/v1/sweep", `{"kind":"bandwidth_cs","cs_counts":[1],"bw_scales":[-1]}`, http.StatusBadRequest},
		{"delta below one", "POST", "/v1/sweep", `{"kind":"delta","deltas":[0.5]}`, http.StatusBadRequest},
		{"zero tier pairs", "POST", "/v1/sweep", `{"kind":"tier_pairs","tier_pairs":[0]}`, http.StatusBadRequest},
		{"oversized capacity", "POST", "/v1/sweep", `{"kind":"rram_capacity","capacities_mb":[9999999999]}`, http.StatusBadRequest},
		{"thermal violation", "POST", "/v1/sweep", `{"kind":"tier_pairs","tier_pairs":[8],"per_tier_power_w":50,"require_thermal":true}`, http.StatusUnprocessableEntity},
		{"flow bad style", "POST", "/v1/flow", `{"style":"4D"}`, http.StatusBadRequest},
		{"flow bad spec", "POST", "/v1/flow", `{"num_cs":-1}`, http.StatusBadRequest},
		{"method not allowed", "GET", "/v1/sweep", ``, http.StatusMethodNotAllowed},
		{"unknown path", "GET", "/v1/nope", ``, http.StatusNotFound},
	} {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, tc.want, body)
			}
			// Error envelopes are JSON with an "error" key (404/405 come
			// from net/http and are exempt).
			if tc.want != http.StatusNotFound && tc.want != http.StatusMethodNotAllowed {
				var eb errorBody
				if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
					t.Fatalf("error body %q not a JSON error envelope (%v)", body, err)
				}
			}
		})
	}
}

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCancellationMidRequest cancels the client mid-evaluation and
// asserts the pool observes errs.ErrCanceled (serve.canceled counter),
// the admission slot is released, and the memo key is forgotten so the
// cancellation does not poison later identical requests.
func TestCancellationMidRequest(t *testing.T) {
	for _, width := range widths {
		t.Run(fmt.Sprintf("w%d", width), func(t *testing.T) {
			started := make(chan struct{}, 8)
			s := New(Config{Workers: width})
			s.evalStarted = func() { started <- struct{}{} }
			var blocking atomic.Bool
			blocking.Store(true)
			s.evalBlock = func(ctx context.Context) {
				if blocking.Load() {
					<-ctx.Done()
				}
			}
			ts := httptest.NewServer(s)
			defer ts.Close()

			ctx, cancel := context.WithCancel(context.Background())
			req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/sweep",
				strings.NewReader(`{"kind":"bandwidth_cs","cs_counts":[1,2],"bw_scales":[1]}`))
			if err != nil {
				t.Fatal(err)
			}
			done := make(chan error, 1)
			go func() {
				resp, err := http.DefaultClient.Do(req)
				if err == nil {
					resp.Body.Close()
				}
				done <- err
			}()
			<-started
			cancel()
			if err := <-done; err == nil || !errors.Is(err, context.Canceled) {
				t.Fatalf("client error = %v, want context.Canceled", err)
			}

			reg := s.Metrics()
			waitFor(t, "canceled counter", func() bool {
				return reg.Counter("serve.canceled").Value() == 1
			})
			waitFor(t, "admission slot release", func() bool {
				return s.InFlight() == 0 && reg.Gauge("serve.inflight").Value() == 0
			})
			waitFor(t, "memo key forgotten", func() bool {
				return s.sweeps.Len() == 0
			})

			// The identical request must now succeed: the canceled
			// evaluation did not poison the coalescing key.
			blocking.Store(false)
			status, _, body := post(t, ts.URL+"/v1/sweep",
				`{"kind":"bandwidth_cs","cs_counts":[1,2],"bw_scales":[1]}`)
			if status != http.StatusOK {
				t.Fatalf("retry status = %d, body %s", status, body)
			}
			if got := reg.Counter("serve.sweep.evals").Value(); got != 2 {
				t.Fatalf("evals = %d, want 2 (canceled + retry)", got)
			}
		})
	}
}

// TestCoalescing proves two identical concurrent sweeps perform exactly
// one evaluation, observed through the Cache.DoMetered hit counter.
func TestCoalescing(t *testing.T) {
	const body = `{"kind":"bandwidth_cs","cs_counts":[1,2,4],"bw_scales":[1,2]}`
	for _, width := range widths {
		t.Run(fmt.Sprintf("w%d", width), func(t *testing.T) {
			started := make(chan struct{}, 8)
			release := make(chan struct{})
			s := New(Config{Workers: width})
			s.evalStarted = func() { started <- struct{}{} }
			s.evalBlock = func(ctx context.Context) {
				select {
				case <-release:
				case <-ctx.Done():
				}
			}
			ts := httptest.NewServer(s)
			defer ts.Close()

			results := make(chan []byte, 2)
			fire := func() {
				status, _, b := post(t, ts.URL+"/v1/sweep", body)
				if status != http.StatusOK {
					t.Errorf("status = %d, body %s", status, b)
				}
				results <- b
			}
			go fire()
			<-started
			go fire()
			// Give the duplicate time to reach the single-flight cache,
			// then let the one evaluation finish. (Correctness does not
			// depend on the sleep: however the requests interleave, the
			// cache admits exactly one evaluation.)
			time.Sleep(50 * time.Millisecond)
			close(release)
			first, second := <-results, <-results
			if t.Failed() {
				t.FailNow()
			}
			if !bytes.Equal(first, second) {
				t.Fatalf("coalesced responses differ:\n%s\n%s", first, second)
			}

			reg := s.Metrics()
			if got := reg.Counter("serve.sweep.evals").Value(); got != 1 {
				t.Fatalf("evals = %d, want 1 (coalesced)", got)
			}
			if misses := reg.Counter("serve.memo.misses").Value(); misses != 1 {
				t.Fatalf("memo misses = %d, want 1", misses)
			}
			if hits := reg.Counter("serve.memo.hits").Value(); hits != 1 {
				t.Fatalf("memo hits = %d, want 1", hits)
			}
		})
	}
}

// TestLoadShed fills the single admission slot with a blocked request
// and asserts the next request is shed with 429 + Retry-After.
func TestLoadShed(t *testing.T) {
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	s := New(Config{Workers: 1, MaxInFlight: 1, MaxQueue: -1})
	s.evalStarted = func() { started <- struct{}{} }
	s.evalBlock = func(ctx context.Context) {
		select {
		case <-release:
		case <-ctx.Done():
		}
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	first := make(chan int, 1)
	go func() {
		status, _, _ := post(t, ts.URL+"/v1/sweep", `{"kind":"bandwidth_cs","cs_counts":[1],"bw_scales":[1]}`)
		first <- status
	}()
	<-started

	status, header, body := post(t, ts.URL+"/v1/sweep", `{"kind":"bandwidth_cs","cs_counts":[2],"bw_scales":[1]}`)
	if status != http.StatusTooManyRequests {
		t.Fatalf("shed status = %d, want 429 (body %s)", status, body)
	}
	if header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || !strings.Contains(eb.Error, "overloaded") {
		t.Errorf("shed body = %s", body)
	}
	reg := s.Metrics()
	if got := reg.Counter("serve.shed").Value(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}

	close(release)
	if got := <-first; got != http.StatusOK {
		t.Fatalf("blocked request status = %d, want 200", got)
	}
	waitFor(t, "slot release", func() bool { return s.InFlight() == 0 })

	// Capacity restored: the same (previously shed) request now succeeds.
	status, _, _ = post(t, ts.URL+"/v1/sweep", `{"kind":"bandwidth_cs","cs_counts":[2],"bw_scales":[1]}`)
	if status != http.StatusOK {
		t.Fatalf("post-shed status = %d, want 200", status)
	}
}

// TestRequestTimeout proves the per-request deadline propagates into the
// evaluation: a blocked evaluation times out server-side with 408.
func TestRequestTimeout(t *testing.T) {
	s := New(Config{Workers: 1, RequestTimeout: 50 * time.Millisecond})
	s.evalBlock = func(ctx context.Context) { <-ctx.Done() }
	ts := httptest.NewServer(s)
	defer ts.Close()

	status, _, body := post(t, ts.URL+"/v1/sweep", `{"kind":"bandwidth_cs","cs_counts":[1],"bw_scales":[1]}`)
	if status != http.StatusRequestTimeout {
		t.Fatalf("status = %d, want 408 (body %s)", status, body)
	}
	if got := s.Metrics().Counter("serve.canceled").Value(); got != 1 {
		t.Fatalf("canceled counter = %d, want 1", got)
	}
}

// fakeClock steps 1 ms per call (the obs golden-test pattern).
func fakeClock() func() time.Time {
	base := time.Unix(1700000000, 0).UTC()
	n := 0
	return func() time.Time {
		n++
		return base.Add(time.Duration(n-1) * time.Millisecond)
	}
}

// TestMetricsEndpointGolden locks the GET /metrics wire format: with an
// injected clock and a fixed request sequence, the sorted text dump is
// byte-stable.
func TestMetricsEndpointGolden(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Now: fakeClock()})
	for i := 0; i < 2; i++ {
		if status, _ := get(t, ts.URL+"/healthz"); status != http.StatusOK {
			t.Fatalf("healthz status = %d", status)
		}
	}
	status, body := get(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics status = %d", status)
	}
	checkGolden(t, "metrics_endpoint.golden.txt", body)
}

// TestMetricsAfterSweep sanity-checks the counters a real evaluation
// leaves behind (no golden: memo counters depend on process-wide caches
// shared across the test binary).
func TestMetricsAfterSweep(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	if status, _, body := post(t, ts.URL+"/v1/sweep", `{"kind":"bandwidth_cs","cs_counts":[1,2],"bw_scales":[1,2]}`); status != http.StatusOK {
		t.Fatalf("sweep status = %d, body %s", status, body)
	}
	_, body := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		"counter serve.requests 2",
		"counter serve.sweep.evals 1",
		"counter serve.memo.misses 1",
		"counter exec.tasks 4",
		"gauge serve.inflight 0",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics dump missing %q:\n%s", want, body)
		}
	}
	if s.InFlight() != 0 {
		t.Errorf("InFlight = %d after completion", s.InFlight())
	}
}
