package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"m3d/internal/errs"
)

// This file is the one place request decoding and error mapping live:
// every /v1 endpoint decodes through decode/decodeRequest, and every
// failure path maps sentinels to status codes through statusOf. Endpoint
// files define what a request looks like; they do not re-implement how
// one is parsed or how its errors translate.

// badSpec wraps a request-shape complaint in errs.ErrBadSpec (→ 400).
func badSpec(format string, args ...any) error {
	return fmt.Errorf("serve: %s: %w", fmt.Sprintf(format, args...), errs.ErrBadSpec)
}

// decode parses one JSON request body strictly: unknown fields, trailing
// garbage, and oversized bodies all fail with errs.ErrBadSpec.
func decode(body io.Reader, v any) error {
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("serve: decoding request: %v: %w", err, errs.ErrBadSpec)
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err != io.EOF {
		return fmt.Errorf("serve: trailing data after request body: %w", errs.ErrBadSpec)
	}
	return nil
}

// validater is the per-endpoint request contract: each request type
// checks its own shape, reporting violations as errs.ErrBadSpec.
type validater interface{ validate() error }

// decodeRequest is the uniform endpoint entry: strict-decode one request
// body into T and run its validate. Every top-level /v1 request
// (sweep/flow/batch items aside — the batch array is decoded leniently
// so item errors isolate) comes through here, so decoding strictness and
// validation ordering cannot drift between endpoints.
func decodeRequest[T any, PT interface {
	*T
	validater
}](body io.Reader) (PT, error) {
	req := PT(new(T))
	if err := decode(body, req); err != nil {
		return nil, err
	}
	if err := req.validate(); err != nil {
		return nil, err
	}
	return req, nil
}

// statusOf maps the library's sentinel errors to HTTP status codes — the
// single error-mapping table for every endpoint and batch item.
func statusOf(err error) int {
	switch {
	case errors.Is(err, errs.ErrOverloaded):
		return http.StatusTooManyRequests // 429
	case errors.Is(err, errs.ErrBadSpec):
		return http.StatusBadRequest // 400
	case errors.Is(err, errs.ErrNotFound):
		return http.StatusNotFound // 404
	case errors.Is(err, errs.ErrThermalLimit):
		return http.StatusUnprocessableEntity // 422
	case errors.Is(err, errs.ErrCanceled),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return http.StatusRequestTimeout // 408 (499-style client abort)
	default:
		return http.StatusInternalServerError // 500
	}
}
