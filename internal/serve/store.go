package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"m3d/internal/errs"
)

// JobStore is the pluggable persistence behind the async job tier: one
// record per job (the request plus its lifecycle state) and one blob per
// completed stage (the checkpoint a restarted server resumes from). All
// methods must be safe for concurrent use; a missing job or stage is
// reported with an error matching errs.ErrNotFound.
//
// The contract the resume path relies on: PutJob and PutStage are
// atomic at the entry level — a reader (or a server restarted after a
// crash) sees either the previous blob or the new one, never a torn
// write. Stage blobs are immutable once written: the runner writes each
// stage exactly once and never rewrites a checkpoint.
type JobStore interface {
	// PutJob durably writes the job record for id.
	PutJob(id string, record []byte) error
	// GetJob reads the job record for id.
	GetJob(id string) ([]byte, error)
	// ListJobs returns every stored job id (any order).
	ListJobs() ([]string, error)
	// PutStage durably writes one stage checkpoint.
	PutStage(id, stage string, payload []byte) error
	// GetStage reads one stage checkpoint.
	GetStage(id, stage string) ([]byte, error)
	// DeleteJob removes the record and every checkpoint of id (no error
	// when absent).
	DeleteJob(id string) error
}

// storeNotFound builds the shared missing-entity error.
func storeNotFound(what, id string) error {
	return fmt.Errorf("serve: %s %q: %w", what, id, errs.ErrNotFound)
}

// MemJobStore is the in-memory JobStore: process-lifetime persistence
// only, the default when a Server is built without a store. The zero
// value is ready to use.
type MemJobStore struct {
	mu     sync.RWMutex
	jobs   map[string][]byte
	stages map[string]map[string][]byte
}

// NewMemJobStore returns an empty in-memory store.
func NewMemJobStore() *MemJobStore { return &MemJobStore{} }

// PutJob implements JobStore.
func (m *MemJobStore) PutJob(id string, record []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.jobs == nil {
		m.jobs = make(map[string][]byte)
	}
	m.jobs[id] = append([]byte(nil), record...)
	return nil
}

// GetJob implements JobStore.
func (m *MemJobStore) GetJob(id string) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	b, ok := m.jobs[id]
	if !ok {
		return nil, storeNotFound("job", id)
	}
	return append([]byte(nil), b...), nil
}

// ListJobs implements JobStore.
func (m *MemJobStore) ListJobs() ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	ids := make([]string, 0, len(m.jobs))
	for id := range m.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, nil
}

// PutStage implements JobStore.
func (m *MemJobStore) PutStage(id, stage string, payload []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stages == nil {
		m.stages = make(map[string]map[string][]byte)
	}
	if m.stages[id] == nil {
		m.stages[id] = make(map[string][]byte)
	}
	m.stages[id][stage] = append([]byte(nil), payload...)
	return nil
}

// GetStage implements JobStore.
func (m *MemJobStore) GetStage(id, stage string) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	b, ok := m.stages[id][stage]
	if !ok {
		return nil, storeNotFound("stage", id+"/"+stage)
	}
	return append([]byte(nil), b...), nil
}

// DeleteJob implements JobStore.
func (m *MemJobStore) DeleteJob(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.jobs, id)
	delete(m.stages, id)
	return nil
}

// DirJobStore is the filesystem JobStore: one directory per job holding
// job.json plus one stage.<name>.bin per checkpoint. Every write lands
// via create-temp + rename, so a crash mid-write leaves either the old
// entry or the new one — never a torn blob — which is what lets a
// restarted server trust whatever checkpoints it finds. This is the
// store cmd/m3dserve mounts with -jobstore.
type DirJobStore struct {
	dir string
	mu  sync.Mutex // serializes temp-name generation per process
	seq int
}

// NewDirJobStore returns a store rooted at dir, creating it when absent.
func NewDirJobStore(dir string) (*DirJobStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: job store: %w", err)
	}
	return &DirJobStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (d *DirJobStore) Dir() string { return d.dir }

// jobDir maps an id to its directory, refusing path-escaping ids.
func (d *DirJobStore) jobDir(id string) (string, error) {
	if id == "" || strings.ContainsAny(id, "/\\") || strings.Contains(id, "..") {
		return "", fmt.Errorf("serve: job store: unusable id %q: %w", id, errs.ErrBadSpec)
	}
	return filepath.Join(d.dir, id), nil
}

// write atomically persists one blob at path (temp file + rename).
func (d *DirJobStore) write(path string, blob []byte) error {
	d.mu.Lock()
	d.seq++
	tmp := fmt.Sprintf("%s.tmp%d", path, d.seq)
	d.mu.Unlock()
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return fmt.Errorf("serve: job store: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: job store: %w", err)
	}
	return nil
}

// PutJob implements JobStore.
func (d *DirJobStore) PutJob(id string, record []byte) error {
	dir, err := d.jobDir(id)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("serve: job store: %w", err)
	}
	return d.write(filepath.Join(dir, "job.json"), record)
}

// GetJob implements JobStore.
func (d *DirJobStore) GetJob(id string) ([]byte, error) {
	dir, err := d.jobDir(id)
	if err != nil {
		return nil, err
	}
	b, err := os.ReadFile(filepath.Join(dir, "job.json"))
	if os.IsNotExist(err) {
		return nil, storeNotFound("job", id)
	}
	if err != nil {
		return nil, fmt.Errorf("serve: job store: %w", err)
	}
	return b, nil
}

// ListJobs implements JobStore.
func (d *DirJobStore) ListJobs() ([]string, error) {
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, fmt.Errorf("serve: job store: %w", err)
	}
	var ids []string
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		if _, err := os.Stat(filepath.Join(d.dir, e.Name(), "job.json")); err == nil {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// stagePath maps a stage name to its checkpoint file, refusing names
// that would escape the job directory.
func (d *DirJobStore) stagePath(id, stage string) (string, error) {
	dir, err := d.jobDir(id)
	if err != nil {
		return "", err
	}
	if stage == "" || strings.ContainsAny(stage, "/\\") || strings.Contains(stage, "..") {
		return "", fmt.Errorf("serve: job store: unusable stage %q: %w", stage, errs.ErrBadSpec)
	}
	return filepath.Join(dir, "stage."+stage+".bin"), nil
}

// PutStage implements JobStore.
func (d *DirJobStore) PutStage(id, stage string, payload []byte) error {
	path, err := d.stagePath(id, stage)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("serve: job store: %w", err)
	}
	return d.write(path, payload)
}

// GetStage implements JobStore.
func (d *DirJobStore) GetStage(id, stage string) ([]byte, error) {
	path, err := d.stagePath(id, stage)
	if err != nil {
		return nil, err
	}
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, storeNotFound("stage", id+"/"+stage)
	}
	if err != nil {
		return nil, fmt.Errorf("serve: job store: %w", err)
	}
	return b, nil
}

// DeleteJob implements JobStore.
func (d *DirJobStore) DeleteJob(id string) error {
	dir, err := d.jobDir(id)
	if err != nil {
		return err
	}
	if err := os.RemoveAll(dir); err != nil {
		return fmt.Errorf("serve: job store: %w", err)
	}
	return nil
}
