// Package serve is the HTTP evaluation service over the m3d library: a
// stdlib-only JSON API exposing the Sec. III analytical framework
// (POST /v1/sweep), the RTL-to-GDS flow (POST /v1/flow), heterogeneous
// batches of both with per-item isolation and streamed results
// (POST /v1/batch), the adaptive Pareto design-space explorer with
// streamed frontier updates (POST /v1/dse), a liveness probe
// (GET /healthz), and the metrics registry (GET /metrics, the sorted
// text dump of obs.Registry.WriteText). cmd/m3dserve is the binary.
//
// Request path (DESIGN.md §9-10): admission → coalesce → pool → response.
//
//   - Admission: every /v1 request passes an exec.Gate bounding in-flight
//     evaluations plus a waiting queue; beyond both it is shed with
//     429 Too Many Requests and a Retry-After header (errs.ErrOverloaded).
//     A batch occupies exactly one admission slot for all its items.
//   - Coalescing: identical in-flight requests (canonical JSON key) are
//     deduplicated through the single-flight exec.Cache — concurrent
//     duplicates share one evaluation, counted by the serve.memo.hits /
//     serve.memo.misses registry counters. Failed evaluations are
//     forgotten so a canceled request never poisons its key. With
//     Config.CacheCap (or M3D_CACHE_CAP) set, the caches are bounded
//     size-aware LRUs: memory stays flat under sustained varied traffic
//     at the price of re-evaluating evicted keys (cache.entries gauge,
//     cache.evictions counter).
//   - Pool: evaluations run on the exec worker pool at the server's
//     configured width, under a per-request context deadline
//     (Config.RequestTimeout) derived from the client's context — client
//     disconnect or deadline expiry cancels the evaluation (the pool
//     observes errs.ErrCanceled and releases its admission slot).
//
// Error contract → status codes: errs.ErrBadSpec → 400,
// errs.ErrThermalLimit → 422, errs.ErrCanceled → 408 (the nearest
// standard code to nginx's 499), errs.ErrOverloaded → 429, draining →
// 503; anything else is a 500. Error bodies are {"error": "..."}.
//
// Every request emits a "serve.<route>" span (when a tracer is attached)
// and maintains serve.requests / serve.request.errors /
// serve.request.seconds / serve.inflight / serve.queue.depth /
// serve.shed / serve.canceled in the registry.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"m3d/internal/dse"
	"m3d/internal/errs"
	"m3d/internal/exec"
	"m3d/internal/flow"
	"m3d/internal/obs"
	"m3d/internal/tech"
)

// maxBodyBytes bounds request bodies; larger bodies fail with 400.
const maxBodyBytes = 1 << 20

// Config configures a Server. The zero value is usable: default PDK,
// default pool width, 64 in-flight requests with an equal waiting queue,
// a 30 s request deadline, no tracer, and a fresh metrics registry.
type Config struct {
	// PDK is the process model evaluations run against (nil =
	// tech.Default130()).
	PDK *tech.PDK
	// Workers is the exec pool width for each evaluation (≤ 0 =
	// exec.DefaultWorkers()).
	Workers int
	// MaxInFlight bounds concurrently admitted /v1 requests (≤ 0 = 64).
	MaxInFlight int
	// MaxQueue bounds requests waiting for admission beyond MaxInFlight:
	// 0 selects MaxInFlight, negative disables waiting entirely (shed as
	// soon as the in-flight limit is reached).
	MaxQueue int
	// RequestTimeout is the per-request evaluation deadline, derived from
	// the client's context: 0 selects 30 s, negative disables the
	// deadline.
	RequestTimeout time.Duration
	// CacheCap bounds each coalescing cache (sweep and flow responses,
	// shared with /v1/batch items) at this many memoized responses,
	// evicting least-recently-used entries beyond it; the caches feed the
	// registry's cache.entries gauge and cache.evictions counter. 0 reads
	// the M3D_CACHE_CAP environment variable (unset = unbounded);
	// negative forces unbounded.
	CacheCap int
	// Tracer receives one span per request and the evaluation's inner
	// spans; nil disables tracing.
	Tracer obs.Tracer
	// Metrics is the registry served by GET /metrics and fed by the
	// request counters (nil = a fresh registry).
	Metrics *obs.Registry
	// Now overrides the clock used for request-duration metrics (tests);
	// nil means time.Now.
	Now func() time.Time

	// JobStore persists async jobs (POST /v1/jobs) and their per-stage
	// checkpoints; a restarted server built over the same store resumes
	// every unfinished job from its last completed stage. nil keeps jobs
	// in memory for the process lifetime (no resume across restarts).
	JobStore JobStore
	// MaxJobs bounds concurrently running jobs (≤ 0 = 2). Jobs draw from
	// their own gate, not the request-admission gate.
	MaxJobs int
	// MaxJobQueue bounds jobs queued behind the running ones: 0 selects
	// 16, negative disables queueing (shed once MaxJobs are running).
	// Beyond both, POST /v1/jobs sheds with 429 + Retry-After.
	MaxJobQueue int

	// Peers is the static fleet for consistent-hash sharding of the
	// evaluation caches: every peer's base URL (scheme://host:port),
	// including this server's own (Self). Empty disables sharding. Each
	// cache key hashes to one owner; non-owners forward the evaluation to
	// it and fall back to evaluating locally when the owner is unreachable
	// or overloaded.
	Peers []string
	// Self is this server's own base URL as it appears in Peers.
	Self string
	// PeerTransport overrides the HTTP transport used for peer forwards
	// (tests inject faults here); nil uses http.DefaultTransport.
	PeerTransport http.RoundTripper
}

// Server is the HTTP evaluation service. Build with New; it implements
// http.Handler and is safe for concurrent use.
type Server struct {
	pdk     *tech.PDK
	workers int
	timeout time.Duration
	tracer  obs.Tracer
	reg     *obs.Registry
	now     func() time.Time
	gate    *exec.Gate
	mux     *http.ServeMux

	mu       sync.Mutex
	draining bool
	inflight int
	idle     chan struct{}
	idleOnce sync.Once

	sweeps    exec.Cache[string, *SweepResponse]
	flows     exec.Cache[string, *FlowResponse]
	dsePoints dse.PointCache
	// designs retains full flow.Result databases (netlist + routes) for
	// endpoints that re-analyze a built design (/v1/yield).
	designs exec.Cache[string, *flow.Result]

	jobs  *jobTier
	peers *peerRing

	// Test hooks (nil outside tests): evalStarted fires when an
	// evaluation body begins; evalBlock then blocks it, typically until
	// the request context ends.
	evalStarted func()
	evalBlock   func(ctx context.Context)
}

// New builds a Server from cfg (see Config for defaults).
func New(cfg Config) *Server {
	s := &Server{
		pdk:     cfg.PDK,
		workers: cfg.Workers,
		timeout: cfg.RequestTimeout,
		tracer:  cfg.Tracer,
		reg:     cfg.Metrics,
		now:     cfg.Now,
		idle:    make(chan struct{}),
	}
	if s.pdk == nil {
		s.pdk = tech.Default130()
	}
	if s.workers <= 0 {
		s.workers = exec.DefaultWorkers()
	}
	if s.timeout == 0 {
		s.timeout = 30 * time.Second
	}
	if s.reg == nil {
		s.reg = obs.NewRegistry()
	}
	if s.now == nil {
		s.now = time.Now
	}
	maxInFlight := cfg.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = 64
	}
	maxQueue := cfg.MaxQueue
	if maxQueue == 0 {
		maxQueue = maxInFlight
	}
	s.gate = exec.NewGate(maxInFlight, maxQueue)

	cacheCap := int64(cfg.CacheCap)
	if cfg.CacheCap == 0 {
		cacheCap = exec.CacheCapFromEnv()
	}
	if cacheCap > 0 {
		s.sweeps.Bound(cacheCap, nil)
		s.flows.Bound(cacheCap, nil)
		// Points are far smaller than responses; let the point memo hold a
		// multiple of the response budget before evicting.
		s.dsePoints.Bound(cacheCap*64, nil)
		// Design databases are far larger than responses; keep only a
		// handful before evicting.
		s.designs.Bound(cacheCap, nil)
	}
	s.sweeps.Instrument(s.reg)
	s.flows.Instrument(s.reg)
	s.dsePoints.Instrument(s.reg)
	s.designs.Instrument(s.reg)

	s.jobs = newJobTier(s, cfg.JobStore, cfg.MaxJobs, cfg.MaxJobQueue)
	s.peers = newPeerRing(s, cfg.Peers, cfg.Self, cfg.PeerTransport)

	s.mux = http.NewServeMux()
	s.mux.Handle("GET /healthz", s.handler("healthz", false, s.handleHealthz))
	s.mux.Handle("GET /metrics", s.handler("metrics", false, s.handleMetrics))
	s.mux.Handle("POST /v1/sweep", s.handler("sweep", true, s.handleSweep))
	s.mux.Handle("POST /v1/flow", s.handler("flow", true, s.handleFlow))
	s.mux.Handle("POST /v1/batch", s.handler("batch", true, s.handleBatch))
	s.mux.Handle("POST /v1/dse", s.handler("dse", true, s.handleDSE))
	s.mux.Handle("POST /v1/yield", s.handler("yield", true, s.handleYield))
	s.mux.Handle("POST /v1/jobs", s.handler("jobs", false, s.handleJobs))
	s.mux.Handle("GET /v1/jobs/{id}", s.handler("jobs.get", false, s.handleJobGet))
	s.mux.Handle("GET /v1/jobs/{id}/events", s.handler("jobs.events", false, s.handleJobEvents))
	s.mux.Handle("GET /v1/jobs/{id}/artifacts/{name}", s.handler("jobs.artifact", false, s.handleJobArtifact))
	s.mux.Handle("DELETE /v1/jobs/{id}", s.handler("jobs.cancel", false, s.handleJobCancel))

	// Resume every unfinished job the store holds: the queue re-runs them
	// from their last completed checkpoint.
	s.jobs.resume()
	return s
}

// Metrics returns the server's registry (never nil after New).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// InFlight reports the number of admitted evaluation requests.
func (s *Server) InFlight() int { return s.gate.InFlight() }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// enter registers one request against the drain barrier; it reports
// false when the server is draining (the request must be refused).
func (s *Server) enter() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.inflight++
	return true
}

// leave is enter's inverse; the last request out signals Drain.
func (s *Server) leave() {
	s.mu.Lock()
	s.inflight--
	if s.draining && s.inflight == 0 {
		s.idleOnce.Do(func() { close(s.idle) })
	}
	s.mu.Unlock()
}

// Drain puts the server into drain mode — every new request is refused
// with 503 — interrupts the async job tier (running jobs stop at their
// next cancellation point with every completed checkpoint persisted and
// park back in "queued", the state a restarted server resumes them
// from), and waits for in-flight requests and interrupted jobs to
// settle. It returns nil once the server is idle, or an error matching
// errs.ErrCanceled (and ctx.Err()) when ctx ends first. Drain is
// idempotent; the server stays refusing after it returns.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	if s.inflight == 0 {
		s.idleOnce.Do(func() { close(s.idle) })
	}
	s.mu.Unlock()
	// Interrupt jobs first: event streams held open by watchers count as
	// in-flight requests, and they only finish once the tier cancels.
	s.jobs.interrupt()
	select {
	case <-s.idle:
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted with %d request(s) in flight: %w: %w",
			s.requestsInFlight(), errs.ErrCanceled, ctx.Err())
	}
	return s.jobs.wait(ctx)
}

func (s *Server) requestsInFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflight
}

// handler wraps an endpoint body with the request pipeline: drain
// refusal, the admission gate (admit endpoints only), the request
// deadline, the request span, and the request metrics.
func (s *Server) handler(route string, admit bool, h func(ctx context.Context, w http.ResponseWriter, r *http.Request) error) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !s.enter() {
			w.Header().Set("Retry-After", "1")
			s.fail(w, errors.New("serve: draining"), http.StatusServiceUnavailable)
			return
		}
		defer s.leave()

		start := s.now()
		s.reg.Counter("serve.requests").Add(1)
		var sp obs.Span
		if s.tracer != nil {
			sp = s.tracer.StartSpan("serve."+route, obs.String("method", r.Method))
		}
		status := http.StatusOK
		defer func() {
			s.reg.Histogram("serve.request.seconds").Observe(s.now().Sub(start).Seconds())
			if sp != nil {
				sp.SetAttr(obs.Int("status", status))
				sp.End()
			}
		}()

		ctx := r.Context()
		if s.timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.timeout)
			defer cancel()
		}
		if r.Header.Get(peerHopHeader) != "" {
			// Already forwarded once: evaluate here, never re-forward.
			ctx = withPeerHop(ctx)
		}

		if admit {
			err := s.gate.Enter(ctx)
			s.reg.Gauge("serve.queue.depth").Set(int64(s.gate.Waiting()))
			if err != nil {
				status = statusOf(err)
				if errors.Is(err, errs.ErrOverloaded) {
					s.reg.Counter("serve.shed").Add(1)
					w.Header().Set("Retry-After", "1")
				}
				s.fail(w, err, status)
				return
			}
			s.reg.Gauge("serve.inflight").Set(int64(s.gate.InFlight()))
			defer func() {
				s.gate.Leave()
				s.reg.Gauge("serve.inflight").Set(int64(s.gate.InFlight()))
			}()
		}

		r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
		if err := h(ctx, w, r); err != nil {
			status = statusOf(err)
			s.fail(w, err, status)
		}
	})
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) fail(w http.ResponseWriter, err error, status int) {
	s.reg.Counter("serve.request.errors").Add(1)
	if status == http.StatusRequestTimeout {
		s.reg.Counter("serve.canceled").Add(1)
	}
	if status == http.StatusTooManyRequests {
		// Shed is shed wherever it surfaces (admission gate or job queue).
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	return enc.Encode(v)
}

// HealthResponse is the GET /healthz body.
type HealthResponse struct {
	Status string `json:"status"`
}

func (s *Server) handleHealthz(_ context.Context, w http.ResponseWriter, _ *http.Request) error {
	return writeJSON(w, http.StatusOK, HealthResponse{Status: "ok"})
}

func (s *Server) handleMetrics(_ context.Context, w http.ResponseWriter, _ *http.Request) error {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	return s.reg.WriteText(w)
}

// evalOptions are the exec options every evaluation runs under: the
// request context (deadline + client cancellation), the server's pool
// width, and its observability sinks.
func (s *Server) evalOptions(ctx context.Context) []exec.Option {
	return []exec.Option{
		exec.WithContext(ctx),
		exec.WithWorkers(s.workers),
		exec.WithTracer(s.tracer),
		exec.WithMetrics(s.reg),
	}
}
