package serve

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"m3d/internal/dse"
	"m3d/internal/errs"
	"m3d/internal/exec"
	"m3d/internal/flow"
	"m3d/internal/obs"
	"m3d/internal/report"
)

// The async job tier: POST /v1/jobs accepts sweep/flow/dse work and
// returns a job ID immediately; the work runs behind an exec.Queue over
// its own admission gate, checkpointing each completed stage through the
// pluggable JobStore so a restarted server resumes from the last
// completed stage instead of starting over. GET /v1/jobs/{id} reports
// status plus progress (completed stages over planned stages, and the
// innermost live evaluation span while running); GET /v1/jobs/{id}/events
// streams status snapshots over the shared arrayStream encoder;
// GET /v1/jobs/{id}/artifacts/{name} serves the persisted flow artifacts
// (DEF, report); DELETE /v1/jobs/{id} cancels.
//
// Lifecycle: accepted → queued → running → done | failed | canceled. A
// drain (SIGTERM) interrupts the running stage, keeps every completed
// checkpoint, and parks the job back in "queued" — the state a restarted
// server picks it up from. Stage outputs are deterministic functions of
// the request (the PR 5/6 byte-identical guarantees), so a resumed job
// produces byte-identical results and artifacts to an uninterrupted run.

// Job states.
const (
	JobStateAccepted = "accepted"
	JobStateQueued   = "queued"
	JobStateRunning  = "running"
	JobStateDone     = "done"
	JobStateFailed   = "failed"
	JobStateCanceled = "canceled"
)

// jobTerminal reports whether a state is final.
func jobTerminal(state string) bool {
	return state == JobStateDone || state == JobStateFailed || state == JobStateCanceled
}

// maxJobChunks bounds the sweep checkpoint granularity.
const maxJobChunks = 32

// defaultJobChunks is the sweep stage count when the request does not
// pick one (and the primary axis is long enough).
const defaultJobChunks = 4

// JobRequest is the POST /v1/jobs body: exactly one of Sweep, Flow or
// DSE, evaluated asynchronously with per-stage checkpoints.
type JobRequest struct {
	// ID names the job (optional; one is generated when empty).
	// Resubmitting an existing ID with the identical request is
	// idempotent and returns the job's current status.
	ID string `json:"id,omitempty"`

	Sweep *SweepRequest `json:"sweep,omitempty"`
	Flow  *FlowRequest  `json:"flow,omitempty"`
	DSE   *DSERequest   `json:"dse,omitempty"`

	// Chunks splits a sweep job's primary axis into this many
	// checkpointed stages (0 = 4, 1 = a single stage; capped at the axis
	// length and maxJobChunks). Only valid on sweep jobs.
	Chunks int `json:"chunks,omitempty"`
}

// kind returns the job's work kind.
func (q *JobRequest) kind() string {
	switch {
	case q.Sweep != nil:
		return "sweep"
	case q.Flow != nil:
		return "flow"
	case q.DSE != nil:
		return "dse"
	}
	return ""
}

// validate implements the decodeRequest contract.
func (q *JobRequest) validate() error {
	n := 0
	for _, set := range []bool{q.Sweep != nil, q.Flow != nil, q.DSE != nil} {
		if set {
			n++
		}
	}
	if n != 1 {
		return badSpec("job needs exactly one of sweep, flow or dse")
	}
	if q.Chunks != 0 && q.Sweep == nil {
		return badSpec("chunks is only valid on sweep jobs")
	}
	if q.Chunks < 0 || q.Chunks > maxJobChunks {
		return badSpec("chunks %d outside [0, %d]", q.Chunks, maxJobChunks)
	}
	if len(q.ID) > 64 {
		return badSpec("job id longer than 64 bytes")
	}
	for _, r := range q.ID {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return badSpec("job id %q: want [A-Za-z0-9._-]", q.ID)
		}
	}
	if q.ID == "." || q.ID == ".." {
		return badSpec("job id %q: want [A-Za-z0-9._-]", q.ID)
	}
	switch {
	case q.Sweep != nil:
		return q.Sweep.validate()
	case q.Flow != nil:
		return q.Flow.validate()
	default:
		return q.DSE.validate()
	}
}

// JobStatus is the job's wire status: the GET /v1/jobs/{id} body, the
// POST /v1/jobs reply, and the /events stream element.
type JobStatus struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	State string `json:"state"`
	// Stages is the planned checkpoint sequence; StagesDone the completed
	// prefix-so-far (checkpoints a restart resumes past).
	Stages     []string `json:"stages"`
	StagesDone []string `json:"stages_done,omitempty"`
	// Stage is the currently-running stage; Span the innermost live
	// evaluation span inside it (e.g. "flow.route"), derived from the
	// stage instrumentation the flow already emits.
	Stage string `json:"stage,omitempty"`
	Span  string `json:"span,omitempty"`
	// Progress is completed stages over planned stages in [0, 1].
	Progress float64 `json:"progress"`
	Error    string  `json:"error,omitempty"`
	// Result is the kind's response body (SweepResponse, FlowResponse or
	// the final DSEUpdate), present once done.
	Result json.RawMessage `json:"result,omitempty"`
	// Artifacts lists the persisted artifact names served under
	// /v1/jobs/{id}/artifacts/{name} ("def", "report" on flow jobs).
	Artifacts []string `json:"artifacts,omitempty"`
}

// jobRecord is the persisted form of a job (JobStore's job.json blob).
type jobRecord struct {
	ID        string          `json:"id"`
	Kind      string          `json:"kind"`
	Request   json.RawMessage `json:"request"`
	State     string          `json:"state"`
	Stages    []string        `json:"stages"`
	Done      []string        `json:"done,omitempty"`
	Error     string          `json:"error,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
	Artifacts []string        `json:"artifacts,omitempty"`
}

// jobStage is one checkpointed unit of work: run computes the stage
// payload from the job context and the payloads of prior stages.
type jobStage struct {
	name string
	run  func(ctx context.Context, prior map[string][]byte) ([]byte, error)
}

// job is the in-memory state of one job.
type job struct {
	mu       sync.Mutex
	rec      jobRecord
	req      *JobRequest
	current  string             // running stage name
	tracker  *obs.ActiveTracker // live while running
	cancel   context.CancelFunc
	byClient bool // canceled via DELETE
	watchers map[chan struct{}]struct{}
}

// jobTier owns the queue, the store, and the job table.
type jobTier struct {
	s     *Server
	store JobStore
	gate  *exec.Gate
	queue *exec.Queue

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu   sync.Mutex
	jobs map[string]*job

	// noPersist simulates a hard kill in tests: once set, nothing is
	// written to the store anymore, as if the process had died.
	noPersist bool
	// stageDone (tests) fires after each checkpoint commits.
	stageDone func(id, stage string)
}

func newJobTier(s *Server, store JobStore, maxJobs, maxQueue int) *jobTier {
	if store == nil {
		store = NewMemJobStore()
	}
	if maxJobs <= 0 {
		maxJobs = 2
	}
	if maxQueue == 0 {
		maxQueue = 16
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	gate := exec.NewGate(maxJobs, maxQueue)
	ctx, cancel := context.WithCancel(context.Background())
	return &jobTier{
		s:          s,
		store:      store,
		gate:       gate,
		queue:      exec.NewQueue(gate),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*job),
	}
}

// persistLocked writes j's record to the store (j.mu held). Persistence
// failures leave the in-memory state authoritative.
func (t *jobTier) persistLocked(j *job) error {
	t.mu.Lock()
	suppressed := t.noPersist
	t.mu.Unlock()
	if suppressed {
		return nil
	}
	b, err := json.Marshal(j.rec)
	if err != nil {
		return err
	}
	return t.store.PutJob(j.rec.ID, b)
}

// notifyLocked wakes every events watcher (j.mu held).
func (j *job) notifyLocked() {
	for ch := range j.watchers {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// subscribe returns a dirty-notification channel for the events stream.
func (j *job) subscribe() chan struct{} {
	ch := make(chan struct{}, 1)
	j.mu.Lock()
	if j.watchers == nil {
		j.watchers = make(map[chan struct{}]struct{})
	}
	j.watchers[ch] = struct{}{}
	j.mu.Unlock()
	return ch
}

func (j *job) unsubscribe(ch chan struct{}) {
	j.mu.Lock()
	delete(j.watchers, ch)
	j.mu.Unlock()
}

// status snapshots the job's wire status.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:         j.rec.ID,
		Kind:       j.rec.Kind,
		State:      j.rec.State,
		Stages:     append([]string(nil), j.rec.Stages...),
		StagesDone: append([]string(nil), j.rec.Done...),
		Error:      j.rec.Error,
		Result:     j.rec.Result,
		Artifacts:  append([]string(nil), j.rec.Artifacts...),
	}
	if len(j.rec.Stages) > 0 {
		st.Progress = float64(len(j.rec.Done)) / float64(len(j.rec.Stages))
	}
	if j.rec.State == JobStateRunning {
		st.Stage = j.current
		if j.tracker != nil {
			st.Span = j.tracker.Active()
		}
	}
	return st
}

// setState transitions the job, persists, and notifies watchers.
func (t *jobTier) setState(j *job, state string, mutate func(*jobRecord)) {
	j.mu.Lock()
	j.rec.State = state
	if mutate != nil {
		mutate(&j.rec)
	}
	t.persistLocked(j)
	j.notifyLocked()
	j.mu.Unlock()
}

// newJobID generates a fresh job id.
func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// The math here never runs in practice; keep ids unique enough.
		return fmt.Sprintf("j%p", &b)
	}
	return "j" + hex.EncodeToString(b[:])
}

// lookup finds a job by id (memory first, then the store — jobs written
// by an earlier incarnation are loaded on demand).
func (t *jobTier) lookup(id string) (*job, error) {
	t.mu.Lock()
	j, ok := t.jobs[id]
	t.mu.Unlock()
	if ok {
		return j, nil
	}
	b, err := t.store.GetJob(id)
	if err != nil {
		return nil, err
	}
	var rec jobRecord
	if err := json.Unmarshal(b, &rec); err != nil {
		return nil, fmt.Errorf("serve: job %s record corrupt: %v: %w", id, err, errs.ErrNotFound)
	}
	j = &job{rec: rec}
	t.mu.Lock()
	if exist, ok := t.jobs[id]; ok {
		j = exist
	} else {
		t.jobs[id] = j
	}
	t.mu.Unlock()
	return j, nil
}

// submit accepts one validated request: persist the accepted record,
// queue the work, and return the (at least queued) status. ErrOverloaded
// means the job tier's queue is full (429 upstream).
func (t *jobTier) submit(req *JobRequest) (*job, error) {
	canon, err := json.Marshal(req)
	if err != nil {
		return nil, badSpec("unmarshalable job request")
	}
	id := req.ID
	if id == "" {
		id = newJobID()
	}

	// Idempotent resubmission: the same id with the same request returns
	// the existing job; a different request is refused.
	if j, err := t.lookup(id); err == nil {
		j.mu.Lock()
		same := bytes.Equal(j.rec.Request, canon)
		j.mu.Unlock()
		if !same {
			return nil, badSpec("job %s already exists with a different request", id)
		}
		return j, nil
	}

	stages, err := planStages(t.s, req)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(stages))
	for i, st := range stages {
		names[i] = st.name
	}
	j := &job{
		req: req,
		rec: jobRecord{
			ID:      id,
			Kind:    req.kind(),
			Request: canon,
			State:   JobStateAccepted,
			Stages:  names,
		},
	}
	t.mu.Lock()
	if _, ok := t.jobs[id]; ok {
		// Lost a submission race on the same id; treat as idempotent.
		exist := t.jobs[id]
		t.mu.Unlock()
		return exist, nil
	}
	t.jobs[id] = j
	t.mu.Unlock()

	j.mu.Lock()
	if err := t.persistLocked(j); err != nil {
		j.mu.Unlock()
		t.drop(id)
		return nil, fmt.Errorf("serve: persisting job %s: %v: %w", id, err, errs.ErrBadSpec)
	}
	j.mu.Unlock()

	if err := t.enqueue(j); err != nil {
		t.drop(id)
		t.store.DeleteJob(id)
		t.s.reg.Counter("serve.jobs.shed").Add(1)
		return nil, err
	}
	t.s.reg.Counter("serve.jobs.submitted").Add(1)
	return j, nil
}

// drop removes a job from the table (shed before it ever queued).
func (t *jobTier) drop(id string) {
	t.mu.Lock()
	delete(t.jobs, id)
	t.mu.Unlock()
}

// enqueue submits j to the queue and transitions it to queued.
func (t *jobTier) enqueue(j *job) error {
	ctx, cancel := context.WithCancel(t.baseCtx)
	j.mu.Lock()
	j.cancel = cancel
	j.mu.Unlock()
	err := t.queue.Submit(ctx,
		func(ctx context.Context) { t.run(ctx, j) },
		func(err error) { t.queuedCanceled(j, err) })
	if err != nil {
		cancel()
		return err
	}
	t.setState(j, JobStateQueued, nil)
	t.s.reg.Gauge("serve.jobs.active").Add(1)
	return nil
}

// queuedCanceled settles a job whose context ended while it waited for
// a slot: a drain parks it queued (resumable after restart), a client
// cancellation finishes it canceled — in both cases without running.
func (t *jobTier) queuedCanceled(j *job, err error) {
	defer t.s.reg.Gauge("serve.jobs.active").Add(-1)
	j.mu.Lock()
	byClient := j.byClient
	j.mu.Unlock()
	if byClient {
		t.s.reg.Counter("serve.jobs.canceled").Add(1)
		t.setState(j, JobStateCanceled, func(r *jobRecord) { r.Error = err.Error() })
		return
	}
	// Interrupted by drain: stays queued in the store for the next
	// incarnation to resume.
	t.s.reg.Counter("serve.jobs.interrupted").Add(1)
	t.setState(j, JobStateQueued, nil)
}

// run executes j's stages, loading checkpointed ones from the store and
// persisting each newly completed one.
func (t *jobTier) run(ctx context.Context, j *job) {
	defer t.s.reg.Gauge("serve.jobs.active").Add(-1)
	tracker := obs.NewActiveTracker(t.s.tracer)
	j.mu.Lock()
	j.tracker = tracker
	done := make(map[string]bool, len(j.rec.Done))
	for _, name := range j.rec.Done {
		done[name] = true
	}
	req := j.req
	j.mu.Unlock()

	if req == nil {
		// Resumed from a persisted record: re-decode the request.
		req = new(JobRequest)
		j.mu.Lock()
		raw := j.rec.Request
		j.mu.Unlock()
		if err := json.Unmarshal(raw, req); err == nil {
			err = req.validate()
			if err == nil {
				j.mu.Lock()
				j.req = req
				j.mu.Unlock()
			} else {
				t.fail(j, err)
				return
			}
		} else {
			t.fail(j, badSpec("persisted job request corrupt: %v", err))
			return
		}
	}

	stages, err := planStages(t.s, req)
	if err != nil {
		t.fail(j, err)
		return
	}

	t.s.reg.Gauge("serve.jobs.running").Add(1)
	defer t.s.reg.Gauge("serve.jobs.running").Add(-1)
	t.setState(j, JobStateRunning, nil)

	ctx = withJobMeta(ctx, j.rec.ID, tracker)
	prior := make(map[string][]byte, len(stages))
	for _, st := range stages {
		if done[st.name] {
			// Resume past a checkpointed stage: its payload comes from the
			// store, not from recomputation.
			payload, err := t.store.GetStage(j.rec.ID, st.name)
			if err == nil {
				prior[st.name] = payload
				continue
			}
			// Checkpoint lost (or corrupt store): recompute the stage.
			done[st.name] = false
		}
		j.mu.Lock()
		j.current = st.name
		j.notifyLocked()
		j.mu.Unlock()

		payload, err := st.run(ctx, prior)
		if err != nil {
			t.settleError(j, st.name, err)
			return
		}
		prior[st.name] = payload
		if err := t.putStage(j, st.name, payload); err != nil {
			t.fail(j, fmt.Errorf("serve: checkpointing %s/%s: %v", j.rec.ID, st.name, err))
			return
		}
		if t.stageDone != nil {
			t.stageDone(j.rec.ID, st.name)
		}
	}

	final := prior[stages[len(stages)-1].name]
	t.s.reg.Counter("serve.jobs.done").Add(1)
	t.setState(j, JobStateDone, func(r *jobRecord) {
		r.Result = final
		if req.Flow != nil {
			r.Artifacts = []string{"def", "report"}
		}
	})
}

// putStage persists one completed stage and appends it to the record.
func (t *jobTier) putStage(j *job, name string, payload []byte) error {
	t.mu.Lock()
	suppressed := t.noPersist
	t.mu.Unlock()
	if !suppressed {
		if err := t.store.PutStage(j.rec.ID, name, payload); err != nil {
			return err
		}
	}
	t.s.reg.Counter("serve.jobs.checkpoints").Add(1)
	j.mu.Lock()
	j.rec.Done = append(j.rec.Done, name)
	j.current = ""
	t.persistLocked(j)
	j.notifyLocked()
	j.mu.Unlock()
	return nil
}

// settleError routes a stage failure: cancellation by drain parks the
// job queued (resumable), cancellation by the client finishes it
// canceled, anything else fails it.
func (t *jobTier) settleError(j *job, stage string, err error) {
	if errors.Is(err, errs.ErrCanceled) || errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) {
		j.mu.Lock()
		byClient := j.byClient
		j.mu.Unlock()
		if byClient {
			t.s.reg.Counter("serve.jobs.canceled").Add(1)
			t.setState(j, JobStateCanceled, func(r *jobRecord) {
				r.Error = fmt.Sprintf("canceled in stage %s: %v", stage, err)
			})
			return
		}
		t.s.reg.Counter("serve.jobs.interrupted").Add(1)
		t.setState(j, JobStateQueued, func(r *jobRecord) { r.Error = "" })
		return
	}
	t.s.reg.Counter("serve.jobs.failed").Add(1)
	t.setState(j, JobStateFailed, func(r *jobRecord) {
		r.Error = fmt.Sprintf("stage %s: %v", stage, err)
	})
}

// fail finishes a job outside any stage.
func (t *jobTier) fail(j *job, err error) {
	t.s.reg.Counter("serve.jobs.failed").Add(1)
	t.setState(j, JobStateFailed, func(r *jobRecord) { r.Error = err.Error() })
}

// resume loads every stored job: terminal records become queryable,
// unfinished ones are re-queued (their completed checkpoints skip).
func (t *jobTier) resume() {
	ids, err := t.store.ListJobs()
	if err != nil {
		return
	}
	for _, id := range ids {
		j, err := t.lookup(id)
		if err != nil {
			continue
		}
		j.mu.Lock()
		unfinished := !jobTerminal(j.rec.State)
		j.mu.Unlock()
		if !unfinished {
			continue
		}
		if err := t.enqueue(j); err != nil {
			t.fail(j, fmt.Errorf("serve: resume: %w", err))
			continue
		}
		t.s.reg.Counter("serve.jobs.resumed").Add(1)
	}
}

// interrupt starts the drain: every queued and running job's context is
// canceled; running stages stop at their next cancellation point with
// completed checkpoints intact.
func (t *jobTier) interrupt() {
	t.baseCancel()
}

// wait blocks until every accepted job has settled, or ctx ends.
func (t *jobTier) wait(ctx context.Context) error {
	settled := make(chan struct{})
	go func() {
		t.queue.Wait()
		close(settled)
	}()
	select {
	case <-settled:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: job drain interrupted: %w: %w", errs.ErrCanceled, ctx.Err())
	}
}

// kill simulates a hard process death for tests: suppress every further
// store write, cancel all work, and wait for the runners to exit. The
// store is left exactly as a kill -9 would have.
func (t *jobTier) kill() {
	t.mu.Lock()
	t.noPersist = true
	t.mu.Unlock()
	t.baseCancel()
	t.queue.Wait()
}

// cancelJob cancels a queued or running job on behalf of the client.
func (t *jobTier) cancelJob(j *job) {
	j.mu.Lock()
	j.byClient = true
	cancel := j.cancel
	terminal := jobTerminal(j.rec.State)
	j.mu.Unlock()
	if !terminal && cancel != nil {
		cancel()
	}
}

// ---- stage planning ----

// jobEvalOptions are the exec options job stages evaluate under: the
// job's own context (no request deadline — jobs are the long-running
// tier), the server's pool width, the job's span tracker, and the
// server registry.
func jobEvalOptions(ctx context.Context, s *Server, tr obs.Tracer) []exec.Option {
	return []exec.Option{
		exec.WithContext(ctx),
		exec.WithWorkers(s.workers),
		exec.WithTracer(tr),
		exec.WithMetrics(s.reg),
	}
}

// planStages derives the checkpoint sequence of one request. The plan is
// a pure function of the request, so a restarted server re-derives the
// identical sequence and resumes from the store's completed prefix.
func planStages(s *Server, req *JobRequest) ([]jobStage, error) {
	switch {
	case req.Flow != nil:
		return planFlowStages(s, req.Flow), nil
	case req.Sweep != nil:
		return planSweepStages(s, req.Sweep, req.Chunks), nil
	case req.DSE != nil:
		return planDSEStages(s, req.DSE), nil
	}
	return nil, badSpec("job needs exactly one of sweep, flow or dse")
}

// flowEval is the flow job's eval-stage payload: the response summary.
// The DEF and report artifacts are persisted alongside it under the
// artifact.* stage names (written before the eval checkpoint commits, so
// a crash between them re-runs the deterministic eval and rewrites
// identical bytes).
type flowEval struct {
	Response *FlowResponse `json:"response"`
}

// artifactStage maps an artifact name to its store stage name.
func artifactStage(name string) string { return "artifact." + name }

// planFlowStages: spec → eval → final. "spec" checkpoints the canonical
// validated request (a cheap early boundary), "eval" runs the physical
// flow once, persisting the DEF and report artifacts plus the response
// summary, "final" promotes the summary to the job result.
func planFlowStages(s *Server, fr *FlowRequest) []jobStage {
	return []jobStage{
		{name: "spec", run: func(ctx context.Context, _ map[string][]byte) ([]byte, error) {
			spec, err := fr.spec()
			if err != nil {
				return nil, err
			}
			if err := spec.Validate(); err != nil {
				return nil, err
			}
			return json.Marshal(fr)
		}},
		{name: "eval", run: func(ctx context.Context, _ map[string][]byte) ([]byte, error) {
			spec, err := fr.spec()
			if err != nil {
				return nil, err
			}
			opts := jobEvalOptions(ctx, s, jobTracer(ctx, s))
			if fr.ThermalCheck {
				opts = append(opts, flow.WithThermalCheck(fr.MaxTempRiseK))
			}
			var def bytes.Buffer
			opts = append(opts, flow.WithDEF(&def))
			s.reg.Counter("serve.flow.evals").Add(1)
			res, err := flow.RunContext(ctx, s.pdk, spec, opts...)
			if err != nil {
				return nil, err
			}
			resp := flowResponseOf(res)
			id := jobMetaFrom(ctx).id
			if err := s.jobs.storeArtifact(id, "def", def.Bytes()); err != nil {
				return nil, err
			}
			if err := s.jobs.storeArtifact(id, "report", flowReportText(resp)); err != nil {
				return nil, err
			}
			return json.Marshal(flowEval{Response: resp})
		}},
		{name: "final", run: func(_ context.Context, prior map[string][]byte) ([]byte, error) {
			var ev flowEval
			if err := json.Unmarshal(prior["eval"], &ev); err != nil {
				return nil, fmt.Errorf("serve: eval checkpoint corrupt: %v", err)
			}
			return json.Marshal(ev.Response)
		}},
	}
}

// storeArtifact persists one artifact blob under its stage name (skipped
// under the test kill switch, like every other write).
func (t *jobTier) storeArtifact(id, name string, blob []byte) error {
	t.mu.Lock()
	suppressed := t.noPersist
	t.mu.Unlock()
	if suppressed {
		return nil
	}
	return t.store.PutStage(id, artifactStage(name), blob)
}

// flowReportText renders the deterministic flow report artifact.
func flowReportText(resp *FlowResponse) []byte {
	tb := report.New("== Flow result ==", "Metric", "Value")
	tb.Add("Style", resp.Style)
	tb.Add("CS count", resp.NumCS)
	tb.Add("Cells", resp.Cells)
	tb.Add("Macros", resp.Macros)
	tb.Add("HPWL (nm)", resp.HPWLNM)
	tb.Add("Routed WL (nm)", resp.RoutedWLNM)
	tb.Add("Vias", resp.Vias)
	tb.Add("ILVs", resp.ILVs)
	tb.Add("Fmax", report.MHz(resp.FmaxHz))
	tb.Add("Timing met", resp.TimingMet)
	tb.Add("Footprint (mm2)", resp.FootprintMM2)
	tb.Add("Total power", report.MW(resp.TotalPowerW))
	tb.Add("Leakage power", report.MW(resp.LeakagePowerW))
	return []byte(tb.String())
}

// sweepChunks splits a sweep request into consecutive sub-requests along
// its primary axis — the checkpoint granularity of a sweep job. Requests
// whose primary axis is defaulted (empty) are one chunk.
func sweepChunks(req *SweepRequest, chunks int) []*SweepRequest {
	axisLen := sweepAxisLen(req)
	if chunks == 0 {
		chunks = defaultJobChunks
	}
	if chunks > axisLen {
		chunks = axisLen
	}
	if chunks <= 1 {
		return []*SweepRequest{req}
	}
	out := make([]*SweepRequest, 0, chunks)
	for i := 0; i < chunks; i++ {
		lo, hi := i*axisLen/chunks, (i+1)*axisLen/chunks
		sub := *req
		switch req.Kind {
		case KindBandwidthCS:
			sub.CSCounts = req.CSCounts[lo:hi]
		case KindRRAMCapacity:
			sub.CapacitiesMB = req.CapacitiesMB[lo:hi]
		case KindDelta:
			sub.Deltas = req.Deltas[lo:hi]
		case KindBeta:
			sub.Betas = req.Betas[lo:hi]
		case KindTierPairs:
			sub.TierPairs = req.TierPairs[lo:hi]
		}
		out = append(out, &sub)
	}
	return out
}

// sweepAxisLen is the length of a sweep request's primary axis — the
// dimension sweepChunks slices and the final stage reassembles.
func sweepAxisLen(req *SweepRequest) int {
	switch req.Kind {
	case KindBandwidthCS:
		return len(req.CSCounts)
	case KindRRAMCapacity:
		return len(req.CapacitiesMB)
	case KindDelta:
		return len(req.Deltas)
	case KindBeta:
		return len(req.Betas)
	case KindTierPairs:
		return len(req.TierPairs)
	}
	return 0
}

// planSweepStages: part.NN per chunk, then final. Each part evaluates
// its sub-request through the server's coalescing (and, on a fleet,
// peer-sharded) sweep cache and checkpoints its rows; final concatenates
// the parts in axis order — byte-identical to the unsplit sweep, since
// the grid is evaluated in axis-major order.
func planSweepStages(s *Server, req *SweepRequest, chunks int) []jobStage {
	subs := sweepChunks(req, chunks)
	stages := make([]jobStage, 0, len(subs)+1)
	names := make([]string, len(subs))
	for i, sub := range subs {
		name := fmt.Sprintf("part.%02d", i)
		names[i] = name
		sub := sub
		stages = append(stages, jobStage{name: name, run: func(ctx context.Context, _ map[string][]byte) ([]byte, error) {
			resp, err := s.sweepCached(ctx, sub)
			if err != nil {
				return nil, err
			}
			return json.Marshal(resp.Rows)
		}})
	}
	stages = append(stages, jobStage{name: "final", run: func(_ context.Context, prior map[string][]byte) ([]byte, error) {
		out := &SweepResponse{Kind: req.Kind}
		for _, name := range names {
			var rows []SweepRow
			if err := json.Unmarshal(prior[name], &rows); err != nil {
				return nil, fmt.Errorf("serve: %s checkpoint corrupt: %v", name, err)
			}
			out.Rows = append(out.Rows, rows...)
		}
		return json.Marshal(out)
	}})
	return stages
}

// planDSEStages: explore → final. The exploration itself memoizes every
// point through the server-wide dse point cache, so a resumed explore
// stage re-walks warm entries rather than re-evaluating the model.
func planDSEStages(s *Server, req *DSERequest) []jobStage {
	return []jobStage{
		{name: "explore", run: func(ctx context.Context, _ map[string][]byte) ([]byte, error) {
			tr := jobTracer(ctx, s)
			opt := dse.Options{
				MaxEvals:       req.MaxEvals,
				Seed:           req.Seed,
				Explore:        req.Explore,
				RequireThermal: req.RequireThermal,
				Cache:          &s.dsePoints,
			}
			var final dse.Update
			_, err := dse.Explore(s.pdk, req.space(), opt, func(u dse.Update) {
				if u.Done {
					final = u
				}
			}, jobEvalOptions(ctx, s, tr)...)
			if err != nil {
				return nil, err
			}
			out := DSEUpdate{Update: final}
			for _, p := range dse.TopK(final.Frontier, req.Promote) {
				out.Promoted = append(out.Promoted, s.promote(ctx, req, p))
			}
			return json.Marshal(out)
		}},
		{name: "final", run: func(_ context.Context, prior map[string][]byte) ([]byte, error) {
			return prior["explore"], nil
		}},
	}
}

// jobMetaKey carries the running job's id and span tracker to its
// stages — planStages closes over the request, but the tracker is
// per-attempt (a resumed job gets a fresh one), so it rides the context.
type jobMetaKey struct{}

type jobMeta struct {
	id      string
	tracker *obs.ActiveTracker
}

func withJobMeta(ctx context.Context, id string, tr *obs.ActiveTracker) context.Context {
	return context.WithValue(ctx, jobMetaKey{}, jobMeta{id: id, tracker: tr})
}

// jobMetaFrom returns the running job's metadata (zero outside a job).
func jobMetaFrom(ctx context.Context) jobMeta {
	m, _ := ctx.Value(jobMetaKey{}).(jobMeta)
	return m
}

// jobTracer resolves the evaluation tracer for a stage context.
func jobTracer(ctx context.Context, s *Server) obs.Tracer {
	if m := jobMetaFrom(ctx); m.tracker != nil {
		return m.tracker
	}
	return s.tracer
}

// flowResponseOf summarizes a flow result (shared with /v1/flow).
func flowResponseOf(res *flow.Result) *FlowResponse {
	out := &FlowResponse{
		Style:        res.Spec.Style.String(),
		NumCS:        res.Spec.NumCS,
		Cells:        res.Cells,
		Macros:       res.Macros,
		HPWLNM:       res.HPWL,
		RoutedWLNM:   res.RoutedWL,
		Vias:         res.Vias,
		ILVs:         res.ILVs,
		FmaxHz:       res.FmaxHz,
		TimingMet:    res.TimingMet,
		FootprintMM2: res.FootprintMM2(),
	}
	if res.Power != nil {
		out.TotalPowerW = res.Power.TotalW
		out.LeakagePowerW = res.Power.LeakageW
	}
	return out
}

// ---- HTTP handlers ----

// handleJobs is POST /v1/jobs: accept (or idempotently find) a job and
// answer 202 with its status. The job tier has its own admission gate:
// a full queue sheds with 429 + Retry-After, exactly like the
// synchronous endpoints — but the slot is the job's, not the request's.
func (s *Server) handleJobs(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	req, err := decodeRequest[JobRequest](r.Body)
	if err != nil {
		return err
	}
	j, err := s.jobs.submit(req)
	if err != nil {
		return err
	}
	return writeJSON(w, http.StatusAccepted, j.status())
}

// handleJobGet is GET /v1/jobs/{id}.
func (s *Server) handleJobGet(_ context.Context, w http.ResponseWriter, r *http.Request) error {
	j, err := s.jobs.lookup(r.PathValue("id"))
	if err != nil {
		return err
	}
	return writeJSON(w, http.StatusOK, j.status())
}

// handleJobCancel is DELETE /v1/jobs/{id}: cancel a queued or running
// job (idempotent; terminal jobs are unaffected) and return its status.
func (s *Server) handleJobCancel(_ context.Context, w http.ResponseWriter, r *http.Request) error {
	j, err := s.jobs.lookup(r.PathValue("id"))
	if err != nil {
		return err
	}
	s.jobs.cancelJob(j)
	return writeJSON(w, http.StatusOK, j.status())
}

// handleJobEvents is GET /v1/jobs/{id}/events: a chunked JSON array of
// status snapshots over the shared arrayStream framing — one element at
// subscription, one per transition (coalesced under load), the last
// carrying the terminal state. The stream also ends when the client
// goes away, the request deadline passes, or the server drains.
func (s *Server) handleJobEvents(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	j, err := s.jobs.lookup(r.PathValue("id"))
	if err != nil {
		return err
	}
	ch := j.subscribe()
	defer j.unsubscribe(ch)
	st := newArrayStream(w)
	for {
		status := j.status()
		if !st.emit(status) {
			return nil
		}
		if jobTerminal(status.State) {
			break
		}
		select {
		case <-ch:
		case <-ctx.Done():
			st.close()
			return nil
		case <-s.jobs.baseCtx.Done():
			// Draining: emit the parked state and finish the array.
			st.emit(j.status())
			st.close()
			return nil
		}
	}
	st.close()
	return nil
}

// handleJobArtifact is GET /v1/jobs/{id}/artifacts/{name}: the raw bytes
// of one persisted artifact (flow jobs: "def", "report").
func (s *Server) handleJobArtifact(_ context.Context, w http.ResponseWriter, r *http.Request) error {
	j, err := s.jobs.lookup(r.PathValue("id"))
	if err != nil {
		return err
	}
	name := r.PathValue("name")
	ok := false
	for _, a := range j.status().Artifacts {
		if a == name {
			ok = true
			break
		}
	}
	if !ok {
		return storeNotFound("artifact", j.rec.ID+"/"+name)
	}
	blob, err := s.jobs.store.GetStage(j.rec.ID, artifactStage(name))
	if err != nil {
		return err
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, err = w.Write(blob)
	return err
}
