package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"reflect"
	"testing"
	"time"
)

// dseStreamBody is the request the golden stream test (and the
// scripts/dsesmoke gate) replays: a small pinned space explored to
// convergence with a pinned seed.
const dseStreamBody = `{"deltas":{"min":1,"max":2.5,"steps":8},"tier_pairs":{"min":1,"max":3},"bw_scales":{"min":1,"max":4,"steps":4},"seed":7,"max_evals":96}`

// TestDSEGolden locks the full /v1/dse stream — every round's frontier
// snapshot and the final totals — and proves it is byte-identical at
// pool widths 1, 2 and 8.
func TestDSEGolden(t *testing.T) {
	var first []byte
	for _, w := range widths {
		_, ts := newTestServer(t, Config{Workers: w})
		status, hdr, body := post(t, ts.URL+"/v1/dse", dseStreamBody)
		if status != http.StatusOK {
			t.Fatalf("width %d: status = %d, body %s", w, status, body)
		}
		if ct := hdr.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("width %d: Content-Type = %q", w, ct)
		}
		if first == nil {
			first = body
			checkGolden(t, "dse_stream.golden.json", body)
			continue
		}
		if !bytes.Equal(first, body) {
			t.Fatalf("width %d stream differs from width %d", w, widths[0])
		}
	}
}

// TestDSEFinalFrontierDeterministic decodes the stream and checks the
// final Pareto set is deep-equal across widths, the evaluation counter
// is monotone across rounds, and every snapshot is mutually
// non-dominated.
func TestDSEFinalFrontierDeterministic(t *testing.T) {
	var firstFinal *DSEUpdate
	for _, w := range widths {
		_, ts := newTestServer(t, Config{Workers: w})
		status, _, body := post(t, ts.URL+"/v1/dse", dseStreamBody)
		if status != http.StatusOK {
			t.Fatalf("width %d: status = %d", w, status)
		}
		var updates []DSEUpdate
		if err := json.Unmarshal(body, &updates); err != nil {
			t.Fatalf("width %d: stream is not a JSON array: %v", w, err)
		}
		if len(updates) == 0 {
			t.Fatalf("width %d: empty stream", w)
		}
		prevEvals := 0
		for i, u := range updates {
			if u.Evaluations < prevEvals {
				t.Fatalf("width %d: evaluations fell at element %d: %d < %d",
					w, i, u.Evaluations, prevEvals)
			}
			prevEvals = u.Evaluations
			for _, p := range u.Frontier {
				for _, q := range u.Frontier {
					if p != q && p.Dominates(q) {
						t.Fatalf("width %d: element %d frontier not mutually non-dominated", w, i)
					}
				}
			}
			if u.Done != (i == len(updates)-1) {
				t.Fatalf("width %d: done flag misplaced at element %d", w, i)
			}
		}
		final := updates[len(updates)-1]
		if final.GridSize == 0 || len(final.Frontier) == 0 {
			t.Fatalf("width %d: final element missing totals: %+v", w, final)
		}
		if firstFinal == nil {
			firstFinal = &final
			continue
		}
		if !reflect.DeepEqual(*firstFinal, final) {
			t.Fatalf("width %d: final frontier differs from width %d", w, widths[0])
		}
	}
}

// TestDSEPromote runs a tiny exploration with promote=1 and checks the
// final element carries exactly one successful flow result. The deadline
// is raised because the promoted flow runs far slower under -race.
func TestDSEPromote(t *testing.T) {
	_, ts := newTestServer(t, Config{RequestTimeout: 10 * time.Minute})
	body := `{"deltas":{"min":1,"max":1.5,"steps":2},"tier_pairs":{"min":1,"max":2},"bw_scales":{"min":1,"max":2,"steps":2},"seed":3,"max_evals":8,"promote":1}`
	status, _, raw := post(t, ts.URL+"/v1/dse", body)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, raw)
	}
	var updates []DSEUpdate
	if err := json.Unmarshal(raw, &updates); err != nil {
		t.Fatal(err)
	}
	final := updates[len(updates)-1]
	if len(final.Promoted) != 1 {
		t.Fatalf("promoted %d points, want 1", len(final.Promoted))
	}
	pr := final.Promoted[0]
	if pr.Status != http.StatusOK || pr.Flow == nil || pr.Error != "" {
		t.Fatalf("promotion failed: %+v", pr)
	}
	if pr.Flow.Style != "M3D" || pr.Flow.Cells == 0 {
		t.Fatalf("promoted flow looks empty: %+v", pr.Flow)
	}
}

// TestDSEBadRequests: every malformed body is a 400 with the JSON error
// envelope, before any stream bytes are written.
func TestDSEBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, body := range map[string]string{
		"unknown field":  `{"bogus":1}`,
		"truncated":      `{"deltas":`,
		"trailing":       `{} {}`,
		"delta below 1":  `{"deltas":{"min":0.5,"max":2,"steps":4}}`,
		"bw non-pos":     `{"bw_scales":{"min":0,"max":2,"steps":2}}`,
		"tiers inverted": `{"tier_pairs":{"min":3,"max":1}}`,
		"neg max_evals":  `{"max_evals":-1}`,
		"promote high":   `{"promote":99}`,
		"grid blown":     `{"deltas":{"min":1,"max":2,"steps":512},"tier_pairs":{"min":1,"max":64},"bw_scales":{"min":1,"max":2,"steps":512}}`,
	} {
		status, _, body := post(t, ts.URL+"/v1/dse", body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (body %s)", name, status, body)
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
			t.Errorf("%s: malformed error envelope %s", name, body)
		}
	}
}

// TestDSEDefaultSpace: an empty body explores the stock box.
func TestDSEDefaultSpace(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, _, raw := post(t, ts.URL+"/v1/dse", `{"seed":1}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, raw)
	}
	var updates []DSEUpdate
	if err := json.Unmarshal(raw, &updates); err != nil {
		t.Fatal(err)
	}
	final := updates[len(updates)-1]
	if final.GridSize != 16*6*8 {
		t.Fatalf("default grid = %d, want %d", final.GridSize, 16*6*8)
	}
	if len(final.Frontier) == 0 {
		t.Fatal("default exploration returned an empty frontier")
	}
}
