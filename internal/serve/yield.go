package serve

import (
	"context"
	"net/http"

	"m3d/internal/exec"
	"m3d/internal/flow"
	"m3d/internal/tech"
	"m3d/internal/vary"
)

// maxYieldSamples bounds one /v1/yield Monte-Carlo run (interactive
// budget; larger studies belong on the async job tier).
const maxYieldSamples = 65536

// defaultYieldSamples / defaultYieldBatch are the stock run size and
// per-update refinement batch.
const (
	defaultYieldSamples = 1024
	defaultYieldBatch   = 256
)

// VariationSpec is the wire form of tech.Variation (see its field docs
// for the physical meaning and valid ranges).
type VariationSpec struct {
	SiDriveSigma    float64 `json:"si_drive_sigma,omitempty"`
	CNFETDriveSigma float64 `json:"cnfet_drive_sigma,omitempty"`
	CNFETVtShift    float64 `json:"cnfet_vt_shift,omitempty"`
	ILVRSpread      float64 `json:"ilv_r_spread,omitempty"`
	TierCorr        float64 `json:"tier_corr,omitempty"`
}

// variation converts the wire form.
func (v *VariationSpec) variation() tech.Variation {
	return tech.Variation{
		SiDriveSigma:    v.SiDriveSigma,
		CNFETDriveSigma: v.CNFETDriveSigma,
		CNFETVtShift:    v.CNFETVtShift,
		ILVRSpread:      v.ILVRSpread,
		TierCorr:        v.TierCorr,
	}
}

// YieldRequest is the POST /v1/yield body: one physical design (the
// embedded flow request, built or recalled through the design cache)
// timed under sampled inter-tier process corners. The reply is a
// chunked JSON array of YieldUpdate elements — one per sample batch,
// each refining the yield curve and critical-path quantiles over every
// sample timed so far, the last carrying done=true. Identical requests
// stream byte-identical replies at any server width: corners are
// sample-indexed and batch boundaries are fixed by the request.
type YieldRequest struct {
	// Flow names the design to time (same shape as POST /v1/flow).
	Flow FlowRequest `json:"flow"`
	// Variation sets the per-tier corner model; nil selects the stock
	// tech.DefaultVariation parameters.
	Variation *VariationSpec `json:"variation,omitempty"`
	// Samples is the Monte-Carlo size (0 → 1024, max 65536).
	Samples int `json:"samples,omitempty"`
	// Batch is the per-update refinement step (0 → 256, capped at
	// Samples).
	Batch int `json:"batch,omitempty"`
	// Seed selects the corner stream.
	Seed int64 `json:"seed,omitempty"`
	// Periods overrides the yield-curve clock periods in seconds
	// (default: vary.DefaultPeriods around the nominal critical path).
	Periods []float64 `json:"periods,omitempty"`
}

// validate checks the request shape — the decodeRequest contract.
func (q *YieldRequest) validate() error {
	if err := q.Flow.validate(); err != nil {
		return err
	}
	if q.Samples < 0 || q.Samples > maxYieldSamples {
		return badSpec("samples %d outside [0, %d]", q.Samples, maxYieldSamples)
	}
	if q.Batch < 0 {
		return badSpec("batch %d must be ≥ 0", q.Batch)
	}
	for _, p := range q.Periods {
		if p <= 0 {
			return badSpec("period %g must be positive", p)
		}
	}
	if q.Variation != nil {
		if err := q.Variation.variation().Validate(); err != nil {
			return badSpec("%v", err)
		}
	}
	return nil
}

// samples/batch return the defaults-applied run shape.
func (q *YieldRequest) samples() int {
	if q.Samples == 0 {
		return defaultYieldSamples
	}
	return q.Samples
}

func (q *YieldRequest) batch() int {
	b := q.Batch
	if b == 0 {
		b = defaultYieldBatch
	}
	if n := q.samples(); b > n {
		b = n
	}
	return b
}

// YieldUpdate is one element of the POST /v1/yield reply array: the
// yield curve and critical-path quantile band over every corner timed so
// far. Samples counts timed corners and strictly increases across
// non-final elements; the final element repeats the converged state with
// done=true. Error carries an in-band failure once the stream is
// committed (the status line is gone by then).
type YieldUpdate struct {
	Samples          int               `json:"samples"`
	NominalCritPathS float64           `json:"nominal_crit_path_s"`
	NominalFmaxHz    float64           `json:"nominal_fmax_hz"`
	Curve            []vary.YieldPoint `json:"curve"`
	CritQuantiles    vary.Quantiles    `json:"crit_quantiles"`
	Done             bool              `json:"done,omitempty"`
	Error            string            `json:"error,omitempty"`
}

// designCached builds (or recalls) the retained design database for one
// flow request. It is a separate cache from the response-shaped flow
// memo: /v1/yield needs the netlist and routes to re-time, which
// FlowResponse deliberately does not carry. Design results never
// forward to peers — the database is not wire-serializable.
func (s *Server) designCached(ctx context.Context, req *FlowRequest) (*flow.Result, error) {
	spec, err := req.spec()
	if err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	hits := s.reg.Counter("serve.design.hits")
	misses := s.reg.Counter("serve.design.misses")
	key := "design:" + req.key()
	res, err := s.designs.DoMetered(key, hits, misses, func() (*flow.Result, error) {
		if s.evalStarted != nil {
			s.evalStarted()
		}
		if s.evalBlock != nil {
			s.evalBlock(ctx)
		}
		return flow.RunContext(ctx, s.pdk, spec, s.evalOptions(ctx)...)
	})
	if err != nil {
		s.designs.Forget(key)
		return nil, err
	}
	return res, nil
}

// handleYield is POST /v1/yield: Monte-Carlo timing yield over one
// design, streamed as a chunked JSON array of per-batch refinements
// (shared arrayStream framing with /v1/dse). The flow runs (or is
// recalled) first; anything failing before the first batch settles
// still owns the status line.
func (s *Server) handleYield(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	req, err := decodeRequest[YieldRequest](r.Body)
	if err != nil {
		return err
	}
	s.reg.Counter("serve.yield.requests").Add(1)

	res, err := s.designCached(ctx, &req.Flow)
	if err != nil {
		return err
	}
	pdk, nl, routes := res.Design()
	v := tech.DefaultVariation()
	if req.Variation != nil {
		v = req.Variation.variation()
	}
	eng, err := vary.NewEngine(pdk, nl, routes, v, req.Seed)
	if err != nil {
		return err
	}
	periods := req.Periods
	if len(periods) == 0 {
		periods = vary.DefaultPeriods(eng.Nominal().CriticalPathS)
	}

	est := exec.Resolve(s.evalOptions(ctx)...)
	est.Label = "vary.sample"
	total, batch := req.samples(), req.batch()
	// Draw every corner once up front: batches then read the cached
	// prefix instead of re-seeding a generator per corner per batch.
	eng.Prime(total)
	crit := make([]float64, 0, total)
	var st *arrayStream
	for lo := 0; lo < total; lo += batch {
		hi := lo + batch
		if hi > total {
			hi = total
		}
		part, err := eng.CriticalPaths(est, lo, hi)
		if err != nil {
			if st == nil {
				return err
			}
			st.emit(YieldUpdate{Error: err.Error()})
			st.close()
			return nil
		}
		crit = append(crit, part...)
		if st == nil {
			st = newArrayStream(w)
			if !st.ok() {
				return nil
			}
		}
		st.emit(s.yieldUpdate(eng, crit, periods, false))
	}
	if st == nil {
		st = newArrayStream(w)
		if !st.ok() {
			return nil
		}
	}
	st.emit(s.yieldUpdate(eng, crit, periods, true))
	st.close()
	return nil
}

// yieldUpdate assembles one refinement element over the samples so far.
func (s *Server) yieldUpdate(eng *vary.Engine, crit []float64, periods []float64, done bool) YieldUpdate {
	return YieldUpdate{
		Samples:          len(crit),
		NominalCritPathS: eng.Nominal().CriticalPathS,
		NominalFmaxHz:    eng.Nominal().FmaxHz,
		Curve:            vary.Curve(crit, periods),
		CritQuantiles:    vary.QuantilesOf(crit),
		Done:             done,
	}
}
