package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
)

// yieldStreamBody is the pinned request the stream tests (and the
// scripts/yieldsmoke gate) replay: a small M3D design, a modest corner
// budget and a batch that forces several refinement elements.
const yieldStreamBody = `{"flow":{"style":"M3D","num_cs":1,"array_rows":2,"array_cols":2,"rram_cap_mb":1,"banks":1,"global_sram_bits":65536,"seed":1},"samples":96,"batch":32,"seed":7}`

// TestYieldBadRequests is the 400-family table for /v1/yield.
func TestYieldBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	cases := []struct {
		name string
		body string
	}{
		{"empty body", ``},
		{"trailing garbage", `{} {}`},
		{"unknown field", `{"bogus":1}`},
		{"bad flow style", `{"flow":{"style":"4D"}}`},
		{"negative samples", `{"samples":-1}`},
		{"oversized samples", `{"samples":1000000}`},
		{"negative batch", `{"batch":-4}`},
		{"non-positive period", `{"periods":[1e-9,0]}`},
		{"sigma out of range", `{"variation":{"si_drive_sigma":0.9}}`},
		{"correlation out of range", `{"variation":{"tier_corr":1.5}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, _, body := post(t, ts.URL+"/v1/yield", tc.body)
			if status != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (body %s)", status, body)
			}
		})
	}
}

// TestYieldStream checks the /v1/yield reply shape: a JSON array of
// refinements whose sample counts strictly increase, whose quantile
// bands stay ordered, whose curves are monotone in period, and whose
// single done element comes last.
func TestYieldStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	status, hdr, body := post(t, ts.URL+"/v1/yield", yieldStreamBody)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var updates []YieldUpdate
	if err := json.Unmarshal(body, &updates); err != nil {
		t.Fatalf("stream is not a JSON array: %v", err)
	}
	// 96 samples at batch 32 → 3 refinements + the done element.
	if len(updates) != 4 {
		t.Fatalf("got %d elements, want 4", len(updates))
	}
	prev := 0
	for i, u := range updates {
		if u.Error != "" {
			t.Fatalf("element %d carries error %q", i, u.Error)
		}
		if got, final := u.Done, i == len(updates)-1; got != final {
			t.Fatalf("element %d: done = %v", i, got)
		}
		if !u.Done {
			if u.Samples <= prev {
				t.Fatalf("element %d: samples %d not increasing past %d", i, u.Samples, prev)
			}
			prev = u.Samples
		} else if u.Samples != prev {
			t.Fatalf("done element samples %d != final refinement %d", u.Samples, prev)
		}
		if u.NominalCritPathS <= 0 {
			t.Fatalf("element %d: nominal critical path missing", i)
		}
		q := u.CritQuantiles
		if !(q.P5 <= q.P50 && q.P50 <= q.P95) {
			t.Fatalf("element %d: quantile order violated: %+v", i, q)
		}
		for j := 1; j < len(u.Curve); j++ {
			if u.Curve[j].Yield < u.Curve[j-1].Yield {
				t.Fatalf("element %d: yield curve decreased at %d", i, j)
			}
		}
	}
}

// TestYieldByteIdentical proves identical requests stream byte-identical
// replies at every pool width and across cache warmth: corners are
// sample-indexed, batch boundaries are request-fixed, and the design
// cache cannot alter re-timed values.
func TestYieldByteIdentical(t *testing.T) {
	var first []byte
	for _, w := range widths {
		_, ts := newTestServer(t, Config{Workers: w})
		status, _, cold := post(t, ts.URL+"/v1/yield", yieldStreamBody)
		if status != http.StatusOK {
			t.Fatalf("width %d: status = %d, body %s", w, status, cold)
		}
		// Second hit reuses the cached design database and warm Timers.
		status, _, warm := post(t, ts.URL+"/v1/yield", yieldStreamBody)
		if status != http.StatusOK {
			t.Fatalf("width %d warm: status = %d", w, status)
		}
		if !bytes.Equal(cold, warm) {
			t.Fatalf("width %d: warm reply differs from cold", w)
		}
		if first == nil {
			first = cold
			continue
		}
		if !bytes.Equal(first, cold) {
			t.Fatalf("width %d stream differs from width %d", w, widths[0])
		}
	}
}

// TestYieldZeroVariationCollapses pins the σ=0 wire behaviour: an
// all-zero variation spec yields 1.0 at every period at or above
// nominal and a quantile band collapsed onto the nominal critical path.
func TestYieldZeroVariationCollapses(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	body := `{"flow":{"style":"M3D","num_cs":1,"array_rows":2,"array_cols":2,"rram_cap_mb":1,"banks":1,"global_sram_bits":65536,"seed":1},"samples":16,"variation":{}}`
	status, _, raw := post(t, ts.URL+"/v1/yield", body)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, raw)
	}
	var updates []YieldUpdate
	if err := json.Unmarshal(raw, &updates); err != nil {
		t.Fatal(err)
	}
	final := updates[len(updates)-1]
	nom := final.NominalCritPathS
	q := final.CritQuantiles
	if q.P5 != nom || q.P50 != nom || q.P95 != nom {
		t.Fatalf("σ=0 band %+v not collapsed onto nominal %v", q, nom)
	}
	for _, pt := range final.Curve {
		want := 0.0
		if pt.PeriodS >= nom {
			want = 1.0
		}
		if pt.Yield != want {
			t.Fatalf("σ=0 yield at T=%g is %g, want %g (nominal %g)",
				pt.PeriodS, pt.Yield, want, nom)
		}
	}
}
