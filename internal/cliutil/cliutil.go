// Package cliutil wires the shared observability flags — -trace (JSON
// lines span trace), -metrics (aggregate snapshot on stderr), -pprof
// (net/http/pprof endpoint) — into the m3d command-line tools, so every
// binary exposes the same surface.
package cliutil

import (
	"flag"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"

	"m3d/internal/exec"
	"m3d/internal/obs"
)

// ObsFlags holds the shared observability flag values. Build with
// Register before flag.Parse, then call Setup once after.
type ObsFlags struct {
	TracePath string
	Metrics   bool
	PprofAddr string

	trace *obs.JSONL
	reg   *obs.Registry
	file  *os.File
}

// Register declares -trace, -metrics and -pprof on the default FlagSet.
func Register() *ObsFlags {
	return RegisterOn(flag.CommandLine)
}

// RegisterOn declares the shared observability flags on fs — the entry
// point for binaries with subcommand FlagSets.
func RegisterOn(fs *flag.FlagSet) *ObsFlags {
	f := &ObsFlags{}
	fs.StringVar(&f.TracePath, "trace", "", "write a JSON-lines span trace to this file (\"-\" = stderr)")
	fs.BoolVar(&f.Metrics, "metrics", false, "print the aggregate metrics snapshot to stderr at exit (JSON)")
	fs.StringVar(&f.PprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	return f
}

// Setup opens the configured sinks and returns the run options to pass to
// every library call. Call Close before exiting. With no flags set it
// returns no options (observability fully disabled).
func (f *ObsFlags) Setup() []exec.Option {
	var opts []exec.Option
	if f.TracePath != "" {
		w := os.Stderr
		if f.TracePath != "-" {
			file, err := os.Create(f.TracePath)
			if err != nil {
				log.Fatal(err)
			}
			f.file = file
			w = file
		}
		f.trace = obs.NewJSONL(w)
		opts = append(opts, exec.WithTracer(f.trace))
	}
	// A trace alone still gets a registry: the final metrics event is part
	// of the trace schema.
	if f.Metrics || f.trace != nil {
		f.reg = obs.NewRegistry()
		opts = append(opts, exec.WithMetrics(f.reg))
	}
	if f.PprofAddr != "" {
		go func() {
			// DefaultServeMux carries the pprof handlers via the blank import.
			if err := http.ListenAndServe(f.PprofAddr, nil); err != nil {
				log.Printf("pprof: %v", err)
			}
		}()
	}
	return opts
}

// Registry returns the metrics registry (nil when neither -trace nor
// -metrics was given).
func (f *ObsFlags) Registry() *obs.Registry { return f.reg }

// Close flushes the sinks: the metrics snapshot is appended to the trace
// (schema event type "metrics") and, with -metrics, printed to stderr;
// the trace file is closed. Errors are fatal so a truncated trace never
// passes silently.
func (f *ObsFlags) Close() {
	if f.trace != nil {
		f.trace.EmitMetrics(f.reg)
		if err := f.trace.Err(); err != nil {
			log.Fatalf("trace: %v", err)
		}
	}
	if f.file != nil {
		if err := f.file.Close(); err != nil {
			log.Fatalf("trace: %v", err)
		}
	}
	if f.Metrics && f.reg != nil {
		if err := f.reg.WriteJSON(os.Stderr); err != nil {
			log.Fatalf("metrics: %v", err)
		}
	}
}
