package workload

import "testing"

func TestZooValidates(t *testing.T) {
	for _, m := range Zoo() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestResNet18ParamCount(t *testing.T) {
	// ResNet-18 has ~11.7 M parameters (conv + FC, no BN); the paper quotes
	// ~12 M.
	p := ResNet18().Params()
	if p < 11_000_000 || p > 12_500_000 {
		t.Errorf("ResNet-18 params = %d, want ~11.7M", p)
	}
}

func TestResNet18MACs(t *testing.T) {
	// ~1.8 GMACs for 224×224 ImageNet inference.
	m := ResNet18().MACs()
	if m < 1_700_000_000 || m > 2_000_000_000 {
		t.Errorf("ResNet-18 MACs = %d, want ~1.8G", m)
	}
}

func TestResNet18TableIRows(t *testing.T) {
	m := ResNet18()
	// Paper's Table I has 20 compute rows; we add the FC layer.
	if len(m.Layers) != 21 {
		t.Fatalf("layers = %d, want 21", len(m.Layers))
	}
	wantNames := []string{"CONV1+POOL", "L1.0 CONV1", "L2.0 DS", "L4.1 CONV2", "FC"}
	found := map[string]bool{}
	for _, l := range m.Layers {
		found[l.Name] = true
	}
	for _, n := range wantNames {
		if !found[n] {
			t.Errorf("missing Table I row %q", n)
		}
	}
}

func TestResNet152Params(t *testing.T) {
	// ~60 M parameters — the paper sizes its 64 MB RRAM to fit this.
	p := ResNet152().Params()
	if p < 55_000_000 || p > 62_000_000 {
		t.Errorf("ResNet-152 params = %d, want ~60M", p)
	}
	// At 8-bit weights it fits in 64 MB.
	if bits := ResNet152().WeightBits(8); bits > 64<<23 {
		t.Errorf("ResNet-152 8-bit weights (%d bits) exceed 64 MB", bits)
	}
}

func TestAlexNetParams(t *testing.T) {
	// ~61 M parameters.
	p := AlexNet().Params()
	if p < 58_000_000 || p > 63_000_000 {
		t.Errorf("AlexNet params = %d, want ~61M", p)
	}
}

func TestVGG16Params(t *testing.T) {
	// ~138 M parameters.
	p := VGG16().Params()
	if p < 134_000_000 || p > 140_000_000 {
		t.Errorf("VGG-16 params = %d, want ~138M", p)
	}
}

func TestVGG16MACs(t *testing.T) {
	// ~15.5 GMACs.
	m := VGG16().MACs()
	if m < 15_000_000_000 || m > 16_000_000_000 {
		t.Errorf("VGG-16 MACs = %d, want ~15.5G", m)
	}
}

func TestResNet50Params(t *testing.T) {
	// ~25.5 M parameters.
	p := ResNet50().Params()
	if p < 23_000_000 || p > 27_000_000 {
		t.Errorf("ResNet-50 params = %d, want ~25.5M", p)
	}
}

func TestLayerDerivedQuantities(t *testing.T) {
	l := ResNet18().Layers[1] // L1.0 CONV1: 64x64 3x3 56x56
	if got := l.MACs(); got != 64*64*9*56*56 {
		t.Errorf("MACs = %d", got)
	}
	if got := l.Weights(); got != 64*64*9 {
		t.Errorf("weights = %d", got)
	}
	if got := l.OutputActs(); got != 56*56*64 {
		t.Errorf("output acts = %d", got)
	}
	// Input: (56-1)*1+3 = 58 → 58×58×64.
	if got := l.InputActs(); got != 58*58*64 {
		t.Errorf("input acts = %d", got)
	}
}

func TestLayerValidate(t *testing.T) {
	bad := Layer{Name: "x", K: 0, C: 1, R: 1, S: 1, OX: 1, OY: 1, Stride: 1}
	if err := bad.Validate(); err == nil {
		t.Error("zero K should fail")
	}
	bad = Layer{Name: "x", K: 1, C: 1, R: 1, S: 1, OX: 1, OY: 1, Stride: 0}
	if err := bad.Validate(); err == nil {
		t.Error("zero stride should fail")
	}
	empty := Model{Name: "e"}
	if err := empty.Validate(); err == nil {
		t.Error("empty model should fail")
	}
}

func TestByName(t *testing.T) {
	m, err := ByName("ResNet-18")
	if err != nil || m.Name != "ResNet-18" {
		t.Errorf("ByName failed: %v", err)
	}
	if _, err := ByName("LeNet"); err == nil {
		t.Error("unknown model should fail")
	}
}

func TestFCLayersAreUnitSpatial(t *testing.T) {
	for _, m := range Zoo() {
		for _, l := range m.Layers {
			if l.Type == FC && (l.OX != 1 || l.OY != 1) {
				t.Errorf("%s/%s: FC layer must have OX=OY=1", m.Name, l.Name)
			}
		}
	}
}

func TestLayerTypeString(t *testing.T) {
	if Conv.String() != "CONV" || Downsample.String() != "DS" || FC.String() != "FC" {
		t.Error("layer type names wrong")
	}
}

func TestMobileNetV1(t *testing.T) {
	m := MobileNetV1()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// ~4.2 M parameters.
	if p := m.Params(); p < 3_900_000 || p > 4_500_000 {
		t.Errorf("MobileNetV1 params = %d, want ~4.2M", p)
	}
	// ~568 MMACs.
	if mc := m.MACs(); mc < 520_000_000 || mc > 620_000_000 {
		t.Errorf("MobileNetV1 MACs = %d, want ~568M", mc)
	}
	// Depthwise layers must carry groups.
	found := false
	for _, l := range m.Layers {
		if l.Groups > 1 {
			found = true
			if l.Groups != l.C || l.Groups != l.K {
				t.Errorf("%s: depthwise should have groups == C == K", l.Name)
			}
		}
	}
	if !found {
		t.Error("no depthwise layers found")
	}
}

func TestGroupedConvMath(t *testing.T) {
	dense := Layer{Name: "d", Type: Conv, K: 64, C: 64, R: 3, S: 3, OX: 8, OY: 8, Stride: 1}
	dw := dense
	dw.Groups = 64
	if dw.MACs() != dense.MACs()/64 {
		t.Errorf("depthwise MACs = %d, want %d", dw.MACs(), dense.MACs()/64)
	}
	if dw.Weights() != dense.Weights()/64 {
		t.Errorf("depthwise weights = %d", dw.Weights())
	}
	// Groups must divide channels.
	bad := dense
	bad.Groups = 7
	if err := bad.Validate(); err == nil {
		t.Error("groups=7 should not divide K=C=64")
	}
}

func TestExtendedZoo(t *testing.T) {
	ext := ExtendedZoo()
	if len(ext) != len(Zoo())+1 {
		t.Fatalf("extended zoo = %d models", len(ext))
	}
	if _, err := ByName("MobileNetV1"); err != nil {
		t.Errorf("MobileNetV1 should resolve: %v", err)
	}
}
