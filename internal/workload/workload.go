// Package workload provides the DNN model zoo the paper evaluates on:
// AlexNet, VGG-16, and the ResNet family (18/34/50/152), as per-layer shape
// tables with derived quantities — MAC counts (the paper's F₀), on-chip
// memory traffic (D₀), weight footprints, and output-channel
// partitionability (the paper's N#).
package workload

import "fmt"

// LayerType classifies a layer.
type LayerType int

const (
	// Conv is a standard convolution.
	Conv LayerType = iota
	// Downsample is a 1×1 strided projection (ResNet "DS" shortcut).
	Downsample
	// FC is a fully connected layer.
	FC
)

// String names the layer type.
func (t LayerType) String() string {
	switch t {
	case Conv:
		return "CONV"
	case Downsample:
		return "DS"
	case FC:
		return "FC"
	default:
		return fmt.Sprintf("LayerType(%d)", int(t))
	}
}

// Layer is one DNN layer shape. For FC layers, treat OX=OY=1, R=S=1,
// C=input features, K=output features.
type Layer struct {
	Name   string
	Type   LayerType
	K      int // output channels
	C      int // input channels (total, across all groups)
	R, S   int // kernel height, width
	OX, OY int // output width, height
	Stride int
	// Groups splits the convolution into independent channel groups
	// (Groups == K == C is a depthwise convolution). 0 means 1.
	Groups int
}

// groups returns the effective group count.
func (l Layer) groups() int {
	if l.Groups < 1 {
		return 1
	}
	return l.Groups
}

// MACs returns the multiply-accumulate count (the paper's F₀ in ops).
// Grouped convolutions only connect channels within their group.
func (l Layer) MACs() int64 {
	return int64(l.K) * int64(l.C) / int64(l.groups()) *
		int64(l.R) * int64(l.S) * int64(l.OX) * int64(l.OY)
}

// Weights returns the weight parameter count.
func (l Layer) Weights() int64 {
	return int64(l.K) * int64(l.C) / int64(l.groups()) * int64(l.R) * int64(l.S)
}

// InputActs returns the input activation count consumed (IX×IY×C).
func (l Layer) InputActs() int64 {
	ix := (l.OX-1)*l.Stride + l.R
	iy := (l.OY-1)*l.Stride + l.S
	return int64(ix) * int64(iy) * int64(l.C)
}

// OutputActs returns the output activation count produced.
func (l Layer) OutputActs() int64 {
	return int64(l.OX) * int64(l.OY) * int64(l.K)
}

// Validate checks the shape.
func (l Layer) Validate() error {
	if l.K <= 0 || l.C <= 0 || l.R <= 0 || l.S <= 0 || l.OX <= 0 || l.OY <= 0 {
		return fmt.Errorf("workload: layer %q has non-positive dims", l.Name)
	}
	if l.Stride <= 0 {
		return fmt.Errorf("workload: layer %q has non-positive stride", l.Name)
	}
	g := l.groups()
	if l.K%g != 0 || l.C%g != 0 {
		return fmt.Errorf("workload: layer %q groups %d do not divide K=%d/C=%d", l.Name, g, l.K, l.C)
	}
	return nil
}

// Model is a named sequence of layers.
type Model struct {
	Name   string
	Layers []Layer
}

// MACs totals F₀ over the model.
func (m Model) MACs() int64 {
	var s int64
	for _, l := range m.Layers {
		s += l.MACs()
	}
	return s
}

// Params totals the weight count.
func (m Model) Params() int64 {
	var s int64
	for _, l := range m.Layers {
		s += l.Weights()
	}
	return s
}

// WeightBits returns the model weight footprint at the given precision.
func (m Model) WeightBits(bitsPerWeight int) int64 {
	return m.Params() * int64(bitsPerWeight)
}

// Validate checks every layer.
func (m Model) Validate() error {
	if len(m.Layers) == 0 {
		return fmt.Errorf("workload: model %q has no layers", m.Name)
	}
	for _, l := range m.Layers {
		if err := l.Validate(); err != nil {
			return fmt.Errorf("model %q: %w", m.Name, err)
		}
	}
	return nil
}

func conv(name string, k, c, r, ox int, stride int) Layer {
	return Layer{Name: name, Type: Conv, K: k, C: c, R: r, S: r, OX: ox, OY: ox, Stride: stride}
}

func ds(name string, k, c, ox int, stride int) Layer {
	return Layer{Name: name, Type: Downsample, K: k, C: c, R: 1, S: 1, OX: ox, OY: ox, Stride: stride}
}

func fc(name string, k, c int) Layer {
	return Layer{Name: name, Type: FC, K: k, C: c, R: 1, S: 1, OX: 1, OY: 1, Stride: 1}
}

// ResNet18 returns the ResNet-18 layer table (ImageNet, 224×224 input),
// with the exact rows of the paper's Table I plus the final FC.
func ResNet18() Model {
	return Model{Name: "ResNet-18", Layers: []Layer{
		conv("CONV1+POOL", 64, 3, 7, 112, 2),
		conv("L1.0 CONV1", 64, 64, 3, 56, 1),
		conv("L1.0 CONV2", 64, 64, 3, 56, 1),
		conv("L1.1 CONV1", 64, 64, 3, 56, 1),
		conv("L1.1 CONV2", 64, 64, 3, 56, 1),
		ds("L2.0 DS", 128, 64, 28, 2),
		conv("L2.0 CONV1", 128, 64, 3, 28, 2),
		conv("L2.0 CONV2", 128, 128, 3, 28, 1),
		conv("L2.1 CONV1", 128, 128, 3, 28, 1),
		conv("L2.1 CONV2", 128, 128, 3, 28, 1),
		ds("L3.0 DS", 256, 128, 14, 2),
		conv("L3.0 CONV1", 256, 128, 3, 14, 2),
		conv("L3.0 CONV2", 256, 256, 3, 14, 1),
		conv("L3.1 CONV1", 256, 256, 3, 14, 1),
		conv("L3.1 CONV2", 256, 256, 3, 14, 1),
		ds("L4.0 DS", 512, 256, 7, 2),
		conv("L4.0 CONV1", 512, 256, 3, 7, 2),
		conv("L4.0 CONV2", 512, 512, 3, 7, 1),
		conv("L4.1 CONV1", 512, 512, 3, 7, 1),
		conv("L4.1 CONV2", 512, 512, 3, 7, 1),
		fc("FC", 1000, 512),
	}}
}

// ResNet34 returns ResNet-34 (basic blocks 3/4/6/3).
func ResNet34() Model {
	m := Model{Name: "ResNet-34"}
	m.Layers = append(m.Layers, conv("CONV1+POOL", 64, 3, 7, 112, 2))
	stage := func(prefix string, k, c, ox, blocks int, firstStride int) {
		for b := 0; b < blocks; b++ {
			cin, s := k, 1
			if b == 0 {
				cin, s = c, firstStride
				if s != 1 || c != k {
					m.Layers = append(m.Layers, ds(fmt.Sprintf("%s.0 DS", prefix), k, c, ox, s))
				}
			}
			m.Layers = append(m.Layers,
				conv(fmt.Sprintf("%s.%d CONV1", prefix, b), k, cin, 3, ox, s),
				conv(fmt.Sprintf("%s.%d CONV2", prefix, b), k, k, 3, ox, 1))
		}
	}
	stage("L1", 64, 64, 56, 3, 1)
	stage("L2", 128, 64, 28, 4, 2)
	stage("L3", 256, 128, 14, 6, 2)
	stage("L4", 512, 256, 7, 3, 2)
	m.Layers = append(m.Layers, fc("FC", 1000, 512))
	return m
}

// bottleneckStage appends a ResNet bottleneck stage (1×1 reduce, 3×3,
// 1×1 expand ×4).
func bottleneckStage(m *Model, prefix string, mid, cin, ox, blocks, firstStride int) {
	out := mid * 4
	for b := 0; b < blocks; b++ {
		c, s := out, 1
		if b == 0 {
			c, s = cin, firstStride
			m.Layers = append(m.Layers, ds(fmt.Sprintf("%s.0 DS", prefix), out, c, ox, s))
		}
		m.Layers = append(m.Layers,
			conv(fmt.Sprintf("%s.%d CONV1", prefix, b), mid, c, 1, ox, s),
			conv(fmt.Sprintf("%s.%d CONV2", prefix, b), mid, mid, 3, ox, 1),
			conv(fmt.Sprintf("%s.%d CONV3", prefix, b), out, mid, 1, ox, 1))
	}
}

// ResNet50 returns ResNet-50 (bottleneck blocks 3/4/6/3).
func ResNet50() Model {
	m := Model{Name: "ResNet-50"}
	m.Layers = append(m.Layers, conv("CONV1+POOL", 64, 3, 7, 112, 2))
	bottleneckStage(&m, "L1", 64, 64, 56, 3, 1)
	bottleneckStage(&m, "L2", 128, 256, 28, 4, 2)
	bottleneckStage(&m, "L3", 256, 512, 14, 6, 2)
	bottleneckStage(&m, "L4", 512, 1024, 7, 3, 2)
	m.Layers = append(m.Layers, fc("FC", 1000, 2048))
	return m
}

// ResNet152 returns ResNet-152 (bottleneck blocks 3/8/36/3, ~60 M params —
// the capacity target that motivates the paper's 64 MB on-chip RRAM).
func ResNet152() Model {
	m := Model{Name: "ResNet-152"}
	m.Layers = append(m.Layers, conv("CONV1+POOL", 64, 3, 7, 112, 2))
	bottleneckStage(&m, "L1", 64, 64, 56, 3, 1)
	bottleneckStage(&m, "L2", 128, 256, 28, 8, 2)
	bottleneckStage(&m, "L3", 256, 512, 14, 36, 2)
	bottleneckStage(&m, "L4", 512, 1024, 7, 3, 2)
	m.Layers = append(m.Layers, fc("FC", 1000, 2048))
	return m
}

// AlexNet returns AlexNet (ImageNet).
func AlexNet() Model {
	return Model{Name: "AlexNet", Layers: []Layer{
		{Name: "CONV1", Type: Conv, K: 96, C: 3, R: 11, S: 11, OX: 55, OY: 55, Stride: 4},
		conv("CONV2", 256, 96, 5, 27, 1),
		conv("CONV3", 384, 256, 3, 13, 1),
		conv("CONV4", 384, 384, 3, 13, 1),
		conv("CONV5", 256, 384, 3, 13, 1),
		fc("FC6", 4096, 9216),
		fc("FC7", 4096, 4096),
		fc("FC8", 1000, 4096),
	}}
}

// VGG16 returns VGG-16 (ImageNet).
func VGG16() Model {
	return Model{Name: "VGG-16", Layers: []Layer{
		conv("CONV1_1", 64, 3, 3, 224, 1),
		conv("CONV1_2", 64, 64, 3, 224, 1),
		conv("CONV2_1", 128, 64, 3, 112, 1),
		conv("CONV2_2", 128, 128, 3, 112, 1),
		conv("CONV3_1", 256, 128, 3, 56, 1),
		conv("CONV3_2", 256, 256, 3, 56, 1),
		conv("CONV3_3", 256, 256, 3, 56, 1),
		conv("CONV4_1", 512, 256, 3, 28, 1),
		conv("CONV4_2", 512, 512, 3, 28, 1),
		conv("CONV4_3", 512, 512, 3, 28, 1),
		conv("CONV5_1", 512, 512, 3, 14, 1),
		conv("CONV5_2", 512, 512, 3, 14, 1),
		conv("CONV5_3", 512, 512, 3, 14, 1),
		fc("FC6", 4096, 25088),
		fc("FC7", 4096, 4096),
		fc("FC8", 1000, 4096),
	}}
}

// MobileNetV1 returns MobileNetV1 (depthwise-separable convolutions,
// ImageNet) — an extension beyond the paper's suite exercising grouped
// convolutions, whose low arithmetic intensity stresses the activation
// bandwidth exactly like the paper's DS layers.
func MobileNetV1() Model {
	m := Model{Name: "MobileNetV1"}
	m.Layers = append(m.Layers, conv("CONV1", 32, 3, 3, 112, 2))
	ch, ox := 32, 112
	block := 0
	dsBlock := func(out, stride int) {
		block++
		oxOut := ox
		if stride == 2 {
			oxOut = ox / 2
		}
		m.Layers = append(m.Layers,
			Layer{Name: fmt.Sprintf("DW%d", block), Type: Conv, K: ch, C: ch,
				R: 3, S: 3, OX: oxOut, OY: oxOut, Stride: stride, Groups: ch},
			Layer{Name: fmt.Sprintf("PW%d", block), Type: Conv, K: out, C: ch,
				R: 1, S: 1, OX: oxOut, OY: oxOut, Stride: 1})
		ch, ox = out, oxOut
	}
	dsBlock(64, 1)
	dsBlock(128, 2)
	dsBlock(128, 1)
	dsBlock(256, 2)
	dsBlock(256, 1)
	dsBlock(512, 2)
	for i := 0; i < 5; i++ {
		dsBlock(512, 1)
	}
	dsBlock(1024, 2)
	dsBlock(1024, 1)
	m.Layers = append(m.Layers, fc("FC", 1000, 1024))
	return m
}

// Zoo returns every model of the paper's suite (the Fig. 5 x-axis).
func Zoo() []Model {
	return []Model{AlexNet(), VGG16(), ResNet18(), ResNet34(), ResNet50(), ResNet152()}
}

// ExtendedZoo adds the extension models beyond the paper's suite.
func ExtendedZoo() []Model {
	return append(Zoo(), MobileNetV1())
}

// ByName returns the named model from the extended zoo.
func ByName(name string) (Model, error) {
	for _, m := range ExtendedZoo() {
		if m.Name == name {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("workload: unknown model %q", name)
}
