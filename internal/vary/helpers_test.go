package vary_test

import (
	"testing"

	"m3d/internal/cell"
	"m3d/internal/netlist"
	"m3d/internal/synth"
	"m3d/internal/tech"
)

// chainNetlist builds the synthetic linear pipeline the statistical
// oracle rests on: FF -> n inverters -> FF, every cell on the Si tier.
// With a single tier, a corner with Si delay scale s has closed-form
// critical path C0 + D·s, where C0 = ClkQ + setup (launch and capture
// overheads, unscaled) and D is the summed combinational arc delay —
// the launch FF's Q arc and each inverter arc all scale by s, while the
// primary-input endpoint stays far below the capture endpoint for every
// reachable s (s ≥ 0.05 floors the chain well above the port wire stub).
func chainNetlist(tb testing.TB, stages int) (*tech.PDK, *netlist.Netlist) {
	tb.Helper()
	p := tech.Default130()
	lib, err := cell.NewLibrary(p, tech.TierSiCMOS)
	if err != nil {
		tb.Fatal(err)
	}
	b := synth.NewBuilder("chain", lib)
	d := b.Input("in", 0.2)
	q := b.Register("launch", synth.Bus{d}, 0.2)
	sig := q[0]
	for i := 0; i < stages; i++ {
		inv := b.NL.AddCell("inv", b.Lib.MustPick(cell.Inv, 1))
		b.NL.MustPin(inv, "A", false, inv.Cell.InputCapF, sig)
		out := b.NL.AddNet("n", 0.2)
		b.NL.MustPin(inv, "Y", true, 0, out)
		sig = out
	}
	b.SinkBus("capture", synth.Bus{sig})
	if err := b.NL.Check(); err != nil {
		tb.Fatal(err)
	}
	return p, b.NL
}
