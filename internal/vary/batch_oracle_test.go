package vary_test

import (
	"errors"
	"math"
	"testing"

	"m3d/internal/errs"
	"m3d/internal/exec"
	"m3d/internal/sta"
	"m3d/internal/tech"
	"m3d/internal/vary"
)

// TestEngineMatchesPerCornerTimer pins the corner-batched engine against
// the pre-batching implementation it replaced: one sta.Timer per corner
// with SetTierDelayScale, bit-for-bit. Widths 1/2/8 cover the serial
// zero-alloc path and the slab fan-out; sample counts 1/7/100 cover a
// sub-slab batch, a ragged tail, and multiple full slabs.
func TestEngineMatchesPerCornerTimer(t *testing.T) {
	p, nl := chainNetlist(t, 16)
	v := tech.DefaultVariation()
	const seed = 42

	sampler, err := vary.NewSampler(v, seed)
	if err != nil {
		t.Fatal(err)
	}
	oracle := sta.NewTimer(p, nl, nil)
	want := make([]float64, 100)
	for i := range want {
		c := sampler.Corner(i)
		oracle.SetTierDelayScale(c.TierScale[:])
		rep, err := oracle.Analyze(1.0)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = rep.CriticalPathS
	}

	for _, width := range []int{1, 2, 8} {
		e, err := vary.NewEngine(p, nl, nil, v, seed)
		if err != nil {
			t.Fatal(err)
		}
		st := exec.Resolve(exec.WithWorkers(width))
		for _, n := range []int{1, 7, 100} {
			got, err := e.CriticalPaths(st, 0, n)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("width %d n %d sample %d: %.17g vs per-corner oracle %.17g",
						width, n, i, got[i], want[i])
				}
			}
		}
	}
}

// TestSamplerPrimeIdentity checks the corner cache: primed corners are
// bit-identical to cold draws, priming is idempotent and growable, and
// out-of-cache indices still draw correctly.
func TestSamplerPrimeIdentity(t *testing.T) {
	v := tech.DefaultVariation()
	cold, err := vary.NewSampler(v, 7)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := vary.NewSampler(v, 7)
	if err != nil {
		t.Fatal(err)
	}
	warm.Prime(16)
	warm.Prime(8)             // shrink request: no-op
	warm.Prime(64)            // growth re-uses the cached prefix
	for i := 0; i < 80; i++ { // 64..79 fall past the cache
		if cold.Corner(i) != warm.Corner(i) {
			t.Fatalf("corner %d: cold %+v != primed %+v", i, cold.Corner(i), warm.Corner(i))
		}
	}
}

// TestCriticalPathsIntoValidation covers the caller-owned-storage
// contract: window and length violations match errs.ErrBadSpec.
func TestCriticalPathsIntoValidation(t *testing.T) {
	p, nl := chainNetlist(t, 4)
	e, err := vary.NewEngine(p, nl, nil, tech.DefaultVariation(), 1)
	if err != nil {
		t.Fatal(err)
	}
	st := exec.Resolve(exec.WithWorkers(1))
	if err := e.CriticalPathsInto(st, 2, 1, nil); !errors.Is(err, errs.ErrBadSpec) {
		t.Fatalf("bad window: got %v", err)
	}
	if err := e.CriticalPathsInto(st, 0, 4, make([]float64, 3)); !errors.Is(err, errs.ErrBadSpec) {
		t.Fatalf("short dst: got %v", err)
	}
	if err := e.CriticalPathsInto(st, 3, 3, nil); err != nil {
		t.Fatalf("empty window: got %v", err)
	}
}

// TestCriticalPathsZeroSteadyStateAllocs is the satellite guarantee
// behind BenchmarkMonteCarloSTA's allocs/op = 0: once the corner cache
// and one scratch are warm, the serial sampling path allocates nothing.
func TestCriticalPathsZeroSteadyStateAllocs(t *testing.T) {
	p, nl := chainNetlist(t, 16)
	e, err := vary.NewEngine(p, nl, nil, tech.DefaultVariation(), 1)
	if err != nil {
		t.Fatal(err)
	}
	st := exec.Resolve(exec.WithWorkers(1))
	dst := make([]float64, 64)
	if err := e.CriticalPathsInto(st, 0, 64, dst); err != nil { // warm cache + scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := e.CriticalPathsInto(st, 0, 64, dst); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state CriticalPathsInto allocates %v objects/run, want 0", allocs)
	}
}
