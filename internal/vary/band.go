package vary

import (
	"m3d/internal/analytic"
	"m3d/internal/tech"
)

// perturb maps a process corner onto the analytic case-study model: a
// slow CNFET tier (scale > 1) lengthens the BEOL access-transistor
// switching time and so divides the M3D bandwidth, and ILV resistance
// spread on the RRAM tier raises the 3D access energy proportionally.
// The Si tier's spread hits 2D and M3D compute identically and cancels
// out of the EDP *ratio*, so it does not enter. At the nominal corner
// (all scales exactly 1.0) the parameters pass through bit-for-bit.
func perturb(p analytic.Params, c Corner) analytic.Params {
	p.B3D /= c.TierScale[tech.TierCNFET]
	p.Alpha3D *= c.TierScale[tech.TierRRAM]
	return p
}

// EDPSamples evaluates one design point of the analytic model under n
// process corners, returning the per-corner EDP benefits in sample-index
// order. The loop is serial on purpose: each evaluation is a handful of
// closed-form equations, far below the cost of a goroutine handoff, and
// callers (the DSE evaluator) already fan out across design points.
func EDPSamples(p analytic.Params, a analytic.AreaModel, loads []analytic.Load, d analytic.DesignPoint, s *Sampler, n int) ([]float64, error) {
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		res, err := analytic.CasePoint(perturb(p, s.Corner(i)), a, loads, d)
		if err != nil {
			return nil, err
		}
		out[i] = res.EDPBenefit
	}
	return out, nil
}

// EDPBand is the p5/p50/p95 variation band of EDP benefit at one design
// point: EDPSamples reduced through QuantilesOf. P5 is the
// yield-constrained objective — the benefit 95% of manufactured chips
// meet or beat.
func EDPBand(p analytic.Params, a analytic.AreaModel, loads []analytic.Load, d analytic.DesignPoint, s *Sampler, n int) (Quantiles, error) {
	xs, err := EDPSamples(p, a, loads, d, s, n)
	if err != nil {
		return Quantiles{}, err
	}
	return QuantilesOf(xs), nil
}
