package vary

import (
	"context"
	"fmt"
	"sync"

	"m3d/internal/errs"
	"m3d/internal/exec"
	"m3d/internal/netlist"
	"m3d/internal/route"
	"m3d/internal/sta"
	"m3d/internal/tech"
)

// MaxSamples bounds one Monte-Carlo run; requests beyond it match
// errs.ErrBadSpec.
const MaxSamples = 1 << 20

// critPathBounds are the vary.critpath.seconds histogram buckets
// (seconds): digital critical paths in this PDK land in the ns range.
var critPathBounds = []float64{1e-10, 3e-10, 1e-9, 3e-9, 1e-8, 3e-8, 1e-7}

// Options configures one Monte-Carlo yield run.
type Options struct {
	// Samples is the number of process corners to time (1..MaxSamples).
	Samples int
	// Seed selects the corner stream; the same (Variation, Seed, Samples)
	// triple reproduces the run exactly at any worker width.
	Seed int64
	// Periods are the clock periods (seconds) the yield curve is
	// evaluated at; empty selects DefaultPeriods around the nominal
	// critical path.
	Periods []float64
}

// Validate checks the run options. Violations match errs.ErrBadSpec.
func (o Options) Validate() error {
	if o.Samples < 1 || o.Samples > MaxSamples {
		return fmt.Errorf("vary: samples %d out of range [1, %d]: %w", o.Samples, MaxSamples, errs.ErrBadSpec)
	}
	for _, p := range o.Periods {
		if p <= 0 {
			return fmt.Errorf("vary: period %g must be positive: %w", p, errs.ErrBadSpec)
		}
	}
	return nil
}

// YieldPoint is one point of the timing-yield curve: the fraction of
// sampled corners whose critical path meets the clock period.
type YieldPoint struct {
	PeriodS float64 `json:"period_s"`
	Yield   float64 `json:"yield"`
}

// Result is one Monte-Carlo yield analysis.
type Result struct {
	// Nominal is the zero-variation STA report the run is anchored on.
	Nominal *sta.Report
	// CritPathS holds the per-sample critical paths (seconds), indexed
	// by sample; deep-equal at any worker width for a fixed seed.
	CritPathS []float64
	// Curve is P(slack ≥ 0) vs clock period, non-decreasing in period.
	Curve []YieldPoint
	// CritQuantiles is the p5/p50/p95 band of the sampled critical path.
	CritQuantiles Quantiles
}

// analyzePeriodS is the constraint handed to per-corner STA passes; only
// the target-independent critical path is consumed, so any positive
// period works.
const analyzePeriodS = 1.0

// Engine runs Monte-Carlo timing yield over one placed-and-routed
// netlist. It owns a pool of sta.Timer instances (each with its own
// WireModel scratch over the shared read-only netlist and routes), so
// repeated and concurrent sampling reuses the slice-indexed timing
// machinery instead of rebuilding it per corner. Analyze results are
// pure in (netlist, corner), so timer reuse — whatever the pool's warmth
// — never changes a sample's value.
type Engine struct {
	p       *tech.PDK
	nl      *netlist.Netlist
	routes  *route.Result
	sampler *Sampler
	nominal *sta.Report
	timers  sync.Pool
}

// NewEngine builds a yield engine for one design. routes may be nil
// (pre-route wire estimates). The variation parameters are validated
// (errs.ErrBadSpec on violation) and the nominal STA runs once here so
// every later sample is anchored on the same baseline.
func NewEngine(p *tech.PDK, nl *netlist.Netlist, routes *route.Result, v tech.Variation, seed int64) (*Engine, error) {
	s, err := NewSampler(v, seed)
	if err != nil {
		return nil, err
	}
	e := &Engine{p: p, nl: nl, routes: routes, sampler: s}
	e.timers.New = func() any {
		return sta.NewTimer(e.p, e.nl, sta.NewWireModel(e.p, e.routes))
	}
	nom, err := e.timers.Get().(*sta.Timer).Analyze(analyzePeriodS)
	if err != nil {
		return nil, fmt.Errorf("vary: nominal analysis: %w", err)
	}
	e.nominal = nom
	return e, nil
}

// Nominal returns the zero-variation STA report computed at construction.
func (e *Engine) Nominal() *sta.Report { return e.nominal }

// Sampler returns the engine's corner sampler.
func (e *Engine) Sampler() *Sampler { return e.sampler }

// CriticalPaths times the sample window [lo, hi): each sample index i
// draws Corner(i), installs its per-tier delay scales on a pooled Timer
// and runs a full STA pass, returning the per-sample critical paths in
// index order. Because corners are index-addressed and results land at
// their input index, the returned slice is deep-equal at any worker
// width — callers may split [0, N) into any batch sequence (the serve
// streaming handler refines quantiles per batch) without changing a
// single value.
func (e *Engine) CriticalPaths(st *exec.Settings, lo, hi int) ([]float64, error) {
	if lo < 0 || hi < lo {
		return nil, fmt.Errorf("vary: bad sample window [%d, %d): %w", lo, hi, errs.ErrBadSpec)
	}
	idx := make([]int, hi-lo)
	for i := range idx {
		idx[i] = lo + i
	}
	samples := st.Metrics.Counter("vary.samples")
	hist := st.Metrics.Histogram("vary.critpath.seconds", critPathBounds...)
	return exec.MapWith(st, idx, func(_ context.Context, _ int, sample int) (float64, error) {
		t := e.timers.Get().(*sta.Timer)
		defer e.timers.Put(t)
		c := e.sampler.Corner(sample)
		t.SetTierDelayScale(c.TierScale[:])
		rep, err := t.Analyze(analyzePeriodS)
		if err != nil {
			return 0, fmt.Errorf("vary: sample %d: %w", sample, err)
		}
		samples.Add(1)
		hist.Observe(rep.CriticalPathS)
		return rep.CriticalPathS, nil
	})
}

// Curve evaluates the timing-yield curve P(critical path ≤ T) for each
// period: the empirical fraction of corners meeting timing. Monotone
// non-decreasing in T by construction.
func Curve(critPathS []float64, periods []float64) []YieldPoint {
	out := make([]YieldPoint, len(periods))
	for i, T := range periods {
		met := 0
		for _, c := range critPathS {
			if c <= T {
				met++
			}
		}
		y := 0.0
		if len(critPathS) > 0 {
			y = float64(met) / float64(len(critPathS))
		}
		out[i] = YieldPoint{PeriodS: T, Yield: y}
	}
	return out
}

// DefaultPeriods spans the yield transition around a nominal critical
// path: 25 evenly spaced clock periods from 0.90× to 1.50× nominal,
// covering both the fast corners that still meet an aggressive clock and
// the slow tail that needs guard-band.
func DefaultPeriods(nominalS float64) []float64 {
	const n = 25
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = nominalS * (0.90 + 0.60*float64(i)/float64(n-1))
	}
	return out
}

// Analyze runs a full Monte-Carlo yield analysis: o.Samples corners
// through per-corner STA, the yield curve over o.Periods (DefaultPeriods
// around nominal when empty), and the critical-path quantile band. The
// result is deep-equal at any worker width for a fixed seed.
func (e *Engine) Analyze(o Options, opts ...exec.Option) (*Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	st := exec.Resolve(opts...)
	if st.Label == "" {
		st.Label = "vary.sample"
	}
	crit, err := e.CriticalPaths(st, 0, o.Samples)
	if err != nil {
		return nil, err
	}
	periods := o.Periods
	if len(periods) == 0 {
		periods = DefaultPeriods(e.nominal.CriticalPathS)
	}
	return &Result{
		Nominal:       e.nominal,
		CritPathS:     crit,
		Curve:         Curve(crit, periods),
		CritQuantiles: QuantilesOf(crit),
	}, nil
}
