package vary

import (
	"context"
	"fmt"
	"sync"

	"m3d/internal/errs"
	"m3d/internal/exec"
	"m3d/internal/netlist"
	"m3d/internal/obs"
	"m3d/internal/route"
	"m3d/internal/sta"
	"m3d/internal/tech"
)

// MaxSamples bounds one Monte-Carlo run; requests beyond it match
// errs.ErrBadSpec.
const MaxSamples = 1 << 20

// critPathBounds are the vary.critpath.seconds histogram buckets
// (seconds): digital critical paths in this PDK land in the ns range.
var critPathBounds = []float64{1e-10, 3e-10, 1e-9, 3e-9, 1e-8, 3e-8, 1e-7}

// Options configures one Monte-Carlo yield run.
type Options struct {
	// Samples is the number of process corners to time (1..MaxSamples).
	Samples int
	// Seed selects the corner stream; the same (Variation, Seed, Samples)
	// triple reproduces the run exactly at any worker width.
	Seed int64
	// Periods are the clock periods (seconds) the yield curve is
	// evaluated at; empty selects DefaultPeriods around the nominal
	// critical path.
	Periods []float64
}

// Validate checks the run options. Violations match errs.ErrBadSpec.
func (o Options) Validate() error {
	if o.Samples < 1 || o.Samples > MaxSamples {
		return fmt.Errorf("vary: samples %d out of range [1, %d]: %w", o.Samples, MaxSamples, errs.ErrBadSpec)
	}
	for _, p := range o.Periods {
		if p <= 0 {
			return fmt.Errorf("vary: period %g must be positive: %w", p, errs.ErrBadSpec)
		}
	}
	return nil
}

// YieldPoint is one point of the timing-yield curve: the fraction of
// sampled corners whose critical path meets the clock period.
type YieldPoint struct {
	PeriodS float64 `json:"period_s"`
	Yield   float64 `json:"yield"`
}

// Result is one Monte-Carlo yield analysis.
type Result struct {
	// Nominal is the zero-variation STA report the run is anchored on.
	Nominal *sta.Report
	// CritPathS holds the per-sample critical paths (seconds), indexed
	// by sample; deep-equal at any worker width for a fixed seed.
	CritPathS []float64
	// Curve is P(slack ≥ 0) vs clock period, non-decreasing in period.
	Curve []YieldPoint
	// CritQuantiles is the p5/p50/p95 band of the sampled critical path.
	CritQuantiles Quantiles
}

// analyzePeriodS is the constraint handed to per-corner STA passes; only
// the target-independent critical path is consumed, so any positive
// period works.
const analyzePeriodS = 1.0

// batchCorners is the engine's internal corner-slab width: every sample
// window is cut into slabs of this many corners and each slab is priced
// by ONE sta.BatchTimer graph walk. The slab cut is a fixed function of
// the sample indices — never of the worker width — and corner i's value
// is independent of which slab prices it, so results stay bit-identical
// at any width and across any caller-side window split.
const batchCorners = 32

// batchScratch is one worker's reusable timing state: a corner-batched
// timer (with its own WireModel RC cache over the shared read-only
// netlist and routes) plus the slab's corner-scale staging slice.
type batchScratch struct {
	bt     *sta.BatchTimer
	scales [][tech.NumTiers]float64
}

// Engine runs Monte-Carlo timing yield over one placed-and-routed
// netlist. It owns a free list of batchScratch instances — a plain
// slice-indexed stack, not a sync.Pool, so scratch survives GC cycles,
// steady-state sampling allocates nothing, and heap profiles of the
// yield path show the design's timing state once instead of churn.
// Analyze results are pure in (netlist, corner), so scratch reuse —
// whatever the stack's warmth — never changes a sample's value.
type Engine struct {
	p       *tech.PDK
	nl      *netlist.Netlist
	routes  *route.Result
	sampler *Sampler
	nominal *sta.Report

	mu   sync.Mutex
	free []*batchScratch
}

// NewEngine builds a yield engine for one design. routes may be nil
// (pre-route wire estimates). The variation parameters are validated
// (errs.ErrBadSpec on violation) and the nominal STA runs once here so
// every later sample is anchored on the same baseline.
func NewEngine(p *tech.PDK, nl *netlist.Netlist, routes *route.Result, v tech.Variation, seed int64) (*Engine, error) {
	s, err := NewSampler(v, seed)
	if err != nil {
		return nil, err
	}
	e := &Engine{p: p, nl: nl, routes: routes, sampler: s}
	nom, err := sta.Analyze(p, nl, sta.NewWireModel(p, routes), analyzePeriodS)
	if err != nil {
		return nil, fmt.Errorf("vary: nominal analysis: %w", err)
	}
	e.nominal = nom
	return e, nil
}

// Nominal returns the zero-variation STA report computed at construction.
func (e *Engine) Nominal() *sta.Report { return e.nominal }

// Sampler returns the engine's corner sampler.
func (e *Engine) Sampler() *Sampler { return e.sampler }

// Prime precomputes the first n process corners (see Sampler.Prime).
// Callers that stream one run as many CriticalPaths windows — the serve
// yield handler — prime the full sample count up front so the cache
// grows once instead of once per window.
func (e *Engine) Prime(n int) { e.sampler.Prime(n) }

// get pops a scratch off the free list, building one on a cold stack.
func (e *Engine) get() (*batchScratch, error) {
	e.mu.Lock()
	if n := len(e.free); n > 0 {
		sc := e.free[n-1]
		e.free = e.free[:n-1]
		e.mu.Unlock()
		return sc, nil
	}
	e.mu.Unlock()
	bt, err := sta.NewBatchTimer(e.p, e.nl, sta.NewWireModel(e.p, e.routes), batchCorners)
	if err != nil {
		return nil, fmt.Errorf("vary: batch timer: %w", err)
	}
	return &batchScratch{bt: bt, scales: make([][tech.NumTiers]float64, 0, batchCorners)}, nil
}

func (e *Engine) put(sc *batchScratch) {
	e.mu.Lock()
	e.free = append(e.free, sc)
	e.mu.Unlock()
}

// runSlab prices corners [slabLo, slabHi) with one batched graph walk,
// writing critical paths into out (len slabHi-slabLo).
func (e *Engine) runSlab(sc *batchScratch, slabLo, slabHi int, out []float64,
	samples *obs.Counter, hist *obs.Histogram) error {
	sc.scales = sc.scales[:0]
	for i := slabLo; i < slabHi; i++ {
		sc.scales = append(sc.scales, e.sampler.Corner(i).TierScale)
	}
	if err := sc.bt.AnalyzeBatch(sc.scales, out); err != nil {
		return fmt.Errorf("vary: samples [%d, %d): %w", slabLo, slabHi, err)
	}
	samples.Add(int64(slabHi - slabLo))
	for _, c := range out {
		hist.Observe(c)
	}
	return nil
}

// CriticalPaths times the sample window [lo, hi): each sample index i
// draws Corner(i) and prices it through the corner-batched STA kernel,
// returning the per-sample critical paths in index order. Because
// corners are index-addressed, slab cuts are index-aligned, and results
// land at their input index, the returned slice is deep-equal at any
// worker width — callers may split [0, N) into any batch sequence (the
// serve streaming handler refines quantiles per batch) without changing
// a single value.
func (e *Engine) CriticalPaths(st *exec.Settings, lo, hi int) ([]float64, error) {
	if lo < 0 || hi < lo {
		return nil, fmt.Errorf("vary: bad sample window [%d, %d): %w", lo, hi, errs.ErrBadSpec)
	}
	out := make([]float64, hi-lo)
	if err := e.CriticalPathsInto(st, lo, hi, out); err != nil {
		return nil, err
	}
	return out, nil
}

// CriticalPathsInto is CriticalPaths writing into caller-owned storage:
// dst must have length hi-lo and receives dst[i-lo] = critical path of
// corner i. With st.Workers == 1 the steady-state path allocates
// nothing — no fan-out machinery, one reused scratch, cached corners —
// which is what BenchmarkMonteCarloSTA pins.
func (e *Engine) CriticalPathsInto(st *exec.Settings, lo, hi int, dst []float64) error {
	if lo < 0 || hi < lo {
		return fmt.Errorf("vary: bad sample window [%d, %d): %w", lo, hi, errs.ErrBadSpec)
	}
	if len(dst) != hi-lo {
		return fmt.Errorf("vary: dst length %d != window [%d, %d) size %d: %w",
			len(dst), lo, hi, hi-lo, errs.ErrBadSpec)
	}
	if err := st.Ctx.Err(); err != nil {
		return fmt.Errorf("vary: %w: %w", errs.ErrCanceled, err)
	}
	if hi == lo {
		return nil
	}
	e.sampler.Prime(hi)
	samples := st.Metrics.Counter("vary.samples")
	hist := st.Metrics.Histogram("vary.critpath.seconds", critPathBounds...)

	if st.Workers <= 1 {
		sc, err := e.get()
		if err != nil {
			return err
		}
		defer e.put(sc)
		for slabLo := lo; slabLo < hi; slabLo += batchCorners {
			if err := st.Ctx.Err(); err != nil {
				return fmt.Errorf("vary: %w: %w", errs.ErrCanceled, err)
			}
			slabHi := slabLo + batchCorners
			if slabHi > hi {
				slabHi = hi
			}
			if err := e.runSlab(sc, slabLo, slabHi, dst[slabLo-lo:slabHi-lo], samples, hist); err != nil {
				return err
			}
		}
		return nil
	}

	type window struct{ lo, hi int }
	wins := make([]window, 0, (hi-lo+batchCorners-1)/batchCorners)
	for slabLo := lo; slabLo < hi; slabLo += batchCorners {
		slabHi := slabLo + batchCorners
		if slabHi > hi {
			slabHi = hi
		}
		wins = append(wins, window{slabLo, slabHi})
	}
	_, err := exec.MapWith(st, wins, func(_ context.Context, _ int, w window) (struct{}, error) {
		sc, err := e.get()
		if err != nil {
			return struct{}{}, err
		}
		defer e.put(sc)
		// Slabs are disjoint, so the dst sub-slices never overlap.
		return struct{}{}, e.runSlab(sc, w.lo, w.hi, dst[w.lo-lo:w.hi-lo], samples, hist)
	})
	return err
}

// Curve evaluates the timing-yield curve P(critical path ≤ T) for each
// period: the empirical fraction of corners meeting timing. Monotone
// non-decreasing in T by construction.
func Curve(critPathS []float64, periods []float64) []YieldPoint {
	out := make([]YieldPoint, len(periods))
	for i, T := range periods {
		met := 0
		for _, c := range critPathS {
			if c <= T {
				met++
			}
		}
		y := 0.0
		if len(critPathS) > 0 {
			y = float64(met) / float64(len(critPathS))
		}
		out[i] = YieldPoint{PeriodS: T, Yield: y}
	}
	return out
}

// DefaultPeriods spans the yield transition around a nominal critical
// path: 25 evenly spaced clock periods from 0.90× to 1.50× nominal,
// covering both the fast corners that still meet an aggressive clock and
// the slow tail that needs guard-band.
func DefaultPeriods(nominalS float64) []float64 {
	const n = 25
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = nominalS * (0.90 + 0.60*float64(i)/float64(n-1))
	}
	return out
}

// Analyze runs a full Monte-Carlo yield analysis: o.Samples corners
// through per-corner STA, the yield curve over o.Periods (DefaultPeriods
// around nominal when empty), and the critical-path quantile band. The
// result is deep-equal at any worker width for a fixed seed.
func (e *Engine) Analyze(o Options, opts ...exec.Option) (*Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	st := exec.Resolve(opts...)
	if st.Label == "" {
		st.Label = "vary.sample"
	}
	crit, err := e.CriticalPaths(st, 0, o.Samples)
	if err != nil {
		return nil, err
	}
	periods := o.Periods
	if len(periods) == 0 {
		periods = DefaultPeriods(e.nominal.CriticalPathS)
	}
	return &Result{
		Nominal:       e.nominal,
		CritPathS:     crit,
		Curve:         Curve(crit, periods),
		CritQuantiles: QuantilesOf(crit),
	}, nil
}
