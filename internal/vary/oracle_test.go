package vary_test

import (
	"math"
	"testing"

	"m3d/internal/exec"
	"m3d/internal/netlist"
	"m3d/internal/sta"
	"m3d/internal/tech"
	"m3d/internal/vary"
)

// oracleSamples is the committed Monte-Carlo size the acceptance
// criteria pin: large enough that the estimator tolerances below are
// ~5 standard errors wide, small enough to run in every test pass.
const oracleSamples = 4096

const oracleSeed = 20260809

// phi is the standard normal CDF.
func phi(x float64) float64 { return 0.5 * (1 + math.Erf(x/math.Sqrt2)) }

// chainConstants measures the closed-form decomposition crit(s) = C0 +
// D·s of the single-tier chain directly from the implementation: one
// nominal pass (s=1) and one at s=2 give D = crit(2) − crit(1) and
// C0 = crit(1) − D. Any departure from linearity in s would break the
// oracle assertions downstream, so it is cross-checked at s=1.5 here.
func chainConstantsFor(t *testing.T, p *tech.PDK, nl *netlist.Netlist, e *vary.Engine) (c0, d float64) {
	t.Helper()
	nom := e.Nominal().CriticalPathS
	at := func(s float64) float64 {
		tm := sta.NewTimer(p, nl, nil)
		tm.SetTierDelayScale([]float64{s, s, s})
		rep, err := tm.Analyze(1.0)
		if err != nil {
			t.Fatal(err)
		}
		return rep.CriticalPathS
	}
	d = at(2) - nom
	c0 = nom - d
	if d <= 0 {
		t.Fatalf("combinational delay D=%g must be positive", d)
	}
	mid := at(1.5)
	if want := c0 + 1.5*d; math.Abs(mid-want) > 1e-18 {
		t.Fatalf("crit(s) not linear in s: crit(1.5)=%g want %g", mid, want)
	}
	return c0, d
}

func TestOracleMeanAndVariance(t *testing.T) {
	p, nl := chainNetlist(t, 16)
	sigma := 0.05
	v := tech.Variation{SiDriveSigma: sigma}
	e, err := vary.NewEngine(p, nl, nil, v, oracleSeed)
	if err != nil {
		t.Fatal(err)
	}
	c0, d := chainConstantsFor(t, p, nl, e)

	res, err := e.Analyze(vary.Options{Samples: oracleSamples}, exec.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CritPathS) != oracleSamples {
		t.Fatalf("got %d samples, want %d", len(res.CritPathS), oracleSamples)
	}

	// crit_i = C0 + D·(1 + σ·z_i) with z ~ N(0,1): mean C0+D, std D·σ.
	// (The s ≥ 0.05 floor needs z < −19 to bite at σ=0.05 — never.)
	wantMean := c0 + d
	wantStd := d * sigma

	var sum, sumSq float64
	for _, c := range res.CritPathS {
		sum += c
		sumSq += (c - wantMean) * (c - wantMean)
	}
	n := float64(oracleSamples)
	mean := sum / n
	std := math.Sqrt(sumSq / n)

	// 5 standard errors: SE(mean) = σ_tot/√n, SE(std) ≈ σ_tot/√(2n).
	if tol := 5 * wantStd / math.Sqrt(n); math.Abs(mean-wantMean) > tol {
		t.Errorf("MC mean %g, oracle %g (tol %g)", mean, wantMean, tol)
	}
	if tol := 5 * wantStd / math.Sqrt(2*n); math.Abs(std-wantStd) > tol {
		t.Errorf("MC std %g, oracle %g (tol %g)", std, wantStd, tol)
	}

	// Empirical yield vs the closed-form Φ((T − μ)/σ_tot) across the
	// transition; binomial SE ≤ 0.5/√n ≈ 0.008, tolerance 5×.
	for _, k := range []float64{-2, -1, 0, 1, 2} {
		T := wantMean + k*wantStd
		met := 0
		for _, c := range res.CritPathS {
			if c <= T {
				met++
			}
		}
		got := float64(met) / n
		want := phi(k)
		if math.Abs(got-want) > 0.04 {
			t.Errorf("yield at μ%+g·σ: MC %g, Φ %g", k, got, want)
		}
	}
}

func TestOracleZeroSigmaCollapsesToNominal(t *testing.T) {
	p, nl := chainNetlist(t, 12)
	e, err := vary.NewEngine(p, nl, nil, tech.Variation{}, oracleSeed)
	if err != nil {
		t.Fatal(err)
	}
	// Independent nominal oracle through the plain package-level path.
	want, err := sta.Analyze(p, nl, nil, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if e.Nominal().CriticalPathS != want.CriticalPathS {
		t.Fatalf("engine nominal %v != sta.Analyze %v",
			e.Nominal().CriticalPathS, want.CriticalPathS)
	}
	res, err := e.Analyze(vary.Options{Samples: 256}, exec.WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range res.CritPathS {
		if c != want.CriticalPathS { // bit-for-bit, not approximately
			t.Fatalf("sample %d: σ=0 corner %v != nominal %v", i, c, want.CriticalPathS)
		}
	}
	q := res.CritQuantiles
	if q.P5 != want.CriticalPathS || q.P50 != want.CriticalPathS || q.P95 != want.CriticalPathS {
		t.Fatalf("σ=0 quantile band %+v not collapsed onto nominal %v", q, want.CriticalPathS)
	}
}

func TestOracleSeedReproducible(t *testing.T) {
	p, nl := chainNetlist(t, 8)
	v := tech.DefaultVariation()
	run := func() []float64 {
		e, err := vary.NewEngine(p, nl, nil, v, oracleSeed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Analyze(vary.Options{Samples: 512})
		if err != nil {
			t.Fatal(err)
		}
		return res.CritPathS
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs across fresh engines: %v vs %v", i, a[i], b[i])
		}
	}
}
