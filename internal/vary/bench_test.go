package vary_test

import (
	"testing"

	"m3d/internal/exec"
	"m3d/internal/tech"
	"m3d/internal/vary"
)

// BenchmarkMonteCarloSTA is the benchdiff-tracked cost of Monte-Carlo
// timing: one 32-corner window on a 16-stage chain, serial so the
// number is scheduling-independent. Since the corner-batched kernel the
// window is ONE levelization walk into caller-owned storage; the warm-up
// call outside the timed region fills the corner cache and the scratch
// free list, so the loop pins the zero-steady-state-alloc contract
// (allocs/op must stay 0 — benchdiff fails on any alloc regression).
func BenchmarkMonteCarloSTA(b *testing.B) {
	p, nl := chainNetlist(b, 16)
	e, err := vary.NewEngine(p, nl, nil, tech.DefaultVariation(), 1)
	if err != nil {
		b.Fatal(err)
	}
	st := exec.Resolve(exec.WithWorkers(1))
	dst := make([]float64, 32)
	if err := e.CriticalPathsInto(st, 0, 32, dst); err != nil { // warm cache + scratch
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.CriticalPathsInto(st, 0, 32, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonteCarloYield4096 is the profile target behind
// `make profile-yield`: a full 4096-corner yield window, serial, sized
// so CPU/heap profiles show the batched kernel's steady state rather
// than setup. Not benchdiff-tracked (it is a profiling vehicle; the
// 32-corner benchmark above is the regression gate).
func BenchmarkMonteCarloYield4096(b *testing.B) {
	p, nl := chainNetlist(b, 16)
	e, err := vary.NewEngine(p, nl, nil, tech.DefaultVariation(), 1)
	if err != nil {
		b.Fatal(err)
	}
	st := exec.Resolve(exec.WithWorkers(1))
	dst := make([]float64, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.CriticalPathsInto(st, 0, 4096, dst); err != nil {
			b.Fatal(err)
		}
	}
}
