package vary_test

import (
	"testing"

	"m3d/internal/exec"
	"m3d/internal/tech"
	"m3d/internal/vary"
)

// BenchmarkMonteCarloSTA is the benchdiff-tracked cost of Monte-Carlo
// timing: one 32-corner batch through pooled Timers on a 16-stage
// chain, serial so the number is scheduling-independent.
func BenchmarkMonteCarloSTA(b *testing.B) {
	p, nl := chainNetlist(b, 16)
	e, err := vary.NewEngine(p, nl, nil, tech.DefaultVariation(), 1)
	if err != nil {
		b.Fatal(err)
	}
	st := exec.Resolve(exec.WithWorkers(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.CriticalPaths(st, 0, 32); err != nil {
			b.Fatal(err)
		}
	}
}
