package vary_test

import (
	"math/rand"
	"testing"

	"m3d/internal/exec"
	"m3d/internal/tech"
	"m3d/internal/vary"
)

// This file is the property-based invariant suite for the variation
// subsystem, in the internal/analytic/invariants_test.go style:
// randomized-but-valid parameter draws checked against the model's
// mathematical guarantees rather than point goldens. Every subtest logs
// its seed so a failure replays deterministically.

// invariantSeeds are the fixed seeds the suite runs at.
var invariantSeeds = []int64{1, 2, 3, 5, 8, 13, 21, 34, 55, 89}

// randVariation draws valid variation parameters: sigmas in [0, 0.2],
// a Vt shift in [0, 0.3] and a correlation in [0, 1].
func randVariation(rng *rand.Rand) tech.Variation {
	return tech.Variation{
		SiDriveSigma:    0.2 * rng.Float64(),
		CNFETDriveSigma: 0.2 * rng.Float64(),
		CNFETVtShift:    0.3 * rng.Float64(),
		ILVRSpread:      0.2 * rng.Float64(),
		TierCorr:        rng.Float64(),
	}
}

// TestInvariantYieldMonotoneInPeriod: P(crit ≤ T) is an empirical CDF,
// so the yield curve over ascending periods never decreases.
func TestInvariantYieldMonotoneInPeriod(t *testing.T) {
	p, nl := chainNetlist(t, 10)
	for _, seed := range invariantSeeds {
		t.Logf("seed %d", seed)
		rng := rand.New(rand.NewSource(seed))
		e, err := vary.NewEngine(p, nl, nil, randVariation(rng), seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Analyze(vary.Options{Samples: 400}, exec.WithWorkers(4))
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(res.Curve); i++ {
			if res.Curve[i].PeriodS <= res.Curve[i-1].PeriodS {
				t.Fatalf("periods not ascending at %d", i)
			}
			if res.Curve[i].Yield < res.Curve[i-1].Yield {
				t.Fatalf("yield decreased: %g@%g -> %g@%g",
					res.Curve[i-1].Yield, res.Curve[i-1].PeriodS,
					res.Curve[i].Yield, res.Curve[i].PeriodS)
			}
		}
	}
}

// TestInvariantYieldNonIncreasingInSigma: on the single-tier chain, a
// sample passes period T ≥ nominal iff σ·z ≤ (T − nominal)/D ≥ 0. The
// draw order is σ-independent, so every engine in the σ ladder sees
// identical z draws: z ≤ 0 samples pass at every σ, z > 0 samples fail
// monotonically as σ grows — yield at fixed T ≥ nominal never increases
// with σ, exactly, not just statistically.
func TestInvariantYieldNonIncreasingInSigma(t *testing.T) {
	p, nl := chainNetlist(t, 10)
	sigmas := []float64{0, 0.02, 0.05, 0.1, 0.2}
	for _, seed := range invariantSeeds[:4] {
		t.Logf("seed %d", seed)
		var nominal float64
		var prev []vary.YieldPoint
		for _, sg := range sigmas {
			e, err := vary.NewEngine(p, nl, nil, tech.Variation{SiDriveSigma: sg}, seed)
			if err != nil {
				t.Fatal(err)
			}
			if nominal == 0 {
				nominal = e.Nominal().CriticalPathS
			}
			// Periods at and above nominal only: below nominal the
			// z < 0 half can push yield either way.
			periods := []float64{nominal, nominal * 1.02, nominal * 1.05, nominal * 1.1, nominal * 1.3}
			res, err := e.Analyze(vary.Options{Samples: 500, Periods: periods}, exec.WithWorkers(4))
			if err != nil {
				t.Fatal(err)
			}
			if prev != nil {
				for i := range res.Curve {
					if res.Curve[i].Yield > prev[i].Yield {
						t.Fatalf("σ=%g yield %g exceeds smaller-σ yield %g at T=%g",
							sg, res.Curve[i].Yield, prev[i].Yield, res.Curve[i].PeriodS)
					}
				}
			}
			prev = res.Curve
		}
	}
}

// TestInvariantQuantileOrder: p5 ≤ p50 ≤ p95 on arbitrary sample sets.
func TestInvariantQuantileOrder(t *testing.T) {
	for _, seed := range invariantSeeds {
		t.Logf("seed %d", seed)
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(700))
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		q := vary.QuantilesOf(xs)
		if !(q.P5 <= q.P50 && q.P50 <= q.P95) {
			t.Fatalf("quantile order violated: %+v", q)
		}
	}
}

// TestInvariantFullCorrelationSingleCorner: at ρ=1 the idiosyncratic
// term is exactly zero, so every tier sees the one shared deviate z0 —
// with equal per-tier sigmas and no Vt shift, all three tier scales are
// bit-for-bit identical (the classic single-corner, all-tiers-track
// limit of correlated variation).
func TestInvariantFullCorrelationSingleCorner(t *testing.T) {
	for _, seed := range invariantSeeds {
		t.Logf("seed %d", seed)
		rng := rand.New(rand.NewSource(seed))
		sg := 0.01 + 0.15*rng.Float64()
		v := tech.Variation{
			SiDriveSigma:    sg,
			CNFETDriveSigma: sg,
			ILVRSpread:      sg,
			TierCorr:        1,
		}
		s, err := vary.NewSampler(v, seed)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			c := s.Corner(i)
			si := c.TierScale[tech.TierSiCMOS]
			if c.TierScale[tech.TierRRAM] != si || c.TierScale[tech.TierCNFET] != si {
				t.Fatalf("corner %d: ρ=1 tiers decohered: %v", i, c.TierScale)
			}
		}
	}
}

// TestInvariantZeroSigmaUnitScales: the zero-variation corner is exactly
// the all-ones scale vector at every index and seed.
func TestInvariantZeroSigmaUnitScales(t *testing.T) {
	for _, seed := range invariantSeeds {
		t.Logf("seed %d", seed)
		s, err := vary.NewSampler(tech.Variation{}, seed)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			for tier, sc := range s.Corner(i).TierScale {
				if sc != 1.0 {
					t.Fatalf("corner %d tier %d: scale %v != 1.0", i, tier, sc)
				}
			}
		}
	}
}
