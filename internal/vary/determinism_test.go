package vary_test

import (
	"reflect"
	"testing"

	"m3d/internal/analytic"
	"m3d/internal/arch"
	"m3d/internal/core"
	"m3d/internal/exec"
	"m3d/internal/tech"
	"m3d/internal/vary"
	"m3d/internal/workload"
)

// TestYieldWidthDeterminism is the acceptance-criteria gate: a
// 4096-sample Monte-Carlo yield run must be deep-equal at worker widths
// 1, 2 and 8. Corners are sample-indexed and MapWith writes each result
// at its input index, so scheduling can never reorder or change a value.
func TestYieldWidthDeterminism(t *testing.T) {
	p, nl := chainNetlist(t, 10)
	e, err := vary.NewEngine(p, nl, nil, tech.DefaultVariation(), 7)
	if err != nil {
		t.Fatal(err)
	}
	var results []*vary.Result
	for _, w := range []int{1, 2, 8} {
		res, err := e.Analyze(vary.Options{Samples: 4096}, exec.WithWorkers(w))
		if err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
		results = append(results, res)
	}
	for i, res := range results[1:] {
		if !reflect.DeepEqual(results[0], res) {
			t.Fatalf("width %d result differs from width 1", []int{2, 8}[i])
		}
	}
}

// TestYieldBatchSplitDeterminism pins the property the /v1/yield
// streaming handler rests on: timing [0, N) in one window equals any
// concatenation of sub-windows, because samples are index-addressed.
func TestYieldBatchSplitDeterminism(t *testing.T) {
	p, nl := chainNetlist(t, 10)
	e, err := vary.NewEngine(p, nl, nil, tech.DefaultVariation(), 11)
	if err != nil {
		t.Fatal(err)
	}
	st := exec.Resolve(exec.WithWorkers(4))
	whole, err := e.CriticalPaths(st, 0, 300)
	if err != nil {
		t.Fatal(err)
	}
	var split []float64
	for _, w := range [][2]int{{0, 7}, {7, 128}, {128, 300}} {
		part, err := e.CriticalPaths(st, w[0], w[1])
		if err != nil {
			t.Fatal(err)
		}
		split = append(split, part...)
	}
	if !reflect.DeepEqual(whole, split) {
		t.Fatal("batch-split samples differ from single-window samples")
	}
}

// TestYieldCacheWarmthIndependence re-runs the same analysis on one
// engine: the second pass reuses pooled Timers with warm WireModel RC
// caches and must still be deep-equal to the first.
func TestYieldCacheWarmthIndependence(t *testing.T) {
	p, nl := chainNetlist(t, 10)
	e, err := vary.NewEngine(p, nl, nil, tech.DefaultVariation(), 13)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := e.Analyze(vary.Options{Samples: 512}, exec.WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	warm, err := e.Analyze(vary.Options{Samples: 512}, exec.WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("warm-pool rerun differs from cold run")
	}
}

// TestEDPBandDeterminism checks the analytic-model band: the serial
// corner loop is trivially width-independent, but the band must also be
// reproducible across fresh samplers at the same seed, and invariant to
// splitting the sample range (index-addressed corners again).
func TestEDPBandDeterminism(t *testing.T) {
	pdk := tech.Default130()
	a2d, a3d, _, err := core.CaseStudyPair(pdk)
	if err != nil {
		t.Fatal(err)
	}
	am, err := core.AreaModel(pdk, arch.MB64)
	if err != nil {
		t.Fatal(err)
	}
	loads, err := core.Loads(a2d, workload.ResNet18())
	if err != nil {
		t.Fatal(err)
	}
	pr := core.Params(a2d, a3d)
	d := analytic.DesignPoint{Delta: 2, TierPairs: 2, BWScale: 1}

	mk := func() *vary.Sampler {
		s, err := vary.NewSampler(tech.DefaultVariation(), 99)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	b1, err := vary.EDPBand(pr, am, loads, d, mk(), 2048)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := vary.EDPBand(pr, am, loads, d, mk(), 2048)
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 {
		t.Fatalf("EDP bands differ across fresh samplers: %+v vs %+v", b1, b2)
	}
}
