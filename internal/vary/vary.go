// Package vary models inter-tier process variation for the monolithic-3D
// stack and estimates its timing-yield and energy consequences by Monte
// Carlo. The physical picture follows Musavvir et al. (inter-tier
// process variation in monolithic 3D): the bottom FEOL Si CMOS tier sees
// ordinary drive-strength spread, while the BEOL tiers fabricated on top
// — CNFET access transistors and the RRAM/ILV stack — carry both a
// systematic degradation (CNFET Vt shift from low-temperature processing)
// and a wider random spread (CNFET drive σ, ILV resistance spread), with
// a tunable tier-to-tier correlation from shared lithography and thermal
// history.
//
// Each Monte-Carlo sample is a Corner: one multiplicative delay scale per
// tech.Tier, pushed through the reusable sta.Timer via SetTierDelayScale,
// plus the matching analytic-model perturbations for EDP bands. Corners
// are drawn by a seeded, sample-indexed generator — Corner(i) is a pure
// function of (Variation, seed, i) — so a fan-out over the worker pool
// (exec.MapWith) returns deep-equal results at any pool width, the same
// determinism contract internal/dse relies on.
package vary

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"m3d/internal/errs"
	"m3d/internal/tech"
)

// minScale floors every per-tier delay scale: no corner, however many
// sigma out, can make a tier infinitely fast (or invert delay signs).
const minScale = 0.05

// Corner is one sampled process corner: the per-tier multiplicative
// delay scales, indexed by tech.Tier. A scale of exactly 1.0 in every
// entry is bit-for-bit nominal timing (the σ=0 corner).
type Corner struct {
	// Index is the sample index the corner was drawn at.
	Index int
	// TierScale[t] multiplies every delay arc driven from tier t.
	TierScale [tech.NumTiers]float64
}

// Sampler draws correlated process corners from a seeded, sample-indexed
// RNG. It is stateless between draws: Corner(i) depends only on the
// variation parameters, the seed, and i, never on which corners were
// drawn before — the property that makes Monte-Carlo fan-outs
// width-deterministic.
//
// Because each draw is a pure function of (Variation, seed, i), corners
// may be cached: Prime(n) precomputes the first n corners once, after
// which Corner(i) is a slice read. Reseeding the per-draw RNG dominates
// the cost of a cold draw (~2k generator-warmup steps), so priming is
// what lets the yield engine and the DSE's per-point EDP bands reuse the
// same corner stream thousands of times for free.
type Sampler struct {
	v    tech.Variation
	seed uint64

	// primed is the append-only corner cache: an atomically published
	// prefix of the corner stream. Readers load the current slice
	// header; Prime extends under mu and publishes a longer prefix.
	// Cached and freshly drawn corners are bit-identical by
	// construction, so cache warmth never changes a result.
	mu     sync.Mutex
	primed atomic.Pointer[[]Corner]
}

// NewSampler validates the variation parameters and builds a sampler
// for the given seed. Invalid parameters match errs.ErrBadSpec.
func NewSampler(v tech.Variation, seed int64) (*Sampler, error) {
	if err := v.Validate(); err != nil {
		return nil, fmt.Errorf("vary: %v: %w", err, errs.ErrBadSpec)
	}
	return &Sampler{v: v, seed: uint64(seed)}, nil
}

// Variation returns the sampler's variation parameters.
func (s *Sampler) Variation() tech.Variation { return s.v }

// mix is the splitmix64 finalizer: a high-quality 64-bit hash used to
// decorrelate per-sample RNG streams derived from (seed, index).
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// clampScale floors a sampled delay scale at minScale.
func clampScale(s float64) float64 {
	if s < minScale {
		return minScale
	}
	return s
}

// Corner draws the i-th process corner. The draw order is fixed — one
// shared factor z0, then one idiosyncratic deviate per tier (Si, RRAM,
// CNFET) — so the sequence of deviates consumed never depends on the
// σ values; two samplers at different σ see identical z draws for the
// same (seed, i), which is what makes yield monotone comparisons across
// a σ ladder exact rather than statistical.
//
// Each tier's deviate is z_t = ρ·z0 + √(1−ρ²)·ε_t. At ρ=1 the √ term is
// exactly zero, so every tier sees the identical z0 (the single-corner
// limit); at σ=0 every scale is exactly 1.0 (0·z == 0 in IEEE-754), so
// the corner collapses bit-for-bit onto nominal timing.
func (s *Sampler) Corner(i int) Corner {
	if c := s.primed.Load(); c != nil && i >= 0 && i < len(*c) {
		return (*c)[i]
	}
	return s.drawCorner(rand.New(rand.NewSource(s.cornerSeed(i))), i)
}

// cornerSeed derives the i-th draw's RNG seed from the sampler seed.
func (s *Sampler) cornerSeed(i int) int64 {
	return int64(mix(s.seed ^ mix(uint64(i))))
}

// drawCorner consumes the fixed four-deviate sequence from rng (already
// seeded with cornerSeed(i)) and builds the corner. Seeding a reused
// *rand.Rand via Seed(cornerSeed(i)) produces the identical stream to a
// fresh rand.New(rand.NewSource(...)), which is what lets Prime batch
// draws without an allocation per corner — or a bit of divergence.
func (s *Sampler) drawCorner(rng *rand.Rand, i int) Corner {
	z0 := rng.NormFloat64()
	rho := s.v.TierCorr
	idio := math.Sqrt(1 - rho*rho)
	zSi := rho*z0 + idio*rng.NormFloat64()
	zRRAM := rho*z0 + idio*rng.NormFloat64()
	zCN := rho*z0 + idio*rng.NormFloat64()

	var c Corner
	c.Index = i
	c.TierScale[tech.TierSiCMOS] = clampScale(1 + s.v.SiDriveSigma*zSi)
	c.TierScale[tech.TierRRAM] = clampScale(1 + s.v.ILVRSpread*zRRAM)
	c.TierScale[tech.TierCNFET] = clampScale(1 + s.v.CNFETVtShift + s.v.CNFETDriveSigma*zCN)
	return c
}

// Prime extends the corner cache to cover indices [0, n). It is safe to
// call concurrently with Corner readers (the cache is published
// atomically and only ever grows) and is idempotent: re-priming a
// covered prefix is a single atomic load. Callers that know their
// sample count — the yield engine, serve's streaming handler, the DSE's
// per-point EDP bands — prime once and turn every later draw into a
// slice read.
func (s *Sampler) Prime(n int) {
	if n > MaxSamples {
		n = MaxSamples
	}
	if n <= 0 {
		return
	}
	if c := s.primed.Load(); c != nil && len(*c) >= n {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var have []Corner
	if c := s.primed.Load(); c != nil {
		have = *c
	}
	if len(have) >= n {
		return
	}
	out := have
	if cap(out) < n {
		// Doubling growth keeps a batch-at-a-time caller (serve streams
		// corners in request-sized windows) at amortized O(n) copying.
		newCap := n
		if newCap < 2*cap(out) {
			newCap = 2 * cap(out)
		}
		out = make([]Corner, len(have), newCap)
		copy(out, have)
	}
	rng := rand.New(rand.NewSource(1))
	for i := len(out); i < n; i++ {
		rng.Seed(s.cornerSeed(i))
		out = append(out, s.drawCorner(rng, i))
	}
	s.primed.Store(&out)
}

// Quantiles summarizes a Monte-Carlo sample set by its 5th, 50th and
// 95th percentiles — the band the experiment tables report.
type Quantiles struct {
	P5  float64 `json:"p5"`
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
}

// QuantilesOf computes nearest-rank p5/p50/p95 over xs (which it does
// not modify). By construction P5 ≤ P50 ≤ P95. Empty input yields zeros.
func QuantilesOf(xs []float64) Quantiles {
	if len(xs) == 0 {
		return Quantiles{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Quantiles{
		P5:  nearestRank(sorted, 0.05),
		P50: nearestRank(sorted, 0.50),
		P95: nearestRank(sorted, 0.95),
	}
}

// nearestRank returns the nearest-rank p-quantile of an ascending slice.
func nearestRank(sorted []float64, p float64) float64 {
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
