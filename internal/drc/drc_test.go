package drc

import (
	"testing"

	"m3d/internal/cell"
	"m3d/internal/floorplan"
	"m3d/internal/geom"
	"m3d/internal/netlist"
	"m3d/internal/place"
	"m3d/internal/route"
	"m3d/internal/synth"
	"m3d/internal/tech"
)

func placedRouted(t *testing.T) (*floorplan.Floorplan, *netlist.Netlist, *route.Result) {
	t.Helper()
	p := tech.Default130()
	lib, err := cell.NewLibrary(p, tech.TierSiCMOS)
	if err != nil {
		t.Fatal(err)
	}
	b := synth.NewBuilder("dut", lib)
	b.Systolic("cs", synth.SystolicSpec{Rows: 1, Cols: 2, ActBits: 4, WeightBits: 4, AccBits: 12, Activity: 0.2})
	die, err := floorplan.SizeDie(p, b.NL, 0.6, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := floorplan.New(p, die)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := place.Global(fp, b.NL, tech.TierSiCMOS, place.Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	routes, err := route.Route(fp, b.NL, route.Options{MaxRipupRounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	return fp, b.NL, routes
}

func TestCleanDesignPasses(t *testing.T) {
	fp, nl, routes := placedRouted(t)
	rep, err := Audit(fp, nl, routes)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		for _, v := range rep.Violations[:minInt(5, len(rep.Violations))] {
			t.Log(v)
		}
		t.Fatalf("clean design reports %d violations", len(rep.Violations))
	}
	if rep.CheckedInstances == 0 || rep.CheckedNets == 0 || rep.CheckedSegs == 0 {
		t.Errorf("audit skipped work: %+v", rep)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestDetectsOffGrid(t *testing.T) {
	fp, nl, _ := placedRouted(t)
	nl.MovableCells()[0].Pos.Y += 3
	rep, err := Audit(fp, nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ByKind()[KindOffGrid] == 0 {
		t.Error("off-grid cell not detected")
	}
}

func TestDetectsOverlap(t *testing.T) {
	fp, nl, _ := placedRouted(t)
	cells := nl.MovableCells()
	cells[1].Pos = cells[0].Pos
	rep, err := Audit(fp, nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ByKind()[KindOverlap] == 0 {
		t.Error("overlap not detected")
	}
}

func TestDetectsBlockageViolation(t *testing.T) {
	fp, nl, _ := placedRouted(t)
	c := nl.MovableCells()[0]
	fp.AddBlockage(tech.TierSiCMOS, c.Bounds(fp.PDK))
	rep, err := Audit(fp, nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ByKind()[KindBlockage] == 0 {
		t.Error("blockage violation not detected")
	}
}

func TestDetectsOffDie(t *testing.T) {
	fp, nl, _ := placedRouted(t)
	nl.MovableCells()[0].Pos = geom.Pt(fp.Die.Hi.X, fp.Die.Hi.Y)
	rep, err := Audit(fp, nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ByKind()[KindOffDie] == 0 {
		t.Error("off-die cell not detected")
	}
}

func TestDetectsMacroOverlap(t *testing.T) {
	fp, nl, _ := placedRouted(t)
	m := &netlist.MacroRef{Kind: "blk", Width: 50_000, Height: 50_000}
	a := nl.AddMacro("ma", m, tech.TierRRAM)
	b := nl.AddMacro("mb", m, tech.TierRRAM)
	a.Pos = geom.Pt(fp.Die.Lo.X, fp.Die.Lo.Y)
	b.Pos = geom.Pt(fp.Die.Lo.X+10_000, fp.Die.Lo.Y)
	rep, err := Audit(fp, nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ByKind()[KindOverlap] == 0 {
		t.Error("macro overlap not detected")
	}
}

func TestDetectsBrokenNetlist(t *testing.T) {
	fp, nl, _ := placedRouted(t)
	// Orphan a net: drop its driver.
	for _, n := range nl.Nets {
		if !n.Clock && n.Driver != nil {
			n.Driver = nil
			break
		}
	}
	rep, err := Audit(fp, nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ByKind()[KindNetlist] == 0 {
		t.Error("structural breakage not detected")
	}
}

func TestDetectsBadRouteGeometry(t *testing.T) {
	fp, nl, routes := placedRouted(t)
	// Corrupt one segment into a diagonal.
	for _, nr := range routes.Routes {
		if len(nr.Segs) > 0 {
			nr.Segs[0].B = nr.Segs[0].A.Add(geom.Pt(12345, 999))
			break
		}
	}
	rep, err := Audit(fp, nl, routes)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ByKind()[KindRouteGeom] == 0 {
		t.Error("bad segment not detected")
	}
}

func TestNilArgsRejected(t *testing.T) {
	if _, err := Audit(nil, nil, nil); err == nil {
		t.Error("nil args should fail")
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Kind: KindOverlap, Object: "u1", Detail: "overlaps u2"}
	if v.String() != "[overlap] u1: overlaps u2" {
		t.Errorf("String = %q", v.String())
	}
}
